#include "memory/backing_store.hpp"

namespace ultra::memory {

void BackingStore::Load(const std::map<isa::Word, isa::Word>& image) {
  words_.clear();
  for (const auto& [addr, value] : image) {
    words_[Align(addr)] = value;
  }
}

isa::Word BackingStore::ReadWord(isa::Word byte_address) const {
  const auto it = words_.find(Align(byte_address));
  return it == words_.end() ? 0 : it->second;
}

void BackingStore::WriteWord(isa::Word byte_address, isa::Word value) {
  words_[Align(byte_address)] = value;
}

std::map<isa::Word, isa::Word> BackingStore::Snapshot() const {
  return {words_.begin(), words_.end()};
}

void BackingStore::SaveState(persist::Encoder& e) const {
  const std::map<isa::Word, isa::Word> sorted(words_.begin(), words_.end());
  e.U32(static_cast<std::uint32_t>(sorted.size()));
  for (const auto& [addr, value] : sorted) {
    e.U32(addr);
    e.U32(value);
  }
}

void BackingStore::RestoreState(persist::Decoder& d) {
  words_.clear();
  const std::uint32_t n = d.U32();
  words_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const isa::Word addr = d.U32();
    words_[addr] = d.U32();
  }
}

}  // namespace ultra::memory
