#include "memory/backing_store.hpp"

namespace ultra::memory {

void BackingStore::Load(const std::map<isa::Word, isa::Word>& image) {
  words_.clear();
  for (const auto& [addr, value] : image) {
    words_[Align(addr)] = value;
  }
}

isa::Word BackingStore::ReadWord(isa::Word byte_address) const {
  const auto it = words_.find(Align(byte_address));
  return it == words_.end() ? 0 : it->second;
}

void BackingStore::WriteWord(isa::Word byte_address, isa::Word value) {
  words_[Align(byte_address)] = value;
}

std::map<isa::Word, isa::Word> BackingStore::Snapshot() const {
  return {words_.begin(), words_.end()};
}

}  // namespace ultra::memory
