#include "memory/hierarchy.hpp"

#include <algorithm>
#include <cassert>

namespace ultra::memory {

namespace {

constexpr isa::Word kRegionShift = 12;  // 4 KiB stride-detector regions.

int Log2Exact(int value) {
  int shift = 0;
  while ((1 << shift) < value) ++shift;
  return shift;
}

}  // namespace

CacheLevelModel::CacheLevelModel(const CacheLevelConfig& config)
    : config_(config), block_shift_(Log2Exact(config.block_bytes)) {
  assert(config_.sets >= 1 && (config_.sets & (config_.sets - 1)) == 0);
  assert(config_.ways >= 1);
  assert(config_.block_bytes >= 4 &&
         (config_.block_bytes & (config_.block_bytes - 1)) == 0);
  lines_.assign(static_cast<std::size_t>(config_.sets) *
                    static_cast<std::size_t>(config_.ways),
                Line{});
}

int CacheLevelModel::SetOf(isa::Word byte_address) const {
  return static_cast<int>((byte_address >> block_shift_) &
                          static_cast<isa::Word>(config_.sets - 1));
}

std::uint64_t CacheLevelModel::TagOf(isa::Word byte_address) const {
  return static_cast<std::uint64_t>(byte_address >> block_shift_) /
         static_cast<std::uint64_t>(config_.sets);
}

CacheLevelModel::LookupResult CacheLevelModel::Lookup(isa::Word byte_address,
                                                      bool is_store) {
  const int set = SetOf(byte_address);
  const std::uint64_t tag = TagOf(byte_address);
  for (int way = 0; way < config_.ways; ++way) {
    Line& line = lines_[LineIndex(set, way)];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      LookupResult result;
      result.hit = true;
      result.was_prefetched = line.prefetched;
      if (line.prefetched) {
        ++stats_.prefetch_hits;
        line.prefetched = false;  // Count each prefetched line once.
      }
      if (is_store) line.dirty = true;
      line.lru = ++access_counter_;
      return result;
    }
  }
  ++stats_.misses;
  return LookupResult{};
}

bool CacheLevelModel::Fill(isa::Word byte_address, bool dirty,
                           bool prefetched) {
  const int set = SetOf(byte_address);
  const std::uint64_t tag = TagOf(byte_address);
  int victim = 0;
  for (int way = 0; way < config_.ways; ++way) {
    Line& line = lines_[LineIndex(set, way)];
    if (line.valid && line.tag == tag) {
      // Already present (e.g. a prefetch raced a demand fill): just update.
      if (dirty) line.dirty = true;
      line.lru = ++access_counter_;
      return false;
    }
    if (!line.valid) {
      victim = way;
    } else if (lines_[LineIndex(set, victim)].valid &&
               line.lru < lines_[LineIndex(set, victim)].lru) {
      victim = way;
    }
  }
  Line& line = lines_[LineIndex(set, victim)];
  const bool writeback = line.valid && line.dirty;
  if (line.valid) ++stats_.evictions;
  if (writeback) ++stats_.writebacks;
  line.valid = true;
  line.tag = tag;
  line.dirty = dirty;
  line.prefetched = prefetched;
  line.lru = ++access_counter_;
  if (prefetched) ++stats_.prefetch_fills;
  return writeback;
}

bool CacheLevelModel::Contains(isa::Word byte_address) const {
  const int set = SetOf(byte_address);
  const std::uint64_t tag = TagOf(byte_address);
  for (int way = 0; way < config_.ways; ++way) {
    const Line& line = lines_[LineIndex(set, way)];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

void CacheLevelModel::Flush() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  access_counter_ = 0;
}

void CacheLevelModel::SaveState(persist::Encoder& e) const {
  e.U32(static_cast<std::uint32_t>(lines_.size()));
  for (const Line& line : lines_) {
    e.U64(line.tag);
    e.Bool(line.valid);
    e.Bool(line.dirty);
    e.Bool(line.prefetched);
    e.U64(line.lru);
  }
  e.U64(access_counter_);
  e.U64(stats_.hits);
  e.U64(stats_.misses);
  e.U64(stats_.evictions);
  e.U64(stats_.writebacks);
  e.U64(stats_.prefetch_fills);
  e.U64(stats_.prefetch_hits);
}

void CacheLevelModel::RestoreState(persist::Decoder& d) {
  const std::uint32_t count = d.U32();
  if (count != lines_.size()) {
    throw persist::FormatError("cache level geometry mismatch");
  }
  for (Line& line : lines_) {
    line.tag = d.U64();
    line.valid = d.Bool();
    line.dirty = d.Bool();
    line.prefetched = d.Bool();
    line.lru = d.U64();
  }
  access_counter_ = d.U64();
  stats_.hits = d.U64();
  stats_.misses = d.U64();
  stats_.evictions = d.U64();
  stats_.writebacks = d.U64();
  stats_.prefetch_fills = d.U64();
  stats_.prefetch_hits = d.U64();
}

StridePrefetcher::StridePrefetcher(const PrefetchConfig& config)
    : config_(config) {
  assert(config_.depth >= 1);
  assert(config_.table_entries >= 1);
  entries_.assign(static_cast<std::size_t>(config_.table_entries), Entry{});
}

void StridePrefetcher::ObserveMiss(isa::Word block_address, int block_bytes,
                                   std::vector<isa::Word>& out) {
  const isa::Word region = block_address >> kRegionShift;
  Entry* entry = nullptr;
  Entry* victim = &entries_[0];
  for (Entry& candidate : entries_) {
    if (candidate.valid && candidate.region == region) {
      entry = &candidate;
      break;
    }
    if (!candidate.valid) {
      victim = &candidate;
    } else if (victim->valid && candidate.lru < victim->lru) {
      victim = &candidate;
    }
  }
  if (entry == nullptr) {
    *victim = Entry{};
    victim->valid = true;
    victim->region = region;
    victim->last_block = block_address;
    victim->lru = ++use_counter_;
    return;  // First miss in the region: nothing to predict yet.
  }
  const std::int64_t delta = static_cast<std::int64_t>(block_address) -
                             static_cast<std::int64_t>(entry->last_block);
  if (delta != 0 && delta == entry->stride) {
    entry->confidence = std::min(entry->confidence + 1, 4);
  } else {
    entry->stride = delta;
    entry->confidence = delta != 0 ? 1 : 0;
  }
  entry->last_block = block_address;
  entry->lru = ++use_counter_;
  if (entry->confidence < 2) return;
  for (int k = 1; k <= config_.depth; ++k) {
    const std::int64_t predicted =
        static_cast<std::int64_t>(block_address) + entry->stride * k;
    if (predicted < 0) break;
    const isa::Word block = static_cast<isa::Word>(predicted) &
                            ~static_cast<isa::Word>(block_bytes - 1);
    out.push_back(block);
  }
}

void StridePrefetcher::SaveState(persist::Encoder& e) const {
  e.U32(static_cast<std::uint32_t>(entries_.size()));
  for (const Entry& entry : entries_) {
    e.Bool(entry.valid);
    e.U32(entry.region);
    e.U32(entry.last_block);
    e.I64(entry.stride);
    e.I32(entry.confidence);
    e.U64(entry.lru);
  }
  e.U64(use_counter_);
}

void StridePrefetcher::RestoreState(persist::Decoder& d) {
  const std::uint32_t count = d.U32();
  if (count != entries_.size()) {
    throw persist::FormatError("prefetcher table size mismatch");
  }
  for (Entry& entry : entries_) {
    entry.valid = d.Bool();
    entry.region = d.U32();
    entry.last_block = d.U32();
    entry.stride = d.I64();
    entry.confidence = d.I32();
    entry.lru = d.U64();
  }
  use_counter_ = d.U64();
}

}  // namespace ultra::memory
