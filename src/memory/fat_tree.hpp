// Fat-tree interconnect between execution stations and the memory system
// (Leiserson-style fat tree; Section 2 and the M nodes of Figure 6).
//
// A complete binary tree with the n stations at the leaves and the cache at
// the root. The capacity of the link from a subtree of s leaves toward the
// root is Theta(M(s)) messages per cycle -- "one can choose how much
// bandwidth to implement by adjusting the fatness of the trees". Messages
// advance one level per cycle and queue at each node when a link is
// saturated.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "memory/bandwidth.hpp"
#include "persist/serial.hpp"

namespace ultra::memory {

struct FatTreeStats {
  std::uint64_t messages_up = 0;
  std::uint64_t messages_down = 0;
  std::uint64_t queue_cycles = 0;  // Total cycles messages spent queued.
  std::uint64_t max_queue_depth = 0;
};

class FatTreeNetwork {
 public:
  /// @p num_leaves is rounded up to a power of two internally. Messages
  /// advance one tree level per cycle.
  FatTreeNetwork(int num_leaves, const BandwidthProfile& profile);

  [[nodiscard]] int num_leaves() const { return leaves_; }
  [[nodiscard]] int levels() const { return levels_; }

  /// Injects a message (request id) at a leaf, headed to the root.
  void SubmitUp(int leaf, std::uint64_t id);
  /// Injects a message at the root, headed to @p leaf.
  void SubmitDown(int leaf, std::uint64_t id);

  /// Advances one cycle: every link moves up to its capacity.
  void Tick();

  /// Drains messages that reached the root / their leaf this cycle.
  std::vector<std::uint64_t> DrainRoot();
  struct Delivery {
    int leaf;
    std::uint64_t id;
  };
  std::vector<Delivery> DrainLeaves();

  /// Capacity of the uplink of a subtree with @p subtree_leaves leaves.
  [[nodiscard]] int LinkCapacity(int subtree_leaves) const;

  [[nodiscard]] const FatTreeStats& stats() const { return stats_; }

  /// Checkpoint support: every queued message at every node, the undrained
  /// root/leaf arrivals, and the stats.
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  struct Msg {
    std::uint64_t id;
    int leaf;  // Destination (down) or origin (up).
  };
  struct Node {
    std::deque<Msg> up;
    std::deque<Msg> down;
  };

  int leaves_;   // Power of two.
  int levels_;   // Tree height; leaves are at depth levels_.
  BandwidthProfile profile_;
  std::vector<Node> nodes_;  // Heap layout: node 1 = root, children 2i, 2i+1.
  std::vector<std::uint64_t> at_root_;
  std::vector<Delivery> at_leaves_;
  FatTreeStats stats_;

  [[nodiscard]] int LeafNode(int leaf) const {
    return leaves_ + leaf;
  }
  [[nodiscard]] int SubtreeLeaves(int node) const;
};

}  // namespace ultra::memory
