// Memory-bandwidth profiles M(n).
//
// The paper analyzes every processor under a family of bandwidth functions:
// M(n) = O(n^{1/2-eps}), M(n) = Theta(n^{1/2}), and M(n) = Omega(n^{1/2+eps})
// (with M(n) = O(n) always, "since it makes no sense to provide more memory
// bandwidth than the total instruction issue rate"). Case 3 additionally
// assumes the regularity property M(n/4) <= c * M(n)/2.
//
// A profile is used in two places: the VLSI layout models (wire counts and
// switch sizes at each level of the H-tree / fat tree) and the cycle-level
// memory system (how many memory operations per cycle the chip accepts).
#pragma once

#include <cmath>
#include <string>

namespace ultra::memory {

/// The paper's three asymptotic regimes (plus the two natural endpoints).
enum class BandwidthRegime {
  kConstant,      // M(n) = Theta(1)         -- Case 1 (below sqrt)
  kSqrtMinus,     // M(n) = Theta(n^{1/2-e}) -- Case 1
  kSqrt,          // M(n) = Theta(n^{1/2})   -- Case 2
  kSqrtPlus,      // M(n) = Theta(n^{1/2+e}) -- Case 3
  kLinear,        // M(n) = Theta(n)         -- Case 3, full bandwidth
};

/// M(n) = scale * n^exponent, the concrete family used throughout.
class BandwidthProfile {
 public:
  /// Builds the canonical profile for a regime (eps = 0.25 by default).
  static BandwidthProfile ForRegime(BandwidthRegime regime,
                                    double scale = 1.0, double eps = 0.25);

  BandwidthProfile(std::string name, double scale, double exponent)
      : name_(std::move(name)), scale_(scale), exponent_(exponent) {}

  /// M(n) as a real number (layout models); >= scale for n >= 1.
  [[nodiscard]] double operator()(double n) const {
    return scale_ * std::pow(n, exponent_);
  }

  /// M(n) rounded to a usable per-cycle operation count (cycle simulators);
  /// always at least 1.
  [[nodiscard]] int OpsPerCycle(int n) const {
    return std::max(1, static_cast<int>(std::floor((*this)(n))));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double exponent() const { return exponent_; }
  [[nodiscard]] double scale() const { return scale_; }

  /// The paper's regularity requirement for Case 3: M(n/4) <= c*M(n)/2 for
  /// some constant c. For pure powers n^a it holds iff a >= ... any a with
  /// c = 2/4^a; we report the witness c for the caller to inspect.
  [[nodiscard]] double RegularityWitness() const {
    return 2.0 / std::pow(4.0, exponent_);
  }

 private:
  std::string name_;
  double scale_;
  double exponent_;
};

}  // namespace ultra::memory
