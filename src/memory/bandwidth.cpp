#include "memory/bandwidth.hpp"

namespace ultra::memory {

BandwidthProfile BandwidthProfile::ForRegime(BandwidthRegime regime,
                                             double scale, double eps) {
  switch (regime) {
    case BandwidthRegime::kConstant:
      return {"M(n)=Theta(1)", scale, 0.0};
    case BandwidthRegime::kSqrtMinus:
      return {"M(n)=Theta(n^(1/2-e))", scale, 0.5 - eps};
    case BandwidthRegime::kSqrt:
      return {"M(n)=Theta(n^(1/2))", scale, 0.5};
    case BandwidthRegime::kSqrtPlus:
      return {"M(n)=Theta(n^(1/2+e))", scale, 0.5 + eps};
    case BandwidthRegime::kLinear:
      return {"M(n)=Theta(n)", scale, 1.0};
  }
  return {"M(n)=Theta(1)", scale, 0.0};
}

}  // namespace ultra::memory
