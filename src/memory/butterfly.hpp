// Butterfly network (Section 2: "We propose to connect the Ultrascalar I
// datapath to an interleaved data cache and to an instruction trace cache
// via two fat-tree or butterfly networks [10]").
//
// A radix-2 butterfly with n inputs (stations) and n outputs (cache banks):
// log2(n) stages; at stage s a message at row p goes straight or crosses to
// row p XOR 2^s, steering by the s-th bit of p XOR destination. Unlike the
// fat tree, aggregate bandwidth is n but there is exactly one path per
// (source, destination) pair, so adversarial traffic (every station hitting
// one bank) serializes on shared links.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "persist/serial.hpp"

namespace ultra::memory {

struct ButterflyStats {
  std::uint64_t messages = 0;
  std::uint64_t queue_cycles = 0;
  std::uint64_t max_queue_depth = 0;
};

class ButterflyNetwork {
 public:
  /// @p num_leaves is rounded up to a power of two.
  explicit ButterflyNetwork(int num_leaves);

  [[nodiscard]] int num_leaves() const { return leaves_; }
  [[nodiscard]] int stages() const { return stages_; }

  /// Injects a request at @p leaf destined for output port @p bank.
  void SubmitForward(int leaf, int bank, std::uint64_t id);
  /// Injects a response at @p bank destined for @p leaf (reverse network).
  void SubmitReverse(int bank, int leaf, std::uint64_t id);

  /// Advances one cycle: each node forwards at most one message per output
  /// link in each direction.
  void Tick();

  struct Arrival {
    int port;  // Bank (forward) or leaf (reverse).
    std::uint64_t id;
  };
  std::vector<Arrival> DrainForward();
  std::vector<Arrival> DrainReverse();

  [[nodiscard]] const ButterflyStats& stats() const { return stats_; }

  /// Checkpoint support: all queued messages (both directions), undrained
  /// arrivals, and stats.
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  struct Msg {
    std::uint64_t id;
    int dest;  // Destination row.
  };
  struct Node {
    std::deque<Msg> queue;
  };

  int leaves_;  // Power of two.
  int stages_;
  // fwd_[s][p]: messages waiting at stage s, row p (stage 0 = injection).
  std::vector<std::vector<Node>> fwd_;
  std::vector<std::vector<Node>> rev_;
  std::vector<Arrival> fwd_out_;
  std::vector<Arrival> rev_out_;
  ButterflyStats stats_;

  void TickDirection(std::vector<std::vector<Node>>& net,
                     std::vector<Arrival>& out);
};

}  // namespace ultra::memory
