// Umbrella header for the memory subsystem library.
#pragma once

#include "memory/backing_store.hpp"     // IWYU pragma: export
#include "memory/bandwidth.hpp"         // IWYU pragma: export
#include "memory/branch_predictor.hpp"  // IWYU pragma: export
#include "memory/butterfly.hpp"          // IWYU pragma: export
#include "memory/cache.hpp"             // IWYU pragma: export
#include "memory/fat_tree.hpp"          // IWYU pragma: export
#include "memory/hierarchy.hpp"         // IWYU pragma: export
#include "memory/memory_system.hpp"     // IWYU pragma: export
#include "memory/trace_cache.hpp"       // IWYU pragma: export
