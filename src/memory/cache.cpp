#include "memory/cache.hpp"

#include <cassert>

namespace ultra::memory {

namespace {
bool IsPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

InterleavedCache::InterleavedCache(const CacheConfig& config,
                                   BackingStore* store)
    : config_(config), store_(store) {
  assert(IsPowerOfTwo(config_.num_banks));
  assert(IsPowerOfTwo(config_.line_bytes));
  assert(config_.sets_per_bank >= 1 && config_.ways >= 1);
  assert(config_.ports_per_bank >= 1);
  lines_.resize(static_cast<std::size_t>(config_.num_banks) *
                config_.sets_per_bank * config_.ways);
  ports_used_.resize(static_cast<std::size_t>(config_.num_banks), 0);
}

int InterleavedCache::BankOf(isa::Word byte_address) const {
  const auto line = byte_address / static_cast<isa::Word>(config_.line_bytes);
  return static_cast<int>(line % static_cast<isa::Word>(config_.num_banks));
}

std::size_t InterleavedCache::LineIndex(int bank, int set, int way) const {
  return (static_cast<std::size_t>(bank) * config_.sets_per_bank + set) *
             config_.ways +
         way;
}

int InterleavedCache::Access(isa::Word byte_address, bool is_store) {
  const int bank = BankOf(byte_address);
  if (ports_used_[static_cast<std::size_t>(bank)] >= config_.ports_per_bank) {
    ++stats_.bank_conflicts;
    return -1;
  }
  ++ports_used_[static_cast<std::size_t>(bank)];

  const auto line_no =
      byte_address / static_cast<isa::Word>(config_.line_bytes);
  const auto set = static_cast<int>(
      (line_no / static_cast<isa::Word>(config_.num_banks)) %
      static_cast<isa::Word>(config_.sets_per_bank));
  const auto tag = static_cast<std::uint64_t>(
      line_no / static_cast<isa::Word>(config_.num_banks) /
      static_cast<isa::Word>(config_.sets_per_bank));

  ++access_counter_;
  int free_way = -1;
  int lru_way = 0;
  std::uint64_t lru_min = ~std::uint64_t{0};
  for (int w = 0; w < config_.ways; ++w) {
    Line& line = lines_[LineIndex(bank, set, w)];
    if (line.valid && line.tag == tag) {
      line.lru = access_counter_;
      ++stats_.hits;
      return config_.hit_latency;
    }
    if (!line.valid && free_way < 0) free_way = w;
    if (line.lru < lru_min) {
      lru_min = line.lru;
      lru_way = w;
    }
  }
  // Miss: fill (write-allocate for both loads and stores).
  ++stats_.misses;
  const int victim = free_way >= 0 ? free_way : lru_way;
  Line& line = lines_[LineIndex(bank, set, victim)];
  line.valid = true;
  line.tag = tag;
  line.lru = access_counter_;
  (void)is_store;  // Write-through: timing identical, data lives in store_.
  (void)store_;
  return config_.hit_latency + config_.miss_penalty;
}

void InterleavedCache::NewCycle() {
  for (auto& p : ports_used_) p = 0;
}

void InterleavedCache::Flush() {
  for (auto& line : lines_) line.valid = false;
}

void InterleavedCache::SaveState(persist::Encoder& e) const {
  e.U32(static_cast<std::uint32_t>(lines_.size()));
  for (const Line& line : lines_) {
    e.U64(line.tag);
    e.Bool(line.valid);
    e.U64(line.lru);
  }
  e.U32(static_cast<std::uint32_t>(ports_used_.size()));
  for (const int p : ports_used_) e.I32(p);
  e.U64(access_counter_);
  e.U64(stats_.hits);
  e.U64(stats_.misses);
  e.U64(stats_.bank_conflicts);
}

void InterleavedCache::RestoreState(persist::Decoder& d) {
  if (d.U32() != lines_.size()) {
    throw persist::FormatError("cache geometry mismatch");
  }
  for (Line& line : lines_) {
    line.tag = d.U64();
    line.valid = d.Bool();
    line.lru = d.U64();
  }
  if (d.U32() != ports_used_.size()) {
    throw persist::FormatError("cache bank count mismatch");
  }
  for (int& p : ports_used_) p = d.I32();
  access_counter_ = d.U64();
  stats_.hits = d.U64();
  stats_.misses = d.U64();
  stats_.bank_conflicts = d.U64();
}

}  // namespace ultra::memory
