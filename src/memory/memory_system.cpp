#include "memory/memory_system.hpp"

#include <algorithm>
#include <cassert>

namespace ultra::memory {

MemorySystem::MemorySystem(const MemoryConfig& config, int num_leaves)
    : config_(config),
      num_leaves_(std::max(1, num_leaves)),
      ops_per_cycle_(1),
      profile_(BandwidthProfile::ForRegime(config.regime,
                                           config.bandwidth_scale)) {
  ops_per_cycle_ = profile_.OpsPerCycle(num_leaves_);
  cache_ = std::make_unique<InterleavedCache>(config_.cache, &store_);
  if (config_.mode == MemTimingMode::kFatTree) {
    network_ = std::make_unique<FatTreeNetwork>(num_leaves_, profile_);
  }
  if (config_.mode == MemTimingMode::kButterfly) {
    butterfly_ = std::make_unique<ButterflyNetwork>(num_leaves_);
  }
  if (config_.cluster_cache_leaves > 0) {
    const int clusters =
        (num_leaves_ + config_.cluster_cache_leaves - 1) /
        config_.cluster_cache_leaves;
    cluster_caches_.assign(static_cast<std::size_t>(clusters), {});
  }
  if (config_.hierarchy.l1d.enabled) {
    l1d_ = std::make_unique<CacheLevelModel>(config_.hierarchy.l1d);
  }
  if (config_.hierarchy.l2.enabled) {
    l2_ = std::make_unique<CacheLevelModel>(config_.hierarchy.l2);
  }
  if (config_.hierarchy.DataPathEnabled() &&
      config_.hierarchy.prefetch.depth > 0) {
    prefetcher_ = std::make_unique<StridePrefetcher>(config_.hierarchy.prefetch);
  }
}

int MemorySystem::ButterflyPort(isa::Word addr) const {
  return cache_->BankOf(addr) % num_leaves_;
}

int MemorySystem::ClusterOf(int leaf) const {
  return leaf / config_.cluster_cache_leaves;
}

bool MemorySystem::ClusterCacheLookup(int cluster, isa::Word addr) {
  auto& cache = cluster_caches_[static_cast<std::size_t>(cluster)];
  const auto it = std::find(cache.begin(), cache.end(), addr & ~isa::Word{3});
  if (it == cache.end()) {
    ++cluster_stats_.local_misses;
    return false;
  }
  // LRU: move to the back (most recent).
  cache.erase(it);
  cache.push_back(addr & ~isa::Word{3});
  ++cluster_stats_.local_hits;
  return true;
}

void MemorySystem::ClusterCacheInsert(int cluster, isa::Word addr) {
  auto& cache = cluster_caches_[static_cast<std::size_t>(cluster)];
  const isa::Word aligned = addr & ~isa::Word{3};
  if (std::find(cache.begin(), cache.end(), aligned) != cache.end()) return;
  if (static_cast<int>(cache.size()) >= config_.cluster_cache_words) {
    cache.erase(cache.begin());  // Evict LRU.
  }
  cache.push_back(aligned);
}

void MemorySystem::ClusterCacheInvalidate(isa::Word addr) {
  const isa::Word aligned = addr & ~isa::Word{3};
  for (auto& cache : cluster_caches_) {
    const auto it = std::find(cache.begin(), cache.end(), aligned);
    if (it != cache.end()) {
      cache.erase(it);
      ++cluster_stats_.invalidations;
    }
  }
}

void MemorySystem::Reset(const std::map<isa::Word, isa::Word>& image) {
  store_.Load(image);
  cache_->Flush();
  for (auto& c : cluster_caches_) c.clear();
  if (config_.mode == MemTimingMode::kFatTree) {
    network_ = std::make_unique<FatTreeNetwork>(num_leaves_, profile_);
  }
  if (config_.mode == MemTimingMode::kButterfly) {
    butterfly_ = std::make_unique<ButterflyNetwork>(num_leaves_);
  }
  admission_queue_ = {};
  root_retry_queue_ = {};
  completions_.clear();
  in_network_.clear();
  completed_.clear();
  if (l1d_) l1d_->Flush();
  if (l2_) l2_->Flush();
  if (prefetcher_) {
    prefetcher_ = std::make_unique<StridePrefetcher>(config_.hierarchy.prefetch);
  }
  hier_pending_.clear();
  prefetch_fills_.clear();
  prefetch_issued_ = 0;
  now_ = 0;
}

std::uint64_t MemorySystem::Submit(int leaf, bool is_store, isa::Word addr,
                                   isa::Word value) {
  Request req;
  req.id = next_id_++;
  req.leaf = leaf % num_leaves_;
  req.is_store = is_store;
  req.addr = addr;
  // Architectural effect now: stores are submitted post-serialization, so
  // program order is already correct, and any later load is held back by the
  // Figure 5 circuits until this store's completion signal.
  if (is_store) {
    store_.WriteWord(addr, value);
    // Write-through with invalidation keeps the distributed caches
    // coherent; the Figure 5 circuits already order loads after stores.
    if (!cluster_caches_.empty()) ClusterCacheInvalidate(addr);
  } else {
    req.loaded_value = store_.ReadWord(addr);
    // A distributed-cache hit completes locally, spending no tree
    // bandwidth (the whole point of the Section 7 suggestion).
    if (!cluster_caches_.empty() &&
        ClusterCacheLookup(ClusterOf(req.leaf), addr)) {
      CompleteAt(now_ + static_cast<std::uint64_t>(
                            config_.cluster_cache_hit_latency),
                 req);
      return req.id;
    }
  }

  // The L1D/L2 hierarchy intercepts the request before the backing tier:
  // hits complete locally (consuming no backing bandwidth); full misses pay
  // the per-level lookup latencies and then dispatch to the backing tier.
  if ((l1d_ || l2_) && SubmitToHierarchy(req)) return req.id;

  DispatchToBacking(req);
  return req.id;
}

void MemorySystem::DispatchToBacking(const Request& req) {
  switch (config_.mode) {
    case MemTimingMode::kMagic:
      CompleteAt(now_ + static_cast<std::uint64_t>(
                            req.is_store ? config_.magic_store_latency
                                         : config_.magic_load_latency),
                 req);
      break;
    case MemTimingMode::kBandwidthLimited:
      admission_queue_.push(req);
      break;
    case MemTimingMode::kFatTree:
      in_network_.emplace(req.id, req);
      network_->SubmitUp(req.leaf, req.id);
      break;
    case MemTimingMode::kButterfly:
      in_network_.emplace(req.id, req);
      butterfly_->SubmitForward(req.leaf, ButterflyPort(req.addr), req.id);
      break;
  }
}

bool MemorySystem::SubmitToHierarchy(const Request& req) {
  const HierarchyConfig& h = config_.hierarchy;
  int delay = 0;
  if (l1d_) {
    delay += h.l1d.hit_latency;
    const CacheLevelModel::LookupResult looked =
        l1d_->Lookup(req.addr, req.is_store);
    if (looked.hit) {
      // The first demand hit on a prefetched line re-arms the stream: the
      // detector sees the access and keeps running ahead of the program
      // instead of waiting for the next miss. Lookup clears the line's
      // prefetched bit, so each prefetched line re-arms at most once.
      if (looked.was_prefetched && prefetcher_) SchedulePrefetches(req.addr);
      CompleteAt(now_ + static_cast<std::uint64_t>(delay), req);
      return true;
    }
    delay += h.l1d.miss_latency;
    // Only demand misses train the prefetcher; its fills land in Tick.
    if (prefetcher_) SchedulePrefetches(req.addr);
  }
  if (l2_) {
    delay += h.l2.hit_latency;
    // The store's dirtiness lives in the innermost enabled level; the L2
    // copy stays clean until an L1 write-back would make it dirty (the
    // timing model charges write-backs at eviction, below).
    const CacheLevelModel::LookupResult looked =
        l2_->Lookup(req.addr, req.is_store && !l1d_);
    if (looked.hit) {
      if (!l1d_ && looked.was_prefetched && prefetcher_) {
        SchedulePrefetches(req.addr);  // Re-arm the stream (see L1D above).
      }
      if (l1d_ &&
          l1d_->Fill(req.addr, /*dirty=*/req.is_store, /*prefetched=*/false)) {
        delay += h.l1d.miss_latency;  // Dirty victim written back to L2.
      }
      CompleteAt(now_ + static_cast<std::uint64_t>(delay), req);
      return true;
    }
    delay += h.l2.miss_latency;
    if (!l1d_ && prefetcher_) SchedulePrefetches(req.addr);
  }
  // Full miss: allocate in every enabled level (write-allocate), charging a
  // write-back penalty per dirty victim, then enter the backing tier once
  // the lookup latencies have elapsed.
  if (l2_) {
    if (l2_->Fill(req.addr, /*dirty=*/req.is_store && !l1d_,
                  /*prefetched=*/false)) {
      delay += h.l2.miss_latency;
    }
  }
  if (l1d_) {
    if (l1d_->Fill(req.addr, /*dirty=*/req.is_store, /*prefetched=*/false)) {
      delay += h.l1d.miss_latency;
    }
  }
  hier_pending_.emplace_back(now_ + static_cast<std::uint64_t>(delay), req);
  return true;
}

void MemorySystem::SchedulePrefetches(isa::Word addr) {
  const int block_bytes = l1d_ ? config_.hierarchy.l1d.block_bytes
                               : config_.hierarchy.l2.block_bytes;
  const isa::Word block =
      addr & ~static_cast<isa::Word>(block_bytes - 1);
  prefetch_scratch_.clear();
  prefetcher_->ObserveMiss(block, block_bytes, prefetch_scratch_);
  for (const isa::Word candidate : prefetch_scratch_) {
    if (l1d_ && l1d_->Contains(candidate)) continue;
    if (!l1d_ && l2_ && l2_->Contains(candidate)) continue;
    bool queued = false;
    for (const auto& [ready, pending] : prefetch_fills_) {
      if (pending == candidate) {
        queued = true;
        break;
      }
    }
    if (queued) continue;
    prefetch_fills_.emplace_back(
        now_ + static_cast<std::uint64_t>(config_.hierarchy.prefetch.fill_latency),
        candidate);
    ++prefetch_issued_;
  }
}

std::uint64_t MemorySystem::SubmitLoad(int leaf, isa::Word addr) {
  return Submit(leaf, /*is_store=*/false, addr, 0);
}

std::uint64_t MemorySystem::SubmitStore(int leaf, isa::Word addr,
                                        isa::Word value) {
  return Submit(leaf, /*is_store=*/true, addr, value);
}

void MemorySystem::CompleteAt(std::uint64_t cycle, const Request& req) {
  if (!req.is_store && !cluster_caches_.empty()) {
    ClusterCacheInsert(ClusterOf(req.leaf), req.addr);
  }
  MemResponse resp;
  resp.id = req.id;
  resp.is_store = req.is_store;
  resp.value = req.loaded_value;
  completions_[cycle].push_back(resp);
}

void MemorySystem::ServiceAtCache(const Request& req,
                                  int extra_delay_before_response) {
  const int latency = cache_->Access(req.addr, req.is_store);
  if (latency < 0) {
    // Bank conflict: retry next cycle at the cache side.
    root_retry_queue_.push(req);
    return;
  }
  if (config_.mode == MemTimingMode::kFatTree ||
      config_.mode == MemTimingMode::kButterfly) {
    // The response starts its return trip once the cache latency elapses.
    pending_downs_.push_back({now_ + static_cast<std::uint64_t>(latency), req});
    return;
  }
  CompleteAt(now_ + static_cast<std::uint64_t>(latency +
                                               extra_delay_before_response),
             req);
}

void MemorySystem::Tick() {
  ++now_;
  cache_->NewCycle();

  // Hierarchy misses whose L1/L2 lookup latency has elapsed enter the
  // backing tier this cycle.
  if (!hier_pending_.empty()) {
    std::size_t keep = 0;
    for (auto& [ready, req] : hier_pending_) {
      if (ready <= now_) {
        DispatchToBacking(req);
      } else {
        hier_pending_[keep++] = {ready, req};
      }
    }
    hier_pending_.resize(keep);
  }
  // Prefetched blocks land in the innermost enabled level once their fill
  // latency elapses. Prefetch fills never charge anyone a write-back
  // penalty (there is no demand access to charge), but dirty victims still
  // count in the stats.
  if (!prefetch_fills_.empty()) {
    std::size_t keep = 0;
    for (auto& [ready, block] : prefetch_fills_) {
      if (ready <= now_) {
        if (l2_) l2_->Fill(block, /*dirty=*/false, /*prefetched=*/l1d_ == nullptr);
        if (l1d_) l1d_->Fill(block, /*dirty=*/false, /*prefetched=*/true);
      } else {
        prefetch_fills_[keep++] = {ready, block};
      }
    }
    prefetch_fills_.resize(keep);
  }

  switch (config_.mode) {
    case MemTimingMode::kMagic:
      break;
    case MemTimingMode::kBandwidthLimited: {
      // Retried bank-conflict requests compete for bandwidth first.
      int budget = ops_per_cycle_;
      while (budget > 0 && !root_retry_queue_.empty()) {
        Request req = root_retry_queue_.front();
        root_retry_queue_.pop();
        --budget;
        ServiceAtCache(req, 0);
      }
      while (budget > 0 && !admission_queue_.empty()) {
        Request req = admission_queue_.front();
        admission_queue_.pop();
        --budget;
        ServiceAtCache(req, 0);
      }
      break;
    }
    case MemTimingMode::kFatTree: {
      network_->Tick();
      for (const std::uint64_t id : network_->DrainRoot()) {
        const auto it = in_network_.find(id);
        assert(it != in_network_.end());
        ServiceAtCache(it->second, 0);
      }
      // Bank-conflict retries at the root.
      const std::size_t retries = root_retry_queue_.size();
      for (std::size_t i = 0; i < retries; ++i) {
        Request req = root_retry_queue_.front();
        root_retry_queue_.pop();
        ServiceAtCache(req, 0);
      }
      // Responses whose cache latency has elapsed start the downward trip.
      std::vector<std::pair<std::uint64_t, Request>> still_waiting;
      for (auto& [ready, req] : pending_downs_) {
        if (ready <= now_) {
          network_->SubmitDown(req.leaf, req.id);
        } else {
          still_waiting.emplace_back(ready, req);
        }
      }
      pending_downs_ = std::move(still_waiting);
      for (const auto& delivery : network_->DrainLeaves()) {
        const auto it = in_network_.find(delivery.id);
        assert(it != in_network_.end());
        CompleteAt(now_, it->second);
        in_network_.erase(it);
      }
      break;
    }
    case MemTimingMode::kButterfly: {
      butterfly_->Tick();
      for (const auto& arrival : butterfly_->DrainForward()) {
        const auto it = in_network_.find(arrival.id);
        assert(it != in_network_.end());
        ServiceAtCache(it->second, 0);
      }
      const std::size_t retries = root_retry_queue_.size();
      for (std::size_t i = 0; i < retries; ++i) {
        Request req = root_retry_queue_.front();
        root_retry_queue_.pop();
        ServiceAtCache(req, 0);
      }
      std::vector<std::pair<std::uint64_t, Request>> still_waiting;
      for (auto& [ready, req] : pending_downs_) {
        if (ready <= now_) {
          butterfly_->SubmitReverse(ButterflyPort(req.addr), req.leaf,
                                    req.id);
        } else {
          still_waiting.emplace_back(ready, req);
        }
      }
      pending_downs_ = std::move(still_waiting);
      for (const auto& arrival : butterfly_->DrainReverse()) {
        const auto it = in_network_.find(arrival.id);
        assert(it != in_network_.end());
        CompleteAt(now_, it->second);
        in_network_.erase(it);
      }
      break;
    }
  }

  // Publish completions due this cycle.
  while (!completions_.empty() && completions_.begin()->first <= now_) {
    for (const auto& resp : completions_.begin()->second) {
      completed_.push_back(resp);
    }
    completions_.erase(completions_.begin());
  }
}

std::vector<MemResponse> MemorySystem::DrainCompleted() {
  auto out = std::move(completed_);
  completed_.clear();
  return out;
}

void MemorySystem::SaveState(persist::Encoder& e) const {
  const auto save_request = [&e](const Request& req) {
    e.U64(req.id);
    e.I32(req.leaf);
    e.Bool(req.is_store);
    e.U32(req.addr);
    e.U32(req.loaded_value);
  };
  const auto save_queue = [&](const std::queue<Request>& q) {
    std::queue<Request> copy = q;
    e.U32(static_cast<std::uint32_t>(copy.size()));
    while (!copy.empty()) {
      save_request(copy.front());
      copy.pop();
    }
  };

  e.U64(next_id_);
  e.U64(now_);
  save_queue(admission_queue_);
  save_queue(root_retry_queue_);

  e.U32(static_cast<std::uint32_t>(pending_downs_.size()));
  for (const auto& [ready, req] : pending_downs_) {
    e.U64(ready);
    save_request(req);
  }

  e.U32(static_cast<std::uint32_t>(completions_.size()));
  for (const auto& [cycle, resps] : completions_) {  // std::map: sorted.
    e.U64(cycle);
    e.U32(static_cast<std::uint32_t>(resps.size()));
    for (const auto& resp : resps) {
      e.U64(resp.id);
      e.Bool(resp.is_store);
      e.U32(resp.value);
    }
  }

  // Hash map: emit sorted by id for deterministic bytes.
  std::vector<std::uint64_t> ids;
  ids.reserve(in_network_.size());
  for (const auto& [id, req] : in_network_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  e.U32(static_cast<std::uint32_t>(ids.size()));
  for (const std::uint64_t id : ids) save_request(in_network_.at(id));

  e.U32(static_cast<std::uint32_t>(completed_.size()));
  for (const auto& resp : completed_) {
    e.U64(resp.id);
    e.Bool(resp.is_store);
    e.U32(resp.value);
  }

  e.U32(static_cast<std::uint32_t>(cluster_caches_.size()));
  for (const auto& cache : cluster_caches_) {  // LRU order is significant.
    e.U32(static_cast<std::uint32_t>(cache.size()));
    for (const isa::Word w : cache) e.U32(w);
  }
  e.U64(cluster_stats_.local_hits);
  e.U64(cluster_stats_.local_misses);
  e.U64(cluster_stats_.invalidations);

  store_.SaveState(e);
  e.Bool(cache_ != nullptr);
  if (cache_ != nullptr) cache_->SaveState(e);
  e.Bool(network_ != nullptr);
  if (network_ != nullptr) network_->SaveState(e);
  e.Bool(butterfly_ != nullptr);
  if (butterfly_ != nullptr) butterfly_->SaveState(e);

  // Hierarchy state: in-flight misses, queued prefetch fills, level models.
  e.U32(static_cast<std::uint32_t>(hier_pending_.size()));
  for (const auto& [ready, req] : hier_pending_) {
    e.U64(ready);
    save_request(req);
  }
  e.U32(static_cast<std::uint32_t>(prefetch_fills_.size()));
  for (const auto& [ready, block] : prefetch_fills_) {
    e.U64(ready);
    e.U32(block);
  }
  e.U64(prefetch_issued_);
  e.Bool(l1d_ != nullptr);
  if (l1d_ != nullptr) l1d_->SaveState(e);
  e.Bool(l2_ != nullptr);
  if (l2_ != nullptr) l2_->SaveState(e);
  e.Bool(prefetcher_ != nullptr);
  if (prefetcher_ != nullptr) prefetcher_->SaveState(e);
}

void MemorySystem::RestoreState(persist::Decoder& d) {
  const auto restore_request = [&d]() {
    Request req;
    req.id = d.U64();
    req.leaf = d.I32();
    req.is_store = d.Bool();
    req.addr = d.U32();
    req.loaded_value = d.U32();
    return req;
  };
  const auto restore_queue = [&](std::queue<Request>& q) {
    q = {};
    const std::uint32_t n = d.U32();
    for (std::uint32_t i = 0; i < n; ++i) q.push(restore_request());
  };

  next_id_ = d.U64();
  now_ = d.U64();
  restore_queue(admission_queue_);
  restore_queue(root_retry_queue_);

  pending_downs_.clear();
  const std::uint32_t num_pending = d.U32();
  pending_downs_.reserve(num_pending);
  for (std::uint32_t i = 0; i < num_pending; ++i) {
    const std::uint64_t ready = d.U64();
    pending_downs_.emplace_back(ready, restore_request());
  }

  completions_.clear();
  const std::uint32_t num_completion_cycles = d.U32();
  for (std::uint32_t i = 0; i < num_completion_cycles; ++i) {
    const std::uint64_t cycle = d.U64();
    const std::uint32_t count = d.U32();
    auto& resps = completions_[cycle];
    resps.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
      MemResponse resp;
      resp.id = d.U64();
      resp.is_store = d.Bool();
      resp.value = d.U32();
      resps.push_back(resp);
    }
  }

  in_network_.clear();
  const std::uint32_t num_in_network = d.U32();
  in_network_.reserve(num_in_network);
  for (std::uint32_t i = 0; i < num_in_network; ++i) {
    Request req = restore_request();
    in_network_.emplace(req.id, req);
  }

  completed_.clear();
  const std::uint32_t num_completed = d.U32();
  completed_.reserve(num_completed);
  for (std::uint32_t i = 0; i < num_completed; ++i) {
    MemResponse resp;
    resp.id = d.U64();
    resp.is_store = d.Bool();
    resp.value = d.U32();
    completed_.push_back(resp);
  }

  const std::uint32_t num_clusters = d.U32();
  if (num_clusters != cluster_caches_.size()) {
    throw persist::FormatError("cluster cache count mismatch");
  }
  for (auto& cache : cluster_caches_) {
    cache.clear();
    const std::uint32_t words = d.U32();
    cache.reserve(words);
    for (std::uint32_t k = 0; k < words; ++k) cache.push_back(d.U32());
  }
  cluster_stats_.local_hits = d.U64();
  cluster_stats_.local_misses = d.U64();
  cluster_stats_.invalidations = d.U64();

  store_.RestoreState(d);
  if (d.Bool() != (cache_ != nullptr)) {
    throw persist::FormatError("memory mode mismatch (cache)");
  }
  if (cache_ != nullptr) cache_->RestoreState(d);
  if (d.Bool() != (network_ != nullptr)) {
    throw persist::FormatError("memory mode mismatch (fat tree)");
  }
  if (network_ != nullptr) network_->RestoreState(d);
  if (d.Bool() != (butterfly_ != nullptr)) {
    throw persist::FormatError("memory mode mismatch (butterfly)");
  }
  if (butterfly_ != nullptr) butterfly_->RestoreState(d);

  hier_pending_.clear();
  const std::uint32_t num_hier = d.U32();
  hier_pending_.reserve(std::min<std::size_t>(num_hier, d.remaining()));
  for (std::uint32_t i = 0; i < num_hier; ++i) {
    const std::uint64_t ready = d.U64();
    hier_pending_.emplace_back(ready, restore_request());
  }
  prefetch_fills_.clear();
  const std::uint32_t num_prefetch = d.U32();
  prefetch_fills_.reserve(std::min<std::size_t>(num_prefetch, d.remaining()));
  for (std::uint32_t i = 0; i < num_prefetch; ++i) {
    const std::uint64_t ready = d.U64();
    const isa::Word block = d.U32();
    prefetch_fills_.emplace_back(ready, block);
  }
  prefetch_issued_ = d.U64();
  if (d.Bool() != (l1d_ != nullptr)) {
    throw persist::FormatError("memory hierarchy mismatch (L1D)");
  }
  if (l1d_ != nullptr) l1d_->RestoreState(d);
  if (d.Bool() != (l2_ != nullptr)) {
    throw persist::FormatError("memory hierarchy mismatch (L2)");
  }
  if (l2_ != nullptr) l2_->RestoreState(d);
  if (d.Bool() != (prefetcher_ != nullptr)) {
    throw persist::FormatError("memory hierarchy mismatch (prefetcher)");
  }
  if (prefetcher_ != nullptr) prefetcher_->RestoreState(d);
}

}  // namespace ultra::memory
