#include "memory/memory_system.hpp"

#include <algorithm>
#include <cassert>

namespace ultra::memory {

MemorySystem::MemorySystem(const MemoryConfig& config, int num_leaves)
    : config_(config),
      num_leaves_(std::max(1, num_leaves)),
      ops_per_cycle_(1),
      profile_(BandwidthProfile::ForRegime(config.regime,
                                           config.bandwidth_scale)) {
  ops_per_cycle_ = profile_.OpsPerCycle(num_leaves_);
  cache_ = std::make_unique<InterleavedCache>(config_.cache, &store_);
  if (config_.mode == MemTimingMode::kFatTree) {
    network_ = std::make_unique<FatTreeNetwork>(num_leaves_, profile_);
  }
  if (config_.mode == MemTimingMode::kButterfly) {
    butterfly_ = std::make_unique<ButterflyNetwork>(num_leaves_);
  }
  if (config_.cluster_cache_leaves > 0) {
    const int clusters =
        (num_leaves_ + config_.cluster_cache_leaves - 1) /
        config_.cluster_cache_leaves;
    cluster_caches_.assign(static_cast<std::size_t>(clusters), {});
  }
}

int MemorySystem::ButterflyPort(isa::Word addr) const {
  return cache_->BankOf(addr) % num_leaves_;
}

int MemorySystem::ClusterOf(int leaf) const {
  return leaf / config_.cluster_cache_leaves;
}

bool MemorySystem::ClusterCacheLookup(int cluster, isa::Word addr) {
  auto& cache = cluster_caches_[static_cast<std::size_t>(cluster)];
  const auto it = std::find(cache.begin(), cache.end(), addr & ~isa::Word{3});
  if (it == cache.end()) {
    ++cluster_stats_.local_misses;
    return false;
  }
  // LRU: move to the back (most recent).
  cache.erase(it);
  cache.push_back(addr & ~isa::Word{3});
  ++cluster_stats_.local_hits;
  return true;
}

void MemorySystem::ClusterCacheInsert(int cluster, isa::Word addr) {
  auto& cache = cluster_caches_[static_cast<std::size_t>(cluster)];
  const isa::Word aligned = addr & ~isa::Word{3};
  if (std::find(cache.begin(), cache.end(), aligned) != cache.end()) return;
  if (static_cast<int>(cache.size()) >= config_.cluster_cache_words) {
    cache.erase(cache.begin());  // Evict LRU.
  }
  cache.push_back(aligned);
}

void MemorySystem::ClusterCacheInvalidate(isa::Word addr) {
  const isa::Word aligned = addr & ~isa::Word{3};
  for (auto& cache : cluster_caches_) {
    const auto it = std::find(cache.begin(), cache.end(), aligned);
    if (it != cache.end()) {
      cache.erase(it);
      ++cluster_stats_.invalidations;
    }
  }
}

void MemorySystem::Reset(const std::map<isa::Word, isa::Word>& image) {
  store_.Load(image);
  cache_->Flush();
  for (auto& c : cluster_caches_) c.clear();
  if (config_.mode == MemTimingMode::kFatTree) {
    network_ = std::make_unique<FatTreeNetwork>(num_leaves_, profile_);
  }
  if (config_.mode == MemTimingMode::kButterfly) {
    butterfly_ = std::make_unique<ButterflyNetwork>(num_leaves_);
  }
  admission_queue_ = {};
  root_retry_queue_ = {};
  completions_.clear();
  in_network_.clear();
  completed_.clear();
  now_ = 0;
}

std::uint64_t MemorySystem::Submit(int leaf, bool is_store, isa::Word addr,
                                   isa::Word value) {
  Request req;
  req.id = next_id_++;
  req.leaf = leaf % num_leaves_;
  req.is_store = is_store;
  req.addr = addr;
  // Architectural effect now: stores are submitted post-serialization, so
  // program order is already correct, and any later load is held back by the
  // Figure 5 circuits until this store's completion signal.
  if (is_store) {
    store_.WriteWord(addr, value);
    // Write-through with invalidation keeps the distributed caches
    // coherent; the Figure 5 circuits already order loads after stores.
    if (!cluster_caches_.empty()) ClusterCacheInvalidate(addr);
  } else {
    req.loaded_value = store_.ReadWord(addr);
    // A distributed-cache hit completes locally, spending no tree
    // bandwidth (the whole point of the Section 7 suggestion).
    if (!cluster_caches_.empty() &&
        ClusterCacheLookup(ClusterOf(req.leaf), addr)) {
      CompleteAt(now_ + static_cast<std::uint64_t>(
                            config_.cluster_cache_hit_latency),
                 req);
      return req.id;
    }
  }

  switch (config_.mode) {
    case MemTimingMode::kMagic:
      CompleteAt(now_ + static_cast<std::uint64_t>(
                            is_store ? config_.magic_store_latency
                                     : config_.magic_load_latency),
                 req);
      break;
    case MemTimingMode::kBandwidthLimited:
      admission_queue_.push(req);
      break;
    case MemTimingMode::kFatTree:
      in_network_.emplace(req.id, req);
      network_->SubmitUp(req.leaf, req.id);
      break;
    case MemTimingMode::kButterfly:
      in_network_.emplace(req.id, req);
      butterfly_->SubmitForward(req.leaf, ButterflyPort(addr), req.id);
      break;
  }
  return req.id;
}

std::uint64_t MemorySystem::SubmitLoad(int leaf, isa::Word addr) {
  return Submit(leaf, /*is_store=*/false, addr, 0);
}

std::uint64_t MemorySystem::SubmitStore(int leaf, isa::Word addr,
                                        isa::Word value) {
  return Submit(leaf, /*is_store=*/true, addr, value);
}

void MemorySystem::CompleteAt(std::uint64_t cycle, const Request& req) {
  if (!req.is_store && !cluster_caches_.empty()) {
    ClusterCacheInsert(ClusterOf(req.leaf), req.addr);
  }
  MemResponse resp;
  resp.id = req.id;
  resp.is_store = req.is_store;
  resp.value = req.loaded_value;
  completions_[cycle].push_back(resp);
}

void MemorySystem::ServiceAtCache(const Request& req,
                                  int extra_delay_before_response) {
  const int latency = cache_->Access(req.addr, req.is_store);
  if (latency < 0) {
    // Bank conflict: retry next cycle at the cache side.
    root_retry_queue_.push(req);
    return;
  }
  if (config_.mode == MemTimingMode::kFatTree ||
      config_.mode == MemTimingMode::kButterfly) {
    // The response starts its return trip once the cache latency elapses.
    pending_downs_.push_back({now_ + static_cast<std::uint64_t>(latency), req});
    return;
  }
  CompleteAt(now_ + static_cast<std::uint64_t>(latency +
                                               extra_delay_before_response),
             req);
}

void MemorySystem::Tick() {
  ++now_;
  cache_->NewCycle();

  switch (config_.mode) {
    case MemTimingMode::kMagic:
      break;
    case MemTimingMode::kBandwidthLimited: {
      // Retried bank-conflict requests compete for bandwidth first.
      int budget = ops_per_cycle_;
      while (budget > 0 && !root_retry_queue_.empty()) {
        Request req = root_retry_queue_.front();
        root_retry_queue_.pop();
        --budget;
        ServiceAtCache(req, 0);
      }
      while (budget > 0 && !admission_queue_.empty()) {
        Request req = admission_queue_.front();
        admission_queue_.pop();
        --budget;
        ServiceAtCache(req, 0);
      }
      break;
    }
    case MemTimingMode::kFatTree: {
      network_->Tick();
      for (const std::uint64_t id : network_->DrainRoot()) {
        const auto it = in_network_.find(id);
        assert(it != in_network_.end());
        ServiceAtCache(it->second, 0);
      }
      // Bank-conflict retries at the root.
      const std::size_t retries = root_retry_queue_.size();
      for (std::size_t i = 0; i < retries; ++i) {
        Request req = root_retry_queue_.front();
        root_retry_queue_.pop();
        ServiceAtCache(req, 0);
      }
      // Responses whose cache latency has elapsed start the downward trip.
      std::vector<std::pair<std::uint64_t, Request>> still_waiting;
      for (auto& [ready, req] : pending_downs_) {
        if (ready <= now_) {
          network_->SubmitDown(req.leaf, req.id);
        } else {
          still_waiting.emplace_back(ready, req);
        }
      }
      pending_downs_ = std::move(still_waiting);
      for (const auto& delivery : network_->DrainLeaves()) {
        const auto it = in_network_.find(delivery.id);
        assert(it != in_network_.end());
        CompleteAt(now_, it->second);
        in_network_.erase(it);
      }
      break;
    }
    case MemTimingMode::kButterfly: {
      butterfly_->Tick();
      for (const auto& arrival : butterfly_->DrainForward()) {
        const auto it = in_network_.find(arrival.id);
        assert(it != in_network_.end());
        ServiceAtCache(it->second, 0);
      }
      const std::size_t retries = root_retry_queue_.size();
      for (std::size_t i = 0; i < retries; ++i) {
        Request req = root_retry_queue_.front();
        root_retry_queue_.pop();
        ServiceAtCache(req, 0);
      }
      std::vector<std::pair<std::uint64_t, Request>> still_waiting;
      for (auto& [ready, req] : pending_downs_) {
        if (ready <= now_) {
          butterfly_->SubmitReverse(ButterflyPort(req.addr), req.leaf,
                                    req.id);
        } else {
          still_waiting.emplace_back(ready, req);
        }
      }
      pending_downs_ = std::move(still_waiting);
      for (const auto& arrival : butterfly_->DrainReverse()) {
        const auto it = in_network_.find(arrival.id);
        assert(it != in_network_.end());
        CompleteAt(now_, it->second);
        in_network_.erase(it);
      }
      break;
    }
  }

  // Publish completions due this cycle.
  while (!completions_.empty() && completions_.begin()->first <= now_) {
    for (const auto& resp : completions_.begin()->second) {
      completed_.push_back(resp);
    }
    completions_.erase(completions_.begin());
  }
}

std::vector<MemResponse> MemorySystem::DrainCompleted() {
  auto out = std::move(completed_);
  completed_.clear();
  return out;
}

}  // namespace ultra::memory
