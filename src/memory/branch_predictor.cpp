#include "memory/branch_predictor.hpp"

namespace ultra::memory {

bool NotTakenPredictor::PredictTaken(std::size_t /*pc*/,
                                     const isa::Instruction& inst) {
  return !isa::IsConditionalBranch(inst.op);  // Jumps are always taken.
}

bool BtfnPredictor::PredictTaken(std::size_t pc,
                                 const isa::Instruction& inst) {
  if (!isa::IsConditionalBranch(inst.op)) return true;
  return static_cast<std::size_t>(inst.imm) <= pc;  // Backward => taken.
}

TwoBitPredictor::TwoBitPredictor(int table_size)
    : counters_(static_cast<std::size_t>(table_size), 1) {}

bool TwoBitPredictor::PredictTaken(std::size_t pc,
                                   const isa::Instruction& inst) {
  if (!isa::IsConditionalBranch(inst.op)) return true;
  return counters_[pc % counters_.size()] >= 2;
}

void TwoBitPredictor::Update(std::size_t pc, bool taken) {
  auto& c = counters_[pc % counters_.size()];
  if (taken && c < 3) ++c;
  if (!taken && c > 0) --c;
}

OraclePredictor::OraclePredictor(
    std::vector<std::vector<std::uint8_t>> outcomes_by_pc)
    : outcomes_by_pc_(std::move(outcomes_by_pc)),
      next_index_(outcomes_by_pc_.size(), 0) {}

bool OraclePredictor::PredictTaken(std::size_t pc,
                                   const isa::Instruction& inst) {
  if (pc >= outcomes_by_pc_.size()) {
    return !isa::IsConditionalBranch(inst.op);
  }
  auto& k = next_index_[pc];
  const auto& outcomes = outcomes_by_pc_[pc];
  if (k >= outcomes.size()) {
    return !isa::IsConditionalBranch(inst.op);
  }
  return outcomes[k++] != 0;
}

std::unique_ptr<BranchPredictor> OraclePredictor::Clone() const {
  return std::make_unique<OraclePredictor>(outcomes_by_pc_);
}

void TwoBitPredictor::SaveState(persist::Encoder& e) const {
  e.U32(static_cast<std::uint32_t>(counters_.size()));
  for (const std::uint8_t c : counters_) e.U8(c);
}

void TwoBitPredictor::RestoreState(persist::Decoder& d) {
  if (d.U32() != counters_.size()) {
    throw persist::FormatError("predictor table size mismatch");
  }
  for (std::uint8_t& c : counters_) c = d.U8();
}

void OraclePredictor::SaveState(persist::Encoder& e) const {
  e.U32(static_cast<std::uint32_t>(next_index_.size()));
  for (const std::size_t k : next_index_) e.U64(k);
}

void OraclePredictor::RestoreState(persist::Decoder& d) {
  if (d.U32() != next_index_.size()) {
    throw persist::FormatError("oracle cursor count mismatch");
  }
  for (std::size_t& k : next_index_) k = static_cast<std::size_t>(d.U64());
}

}  // namespace ultra::memory
