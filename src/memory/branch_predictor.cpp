#include "memory/branch_predictor.hpp"

namespace ultra::memory {

bool NotTakenPredictor::PredictTaken(std::size_t /*pc*/,
                                     const isa::Instruction& inst) {
  return !isa::IsConditionalBranch(inst.op);  // Jumps are always taken.
}

bool BtfnPredictor::PredictTaken(std::size_t pc,
                                 const isa::Instruction& inst) {
  if (!isa::IsConditionalBranch(inst.op)) return true;
  return static_cast<std::size_t>(inst.imm) <= pc;  // Backward => taken.
}

TwoBitPredictor::TwoBitPredictor(int table_size)
    : counters_(static_cast<std::size_t>(table_size), 1) {}

bool TwoBitPredictor::PredictTaken(std::size_t pc,
                                   const isa::Instruction& inst) {
  if (!isa::IsConditionalBranch(inst.op)) return true;
  return counters_[pc % counters_.size()] >= 2;
}

void TwoBitPredictor::Update(std::size_t pc, bool taken) {
  auto& c = counters_[pc % counters_.size()];
  if (taken && c < 3) ++c;
  if (!taken && c > 0) --c;
}

OraclePredictor::OraclePredictor(
    std::vector<std::vector<std::uint8_t>> outcomes_by_pc)
    : outcomes_by_pc_(std::move(outcomes_by_pc)),
      next_index_(outcomes_by_pc_.size(), 0) {}

bool OraclePredictor::PredictTaken(std::size_t pc,
                                   const isa::Instruction& inst) {
  if (pc >= outcomes_by_pc_.size()) {
    return !isa::IsConditionalBranch(inst.op);
  }
  auto& k = next_index_[pc];
  const auto& outcomes = outcomes_by_pc_[pc];
  if (k >= outcomes.size()) {
    return !isa::IsConditionalBranch(inst.op);
  }
  return outcomes[k++] != 0;
}

std::unique_ptr<BranchPredictor> OraclePredictor::Clone() const {
  return std::make_unique<OraclePredictor>(outcomes_by_pc_);
}

}  // namespace ultra::memory
