// Interleaved, banked data cache (Section 2: "We propose to connect the
// Ultrascalar I datapath to an interleaved data cache ... via fat-tree or
// butterfly networks").
//
// Lines are interleaved across banks at line granularity, so consecutive
// lines live in different banks and independent accesses proceed in
// parallel. Each bank is set-associative with LRU replacement and accepts a
// fixed number of accesses per cycle; excess accesses are bank conflicts the
// caller must retry or queue.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/opcode.hpp"
#include "memory/backing_store.hpp"
#include "persist/serial.hpp"

namespace ultra::memory {

struct CacheConfig {
  int num_banks = 8;      // Power of two.
  int sets_per_bank = 64;
  int ways = 2;
  int line_bytes = 16;    // Power of two.
  int hit_latency = 1;    // Cycles from bank access to data.
  int miss_penalty = 10;  // Additional cycles on a miss.
  int ports_per_bank = 1; // Accesses a bank accepts per cycle.
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bank_conflicts = 0;

  [[nodiscard]] double HitRate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// The cache is a timing model layered over a BackingStore: data always
/// comes from / goes to the store (write-through), and the cache decides how
/// many cycles the access takes. This keeps the architectural state in one
/// place, which the correctness tests rely on.
class InterleavedCache {
 public:
  InterleavedCache(const CacheConfig& config, BackingStore* store);

  /// Which bank serves @p byte_address.
  [[nodiscard]] int BankOf(isa::Word byte_address) const;

  /// Starts one access (load or store). Returns the total latency in cycles,
  /// or -1 if the bank is out of ports this cycle (a bank conflict; the
  /// caller retries next cycle). Call NewCycle() once per simulated cycle.
  int Access(isa::Word byte_address, bool is_store);

  /// Resets per-cycle port counts; call at the start of every cycle.
  void NewCycle();

  /// Drops all cached lines (e.g. between benchmark runs).
  void Flush();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  /// Checkpoint support: full timing state — lines (tags, validity, LRU
  /// stamps), per-cycle port counts, and stats — so a restored run observes
  /// the same hit/miss/conflict sequence as the uninterrupted one.
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  // Larger = more recently used.
  };

  CacheConfig config_;
  BackingStore* store_;
  std::vector<Line> lines_;  // [bank][set][way] flattened.
  std::vector<int> ports_used_;
  std::uint64_t access_counter_ = 0;
  CacheStats stats_;

  [[nodiscard]] std::size_t LineIndex(int bank, int set, int way) const;
};

}  // namespace ultra::memory
