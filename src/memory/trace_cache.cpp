#include "memory/trace_cache.hpp"

#include <cassert>

namespace ultra::memory {

TraceCache::TraceCache(int capacity, int max_branches, int max_length)
    : capacity_(capacity), max_branches_(max_branches),
      max_length_(max_length) {
  assert(capacity_ >= 1);
  assert(max_branches_ >= 0 && max_branches_ < 20);
  assert(max_length_ >= 1);
}

const std::vector<std::size_t>* TraceCache::Lookup(
    std::size_t pc, std::uint32_t outcome_bits) {
  const Key key = MakeKey(pc, outcome_bits);
  const auto it = traces_.find(key);
  if (it == traces_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.erase(it->second.second);
  lru_.push_front(key);
  it->second.second = lru_.begin();
  return &it->second.first;
}

void TraceCache::Install(std::size_t pc, std::uint32_t outcome_bits,
                         std::vector<std::size_t> pcs) {
  const Key key = MakeKey(pc, outcome_bits);
  if (const auto it = traces_.find(key); it != traces_.end()) {
    it->second.first = std::move(pcs);
    lru_.erase(it->second.second);
    lru_.push_front(key);
    it->second.second = lru_.begin();
    return;
  }
  if (static_cast<int>(traces_.size()) >= capacity_) {
    const Key victim = lru_.back();
    lru_.pop_back();
    traces_.erase(victim);
  }
  lru_.push_front(key);
  traces_.emplace(key, std::make_pair(std::move(pcs), lru_.begin()));
}

void TraceCache::SaveState(persist::Encoder& e) const {
  e.U32(static_cast<std::uint32_t>(lru_.size()));
  for (const Key key : lru_) {  // Most recent first.
    e.U64(key);
    const auto it = traces_.find(key);
    e.U32(static_cast<std::uint32_t>(it->second.first.size()));
    for (const std::size_t pc : it->second.first) e.U64(pc);
  }
  e.U64(stats_.hits);
  e.U64(stats_.misses);
}

void TraceCache::RestoreState(persist::Decoder& d) {
  lru_.clear();
  traces_.clear();
  const std::uint32_t n = d.U32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Key key = d.U64();
    const std::uint32_t len = d.U32();
    std::vector<std::size_t> pcs;
    pcs.reserve(len);
    for (std::uint32_t k = 0; k < len; ++k) {
      pcs.push_back(static_cast<std::size_t>(d.U64()));
    }
    // Records were saved most-recent-first; push_back keeps that order.
    lru_.push_back(key);
    traces_.emplace(key, std::make_pair(std::move(pcs), std::prev(lru_.end())));
  }
  stats_.hits = d.U64();
  stats_.misses = d.U64();
}

}  // namespace ultra::memory
