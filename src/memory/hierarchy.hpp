// Multi-level cache hierarchy models (ROADMAP item 3).
//
// The paper's memory model stops at the M(n) bandwidth knob and one banked
// cache; this file adds the axes the Performance-Optimum Superscalar
// Architecture study (arxiv 1204.2809) sweeps: per-level size, associativity,
// block size, hit/miss latency, write-back with dirty eviction, and a stride
// prefetcher between levels. Like InterleavedCache, every model here is
// timing-only: architectural data always lives in the BackingStore, so the
// correctness tests keep a single source of truth.
//
//  * CacheLevelModel  -- one set-associative level (L1I, L1D, or L2).
//  * StridePrefetcher -- region-keyed stride detector feeding L1 fills.
//
// MemorySystem composes L1D + L2 + prefetcher in front of the existing
// kMagic / kBandwidthLimited / kFatTree / kButterfly backing tier;
// core::FetchEngine owns an L1I instance for instruction fetch.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/opcode.hpp"
#include "persist/serial.hpp"

namespace ultra::memory {

struct CacheLevelConfig {
  bool enabled = false;
  int sets = 64;         // Power of two.
  int ways = 4;
  int block_bytes = 32;  // Power of two, >= 4.
  int hit_latency = 1;   // Cycles for a lookup that hits.
  int miss_latency = 8;  // Additional cycles charged when the lookup misses.

  [[nodiscard]] int CapacityBytes() const { return sets * ways * block_bytes; }
};

struct PrefetchConfig {
  int depth = 0;           // Blocks prefetched ahead per trigger; 0 = off.
  int table_entries = 16;  // Stride-detector entries (LRU-replaced).
  int fill_latency = 12;   // Cycles from prefetch issue to the L1 fill.
};

struct HierarchyConfig {
  CacheLevelConfig l1i;
  CacheLevelConfig l1d;
  CacheLevelConfig l2;
  PrefetchConfig prefetch;

  /// True when loads/stores take the hierarchy path in MemorySystem.
  [[nodiscard]] bool DataPathEnabled() const {
    return l1d.enabled || l2.enabled;
  }
};

struct CacheLevelStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;      // Dirty victims evicted.
  std::uint64_t prefetch_fills = 0;  // Lines installed by the prefetcher.
  std::uint64_t prefetch_hits = 0;   // Demand hits on prefetched lines.

  [[nodiscard]] double MissRate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(misses) / total;
  }
};

/// One set-associative, write-back cache level. Timing/occupancy only: a
/// Lookup decides hit or miss and updates LRU/dirty bits; data stays in the
/// BackingStore.
class CacheLevelModel {
 public:
  explicit CacheLevelModel(const CacheLevelConfig& config);

  struct LookupResult {
    bool hit = false;
    bool was_prefetched = false;  // Hit on a line the prefetcher installed.
  };

  /// Probes @p byte_address. A store that hits marks the line dirty
  /// (write-back: no traffic to the next tier until eviction).
  LookupResult Lookup(isa::Word byte_address, bool is_store);

  /// Installs the block holding @p byte_address (LRU victim). Returns true
  /// when the victim was dirty, i.e. a write-back to the next tier happened.
  bool Fill(isa::Word byte_address, bool dirty, bool prefetched);

  /// Presence probe with no LRU/stats side effects (prefetch dedup).
  [[nodiscard]] bool Contains(isa::Word byte_address) const;

  void Flush();

  [[nodiscard]] const CacheLevelConfig& config() const { return config_; }
  [[nodiscard]] const CacheLevelStats& stats() const { return stats_; }

  /// Checkpoint support: tags, valid/dirty/prefetched bits, LRU stamps, and
  /// stats, so a restored run observes the same hit/miss sequence.
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;
    std::uint64_t lru = 0;  // Larger = more recently used.
  };

  CacheLevelConfig config_;
  int block_shift_;
  std::vector<Line> lines_;  // [set][way] flattened.
  std::uint64_t access_counter_ = 0;
  CacheLevelStats stats_;

  [[nodiscard]] int SetOf(isa::Word byte_address) const;
  [[nodiscard]] std::uint64_t TagOf(isa::Word byte_address) const;
  [[nodiscard]] std::size_t LineIndex(int set, int way) const {
    return static_cast<std::size_t>(set) * static_cast<std::size_t>(config_.ways) +
           static_cast<std::size_t>(way);
  }
};

/// Region-keyed stride detector. Each entry tracks the last missing block
/// and the inter-miss stride within one aligned 4 KiB region; two
/// consecutive equal strides arm the entry, after which every further miss
/// emits `depth` predicted blocks. Keying by region keeps independent
/// streams (and out-of-order interleavings across streams) from corrupting
/// each other's stride state.
class StridePrefetcher {
 public:
  explicit StridePrefetcher(const PrefetchConfig& config);

  /// Observes a demand miss on @p block_address (block-aligned). Appends
  /// predicted block addresses to @p out (not cleared; may append nothing).
  void ObserveMiss(isa::Word block_address, int block_bytes,
                   std::vector<isa::Word>& out);

  [[nodiscard]] const PrefetchConfig& config() const { return config_; }

  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  struct Entry {
    bool valid = false;
    isa::Word region = 0;
    isa::Word last_block = 0;
    std::int64_t stride = 0;
    int confidence = 0;
    std::uint64_t lru = 0;
  };

  PrefetchConfig config_;
  std::vector<Entry> entries_;
  std::uint64_t use_counter_ = 0;
};

}  // namespace ultra::memory
