// Word-granular sparse backing store (main memory).
#pragma once

#include <map>
#include <unordered_map>

#include "isa/opcode.hpp"
#include "persist/serial.hpp"

namespace ultra::memory {

/// Byte-addressed main memory storing 32-bit words. Unaligned addresses are
/// rounded down to word boundaries (the reference machine has no unaligned
/// access). Unwritten locations read as zero.
class BackingStore {
 public:
  BackingStore() = default;

  /// Replaces the contents with @p image (byte address -> word).
  void Load(const std::map<isa::Word, isa::Word>& image);

  [[nodiscard]] isa::Word ReadWord(isa::Word byte_address) const;
  void WriteWord(isa::Word byte_address, isa::Word value);

  [[nodiscard]] std::size_t footprint_words() const { return words_.size(); }

  /// Sorted copy of every populated word (byte address -> word), for
  /// cross-simulator final-state comparison and result export.
  [[nodiscard]] std::map<isa::Word, isa::Word> Snapshot() const;

  /// Checkpoint support: the populated words in sorted address order (the
  /// hash map's iteration order must never reach the serialized bytes).
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  static isa::Word Align(isa::Word a) { return a & ~isa::Word{3}; }
  std::unordered_map<isa::Word, isa::Word> words_;
};

}  // namespace ultra::memory
