// Instruction trace cache (Rotenberg/Bennett/Smith-style), the fetch-side
// structure the paper proposes to connect through the instruction fat tree.
//
// A trace is a run of dynamic instructions starting at a PC under a specific
// vector of predicted branch outcomes. A hit supplies the whole run in one
// cycle; a miss falls back to sequential fetch (which stops at the first
// predicted-taken transfer) and installs the observed run.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "persist/serial.hpp"

namespace ultra::memory {

struct TraceCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class TraceCache {
 public:
  /// @p capacity is the number of traces held (LRU replacement);
  /// @p max_branches is the number of embedded conditional branches a single
  /// trace may contain; @p max_length is the trace length in instructions.
  TraceCache(int capacity, int max_branches, int max_length);

  [[nodiscard]] int max_branches() const { return max_branches_; }
  [[nodiscard]] int max_length() const { return max_length_; }

  /// Looks up the trace starting at @p pc under predicted @p outcome_bits
  /// (bit k = outcome of the k-th conditional branch in the trace).
  /// Returns nullptr on miss.
  const std::vector<std::size_t>* Lookup(std::size_t pc,
                                         std::uint32_t outcome_bits);

  /// Installs a trace (called after a miss).
  void Install(std::size_t pc, std::uint32_t outcome_bits,
               std::vector<std::size_t> pcs);

  [[nodiscard]] const TraceCacheStats& stats() const { return stats_; }

  /// Checkpoint support: traces in LRU order (most recent first) plus
  /// stats, so replacement decisions replay identically after a restore.
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  using Key = std::uint64_t;
  static Key MakeKey(std::size_t pc, std::uint32_t outcome_bits) {
    return (static_cast<std::uint64_t>(pc) << 20) ^ outcome_bits;
  }

  int capacity_;
  int max_branches_;
  int max_length_;
  std::list<Key> lru_;  // Front = most recent.
  std::unordered_map<Key, std::pair<std::vector<std::size_t>,
                                    std::list<Key>::iterator>>
      traces_;
  TraceCacheStats stats_;
};

}  // namespace ultra::memory
