#include "memory/butterfly.hpp"

#include <algorithm>
#include <cassert>

namespace ultra::memory {

namespace {
int NextPowerOfTwo(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

ButterflyNetwork::ButterflyNetwork(int num_leaves)
    : leaves_(NextPowerOfTwo(std::max(1, num_leaves))), stages_(0) {
  for (int v = leaves_; v > 1; v >>= 1) ++stages_;
  fwd_.assign(static_cast<std::size_t>(stages_ + 1),
              std::vector<Node>(static_cast<std::size_t>(leaves_)));
  rev_.assign(static_cast<std::size_t>(stages_ + 1),
              std::vector<Node>(static_cast<std::size_t>(leaves_)));
}

void ButterflyNetwork::SubmitForward(int leaf, int bank, std::uint64_t id) {
  assert(leaf >= 0 && leaf < leaves_);
  assert(bank >= 0 && bank < leaves_);
  fwd_[0][static_cast<std::size_t>(leaf)].queue.push_back({id, bank});
  ++stats_.messages;
}

void ButterflyNetwork::SubmitReverse(int bank, int leaf, std::uint64_t id) {
  assert(leaf >= 0 && leaf < leaves_);
  assert(bank >= 0 && bank < leaves_);
  rev_[0][static_cast<std::size_t>(bank)].queue.push_back({id, leaf});
  ++stats_.messages;
}

void ButterflyNetwork::TickDirection(std::vector<std::vector<Node>>& net,
                                     std::vector<Arrival>& out) {
  // Deepest stages first so a message advances one stage per cycle.
  for (int s = stages_ - 1; s >= 0; --s) {
    for (int p = 0; p < leaves_; ++p) {
      auto& q = net[static_cast<std::size_t>(s)][static_cast<std::size_t>(p)]
                    .queue;
      bool straight_used = false;
      bool cross_used = false;
      std::deque<Msg> stay;
      while (!q.empty()) {
        const Msg m = q.front();
        q.pop_front();
        const bool cross = ((p ^ m.dest) >> s) & 1;
        const int next_row = cross ? (p ^ (1 << s)) : p;
        bool& used = cross ? cross_used : straight_used;
        if (used) {
          stay.push_back(m);
          continue;
        }
        used = true;
        if (s + 1 == stages_) {
          out.push_back({next_row, m.id});
        } else {
          net[static_cast<std::size_t>(s + 1)]
             [static_cast<std::size_t>(next_row)]
                 .queue.push_back(m);
        }
      }
      q = std::move(stay);
      stats_.queue_cycles += q.size();
      stats_.max_queue_depth =
          std::max<std::uint64_t>(stats_.max_queue_depth, q.size());
    }
  }
  // Degenerate single-leaf network: stage 0 is also the output.
  if (stages_ == 0) {
    auto& q = net[0][0].queue;
    while (!q.empty()) {
      out.push_back({0, q.front().id});
      q.pop_front();
    }
  }
}

void ButterflyNetwork::Tick() {
  TickDirection(fwd_, fwd_out_);
  TickDirection(rev_, rev_out_);
}

std::vector<ButterflyNetwork::Arrival> ButterflyNetwork::DrainForward() {
  auto out = std::move(fwd_out_);
  fwd_out_.clear();
  return out;
}

std::vector<ButterflyNetwork::Arrival> ButterflyNetwork::DrainReverse() {
  auto out = std::move(rev_out_);
  rev_out_.clear();
  return out;
}

void ButterflyNetwork::SaveState(persist::Encoder& e) const {
  const auto save_net = [&e](const std::vector<std::vector<Node>>& net) {
    e.U32(static_cast<std::uint32_t>(net.size()));
    for (const auto& stage : net) {
      e.U32(static_cast<std::uint32_t>(stage.size()));
      for (const Node& node : stage) {
        e.U32(static_cast<std::uint32_t>(node.queue.size()));
        for (const Msg& m : node.queue) {
          e.U64(m.id);
          e.I32(m.dest);
        }
      }
    }
  };
  const auto save_out = [&e](const std::vector<Arrival>& out) {
    e.U32(static_cast<std::uint32_t>(out.size()));
    for (const Arrival& a : out) {
      e.I32(a.port);
      e.U64(a.id);
    }
  };
  save_net(fwd_);
  save_net(rev_);
  save_out(fwd_out_);
  save_out(rev_out_);
  e.U64(stats_.messages);
  e.U64(stats_.queue_cycles);
  e.U64(stats_.max_queue_depth);
}

void ButterflyNetwork::RestoreState(persist::Decoder& d) {
  const auto restore_net = [&d](std::vector<std::vector<Node>>& net) {
    if (d.U32() != net.size()) {
      throw persist::FormatError("butterfly geometry mismatch");
    }
    for (auto& stage : net) {
      if (d.U32() != stage.size()) {
        throw persist::FormatError("butterfly geometry mismatch");
      }
      for (Node& node : stage) {
        node.queue.clear();
        const std::uint32_t n = d.U32();
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::uint64_t id = d.U64();
          node.queue.push_back({id, d.I32()});
        }
      }
    }
  };
  const auto restore_out = [&d](std::vector<Arrival>& out) {
    out.clear();
    const std::uint32_t n = d.U32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const int port = d.I32();
      out.push_back({port, d.U64()});
    }
  };
  restore_net(fwd_);
  restore_net(rev_);
  restore_out(fwd_out_);
  restore_out(rev_out_);
  stats_.messages = d.U64();
  stats_.queue_cycles = d.U64();
  stats_.max_queue_depth = d.U64();
}

}  // namespace ultra::memory
