#include "memory/fat_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "circuit/signal.hpp"

namespace ultra::memory {

namespace {
int NextPowerOfTwo(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

FatTreeNetwork::FatTreeNetwork(int num_leaves, const BandwidthProfile& profile)
    : leaves_(NextPowerOfTwo(std::max(1, num_leaves))),
      levels_(circuit::CeilLog2(leaves_)),
      profile_(profile) {
  nodes_.resize(static_cast<std::size_t>(2 * leaves_));
}

int FatTreeNetwork::SubtreeLeaves(int node) const {
  int depth = 0;
  for (int v = node; v > 1; v >>= 1) ++depth;
  return leaves_ >> depth;
}

int FatTreeNetwork::LinkCapacity(int subtree_leaves) const {
  return std::max(1, static_cast<int>(std::floor(
                         profile_(static_cast<double>(subtree_leaves)))));
}

void FatTreeNetwork::SubmitUp(int leaf, std::uint64_t id) {
  assert(leaf >= 0 && leaf < leaves_);
  nodes_[static_cast<std::size_t>(LeafNode(leaf))].up.push_back({id, leaf});
  ++stats_.messages_up;
}

void FatTreeNetwork::SubmitDown(int leaf, std::uint64_t id) {
  assert(leaf >= 0 && leaf < leaves_);
  nodes_[1].down.push_back({id, leaf});
  ++stats_.messages_down;
}

void FatTreeNetwork::Tick() {
  // Up direction: shallow nodes first, so a message moves one level per
  // cycle. The root's uplink is the memory port itself with capacity
  // M(leaves); processing it before the deeper nodes keeps the one-hop-per-
  // cycle discipline.
  {
    auto& q = nodes_[1].up;
    const int cap = LinkCapacity(leaves_);
    for (int moved = 0; moved < cap && !q.empty(); ++moved) {
      at_root_.push_back(q.front().id);
      q.pop_front();
    }
    stats_.queue_cycles += q.size();
  }
  for (int node = 2; node < 2 * leaves_; ++node) {
    auto& q = nodes_[static_cast<std::size_t>(node)].up;
    const int cap = LinkCapacity(SubtreeLeaves(node));
    const int parent = node / 2;
    for (int moved = 0; moved < cap && !q.empty(); ++moved) {
      Msg m = q.front();
      q.pop_front();
      nodes_[static_cast<std::size_t>(parent)].up.push_back(m);
    }
    stats_.queue_cycles += q.size();
    stats_.max_queue_depth = std::max<std::uint64_t>(
        stats_.max_queue_depth, q.size());
  }

  // Down direction: deep nodes first.
  for (int node = 2 * leaves_ - 1; node >= 1; --node) {
    auto& q = nodes_[static_cast<std::size_t>(node)].down;
    if (node >= leaves_) {
      // Leaf node: deliver everything that has arrived.
      while (!q.empty()) {
        at_leaves_.push_back({q.front().leaf, q.front().id});
        q.pop_front();
      }
      continue;
    }
    // Internal node: route each message toward the child containing its
    // target leaf, subject to the per-child link capacity.
    const int left = 2 * node;
    const int right = 2 * node + 1;
    const int child_cap = LinkCapacity(SubtreeLeaves(left));
    int moved_left = 0;
    int moved_right = 0;
    std::deque<Msg> stay;
    while (!q.empty()) {
      Msg m = q.front();
      q.pop_front();
      const int leaf_node = LeafNode(m.leaf);
      // Is the target leaf under the right child?
      int v = leaf_node;
      while (v / 2 != node) v /= 2;
      if (v == left && moved_left < child_cap) {
        nodes_[static_cast<std::size_t>(left)].down.push_back(m);
        ++moved_left;
      } else if (v == right && moved_right < child_cap) {
        nodes_[static_cast<std::size_t>(right)].down.push_back(m);
        ++moved_right;
      } else {
        stay.push_back(m);
      }
    }
    q = std::move(stay);
    stats_.queue_cycles += q.size();
  }
}

std::vector<std::uint64_t> FatTreeNetwork::DrainRoot() {
  auto out = std::move(at_root_);
  at_root_.clear();
  return out;
}

std::vector<FatTreeNetwork::Delivery> FatTreeNetwork::DrainLeaves() {
  auto out = std::move(at_leaves_);
  at_leaves_.clear();
  return out;
}

void FatTreeNetwork::SaveState(persist::Encoder& e) const {
  e.U32(static_cast<std::uint32_t>(nodes_.size()));
  for (const Node& node : nodes_) {
    e.U32(static_cast<std::uint32_t>(node.up.size()));
    for (const Msg& m : node.up) {
      e.U64(m.id);
      e.I32(m.leaf);
    }
    e.U32(static_cast<std::uint32_t>(node.down.size()));
    for (const Msg& m : node.down) {
      e.U64(m.id);
      e.I32(m.leaf);
    }
  }
  e.U32(static_cast<std::uint32_t>(at_root_.size()));
  for (const std::uint64_t id : at_root_) e.U64(id);
  e.U32(static_cast<std::uint32_t>(at_leaves_.size()));
  for (const Delivery& dl : at_leaves_) {
    e.I32(dl.leaf);
    e.U64(dl.id);
  }
  e.U64(stats_.messages_up);
  e.U64(stats_.messages_down);
  e.U64(stats_.queue_cycles);
  e.U64(stats_.max_queue_depth);
}

void FatTreeNetwork::RestoreState(persist::Decoder& d) {
  if (d.U32() != nodes_.size()) {
    throw persist::FormatError("fat-tree geometry mismatch");
  }
  for (Node& node : nodes_) {
    node.up.clear();
    node.down.clear();
    const std::uint32_t up = d.U32();
    for (std::uint32_t i = 0; i < up; ++i) {
      const std::uint64_t id = d.U64();
      node.up.push_back({id, d.I32()});
    }
    const std::uint32_t down = d.U32();
    for (std::uint32_t i = 0; i < down; ++i) {
      const std::uint64_t id = d.U64();
      node.down.push_back({id, d.I32()});
    }
  }
  at_root_.clear();
  const std::uint32_t roots = d.U32();
  for (std::uint32_t i = 0; i < roots; ++i) at_root_.push_back(d.U64());
  at_leaves_.clear();
  const std::uint32_t leaves = d.U32();
  for (std::uint32_t i = 0; i < leaves; ++i) {
    const int leaf = d.I32();
    at_leaves_.push_back({leaf, d.U64()});
  }
  stats_.messages_up = d.U64();
  stats_.messages_down = d.U64();
  stats_.queue_cycles = d.U64();
  stats_.max_queue_depth = d.U64();
}

}  // namespace ultra::memory
