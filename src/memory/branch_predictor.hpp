// Branch predictors used by the fetch engines.
//
// For the cycle-identical ILP-equivalence experiments (DESIGN.md E9) the
// predictors must be a pure function of the branch's PC (static or oracle),
// because different microarchitectures interleave fetch and commit
// differently. The two-bit predictor is provided for the realism benches.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instruction.hpp"
#include "persist/serial.hpp"

namespace ultra::memory {

class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;

  /// Predicts whether the control transfer at @p pc is taken. Unconditional
  /// jumps must be predicted taken by every implementation.
  virtual bool PredictTaken(std::size_t pc, const isa::Instruction& inst) = 0;

  /// Reports the resolved outcome (called in commit order).
  virtual void Update(std::size_t pc, bool taken) = 0;

  /// Fresh predictor of the same kind (for running several processors on
  /// identical initial predictor state).
  [[nodiscard]] virtual std::unique_ptr<BranchPredictor> Clone() const = 0;

  /// Checkpoint support: only *mutable* prediction state is serialized
  /// (two-bit counters, oracle replay cursors); derived tables such as the
  /// oracle's outcome lists are rebuilt by reconstructing the predictor the
  /// same way the original run did. Stateless predictors inherit the no-op.
  virtual void SaveState(persist::Encoder& e) const { (void)e; }
  virtual void RestoreState(persist::Decoder& d) { (void)d; }
};

/// Conditional branches predicted not taken.
class NotTakenPredictor final : public BranchPredictor {
 public:
  bool PredictTaken(std::size_t pc, const isa::Instruction& inst) override;
  void Update(std::size_t, bool) override {}
  [[nodiscard]] std::unique_ptr<BranchPredictor> Clone() const override {
    return std::make_unique<NotTakenPredictor>();
  }
};

/// Backward taken, forward not taken (loops predicted taken).
class BtfnPredictor final : public BranchPredictor {
 public:
  bool PredictTaken(std::size_t pc, const isa::Instruction& inst) override;
  void Update(std::size_t, bool) override {}
  [[nodiscard]] std::unique_ptr<BranchPredictor> Clone() const override {
    return std::make_unique<BtfnPredictor>();
  }
};

/// Classic two-bit saturating counters indexed by PC.
class TwoBitPredictor final : public BranchPredictor {
 public:
  explicit TwoBitPredictor(int table_size = 1024);
  bool PredictTaken(std::size_t pc, const isa::Instruction& inst) override;
  void Update(std::size_t pc, bool taken) override;
  [[nodiscard]] std::unique_ptr<BranchPredictor> Clone() const override {
    return std::make_unique<TwoBitPredictor>(
        static_cast<int>(counters_.size()));
  }
  void SaveState(persist::Encoder& e) const override;
  void RestoreState(persist::Decoder& d) override;

 private:
  std::vector<std::uint8_t> counters_;  // 0..3; >=2 predicts taken.
};

/// Replays a precomputed outcome sequence per PC (an oracle built by the
/// functional simulator). Prediction for the k-th dynamic occurrence of a
/// branch PC is its k-th recorded outcome, so it never mispredicts as long
/// as fetch follows the committed path.
class OraclePredictor final : public BranchPredictor {
 public:
  /// @p outcomes_by_pc[pc] lists the outcomes of successive dynamic
  /// executions of the control transfer at pc.
  explicit OraclePredictor(
      std::vector<std::vector<std::uint8_t>> outcomes_by_pc);
  bool PredictTaken(std::size_t pc, const isa::Instruction& inst) override;
  void Update(std::size_t, bool) override {}
  [[nodiscard]] std::unique_ptr<BranchPredictor> Clone() const override;
  void SaveState(persist::Encoder& e) const override;
  void RestoreState(persist::Decoder& d) override;

 private:
  std::vector<std::vector<std::uint8_t>> outcomes_by_pc_;
  std::vector<std::size_t> next_index_;
};

}  // namespace ultra::memory
