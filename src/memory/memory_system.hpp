// The full memory subsystem seen by a processor core.
//
// Ties together the backing store, the interleaved banked cache, the M(n)
// bandwidth limit, and (optionally) the fat-tree interconnect. Three timing
// modes:
//
//  * kMagic            -- fixed latency, unlimited bandwidth. Used by the
//                         ILP-equivalence experiments, where every core must
//                         observe identical memory timing.
//  * kBandwidthLimited -- the chip accepts at most floor(M(n)) memory
//                         operations per cycle (the paper's M(n) knob);
//                         accepted operations access the interleaved cache.
//  * kFatTree          -- requests additionally traverse the fat-tree
//                         network level by level, queuing at thin links.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "memory/backing_store.hpp"
#include "memory/bandwidth.hpp"
#include "persist/serial.hpp"
#include "memory/cache.hpp"
#include "memory/butterfly.hpp"
#include "memory/fat_tree.hpp"
#include "memory/hierarchy.hpp"

namespace ultra::memory {

enum class MemTimingMode : std::uint8_t {
  kMagic,
  kBandwidthLimited,
  kFatTree,
  kButterfly,  // Section 2's alternative interconnect.
};

struct MemoryConfig {
  MemTimingMode mode = MemTimingMode::kMagic;
  int magic_load_latency = 2;   // Cycles, kMagic mode.
  int magic_store_latency = 1;  // Cycles, kMagic mode.
  CacheConfig cache;
  BandwidthRegime regime = BandwidthRegime::kLinear;
  double bandwidth_scale = 1.0;

  /// Distributed per-cluster caches (Section 7: "One way to reduce the
  /// bandwidth requirements may be to use a cache distributed among the
  /// clusters"). 0 = off; k > 0 groups every k fat-tree leaves behind a
  /// small local cache: load hits complete locally without consuming tree
  /// bandwidth; stores write through and invalidate every local copy.
  int cluster_cache_leaves = 0;
  int cluster_cache_words = 64;
  int cluster_cache_hit_latency = 1;

  /// Optional multi-level cache hierarchy (L1I/L1D/L2 + stride prefetcher)
  /// layered in front of whichever backing tier `mode` selects. L1D/L2 hits
  /// complete locally without consuming backing bandwidth; full misses pay
  /// the per-level latencies and then enter the backing tier as usual.
  /// Mutually exclusive with cluster caches (CoreConfig::Validate enforces
  /// this); the L1I level lives in core::FetchEngine, not here.
  HierarchyConfig hierarchy;
};

struct MemResponse {
  std::uint64_t id = 0;
  bool is_store = false;
  isa::Word value = 0;  // Loaded value (loads only).
};

struct ClusterCacheStats {
  std::uint64_t local_hits = 0;
  std::uint64_t local_misses = 0;
  std::uint64_t invalidations = 0;
};

class MemorySystem {
 public:
  /// @p num_leaves is the issue width n (stations at the fat-tree leaves).
  MemorySystem(const MemoryConfig& config, int num_leaves);

  /// Resets architectural memory to @p image and clears all in-flight state.
  void Reset(const std::map<isa::Word, isa::Word>& image);

  /// Submits a load/store issued by station @p leaf. The architectural
  /// effect of a store happens immediately (cores submit stores only once
  /// the Figure 5 serialization circuits allow them, so program order is
  /// already enforced); the returned id completes when the timing model says
  /// the operation has finished.
  std::uint64_t SubmitLoad(int leaf, isa::Word addr);
  std::uint64_t SubmitStore(int leaf, isa::Word addr, isa::Word value);

  /// Advances one cycle.
  void Tick();

  /// Operations that completed during the last Tick.
  std::vector<MemResponse> DrainCompleted();

  /// Architectural state inspection (for correctness checks).
  [[nodiscard]] isa::Word ReadWord(isa::Word addr) const {
    return store_.ReadWord(addr);
  }
  [[nodiscard]] BackingStore& store() { return store_; }
  [[nodiscard]] const CacheStats& cache_stats() const {
    return cache_->stats();
  }
  [[nodiscard]] const MemoryConfig& config() const { return config_; }
  [[nodiscard]] int accepted_per_cycle() const { return ops_per_cycle_; }
  [[nodiscard]] const ClusterCacheStats& cluster_cache_stats() const {
    return cluster_stats_;
  }
  /// Hierarchy telemetry (null when the level is disabled).
  [[nodiscard]] const CacheLevelStats* l1d_stats() const {
    return l1d_ ? &l1d_->stats() : nullptr;
  }
  [[nodiscard]] const CacheLevelStats* l2_stats() const {
    return l2_ ? &l2_->stats() : nullptr;
  }
  [[nodiscard]] std::uint64_t prefetch_issued() const {
    return prefetch_issued_;
  }

  /// Checkpoint support: the full timing + architectural state — backing
  /// store, cache lines, network queues, and every in-flight request —
  /// written deterministically (hash maps in sorted key order). Restore
  /// requires a MemorySystem constructed with the same config/leaf count.
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  struct Request {
    std::uint64_t id;
    int leaf;
    bool is_store;
    isa::Word addr;
    isa::Word loaded_value;  // Captured at architectural access time.
  };

  MemoryConfig config_;
  int num_leaves_;
  int ops_per_cycle_;
  BandwidthProfile profile_;
  BackingStore store_;
  std::unique_ptr<InterleavedCache> cache_;
  std::unique_ptr<FatTreeNetwork> network_;
  std::unique_ptr<ButterflyNetwork> butterfly_;
  std::unique_ptr<CacheLevelModel> l1d_;
  std::unique_ptr<CacheLevelModel> l2_;
  std::unique_ptr<StridePrefetcher> prefetcher_;

  std::uint64_t next_id_ = 1;
  std::uint64_t now_ = 0;
  std::queue<Request> admission_queue_;           // Waiting for bandwidth.
  std::queue<Request> root_retry_queue_;          // Cache bank conflicts.
  std::vector<std::pair<std::uint64_t, Request>> pending_downs_;
  std::map<std::uint64_t, std::vector<MemResponse>> completions_;  // By cycle.
  std::unordered_map<std::uint64_t, Request> in_network_;
  std::vector<MemResponse> completed_;

  /// Hierarchy misses waiting out their L1/L2 lookup latency before they
  /// enter the backing tier, and prefetched blocks waiting to fill L1/L2.
  std::vector<std::pair<std::uint64_t, Request>> hier_pending_;
  std::vector<std::pair<std::uint64_t, isa::Word>> prefetch_fills_;
  std::vector<isa::Word> prefetch_scratch_;
  std::uint64_t prefetch_issued_ = 0;

  /// Per-cluster local caches (tiny fully-associative word caches with LRU
  /// eviction), indexed by leaf / cluster_cache_leaves.
  std::vector<std::vector<isa::Word>> cluster_caches_;
  ClusterCacheStats cluster_stats_;

  std::uint64_t Submit(int leaf, bool is_store, isa::Word addr,
                       isa::Word value);
  /// Hands @p req to whichever backing tier `mode` selects (the pre-
  /// hierarchy Submit switch).
  void DispatchToBacking(const Request& req);
  /// Hierarchy lookup for @p req. Returns true when the request completed
  /// (or was queued for deferred backing dispatch) inside the hierarchy.
  bool SubmitToHierarchy(const Request& req);
  void SchedulePrefetches(isa::Word addr);
  void CompleteAt(std::uint64_t cycle, const Request& req);
  void ServiceAtCache(const Request& req, int extra_delay_before_response);
  [[nodiscard]] int ClusterOf(int leaf) const;
  [[nodiscard]] int ButterflyPort(isa::Word addr) const;
  bool ClusterCacheLookup(int cluster, isa::Word addr);
  void ClusterCacheInsert(int cluster, isa::Word addr);
  void ClusterCacheInvalidate(isa::Word addr);
};

}  // namespace ultra::memory
