#include "analysis/table.hpp"

#include <cmath>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace ultra::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(const char* value) { return Cell(std::string(value)); }

Table& Table::Cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return Cell(os.str());
}

Table& Table::Cell(std::int64_t value) { return Cell(std::to_string(value)); }
Table& Table::Cell(std::uint64_t value) { return Cell(std::to_string(value)); }
Table& Table::Cell(int value) { return Cell(std::to_string(value)); }

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 2 * widths.size();
  for (const auto w : widths) total += w;
  os << "  " << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Humanize(double value, int precision) {
  const char* suffix = "";
  double v = value;
  if (std::fabs(v) >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << suffix;
  return os.str();
}

}  // namespace ultra::analysis
