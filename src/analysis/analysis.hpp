// Umbrella header for the analysis/reporting library.
#pragma once

#include "analysis/floorplan.hpp"       // IWYU pragma: export
#include "analysis/table.hpp"           // IWYU pragma: export
#include "analysis/timing_diagram.hpp"  // IWYU pragma: export
