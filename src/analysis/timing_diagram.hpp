// ASCII rendering of per-instruction execution timing (Figure 3 style).
#pragma once

#include <span>
#include <string>

#include "core/config.hpp"

namespace ultra::core {
struct InstrTiming;
}

namespace ultra::analysis {

/// Renders a Figure 3-style diagram: one row per committed instruction (in
/// program order), '#' marks spanning the execution interval, with cycle
/// numbers normalized so the first issue is cycle 0.
///
///   div r3, r1, r2   |##########            |
///   add r0, r0, r3   |          #           |
std::string RenderTimingDiagram(std::span<const core::InstrTiming> timeline,
                                int max_rows = 64);

/// Fraction of register-communicating instruction pairs
/// (producer -> nearest consumer) whose distance in program order is at
/// most `window`: the Section 7 "half of the communication paths ... are
/// completely local" estimate.
double LocalCommunicationFraction(
    std::span<const core::InstrTiming> timeline, std::uint64_t distance);

}  // namespace ultra::analysis
