// ASCII floorplan rendering: Figures 6 and 10 of the paper.
#pragma once

#include <string>

namespace ultra::analysis {

/// Figure 6: the Ultrascalar I H-tree floorplan. @p n stations (a power of
/// four) in a 2-D matrix, connected via H-tree wiring; each internal joint
/// holds the register parallel-prefix nodes (P) and a fat-tree memory
/// switch (M).
std::string RenderHTreeFloorplan(int n);

/// Figure 10: the hybrid floorplan. @p n stations in clusters of @p c; each
/// cluster is an Ultrascalar II (stations E on the diagonal, register
/// datapath R below, memory switches M above); clusters join via the
/// Ultrascalar I H-tree.
std::string RenderHybridFloorplan(int n, int c);

}  // namespace ultra::analysis
