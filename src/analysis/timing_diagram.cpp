#include "analysis/timing_diagram.hpp"

#include <algorithm>
#include <sstream>

#include "isa/instruction.hpp"

namespace ultra::analysis {

std::string RenderTimingDiagram(std::span<const core::InstrTiming> timeline,
                                int max_rows) {
  if (timeline.empty()) return "(empty timeline)\n";
  std::uint64_t t0 = timeline.front().issue_cycle;
  std::uint64_t t_end = 0;
  for (const auto& t : timeline) {
    t0 = std::min(t0, t.issue_cycle);
    t_end = std::max(t_end, t.complete_cycle);
  }
  const auto span = static_cast<int>(t_end - t0 + 1);

  std::size_t label_width = 0;
  for (const auto& t : timeline) {
    label_width = std::max(label_width, isa::ToString(t.inst).size());
  }

  std::ostringstream os;
  int rows = 0;
  for (const auto& t : timeline) {
    if (rows++ >= max_rows) {
      os << "  ... (" << timeline.size() - static_cast<std::size_t>(max_rows)
         << " more)\n";
      break;
    }
    const std::string label = isa::ToString(t.inst);
    os << "  " << label << std::string(label_width - label.size(), ' ')
       << " |";
    const auto start = static_cast<int>(t.issue_cycle - t0);
    const auto stop = static_cast<int>(t.complete_cycle - t0);
    for (int c = 0; c < span; ++c) {
      os << (c >= start && c <= stop ? '#' : ' ');
    }
    os << "|\n";
  }
  os << "  " << std::string(label_width, ' ') << "  0";
  if (span > 4) {
    os << std::string(static_cast<std::size_t>(span) - 2, ' ')
       << span - 1;
  }
  os << " (cycles)\n";
  return os.str();
}

double LocalCommunicationFraction(
    std::span<const core::InstrTiming> timeline, std::uint64_t distance) {
  // For each instruction that reads a register, find the nearest preceding
  // writer of that register in commit order and record the gap.
  std::uint64_t pairs = 0;
  std::uint64_t local = 0;
  std::vector<std::size_t> last_writer(isa::kMaxLogicalRegisters,
                                       SIZE_MAX);
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const isa::Instruction& inst = timeline[i].inst;
    const auto account = [&](isa::RegId r) {
      const std::size_t w = last_writer[r];
      if (w == SIZE_MAX) return;
      ++pairs;
      if (i - w <= distance) ++local;
    };
    if (isa::ReadsRs1(inst.op)) account(inst.rs1);
    if (isa::ReadsRs2(inst.op)) account(inst.rs2);
    if (isa::WritesRd(inst.op)) last_writer[inst.rd] = i;
  }
  return pairs == 0 ? 0.0
                    : static_cast<double>(local) / static_cast<double>(pairs);
}

}  // namespace ultra::analysis
