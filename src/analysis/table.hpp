// Fixed-width text tables for the benchmark harness output.
#pragma once

#include <string>
#include <vector>

namespace ultra::analysis {

/// Builds and prints a column-aligned table of strings; numeric convenience
/// overloads format with sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; chain Cell() calls to fill it.
  Table& Row();
  Table& Cell(const std::string& value);
  Table& Cell(const char* value);
  Table& Cell(double value, int precision = 3);
  Table& Cell(std::int64_t value);
  Table& Cell(std::uint64_t value);
  Table& Cell(int value);

  /// Renders the table with a header underline.
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a value with an SI-ish suffix (k, M, G) for compact tables.
std::string Humanize(double value, int precision = 2);

}  // namespace ultra::analysis
