#include "analysis/floorplan.hpp"

#include <cassert>
#include <vector>

namespace ultra::analysis {

namespace {

/// A character canvas with (row, col) addressing.
class Canvas {
 public:
  Canvas(int rows, int cols)
      : rows_(rows), cols_(cols),
        cells_(static_cast<std::size_t>(rows) * cols, ' ') {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  char& at(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return cells_[static_cast<std::size_t>(r) * cols_ + c];
  }

  void Blit(const Canvas& src, int r0, int c0) {
    for (int r = 0; r < src.rows_; ++r) {
      for (int c = 0; c < src.cols_; ++c) {
        at(r0 + r, c0 + c) = src.cells_[static_cast<std::size_t>(r) *
                                            src.cols_ +
                                        c];
      }
    }
  }

  [[nodiscard]] std::string ToString() const {
    std::string out;
    for (int r = 0; r < rows_; ++r) {
      out.append("  ");
      out.append(cells_.begin() + static_cast<std::ptrdiff_t>(r) * cols_,
                 cells_.begin() + static_cast<std::ptrdiff_t>(r + 1) * cols_);
      out.push_back('\n');
    }
    return out;
  }

 private:
  int rows_;
  int cols_;
  std::vector<char> cells_;
};

/// One Ultrascalar I execution station (3x3 box).
Canvas StationTile() {
  Canvas c(3, 3);
  c.at(0, 0) = '+'; c.at(0, 1) = '-'; c.at(0, 2) = '+';
  c.at(1, 0) = '|'; c.at(1, 1) = 'S'; c.at(1, 2) = '|';
  c.at(2, 0) = '+'; c.at(2, 1) = '-'; c.at(2, 2) = '+';
  return c;
}

/// Recursive H-tree: four quadrants around a P/M joint.
Canvas HTree(int n) {
  if (n <= 1) return StationTile();
  const Canvas sub = HTree(n / 4);
  const int s = sub.rows();
  Canvas c(2 * s + 3, 2 * s + 3);
  c.Blit(sub, 0, 0);
  c.Blit(sub, 0, s + 3);
  c.Blit(sub, s + 3, 0);
  c.Blit(sub, s + 3, s + 3);
  const int mid = s + 1;
  for (int k = 0; k < c.cols(); ++k) c.at(mid, k) = '=';
  for (int k = 0; k < c.rows(); ++k) c.at(k, mid) = '|';
  // The register prefix nodes (P) and the memory switch (M) at the joint.
  c.at(mid, mid) = 'P';
  c.at(mid, mid + 1) = 'M';
  return c;
}

/// One Ultrascalar II cluster (Figure 7 shape): stations E on the diagonal,
/// register datapath R below, memory switches M above.
Canvas ClusterTile(int stations) {
  const int s = stations + 2;  // Border.
  Canvas c(s, s);
  for (int k = 0; k < s; ++k) {
    c.at(0, k) = '-'; c.at(s - 1, k) = '-';
    c.at(k, 0) = '|'; c.at(k, s - 1) = '|';
  }
  c.at(0, 0) = '+'; c.at(0, s - 1) = '+';
  c.at(s - 1, 0) = '+'; c.at(s - 1, s - 1) = '+';
  for (int k = 1; k + 1 < s; ++k) {
    for (int m = 1; m + 1 < s; ++m) {
      if (k == m) {
        c.at(k, m) = 'E';
      } else if (k > m) {
        c.at(k, m) = 'R';
      } else {
        c.at(k, m) = 'M';
      }
    }
  }
  return c;
}

/// H-tree over clusters.
Canvas HybridTree(int clusters, int cluster_size) {
  if (clusters <= 1) return ClusterTile(cluster_size);
  const Canvas sub = HybridTree(clusters / 4, cluster_size);
  const int s = sub.rows();
  Canvas c(2 * s + 3, 2 * s + 3);
  c.Blit(sub, 0, 0);
  c.Blit(sub, 0, s + 3);
  c.Blit(sub, s + 3, 0);
  c.Blit(sub, s + 3, s + 3);
  const int mid = s + 1;
  for (int k = 0; k < c.cols(); ++k) c.at(mid, k) = '=';
  for (int k = 0; k < c.rows(); ++k) c.at(k, mid) = '|';
  c.at(mid, mid) = 'P';
  c.at(mid, mid + 1) = 'M';
  return c;
}

int RoundUpPow4(int n) {
  int p = 1;
  while (p < n) p *= 4;
  return p;
}

}  // namespace

std::string RenderHTreeFloorplan(int n) {
  return HTree(RoundUpPow4(n)).ToString();
}

std::string RenderHybridFloorplan(int n, int c) {
  assert(c >= 1);
  const int clusters = RoundUpPow4((n + c - 1) / c);
  return HybridTree(clusters, c).ToString();
}

}  // namespace ultra::analysis
