#include "vlsi/magic.hpp"

namespace ultra::vlsi {

namespace {
/// The Figure 12 layouts omit the memory datapath.
memory::BandwidthProfile NoMemory() {
  return memory::BandwidthProfile("M(n)=0", 0.0, 0.0);
}
}  // namespace

MagicDataPoint MagicUsiDatapath(std::int64_t n, int num_regs,
                                LayoutConstants constants) {
  const UltrascalarILayout layout(num_regs, NoMemory(), constants);
  MagicDataPoint p;
  p.name = "UltrascalarI(" + std::to_string(n) + ")";
  p.stations = n;
  p.geom = layout.At(n);
  return p;
}

MagicDataPoint MagicHybridDatapath(std::int64_t n, int cluster_size,
                                   int num_regs, LayoutConstants constants) {
  const HybridLayout layout(num_regs, cluster_size, NoMemory(), constants);
  MagicDataPoint p;
  p.name = "Hybrid(" + std::to_string(n) + ",C=" +
           std::to_string(cluster_size) + ")";
  p.stations = n;
  p.geom = layout.At(n);
  return p;
}

}  // namespace ultra::vlsi
