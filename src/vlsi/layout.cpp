#include "vlsi/layout.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "circuit/signal.hpp"

namespace ultra::vlsi {

namespace {
std::int64_t CeilDiv4(std::int64_t n) { return (n + 3) / 4; }
}  // namespace

// --- Ultrascalar I -----------------------------------------------------------

UltrascalarILayout::UltrascalarILayout(int num_regs,
                                       memory::BandwidthProfile profile,
                                       LayoutConstants constants)
    : L_(num_regs), profile_(std::move(profile)), c_(constants) {
  assert(L_ >= 1);
}

double UltrascalarILayout::BlockSideUm(std::int64_t n) const {
  // Theta(L) wires and Theta(L) prefix nodes (value + ready bit per
  // register), plus a fat-tree switch of side Theta(M(n)).
  const double reg_tracks =
      static_cast<double>(L_) * (c_.word_bits + 1) * c_.track_pitch_um;
  const double prefix_cells =
      static_cast<double>(L_) * c_.word_bits * c_.prefix_cell_um;
  const double memory = c_.memory_port_um * profile_(static_cast<double>(n));
  return reg_tracks + prefix_cells + memory;
}

double UltrascalarILayout::SideUm(std::int64_t n) const {
  // X(n) = block(n) + 2 X(ceil(n/4)); X(1) = station side.
  if (n <= 1) return c_.StationSideUm(L_);
  return BlockSideUm(n) + 2.0 * SideUm(CeilDiv4(n));
}

double UltrascalarILayout::WireToLeafUm(std::int64_t n) const {
  // W(n) = X(n/4) + Theta(L + M(n)) + W(n/2); W(1) = half a station.
  if (n <= 1) return c_.StationSideUm(L_) / 2.0;
  return SideUm(CeilDiv4(n)) + BlockSideUm(n) + WireToLeafUm((n + 1) / 2);
}

Geometry UltrascalarILayout::At(std::int64_t n) const {
  Geometry g;
  g.side_um = SideUm(n);
  // "every datapath signal goes up the tree, and then down ... the longest
  // datapath signal is 2 W(n)."
  g.wire_um = 2.0 * WireToLeafUm(n);
  return g;
}

// --- Ultrascalar II ----------------------------------------------------------

UltrascalarIILayout::UltrascalarIILayout(int num_regs,
                                         LayoutConstants constants)
    : L_(num_regs), c_(constants) {
  assert(L_ >= 1);
}

double UltrascalarIILayout::SideUm(std::int64_t n, Depth depth) const {
  const double linear =
      c_.grid_pitch_um * static_cast<double>(n + L_);
  switch (depth) {
    case Depth::kLinear:
      return linear;
    case Depth::kLogViaTreeOfMeshes:
      // Full fan-out/reduction trees cost a log(n+L) blow-up in both
      // dimensions (Section 5).
      return linear *
             std::max(1, circuit::CeilLog2(static_cast<long long>(n + L_)));
    case Depth::kMixed:
      // Replace the part of each tree near the root with a linear prefix:
      // same asymptotics and area as kLinear, "with greatly improved
      // constant factors" on delay. In our own layout experiment about
      // three tree levels fit without growing the area.
      return linear * 1.15;
  }
  return linear;
}

double UltrascalarIILayout::WraparoundSideUm(std::int64_t n,
                                             Depth depth) const {
  return SideUm(n, depth) * std::sqrt(2.0);
}

Geometry UltrascalarIILayout::At(std::int64_t n, Depth depth) const {
  Geometry g;
  g.side_um = SideUm(n, depth);
  // The longest datapath wire spans the grid: from the last station's
  // column down to the register file and across -- Theta(side).
  g.wire_um = 2.0 * g.side_um;
  return g;
}

// --- Hybrid ------------------------------------------------------------------

HybridLayout::HybridLayout(int num_regs, int cluster_size,
                           memory::BandwidthProfile profile,
                           LayoutConstants constants)
    : L_(num_regs),
      C_(cluster_size),
      profile_(std::move(profile)),
      c_(constants),
      cluster_(num_regs, constants) {
  assert(C_ >= 1);
}

double HybridLayout::SideUm(std::int64_t n) const {
  // U(n) = Theta(n + L) for n <= C; U(n) = Theta(L + M(n)) + 2 U(n/4) above.
  if (n <= C_) return cluster_.SideUm(n, UltrascalarIILayout::Depth::kLinear);
  const double reg_tracks =
      static_cast<double>(L_) * (c_.word_bits + 1) * c_.track_pitch_um;
  const double prefix_cells =
      static_cast<double>(L_) * c_.word_bits * c_.prefix_cell_um;
  const double memory = c_.memory_port_um * profile_(static_cast<double>(n));
  return reg_tracks + prefix_cells + memory + 2.0 * SideUm(CeilDiv4(n));
}

double HybridLayout::WireToLeafUm(std::int64_t n) const {
  if (n <= C_) {
    return cluster_.SideUm(n, UltrascalarIILayout::Depth::kLinear);
  }
  const double reg_tracks =
      static_cast<double>(L_) * (c_.word_bits + 1) * c_.track_pitch_um;
  const double prefix_cells =
      static_cast<double>(L_) * c_.word_bits * c_.prefix_cell_um;
  const double memory = c_.memory_port_um * profile_(static_cast<double>(n));
  return SideUm(CeilDiv4(n)) + reg_tracks + prefix_cells + memory +
         WireToLeafUm((n + 1) / 2);
}

Geometry HybridLayout::At(std::int64_t n) const {
  Geometry g;
  g.side_um = SideUm(n);
  g.wire_um = 2.0 * WireToLeafUm(n);
  return g;
}

int OptimalClusterSize(int num_regs, std::int64_t n,
                       const memory::BandwidthProfile& profile,
                       LayoutConstants constants) {
  int best_c = 1;
  double best_side = std::numeric_limits<double>::infinity();
  for (int c = 1; c <= n; c *= 2) {
    const HybridLayout layout(num_regs, c, profile, constants);
    const double side = layout.SideUm(n);
    if (side < best_side) {
      best_side = side;
      best_c = c;
    }
  }
  return best_c;
}

}  // namespace ultra::vlsi
