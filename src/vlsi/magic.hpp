// The Figure 12 empirical comparison, as a model.
//
// The paper lays out two register datapaths with the Magic VLSI editor in a
// 0.35 um, 3-metal process (L = 32 32-bit registers, no memory datapath):
//
//   (a) 64-station Ultrascalar I:      7 cm x 7 cm   (~13,000 stations/m^2)
//   (b) 128-station 4-cluster hybrid:  3.2 cm x 2.7 cm (~150,000/m^2,
//                                      about 11.5x denser)
//
// We reproduce the experiment by evaluating the calibrated layout models at
// the same design points (register datapath only: the memory term is zero,
// matching "The layouts implement communication among instructions; they do
// not implement communication to memory").
#pragma once

#include <string>

#include "vlsi/layout.hpp"

namespace ultra::vlsi {

struct MagicDataPoint {
  std::string name;
  std::int64_t stations = 0;
  Geometry geom;

  [[nodiscard]] double stations_per_m2() const {
    const double m2 = geom.area_cm2() / 1e4;
    return static_cast<double>(stations) / m2;
  }
};

/// Paper-reported reference values.
struct Fig12PaperValues {
  static constexpr double kUsiAreaCm2 = 49.0;        // 7 cm x 7 cm.
  static constexpr double kUsiDensityPerM2 = 13000.0;
  static constexpr double kHybridAreaCm2 = 8.64;     // 3.2 cm x 2.7 cm.
  static constexpr double kHybridDensityPerM2 = 150000.0;
  static constexpr double kDensityRatio = 11.5;
};

/// The 64-station Ultrascalar I register datapath of Figure 12(a).
MagicDataPoint MagicUsiDatapath(std::int64_t n = 64, int num_regs = 32,
                                LayoutConstants constants = kDefaultConstants);

/// The 128-station 4-cluster hybrid register datapath of Figure 12(b).
MagicDataPoint MagicHybridDatapath(std::int64_t n = 128, int cluster_size = 32,
                                   int num_regs = 32,
                                   LayoutConstants constants =
                                       kDefaultConstants);

}  // namespace ultra::vlsi
