// Log-log power-law fitting, used to compare measured scaling against the
// paper's Theta-bounds (Figure 11).
#pragma once

#include <span>

namespace ultra::vlsi {

struct PowerFit {
  double exponent = 0.0;   // Slope of log y vs log x.
  double coefficient = 0.0;  // exp(intercept): y ~ coefficient * x^exponent.
  double r_squared = 0.0;
};

/// Least-squares fit of log(y) = a + b log(x). Requires x, y > 0 and at
/// least two points.
PowerFit FitPowerLaw(std::span<const double> x, std::span<const double> y);

}  // namespace ultra::vlsi
