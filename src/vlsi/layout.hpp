// VLSI layout models: the paper's side-length and wire-length recurrences,
// solved numerically with calibrated constants.
//
// Section 3 (Ultrascalar I, H-tree floorplan of Figure 6):
//   X(n) = Theta(L) + Theta(M(n)) + 2 X(n/4),  X(1) = Theta(L)
//   W(n) = X(n/4) + Theta(L + M(n)) + W(n/2),  W(1) = Theta(1)
// Section 5 (Ultrascalar II): side Theta(n + L) linear-depth,
//   Theta((n+L) log(n+L)) log-depth, linear again for the mixed strategy.
// Section 6 (hybrid, Figure 10):
//   U(n) = Theta(n + L)                      if n <= C,
//   U(n) = Theta(L + M(n)) + 2 U(n/4)        otherwise.
//
// Gate delays are not modelled here with formulas: they are *measured* by
// building the depth-tracked circuits from src/datapath (see delay.hpp), so
// the analytical layer cannot drift from the circuits.
#pragma once

#include <cstdint>

#include "memory/bandwidth.hpp"
#include "vlsi/constants.hpp"

namespace ultra::vlsi {

/// Geometry of one design point.
struct Geometry {
  double side_um = 0.0;
  double wire_um = 0.0;  // Longest point-to-point datapath wire.

  [[nodiscard]] double area_um2() const { return side_um * side_um; }
  [[nodiscard]] double area_cm2() const { return area_um2() / 1e8; }
  [[nodiscard]] double side_cm() const { return side_um / 1e4; }
};

/// The Ultrascalar I H-tree layout.
class UltrascalarILayout {
 public:
  UltrascalarILayout(int num_regs, memory::BandwidthProfile profile,
                     LayoutConstants constants = kDefaultConstants);

  /// X(n): side length of an n-station layout, in um.
  [[nodiscard]] double SideUm(std::int64_t n) const;
  /// W(n): root-to-leaf wire length; the longest datapath signal is 2 W(n).
  [[nodiscard]] double WireToLeafUm(std::int64_t n) const;
  [[nodiscard]] Geometry At(std::int64_t n) const;

  /// Side of the central block at a subtree of n stations (Theta(L + M(n))).
  [[nodiscard]] double BlockSideUm(std::int64_t n) const;

 private:
  int L_;
  memory::BandwidthProfile profile_;
  LayoutConstants c_;
};

/// The Ultrascalar II floorplan (Figure 7): stations along the diagonal,
/// register datapath below, memory switches above.
class UltrascalarIILayout {
 public:
  enum class Depth { kLinear, kLogViaTreeOfMeshes, kMixed };

  UltrascalarIILayout(int num_regs,
                      LayoutConstants constants = kDefaultConstants);

  [[nodiscard]] double SideUm(std::int64_t n, Depth depth) const;
  [[nodiscard]] Geometry At(std::int64_t n,
                            Depth depth = Depth::kLinear) const;

  /// The wrap-around Ultrascalar II (Section 4: "The Ultrascalar II can
  /// easily be modified to handle wrap-around ... it appears to cost nearly
  /// a factor of two in area"): same asymptotics, 2x area (sqrt(2) side).
  [[nodiscard]] double WraparoundSideUm(std::int64_t n, Depth depth) const;

 private:
  int L_;
  LayoutConstants c_;
};

/// The hybrid layout (Figure 10): Ultrascalar II clusters of C stations,
/// connected by the Ultrascalar I H-tree.
class HybridLayout {
 public:
  HybridLayout(int num_regs, int cluster_size,
               memory::BandwidthProfile profile,
               LayoutConstants constants = kDefaultConstants);

  [[nodiscard]] int cluster_size() const { return C_; }
  [[nodiscard]] double SideUm(std::int64_t n) const;
  [[nodiscard]] double WireToLeafUm(std::int64_t n) const;
  [[nodiscard]] Geometry At(std::int64_t n) const;

 private:
  int L_;
  int C_;
  memory::BandwidthProfile profile_;
  LayoutConstants c_;
  UltrascalarIILayout cluster_;
};

/// Numerically minimizes the hybrid side length over the cluster size for a
/// given n (the paper differentiates dU/dC = 0 and finds C = Theta(L)).
/// Searches powers of two in [1, n].
int OptimalClusterSize(int num_regs, std::int64_t n,
                       const memory::BandwidthProfile& profile,
                       LayoutConstants constants = kDefaultConstants);

}  // namespace ultra::vlsi
