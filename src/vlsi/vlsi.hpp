// Umbrella header for the VLSI complexity-model library.
#pragma once

#include "vlsi/constants.hpp"  // IWYU pragma: export
#include "vlsi/delay.hpp"      // IWYU pragma: export
#include "vlsi/layout.hpp"     // IWYU pragma: export
#include "vlsi/magic.hpp"      // IWYU pragma: export
#include "vlsi/scaling.hpp"    // IWYU pragma: export
#include "vlsi/three_d.hpp"    // IWYU pragma: export
