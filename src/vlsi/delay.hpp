// Delay models: measured gate depths + modelled wire delays.
//
// Gate depths come straight from the depth-tracked circuits in
// src/datapath, so the numbers in the Figure 11 reproduction are the
// critical paths of the actual networks, not formulas. Wire delays convert
// the layout models' wire lengths with the repeated-wire constant
// ("Wire delay can be made linear in wire length by inserting repeater
// buffers at appropriate intervals", Section 3).
#pragma once

#include <cstdint>

#include "memory/bandwidth.hpp"
#include "vlsi/constants.hpp"
#include "vlsi/layout.hpp"

namespace ultra::vlsi {

/// Measured critical-path gate depth of one full register-datapath
/// propagation.
struct GateDelays {
  int usi_ring = 0;        // Figure 1 (linear).
  int usi_tree = 0;        // Figure 4 (logarithmic).
  int usii_grid = 0;       // Figure 7 (linear).
  int usii_mesh = 0;       // Figure 8 (logarithmic).
  int hybrid = 0;          // Figure 9/10, linear-gate clusters of size C.
};

/// Builds the circuits for an (n, L, C) design point and measures them.
GateDelays MeasureGateDelays(std::int64_t n, int num_regs, int cluster_size);

/// One processor's delay summary at a design point, in picoseconds.
struct DelaySummary {
  double gate_ps = 0.0;
  double wire_ps = 0.0;

  [[nodiscard]] double total_ps() const { return gate_ps + wire_ps; }
};

/// The three processors the paper compares in Figure 11 (the Ultrascalar II
/// in both depth flavours).
struct Comparison {
  DelaySummary usi;          // Ultrascalar I, log-depth CSPP trees.
  DelaySummary usii_linear;  // Ultrascalar II, grid.
  DelaySummary usii_log;     // Ultrascalar II, tree of meshes.
  DelaySummary hybrid;       // Hybrid, linear-gate clusters, C = L.
  Geometry usi_geom;
  Geometry usii_linear_geom;
  Geometry usii_log_geom;
  Geometry hybrid_geom;
};

/// Evaluates every processor at one design point.
Comparison Compare(std::int64_t n, int num_regs,
                   const memory::BandwidthProfile& profile,
                   LayoutConstants constants = kDefaultConstants);

}  // namespace ultra::vlsi
