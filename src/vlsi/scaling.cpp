#include "vlsi/scaling.hpp"

#include <cassert>
#include <cmath>

namespace ultra::vlsi {

PowerFit FitPowerLaw(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  assert(x.size() >= 2);
  const std::size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    assert(x[i] > 0 && y[i] > 0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  PowerFit fit;
  fit.exponent = (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - fit.exponent * sx) / dn;
  fit.coefficient = std::exp(intercept);
  const double ss_tot = syy - sy * sy / dn;
  const double ss_res =
      ss_tot - fit.exponent * (sxy - sx * sy / dn);
  fit.r_squared = ss_tot <= 0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace ultra::vlsi
