// Physical/layout constants for the VLSI models.
//
// The paper's empirical study (Section 7) uses a 0.35 micrometer CMOS
// process with three metal layers and a home-grown standard-cell library.
// We do not have those cells; instead the constants below are calibrated so
// that the layout recurrences reproduce the paper's two published data
// points:
//
//   * 64-station Ultrascalar I register datapath: 7 cm x 7 cm
//     (~13,000 stations/m^2),
//   * 128-station 4-cluster hybrid: 3.2 cm x 2.7 cm (~150,000 stations/m^2,
//     about 11.5x denser),
//
// both for L = 32 32-bit registers. Everything else (scaling exponents,
// crossovers, optimal cluster sizes) is then *derived*, not fitted.
#pragma once

namespace ultra::vlsi {

struct LayoutConstants {
  int word_bits = 32;  // Register width (the paper's ISA is 32-bit).

  /// Metal track pitch in um for the 0.35 um, 3-metal process. One register
  /// requires word_bits+1 tracks (value + ready bit) in each direction.
  double track_pitch_um = 2.2;

  /// Side of one execution station (register file + simple integer ALU +
  /// decode + control) in um: base + per-register term. The paper's base
  /// case is X(1) = Theta(L) -- a station holds a copy of all L registers.
  double station_base_um = 500.0;
  double station_per_reg_um = 62.5;  // 500 + 62.5*32 = 2500 um at L = 32.

  /// Extra side length contributed by one CSPP prefix node per register bit
  /// (the P nodes of Figure 6), in um.
  double prefix_cell_um = 4.8;

  /// Side length of a memory fat-tree switch per unit of bandwidth (the M
  /// nodes of Figure 6), in um.
  double memory_port_um = 180.0;

  /// Ultrascalar II grid: height of one row / width of one column of the
  /// crosspoint array, per word, in um (comparator + mux + wiring for a
  /// 32-bit binding).
  double grid_pitch_um = 173.0;

  /// Wire-delay conversion: picoseconds per millimeter of repeated wire
  /// (Dally & Poulton-style repeated-wire velocity in 0.35 um).
  double wire_ps_per_mm = 75.0;

  /// Gate delay in picoseconds (one 2-input gate, 0.35 um).
  double gate_ps = 120.0;

  // --- 3-D packaging (Section 7) ---
  /// Station cell volume per register bit in um^3 (3-D stacking).
  double station_cell_um3 = 600.0;
  /// Memory switch cross-section side per sqrt(bandwidth) unit in um.
  double memory_port_3d_um = 20.0;

  [[nodiscard]] double StationSideUm(int num_regs) const {
    return station_base_um + station_per_reg_um * num_regs;
  }
};

/// The constants used throughout the reproduction.
inline constexpr LayoutConstants kDefaultConstants{};

}  // namespace ultra::vlsi
