#include "vlsi/three_d.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ultra::vlsi {

namespace {
std::int64_t CeilDiv8(std::int64_t n) { return (n + 7) / 8; }
}  // namespace

// --- Ultrascalar I in 3-D ----------------------------------------------------

UltrascalarILayout3D::UltrascalarILayout3D(int num_regs,
                                           memory::BandwidthProfile profile,
                                           LayoutConstants constants)
    : L_(num_regs), profile_(std::move(profile)), c_(constants) {
  assert(L_ >= 1);
}

double UltrascalarILayout3D::BlockSideUm(std::int64_t n) const {
  // A bundle of L*(word_bits+1) register wires crossing a cut occupies a
  // cross-section of that many track cells: side Theta(sqrt(L)). The
  // memory switch of bandwidth M(n) likewise needs side Theta(sqrt(M(n))).
  const double reg_bundle =
      std::sqrt(static_cast<double>(L_) * (c_.word_bits + 1)) *
      c_.track_pitch_um * 8.0;
  const double memory =
      std::sqrt(std::max(0.0, profile_(static_cast<double>(n)))) *
      c_.memory_port_3d_um;
  return reg_bundle + memory;
}

double UltrascalarILayout3D::SideUm(std::int64_t n) const {
  if (n <= 1) {
    // One station of volume Theta(L): side Theta(cbrt(L)).
    return std::cbrt(static_cast<double>(L_) * (c_.word_bits + 1) *
                     c_.station_cell_um3);
  }
  return BlockSideUm(n) + 2.0 * SideUm(CeilDiv8(n));
}

Geometry3D UltrascalarILayout3D::At(std::int64_t n) const {
  Geometry3D g;
  g.side_um = SideUm(n);
  g.wire_um = 2.0 * g.side_um;  // Up and down the octree: Theta(side).
  return g;
}

// --- Ultrascalar II in 3-D ---------------------------------------------------

UltrascalarIILayout3D::UltrascalarIILayout3D(int num_regs,
                                             LayoutConstants constants)
    : L_(num_regs), c_(constants) {}

double UltrascalarIILayout3D::VolumeUm3(std::int64_t n) const {
  // "The Ultrascalar II requires volume only O(n^2 + L^2) whether the
  // linear-depth or log-depth circuits are used" -- the crosspoint array
  // has Theta((n+L)^2) = Theta(n^2 + L^2) word cells.
  const double nl = static_cast<double>(n + L_);
  const double cell_volume =
      c_.grid_pitch_um * c_.grid_pitch_um * 10.0;  // One word crosspoint.
  return nl * nl * cell_volume;
}

Geometry3D UltrascalarIILayout3D::At(std::int64_t n) const {
  Geometry3D g;
  g.side_um = std::cbrt(VolumeUm3(n));
  g.wire_um = 2.0 * g.side_um;
  return g;
}

// --- Hybrid in 3-D -----------------------------------------------------------

HybridLayout3D::HybridLayout3D(int num_regs, int cluster_size,
                               memory::BandwidthProfile profile,
                               LayoutConstants constants)
    : L_(num_regs),
      C_(cluster_size),
      profile_(std::move(profile)),
      c_(constants),
      cluster_(num_regs, constants) {
  assert(C_ >= 1);
}

double HybridLayout3D::ClusterSideUm(std::int64_t c) const {
  // In 3-D the cluster routes only the <= 2C argument values its stations
  // actually request (the Ultrascalar II principle of sending only needed
  // registers), so the crosspoint volume is Theta(C^2); the L incoming
  // registers cost only Theta(L) storage, not an L-wide grid. This is what
  // makes the paper's optimal cluster Theta(L^{3/4}) reachable: with a full
  // (C+L)^2 grid per cluster the optimum degenerates to Theta(L).
  const double routing = static_cast<double>(c) * static_cast<double>(c) *
                         c_.grid_pitch_um * c_.grid_pitch_um * 10.0;
  const double storage = static_cast<double>(L_) * (c_.word_bits + 1) *
                         c_.station_cell_um3;
  return std::cbrt(routing + storage);
}

double HybridLayout3D::SideUm(std::int64_t n) const {
  if (n <= C_) return ClusterSideUm(n);
  // Closed-form solution of U3(n) = block + 2 U3(n/8), U3(C) = cluster
  // side, with a real-valued level count so the model is smooth in C (the
  // integer recursion quantizes by factors of 8 and makes the argmin over C
  // meaninglessly lumpy).
  const double reg_bundle =
      std::sqrt(static_cast<double>(L_) * (c_.word_bits + 1)) *
      c_.track_pitch_um * 8.0;
  const double memory =
      std::sqrt(std::max(0.0, profile_(static_cast<double>(n)))) *
      c_.memory_port_3d_um;
  const double block = reg_bundle + memory;
  const double levels =
      std::log(static_cast<double>(n) / C_) / std::log(8.0);
  const double scale = std::pow(2.0, levels);  // (n/C)^{1/3}.
  return block * (scale - 1.0) + scale * ClusterSideUm(C_);
}

Geometry3D HybridLayout3D::At(std::int64_t n) const {
  Geometry3D g;
  g.side_um = SideUm(n);
  g.wire_um = 2.0 * g.side_um;
  return g;
}

int OptimalClusterSize3D(int num_regs, std::int64_t n,
                         const memory::BandwidthProfile& profile,
                         LayoutConstants constants) {
  int best_c = 1;
  double best_side = std::numeric_limits<double>::infinity();
  for (double c = 1; c <= static_cast<double>(n); c *= 1.1892) {  // 2^{1/4}.
    const int ci = std::max(1, static_cast<int>(c));
    const HybridLayout3D layout(num_regs, ci, profile, constants);
    const double side = layout.SideUm(n);
    if (side < best_side) {
      best_side = side;
      best_c = ci;
    }
  }
  return best_c;
}

}  // namespace ultra::vlsi
