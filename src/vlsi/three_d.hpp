// Three-dimensional packaging bounds (Section 7).
//
// "In a true three-dimensional packaging technology the Ultrascalar bounds
// do improve because, intuitively, there is more space in three dimensions
// than in two." The recurrences become octree recursions: a subtree of n
// stations splits into 8 subcubes of n/8, and a bundle of L registers
// crossing a cut needs a cross-section of Theta(L), i.e. a side of
// Theta(sqrt(L)).
//
// Paper results reproduced here:
//   * Ultrascalar I, small M(n): volume Theta(n L^{3/2}),
//     wire Theta(n^{1/3} L^{1/2}); large M(n) = Omega(n^{2/3+e}) adds
//     Theta(M(n)^{3/2}) volume.
//   * Ultrascalar II: volume Theta(n^2 + L^2) for both depth flavours.
//   * Hybrid: optimal cluster C = Theta(L^{3/4}), volume Theta(n L^{3/4}).
#pragma once

#include <cstdint>

#include "memory/bandwidth.hpp"
#include "vlsi/constants.hpp"

namespace ultra::vlsi {

struct Geometry3D {
  double side_um = 0.0;
  double wire_um = 0.0;

  [[nodiscard]] double volume_um3() const {
    return side_um * side_um * side_um;
  }
};

class UltrascalarILayout3D {
 public:
  UltrascalarILayout3D(int num_regs, memory::BandwidthProfile profile,
                       LayoutConstants constants = kDefaultConstants);

  /// X3(n) = Theta(sqrt(L)) + Theta(sqrt(M(n))) + 2 X3(n/8).
  [[nodiscard]] double SideUm(std::int64_t n) const;
  [[nodiscard]] Geometry3D At(std::int64_t n) const;

 private:
  int L_;
  memory::BandwidthProfile profile_;
  LayoutConstants c_;

  [[nodiscard]] double BlockSideUm(std::int64_t n) const;
};

class UltrascalarIILayout3D {
 public:
  explicit UltrascalarIILayout3D(int num_regs,
                                 LayoutConstants constants = kDefaultConstants);

  /// Volume Theta(n^2 + L^2), side its cube root.
  [[nodiscard]] double VolumeUm3(std::int64_t n) const;
  [[nodiscard]] Geometry3D At(std::int64_t n) const;

 private:
  int L_;
  LayoutConstants c_;
};

class HybridLayout3D {
 public:
  HybridLayout3D(int num_regs, int cluster_size,
                 memory::BandwidthProfile profile,
                 LayoutConstants constants = kDefaultConstants);

  [[nodiscard]] int cluster_size() const { return C_; }
  [[nodiscard]] double SideUm(std::int64_t n) const;
  [[nodiscard]] Geometry3D At(std::int64_t n) const;

 private:
  int L_;
  int C_;
  memory::BandwidthProfile profile_;
  LayoutConstants c_;
  UltrascalarIILayout3D cluster_;

  /// Side of one cluster: Theta(C^2) routing + Theta(L) register storage.
  [[nodiscard]] double ClusterSideUm(std::int64_t c) const;
};

/// Numeric argmin of the 3-D hybrid side length over power-of-two cluster
/// sizes (the paper reports C = Theta(L^{3/4})).
int OptimalClusterSize3D(int num_regs, std::int64_t n,
                         const memory::BandwidthProfile& profile,
                         LayoutConstants constants = kDefaultConstants);

}  // namespace ultra::vlsi
