#include "vlsi/delay.hpp"

#include <cassert>

#include "datapath/datapath.hpp"

namespace ultra::vlsi {

GateDelays MeasureGateDelays(std::int64_t n, int num_regs, int cluster_size) {
  assert(n >= 1);
  const int ni = static_cast<int>(n);
  GateDelays d;
  {
    const datapath::UltrascalarIDatapath ring(ni, 1, datapath::PrefixImpl::kRing);
    d.usi_ring = ring.WorstCaseGateDepth();
    const datapath::UltrascalarIDatapath tree(ni, 1, datapath::PrefixImpl::kTree);
    d.usi_tree = tree.WorstCaseGateDepth();
  }
  {
    const datapath::UltrascalarIIDatapath grid(ni, num_regs,
                                               datapath::UsiiImpl::kGrid);
    d.usii_grid = grid.WorstCaseGateDepth();
    const datapath::UltrascalarIIDatapath mesh(
        ni, num_regs, datapath::UsiiImpl::kMeshOfTrees);
    d.usii_mesh = mesh.WorstCaseGateDepth();
  }
  {
    const int c = std::min<std::int64_t>(cluster_size, n);
    const int whole = (ni / c) * c;  // Whole clusters only.
    const datapath::HybridDatapath hybrid(std::max(whole, c), num_regs, c);
    d.hybrid = hybrid.WorstCaseGateDepth();
  }
  return d;
}

Comparison Compare(std::int64_t n, int num_regs,
                   const memory::BandwidthProfile& profile,
                   LayoutConstants constants) {
  Comparison cmp;
  const GateDelays gates = MeasureGateDelays(n, num_regs, num_regs);

  const UltrascalarILayout usi(num_regs, profile, constants);
  const UltrascalarIILayout usii(num_regs, constants);
  const HybridLayout hybrid(num_regs, num_regs, profile, constants);

  cmp.usi_geom = usi.At(n);
  cmp.usii_linear_geom = usii.At(n, UltrascalarIILayout::Depth::kLinear);
  cmp.usii_log_geom = usii.At(n, UltrascalarIILayout::Depth::kLogViaTreeOfMeshes);
  cmp.hybrid_geom = hybrid.At(n);

  const auto wire_ps = [&](const Geometry& g) {
    return g.wire_um / 1000.0 * constants.wire_ps_per_mm;
  };
  cmp.usi = {gates.usi_tree * constants.gate_ps, wire_ps(cmp.usi_geom)};
  cmp.usii_linear = {gates.usii_grid * constants.gate_ps,
                     wire_ps(cmp.usii_linear_geom)};
  cmp.usii_log = {gates.usii_mesh * constants.gate_ps,
                  wire_ps(cmp.usii_log_geom)};
  cmp.hybrid = {gates.hybrid * constants.gate_ps, wire_ps(cmp.hybrid_geom)};
  return cmp;
}

}  // namespace ultra::vlsi
