// Reference kernels: small, named programs in the reference ISA.
//
// Used by examples, tests, and the benchmark harness. All kernels terminate
// with halt and are verified against the functional simulator.
#pragma once

#include "isa/program.hpp"

namespace ultra::workloads {

/// The paper's eight-instruction sequence (Section 2 / Figure 3).
isa::Program Figure3Example();

/// Iteratively computes fib(k) into r1.
isa::Program Fibonacci(int k);

/// Dot product of two length-len vectors with seeded contents; result in r2.
isa::Program DotProduct(int len, unsigned seed = 1);

/// Copies words from address 0 to address 4*words.
isa::Program MemCopy(int words, unsigned seed = 2);

/// Bubble-sorts len (>= 2) seeded words in place at address 0.
isa::Program BubbleSort(int len, unsigned seed = 3);

/// Sums an array indirectly through an index vector (pointer chasing-ish).
isa::Program IndirectSum(int len, unsigned seed = 4);

/// N x N integer matrix multiply, C = A * B; A at 0, B at 4N^2, C at 8N^2.
isa::Program MatMul(int n, unsigned seed = 5);

}  // namespace ultra::workloads
