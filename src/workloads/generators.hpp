// Parameterized synthetic workload generators.
//
// The paper's evaluation is about microarchitecture scaling, not benchmark
// suites; these generators produce programs whose instruction-level
// parallelism, memory intensity, and branchiness are controlled knobs, so
// the benches can sweep exactly the dimension under study.
#pragma once

#include "isa/program.hpp"

namespace ultra::workloads {

/// `ilp` independent chains of dependent single-cycle ops, interleaved
/// round-robin: the dataflow-limit IPC is exactly min(ilp, window).
struct ChainConfig {
  int num_instructions = 256;
  int ilp = 4;              // Number of independent chains (>= 1).
  int num_regs = 32;
  bool use_long_ops = false;  // Sprinkle mul/div into the chains.
  unsigned seed = 1;
};
isa::Program DependencyChains(const ChainConfig& config);

/// Straight-line random ALU/memory mix (no branches): deterministic across
/// all processors regardless of predictor.
struct MixConfig {
  int num_instructions = 256;
  double load_fraction = 0.15;
  double store_fraction = 0.10;
  double mul_fraction = 0.10;
  double div_fraction = 0.02;
  int num_regs = 32;
  int memory_words = 64;    // Addresses span [0, 4*memory_words).
  unsigned seed = 2;
};
isa::Program RandomMix(const MixConfig& config);

/// A loop issuing `loads_per_iter` independent loads per iteration: IPC is
/// limited by memory bandwidth M(n), the knob of experiment E10.
struct StreamConfig {
  int iterations = 64;
  int loads_per_iter = 8;
  int stride_words = 1;
  unsigned seed = 3;
};
isa::Program MemoryStream(const StreamConfig& config);

/// A loop whose conditional branch alternates taken/not-taken: worst case
/// for static predictors, exercising misprediction recovery.
isa::Program BranchStorm(int iterations);

/// A loop whose straight-line body is `body_instructions` long, iterated
/// `iterations` times: the code footprint (~4 * body_instructions bytes) is
/// the knob. Bodies larger than the L1 icache re-miss every iteration, so
/// IPC tracks icache capacity; straight-line programs cannot show this
/// (each pc is touched once).
struct FootprintConfig {
  int body_instructions = 256;
  int iterations = 8;
  int num_regs = 32;
};
isa::Program CodeFootprint(const FootprintConfig& config);

/// Strided passes over an `array_words`-word array: `unroll` independent
/// loads per loop body, the pointer advancing `stride_words` per load,
/// restarting from the base each pass. Arrays larger than a cache level
/// miss on every pass; the constant stride is exactly what the
/// StridePrefetcher locks onto, so this is the stride kernel of the
/// hierarchy bench and the CI miss-rate monotonicity gate.
struct StrideSweepConfig {
  int array_words = 1024;
  int stride_words = 8;   // Per-load stride (>= 1).
  int passes = 4;
  int unroll = 4;         // Loads per loop body (1..8); ignored if dependent.
  /// Serialize the walk: each pointer update consumes the previous load's
  /// value (which is zero), so the next address is data-dependent on the
  /// previous load and the window cannot run ahead of memory. This is the
  /// latency-bound kernel of the prefetch-depth axis -- an out-of-order
  /// window hides the unrolled variant's misses by itself.
  bool dependent = false;
};
isa::Program StridedSweep(const StrideSweepConfig& config);

/// Random control-flow DAG: blocks of straight-line code linked by forward
/// conditional branches and jumps only, so every path terminates. The
/// fuzzing workhorse for cross-processor equivalence under speculation.
struct DagConfig {
  int num_blocks = 12;
  int block_size = 6;       // Instructions per block (before the branch).
  double branch_prob = 0.7; // Chance a block ends in a conditional branch.
  int num_regs = 32;
  int memory_words = 32;
  unsigned seed = 4;
};
isa::Program RandomForwardDag(const DagConfig& config);

}  // namespace ultra::workloads
