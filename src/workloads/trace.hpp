// Trace-driven workloads (ROADMAP item 3).
//
// A trace is a recorded workload -- the full instruction sequence, initial
// data-memory image, and labels of a Program -- in a versioned format that
// external tools can produce and consume, so programs that did not come from
// the in-tree generators can drive all four cores and every sweep axis.
//
// Two interchangeable encodings carry the same TraceWorkload:
//
//  * Text ("ULTRATRACE 1" header): one record per line, decimal fields,
//    diff- and script-friendly. See docs/memory.md for the grammar.
//  * Binary ("UTRC" magic): persist::Encoder framing around
//    isa::EncodeProgram, with a trailing CRC-32 so torn or corrupt files
//    fail loudly as persist::FormatError.
//
// Round-trip guarantee: Record -> Save -> Load -> TraceToProgram yields a
// Program whose RunResult is byte-identical to the source workload's on
// every core (bench_memory_hierarchy and workloads_test assert this).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "persist/serial.hpp"

namespace ultra::workloads {

inline constexpr std::uint32_t kTraceFormatVersion = 1;
inline constexpr std::uint32_t kTraceBinaryMagic = 0x43525455;  // "UTRC" LE.

struct TraceWorkload {
  std::string name;
  isa::Program program;
};

/// Records an existing workload (any generator output or hand-assembled
/// Program) as a trace.
[[nodiscard]] TraceWorkload RecordTrace(std::string name,
                                        const isa::Program& program);

/// Turns a trace back into the Program the cores and SweepPoints consume.
[[nodiscard]] const isa::Program& TraceToProgram(const TraceWorkload& trace);

/// Text codec. DecodeTraceText throws persist::FormatError on any malformed
/// input (bad header, unknown mnemonic, out-of-range register, missing
/// terminator).
[[nodiscard]] std::string EncodeTraceText(const TraceWorkload& trace);
[[nodiscard]] TraceWorkload DecodeTraceText(std::string_view text);

/// Binary codec (CRC-protected). DecodeTraceBinary throws
/// persist::FormatError on truncation, CRC mismatch, bad magic, or an
/// unsupported version.
[[nodiscard]] std::vector<std::uint8_t> EncodeTraceBinary(
    const TraceWorkload& trace);
[[nodiscard]] TraceWorkload DecodeTraceBinary(
    std::span<const std::uint8_t> bytes);

/// File helpers. SaveTraceFile writes atomically; LoadTraceFile sniffs the
/// format from the leading bytes (binary magic, else text).
void SaveTraceFile(const std::string& path, const TraceWorkload& trace,
                   bool binary);
[[nodiscard]] TraceWorkload LoadTraceFile(const std::string& path);

}  // namespace ultra::workloads
