#include "workloads/generators.hpp"

#include <cassert>
#include <random>
#include <sstream>

#include "isa/assembler.hpp"

namespace ultra::workloads {

isa::Program DependencyChains(const ChainConfig& config) {
  assert(config.ilp >= 1);
  assert(config.num_regs >= config.ilp + 2);
  std::mt19937 rng(config.seed);
  std::ostringstream os;
  // Chain c accumulates into register c+1; r0 stays zero.
  for (int c = 0; c < config.ilp; ++c) {
    os << "  li r" << c + 1 << ", " << c + 1 << "\n";
  }
  for (int i = 0; i < config.num_instructions; ++i) {
    const int c = i % config.ilp;
    const int r = c + 1;
    if (config.use_long_ops && rng() % 8 == 0) {
      os << "  mul r" << r << ", r" << r << ", r" << r << "\n";
    } else if (config.use_long_ops && rng() % 16 == 0) {
      os << "  div r" << r << ", r" << r << ", r" << r << "\n";
    } else {
      os << "  addi r" << r << ", r" << r << ", 1\n";
    }
  }
  os << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program RandomMix(const MixConfig& config) {
  assert(config.num_regs >= 8);
  assert(config.memory_words >= 1);
  std::mt19937 rng(config.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const auto reg = [&](int lo) {
    return lo + static_cast<int>(rng() % static_cast<unsigned>(
                                     config.num_regs - lo));
  };
  const auto offset = [&] {
    return 4 * static_cast<int>(rng() %
                                static_cast<unsigned>(config.memory_words));
  };
  std::ostringstream os;
  os << "  li r1, 0\n";  // Memory base register.
  for (int r = 2; r < std::min(8, config.num_regs); ++r) {
    os << "  li r" << r << ", " << rng() % 1000 << "\n";
  }
  for (int i = 0; i < config.num_instructions; ++i) {
    const double p = uni(rng);
    if (p < config.load_fraction) {
      os << "  ld r" << reg(2) << ", " << offset() << "(r1)\n";
    } else if (p < config.load_fraction + config.store_fraction) {
      os << "  st r" << reg(2) << ", " << offset() << "(r1)\n";
    } else if (p < config.load_fraction + config.store_fraction +
                       config.mul_fraction) {
      os << "  mul r" << reg(2) << ", r" << reg(2) << ", r" << reg(2) << "\n";
    } else if (p < config.load_fraction + config.store_fraction +
                       config.mul_fraction + config.div_fraction) {
      os << "  div r" << reg(2) << ", r" << reg(2) << ", r" << reg(2) << "\n";
    } else {
      const char* ops[] = {"add", "sub", "xor", "and", "or"};
      os << "  " << ops[rng() % 5] << " r" << reg(2) << ", r" << reg(2)
         << ", r" << reg(2) << "\n";
    }
  }
  os << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program MemoryStream(const StreamConfig& config) {
  assert(config.iterations >= 1 && config.loads_per_iter >= 1);
  assert(config.loads_per_iter <= 20);
  std::mt19937 rng(config.seed);
  std::ostringstream os;
  const int span = config.loads_per_iter * config.stride_words;
  for (int w = 0; w < span; ++w) {
    os << "  .word " << 4 * w << " " << rng() % 100 << "\n";
  }
  os << "  li r1, 0\n"   // base
     << "  li r2, 0\n"   // i
     << "  li r3, " << config.iterations << "\n"
     << "  li r4, 0\n"   // sum
     << "loop:\n";
  for (int k = 0; k < config.loads_per_iter; ++k) {
    // Independent loads into distinct registers (r8..).
    os << "  ld r" << 8 + k << ", " << 4 * k * config.stride_words
       << "(r1)\n";
  }
  for (int k = 0; k < config.loads_per_iter; ++k) {
    os << "  add r4, r4, r" << 8 + k << "\n";
  }
  os << "  addi r2, r2, 1\n"
     << "  blt r2, r3, loop\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program RandomForwardDag(const DagConfig& config) {
  assert(config.num_blocks >= 1 && config.block_size >= 1);
  assert(config.num_regs >= 8);
  std::mt19937 rng(config.seed);
  const auto reg = [&](int lo) {
    return lo + static_cast<int>(rng() % static_cast<unsigned>(
                                     config.num_regs - lo));
  };
  std::ostringstream os;
  os << "  li r1, 0\n";  // Memory base.
  for (int r = 2; r < 8; ++r) {
    os << "  li r" << r << ", " << rng() % 64 << "\n";
  }
  for (int b = 0; b < config.num_blocks; ++b) {
    os << "blk" << b << ":\n";
    for (int i = 0; i < config.block_size; ++i) {
      switch (rng() % 6) {
        case 0:
          os << "  ld r" << reg(2) << ", "
             << 4 * (rng() % static_cast<unsigned>(config.memory_words))
             << "(r1)\n";
          break;
        case 1:
          os << "  st r" << reg(2) << ", "
             << 4 * (rng() % static_cast<unsigned>(config.memory_words))
             << "(r1)\n";
          break;
        case 2:
          os << "  mul r" << reg(2) << ", r" << reg(2) << ", r" << reg(2)
             << "\n";
          break;
        default:
          os << "  add r" << reg(2) << ", r" << reg(2) << ", r" << reg(2)
             << "\n";
      }
    }
    if (b + 1 < config.num_blocks) {
      // Forward target: any strictly later block (keeps the graph acyclic).
      const int target =
          b + 1 + static_cast<int>(rng() % static_cast<unsigned>(
                                       config.num_blocks - b - 1));
      if (std::uniform_real_distribution<double>(0, 1)(rng) <
          config.branch_prob) {
        const char* ops[] = {"beq", "bne", "blt", "bge"};
        os << "  " << ops[rng() % 4] << " r" << reg(2) << ", r" << reg(2)
           << ", blk" << target << "\n";
      } else if (rng() % 3 == 0) {
        os << "  jmp blk" << target << "\n";
      }
    }
  }
  os << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program CodeFootprint(const FootprintConfig& config) {
  assert(config.body_instructions >= 1 && config.iterations >= 1);
  assert(config.num_regs >= 8);
  std::ostringstream os;
  os << "  li r1, 0\n"  // i
     << "  li r2, " << config.iterations << "\n"
     << "loop:\n";
  // Rotating destination registers keep the body's ILP high, so the only
  // bottleneck a sweep can expose is instruction supply.
  const int body_regs = config.num_regs - 3;
  for (int i = 0; i < config.body_instructions; ++i) {
    const int r = 3 + (i % body_regs);
    os << "  addi r" << r << ", r" << r << ", 1\n";
  }
  os << "  addi r1, r1, 1\n"
     << "  blt r1, r2, loop\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program StridedSweep(const StrideSweepConfig& config) {
  assert(config.array_words >= 1 && config.stride_words >= 1);
  assert(config.passes >= 1);
  assert(config.unroll >= 1 && config.unroll <= 8);
  const int stride_bytes = 4 * config.stride_words;
  const int array_bytes = 4 * config.array_words;
  std::ostringstream os;
  os << "  li r1, 0\n"  // pointer (byte address)
     << "  li r2, 0\n"  // pass
     << "  li r3, " << config.passes << "\n"
     << "  li r4, 0\n"  // sum
     << "  li r5, " << array_bytes << "\n"
     << "pass:\n"
     << "  li r1, 0\n"
     << "loop:\n";
  if (config.dependent) {
    // The loaded words are all zero, so adding the masked value into the
    // pointer changes nothing architecturally -- but it makes the next
    // address data-dependent on the load completing.
    os << "  ld r8, 0(r1)\n"
       << "  add r4, r4, r8\n"
       << "  andi r9, r8, 0\n"
       << "  add r1, r1, r9\n"
       << "  addi r1, r1, " << stride_bytes << "\n";
  } else {
    for (int k = 0; k < config.unroll; ++k) {
      os << "  ld r" << 8 + k << ", " << k * stride_bytes << "(r1)\n";
    }
    for (int k = 0; k < config.unroll; ++k) {
      os << "  add r4, r4, r" << 8 + k << "\n";
    }
    os << "  addi r1, r1, " << config.unroll * stride_bytes << "\n";
  }
  os << "  blt r1, r5, loop\n"
     << "  addi r2, r2, 1\n"
     << "  blt r2, r3, pass\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program BranchStorm(int iterations) {
  assert(iterations >= 1);
  std::ostringstream os;
  os << "  li r1, 0\n"   // i
     << "  li r2, " << iterations << "\n"
     << "  li r3, 0\n"   // acc
     << "loop:\n"
     << "  andi r4, r1, 1\n"
     << "  li r5, 0\n"
     << "  beq r4, r5, even\n"
     << "  addi r3, r3, 7\n"
     << "  jmp next\n"
     << "even:\n"
     << "  addi r3, r3, 1\n"
     << "next:\n"
     << "  addi r1, r1, 1\n"
     << "  blt r1, r2, loop\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

}  // namespace ultra::workloads
