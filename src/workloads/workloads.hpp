// Umbrella header for the workload library.
#pragma once

#include "workloads/generators.hpp"  // IWYU pragma: export
#include "workloads/kernels.hpp"     // IWYU pragma: export
#include "workloads/trace.hpp"       // IWYU pragma: export
