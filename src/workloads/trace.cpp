#include "workloads/trace.hpp"

#include <sstream>

#include "isa/program_codec.hpp"

namespace ultra::workloads {

namespace {

[[noreturn]] void Bad(const std::string& what) {
  throw persist::FormatError("trace: " + what);
}

isa::RegId ParseReg(long value) {
  if (value < 0 || value > 255) Bad("register out of range");
  return static_cast<isa::RegId>(value);
}

}  // namespace

TraceWorkload RecordTrace(std::string name, const isa::Program& program) {
  TraceWorkload trace;
  trace.name = std::move(name);
  trace.program = program;
  return trace;
}

const isa::Program& TraceToProgram(const TraceWorkload& trace) {
  return trace.program;
}

std::string EncodeTraceText(const TraceWorkload& trace) {
  std::ostringstream os;
  os << "ULTRATRACE " << kTraceFormatVersion << "\n";
  os << "name " << trace.name << "\n";
  for (const auto& [addr, value] : trace.program.initial_memory()) {
    os << "mem " << addr << " " << value << "\n";
  }
  for (const auto& [label, index] : trace.program.labels()) {
    os << "label " << label << " " << index << "\n";
  }
  for (const isa::Instruction& inst : trace.program.code()) {
    os << "i " << isa::OpcodeName(inst.op) << " " << int{inst.rd} << " "
       << int{inst.rs1} << " " << int{inst.rs2} << " " << inst.imm << "\n";
  }
  os << "end\n";
  return os.str();
}

TraceWorkload DecodeTraceText(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  if (!std::getline(is, line)) Bad("empty input");
  {
    std::istringstream header(line);
    std::string tag;
    std::uint32_t version = 0;
    if (!(header >> tag >> version) || tag != "ULTRATRACE") {
      Bad("bad header (expected 'ULTRATRACE <version>')");
    }
    if (version != kTraceFormatVersion) {
      Bad("unsupported version " + std::to_string(version));
    }
  }
  TraceWorkload trace;
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "end") {
      saw_end = true;
      break;
    }
    if (kind == "name") {
      // The name is the rest of the line (it may contain spaces).
      std::string rest;
      std::getline(fields, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      trace.name = rest;
    } else if (kind == "mem") {
      unsigned long addr = 0;
      unsigned long value = 0;
      if (!(fields >> addr >> value)) Bad("bad mem record: " + line);
      trace.program.SetInitialWord(static_cast<isa::Word>(addr),
                                   static_cast<isa::Word>(value));
    } else if (kind == "label") {
      std::string label;
      unsigned long index = 0;
      if (!(fields >> label >> index)) Bad("bad label record: " + line);
      trace.program.AddLabel(std::move(label),
                             static_cast<std::size_t>(index));
    } else if (kind == "i") {
      std::string mnemonic;
      long rd = 0;
      long rs1 = 0;
      long rs2 = 0;
      long imm = 0;
      if (!(fields >> mnemonic >> rd >> rs1 >> rs2 >> imm)) {
        Bad("bad instruction record: " + line);
      }
      const isa::Opcode op = isa::OpcodeFromName(mnemonic);
      if (op == isa::Opcode::kCount_) Bad("unknown mnemonic: " + mnemonic);
      isa::Instruction inst;
      inst.op = op;
      inst.rd = ParseReg(rd);
      inst.rs1 = ParseReg(rs1);
      inst.rs2 = ParseReg(rs2);
      inst.imm = static_cast<std::int32_t>(imm);
      trace.program.Append(inst);
    } else {
      Bad("unknown record kind: " + kind);
    }
  }
  if (!saw_end) Bad("missing 'end' terminator");
  return trace;
}

std::vector<std::uint8_t> EncodeTraceBinary(const TraceWorkload& trace) {
  persist::Encoder e;
  e.U32(kTraceBinaryMagic);
  e.U32(kTraceFormatVersion);
  e.Str(trace.name);
  isa::EncodeProgram(e, trace.program);
  const std::uint32_t crc = persist::Crc32(e.bytes());
  e.U32(crc);
  return e.Take();
}

TraceWorkload DecodeTraceBinary(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 12) Bad("binary trace truncated");
  const std::span<const std::uint8_t> payload = bytes.first(bytes.size() - 4);
  const std::uint32_t want = persist::Crc32(payload);
  const std::span<const std::uint8_t> tail = bytes.last(4);
  const std::uint32_t got = static_cast<std::uint32_t>(tail[0]) |
                            (static_cast<std::uint32_t>(tail[1]) << 8) |
                            (static_cast<std::uint32_t>(tail[2]) << 16) |
                            (static_cast<std::uint32_t>(tail[3]) << 24);
  if (want != got) Bad("binary trace CRC mismatch");
  persist::Decoder d(payload);
  if (d.U32() != kTraceBinaryMagic) Bad("bad binary trace magic");
  const std::uint32_t version = d.U32();
  if (version != kTraceFormatVersion) {
    Bad("unsupported binary version " + std::to_string(version));
  }
  TraceWorkload trace;
  trace.name = d.Str();
  trace.program = isa::DecodeProgram(d);
  if (!d.AtEnd()) Bad("trailing bytes after binary trace");
  return trace;
}

void SaveTraceFile(const std::string& path, const TraceWorkload& trace,
                   bool binary) {
  if (binary) {
    const std::vector<std::uint8_t> bytes = EncodeTraceBinary(trace);
    persist::AtomicWriteFile(path, bytes);
  } else {
    persist::AtomicWriteFile(path, std::string_view(EncodeTraceText(trace)));
  }
}

TraceWorkload LoadTraceFile(const std::string& path) {
  const std::vector<std::uint8_t> bytes = persist::ReadFileBytes(path);
  if (bytes.size() >= 4) {
    const std::uint32_t magic = static_cast<std::uint32_t>(bytes[0]) |
                                (static_cast<std::uint32_t>(bytes[1]) << 8) |
                                (static_cast<std::uint32_t>(bytes[2]) << 16) |
                                (static_cast<std::uint32_t>(bytes[3]) << 24);
    if (magic == kTraceBinaryMagic) return DecodeTraceBinary(bytes);
  }
  return DecodeTraceText(
      std::string_view(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size()));
}

}  // namespace ultra::workloads
