#include "workloads/kernels.hpp"

#include <algorithm>
#include <cassert>
#include <random>
#include <sstream>

#include "isa/assembler.hpp"

namespace ultra::workloads {

isa::Program Figure3Example() {
  return isa::AssembleOrDie(R"(
    div r3, r1, r2
    add r0, r0, r3
    add r1, r5, r6
    add r1, r0, r1
    mul r2, r5, r6
    add r2, r2, r4
    sub r0, r5, r6
    add r4, r0, r7
    halt
  )");
}

isa::Program Fibonacci(int k) {
  assert(k >= 0);
  std::ostringstream os;
  os << "  li r1, 0\n"     // fib(i)
     << "  li r2, 1\n"     // fib(i+1)
     << "  li r3, 0\n"     // i
     << "  li r4, " << k << "\n"
     << "  bge r3, r4, done\n"
     << "loop:\n"
     << "  add r5, r1, r2\n"
     << "  add r1, r2, r0\n"
     << "  add r2, r5, r0\n"
     << "  addi r3, r3, 1\n"
     << "  blt r3, r4, loop\n"
     << "done:\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program DotProduct(int len, unsigned seed) {
  assert(len >= 1);
  std::mt19937 rng(seed);
  std::ostringstream os;
  for (int i = 0; i < len; ++i) {
    os << "  .word " << 4 * i << " " << rng() % 100 << "\n";
    os << "  .word " << 4 * (len + i) << " " << rng() % 100 << "\n";
  }
  os << "  li r1, 0\n"                     // &a[0]
     << "  li r2, 0\n"                     // sum
     << "  li r3, 0\n"                     // i
     << "  li r4, " << len << "\n"
     << "loop:\n"
     << "  slli r5, r3, 2\n"
     << "  add r6, r5, r1\n"
     << "  ld r7, 0(r6)\n"
     << "  ld r8, " << 4 * len << "(r6)\n"
     << "  mul r9, r7, r8\n"
     << "  add r2, r2, r9\n"
     << "  addi r3, r3, 1\n"
     << "  blt r3, r4, loop\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program MemCopy(int words, unsigned seed) {
  assert(words >= 1);
  std::mt19937 rng(seed);
  std::ostringstream os;
  for (int i = 0; i < words; ++i) {
    os << "  .word " << 4 * i << " " << rng() % 1000 << "\n";
  }
  os << "  li r1, 0\n"                      // src
     << "  li r2, " << 4 * words << "\n"    // dst
     << "  li r3, 0\n"                      // i
     << "  li r4, " << words << "\n"
     << "loop:\n"
     << "  slli r5, r3, 2\n"
     << "  add r6, r5, r1\n"
     << "  add r7, r5, r2\n"
     << "  ld r8, 0(r6)\n"
     << "  st r8, 0(r7)\n"
     << "  addi r3, r3, 1\n"
     << "  blt r3, r4, loop\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program BubbleSort(int len, unsigned seed) {
  assert(len >= 2);
  std::mt19937 rng(seed);
  std::ostringstream os;
  for (int i = 0; i < len; ++i) {
    os << "  .word " << 4 * i << " " << rng() % 1000 << "\n";
  }
  os << "  li r1, 0\n"                   // base
     << "  li r2, " << len << "\n"       // n
     << "  addi r10, r2, -1\n"           // outer bound
     << "  li r3, 0\n"                   // i
     << "outer:\n"
     << "  li r4, 0\n"                   // j
     << "  sub r11, r2, r3\n"
     << "  addi r11, r11, -1\n"          // inner bound = n - i - 1
     << "inner:\n"
     << "  slli r5, r4, 2\n"
     << "  add r5, r5, r1\n"
     << "  ld r6, 0(r5)\n"
     << "  ld r7, 4(r5)\n"
     << "  bge r7, r6, noswap\n"
     << "  st r7, 0(r5)\n"
     << "  st r6, 4(r5)\n"
     << "noswap:\n"
     << "  addi r4, r4, 1\n"
     << "  blt r4, r11, inner\n"
     << "  addi r3, r3, 1\n"
     << "  blt r3, r10, outer\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program IndirectSum(int len, unsigned seed) {
  assert(len >= 1);
  std::mt19937 rng(seed);
  std::ostringstream os;
  // Index vector at 0, data at 4*len.
  std::vector<int> perm(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  for (int i = 0; i < len; ++i) {
    os << "  .word " << 4 * i << " " << perm[static_cast<std::size_t>(i)]
       << "\n";
    os << "  .word " << 4 * (len + i) << " " << rng() % 500 << "\n";
  }
  os << "  li r1, 0\n"
     << "  li r2, " << 4 * len << "\n"   // data base
     << "  li r3, 0\n"                   // i
     << "  li r4, " << len << "\n"
     << "  li r5, 0\n"                   // sum
     << "loop:\n"
     << "  slli r6, r3, 2\n"
     << "  add r6, r6, r1\n"
     << "  ld r7, 0(r6)\n"               // idx = index[i]
     << "  slli r7, r7, 2\n"
     << "  add r7, r7, r2\n"
     << "  ld r8, 0(r7)\n"               // data[idx]
     << "  add r5, r5, r8\n"
     << "  addi r3, r3, 1\n"
     << "  blt r3, r4, loop\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

isa::Program MatMul(int n, unsigned seed) {
  assert(n >= 1 && n <= 16);
  std::mt19937 rng(seed);
  std::ostringstream os;
  const int nn = n * n;
  for (int i = 0; i < nn; ++i) {
    os << "  .word " << 4 * i << " " << rng() % 20 << "\n";
    os << "  .word " << 4 * (nn + i) << " " << rng() % 20 << "\n";
  }
  os << "  li r1, 0\n"                  // A
     << "  li r2, " << 4 * nn << "\n"   // B
     << "  li r3, " << 8 * nn << "\n"   // C
     << "  li r4, " << n << "\n"        // N
     << "  li r5, 0\n"                  // i
     << "iloop:\n"
     << "  li r6, 0\n"                  // j
     << "jloop:\n"
     << "  li r7, 0\n"                  // k
     << "  li r8, 0\n"                  // acc
     << "kloop:\n"
     << "  mul r9, r5, r4\n"
     << "  add r9, r9, r7\n"
     << "  slli r9, r9, 2\n"
     << "  add r9, r9, r1\n"
     << "  ld r10, 0(r9)\n"             // A[i][k]
     << "  mul r11, r7, r4\n"
     << "  add r11, r11, r6\n"
     << "  slli r11, r11, 2\n"
     << "  add r11, r11, r2\n"
     << "  ld r12, 0(r11)\n"            // B[k][j]
     << "  mul r13, r10, r12\n"
     << "  add r8, r8, r13\n"
     << "  addi r7, r7, 1\n"
     << "  blt r7, r4, kloop\n"
     << "  mul r9, r5, r4\n"
     << "  add r9, r9, r6\n"
     << "  slli r9, r9, 2\n"
     << "  add r9, r9, r3\n"
     << "  st r8, 0(r9)\n"              // C[i][j]
     << "  addi r6, r6, 1\n"
     << "  blt r6, r4, jloop\n"
     << "  addi r5, r5, 1\n"
     << "  blt r5, r4, iloop\n"
     << "  halt\n";
  return isa::AssembleOrDie(os.str());
}

}  // namespace ultra::workloads
