// Deterministic binary serialization primitives for checkpoints, sweep
// journals, and repro bundles.
//
// The encoding is little-endian, fixed-width, and position-independent: the
// same logical state always produces the same bytes on every platform, so
// checkpoint files can be fingerprinted, CRC-framed, and compared
// byte-for-byte (the golden-format tests rely on this). Callers that
// serialize hash-ordered containers must emit them in sorted key order.
//
// No dependencies beyond the standard library: every subsystem (isa,
// memory, datapath, fault, core, runtime) links ultra_persist to put its own
// Save/Restore methods next to the state they capture.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ultra::persist {

/// Thrown by Decoder and the file/frame readers on truncated, corrupt, or
/// version-mismatched input. Restores must treat it as "this artifact is
/// unusable", never as partial data.
class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte sink. All integers are written little-endian at fixed
/// width; strings and byte blobs carry a u32 length prefix.
class Encoder {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v) { Le(v, 2); }
  void U32(std::uint32_t v) { Le(v, 4); }
  void U64(std::uint64_t v) { Le(v, 8); }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v);
  void Str(std::string_view s);
  void Bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  void Le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// Reader over a byte span (not owned). Throws FormatError on underflow, so
/// a truncated artifact fails loudly instead of yielding garbage state.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t U8() { return static_cast<std::uint8_t>(Le(1)); }
  std::uint16_t U16() { return static_cast<std::uint16_t>(Le(2)); }
  std::uint32_t U32() { return static_cast<std::uint32_t>(Le(4)); }
  std::uint64_t U64() { return Le(8); }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  bool Bool();
  double F64();
  std::string Str();
  std::vector<std::uint8_t> Bytes();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::uint64_t Le(int n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over @p data.
[[nodiscard]] std::uint32_t Crc32(std::span<const std::uint8_t> data);

/// FNV-1a 64-bit hash, the fingerprint primitive for configs and programs.
[[nodiscard]] std::uint64_t Fnv1a64(std::span<const std::uint8_t> data);

/// Writes @p data to @p path atomically and durably: a temp file in the same
/// directory is written, fsync'd, renamed over @p path, and the directory is
/// fsync'd. Readers never observe a half-written artifact. The temp name is
/// unique per writer (`<path>.tmp.<pid>.<seq>`, opened O_EXCL), so
/// concurrent writers to the same destination cannot clobber each other's
/// in-flight bytes, and it is unlinked on every error path. Throws
/// std::runtime_error on any I/O failure.
void AtomicWriteFile(const std::string& path,
                     std::span<const std::uint8_t> data);
void AtomicWriteFile(const std::string& path, std::string_view text);

/// Removes orphaned AtomicWriteFile temp files (`*.tmp.*`) left in @p dir by
/// a writer that crashed between create and rename. Restart paths
/// (SweepService::Start, the chaos harness's recovery step) call this before
/// trusting the directory's contents. Returns the number removed.
std::size_t RemoveStaleTmpFiles(const std::string& dir);

/// Reads a whole file; throws FormatError when it cannot be opened.
[[nodiscard]] std::vector<std::uint8_t> ReadFileBytes(const std::string& path);

}  // namespace ultra::persist
