#include "persist/serial.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "failpoint/io.hpp"

namespace ultra::persist {

void Encoder::F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::Bytes(std::span<const std::uint8_t> data) {
  U32(static_cast<std::uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::uint64_t Decoder::Le(int n) {
  if (remaining() < static_cast<std::size_t>(n)) {
    throw FormatError("truncated input");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += static_cast<std::size_t>(n);
  return v;
}

bool Decoder::Bool() {
  const std::uint8_t v = U8();
  if (v > 1) throw FormatError("corrupt bool");
  return v != 0;
}

double Decoder::F64() { return std::bit_cast<double>(U64()); }

std::string Decoder::Str() {
  const std::uint32_t n = U32();
  if (remaining() < n) throw FormatError("truncated string");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> Decoder::Bytes() {
  const std::uint32_t n = U32();
  if (remaining() < n) throw FormatError("truncated blob");
  std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                              data_.begin() +
                                  static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t Fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

namespace {

void ThrowErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

/// fsync the directory containing @p path so a rename/create survives a
/// crash. Best-effort: some filesystems reject directory fsync.
void SyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void AtomicWriteFile(const std::string& path,
                     std::span<const std::uint8_t> data) {
  auto& io = failpoint::ActiveIo();
  // Unique per-writer temp name: a fixed `path + ".tmp"` would let two
  // concurrent writers to the same destination interleave bytes in one tmp
  // file. O_EXCL guarantees exclusivity; the counter disambiguates writers
  // within a process, the pid across processes.
  static std::atomic<std::uint64_t> tmp_seq{0};
  int fd = -1;
  std::string tmp;
  for (int attempt = 0; attempt < 64; ++attempt) {
    tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
          std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed));
    fd = io.Open("atomic.open", tmp.c_str(),
                 O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd >= 0 || errno != EEXIST) break;  // EEXIST = stale orphan; retry.
  }
  if (fd < 0) ThrowErrno("cannot create", tmp);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        io.Write("atomic.write", fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved_errno = errno;
      ::close(fd);
      io.Unlink("atomic.unlink", tmp.c_str());
      errno = saved_errno;
      ThrowErrno("cannot write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (io.Fsync("atomic.fsync", fd) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    io.Unlink("atomic.unlink", tmp.c_str());
    errno = saved_errno;
    ThrowErrno("cannot fsync", tmp);
  }
  ::close(fd);
  if (io.Rename("atomic.rename", tmp.c_str(), path.c_str()) != 0) {
    const int saved_errno = errno;
    io.Unlink("atomic.unlink", tmp.c_str());
    errno = saved_errno;
    ThrowErrno("cannot rename over", path);
  }
  SyncParentDir(path);
}

std::size_t RemoveStaleTmpFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::size_t removed = 0;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.find(".tmp.") == std::string::npos) continue;
    if (::unlink((dir + "/" + name).c_str()) == 0) ++removed;
  }
  ::closedir(d);
  return removed;
}

void AtomicWriteFile(const std::string& path, std::string_view text) {
  AtomicWriteFile(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size()));
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  auto& io = failpoint::ActiveIo();
  const int fd = io.Open("file.open.read", path.c_str(), O_RDONLY, 0);
  if (fd < 0) throw FormatError("cannot open " + path);
  std::vector<std::uint8_t> data;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = io.Read("file.read", fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw FormatError("cannot read " + path);
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);
  return data;
}

}  // namespace ultra::persist
