// Versioned full-state simulation checkpoints.
//
// A checkpoint captures everything a core's Run() loop holds at the top of a
// cycle boundary — architectural state (registers, memory image, fetch PC)
// and microarchitectural state (station/window contents, datapath delivery
// buffers, predictor state, in-flight memory traffic, fault-plan cursors,
// accumulated RunStats) — so a run restored at cycle k continues
// cycle-for-cycle identical to the uninterrupted run, including under live
// fault corruption. The state blob's layout is owned by the core that wrote
// it (persist only frames it); the header identifies which core, cycle, and
// (config, program) pair the blob belongs to.
//
// File frame (little-endian):
//   u32 magic "UCKP" | u32 version | header fields | u32 state length |
//   state bytes | u32 CRC-32 of everything before the CRC
// Decode rejects bad magic, unknown versions, truncation, and CRC mismatch
// with FormatError. WriteCheckpointFile commits via temp-file + rename, so a
// crash mid-save never leaves a torn checkpoint behind.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "persist/serial.hpp"

namespace ultra::persist {

inline constexpr std::uint32_t kCheckpointMagic = 0x504B4355;  // "UCKP" LE.
// Version 2: RunStats::fallback_count joined the serialized partial result
// (core/checkpoint_util.hpp).
// Version 3: MemorySystem and FetchEngine state grew the L1D/L2/icache
// hierarchy models, in-flight hierarchy misses, and queued prefetch fills
// (memory/hierarchy.hpp).
inline constexpr std::uint32_t kCheckpointVersion = 3;

struct CheckpointHeader {
  /// core::ProcessorKind of the core that wrote the blob (stored as the raw
  /// enum value so persist does not depend on core).
  std::uint8_t core_kind = 0;
  /// Cycle boundary the state was captured at: the run restores with this
  /// cycle about to execute.
  std::uint64_t cycle = 0;
  /// Fingerprints of the CoreConfig / Program the blob belongs to; restore
  /// entry points refuse mismatches.
  std::uint64_t config_fingerprint = 0;
  std::uint64_t program_fingerprint = 0;

  friend bool operator==(const CheckpointHeader&,
                         const CheckpointHeader&) = default;
};

struct Checkpoint {
  CheckpointHeader header;
  std::vector<std::uint8_t> state;  // Core-owned layout.
};

[[nodiscard]] std::vector<std::uint8_t> EncodeCheckpoint(
    const Checkpoint& checkpoint);
/// Throws FormatError on bad magic/version/CRC or truncation.
[[nodiscard]] Checkpoint DecodeCheckpoint(std::span<const std::uint8_t> data);

/// Atomic temp-file + rename + fsync commit.
void WriteCheckpointFile(const std::string& path, const Checkpoint& checkpoint);
[[nodiscard]] Checkpoint ReadCheckpointFile(const std::string& path);

/// The capture/restore contract between a caller and a core's Run() loop,
/// attached via CoreConfig::checkpoint. The core consults ShouldSave() at
/// the top of every cycle (before any phase of that cycle executes) and
/// hands captured state to sink; when resume is set, the core loads the
/// blob instead of starting from cycle 0. Single-threaded like the cores.
struct CheckpointControl {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// Periodic capture every save_every cycles (0 = off). Cycle 0 is never
  /// captured — it is the initial state, reproducible from the inputs.
  std::uint64_t save_every = 0;
  /// One-shot capture at this exact cycle (kNever = off).
  std::uint64_t save_at = kNever;
  /// Abandon the run right after a capture (RunResult is partial, like a
  /// cancelled run). SaveCheckpoint uses this to stop at the target cycle.
  bool stop_after_save = false;
  /// Receives every captured checkpoint. Must be set when any save trigger
  /// is armed.
  std::function<void(Checkpoint&&)> sink;
  /// When non-null, Run() restores this state and continues from its cycle.
  /// The pointee must outlive Run(). Callers are responsible for matching
  /// kind/config/program (Processor::RestoreCheckpoint validates).
  const Checkpoint* resume = nullptr;

  /// True when the core should capture at @p cycle. Cycles at or before a
  /// resume point never re-save (the resumed loop re-enters at the saved
  /// cycle; saving it again would duplicate or, with stop_after_save,
  /// immediately abandon the run).
  [[nodiscard]] bool ShouldSave(std::uint64_t cycle) const {
    if (cycle == 0) return false;
    if (resume != nullptr && cycle <= resume->header.cycle) return false;
    if (save_at != kNever && cycle == save_at) return true;
    return save_every != 0 && cycle % save_every == 0;
  }
};

}  // namespace ultra::persist
