// Crash-safe append-only journal: the framing layer under SweepRunner's
// resume support.
//
// A journal is a sequence of CRC-framed records. Appends are durable — each
// record is written with a single write() and fsync'd before Append returns,
// so a record either survives a crash whole or was never committed. The
// reader validates each frame and stops at the first torn or corrupt one,
// discarding the tail: after a SIGKILL mid-append, every record before the
// torn frame is intact and the torn frame itself is ignored.
//
// Record frame (little-endian):
//   u32 magic "UJNL" | u32 record type | u32 payload length |
//   u32 CRC-32 of (type, length, payload) | payload bytes
// Payload semantics belong to the caller (src/runtime/sweep_journal.*
// defines the sweep header/outcome records).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "persist/serial.hpp"

namespace ultra::persist {

inline constexpr std::uint32_t kJournalMagic = 0x4C4E4A55;  // "UJNL" LE.

struct JournalRecord {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Appends durable records to a journal file. Not thread-safe; callers
/// serialize Append (SweepRunner holds a mutex around it).
class JournalWriter {
 public:
  /// Opens @p path for appending, creating it if missing; @p truncate
  /// discards existing contents first (a fresh, non-resumed sweep). Throws
  /// std::runtime_error when the file cannot be opened.
  JournalWriter(const std::string& path, bool truncate);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Frames, writes, and fsyncs one record. Throws std::runtime_error on
  /// I/O failure. A failed append (ENOSPC, I/O error) never leaves a
  /// partial frame behind: the file is truncated back to its pre-append
  /// length before the error propagates, so later appends — possibly from
  /// a retried request after the disk recovered — land after the last
  /// *whole* record instead of after garbage that would orphan them.
  void Append(std::uint32_t type, std::span<const std::uint8_t> payload);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// The result of walking a journal file frame by frame.
struct JournalScan {
  std::vector<JournalRecord> records;  // Every intact record, append order.
  /// Byte offset just past the last intact frame: the length RepairJournal
  /// would truncate the file to.
  std::uint64_t valid_bytes = 0;
  /// Trailing bytes after the last intact frame (a torn append, bit rot,
  /// or garbage written after a crash). 0 for a clean journal.
  std::uint64_t discarded_bytes = 0;
};

/// Reads every intact record of @p path and reports — rather than silently
/// dropping — how many trailing bytes did not form an intact frame. A
/// missing file scans as empty and clean.
[[nodiscard]] JournalScan ScanJournal(const std::string& path);

/// Reads every intact record of @p path, in append order. A missing file
/// yields an empty vector; a torn or corrupt tail is silently discarded
/// (that is the crash contract, not an error). Use ScanJournal when the
/// discarded-byte count matters.
[[nodiscard]] std::vector<JournalRecord> ReadJournal(const std::string& path);

/// Truncates @p path to its last intact frame so a restarted service can
/// keep appending to a journal whose tail was torn by a crash (appending
/// *after* the garbage would orphan every later record, since readers stop
/// at the first bad frame). Returns the number of bytes removed (0 when the
/// journal is clean or missing). Throws std::runtime_error when the
/// truncation itself fails.
std::uint64_t RepairJournal(const std::string& path);

}  // namespace ultra::persist
