// Crash-safe append-only journal: the framing layer under SweepRunner's
// resume support.
//
// A journal is a sequence of CRC-framed records. Appends are durable — each
// record is written with a single write() and fsync'd before Append returns,
// so a record either survives a crash whole or was never committed. The
// reader validates each frame and stops at the first torn or corrupt one,
// discarding the tail: after a SIGKILL mid-append, every record before the
// torn frame is intact and the torn frame itself is ignored.
//
// Record frame (little-endian):
//   u32 magic "UJNL" | u32 record type | u32 payload length |
//   u32 CRC-32 of (type, length, payload) | payload bytes
// Payload semantics belong to the caller (src/runtime/sweep_journal.*
// defines the sweep header/outcome records).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "persist/serial.hpp"

namespace ultra::persist {

inline constexpr std::uint32_t kJournalMagic = 0x4C4E4A55;  // "UJNL" LE.

struct JournalRecord {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Appends durable records to a journal file. Not thread-safe; callers
/// serialize Append (SweepRunner holds a mutex around it).
class JournalWriter {
 public:
  /// Opens @p path for appending, creating it if missing; @p truncate
  /// discards existing contents first (a fresh, non-resumed sweep). Throws
  /// std::runtime_error when the file cannot be opened.
  JournalWriter(const std::string& path, bool truncate);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Frames, writes, and fsyncs one record. Throws std::runtime_error on
  /// I/O failure.
  void Append(std::uint32_t type, std::span<const std::uint8_t> payload);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Reads every intact record of @p path, in append order. A missing file
/// yields an empty vector; a torn or corrupt tail is silently discarded
/// (that is the crash contract, not an error).
[[nodiscard]] std::vector<JournalRecord> ReadJournal(const std::string& path);

}  // namespace ultra::persist
