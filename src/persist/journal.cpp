#include "persist/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ultra::persist {

JournalWriter::JournalWriter(const std::string& path, bool truncate)
    : path_(path) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open journal " + path + ": " +
                             std::strerror(errno));
  }
  // Make the journal's existence itself durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::Append(std::uint32_t type,
                           std::span<const std::uint8_t> payload) {
  // CRC covers (type, length, payload) so a frame whose header or body was
  // torn by a crash fails validation as a unit.
  Encoder crc_input;
  crc_input.U32(type);
  crc_input.U32(static_cast<std::uint32_t>(payload.size()));
  Encoder frame;
  frame.U32(kJournalMagic);
  frame.U32(type);
  frame.U32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> crc_bytes = crc_input.Take();
  crc_bytes.insert(crc_bytes.end(), payload.begin(), payload.end());
  frame.U32(Crc32(crc_bytes));
  std::vector<std::uint8_t> bytes = frame.Take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("cannot append to journal " + path_ + ": " +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("cannot fsync journal " + path_ + ": " +
                             std::strerror(errno));
  }
}

std::vector<JournalRecord> ReadJournal(const std::string& path) {
  std::vector<std::uint8_t> data;
  try {
    data = ReadFileBytes(path);
  } catch (const FormatError&) {
    return {};  // Missing journal = nothing completed yet.
  }

  std::vector<JournalRecord> records;
  std::size_t pos = 0;
  const auto u32_at = [&](std::size_t p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[p + i]) << (8 * i);
    }
    return v;
  };
  while (data.size() - pos >= 16) {
    if (u32_at(pos) != kJournalMagic) break;
    const std::uint32_t type = u32_at(pos + 4);
    const std::uint32_t length = u32_at(pos + 8);
    const std::uint32_t stored_crc = u32_at(pos + 12);
    if (data.size() - pos - 16 < length) break;  // Torn tail.
    Encoder crc_input;
    crc_input.U32(type);
    crc_input.U32(length);
    std::vector<std::uint8_t> crc_bytes = crc_input.Take();
    crc_bytes.insert(crc_bytes.end(), data.begin() + pos + 16,
                     data.begin() + pos + 16 + length);
    if (Crc32(crc_bytes) != stored_crc) break;  // Corrupt tail.
    records.push_back(
        {type, std::vector<std::uint8_t>(data.begin() + pos + 16,
                                         data.begin() + pos + 16 + length)});
    pos += 16 + length;
  }
  return records;
}

}  // namespace ultra::persist
