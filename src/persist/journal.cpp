#include "persist/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "failpoint/io.hpp"

namespace ultra::persist {

JournalWriter::JournalWriter(const std::string& path, bool truncate)
    : path_(path) {
  auto& io = failpoint::ActiveIo();
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = io.Open("journal.open", path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open journal " + path + ": " +
                             std::strerror(errno));
  }
  // Make the journal's existence itself durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    io.Fsync("journal.dirsync", dfd);
    ::close(dfd);
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::Append(std::uint32_t type,
                           std::span<const std::uint8_t> payload) {
  // CRC covers (type, length, payload) so a frame whose header or body was
  // torn by a crash fails validation as a unit.
  Encoder crc_input;
  crc_input.U32(type);
  crc_input.U32(static_cast<std::uint32_t>(payload.size()));
  Encoder frame;
  frame.U32(kJournalMagic);
  frame.U32(type);
  frame.U32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> crc_bytes = crc_input.Take();
  crc_bytes.insert(crc_bytes.end(), payload.begin(), payload.end());
  frame.U32(Crc32(crc_bytes));
  std::vector<std::uint8_t> bytes = frame.Take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  // A failed write() or fsync() (ENOSPC, I/O error) can leave a *partial*
  // frame on disk. Readers stop at the first bad frame, so leaving the torn
  // bytes in place would silently orphan every record appended afterwards.
  // Roll the file back to its pre-append length before reporting failure.
  auto& io = failpoint::ActiveIo();
  const off_t pre_size = ::lseek(fd_, 0, SEEK_END);
  const auto fail = [&](const char* what) {
    const int saved_errno = errno;
    if (pre_size >= 0 &&
        io.Ftruncate("journal.rollback.truncate", fd_, pre_size) == 0) {
      // Make the rollback itself durable (best-effort).
      io.Fsync("journal.rollback.fsync", fd_);
    }
    throw std::runtime_error(std::string(what) + " journal " + path_ + ": " +
                             std::strerror(saved_errno));
  };
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = io.Write("journal.append.write", fd_,
                               bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot append to");
    }
    off += static_cast<std::size_t>(n);
  }
  if (io.Fsync("journal.append.fsync", fd_) != 0) fail("cannot fsync");
}

JournalScan ScanJournal(const std::string& path) {
  JournalScan scan;
  std::vector<std::uint8_t> data;
  try {
    data = ReadFileBytes(path);
  } catch (const FormatError&) {
    return scan;  // Missing journal = nothing completed yet.
  }

  std::size_t pos = 0;
  const auto u32_at = [&](std::size_t p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[p + i]) << (8 * i);
    }
    return v;
  };
  while (data.size() - pos >= 16) {
    if (u32_at(pos) != kJournalMagic) break;
    const std::uint32_t type = u32_at(pos + 4);
    const std::uint32_t length = u32_at(pos + 8);
    const std::uint32_t stored_crc = u32_at(pos + 12);
    if (data.size() - pos - 16 < length) break;  // Torn tail.
    Encoder crc_input;
    crc_input.U32(type);
    crc_input.U32(length);
    std::vector<std::uint8_t> crc_bytes = crc_input.Take();
    crc_bytes.insert(crc_bytes.end(), data.begin() + pos + 16,
                     data.begin() + pos + 16 + length);
    if (Crc32(crc_bytes) != stored_crc) break;  // Corrupt tail.
    scan.records.push_back(
        {type, std::vector<std::uint8_t>(data.begin() + pos + 16,
                                         data.begin() + pos + 16 + length)});
    pos += 16 + length;
  }
  scan.valid_bytes = pos;
  scan.discarded_bytes = data.size() - pos;
  return scan;
}

std::vector<JournalRecord> ReadJournal(const std::string& path) {
  return ScanJournal(path).records;
}

std::uint64_t RepairJournal(const std::string& path) {
  const JournalScan scan = ScanJournal(path);
  if (scan.discarded_bytes == 0) return 0;
  auto& io = failpoint::ActiveIo();
  const int fd = io.Open("journal.repair.open", path.c_str(), O_WRONLY, 0);
  if (fd < 0) {
    throw std::runtime_error("cannot open journal " + path +
                             " for repair: " + std::strerror(errno));
  }
  if (io.Ftruncate("journal.repair.truncate", fd,
                   static_cast<off_t>(scan.valid_bytes)) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    throw std::runtime_error("cannot truncate journal " + path + ": " +
                             std::strerror(saved_errno));
  }
  io.Fsync("journal.repair.fsync", fd);
  ::close(fd);
  return scan.discarded_bytes;
}

}  // namespace ultra::persist
