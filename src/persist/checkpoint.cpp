#include "persist/checkpoint.hpp"

namespace ultra::persist {

std::vector<std::uint8_t> EncodeCheckpoint(const Checkpoint& checkpoint) {
  Encoder e;
  e.U32(kCheckpointMagic);
  e.U32(kCheckpointVersion);
  e.U8(checkpoint.header.core_kind);
  e.U64(checkpoint.header.cycle);
  e.U64(checkpoint.header.config_fingerprint);
  e.U64(checkpoint.header.program_fingerprint);
  e.Bytes(checkpoint.state);
  std::vector<std::uint8_t> out = e.Take();
  const std::uint32_t crc = Crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

Checkpoint DecodeCheckpoint(std::span<const std::uint8_t> data) {
  if (data.size() < 4) throw FormatError("checkpoint truncated");
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(data[data.size() - 4 + i])
                  << (8 * i);
  }
  const auto body = data.first(data.size() - 4);
  if (Crc32(body) != stored_crc) throw FormatError("checkpoint CRC mismatch");
  Decoder d(body);
  if (d.U32() != kCheckpointMagic) throw FormatError("not a checkpoint file");
  const std::uint32_t version = d.U32();
  if (version != kCheckpointVersion) {
    throw FormatError("unsupported checkpoint version " +
                      std::to_string(version));
  }
  Checkpoint ck;
  ck.header.core_kind = d.U8();
  ck.header.cycle = d.U64();
  ck.header.config_fingerprint = d.U64();
  ck.header.program_fingerprint = d.U64();
  ck.state = d.Bytes();
  if (!d.AtEnd()) throw FormatError("trailing bytes after checkpoint");
  return ck;
}

void WriteCheckpointFile(const std::string& path,
                         const Checkpoint& checkpoint) {
  const std::vector<std::uint8_t> bytes = EncodeCheckpoint(checkpoint);
  AtomicWriteFile(path, std::span<const std::uint8_t>(bytes));
}

Checkpoint ReadCheckpointFile(const std::string& path) {
  const std::vector<std::uint8_t> bytes = ReadFileBytes(path);
  return DecodeCheckpoint(bytes);
}

}  // namespace ultra::persist
