// Deterministic failpoint injection for the persist/service I/O stack.
//
// A *failpoint* is a named site inside an I/O routine (e.g.
// "journal.append.write") where a test, a chaos harness, or an operator can
// schedule a failure that the surrounding error-handling code must survive.
// The sites themselves live in failpoint::Io (io.hpp), the injectable seam
// every durability-critical syscall in src/persist and src/service goes
// through; this header is the registry that decides, per site and per hit,
// whether to inject and what.
//
// Design requirements, in order:
//
//  * Deterministic. Schedules are counted (fail on the Nth hit, fail every
//    Kth hit) or drawn from a seeded SplitMix64 stream — the same schedule
//    against the same workload injects at the same operations every run, so
//    a chaos failure is a repro, not an anecdote.
//  * Zero overhead when disabled. The seam's fast path is one relaxed
//    atomic load (failpoint::Enabled()); nothing in the simulator's cycle
//    loops consults the registry at all, and bench_failpoint_overhead gates
//    the compiled-in-but-disabled cost at <= 1% of sim throughput.
//  * Crash-capable. Beyond returning errors, a failpoint can *crash* the
//    process at an exact global I/O-operation index (crash-at-op), in three
//    flavors: _exit(137) for real kill-9-style chaos in scripts, a thrown
//    CrashInjected (deliberately not a std::exception, so no robustness
//    catch block can accidentally swallow a simulated crash) for
//    single-threaded unit tests, and a "silent" mode where the process
//    keeps running but every later seam operation becomes a no-op — the
//    disk image freezes exactly as a crash would leave it, which is what
//    lets tests/chaos_test.cpp enumerate every crash point of a daemon
//    without tearing down threads mid-flight.
//
// Schedules can be armed programmatically (Arm) or from the environment:
//
//   ULTRA_FAILPOINT="journal.append.write=enospc@3;protocol.recv=reset%5"
//   ULTRA_FAILPOINT_CRASH_AT_OP=17        # crash on the 17th seam op
//   ULTRA_FAILPOINT_CRASH_MODE=exit       # exit | throw | silent
//   ULTRA_FAILPOINT_COUNT=1               # enable the seam just to count ops
//   ULTRA_FAILPOINT_REPORT=/tmp/ops.txt   # write op/hit counts at exit
//
// Spec grammar, per site: <kind>@N (Nth hit, once), <kind>%K (every Kth
// hit), <kind>~P[:SEED] (probability P per hit, seeded). Kinds: eio,
// enospc, short (partial transfer, success), torn (partial transfer, then
// EIO — the torn-write case journal rollback exists for), reset
// (ECONNRESET), eof (recv sees EOF), crash. "fsync failure" is spelled
// `eio` on a `.fsync` site. See docs/robustness.md for the site catalog.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace ultra::failpoint {

enum class ErrorKind : std::uint8_t {
  kNone = 0,
  kEio,        // -1 / EIO
  kEnospc,     // -1 / ENOSPC
  kShort,      // transfer half the bytes, return success (caller loops)
  kTornWrite,  // transfer half the bytes for real, then -1 / EIO
  kConnReset,  // -1 / ECONNRESET
  kEof,        // recv/read returns 0 (peer closed / truncated file)
  kCrash,      // crash per the registry's CrashMode
};

/// How an injected crash manifests. kExit is the honest one (the process
/// dies mid-syscall, like SIGKILL); kThrow and kSilent are in-process
/// simulations for tests that must keep running to inspect the wreckage.
enum class CrashMode : std::uint8_t {
  kThrow,   // throw CrashInjected at the crash op
  kSilent,  // keep running; all later seam ops are no-ops (disk is frozen)
  kExit,    // ::_exit(137) — for subprocess chaos scripts
};

/// Thrown by CrashMode::kThrow. Deliberately NOT derived from
/// std::exception: the robustness code under test catches std::exception
/// liberally, and a simulated crash that could be "handled" would defeat
/// the simulation. Only the chaos harness itself catches this.
struct CrashInjected {
  std::string site;
  std::uint64_t op = 0;
};

/// When to inject at one site. Exactly one of nth / every / probability is
/// normally set; if several are set, any matching trigger fires.
struct Schedule {
  ErrorKind kind = ErrorKind::kEio;
  std::uint64_t nth = 0;         // Fire on exactly the Nth hit (1-based).
  std::uint64_t every = 0;       // Fire when hit_count % every == 0.
  double probability = 0.0;      // Fire with this per-hit probability.
  std::uint64_t seed = 1;        // SplitMix64 seed for `probability`.
  std::uint64_t max_fires = ~0ull;  // Stop injecting after this many fires.
};

/// The registry's verdict for one seam operation.
struct Decision {
  ErrorKind kind = ErrorKind::kNone;  // kNone = perform the op for real.
  bool crash = false;                 // Crash (per mode) at this op.
  std::uint64_t op = 0;               // Global 1-based index of this op.
};

/// Process-global failpoint state. All methods are thread-safe; the
/// hot-path check is the free function Enabled() below.
class Registry {
 public:
  static Registry& Instance();

  /// Arms @p schedule at @p site (replacing any previous schedule) and
  /// enables the seam.
  void Arm(const std::string& site, Schedule schedule);

  /// Arms from a spec string ("site=kind@N;site2=kind%K..."). Returns
  /// false (and fills *error if given) on a malformed spec, leaving
  /// already-parsed entries armed.
  bool ArmSpec(const std::string& spec, std::string* error = nullptr);

  /// Arms a crash at the @p op-th seam operation (1-based, counted across
  /// every site) and enables the seam.
  void ArmCrashAtOp(std::uint64_t op, CrashMode mode);

  /// Enables the seam with no schedules: every operation is counted and
  /// performed for real. This is how a chaos harness measures N, the
  /// number of crash candidates, before enumerating crash-at-op = 1..N.
  void EnableCounting();

  void Disarm(const std::string& site);

  /// Disarms everything, clears all counters and the crashed flag, and
  /// disables the seam. Tests call this in their teardown guard.
  void Reset();

  /// Consulted by failpoint::FaultyIo for every seam operation: bumps the
  /// global op counter and the site hit counter, then applies (in order)
  /// crash-at-op, then the site schedule.
  Decision OnOp(const char* site);

  /// Latches the crashed flag. Called by the seam when a crash decision
  /// fires in kThrow or kSilent mode (kExit never returns to call it).
  void MarkCrashed() { crashed_.store(true, std::memory_order_release); }

  /// True once a crash fired in kThrow or kSilent mode. While crashed, the
  /// seam stops counting and every operation is a no-op: writes claim
  /// success without touching the file, reads and opens fail with EIO —
  /// the on-disk state is frozen at the crash point, exactly as a real
  /// crash would leave it for the next process to recover.
  [[nodiscard]] bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] CrashMode crash_mode() const {
    return crash_mode_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t ops() const {
    return op_count_.load(std::memory_order_acquire);
  }
  /// Times @p site was reached (whether or not anything was injected).
  [[nodiscard]] std::uint64_t hits(const std::string& site) const;
  /// Times an error or crash was actually injected at @p site. Tests use
  /// this to *prove* an error branch executed rather than assume it.
  [[nodiscard]] std::uint64_t fires(const std::string& site) const;
  [[nodiscard]] std::uint64_t total_fires() const;

  /// "ops N" followed by one "site <name> hits <h> fires <f>" line per
  /// site reached, sorted by name. Written at exit to
  /// $ULTRA_FAILPOINT_REPORT by the env hook; chaos_smoke.sh reads it.
  void WriteReport(std::ostream& os) const;

 private:
  Registry();

  struct SiteState {
    Schedule schedule;
    bool armed = false;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::uint64_t rng = 0;  // SplitMix64 state, seeded on Arm.
  };

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  std::atomic<std::uint64_t> op_count_{0};
  std::uint64_t total_fires_ = 0;
  std::uint64_t crash_at_op_ = 0;  // 0 = no crash-at-op armed.
  std::atomic<CrashMode> crash_mode_{CrashMode::kThrow};
  std::atomic<bool> crashed_{false};
};

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The seam's fast path: one relaxed load. False until something arms the
/// registry (programmatically or via ULTRA_FAILPOINT* environment), after
/// which I/O routes through FaultyIo.
inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Parses one schedule spec ("enospc@3", "reset%5", "short~0.25:42",
/// "crash@1"). Returns false on malformed input.
bool ParseScheduleSpec(const std::string& spec, Schedule* out);

}  // namespace ultra::failpoint
