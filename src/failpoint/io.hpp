// The injectable I/O seam the failpoint registry acts through.
//
// Every durability-critical syscall in src/persist and src/service goes
// through ActiveIo() with a site name ("journal.append.write",
// "atomic.rename", "protocol.recv", ...). With the registry disabled — the
// production state — ActiveIo() costs one relaxed atomic load and returns
// the passthrough RealIo. With it enabled, FaultyIo consults
// Registry::OnOp(site) per call and injects the scheduled error, torn
// transfer, or crash; after a simulated crash (CrashMode::kThrow/kSilent)
// every later seam call becomes a no-op so the on-disk state stays frozen
// exactly as the crash left it.
//
// All methods mirror POSIX: return -1 (or 0 for eof) and set errno on
// failure; callers keep their existing errno-based error handling.
#pragma once

#include <sys/types.h>

#include <cstddef>

#include "failpoint/failpoint.hpp"

namespace ultra::failpoint {

/// Abstract seam over the POSIX calls the persist/service stack depends on
/// for durability. Each method takes the failpoint site name first.
class Io {
 public:
  virtual ~Io() = default;

  virtual int Open(const char* site, const char* path, int flags,
                   unsigned int mode) = 0;
  virtual ssize_t Read(const char* site, int fd, void* buf,
                       std::size_t count) = 0;
  virtual ssize_t Write(const char* site, int fd, const void* buf,
                        std::size_t count) = 0;
  virtual int Fsync(const char* site, int fd) = 0;
  virtual int Ftruncate(const char* site, int fd, off_t length) = 0;
  virtual int Rename(const char* site, const char* old_path,
                     const char* new_path) = 0;
  virtual int Unlink(const char* site, const char* path) = 0;
  virtual ssize_t Send(const char* site, int fd, const void* buf,
                       std::size_t len, int flags) = 0;
  virtual ssize_t Recv(const char* site, int fd, void* buf, std::size_t len,
                       int flags) = 0;
};

/// Straight passthrough to the syscalls (with EINTR left to the callers,
/// exactly as before the seam existed).
Io& RealIo();

/// The injecting implementation; consults Registry::OnOp per call.
Io& FaultyIo();

/// What callers use: RealIo() until something arms the registry.
inline Io& ActiveIo() { return Enabled() ? FaultyIo() : RealIo(); }

}  // namespace ultra::failpoint
