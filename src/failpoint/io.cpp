#include "failpoint/io.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace ultra::failpoint {

namespace {

class RealIoImpl final : public Io {
 public:
  int Open(const char*, const char* path, int flags,
           unsigned int mode) override {
    return ::open(path, flags, mode);
  }
  ssize_t Read(const char*, int fd, void* buf, std::size_t count) override {
    return ::read(fd, buf, count);
  }
  ssize_t Write(const char*, int fd, const void* buf,
                std::size_t count) override {
    return ::write(fd, buf, count);
  }
  int Fsync(const char*, int fd) override { return ::fsync(fd); }
  int Ftruncate(const char*, int fd, off_t length) override {
    return ::ftruncate(fd, length);
  }
  int Rename(const char*, const char* old_path,
             const char* new_path) override {
    return ::rename(old_path, new_path);
  }
  int Unlink(const char*, const char* path) override {
    return ::unlink(path);
  }
  ssize_t Send(const char*, int fd, const void* buf, std::size_t len,
               int flags) override {
    return ::send(fd, buf, len, flags);
  }
  ssize_t Recv(const char*, int fd, void* buf, std::size_t len,
               int flags) override {
    return ::recv(fd, buf, len, flags);
  }
};

class FaultyIoImpl final : public Io {
 public:
  int Open(const char* site, const char* path, int flags,
           unsigned int mode) override {
    Decision d;
    if (!Check(site, &d)) {
      errno = EIO;  // Post-crash: the "machine" is gone; nothing opens.
      return -1;
    }
    if (d.crash) Crash(site, d);  // kSilent falls through to post-crash.
    if (crashed()) {
      errno = EIO;
      return -1;
    }
    if (d.kind != ErrorKind::kNone) {
      errno = ErrnoFor(d.kind);
      return -1;
    }
    return ::open(path, flags, mode);
  }

  ssize_t Read(const char* site, int fd, void* buf,
               std::size_t count) override {
    Decision d;
    if (!Check(site, &d)) {
      errno = EIO;
      return -1;
    }
    if (d.crash) Crash(site, d);
    if (crashed()) {
      errno = EIO;
      return -1;
    }
    switch (d.kind) {
      case ErrorKind::kNone:
        return ::read(fd, buf, count);
      case ErrorKind::kEof:
        return 0;
      case ErrorKind::kShort: {
        const std::size_t n = count > 1 ? count / 2 : count;
        return ::read(fd, buf, n);
      }
      default:
        errno = ErrnoFor(d.kind);
        return -1;
    }
  }

  ssize_t Write(const char* site, int fd, const void* buf,
                std::size_t count) override {
    Decision d;
    if (!Check(site, &d)) return static_cast<ssize_t>(count);  // No-op "ok".
    if (d.crash) {
      // A crash mid-write leaves a torn prefix on disk — write it for real
      // before dying so recovery faces what a power cut actually produces.
      TornPrefixWrite(fd, buf, count);
      Crash(site, d);
      return static_cast<ssize_t>(count);  // kSilent: claim success.
    }
    switch (d.kind) {
      case ErrorKind::kNone:
        return ::write(fd, buf, count);
      case ErrorKind::kShort: {
        const std::size_t n = count > 1 ? count / 2 : count;
        return ::write(fd, buf, n);
      }
      case ErrorKind::kTornWrite:
        TornPrefixWrite(fd, buf, count);
        errno = EIO;
        return -1;
      default:
        errno = ErrnoFor(d.kind);
        return -1;
    }
  }

  int Fsync(const char* site, int fd) override {
    return IntOp(site, [&] { return ::fsync(fd); });
  }
  int Ftruncate(const char* site, int fd, off_t length) override {
    return IntOp(site, [&] { return ::ftruncate(fd, length); });
  }
  int Rename(const char* site, const char* old_path,
             const char* new_path) override {
    return IntOp(site, [&] { return ::rename(old_path, new_path); });
  }
  int Unlink(const char* site, const char* path) override {
    return IntOp(site, [&] { return ::unlink(path); });
  }

  ssize_t Send(const char* site, int fd, const void* buf, std::size_t len,
               int flags) override {
    Decision d;
    if (!Check(site, &d)) return static_cast<ssize_t>(len);  // No-op "ok".
    if (d.crash) {
      TornPrefixSend(fd, buf, len, flags);
      Crash(site, d);
      return static_cast<ssize_t>(len);
    }
    switch (d.kind) {
      case ErrorKind::kNone:
        return ::send(fd, buf, len, flags);
      case ErrorKind::kShort: {
        const std::size_t n = len > 1 ? len / 2 : len;
        return ::send(fd, buf, n, flags);
      }
      case ErrorKind::kTornWrite:
        TornPrefixSend(fd, buf, len, flags);
        errno = ECONNRESET;
        return -1;
      default:
        errno = ErrnoFor(d.kind);
        return -1;
    }
  }

  ssize_t Recv(const char* site, int fd, void* buf, std::size_t len,
               int flags) override {
    Decision d;
    if (!Check(site, &d)) {
      errno = EIO;
      return -1;
    }
    if (d.crash) Crash(site, d);
    if (crashed()) {
      errno = EIO;
      return -1;
    }
    switch (d.kind) {
      case ErrorKind::kNone:
        return ::recv(fd, buf, len, flags);
      case ErrorKind::kEof:
        return 0;
      case ErrorKind::kShort: {
        const std::size_t n = len > 1 ? len / 2 : len;
        return ::recv(fd, buf, n, flags);
      }
      default:
        errno = ErrnoFor(d.kind);
        return -1;
    }
  }

 private:
  static bool crashed() { return Registry::Instance().crashed(); }

  /// Consults the registry unless the process already "crashed" (kThrow /
  /// kSilent), in which case ops are frozen: returns false and the caller
  /// applies post-crash semantics (writes no-op "ok", reads fail EIO).
  static bool Check(const char* site, Decision* d) {
    Registry& reg = Registry::Instance();
    if (reg.crashed()) return false;
    *d = reg.OnOp(site);
    return true;
  }

  /// Carries out a crash decision. kExit never returns; kThrow throws
  /// CrashInjected; kSilent latches crashed() and returns, after which the
  /// caller serves post-crash semantics for this and every later op.
  [[noreturn]] static void CrashExit() { ::_exit(137); }
  static void Crash(const char* site, const Decision& d) {
    Registry& reg = Registry::Instance();
    switch (reg.crash_mode()) {
      case CrashMode::kExit:
        CrashExit();
      case CrashMode::kThrow:
        reg.MarkCrashed();
        throw CrashInjected{site, d.op};
      case CrashMode::kSilent:
        reg.MarkCrashed();
        return;
    }
  }

  static void TornPrefixWrite(int fd, const void* buf, std::size_t count) {
    const std::size_t torn = count / 2;
    if (torn > 0) {
      [[maybe_unused]] ssize_t rc = ::write(fd, buf, torn);
    }
  }
  static void TornPrefixSend(int fd, const void* buf, std::size_t len,
                             int flags) {
    const std::size_t torn = len / 2;
    if (torn > 0) {
      [[maybe_unused]] ssize_t rc = ::send(fd, buf, torn, flags);
    }
  }

  static int ErrnoFor(ErrorKind kind) {
    switch (kind) {
      case ErrorKind::kEnospc:
        return ENOSPC;
      case ErrorKind::kConnReset:
        return ECONNRESET;
      default:
        return EIO;
    }
  }

  template <typename Fn>
  static int IntOp(const char* site, Fn&& real) {
    Decision d;
    if (!Check(site, &d)) return 0;  // Post-crash: no-op, claim success.
    if (d.crash) {
      Crash(site, d);
      return 0;  // kSilent: the op never reached disk, but "succeeded".
    }
    if (d.kind != ErrorKind::kNone) {
      errno = ErrnoFor(d.kind);
      return -1;
    }
    return real();
  }
};

}  // namespace

Io& RealIo() {
  static RealIoImpl io;
  return io;
}

Io& FaultyIo() {
  static FaultyIoImpl io;
  return io;
}

}  // namespace ultra::failpoint
