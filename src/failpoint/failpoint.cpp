#include "failpoint/failpoint.hpp"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

namespace ultra::failpoint {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// SplitMix64: the same portable generator fault::FaultPlan::Random uses —
/// identical probability schedules on every platform.
std::uint64_t NextRng(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform [0, 1) from one SplitMix64 draw (53-bit mantissa).
double NextUniform(std::uint64_t& state) {
  return static_cast<double>(NextRng(state) >> 11) * 0x1.0p-53;
}

bool ParseKind(const std::string& name, ErrorKind* out) {
  if (name == "eio") *out = ErrorKind::kEio;
  else if (name == "enospc") *out = ErrorKind::kEnospc;
  else if (name == "short") *out = ErrorKind::kShort;
  else if (name == "torn") *out = ErrorKind::kTornWrite;
  else if (name == "reset") *out = ErrorKind::kConnReset;
  else if (name == "eof") *out = ErrorKind::kEof;
  else if (name == "crash") *out = ErrorKind::kCrash;
  else return false;
  return true;
}

std::string g_report_path;  // Set once at startup from the environment.

void WriteReportAtExit() {
  if (g_report_path.empty()) return;
  std::ofstream out(g_report_path);
  if (out) Registry::Instance().WriteReport(out);
}

}  // namespace

bool ParseScheduleSpec(const std::string& spec, Schedule* out) {
  const std::size_t sep = spec.find_first_of("@%~");
  if (sep == std::string::npos || sep == 0 || sep + 1 >= spec.size()) {
    return false;
  }
  Schedule s;
  if (!ParseKind(spec.substr(0, sep), &s.kind)) return false;
  const std::string arg = spec.substr(sep + 1);
  char* end = nullptr;
  errno = 0;
  switch (spec[sep]) {
    case '@': {
      s.nth = std::strtoull(arg.c_str(), &end, 10);
      if (errno != 0 || end == arg.c_str() || *end != '\0' || s.nth == 0) {
        return false;
      }
      s.max_fires = 1;
      break;
    }
    case '%': {
      s.every = std::strtoull(arg.c_str(), &end, 10);
      if (errno != 0 || end == arg.c_str() || *end != '\0' || s.every == 0) {
        return false;
      }
      break;
    }
    case '~': {
      s.probability = std::strtod(arg.c_str(), &end);
      if (errno != 0 || end == arg.c_str() ||
          !(s.probability > 0.0 && s.probability <= 1.0)) {
        return false;
      }
      if (*end == ':') {
        char* seed_end = nullptr;
        s.seed = std::strtoull(end + 1, &seed_end, 10);
        if (seed_end == end + 1 || *seed_end != '\0') return false;
      } else if (*end != '\0') {
        return false;
      }
      break;
    }
    default:
      return false;
  }
  *out = s;
  return true;
}

Registry& Registry::Instance() {
  static Registry* instance = new Registry();  // Leaked: outlives atexit.
  return *instance;
}

namespace {

/// Force-constructs the registry at program start when any env knob is set.
/// The hot-path Enabled() check is a bare atomic load and never constructs
/// the registry on its own, so without this a process that arms nothing
/// programmatically would silently ignore the environment.
const bool g_env_armed = [] {
  for (const char* var :
       {"ULTRA_FAILPOINT", "ULTRA_FAILPOINT_CRASH_AT_OP",
        "ULTRA_FAILPOINT_COUNT", "ULTRA_FAILPOINT_REPORT"}) {
    const char* value = std::getenv(var);
    if (value != nullptr && *value != '\0') {
      (void)Registry::Instance();
      return true;
    }
  }
  return false;
}();

}  // namespace

Registry::Registry() {
  // Environment arming happens exactly once, here, so subprocess harnesses
  // (chaos_smoke.sh) can inject without recompiling or touching flags.
  const char* spec = std::getenv("ULTRA_FAILPOINT");
  if (spec != nullptr && *spec != '\0') {
    std::string error;
    if (!ArmSpec(spec, &error)) {
      std::fprintf(stderr, "failpoint: bad ULTRA_FAILPOINT: %s\n",
                   error.c_str());
    }
  }
  const char* crash_at = std::getenv("ULTRA_FAILPOINT_CRASH_AT_OP");
  if (crash_at != nullptr && *crash_at != '\0') {
    const std::uint64_t op = std::strtoull(crash_at, nullptr, 10);
    CrashMode mode = CrashMode::kExit;  // Env users are subprocess scripts.
    const char* mode_str = std::getenv("ULTRA_FAILPOINT_CRASH_MODE");
    if (mode_str != nullptr) {
      if (std::strcmp(mode_str, "throw") == 0) mode = CrashMode::kThrow;
      else if (std::strcmp(mode_str, "silent") == 0) mode = CrashMode::kSilent;
      else if (std::strcmp(mode_str, "exit") != 0) {
        std::fprintf(stderr, "failpoint: bad ULTRA_FAILPOINT_CRASH_MODE %s\n",
                     mode_str);
      }
    }
    if (op > 0) ArmCrashAtOp(op, mode);
  }
  const char* count = std::getenv("ULTRA_FAILPOINT_COUNT");
  if (count != nullptr && *count != '\0' && std::strcmp(count, "0") != 0) {
    EnableCounting();
  }
  const char* report = std::getenv("ULTRA_FAILPOINT_REPORT");
  if (report != nullptr && *report != '\0') {
    g_report_path = report;
    EnableCounting();  // A report implies the seam must count.
    std::atexit(WriteReportAtExit);
  }
}

void Registry::Arm(const std::string& site, Schedule schedule) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    SiteState& state = sites_[site];
    state.schedule = schedule;
    state.armed = true;
    state.rng = schedule.seed;
    state.fires = 0;
    // hits deliberately survive re-arming: "@N" counts from first contact.
  }
  detail::g_enabled.store(true, std::memory_order_release);
}

bool Registry::ArmSpec(const std::string& spec, std::string* error) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) *error = "missing '=' in '" + entry + "'";
      return false;
    }
    Schedule s;
    if (!ParseScheduleSpec(entry.substr(eq + 1), &s)) {
      if (error != nullptr) *error = "bad schedule in '" + entry + "'";
      return false;
    }
    Arm(entry.substr(0, eq), s);
  }
  return true;
}

void Registry::ArmCrashAtOp(std::uint64_t op, CrashMode mode) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    crash_at_op_ = op;
  }
  crash_mode_.store(mode, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
}

void Registry::EnableCounting() {
  detail::g_enabled.store(true, std::memory_order_release);
}

void Registry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  sites_.clear();
  op_count_.store(0, std::memory_order_release);
  total_fires_ = 0;
  crash_at_op_ = 0;
  crashed_.store(false, std::memory_order_release);
  detail::g_enabled.store(false, std::memory_order_release);
}

Decision Registry::OnOp(const char* site) {
  Decision decision;
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t op =
      op_count_.fetch_add(1, std::memory_order_acq_rel) + 1;
  decision.op = op;
  SiteState& state = sites_[site];
  ++state.hits;

  if (crash_at_op_ != 0 && op == crash_at_op_) {
    decision.crash = true;
    ++state.fires;
    ++total_fires_;
    return decision;
  }
  if (!state.armed) return decision;

  const Schedule& s = state.schedule;
  bool fire = false;
  if (s.nth != 0 && state.hits == s.nth) fire = true;
  if (!fire && s.every != 0 && state.hits % s.every == 0) fire = true;
  if (!fire && s.probability > 0.0 &&
      NextUniform(state.rng) < s.probability) {
    fire = true;
  }
  if (!fire || state.fires >= s.max_fires) return decision;

  ++state.fires;
  ++total_fires_;
  if (s.kind == ErrorKind::kCrash) {
    decision.crash = true;
  } else {
    decision.kind = s.kind;
  }
  return decision;
}

std::uint64_t Registry::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t Registry::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::uint64_t Registry::total_fires() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_fires_;
}

void Registry::WriteReport(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "ops " << op_count_.load(std::memory_order_acquire) << "\n";
  for (const auto& [name, state] : sites_) {
    if (state.hits == 0 && !state.armed) continue;
    os << "site " << name << " hits " << state.hits << " fires "
       << state.fires << "\n";
  }
}

}  // namespace ultra::failpoint
