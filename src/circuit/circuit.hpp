// Umbrella header for the circuit substrate.
#pragma once

#include "circuit/cspp.hpp"    // IWYU pragma: export
#include "circuit/fast.hpp"    // IWYU pragma: export
#include "circuit/ops.hpp"     // IWYU pragma: export
#include "circuit/signal.hpp"  // IWYU pragma: export
