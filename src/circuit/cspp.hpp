// Segmented parallel-prefix circuits, linear and logarithmic.
//
// These are the paper's two building blocks:
//
//  * A ring of multiplexers (Figure 1) -- the linear-gate-delay cyclic
//    segmented prefix. Output i is the fold, under an associative operator,
//    of the contributions of the stations preceding i, going back (cyclically)
//    to and including the nearest station whose segment bit is high.
//
//  * A cyclic segmented parallel-prefix (CSPP) tree (Figures 4 and 5,
//    following Henry & Kuszmaul, Ultrascalar Memo 1) -- the same function in
//    Theta(log n) gate delay, built from an up-sweep that folds intervals and
//    a down-sweep that distributes prefixes, with the top of the tree tied
//    around to make the circuit cyclic.
//
// Both carry Signal<T> values so that evaluating a circuit also measures its
// critical-path gate depth. Both require at least one segment bit to be set
// (in the processors the oldest station always sets it); this is asserted.
//
// The noncyclic variant (SppEvaluate) takes an initial value that acts as a
// virtual segment station before position 0 -- exactly the role the register
// file plays at the bottom of an Ultrascalar II column (Figure 7).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "circuit/ops.hpp"
#include "circuit/signal.hpp"

namespace ultra::circuit {

/// Reference (specification) implementation: walks backward from each
/// position to the nearest segment. O(n^2) worst case; used to cross-check
/// the two circuit implementations in tests.
template <typename T, typename Op>
std::vector<T> CsppReference(std::span<const T> inputs,
                             std::span<const std::uint8_t> segments, Op op) {
  const std::size_t n = inputs.size();
  assert(segments.size() == n);
  std::vector<T> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Find the nearest preceding segment position j (cyclically).
    std::size_t j = (i + n - 1) % n;
    std::size_t steps = 1;
    while (!segments[j] && steps < n) {
      j = (j + n - 1) % n;
      ++steps;
    }
    assert(segments[j] && "CSPP requires at least one segment bit");
    // Left-associative fold of x_j .. x_{i-1}.
    T acc = inputs[j];
    for (std::size_t k = (j + 1) % n; k != i; k = (k + 1) % n) {
      acc = op(acc, inputs[k]);
    }
    out[i] = acc;
  }
  return out;
}

/// The Figure 1 ring of multiplexers. Linear gate delay: output depth grows
/// with the distance from the nearest segment station.
template <typename T, typename Op>
std::vector<Signal<T>> CsppRingEvaluate(std::span<const Signal<T>> inputs,
                                        std::span<const Signal<bool>> segments,
                                        Op op = Op{}) {
  const std::size_t n = inputs.size();
  assert(segments.size() == n);
  std::vector<Signal<T>> out(n);
  // Find a segment station to start the combinational settling from.
  std::size_t start = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (segments[i].value) start = i;
  }
  assert(start < n && "CSPP ring requires at least one segment bit");

  // Walk the ring once. "carry" is the value on the wire leaving station i,
  // i.e. the fold of contributions back to the nearest segment, inclusive.
  Signal<T> carry;  // Valid after the first (segment) station.
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (start + step) % n;
    Signal<T> next;
    if (segments[i].value) {
      next.value = inputs[i].value;
      next.depth =
          MaxDepth({inputs[i].depth, segments[i].depth}) + Op::kGateCost;
    } else {
      next.value = op(carry.value, inputs[i].value);
      next.depth = MaxDepth({carry.depth, inputs[i].depth,
                             segments[i].depth}) +
                   Op::kGateCost;
    }
    out[(i + 1) % n] = next;
    carry = next;
  }
  return out;
}

namespace detail {

/// One node of the prefix tree: the segmented fold of its interval.
template <typename T>
struct UpNode {
  std::size_t lo = 0, hi = 0;   // Interval [lo, hi).
  int left = -1, right = -1;    // Child node indices (-1 for leaves).
  Signal<T> value;              // Fold back to the nearest segment inside.
  Signal<bool> seg;             // Whether the interval contains a segment.
};

template <typename T, typename Op>
int BuildUp(std::vector<UpNode<T>>& nodes, std::span<const Signal<T>> inputs,
            std::span<const Signal<bool>> segments, std::size_t lo,
            std::size_t hi, Op op) {
  UpNode<T> node;
  node.lo = lo;
  node.hi = hi;
  if (hi - lo == 1) {
    node.value = inputs[lo];
    node.seg = segments[lo];
    nodes.push_back(node);
    return static_cast<int>(nodes.size() - 1);
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const int l = BuildUp(nodes, inputs, segments, lo, mid, op);
  const int r = BuildUp(nodes, inputs, segments, mid, hi, op);
  node.left = l;
  node.right = r;
  const auto& ln = nodes[static_cast<std::size_t>(l)];
  const auto& rn = nodes[static_cast<std::size_t>(r)];
  // If the right interval contains a segment, the fold restarts there and the
  // left half is invisible; otherwise the fold crosses the boundary.
  if (rn.seg.value) {
    node.value.value = rn.value.value;
  } else {
    node.value.value = op(ln.value.value, rn.value.value);
  }
  node.value.depth = MaxDepth({ln.value.depth, rn.value.depth,
                               rn.seg.depth}) +
                     Op::kGateCost + kMuxCost;
  node.seg.value = ln.seg.value || rn.seg.value;
  node.seg.depth = MaxDepth({ln.seg.depth, rn.seg.depth}) + kOrCost;
  nodes.push_back(node);
  return static_cast<int>(nodes.size() - 1);
}

template <typename T, typename Op>
void SweepDown(const std::vector<UpNode<T>>& nodes, int idx,
               const Signal<T>& incoming, std::vector<Signal<T>>& out, Op op) {
  const auto& node = nodes[static_cast<std::size_t>(idx)];
  if (node.left < 0) {
    out[node.lo] = incoming;
    return;
  }
  const auto& ln = nodes[static_cast<std::size_t>(node.left)];
  // Left child sees what the parent sees; right child sees the fold through
  // the left sibling (restarted at a segment if the left half has one).
  SweepDown(nodes, node.left, incoming, out, op);
  Signal<T> right_in;
  if (ln.seg.value) {
    right_in.value = ln.value.value;
  } else {
    right_in.value = op(incoming.value, ln.value.value);
  }
  right_in.depth = MaxDepth({incoming.depth, ln.value.depth, ln.seg.depth}) +
                   Op::kGateCost + kMuxCost;
  SweepDown(nodes, node.right, right_in, out, op);
}

}  // namespace detail

/// The CSPP tree (Figures 4/5): same function as CsppRingEvaluate in
/// Theta(log n) gate delay. The data lines at the top of the tree are tied
/// together (the root's interval fold wraps around to become the prefix of
/// the earliest stations), making the circuit cyclic.
template <typename T, typename Op>
std::vector<Signal<T>> CsppTreeEvaluate(std::span<const Signal<T>> inputs,
                                        std::span<const Signal<bool>> segments,
                                        Op op = Op{}) {
  const std::size_t n = inputs.size();
  assert(segments.size() == n);
  assert(n >= 1);
  std::vector<detail::UpNode<T>> nodes;
  nodes.reserve(2 * n);
  const int root =
      detail::BuildUp(nodes, inputs, segments, 0, n, op);
  const auto& rn = nodes[static_cast<std::size_t>(root)];
  assert(rn.seg.value && "CSPP tree requires at least one segment bit");
  // Tie the top of the tree around: the whole-ring fold (which stops at the
  // last segment) is what the earliest stations see as their prefix.
  Signal<T> wrap;
  wrap.value = rn.value.value;
  wrap.depth = rn.value.depth + kBufferCost;
  std::vector<Signal<T>> out(n);
  detail::SweepDown(nodes, root, wrap, out, op);
  return out;
}

/// Noncyclic segmented parallel prefix over a chain (linear gate delay).
/// @p initial acts as a virtual segment station before position 0.
template <typename T, typename Op>
std::vector<Signal<T>> SppChainEvaluate(const Signal<T>& initial,
                                        std::span<const Signal<T>> inputs,
                                        std::span<const Signal<bool>> segments,
                                        Op op = Op{}) {
  const std::size_t n = inputs.size();
  assert(segments.size() == n);
  std::vector<Signal<T>> out(n);
  Signal<T> carry = initial;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = carry;
    Signal<T> next;
    if (segments[i].value) {
      next.value = inputs[i].value;
    } else {
      next.value = op(carry.value, inputs[i].value);
    }
    next.depth = MaxDepth({carry.depth, inputs[i].depth, segments[i].depth}) +
                 Op::kGateCost;
    carry = next;
  }
  return out;
}

/// Noncyclic segmented parallel prefix as a tree (logarithmic gate delay).
/// Same function as SppChainEvaluate.
template <typename T, typename Op>
std::vector<Signal<T>> SppTreeEvaluate(const Signal<T>& initial,
                                       std::span<const Signal<T>> inputs,
                                       std::span<const Signal<bool>> segments,
                                       Op op = Op{}) {
  const std::size_t n = inputs.size();
  assert(segments.size() == n);
  if (n == 0) return {};
  std::vector<detail::UpNode<T>> nodes;
  nodes.reserve(2 * n);
  const int root = detail::BuildUp(nodes, inputs, segments, 0, n, op);
  std::vector<Signal<T>> out(n);
  detail::SweepDown(nodes, root, initial, out, op);
  return out;
}

/// Reference for the noncyclic variant.
template <typename T, typename Op>
std::vector<T> SppReference(const T& initial, std::span<const T> inputs,
                            std::span<const std::uint8_t> segments, Op op) {
  const std::size_t n = inputs.size();
  std::vector<T> out(n);
  T carry = initial;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = carry;
    carry = segments[i] ? inputs[i] : op(carry, inputs[i]);
  }
  return out;
}

}  // namespace ultra::circuit
