// Depth-tracked signals.
//
// Every combinational value in the circuit substrate carries the gate depth
// at which it stabilizes. Gates propagate depth as max(inputs) + cost, so
// evaluating a circuit yields both its logical outputs and its critical-path
// gate delay -- the quantity the paper's gate-delay results are about.
#pragma once

#include <algorithm>
#include <initializer_list>

namespace ultra::circuit {

/// Gate-cost constants (in "gate delays", the paper's unit). A 2-input
/// mux / AND / OR costs one gate delay; a buffer in a fan-out tree costs one.
inline constexpr int kMuxCost = 1;
inline constexpr int kAndCost = 1;
inline constexpr int kOrCost = 1;
inline constexpr int kBufferCost = 1;

/// A logical value together with the gate depth at which it is stable.
template <typename T>
struct Signal {
  T value{};
  int depth = 0;

  friend bool operator==(const Signal&, const Signal&) = default;
};

/// Depth of the latest-arriving input.
inline int MaxDepth(std::initializer_list<int> depths) {
  int m = 0;
  for (int d : depths) m = std::max(m, d);
  return m;
}

/// Ceiling of log2 for sizes >= 1 (log2 of 1 is 0).
constexpr int CeilLog2(long long n) {
  int bits = 0;
  long long v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// Gate depth of a balanced tree of 2-input gates reducing @p n inputs.
constexpr int ReductionDepth(long long n) { return n <= 1 ? 0 : CeilLog2(n); }

/// Gate depth added by a buffer tree fanning one signal out to @p n sinks.
/// (The paper's mesh-of-trees conversion, Section 4.)
constexpr int FanoutDepth(long long n) { return n <= 1 ? 0 : CeilLog2(n); }

/// Gate depth of an equality comparator over @p bits bits: one XNOR level
/// plus an AND-reduction tree. The paper quotes O(log log L) for comparing
/// register numbers of log2(L) bits.
constexpr int ComparatorDepth(int bits) { return 1 + ReductionDepth(bits); }

}  // namespace ultra::circuit
