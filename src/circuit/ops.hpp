// Associative operators used by the paper's prefix circuits.
//
// Section 2: the register-propagation CSPP uses "the associative operator
// (a (x) b = a) [which] simply passes earlier values"; the three sequencing
// CSPPs of Figure 5 use "the 1-bit-wide associative operator a (x) b = a AND b".
#pragma once

#include <algorithm>

#include "circuit/signal.hpp"

namespace ultra::circuit {

/// a (x) b = a. Passes the earlier (left) value: folding a run of stations
/// back to the nearest segment yields the segment station's value, i.e. the
/// most recent writer of the register.
struct PassFirstOp {
  template <typename T>
  T operator()(const T& a, const T& /*b*/) const {
    return a;
  }
  static constexpr int kGateCost = kMuxCost;
};

/// a (x) b = a AND b, the Figure 5 operator ("have all earlier stations met
/// the condition?").
struct AndOp {
  bool operator()(bool a, bool b) const { return a && b; }
  static constexpr int kGateCost = kAndCost;
};

/// a (x) b = a OR b. Used by the hybrid's modified-bit OR trees (Figure 9)
/// and handy for "has any earlier station ..." queries.
struct OrOp {
  bool operator()(bool a, bool b) const { return a || b; }
  static constexpr int kGateCost = kOrCost;
};

/// a (x) b = a + b. Not used by the processor datapaths themselves but by
/// the scheduling/allocation circuitry (Ultrascalar Memo 2) and by tests,
/// which need a non-idempotent operator to catch fold-order bugs.
struct AddOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
  static constexpr int kGateCost = 1;
};

/// a (x) b = min(a, b). Idempotent but order-sensitive under segmentation;
/// used in tests and by the ALU-allocation model.
struct MinOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return std::min(a, b);
  }
  static constexpr int kGateCost = 1;
};

}  // namespace ultra::circuit
