// Value-only prefix evaluation for the cycle-level simulators.
//
// The depth-tracked circuits in cspp.hpp measure gate delay; the processor
// models in src/core evaluate the same functions once per simulated cycle
// and only need the logical values. These helpers compute them in O(n).
//
// The *Into variants write into caller-owned buffers so the simulators'
// steady-state cycle loops never touch the allocator; the allocating
// wrappers remain for tests and one-shot callers. Callers that know a
// segment position (the cores always know the oldest station) pass it as
// @p start_hint and skip the O(n) scan for one.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ultra::circuit {

/// Sentinel for "no known segment position; scan for one".
inline constexpr std::ptrdiff_t kNoSegmentHint = -1;

/// Value-only cyclic segmented prefix into a caller-owned buffer:
/// out[i] = fold of inputs from the nearest preceding segment position
/// (inclusive, cyclic) through i-1. Requires at least one segment bit.
/// @p start_hint, when not kNoSegmentHint, must name a set segment bit
/// (asserted); it replaces the scan, not the semantics — any set segment
/// position yields the same outputs.
template <typename T, typename Op>
void CsppValuesInto(std::span<const T> inputs,
                    std::span<const std::uint8_t> segments, std::span<T> out,
                    Op op = Op{}, std::ptrdiff_t start_hint = kNoSegmentHint) {
  const std::size_t n = inputs.size();
  assert(segments.size() == n);
  assert(out.size() == n);
  std::size_t start;
  if (start_hint != kNoSegmentHint) {
    assert(start_hint >= 0 && static_cast<std::size_t>(start_hint) < n);
    assert(segments[static_cast<std::size_t>(start_hint)] &&
           "start_hint must name a set segment bit");
    start = static_cast<std::size_t>(start_hint);
  } else {
    start = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (segments[i]) start = i;
    }
    assert(start < n && "cyclic segmented prefix requires a segment bit");
  }
  T carry{};
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (start + step) % n;
    carry = segments[i] ? inputs[i] : op(carry, inputs[i]);
    out[(i + 1) % n] = carry;
  }
}

/// Allocating wrapper around CsppValuesInto.
template <typename T, typename Op>
std::vector<T> CsppValues(std::span<const T> inputs,
                          std::span<const std::uint8_t> segments, Op op = Op{},
                          std::ptrdiff_t start_hint = kNoSegmentHint) {
  std::vector<T> out(inputs.size());
  CsppValuesInto<T, Op>(inputs, segments, out, op, start_hint);
  return out;
}

/// Value-only noncyclic segmented prefix with a virtual initial segment,
/// into a caller-owned buffer.
template <typename T, typename Op>
void SppValuesInto(const T& initial, std::span<const T> inputs,
                   std::span<const std::uint8_t> segments, std::span<T> out,
                   Op op = Op{}) {
  const std::size_t n = inputs.size();
  assert(segments.size() == n);
  assert(out.size() == n);
  T carry = initial;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = carry;
    carry = segments[i] ? inputs[i] : op(carry, inputs[i]);
  }
}

/// Allocating wrapper around SppValuesInto.
template <typename T, typename Op>
std::vector<T> SppValues(const T& initial, std::span<const T> inputs,
                         std::span<const std::uint8_t> segments, Op op = Op{}) {
  std::vector<T> out(inputs.size());
  SppValuesInto<T, Op>(initial, inputs, segments, out, op);
  return out;
}

}  // namespace ultra::circuit
