// Value-only prefix evaluation for the cycle-level simulators.
//
// The depth-tracked circuits in cspp.hpp measure gate delay; the processor
// models in src/core evaluate the same functions once per simulated cycle
// and only need the logical values. These helpers compute them in O(n).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace ultra::circuit {

/// Value-only cyclic segmented prefix: out[i] = fold of inputs from the
/// nearest preceding segment position (inclusive, cyclic) through i-1.
/// Requires at least one segment bit.
template <typename T, typename Op>
std::vector<T> CsppValues(std::span<const T> inputs,
                          std::span<const std::uint8_t> segments, Op op = Op{}) {
  const std::size_t n = inputs.size();
  assert(segments.size() == n);
  std::size_t start = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (segments[i]) start = i;
  }
  assert(start < n && "cyclic segmented prefix requires a segment bit");
  std::vector<T> out(n);
  T carry{};
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (start + step) % n;
    carry = segments[i] ? inputs[i] : op(carry, inputs[i]);
    out[(i + 1) % n] = carry;
  }
  return out;
}

/// Value-only noncyclic segmented prefix with a virtual initial segment.
template <typename T, typename Op>
std::vector<T> SppValues(const T& initial, std::span<const T> inputs,
                         std::span<const std::uint8_t> segments, Op op = Op{}) {
  const std::size_t n = inputs.size();
  assert(segments.size() == n);
  std::vector<T> out(n);
  T carry = initial;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = carry;
    carry = segments[i] ? inputs[i] : op(carry, inputs[i]);
  }
  return out;
}

}  // namespace ultra::circuit
