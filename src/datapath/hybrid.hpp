// The hybrid Ultrascalar register datapath (Section 6, Figures 9 and 10).
//
// The window is divided into n/C clusters of C stations. Each cluster is an
// Ultrascalar II datapath extended with per-register modified bits computed
// by OR trees over the stations' write lines (Figure 9). The clusters are
// then connected by the Ultrascalar I CSPP datapath, with each cluster
// acting as a "super execution station": exactly one cluster is the oldest
// on any cycle and holds the committed register file.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datapath/reg_binding.hpp"
#include "datapath/usi.hpp"
#include "datapath/usii.hpp"

namespace ultra::datapath {

struct HybridPropagation {
  std::vector<ResolvedArgs> args;        // Per station (n entries).
  std::vector<RegBinding> cluster_in;    // Per cluster x register
                                         // [cluster*L + r]: what the
                                         // inter-cluster ring delivers.
};

/// Caller-owned state for incremental, allocation-free hybrid propagation.
///
/// Mirrors UsiDatapathState one level up: the caller mutates station
/// requests, the committed file, and the oldest-cluster position through
/// self-diffing setters; PropagateIncremental re-runs only the clusters
/// whose inputs (or incoming inter-cluster values) changed. args() matches
/// the full Propagate element-for-element, including stations the core
/// considers dead.
class HybridDatapathState {
 public:
  HybridDatapathState(int num_stations, int num_regs, int cluster_size);

  [[nodiscard]] int num_stations() const { return n_; }
  [[nodiscard]] int num_regs() const { return L_; }
  [[nodiscard]] int cluster_size() const { return C_; }
  [[nodiscard]] int num_clusters() const { return K_; }

  /// Replaces station @p station's request (cluster-major index, as in
  /// Propagate). No-op when equal to the current request.
  void SetStation(int station, const StationRequest& request);

  /// Updates one committed register. No-op when unchanged.
  void SetCommitted(int reg, const RegBinding& value);

  /// Moves the oldest-cluster position.
  void SetOldestCluster(int cluster);

  /// Forces the next PropagateIncremental to recompute everything.
  void MarkAllDirty();

  [[nodiscard]] int oldest_cluster() const { return ring_.oldest(); }
  /// Valid after PropagateIncremental: the station's resolved arguments.
  [[nodiscard]] const ResolvedArgs& args(int station) const {
    return args_[static_cast<std::size_t>(station)];
  }
  /// Valid after PropagateIncremental: what cluster @p cluster resolves
  /// cluster-external reads against (the committed file for the oldest
  /// cluster, the inter-cluster ring's delivery otherwise).
  [[nodiscard]] const RegBinding& cluster_in(int cluster, int reg) const {
    return cluster == ring_.oldest() ? ring_.committed(reg)
                                     : ring_.incoming(cluster, reg);
  }

  /// Fault-injection hook (src/fault/): mutable access to a station's
  /// resolved arguments, bypassing the dirty tracking so the corruption
  /// persists until the cluster is recomputed (naturally, or by a checker
  /// resync via MarkAllDirty + PropagateIncremental).
  [[nodiscard]] ResolvedArgs& FaultArgs(int station) {
    return args_[static_cast<std::size_t>(station)];
  }

  /// Checkpoint support: station requests, dirty bits, the inter-cluster
  /// ring, and the delivered args — the args round-trip verbatim so live
  /// fault corruptions survive a restore (see UsiDatapathState::SaveState).
  /// Scratch buffers are rebuilt on the next propagation and not saved.
  /// Restore requires matching (num_stations, num_regs, cluster_size).
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  friend class HybridDatapath;

  int n_;
  int L_;
  int C_;
  int K_;                                     // Number of clusters, n/C.
  std::vector<StationRequest> stations_;      // [i], cluster-major shadow.
  std::vector<std::uint8_t> cluster_dirty_;   // [k]: requests changed.
  std::vector<std::uint8_t> cluster_in_dirty_;  // [k]: regfile source
                                                // changed (oldest moved or
                                                // committed updated).
  UsiDatapathState ring_;                     // Inter-cluster ring (K x L).
  std::vector<ResolvedArgs> args_;            // [i].
  // Scratch reused across PropagateIncremental calls.
  std::vector<std::uint8_t> ring_changed_;    // [k].
  std::vector<std::uint8_t> sweep_written_;   // [r].
  std::vector<RegBinding> sweep_val_;         // [r].
  std::vector<RegBinding> resolve_regs_;      // [r].
};

class HybridDatapath {
 public:
  /// @p num_stations must be a multiple of @p cluster_size.
  HybridDatapath(int num_stations, int num_regs, int cluster_size,
                 UsiiImpl cluster_impl = UsiiImpl::kGrid,
                 PrefixImpl tree_impl = PrefixImpl::kTree);

  [[nodiscard]] int num_stations() const { return n_; }
  [[nodiscard]] int num_regs() const { return L_; }
  [[nodiscard]] int cluster_size() const { return C_; }
  [[nodiscard]] int num_clusters() const { return n_ / C_; }

  /// Combinational propagation for one cycle.
  ///
  /// @p committed_regfile  the committed register file (L entries), inserted
  ///                       into the inter-cluster ring by the oldest cluster.
  /// @p stations           n station requests, cluster-major (stations
  ///                       [k*C, (k+1)*C) belong to cluster k, in program
  ///                       order within the cluster).
  /// @p oldest_cluster     index of the oldest cluster.
  ///
  /// Argument resolution: nearest preceding writer within the station's own
  /// cluster, else the cluster's incoming inter-cluster value, which comes
  /// from the nearest preceding cluster (cyclically, stopping at the oldest)
  /// that modified the register.
  [[nodiscard]] HybridPropagation Propagate(
      std::span<const RegBinding> committed_regfile,
      std::span<const StationRequest> stations, int oldest_cluster) const;

  /// Incremental, allocation-free propagation into caller-owned state.
  /// Recomputes a cluster's outgoing registers only when its station
  /// requests changed, and a cluster's argument resolution only when its
  /// requests, its incoming ring values, or its register-file source
  /// changed. See docs/runtime.md for the dirty-set invariants.
  void PropagateIncremental(HybridDatapathState& state) const;

  /// Critical-path gate depth: intra-cluster grid/mesh search + modified-bit
  /// OR tree + inter-cluster CSPP + intra-cluster argument resolution.
  [[nodiscard]] int WorstCaseGateDepth() const;

 private:
  int n_;
  int L_;
  int C_;
  UsiiImpl cluster_impl_;
  PrefixImpl tree_impl_;
};

}  // namespace ultra::datapath
