// The hybrid Ultrascalar register datapath (Section 6, Figures 9 and 10).
//
// The window is divided into n/C clusters of C stations. Each cluster is an
// Ultrascalar II datapath extended with per-register modified bits computed
// by OR trees over the stations' write lines (Figure 9). The clusters are
// then connected by the Ultrascalar I CSPP datapath, with each cluster
// acting as a "super execution station": exactly one cluster is the oldest
// on any cycle and holds the committed register file.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datapath/reg_binding.hpp"
#include "datapath/usi.hpp"
#include "datapath/usii.hpp"

namespace ultra::datapath {

struct HybridPropagation {
  std::vector<ResolvedArgs> args;        // Per station (n entries).
  std::vector<RegBinding> cluster_in;    // Per cluster x register
                                         // [cluster*L + r]: what the
                                         // inter-cluster ring delivers.
};

class HybridDatapath {
 public:
  /// @p num_stations must be a multiple of @p cluster_size.
  HybridDatapath(int num_stations, int num_regs, int cluster_size,
                 UsiiImpl cluster_impl = UsiiImpl::kGrid,
                 PrefixImpl tree_impl = PrefixImpl::kTree);

  [[nodiscard]] int num_stations() const { return n_; }
  [[nodiscard]] int num_regs() const { return L_; }
  [[nodiscard]] int cluster_size() const { return C_; }
  [[nodiscard]] int num_clusters() const { return n_ / C_; }

  /// Combinational propagation for one cycle.
  ///
  /// @p committed_regfile  the committed register file (L entries), inserted
  ///                       into the inter-cluster ring by the oldest cluster.
  /// @p stations           n station requests, cluster-major (stations
  ///                       [k*C, (k+1)*C) belong to cluster k, in program
  ///                       order within the cluster).
  /// @p oldest_cluster     index of the oldest cluster.
  ///
  /// Argument resolution: nearest preceding writer within the station's own
  /// cluster, else the cluster's incoming inter-cluster value, which comes
  /// from the nearest preceding cluster (cyclically, stopping at the oldest)
  /// that modified the register.
  [[nodiscard]] HybridPropagation Propagate(
      std::span<const RegBinding> committed_regfile,
      std::span<const StationRequest> stations, int oldest_cluster) const;

  /// Critical-path gate depth: intra-cluster grid/mesh search + modified-bit
  /// OR tree + inter-cluster CSPP + intra-cluster argument resolution.
  [[nodiscard]] int WorstCaseGateDepth() const;

 private:
  int n_;
  int L_;
  int C_;
  UsiiImpl cluster_impl_;
  PrefixImpl tree_impl_;
};

}  // namespace ultra::datapath
