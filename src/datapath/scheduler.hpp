// Prioritized shared-ALU scheduler (Henry & Kuszmaul, Ultrascalar Memo 2;
// cited in Sections 1 and 7: "in the designs presented here, the ALU is
// replicated n times ... In practice, ALUs can be effectively shared ... We
// have shown how to implement efficient scheduling logic for a superscalar
// processor that shares ALUs [6]").
//
// The circuit is one more cyclic segmented parallel prefix, over integer
// counts instead of bits: every station wanting to start execution raises a
// request; the prefix sum from the oldest station ranks the requests in
// program order; a station is granted an ALU iff its rank is below the
// number of free ALUs. Oldest-first priority falls out of the prefix order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datapath/bitset.hpp"
#include "datapath/usi.hpp"

namespace ultra::datapath {

class AluScheduler {
 public:
  explicit AluScheduler(int num_stations,
                        PrefixImpl impl = PrefixImpl::kTree)
      : n_(num_stations), impl_(impl) {}

  [[nodiscard]] int num_stations() const { return n_; }

  /// Grants up to @p available ALUs to requesting stations, oldest first.
  /// @p requests[i] is 1 when station i is ready to begin execution this
  /// cycle. Returns grant flags.
  [[nodiscard]] std::vector<std::uint8_t> Grant(
      std::span<const std::uint8_t> requests, int available,
      int oldest) const;

  /// Grant into a caller-owned buffer (allocation-free): one rank walk from
  /// the oldest station replaces the prefix-sum vectors. @p grants may not
  /// alias @p requests.
  void GrantInto(std::span<const std::uint8_t> requests, int available,
                 int oldest, std::span<std::uint8_t> grants) const;

  /// Acyclic variant for the batch-mode Ultrascalar II (program order =
  /// slot order, no wrap-around).
  static std::vector<std::uint8_t> GrantAcyclic(
      std::span<const std::uint8_t> requests, int available);

  /// Acyclic grant into a caller-owned buffer (allocation-free). @p grants
  /// may not alias @p requests.
  static void GrantAcyclicInto(std::span<const std::uint8_t> requests,
                               int available,
                               std::span<std::uint8_t> grants);

  /// Word-parallel twins of GrantInto / GrantAcyclicInto: identical grant
  /// lanes, but a fully grantable word costs one popcount instead of 64
  /// rank steps, and once the free ALUs are exhausted whole words are
  /// zeroed at a time. @p grants may not alias @p requests and must match
  /// its size.
  void PackedGrantInto(const PackedBits& requests, int available, int oldest,
                       PackedBits& grants) const;
  static void PackedGrantAcyclicInto(const PackedBits& requests,
                                     int available, PackedBits& grants);

  /// Critical-path gate depth of one scheduling decision. The prefix nodes
  /// add log2(n)-bit numbers, so the depth is O(log n * log log n)-ish but
  /// measured, not assumed.
  [[nodiscard]] int MeasureGateDepth(std::span<const std::uint8_t> requests,
                                     int oldest) const;

 private:
  int n_;
  PrefixImpl impl_;
};

}  // namespace ultra::datapath
