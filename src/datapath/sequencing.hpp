// The 1-bit sequencing circuits of Figure 5.
//
// Each is a cyclic segmented parallel prefix with operator a AND b whose
// segment bit is raised by the oldest station: station i learns whether all
// stations from the oldest through i-1 satisfy a condition. The paper uses
// four instances: oldest-station computation (all preceding finished),
// store serialization (all preceding stores finished), load serialization
// (all preceding loads finished), and branch commitment (all preceding
// branches confirmed).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datapath/bitset.hpp"
#include "datapath/usi.hpp"

namespace ultra::datapath {

class SequencingCspp {
 public:
  explicit SequencingCspp(int num_stations,
                          PrefixImpl impl = PrefixImpl::kTree)
      : n_(num_stations), impl_(impl) {}

  [[nodiscard]] int num_stations() const { return n_; }

  /// For each station i: AND of @p condition over stations oldest..i-1
  /// (cyclically). The value delivered to the oldest station itself wraps
  /// all the way around and is ignored by the oldest in the processors.
  [[nodiscard]] std::vector<std::uint8_t> AllPrecedingSatisfy(
      std::span<const std::uint8_t> condition, int oldest) const;

  /// AllPrecedingSatisfy into a caller-owned buffer (allocation-free).
  /// @p out may not alias @p condition.
  void AllPrecedingSatisfyInto(std::span<const std::uint8_t> condition,
                               int oldest, std::span<std::uint8_t> out) const;

  /// For each station i: OR of @p condition over stations oldest..i-1.
  /// ("Does any earlier station ..." -- used by memory renaming tests.)
  [[nodiscard]] std::vector<std::uint8_t> AnyPrecedingSatisfies(
      std::span<const std::uint8_t> condition, int oldest) const;

  /// AnyPrecedingSatisfies into a caller-owned buffer (allocation-free).
  /// @p out may not alias @p condition.
  void AnyPrecedingSatisfiesInto(std::span<const std::uint8_t> condition,
                                 int oldest,
                                 std::span<std::uint8_t> out) const;

  /// Critical-path gate depth of one evaluation.
  [[nodiscard]] int MeasureGateDepth(std::span<const std::uint8_t> condition,
                                     int oldest) const;

 private:
  int n_;
  PrefixImpl impl_;
};

/// Noncyclic variant for the batch-mode Ultrascalar II: position 0 sees
/// @p initial (vacuously true for AND).
std::vector<std::uint8_t> AllPrecedingSatisfyAcyclic(
    std::span<const std::uint8_t> condition);

/// Acyclic variant into a caller-owned buffer (allocation-free). @p out may
/// not alias @p condition.
void AllPrecedingSatisfyAcyclicInto(std::span<const std::uint8_t> condition,
                                    std::span<std::uint8_t> out);

/// Word-parallel twins of the byte-lane circuits above: identical outputs
/// lane for lane (including the wrap-around value delivered to the oldest
/// station), evaluated 64 lanes per word op. A word whose condition lanes
/// are all satisfied costs one trailing-ones count instead of 64 scalar
/// AND steps. @p out may not alias @p condition and must match its size.
void PackedAllPrecedingSatisfyInto(const PackedBits& condition, int oldest,
                                   PackedBits& out);
void PackedAnyPrecedingSatisfiesInto(const PackedBits& condition, int oldest,
                                     PackedBits& out);
void PackedAllPrecedingSatisfyAcyclicInto(const PackedBits& condition,
                                          PackedBits& out);

}  // namespace ultra::datapath
