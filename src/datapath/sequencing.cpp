#include "datapath/sequencing.hpp"

#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

using circuit::Signal;

namespace {

std::vector<std::uint8_t> RunCyclic(std::span<const std::uint8_t> condition,
                                    int oldest, int n, bool use_or) {
  assert(condition.size() == static_cast<std::size_t>(n));
  assert(oldest >= 0 && oldest < n);
  std::vector<std::uint8_t> inputs(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> segs(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    inputs[static_cast<std::size_t>(i)] =
        condition[static_cast<std::size_t>(i)] != 0;
  }
  segs[static_cast<std::size_t>(oldest)] = 1;
  const auto out =
      use_or ? circuit::CsppValues<std::uint8_t, circuit::OrOp>(inputs, segs)
             : circuit::CsppValues<std::uint8_t, circuit::AndOp>(inputs, segs);
  std::vector<std::uint8_t> result(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    result[static_cast<std::size_t>(i)] = out[static_cast<std::size_t>(i)];
  }
  return result;
}

}  // namespace

std::vector<std::uint8_t> SequencingCspp::AllPrecedingSatisfy(
    std::span<const std::uint8_t> condition, int oldest) const {
  return RunCyclic(condition, oldest, n_, /*use_or=*/false);
}

std::vector<std::uint8_t> SequencingCspp::AnyPrecedingSatisfies(
    std::span<const std::uint8_t> condition, int oldest) const {
  return RunCyclic(condition, oldest, n_, /*use_or=*/true);
}

int SequencingCspp::MeasureGateDepth(std::span<const std::uint8_t> condition,
                                     int oldest) const {
  assert(condition.size() == static_cast<std::size_t>(n_));
  std::vector<Signal<bool>> inputs(static_cast<std::size_t>(n_));
  std::vector<Signal<bool>> segs(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    inputs[static_cast<std::size_t>(i)] = {
        condition[static_cast<std::size_t>(i)] != 0, 0};
    segs[static_cast<std::size_t>(i)] = {i == oldest, 0};
  }
  const auto out =
      impl_ == PrefixImpl::kRing
          ? circuit::CsppRingEvaluate<bool, circuit::AndOp>(inputs, segs)
          : circuit::CsppTreeEvaluate<bool, circuit::AndOp>(inputs, segs);
  int worst = 0;
  for (const auto& s : out) worst = std::max(worst, s.depth);
  return worst;
}

std::vector<std::uint8_t> AllPrecedingSatisfyAcyclic(
    std::span<const std::uint8_t> condition) {
  std::vector<std::uint8_t> out(condition.size());
  std::uint8_t carry = 1;  // Vacuously true before position 0.
  for (std::size_t i = 0; i < condition.size(); ++i) {
    out[i] = carry;
    carry = static_cast<std::uint8_t>(carry && condition[i]);
  }
  return out;
}

}  // namespace ultra::datapath
