#include "datapath/sequencing.hpp"

#include <algorithm>
#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

using circuit::Signal;

namespace {

std::vector<std::uint8_t> RunCyclic(std::span<const std::uint8_t> condition,
                                    int oldest, int n, bool use_or) {
  assert(condition.size() == static_cast<std::size_t>(n));
  assert(oldest >= 0 && oldest < n);
  std::vector<std::uint8_t> inputs(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> segs(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    inputs[static_cast<std::size_t>(i)] =
        condition[static_cast<std::size_t>(i)] != 0;
  }
  segs[static_cast<std::size_t>(oldest)] = 1;
  const auto out =
      use_or ? circuit::CsppValues<std::uint8_t, circuit::OrOp>(inputs, segs)
             : circuit::CsppValues<std::uint8_t, circuit::AndOp>(inputs, segs);
  std::vector<std::uint8_t> result(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    result[static_cast<std::size_t>(i)] = out[static_cast<std::size_t>(i)];
  }
  return result;
}

// Allocation-free equivalent of RunCyclic: one carry walk from the oldest
// station's segment, writing each position's delivered prefix directly.
void RunCyclicInto(std::span<const std::uint8_t> condition, int oldest, int n,
                   bool use_or, std::span<std::uint8_t> out) {
  assert(condition.size() == static_cast<std::size_t>(n));
  assert(out.size() == static_cast<std::size_t>(n));
  assert(oldest >= 0 && oldest < n);
  assert(condition.empty() || out.data() != condition.data());
  std::uint8_t carry = 0;
  int i = oldest;
  for (int step = 0; step < n; ++step) {
    const bool c = condition[static_cast<std::size_t>(i)] != 0;
    if (step == 0) {
      carry = c;
    } else {
      carry = use_or ? (carry || c) : (carry && c);
    }
    i = i + 1 == n ? 0 : i + 1;
    out[static_cast<std::size_t>(i)] = carry;
  }
}

}  // namespace

std::vector<std::uint8_t> SequencingCspp::AllPrecedingSatisfy(
    std::span<const std::uint8_t> condition, int oldest) const {
  return RunCyclic(condition, oldest, n_, /*use_or=*/false);
}

void SequencingCspp::AllPrecedingSatisfyInto(
    std::span<const std::uint8_t> condition, int oldest,
    std::span<std::uint8_t> out) const {
  RunCyclicInto(condition, oldest, n_, /*use_or=*/false, out);
}

std::vector<std::uint8_t> SequencingCspp::AnyPrecedingSatisfies(
    std::span<const std::uint8_t> condition, int oldest) const {
  return RunCyclic(condition, oldest, n_, /*use_or=*/true);
}

void SequencingCspp::AnyPrecedingSatisfiesInto(
    std::span<const std::uint8_t> condition, int oldest,
    std::span<std::uint8_t> out) const {
  RunCyclicInto(condition, oldest, n_, /*use_or=*/true, out);
}

int SequencingCspp::MeasureGateDepth(std::span<const std::uint8_t> condition,
                                     int oldest) const {
  assert(condition.size() == static_cast<std::size_t>(n_));
  std::vector<Signal<bool>> inputs(static_cast<std::size_t>(n_));
  std::vector<Signal<bool>> segs(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    inputs[static_cast<std::size_t>(i)] = {
        condition[static_cast<std::size_t>(i)] != 0, 0};
    segs[static_cast<std::size_t>(i)] = {i == oldest, 0};
  }
  const auto out =
      impl_ == PrefixImpl::kRing
          ? circuit::CsppRingEvaluate<bool, circuit::AndOp>(inputs, segs)
          : circuit::CsppTreeEvaluate<bool, circuit::AndOp>(inputs, segs);
  int worst = 0;
  for (const auto& s : out) worst = std::max(worst, s.depth);
  return worst;
}

namespace {

/// Shared chunk walk for the packed cyclic prefixes: visits the n lanes in
/// cyclic order starting at @p oldest, one word-aligned chunk at a time
/// (at most two partial chunks: the split word holding @p oldest and the
/// array's tail word), delivering the exclusive prefix to every lane. The
/// lane delivered to the oldest itself is the full wrap-around reduction,
/// exactly as RunCyclicInto computes it.
template <bool kUseOr>
void PackedRunCyclicInto(const PackedBits& condition, int oldest,
                         PackedBits& out) {
  const int n = condition.size();
  assert(out.size() == n);
  assert(oldest >= 0 && oldest < n);
  assert(&out != &condition);
  bool carry = !kUseOr;  // AND identity = true, OR identity = false.
  int pos = oldest;
  int processed = 0;
  while (processed < n) {
    const int w = pos >> 6;
    const int lo = pos & 63;
    // A chunk ends at the word boundary, the array end, or after the last
    // unprocessed lane, whichever is first.
    int hi = 64;
    hi = std::min(hi, n - (w << 6));
    hi = std::min(hi, lo + (n - processed));
    if constexpr (kUseOr) {
      packed_internal::PrefixOrRange(condition.word(w), lo, hi, carry,
                                     out.word(w));
    } else {
      packed_internal::PrefixAndRange(condition.word(w), lo, hi, carry,
                                      out.word(w));
    }
    processed += hi - lo;
    pos = (w << 6) + hi;
    if (pos >= n) pos = 0;
  }
  out.SetTo(oldest, carry);  // Full wrap-around reduction.
}

}  // namespace

void PackedAllPrecedingSatisfyInto(const PackedBits& condition, int oldest,
                                   PackedBits& out) {
  PackedRunCyclicInto</*kUseOr=*/false>(condition, oldest, out);
}

void PackedAnyPrecedingSatisfiesInto(const PackedBits& condition, int oldest,
                                     PackedBits& out) {
  PackedRunCyclicInto</*kUseOr=*/true>(condition, oldest, out);
}

void PackedAllPrecedingSatisfyAcyclicInto(const PackedBits& condition,
                                          PackedBits& out) {
  const int n = condition.size();
  assert(out.size() == n);
  assert(&out != &condition);
  bool carry = true;  // Vacuously true before position 0.
  for (int w = 0; w < condition.num_words(); ++w) {
    const int hi = std::min(64, n - (w << 6));
    packed_internal::PrefixAndRange(condition.word(w), 0, hi, carry,
                                    out.word(w));
  }
}

std::vector<std::uint8_t> AllPrecedingSatisfyAcyclic(
    std::span<const std::uint8_t> condition) {
  std::vector<std::uint8_t> out(condition.size());
  AllPrecedingSatisfyAcyclicInto(condition, out);
  return out;
}

void AllPrecedingSatisfyAcyclicInto(std::span<const std::uint8_t> condition,
                                    std::span<std::uint8_t> out) {
  assert(out.size() == condition.size());
  assert(condition.empty() || out.data() != condition.data());
  std::uint8_t carry = 1;  // Vacuously true before position 0.
  for (std::size_t i = 0; i < condition.size(); ++i) {
    out[i] = carry;
    carry = static_cast<std::uint8_t>(carry && condition[i]);
  }
}

}  // namespace ultra::datapath
