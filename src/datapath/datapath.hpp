// Umbrella header for the register-datapath library.
#pragma once

#include "datapath/hybrid.hpp"       // IWYU pragma: export
#include "datapath/reg_binding.hpp"  // IWYU pragma: export
#include "datapath/scheduler.hpp"    // IWYU pragma: export
#include "datapath/sequencing.hpp"   // IWYU pragma: export
#include "datapath/usi.hpp"          // IWYU pragma: export
#include "datapath/usii.hpp"         // IWYU pragma: export
