#include "datapath/hybrid.hpp"

#include <algorithm>
#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

using circuit::CeilLog2;
using circuit::ReductionDepth;

// --- HybridDatapathState -----------------------------------------------------

HybridDatapathState::HybridDatapathState(int num_stations, int num_regs,
                                         int cluster_size)
    : n_(num_stations),
      L_(num_regs),
      C_(cluster_size),
      K_(num_stations / cluster_size),
      ring_(num_stations / cluster_size, num_regs) {
  assert(n_ >= 1 && C_ >= 1 && n_ % C_ == 0);
  stations_.resize(static_cast<std::size_t>(n_));
  cluster_dirty_.assign(static_cast<std::size_t>(K_), 1);
  cluster_in_dirty_.assign(static_cast<std::size_t>(K_), 1);
  args_.resize(static_cast<std::size_t>(n_));
  ring_changed_.resize(static_cast<std::size_t>(K_));
  sweep_written_.resize(static_cast<std::size_t>(L_));
  sweep_val_.resize(static_cast<std::size_t>(L_));
  resolve_regs_.resize(static_cast<std::size_t>(L_));
}

void HybridDatapathState::SetStation(int station,
                                     const StationRequest& request) {
  auto& slot = stations_[static_cast<std::size_t>(station)];
  if (slot == request) return;
  slot = request;
  cluster_dirty_[static_cast<std::size_t>(station / C_)] = 1;
}

void HybridDatapathState::SetCommitted(int reg, const RegBinding& value) {
  if (ring_.committed(reg) == value) return;
  ring_.SetCommitted(reg, value);
  // The oldest cluster resolves against the committed file directly (it
  // bypasses the ring), so its argument resolution must re-run.
  cluster_in_dirty_[static_cast<std::size_t>(ring_.oldest())] = 1;
}

void HybridDatapathState::SetOldestCluster(int cluster) {
  if (cluster == ring_.oldest()) return;
  // Both the old and the new oldest cluster switch register-file source
  // (ring delivery <-> committed file).
  cluster_in_dirty_[static_cast<std::size_t>(ring_.oldest())] = 1;
  cluster_in_dirty_[static_cast<std::size_t>(cluster)] = 1;
  ring_.SetOldest(cluster);
}

void HybridDatapathState::MarkAllDirty() {
  std::fill(cluster_dirty_.begin(), cluster_dirty_.end(), 1);
  std::fill(cluster_in_dirty_.begin(), cluster_in_dirty_.end(), 1);
  ring_.MarkAllDirty();
}

// --- HybridDatapath ----------------------------------------------------------

HybridDatapath::HybridDatapath(int num_stations, int num_regs,
                               int cluster_size, UsiiImpl cluster_impl,
                               PrefixImpl tree_impl)
    : n_(num_stations),
      L_(num_regs),
      C_(cluster_size),
      cluster_impl_(cluster_impl),
      tree_impl_(tree_impl) {
  assert(n_ >= 1 && C_ >= 1);
  assert(n_ % C_ == 0 && "station count must be a multiple of cluster size");
  assert(L_ >= 1 && L_ <= isa::kMaxLogicalRegisters);
}

HybridPropagation HybridDatapath::Propagate(
    std::span<const RegBinding> committed_regfile,
    std::span<const StationRequest> stations, int oldest_cluster) const {
  assert(committed_regfile.size() == static_cast<std::size_t>(L_));
  assert(stations.size() == static_cast<std::size_t>(n_));
  const int num_clusters = n_ / C_;
  assert(oldest_cluster >= 0 && oldest_cluster < num_clusters);

  // Step 1 (Figure 9): each cluster's outgoing register values and modified
  // bits. Outgoing value for register r = result of the last station in the
  // cluster writing r; modified bit = OR over the cluster's write lines.
  std::vector<RegBinding> cluster_out(
      static_cast<std::size_t>(num_clusters) * L_);
  std::vector<std::uint8_t> cluster_modified(
      static_cast<std::size_t>(num_clusters) * L_, 0);
  for (int k = 0; k < num_clusters; ++k) {
    for (int r = 0; r < L_; ++r) {
      const std::size_t idx = static_cast<std::size_t>(k) * L_ + r;
      for (int j = C_ - 1; j >= 0; --j) {
        const auto& s = stations[static_cast<std::size_t>(k * C_ + j)];
        if (s.writes && s.dest == r) {
          cluster_out[idx] = s.result;
          cluster_modified[idx] = 1;
          break;
        }
      }
    }
  }
  // The oldest cluster inserts the committed register file for every
  // register it does not itself overwrite. (All its modified bits are set;
  // the UltrascalarIDatapath treats the oldest's bits as all-set anyway, so
  // we must also supply the committed values on unmodified registers.)
  for (int r = 0; r < L_; ++r) {
    const std::size_t idx =
        static_cast<std::size_t>(oldest_cluster) * L_ + r;
    if (!cluster_modified[idx]) {
      cluster_out[idx] = committed_regfile[r];
    }
  }

  // Step 2: inter-cluster Ultrascalar I ring delivers each cluster's
  // incoming register file.
  const UltrascalarIDatapath ring(num_clusters, L_, tree_impl_);
  HybridPropagation out;
  out.cluster_in = ring.Propagate(cluster_out, cluster_modified,
                                  oldest_cluster);
  // The oldest cluster ignores the ring and uses the committed file.
  for (int r = 0; r < L_; ++r) {
    out.cluster_in[static_cast<std::size_t>(oldest_cluster) * L_ + r] =
        committed_regfile[r];
  }

  // Step 3: intra-cluster argument resolution -- each cluster is an
  // Ultrascalar II whose register file is the cluster's incoming values.
  out.args.resize(static_cast<std::size_t>(n_));
  const UltrascalarIIDatapath grid(C_, L_, cluster_impl_);
  for (int k = 0; k < num_clusters; ++k) {
    const std::span<const RegBinding> cluster_regfile(
        out.cluster_in.data() + static_cast<std::size_t>(k) * L_,
        static_cast<std::size_t>(L_));
    const std::span<const StationRequest> cluster_stations(
        stations.data() + static_cast<std::size_t>(k) * C_,
        static_cast<std::size_t>(C_));
    auto prop = grid.Propagate(cluster_regfile, cluster_stations);
    for (int j = 0; j < C_; ++j) {
      out.args[static_cast<std::size_t>(k * C_ + j)] =
          prop.args[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

void HybridDatapath::PropagateIncremental(HybridDatapathState& state) const {
  assert(state.n_ == n_ && state.L_ == L_ && state.C_ == C_);
  // Step 1: refresh the inter-cluster ring's cells for clusters whose
  // station requests changed. The cluster's outgoing value for register r
  // is its last writer's result; registers without a writer clear their
  // modified bit (the oldest cluster's committed insertion is handled by
  // the ring itself). The ring's setters self-diff, so a dirty cluster
  // whose outgoing registers end up unchanged dirties nothing downstream.
  for (int k = 0; k < state.K_; ++k) {
    if (!state.cluster_dirty_[static_cast<std::size_t>(k)]) continue;
    std::fill(state.sweep_written_.begin(), state.sweep_written_.end(), 0);
    for (int j = 0; j < C_; ++j) {
      const auto& s = state.stations_[static_cast<std::size_t>(k * C_ + j)];
      if (s.writes) {
        state.sweep_written_[s.dest] = 1;
        state.sweep_val_[s.dest] = s.result;
      }
    }
    for (int r = 0; r < L_; ++r) {
      if (state.sweep_written_[static_cast<std::size_t>(r)]) {
        state.ring_.SetWrite(k, r,
                             state.sweep_val_[static_cast<std::size_t>(r)]);
      } else {
        state.ring_.ClearWrite(k, r);
      }
    }
  }

  // Step 2: inter-cluster Ultrascalar I ring, incrementally; record which
  // clusters saw any incoming register change.
  const int num_clusters = state.K_;
  const UltrascalarIDatapath ring(num_clusters, L_, tree_impl_);
  std::fill(state.ring_changed_.begin(), state.ring_changed_.end(), 0);
  ring.PropagateIncremental(state.ring_, state.ring_changed_);

  // Step 3: intra-cluster argument resolution, only where inputs moved. A
  // cluster's args depend on its own requests and its register-file source
  // (committed file when oldest, ring delivery otherwise) — each covered by
  // one of the three flags.
  for (int k = 0; k < num_clusters; ++k) {
    const std::size_t ks = static_cast<std::size_t>(k);
    if (!state.cluster_dirty_[ks] && !state.cluster_in_dirty_[ks] &&
        !state.ring_changed_[ks]) {
      continue;
    }
    state.cluster_dirty_[ks] = 0;
    state.cluster_in_dirty_[ks] = 0;
    const bool is_oldest = k == state.ring_.oldest();
    for (int r = 0; r < L_; ++r) {
      state.resolve_regs_[static_cast<std::size_t>(r)] =
          is_oldest ? state.ring_.committed(r) : state.ring_.incoming(k, r);
    }
    for (int j = 0; j < C_; ++j) {
      const std::size_t idx = static_cast<std::size_t>(k * C_ + j);
      const auto& s = state.stations_[idx];
      auto& a = state.args_[idx];
      a.arg1 = s.reads1 ? state.resolve_regs_[s.arg1] : RegBinding{};
      a.arg2 = s.reads2 ? state.resolve_regs_[s.arg2] : RegBinding{};
      if (s.writes) state.resolve_regs_[s.dest] = s.result;
    }
  }
}

int HybridDatapath::WorstCaseGateDepth() const {
  const int num_clusters = n_ / C_;
  // A value produced in one cluster and consumed in another traverses:
  // the producing cluster's outgoing-register column, the modified-bit OR
  // tree, the inter-cluster CSPP, and the consuming cluster's argument
  // column.
  const UltrascalarIIDatapath grid(C_, L_, cluster_impl_);
  const int column = grid.WorstCaseGateDepth();
  const int or_tree = ReductionDepth(C_) * circuit::kOrCost;
  const UltrascalarIDatapath ring(num_clusters, L_, tree_impl_);
  const int inter = ring.WorstCaseGateDepth();
  return column + or_tree + inter + column;
}

void HybridDatapathState::SaveState(persist::Encoder& e) const {
  e.I32(n_);
  e.I32(L_);
  e.I32(C_);
  for (const StationRequest& s : stations_) Save(e, s);
  for (const std::uint8_t f : cluster_dirty_) e.U8(f);
  for (const std::uint8_t f : cluster_in_dirty_) e.U8(f);
  ring_.SaveState(e);
  for (const ResolvedArgs& a : args_) Save(e, a);
}

void HybridDatapathState::RestoreState(persist::Decoder& d) {
  if (d.I32() != n_ || d.I32() != L_ || d.I32() != C_) {
    throw persist::FormatError("hybrid datapath geometry mismatch");
  }
  for (StationRequest& s : stations_) Restore(d, s);
  for (std::uint8_t& f : cluster_dirty_) f = d.U8();
  for (std::uint8_t& f : cluster_in_dirty_) f = d.U8();
  ring_.RestoreState(d);
  for (ResolvedArgs& a : args_) Restore(d, a);
}

}  // namespace ultra::datapath
