#include "datapath/hybrid.hpp"

#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

using circuit::CeilLog2;
using circuit::ReductionDepth;

HybridDatapath::HybridDatapath(int num_stations, int num_regs,
                               int cluster_size, UsiiImpl cluster_impl,
                               PrefixImpl tree_impl)
    : n_(num_stations),
      L_(num_regs),
      C_(cluster_size),
      cluster_impl_(cluster_impl),
      tree_impl_(tree_impl) {
  assert(n_ >= 1 && C_ >= 1);
  assert(n_ % C_ == 0 && "station count must be a multiple of cluster size");
  assert(L_ >= 1 && L_ <= isa::kMaxLogicalRegisters);
}

HybridPropagation HybridDatapath::Propagate(
    std::span<const RegBinding> committed_regfile,
    std::span<const StationRequest> stations, int oldest_cluster) const {
  assert(committed_regfile.size() == static_cast<std::size_t>(L_));
  assert(stations.size() == static_cast<std::size_t>(n_));
  const int num_clusters = n_ / C_;
  assert(oldest_cluster >= 0 && oldest_cluster < num_clusters);

  // Step 1 (Figure 9): each cluster's outgoing register values and modified
  // bits. Outgoing value for register r = result of the last station in the
  // cluster writing r; modified bit = OR over the cluster's write lines.
  std::vector<RegBinding> cluster_out(
      static_cast<std::size_t>(num_clusters) * L_);
  std::vector<std::uint8_t> cluster_modified(
      static_cast<std::size_t>(num_clusters) * L_, 0);
  for (int k = 0; k < num_clusters; ++k) {
    for (int r = 0; r < L_; ++r) {
      const std::size_t idx = static_cast<std::size_t>(k) * L_ + r;
      for (int j = C_ - 1; j >= 0; --j) {
        const auto& s = stations[static_cast<std::size_t>(k * C_ + j)];
        if (s.writes && s.dest == r) {
          cluster_out[idx] = s.result;
          cluster_modified[idx] = 1;
          break;
        }
      }
    }
  }
  // The oldest cluster inserts the committed register file for every
  // register it does not itself overwrite. (All its modified bits are set;
  // the UltrascalarIDatapath treats the oldest's bits as all-set anyway, so
  // we must also supply the committed values on unmodified registers.)
  for (int r = 0; r < L_; ++r) {
    const std::size_t idx =
        static_cast<std::size_t>(oldest_cluster) * L_ + r;
    if (!cluster_modified[idx]) {
      cluster_out[idx] = committed_regfile[r];
    }
  }

  // Step 2: inter-cluster Ultrascalar I ring delivers each cluster's
  // incoming register file.
  const UltrascalarIDatapath ring(num_clusters, L_, tree_impl_);
  HybridPropagation out;
  out.cluster_in = ring.Propagate(cluster_out, cluster_modified,
                                  oldest_cluster);
  // The oldest cluster ignores the ring and uses the committed file.
  for (int r = 0; r < L_; ++r) {
    out.cluster_in[static_cast<std::size_t>(oldest_cluster) * L_ + r] =
        committed_regfile[r];
  }

  // Step 3: intra-cluster argument resolution -- each cluster is an
  // Ultrascalar II whose register file is the cluster's incoming values.
  out.args.resize(static_cast<std::size_t>(n_));
  const UltrascalarIIDatapath grid(C_, L_, cluster_impl_);
  for (int k = 0; k < num_clusters; ++k) {
    const std::span<const RegBinding> cluster_regfile(
        out.cluster_in.data() + static_cast<std::size_t>(k) * L_,
        static_cast<std::size_t>(L_));
    const std::span<const StationRequest> cluster_stations(
        stations.data() + static_cast<std::size_t>(k) * C_,
        static_cast<std::size_t>(C_));
    auto prop = grid.Propagate(cluster_regfile, cluster_stations);
    for (int j = 0; j < C_; ++j) {
      out.args[static_cast<std::size_t>(k * C_ + j)] =
          prop.args[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

int HybridDatapath::WorstCaseGateDepth() const {
  const int num_clusters = n_ / C_;
  // A value produced in one cluster and consumed in another traverses:
  // the producing cluster's outgoing-register column, the modified-bit OR
  // tree, the inter-cluster CSPP, and the consuming cluster's argument
  // column.
  const UltrascalarIIDatapath grid(C_, L_, cluster_impl_);
  const int column = grid.WorstCaseGateDepth();
  const int or_tree = ReductionDepth(C_) * circuit::kOrCost;
  const UltrascalarIDatapath ring(num_clusters, L_, tree_impl_);
  const int inter = ring.WorstCaseGateDepth();
  return column + or_tree + inter + column;
}

}  // namespace ultra::datapath
