// The Ultrascalar I register datapath (Sections 2-3, Figures 1 and 4).
//
// One cyclic segmented parallel-prefix circuit per logical register carries
// the register's latest (value, ready) to successive stations. A station
// that writes the register asserts its "modified" bit (the CSPP segment
// bit); the oldest station asserts modified for every register, inserting
// the committed register file into the ring.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datapath/reg_binding.hpp"

namespace ultra::datapath {

/// Which circuit family implements the datapath.
enum class PrefixImpl : std::uint8_t {
  kRing,  // Figure 1: ring of multiplexers, Theta(n) gate delay.
  kTree,  // Figure 4: CSPP tree, Theta(log n) gate delay.
};

class UltrascalarIDatapath {
 public:
  /// @p num_stations is n, @p num_regs is L.
  UltrascalarIDatapath(int num_stations, int num_regs,
                       PrefixImpl impl = PrefixImpl::kTree);

  [[nodiscard]] int num_stations() const { return n_; }
  [[nodiscard]] int num_regs() const { return L_; }
  [[nodiscard]] PrefixImpl impl() const { return impl_; }

  /// Combinational propagation for one cycle.
  ///
  /// @p outgoing  n*L bindings, indexed [station*L + reg]: what each station
  ///              drives into the ring for each register (its result for the
  ///              destination register; its register-file copy otherwise).
  /// @p modified  n*L flags: the mux select of Figure 1. The oldest
  ///              station's flags are treated as all-set regardless.
  /// @p oldest    index of the oldest station.
  /// @returns     n*L incoming bindings: for station i and register r, the
  ///              binding from the nearest preceding station (cyclically,
  ///              stopping at the oldest) that modified r.
  [[nodiscard]] std::vector<RegBinding> Propagate(
      std::span<const RegBinding> outgoing,
      std::span<const std::uint8_t> modified, int oldest) const;

  /// Critical-path gate depth of one propagation with the given modified
  /// pattern (measured by evaluating the depth-tracked circuit). The ring
  /// grows as Theta(n); the tree as Theta(log n).
  [[nodiscard]] int MeasureGateDepth(std::span<const std::uint8_t> modified,
                                     int oldest) const;

  /// Worst case over single-writer placements: a value written by the
  /// station just after the oldest must travel the whole ring.
  [[nodiscard]] int WorstCaseGateDepth() const;

 private:
  int n_;
  int L_;
  PrefixImpl impl_;
};

}  // namespace ultra::datapath
