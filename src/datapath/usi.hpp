// The Ultrascalar I register datapath (Sections 2-3, Figures 1 and 4).
//
// One cyclic segmented parallel-prefix circuit per logical register carries
// the register's latest (value, ready) to successive stations. A station
// that writes the register asserts its "modified" bit (the CSPP segment
// bit); the oldest station asserts modified for every register, inserting
// the committed register file into the ring.
//
// Two evaluation paths compute the same function:
//  * Propagate() — the full recompute over station-major buffers. This is
//    the reference path: every call re-evaluates all L register columns and
//    allocates its result.
//  * PropagateIncremental(UsiDatapathState&) — allocation-free and
//    incremental. The caller owns a UsiDatapathState holding the ring's
//    inputs in register-major (SoA) layout and mutates it through
//    self-diffing setters; propagation re-runs only the register columns
//    whose inputs changed since the last call and leaves the rest of the
//    incoming buffer valid. See docs/runtime.md for the dirty-set
//    invariants.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datapath/reg_binding.hpp"

namespace ultra::datapath {

/// Which circuit family implements the datapath.
enum class PrefixImpl : std::uint8_t {
  kRing,  // Figure 1: ring of multiplexers, Theta(n) gate delay.
  kTree,  // Figure 4: CSPP tree, Theta(log n) gate delay.
};

/// Caller-owned state for incremental, allocation-free propagation.
///
/// Layout is register-major: cell (station i, register r) lives at
/// [r * n + i], so one register's CSPP column is a contiguous O(n) walk.
/// All mutators are self-diffing — re-asserting the current value is a
/// no-op — and mark the affected register columns dirty:
///  * SetWrite/ClearWrite dirty the written register's column;
///  * SetCommitted dirties the register's column when the value changes;
///  * SetOldest dirties every column that currently has at least one
///    writer (columns with no writers broadcast the committed value from
///    whichever station is oldest, so their outputs cannot change).
///
/// After PropagateIncremental, incoming() is element-for-element identical
/// to what the full Propagate would return for the same inputs — including
/// cells of stations the core considers dead (the differential tests rely
/// on this).
class UsiDatapathState {
 public:
  UsiDatapathState(int num_stations, int num_regs);

  [[nodiscard]] int num_stations() const { return n_; }
  [[nodiscard]] int num_regs() const { return L_; }

  /// Marks station @p station as driving @p value into register @p reg's
  /// ring (its modified/segment bit raised).
  void SetWrite(int station, int reg, const RegBinding& value);

  /// Drops station @p station's write to register @p reg (squash, commit,
  /// or slot reuse). No-op when the cell is not set.
  void ClearWrite(int station, int reg);

  /// Convenience for cores whose stations write at most one register:
  /// asserts the station's (possibly absent) write, clearing any previous
  /// write to a different register. Do not mix with raw SetWrite/ClearWrite
  /// on the same station.
  void SetStationWrite(int station, bool writes, int reg,
                       const RegBinding& value);

  /// Updates the committed register file the oldest station inserts.
  void SetCommitted(int reg, const RegBinding& value);

  /// Moves the oldest-station (forced segment) position.
  void SetOldest(int station);

  /// Forces the next PropagateIncremental to re-run every column.
  void MarkAllDirty();

  [[nodiscard]] int oldest() const { return oldest_; }
  [[nodiscard]] bool has_write(int station, int reg) const {
    return modified_[Cell(station, reg)] != 0;
  }
  [[nodiscard]] const RegBinding& committed(int reg) const {
    return committed_[static_cast<std::size_t>(reg)];
  }
  /// Valid after PropagateIncremental: what the ring delivers to
  /// (station, reg). The oldest station's cell holds the wrap-around value,
  /// which the cores ignore.
  [[nodiscard]] const RegBinding& incoming(int station, int reg) const {
    return incoming_[Cell(station, reg)];
  }

  /// Fault-injection hook (src/fault/): mutable access to a delivered
  /// cell. Deliberately bypasses the dirty tracking — the corruption
  /// models a garbled latch on the ring's output side and persists until
  /// the column is recomputed (naturally, or by a checker resync via
  /// MarkAllDirty + PropagateIncremental, which rebuilds every cell from
  /// the uncorrupted inputs).
  [[nodiscard]] RegBinding& FaultCell(int station, int reg) {
    return incoming_[Cell(station, reg)];
  }

  /// Checkpoint support: serializes the ring's full contents — inputs,
  /// dirty bits, AND the delivered incoming buffer. The incoming cells must
  /// round-trip verbatim (not be recomputed) because a live fault corruption
  /// persists in them until its column is next recomputed; a restore that
  /// rebuilt them would heal the corruption and diverge from the
  /// uninterrupted run. Restore requires matching (num_stations, num_regs).
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  friend class UltrascalarIDatapath;

  [[nodiscard]] std::size_t Cell(int station, int reg) const {
    return static_cast<std::size_t>(reg) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(station);
  }

  int n_;
  int L_;
  int oldest_ = 0;
  std::vector<RegBinding> cell_;        // [r*n + i], valid when modified_.
  std::vector<std::uint8_t> modified_;  // [r*n + i].
  std::vector<RegBinding> incoming_;    // [r*n + i].
  std::vector<RegBinding> committed_;   // [r].
  std::vector<std::uint8_t> dirty_;     // [r].
  std::vector<int> writer_count_;       // [r]: set modified_ bits in column.
  // SetStationWrite shadow: the single register each station last drove.
  std::vector<std::uint8_t> station_writes_;  // [i].
  std::vector<std::uint8_t> station_reg_;     // [i].
};

class UltrascalarIDatapath {
 public:
  /// @p num_stations is n, @p num_regs is L.
  UltrascalarIDatapath(int num_stations, int num_regs,
                       PrefixImpl impl = PrefixImpl::kTree);

  [[nodiscard]] int num_stations() const { return n_; }
  [[nodiscard]] int num_regs() const { return L_; }
  [[nodiscard]] PrefixImpl impl() const { return impl_; }

  /// Combinational propagation for one cycle — the full-recompute
  /// reference path.
  ///
  /// @p outgoing  n*L bindings, indexed [station*L + reg]: what each station
  ///              drives into the ring for each register (its result for the
  ///              destination register; its register-file copy otherwise).
  /// @p modified  n*L flags: the mux select of Figure 1. The oldest
  ///              station's flags are treated as all-set regardless.
  /// @p oldest    index of the oldest station.
  /// @returns     n*L incoming bindings: for station i and register r, the
  ///              binding from the nearest preceding station (cyclically,
  ///              stopping at the oldest) that modified r.
  [[nodiscard]] std::vector<RegBinding> Propagate(
      std::span<const RegBinding> outgoing,
      std::span<const std::uint8_t> modified, int oldest) const;

  /// Incremental, allocation-free propagation: re-evaluates only the dirty
  /// register columns of @p state and clears their dirty bits. When
  /// @p changed_stations is non-empty (size n), position i is OR-ed with 1
  /// whenever any incoming cell of station i changed value this call (the
  /// hybrid datapath uses this to skip clean clusters).
  void PropagateIncremental(UsiDatapathState& state,
                            std::span<std::uint8_t> changed_stations = {})
      const;

  /// Critical-path gate depth of one propagation with the given modified
  /// pattern (measured by evaluating the depth-tracked circuit). The ring
  /// grows as Theta(n); the tree as Theta(log n).
  [[nodiscard]] int MeasureGateDepth(std::span<const std::uint8_t> modified,
                                     int oldest) const;

  /// Worst case over single-writer placements: a value written by the
  /// station just after the oldest must travel the whole ring.
  [[nodiscard]] int WorstCaseGateDepth() const;

 private:
  int n_;
  int L_;
  PrefixImpl impl_;
};

}  // namespace ultra::datapath
