#include "datapath/scheduler.hpp"

#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

std::vector<std::uint8_t> AluScheduler::Grant(
    std::span<const std::uint8_t> requests, int available, int oldest) const {
  assert(requests.size() == static_cast<std::size_t>(n_));
  assert(oldest >= 0 && oldest < n_);
  std::vector<int> counts(static_cast<std::size_t>(n_));
  std::vector<std::uint8_t> segs(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    counts[static_cast<std::size_t>(i)] =
        requests[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  segs[static_cast<std::size_t>(oldest)] = 1;
  // rank[i] = number of requesting stations from the oldest through i-1.
  const auto rank =
      circuit::CsppValues<int, circuit::AddOp>(counts, segs);
  std::vector<std::uint8_t> grants(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    // The oldest station's incoming value wraps around the whole ring;
    // its own rank is zero by definition.
    const int r = i == oldest ? 0 : rank[static_cast<std::size_t>(i)];
    grants[static_cast<std::size_t>(i)] =
        requests[static_cast<std::size_t>(i)] != 0 && r < available;
  }
  return grants;
}

void AluScheduler::GrantInto(std::span<const std::uint8_t> requests,
                             int available, int oldest,
                             std::span<std::uint8_t> grants) const {
  assert(requests.size() == static_cast<std::size_t>(n_));
  assert(grants.size() == static_cast<std::size_t>(n_));
  assert(oldest >= 0 && oldest < n_);
  assert(requests.empty() || grants.data() != requests.data());
  // Walking from the oldest station, the running request count IS the
  // prefix-sum rank each station would receive from the CSPP (the oldest's
  // own rank is zero by definition).
  int rank = 0;
  int i = oldest;
  for (int step = 0; step < n_; ++step) {
    const bool req = requests[static_cast<std::size_t>(i)] != 0;
    grants[static_cast<std::size_t>(i)] = req && rank < available;
    if (req) ++rank;
    i = i + 1 == n_ ? 0 : i + 1;
  }
}

std::vector<std::uint8_t> AluScheduler::GrantAcyclic(
    std::span<const std::uint8_t> requests, int available) {
  std::vector<std::uint8_t> grants(requests.size(), 0);
  GrantAcyclicInto(requests, available, grants);
  return grants;
}

void AluScheduler::GrantAcyclicInto(std::span<const std::uint8_t> requests,
                                    int available,
                                    std::span<std::uint8_t> grants) {
  assert(grants.size() == requests.size());
  assert(requests.empty() || grants.data() != requests.data());
  int rank = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    grants[i] = 0;
    if (requests[i] != 0) {
      grants[i] = rank < available;
      ++rank;
    }
  }
}

int AluScheduler::MeasureGateDepth(std::span<const std::uint8_t> requests,
                                   int oldest) const {
  assert(requests.size() == static_cast<std::size_t>(n_));
  std::vector<circuit::Signal<int>> inputs(static_cast<std::size_t>(n_));
  std::vector<circuit::Signal<bool>> segs(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    inputs[static_cast<std::size_t>(i)] = {
        requests[static_cast<std::size_t>(i)] ? 1 : 0, 0};
    segs[static_cast<std::size_t>(i)] = {i == oldest, 0};
  }
  const auto out =
      impl_ == PrefixImpl::kRing
          ? circuit::CsppRingEvaluate<int, circuit::AddOp>(inputs, segs)
          : circuit::CsppTreeEvaluate<int, circuit::AddOp>(inputs, segs);
  int worst = 0;
  for (const auto& s : out) {
    worst = std::max(worst, s.depth);
  }
  // Comparing the rank against the free-ALU count costs one comparator over
  // log2(n)-bit numbers.
  return worst + circuit::ComparatorDepth(circuit::CeilLog2(n_ + 1));
}

}  // namespace ultra::datapath
