#include "datapath/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

std::vector<std::uint8_t> AluScheduler::Grant(
    std::span<const std::uint8_t> requests, int available, int oldest) const {
  assert(requests.size() == static_cast<std::size_t>(n_));
  assert(oldest >= 0 && oldest < n_);
  std::vector<int> counts(static_cast<std::size_t>(n_));
  std::vector<std::uint8_t> segs(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    counts[static_cast<std::size_t>(i)] =
        requests[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  segs[static_cast<std::size_t>(oldest)] = 1;
  // rank[i] = number of requesting stations from the oldest through i-1.
  const auto rank =
      circuit::CsppValues<int, circuit::AddOp>(counts, segs);
  std::vector<std::uint8_t> grants(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    // The oldest station's incoming value wraps around the whole ring;
    // its own rank is zero by definition.
    const int r = i == oldest ? 0 : rank[static_cast<std::size_t>(i)];
    grants[static_cast<std::size_t>(i)] =
        requests[static_cast<std::size_t>(i)] != 0 && r < available;
  }
  return grants;
}

void AluScheduler::GrantInto(std::span<const std::uint8_t> requests,
                             int available, int oldest,
                             std::span<std::uint8_t> grants) const {
  assert(requests.size() == static_cast<std::size_t>(n_));
  assert(grants.size() == static_cast<std::size_t>(n_));
  assert(oldest >= 0 && oldest < n_);
  assert(requests.empty() || grants.data() != requests.data());
  // Walking from the oldest station, the running request count IS the
  // prefix-sum rank each station would receive from the CSPP (the oldest's
  // own rank is zero by definition).
  int rank = 0;
  int i = oldest;
  for (int step = 0; step < n_; ++step) {
    const bool req = requests[static_cast<std::size_t>(i)] != 0;
    grants[static_cast<std::size_t>(i)] = req && rank < available;
    if (req) ++rank;
    i = i + 1 == n_ ? 0 : i + 1;
  }
}

std::vector<std::uint8_t> AluScheduler::GrantAcyclic(
    std::span<const std::uint8_t> requests, int available) {
  std::vector<std::uint8_t> grants(requests.size(), 0);
  GrantAcyclicInto(requests, available, grants);
  return grants;
}

void AluScheduler::GrantAcyclicInto(std::span<const std::uint8_t> requests,
                                    int available,
                                    std::span<std::uint8_t> grants) {
  assert(grants.size() == requests.size());
  assert(requests.empty() || grants.data() != requests.data());
  int rank = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    grants[i] = 0;
    if (requests[i] != 0) {
      grants[i] = rank < available;
      ++rank;
    }
  }
}

namespace {

/// Grants the lowest @p remaining set lanes of @p requests_chunk (already
/// shifted to lane 0) and returns the grant word; assumes
/// popcount(requests_chunk) > remaining.
std::uint64_t LowestSetBits(std::uint64_t requests_chunk, int remaining) {
  std::uint64_t grants = 0;
  for (int k = 0; k < remaining; ++k) {
    grants |= requests_chunk & (~requests_chunk + 1);
    requests_chunk &= requests_chunk - 1;
  }
  return grants;
}

/// One word-aligned chunk of the oldest-first grant walk: lanes [lo, hi) of
/// @p requests word @p rw. Fully grantable chunks cost one popcount;
/// exhausted chunks clear their lanes wholesale.
void GrantRange(std::uint64_t rw, int lo, int hi, int available, int& rank,
                std::uint64_t& grants_word) {
  const int width = hi - lo;
  const std::uint64_t width_mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  const std::uint64_t req = (rw >> lo) & width_mask;
  const int remaining = available - rank;
  std::uint64_t g;
  if (remaining <= 0) {
    g = 0;
  } else if (std::popcount(req) <= remaining) {
    g = req;
  } else {
    g = LowestSetBits(req, remaining);
  }
  grants_word = (grants_word & ~(width_mask << lo)) | (g << lo);
  rank += std::popcount(req);
}

}  // namespace

void AluScheduler::PackedGrantInto(const PackedBits& requests, int available,
                                   int oldest, PackedBits& grants) const {
  const int n = n_;
  assert(requests.size() == n && grants.size() == n);
  assert(oldest >= 0 && oldest < n);
  assert(&grants != &requests);
  int rank = 0;
  int pos = oldest;
  int processed = 0;
  while (processed < n) {
    const int w = pos >> 6;
    const int lo = pos & 63;
    int hi = std::min(64, n - (w << 6));
    hi = std::min(hi, lo + (n - processed));
    GrantRange(requests.word(w), lo, hi, available, rank, grants.word(w));
    processed += hi - lo;
    pos = (w << 6) + hi;
    if (pos >= n) pos = 0;
  }
}

void AluScheduler::PackedGrantAcyclicInto(const PackedBits& requests,
                                          int available, PackedBits& grants) {
  const int n = requests.size();
  assert(grants.size() == n);
  assert(&grants != &requests);
  int rank = 0;
  for (int w = 0; w < requests.num_words(); ++w) {
    const int hi = std::min(64, n - (w << 6));
    GrantRange(requests.word(w), 0, hi, available, rank, grants.word(w));
  }
}

int AluScheduler::MeasureGateDepth(std::span<const std::uint8_t> requests,
                                   int oldest) const {
  assert(requests.size() == static_cast<std::size_t>(n_));
  std::vector<circuit::Signal<int>> inputs(static_cast<std::size_t>(n_));
  std::vector<circuit::Signal<bool>> segs(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    inputs[static_cast<std::size_t>(i)] = {
        requests[static_cast<std::size_t>(i)] ? 1 : 0, 0};
    segs[static_cast<std::size_t>(i)] = {i == oldest, 0};
  }
  const auto out =
      impl_ == PrefixImpl::kRing
          ? circuit::CsppRingEvaluate<int, circuit::AddOp>(inputs, segs)
          : circuit::CsppTreeEvaluate<int, circuit::AddOp>(inputs, segs);
  int worst = 0;
  for (const auto& s : out) {
    worst = std::max(worst, s.depth);
  }
  // Comparing the rank against the free-ALU count costs one comparator over
  // log2(n)-bit numbers.
  return worst + circuit::ComparatorDepth(circuit::CeilLog2(n_ + 1));
}

}  // namespace ultra::datapath
