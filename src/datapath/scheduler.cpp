#include "datapath/scheduler.hpp"

#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

std::vector<std::uint8_t> AluScheduler::Grant(
    std::span<const std::uint8_t> requests, int available, int oldest) const {
  assert(requests.size() == static_cast<std::size_t>(n_));
  assert(oldest >= 0 && oldest < n_);
  std::vector<int> counts(static_cast<std::size_t>(n_));
  std::vector<std::uint8_t> segs(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    counts[static_cast<std::size_t>(i)] =
        requests[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  segs[static_cast<std::size_t>(oldest)] = 1;
  // rank[i] = number of requesting stations from the oldest through i-1.
  const auto rank =
      circuit::CsppValues<int, circuit::AddOp>(counts, segs);
  std::vector<std::uint8_t> grants(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < n_; ++i) {
    // The oldest station's incoming value wraps around the whole ring;
    // its own rank is zero by definition.
    const int r = i == oldest ? 0 : rank[static_cast<std::size_t>(i)];
    grants[static_cast<std::size_t>(i)] =
        requests[static_cast<std::size_t>(i)] != 0 && r < available;
  }
  return grants;
}

std::vector<std::uint8_t> AluScheduler::GrantAcyclic(
    std::span<const std::uint8_t> requests, int available) {
  std::vector<std::uint8_t> grants(requests.size(), 0);
  int rank = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i] != 0) {
      grants[i] = rank < available;
      ++rank;
    }
  }
  return grants;
}

int AluScheduler::MeasureGateDepth(std::span<const std::uint8_t> requests,
                                   int oldest) const {
  assert(requests.size() == static_cast<std::size_t>(n_));
  std::vector<circuit::Signal<int>> inputs(static_cast<std::size_t>(n_));
  std::vector<circuit::Signal<bool>> segs(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    inputs[static_cast<std::size_t>(i)] = {
        requests[static_cast<std::size_t>(i)] ? 1 : 0, 0};
    segs[static_cast<std::size_t>(i)] = {i == oldest, 0};
  }
  const auto out =
      impl_ == PrefixImpl::kRing
          ? circuit::CsppRingEvaluate<int, circuit::AddOp>(inputs, segs)
          : circuit::CsppTreeEvaluate<int, circuit::AddOp>(inputs, segs);
  int worst = 0;
  for (const auto& s : out) {
    worst = std::max(worst, s.depth);
  }
  // Comparing the rank against the free-ALU count costs one comparator over
  // log2(n)-bit numbers.
  return worst + circuit::ComparatorDepth(circuit::CeilLog2(n_ + 1));
}

}  // namespace ultra::datapath
