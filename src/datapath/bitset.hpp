// Bit-packed boolean lanes for the word-parallel datapath evaluators.
//
// The sequencing circuits of Figure 5 and the scheduler of Memo 2 are
// 1-bit-per-station parallel prefixes; simulated one byte per station they
// cost O(n) scalar ops per cycle. PackedBits stores those per-station
// booleans 64 to a uint64_t so the same prefixes evaluate 64 lanes per word
// op: a word's AND-prefix is a trailing-ones count, its OR-prefix a
// trailing-zeros count, and oldest-first ALU granting a popcount walk. The
// packed sequencing/scheduler entry points (sequencing.hpp, scheduler.hpp)
// and the cores' DatapathEval::kPacked fast paths build on this header.
//
// Invariant: bits at positions >= size() ("tail bits") are always zero --
// every mutator maintains this, so whole-word reductions never see ghost
// lanes.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#if defined(ULTRA_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace ultra::datapath {

/// Number of 64-bit words needed for @p bits bit lanes.
[[nodiscard]] constexpr int PackedWordCount(int bits) {
  return (bits + 63) >> 6;
}

/// Mask selecting the live lanes of the last word of an @p bits-lane array
/// (all-ones when @p bits is a multiple of 64).
[[nodiscard]] constexpr std::uint64_t PackedTailMask(int bits) {
  const int rem = bits & 63;
  return rem == 0 ? ~0ULL : ((1ULL << rem) - 1);
}

/// A fixed-size array of single-bit lanes packed 64 per uint64_t word.
class PackedBits {
 public:
  PackedBits() = default;
  explicit PackedBits(int bits) { Assign(bits); }

  /// Resizes to @p bits lanes, all clear.
  void Assign(int bits) {
    assert(bits >= 0);
    bits_ = bits;
    words_.assign(static_cast<std::size_t>(PackedWordCount(bits)), 0);
  }

  [[nodiscard]] int size() const { return bits_; }
  [[nodiscard]] int num_words() const {
    return static_cast<int>(words_.size());
  }

  [[nodiscard]] bool Test(int i) const {
    assert(i >= 0 && i < bits_);
    return (words_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1U;
  }
  void Set(int i) {
    assert(i >= 0 && i < bits_);
    words_[static_cast<std::size_t>(i >> 6)] |= 1ULL << (i & 63);
  }
  void Clear(int i) {
    assert(i >= 0 && i < bits_);
    words_[static_cast<std::size_t>(i >> 6)] &= ~(1ULL << (i & 63));
  }
  void SetTo(int i, bool value) { value ? Set(i) : Clear(i); }

  void ClearAll() { words_.assign(words_.size(), 0); }
  void SetAll() {
    if (bits_ == 0) return;
    words_.assign(words_.size(), ~0ULL);
    words_.back() &= PackedTailMask(bits_);
  }

  [[nodiscard]] std::uint64_t word(int w) const {
    return words_[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] std::uint64_t& word(int w) {
    return words_[static_cast<std::size_t>(w)];
  }
  /// Raw word storage, for the multi-word block kernels below.
  [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }
  [[nodiscard]] std::uint64_t* words() { return words_.data(); }

  [[nodiscard]] bool AnySet() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  [[nodiscard]] int PopCount() const {
    int count = 0;
    for (const std::uint64_t w : words_) count += std::popcount(w);
    return count;
  }

  friend bool operator==(const PackedBits&, const PackedBits&) = default;

 private:
  int bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Calls fn(i) for every set lane of @p bits, in increasing lane order.
template <typename Fn>
void ForEachSetBit(const PackedBits& bits, Fn&& fn) {
  for (int w = 0; w < bits.num_words(); ++w) {
    std::uint64_t word = bits.word(w);
    while (word != 0) {
      const int b = std::countr_zero(word);
      fn((w << 6) + b);
      word &= word - 1;
    }
  }
}

/// Calls fn(i) for every set lane of (a.word(w) | b.word(w)), increasing
/// order. The operands must be the same size.
template <typename Fn>
void ForEachSetBitOr(const PackedBits& a, const PackedBits& b, Fn&& fn) {
  assert(a.size() == b.size());
  for (int w = 0; w < a.num_words(); ++w) {
    std::uint64_t word = a.word(w) | b.word(w);
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn((w << 6) + bit);
      word &= word - 1;
    }
  }
}

namespace packed_internal {

// Multi-word block kernels. Each processes kBlockWords words per step so the
// plain-C++ loop auto-vectorizes; under ULTRA_HAVE_AVX2 a block is one
// 256-bit op. Word counts are tiny (n=1024 lanes is 16 words) so the scalar
// remainder loop is never hot. The kernels operate on raw word arrays; the
// PackedBits entry points below re-apply the tail mask on complement forms
// so the tail-bits-zero invariant survives.
inline constexpr int kBlockWords = 4;

#if defined(ULTRA_HAVE_AVX2)
inline void BlockAnd(const std::uint64_t* a, const std::uint64_t* b,
                     std::uint64_t* dst) {
  _mm256_storeu_si256(
      reinterpret_cast<__m256i*>(dst),
      _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b))));
}
inline void BlockAndNot(const std::uint64_t* a, const std::uint64_t* b,
                        std::uint64_t* dst) {
  // _mm256_andnot_si256(x, y) = ~x & y, so pass b first for a & ~b.
  _mm256_storeu_si256(
      reinterpret_cast<__m256i*>(dst),
      _mm256_andnot_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a))));
}
inline void BlockOr(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst) {
  _mm256_storeu_si256(
      reinterpret_cast<__m256i*>(dst),
      _mm256_or_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b))));
}
inline void BlockOrNot(const std::uint64_t* a, const std::uint64_t* b,
                       std::uint64_t* dst) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  _mm256_storeu_si256(
      reinterpret_cast<__m256i*>(dst),
      _mm256_or_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)),
          _mm256_xor_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b)),
              ones)));
}
#else
inline void BlockAnd(const std::uint64_t* a, const std::uint64_t* b,
                     std::uint64_t* dst) {
  for (int i = 0; i < kBlockWords; ++i) dst[i] = a[i] & b[i];
}
inline void BlockAndNot(const std::uint64_t* a, const std::uint64_t* b,
                        std::uint64_t* dst) {
  for (int i = 0; i < kBlockWords; ++i) dst[i] = a[i] & ~b[i];
}
inline void BlockOr(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* dst) {
  for (int i = 0; i < kBlockWords; ++i) dst[i] = a[i] | b[i];
}
inline void BlockOrNot(const std::uint64_t* a, const std::uint64_t* b,
                       std::uint64_t* dst) {
  for (int i = 0; i < kBlockWords; ++i) dst[i] = a[i] | ~b[i];
}
#endif

/// Runs @p block over full blocks of @p nw words and @p scalar over the
/// remainder.
template <typename BlockFn, typename ScalarFn>
inline void ForEachBlock(int nw, BlockFn&& block, ScalarFn&& scalar) {
  int w = 0;
  for (; w + kBlockWords <= nw; w += kBlockWords) block(w);
  for (; w < nw; ++w) scalar(w);
}

}  // namespace packed_internal

/// out = a & b, word-parallel. All operands must be the same size (out may
/// alias a or b).
inline void PackedAndInto(const PackedBits& a, const PackedBits& b,
                          PackedBits& out) {
  assert(a.size() == b.size() && a.size() == out.size());
  packed_internal::ForEachBlock(
      a.num_words(),
      [&](int w) { packed_internal::BlockAnd(a.words() + w, b.words() + w, out.words() + w); },
      [&](int w) { out.word(w) = a.word(w) & b.word(w); });
}

/// out = a & ~b (set difference), word-parallel.
inline void PackedAndNotInto(const PackedBits& a, const PackedBits& b,
                             PackedBits& out) {
  assert(a.size() == b.size() && a.size() == out.size());
  packed_internal::ForEachBlock(
      a.num_words(),
      [&](int w) { packed_internal::BlockAndNot(a.words() + w, b.words() + w, out.words() + w); },
      [&](int w) { out.word(w) = a.word(w) & ~b.word(w); });
}

/// out = a | b, word-parallel.
inline void PackedOrInto(const PackedBits& a, const PackedBits& b,
                         PackedBits& out) {
  assert(a.size() == b.size() && a.size() == out.size());
  packed_internal::ForEachBlock(
      a.num_words(),
      [&](int w) { packed_internal::BlockOr(a.words() + w, b.words() + w, out.words() + w); },
      [&](int w) { out.word(w) = a.word(w) | b.word(w); });
}

/// out = a | ~b (e.g. the Figure 5 store-ordering condition
/// "finished | ~is_store"), word-parallel, tail-masked so the complement
/// introduces no ghost lanes.
inline void PackedOrNotInto(const PackedBits& a, const PackedBits& b,
                            PackedBits& out) {
  assert(a.size() == b.size() && a.size() == out.size());
  packed_internal::ForEachBlock(
      a.num_words(),
      [&](int w) { packed_internal::BlockOrNot(a.words() + w, b.words() + w, out.words() + w); },
      [&](int w) { out.word(w) = a.word(w) | ~b.word(w); });
  if (out.num_words() > 0) {
    out.word(out.num_words() - 1) &= PackedTailMask(out.size());
  }
}

/// dst |= src, word-parallel.
inline void PackedOrAccumulate(PackedBits& dst, const PackedBits& src) {
  PackedOrInto(dst, src, dst);
}

/// popcount(a & b) without materializing the intersection.
[[nodiscard]] inline int PackedAndPopCount(const PackedBits& a,
                                           const PackedBits& b) {
  assert(a.size() == b.size());
  int count = 0;
  for (int w = 0; w < a.num_words(); ++w) {
    count += std::popcount(a.word(w) & b.word(w));
  }
  return count;
}

/// Shifts every lane down by @p shift positions (lane i takes lane
/// i + shift's value; the top @p shift lanes clear). Used by the hybrid
/// core's cluster deallocation, which retires C positions at once.
inline void PackedShiftDown(PackedBits& bits, int shift) {
  assert(shift >= 0);
  if (shift == 0 || bits.size() == 0) return;
  if (shift >= bits.size()) {
    bits.ClearAll();
    return;
  }
  const int nw = bits.num_words();
  const int ws = shift >> 6;
  const int bs = shift & 63;
  if (bs == 0) {
    for (int w = 0; w + ws < nw; ++w) bits.word(w) = bits.word(w + ws);
  } else {
    for (int w = 0; w + ws < nw; ++w) {
      std::uint64_t v = bits.word(w + ws) >> bs;
      if (w + ws + 1 < nw) v |= bits.word(w + ws + 1) << (64 - bs);
      bits.word(w) = v;
    }
  }
  for (int w = nw - ws; w < nw; ++w) bits.word(w) = 0;
}

/// Index of the highest set lane in [lo, hi), or -1 when none. Word-at-a-time
/// scan from the top; the building block of the nearest-preceding-writer
/// searches in packed_resolve.hpp.
[[nodiscard]] inline int HighestSetInRange(const PackedBits& bits, int lo,
                                           int hi) {
  assert(lo >= 0 && hi <= bits.size());
  if (lo >= hi) return -1;
  const int wl = lo >> 6;
  const int wh = (hi - 1) >> 6;
  for (int w = wh; w >= wl; --w) {
    std::uint64_t word = bits.word(w);
    if (w == wh) {
      const int rem = hi - (w << 6);
      if (rem < 64) word &= (1ULL << rem) - 1;
    }
    if (w == wl) word &= ~((1ULL << (lo & 63)) - 1);
    if (word != 0) return (w << 6) + 63 - std::countl_zero(word);
  }
  return -1;
}

/// Index of the lowest set lane in [lo, hi), or -1 when none. Twin of
/// HighestSetInRange for the nearest-following-writer searches.
[[nodiscard]] inline int LowestSetInRange(const PackedBits& bits, int lo,
                                          int hi) {
  assert(lo >= 0 && hi <= bits.size());
  if (lo >= hi) return -1;
  const int wl = lo >> 6;
  const int wh = (hi - 1) >> 6;
  for (int w = wl; w <= wh; ++w) {
    std::uint64_t word = bits.word(w);
    if (w == wl) word &= ~((1ULL << (lo & 63)) - 1);
    if (w == wh) {
      const int rem = hi - (w << 6);
      if (rem < 64) word &= (1ULL << rem) - 1;
    }
    if (word != 0) return (w << 6) + std::countr_zero(word);
  }
  return -1;
}

/// dst |= (src restricted to lanes [lo, hi)). Touches only the words the
/// range spans, so marking a short span costs O(span), not O(n).
inline void PackedOrRangeInto(const PackedBits& src, int lo, int hi,
                              PackedBits& dst) {
  assert(src.size() == dst.size());
  assert(lo >= 0 && hi <= src.size());
  if (lo >= hi) return;
  const int wl = lo >> 6;
  const int wh = (hi - 1) >> 6;
  for (int w = wl; w <= wh; ++w) {
    std::uint64_t word = src.word(w);
    if (w == wl) word &= ~((1ULL << (lo & 63)) - 1);
    if (w == wh) {
      const int rem = hi - (w << 6);
      if (rem < 64) word &= (1ULL << rem) - 1;
    }
    dst.word(w) |= word;
  }
}

namespace packed_internal {

/// Exclusive AND-prefix over lanes [lo, hi) of @p cond with carry-in
/// @p carry: writes the delivered prefix into the same lane span of
/// @p out_word and advances @p carry to include every lane of the range.
inline void PrefixAndRange(std::uint64_t cond, int lo, int hi, bool& carry,
                           std::uint64_t& out_word) {
  const int width = hi - lo;
  const std::uint64_t width_mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  const std::uint64_t cs = (cond >> lo) & width_mask;
  const int t = std::countr_one(cs);  // Lanes before the first unsatisfied.
  std::uint64_t o = 0;
  if (carry) {
    // Delivered lanes 0..t are true (lane k sees lanes 0..k-1 only).
    o = t >= 63 ? ~0ULL : ((1ULL << (t + 1)) - 1);
    o &= width_mask;
  }
  out_word = (out_word & ~(width_mask << lo)) | (o << lo);
  carry = carry && t >= width;
}

/// OR twin of PrefixAndRange.
inline void PrefixOrRange(std::uint64_t cond, int lo, int hi, bool& carry,
                          std::uint64_t& out_word) {
  const int width = hi - lo;
  const std::uint64_t width_mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  const std::uint64_t cs = (cond >> lo) & width_mask;
  std::uint64_t o;
  if (carry) {
    o = width_mask;
  } else {
    const int s = std::countr_zero(cs);  // First satisfied lane.
    o = s >= width ? 0
                   : (width_mask & ~(s >= 63 ? ~0ULL : ((1ULL << (s + 1)) - 1)));
  }
  out_word = (out_word & ~(width_mask << lo)) | (o << lo);
  carry = carry || cs != 0;
}

}  // namespace packed_internal

}  // namespace ultra::datapath
