// Bit-packed boolean lanes for the word-parallel datapath evaluators.
//
// The sequencing circuits of Figure 5 and the scheduler of Memo 2 are
// 1-bit-per-station parallel prefixes; simulated one byte per station they
// cost O(n) scalar ops per cycle. PackedBits stores those per-station
// booleans 64 to a uint64_t so the same prefixes evaluate 64 lanes per word
// op: a word's AND-prefix is a trailing-ones count, its OR-prefix a
// trailing-zeros count, and oldest-first ALU granting a popcount walk. The
// packed sequencing/scheduler entry points (sequencing.hpp, scheduler.hpp)
// and the cores' DatapathEval::kPacked fast paths build on this header.
//
// Invariant: bits at positions >= size() ("tail bits") are always zero --
// every mutator maintains this, so whole-word reductions never see ghost
// lanes.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ultra::datapath {

/// Number of 64-bit words needed for @p bits bit lanes.
[[nodiscard]] constexpr int PackedWordCount(int bits) {
  return (bits + 63) >> 6;
}

/// Mask selecting the live lanes of the last word of an @p bits-lane array
/// (all-ones when @p bits is a multiple of 64).
[[nodiscard]] constexpr std::uint64_t PackedTailMask(int bits) {
  const int rem = bits & 63;
  return rem == 0 ? ~0ULL : ((1ULL << rem) - 1);
}

/// A fixed-size array of single-bit lanes packed 64 per uint64_t word.
class PackedBits {
 public:
  PackedBits() = default;
  explicit PackedBits(int bits) { Assign(bits); }

  /// Resizes to @p bits lanes, all clear.
  void Assign(int bits) {
    assert(bits >= 0);
    bits_ = bits;
    words_.assign(static_cast<std::size_t>(PackedWordCount(bits)), 0);
  }

  [[nodiscard]] int size() const { return bits_; }
  [[nodiscard]] int num_words() const {
    return static_cast<int>(words_.size());
  }

  [[nodiscard]] bool Test(int i) const {
    assert(i >= 0 && i < bits_);
    return (words_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1U;
  }
  void Set(int i) {
    assert(i >= 0 && i < bits_);
    words_[static_cast<std::size_t>(i >> 6)] |= 1ULL << (i & 63);
  }
  void Clear(int i) {
    assert(i >= 0 && i < bits_);
    words_[static_cast<std::size_t>(i >> 6)] &= ~(1ULL << (i & 63));
  }
  void SetTo(int i, bool value) { value ? Set(i) : Clear(i); }

  void ClearAll() { words_.assign(words_.size(), 0); }
  void SetAll() {
    if (bits_ == 0) return;
    words_.assign(words_.size(), ~0ULL);
    words_.back() &= PackedTailMask(bits_);
  }

  [[nodiscard]] std::uint64_t word(int w) const {
    return words_[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] std::uint64_t& word(int w) {
    return words_[static_cast<std::size_t>(w)];
  }

  [[nodiscard]] bool AnySet() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  [[nodiscard]] int PopCount() const {
    int count = 0;
    for (const std::uint64_t w : words_) count += std::popcount(w);
    return count;
  }

  friend bool operator==(const PackedBits&, const PackedBits&) = default;

 private:
  int bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Calls fn(i) for every set lane of @p bits, in increasing lane order.
template <typename Fn>
void ForEachSetBit(const PackedBits& bits, Fn&& fn) {
  for (int w = 0; w < bits.num_words(); ++w) {
    std::uint64_t word = bits.word(w);
    while (word != 0) {
      const int b = std::countr_zero(word);
      fn((w << 6) + b);
      word &= word - 1;
    }
  }
}

/// Calls fn(i) for every set lane of (a.word(w) | b.word(w)), increasing
/// order. The operands must be the same size.
template <typename Fn>
void ForEachSetBitOr(const PackedBits& a, const PackedBits& b, Fn&& fn) {
  assert(a.size() == b.size());
  for (int w = 0; w < a.num_words(); ++w) {
    std::uint64_t word = a.word(w) | b.word(w);
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn((w << 6) + bit);
      word &= word - 1;
    }
  }
}

namespace packed_internal {

/// Exclusive AND-prefix over lanes [lo, hi) of @p cond with carry-in
/// @p carry: writes the delivered prefix into the same lane span of
/// @p out_word and advances @p carry to include every lane of the range.
inline void PrefixAndRange(std::uint64_t cond, int lo, int hi, bool& carry,
                           std::uint64_t& out_word) {
  const int width = hi - lo;
  const std::uint64_t width_mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  const std::uint64_t cs = (cond >> lo) & width_mask;
  const int t = std::countr_one(cs);  // Lanes before the first unsatisfied.
  std::uint64_t o = 0;
  if (carry) {
    // Delivered lanes 0..t are true (lane k sees lanes 0..k-1 only).
    o = t >= 63 ? ~0ULL : ((1ULL << (t + 1)) - 1);
    o &= width_mask;
  }
  out_word = (out_word & ~(width_mask << lo)) | (o << lo);
  carry = carry && t >= width;
}

/// OR twin of PrefixAndRange.
inline void PrefixOrRange(std::uint64_t cond, int lo, int hi, bool& carry,
                          std::uint64_t& out_word) {
  const int width = hi - lo;
  const std::uint64_t width_mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  const std::uint64_t cs = (cond >> lo) & width_mask;
  std::uint64_t o;
  if (carry) {
    o = width_mask;
  } else {
    const int s = std::countr_zero(cs);  // First satisfied lane.
    o = s >= width ? 0
                   : (width_mask & ~(s >= 63 ? ~0ULL : ((1ULL << (s + 1)) - 1)));
  }
  out_word = (out_word & ~(width_mask << lo)) | (o << lo);
  carry = carry || cs != 0;
}

}  // namespace packed_internal

}  // namespace ultra::datapath
