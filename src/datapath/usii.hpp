// The Ultrascalar II register datapath (Sections 4-5, Figures 7 and 8).
//
// Instead of passing the whole register file to every station, the
// Ultrascalar II routes only the argument and result registers. Stations
// send their argument register *numbers* down their columns; each station's
// result (number, value, ready) runs along its row; a comparator at every
// crosspoint detects a match, and each column returns the value of the
// nearest (most recent) matching row, falling back to the initial register
// file at the bottom. A final set of L columns computes the outgoing
// register file. The datapath does not wrap around: the window refills as a
// batch once every station has finished (Section 4).
//
// Two implementations:
//  * kGrid (Figure 7): broadcast wires and linear column searches,
//    Theta(n + L) gate delay.
//  * kMeshOfTrees (Figure 8): fan-out trees plus segmented reduction trees,
//    Theta(log(n + L)) gate delay.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datapath/reg_binding.hpp"

namespace ultra::datapath {

enum class UsiiImpl : std::uint8_t { kGrid, kMeshOfTrees };

/// Result of one combinational propagation.
struct UsiiPropagation {
  std::vector<ResolvedArgs> args;      // Per station.
  std::vector<RegBinding> final_regs;  // L outgoing register values.
};

class UltrascalarIIDatapath {
 public:
  UltrascalarIIDatapath(int num_stations, int num_regs,
                        UsiiImpl impl = UsiiImpl::kMeshOfTrees);

  [[nodiscard]] int num_stations() const { return n_; }
  [[nodiscard]] int num_regs() const { return L_; }
  [[nodiscard]] UsiiImpl impl() const { return impl_; }

  /// Combinational propagation: resolves every station's arguments against
  /// the nearest preceding writer (or @p regfile) and computes the outgoing
  /// register file (last writer per register, or @p regfile).
  ///
  /// A station with writes==false contributes nothing to any column (e.g. a
  /// squashed or empty station).
  ///
  /// This is the full-recompute reference path: it allocates its result and
  /// resolves each column with an O(n) backward search.
  [[nodiscard]] UsiiPropagation Propagate(
      std::span<const RegBinding> regfile,
      std::span<const StationRequest> stations) const;

  /// Same function into a caller-owned buffer, in O(n + L) total: a single
  /// program-order sweep keeps the running last-writer binding per register
  /// in @p out.final_regs (seeded from @p regfile), resolving each
  /// station's arguments in O(1). Allocation-free once @p out has warmed up
  /// to this datapath's dimensions.
  void PropagateInto(std::span<const RegBinding> regfile,
                     std::span<const StationRequest> stations,
                     UsiiPropagation& out) const;

  /// Critical-path gate depth of one propagation for the given requests,
  /// modelling broadcasts as buffer chains (grid) or fan-out trees (mesh).
  [[nodiscard]] int MeasureGateDepth(
      std::span<const StationRequest> stations) const;

  /// Depth with every station reading two registers and writing one -- the
  /// configuration that exercises the longest column.
  [[nodiscard]] int WorstCaseGateDepth() const;

 private:
  int n_;
  int L_;
  UsiiImpl impl_;
};

}  // namespace ultra::datapath
