// Register bindings: the (value, ready-bit) pairs carried by every
// Ultrascalar register datapath.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"

namespace ultra::datapath {

/// One logical register's in-flight state: its latest value and whether the
/// instruction producing it has computed yet (the paper's "ready bit").
struct RegBinding {
  isa::Word value = 0;
  bool ready = false;

  friend bool operator==(const RegBinding&, const RegBinding&) = default;
};

/// What one execution station presents to a register datapath each cycle.
/// Mirrors the paper's constraint that an instruction reads at most two
/// registers and writes at most one.
struct StationRequest {
  bool reads1 = false;
  isa::RegId arg1 = 0;
  bool reads2 = false;
  isa::RegId arg2 = 0;
  bool writes = false;
  isa::RegId dest = 0;
  RegBinding result;  // Valid when writes; ready once the ALU has finished.

  friend bool operator==(const StationRequest&, const StationRequest&) =
      default;
};

/// What a register datapath hands back to one station: its two resolved
/// argument bindings.
struct ResolvedArgs {
  RegBinding arg1;
  RegBinding arg2;

  friend bool operator==(const ResolvedArgs&, const ResolvedArgs&) = default;
};

}  // namespace ultra::datapath
