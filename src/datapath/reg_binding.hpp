// Register bindings: the (value, ready-bit) pairs carried by every
// Ultrascalar register datapath.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"
#include "persist/serial.hpp"

namespace ultra::datapath {

/// One logical register's in-flight state: its latest value and whether the
/// instruction producing it has computed yet (the paper's "ready bit").
struct RegBinding {
  isa::Word value = 0;
  bool ready = false;

  friend bool operator==(const RegBinding&, const RegBinding&) = default;
};

/// What one execution station presents to a register datapath each cycle.
/// Mirrors the paper's constraint that an instruction reads at most two
/// registers and writes at most one.
struct StationRequest {
  bool reads1 = false;
  isa::RegId arg1 = 0;
  bool reads2 = false;
  isa::RegId arg2 = 0;
  bool writes = false;
  isa::RegId dest = 0;
  RegBinding result;  // Valid when writes; ready once the ALU has finished.

  friend bool operator==(const StationRequest&, const StationRequest&) =
      default;
};

/// What a register datapath hands back to one station: its two resolved
/// argument bindings.
struct ResolvedArgs {
  RegBinding arg1;
  RegBinding arg2;

  friend bool operator==(const ResolvedArgs&, const ResolvedArgs&) = default;
};

/// Checkpoint codecs shared by the datapath state classes and the cores.
inline void Save(persist::Encoder& e, const RegBinding& b) {
  e.U32(b.value);
  e.Bool(b.ready);
}
inline void Restore(persist::Decoder& d, RegBinding& b) {
  b.value = d.U32();
  b.ready = d.Bool();
}
inline void Save(persist::Encoder& e, const StationRequest& s) {
  e.Bool(s.reads1);
  e.U8(s.arg1);
  e.Bool(s.reads2);
  e.U8(s.arg2);
  e.Bool(s.writes);
  e.U8(s.dest);
  Save(e, s.result);
}
inline void Restore(persist::Decoder& d, StationRequest& s) {
  s.reads1 = d.Bool();
  s.arg1 = d.U8();
  s.reads2 = d.Bool();
  s.arg2 = d.U8();
  s.writes = d.Bool();
  s.dest = d.U8();
  Restore(d, s.result);
}
inline void Save(persist::Encoder& e, const ResolvedArgs& a) {
  Save(e, a.arg1);
  Save(e, a.arg2);
}
inline void Restore(persist::Decoder& d, ResolvedArgs& a) {
  Restore(d, a.arg1);
  Restore(d, a.arg2);
}

}  // namespace ultra::datapath
