// Per-register writer/reader occupancy rows for the event-driven packed
// cores (DatapathEval::kPacked fast tier).
//
// The scalable datapaths (UsiDatapathState / UltrascalarIIDatapath /
// HybridDatapathState) answer "which value of register r arrives at station
// i?" by propagating bindings through CSPP / mesh-of-trees circuitry every
// cycle -- O(n) work even when nothing changed. PackedWriterMap stores the
// same dependence structure as L PackedBits rows over the n station slots
// (one writers row and one readers row per logical register), so the answer
// becomes a word-scan: the nearest preceding writer of r is the highest set
// bit of writers(r) below i, and "who must re-resolve when r's producer
// changes?" is a single word-OR of readers(r) into a stale mask. Rows are
// mutated point-wise at the cores' event sites (fill, squash, commit,
// result delivery) and never rebuilt wholesale, which is what lets the
// packed cycle loops skip the per-cycle O(n) propagation entirely.
//
// Slot indices are whatever the owning core uses for its masks: ring
// positions for UltrascalarI, station slots for UltrascalarII, window
// positions for the hybrid (which shifts the rows down by C on cluster
// deallocation via ShiftDown).
#pragma once

#include <cassert>
#include <vector>

#include "datapath/bitset.hpp"

namespace ultra::datapath {

class PackedWriterMap {
 public:
  PackedWriterMap() = default;
  PackedWriterMap(int slots, int regs) { Assign(slots, regs); }

  /// Resizes to @p regs rows of @p slots lanes, all clear.
  void Assign(int slots, int regs) {
    assert(slots >= 0 && regs >= 0);
    slots_ = slots;
    writers_.assign(static_cast<std::size_t>(regs), PackedBits(slots));
    readers_.assign(static_cast<std::size_t>(regs), PackedBits(slots));
  }

  [[nodiscard]] int slots() const { return slots_; }
  [[nodiscard]] int regs() const { return static_cast<int>(writers_.size()); }

  void SetWriter(int slot, int r) { writers_[idx(r)].Set(slot); }
  void ClearWriter(int slot, int r) { writers_[idx(r)].Clear(slot); }
  void AddReader(int slot, int r) { readers_[idx(r)].Set(slot); }
  void ClearReader(int slot, int r) { readers_[idx(r)].Clear(slot); }

  [[nodiscard]] const PackedBits& writers(int r) const {
    return writers_[idx(r)];
  }
  [[nodiscard]] const PackedBits& readers(int r) const {
    return readers_[idx(r)];
  }

  /// dst |= readers(r): marks every current reader of @p r stale in one
  /// word-OR per 64 slots.
  void OrReadersInto(int r, PackedBits& dst) const {
    PackedOrAccumulate(dst, readers_[idx(r)]);
  }

  /// dst |= readers(r) restricted to the cyclic slot range [lo, hi) that
  /// walks forward from @p lo with wraparound (empty when lo == hi). When a
  /// producer of r changes, only the readers between it and the *next*
  /// writer of r see a different source; marking just that span keeps the
  /// stale set proportional to the true dependence fan-out instead of every
  /// occurrence of r in the window.
  void OrReadersInCyclicRange(int r, int lo, int hi, PackedBits& dst) const {
    const PackedBits& rd = readers_[idx(r)];
    if (lo == hi) return;
    if (lo < hi) {
      PackedOrRangeInto(rd, lo, hi, dst);
    } else {
      PackedOrRangeInto(rd, lo, slots_, dst);
      PackedOrRangeInto(rd, 0, hi, dst);
    }
  }

  /// Nearest writer of @p r strictly following slot @p j in the cyclic
  /// program order that starts at @p oldest, or -1 when @p j has no younger
  /// in-flight writer of r. The affected-reader span after a producer
  /// change is (j, NearestWriterAfter(j)] -- the following writer itself is
  /// included because a station both reading and writing r resolves its
  /// read against the *previous* writer.
  [[nodiscard]] int NearestWriterAfter(int j, int r, int oldest) const {
    const PackedBits& w = writers_[idx(r)];
    if (j >= oldest) {
      const int k = LowestSetInRange(w, j + 1, slots_);
      if (k >= 0) return k;
      return LowestSetInRange(w, 0, oldest);
    }
    return LowestSetInRange(w, j + 1, oldest);
  }

  /// Nearest writer of @p r strictly preceding slot @p i in the cyclic
  /// order that starts at @p oldest (UltrascalarI's ring: the stations
  /// preceding i are [oldest..i) walking forward with wraparound). Returns
  /// -1 when no in-flight writer precedes i -- the reader then takes the
  /// committed register file value.
  [[nodiscard]] int NearestWriterBefore(int i, int r, int oldest) const {
    const PackedBits& w = writers_[idx(r)];
    if (i == oldest) return -1;
    if (i > oldest) return HighestSetInRange(w, oldest, i);
    const int j = HighestSetInRange(w, 0, i);  // Wrapped segment, closest.
    if (j >= 0) return j;
    return HighestSetInRange(w, oldest, slots_);
  }

  /// Acyclic variant: nearest writer of @p r in slots [0, i). Slot order is
  /// program order for UltrascalarII and position order for the hybrid.
  [[nodiscard]] int NearestWriterBeforeAcyclic(int i, int r) const {
    return HighestSetInRange(writers_[idx(r)], 0, i);
  }

  /// Highest-slot writer of @p r, or -1. UltrascalarII's batch retire takes
  /// each register's final value from its last writer.
  [[nodiscard]] int HighestWriter(int r) const {
    const PackedBits& w = writers_[idx(r)];
    return HighestSetInRange(w, 0, slots_);
  }

  /// Clears every row (UltrascalarII resets the map wholesale at batch
  /// retire).
  void ClearAllRows() {
    for (PackedBits& w : writers_) w.ClearAll();
    for (PackedBits& rd : readers_) rd.ClearAll();
  }

  /// Shifts every row down by @p shift slots (hybrid cluster dealloc: the
  /// oldest C positions retire and every live position renumbers down).
  void ShiftDown(int shift) {
    for (PackedBits& w : writers_) PackedShiftDown(w, shift);
    for (PackedBits& rd : readers_) PackedShiftDown(rd, shift);
  }

 private:
  [[nodiscard]] std::size_t idx(int r) const {
    assert(r >= 0 && r < regs());
    return static_cast<std::size_t>(r);
  }

  int slots_ = 0;
  std::vector<PackedBits> writers_;
  std::vector<PackedBits> readers_;
};

}  // namespace ultra::datapath
