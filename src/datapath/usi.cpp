#include "datapath/usi.hpp"

#include <algorithm>
#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

using circuit::Signal;

// --- UsiDatapathState --------------------------------------------------------

UsiDatapathState::UsiDatapathState(int num_stations, int num_regs)
    : n_(num_stations), L_(num_regs) {
  assert(n_ >= 1);
  assert(L_ >= 1 && L_ <= isa::kMaxLogicalRegisters);
  const std::size_t cells =
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(L_);
  cell_.resize(cells);
  modified_.assign(cells, 0);
  incoming_.resize(cells);
  committed_.resize(static_cast<std::size_t>(L_));
  dirty_.assign(static_cast<std::size_t>(L_), 1);  // Nothing computed yet.
  writer_count_.assign(static_cast<std::size_t>(L_), 0);
  station_writes_.assign(static_cast<std::size_t>(n_), 0);
  station_reg_.assign(static_cast<std::size_t>(n_), 0);
}

void UsiDatapathState::SetWrite(int station, int reg,
                                const RegBinding& value) {
  const std::size_t idx = Cell(station, reg);
  if (!modified_[idx]) {
    modified_[idx] = 1;
    ++writer_count_[static_cast<std::size_t>(reg)];
    cell_[idx] = value;
    dirty_[static_cast<std::size_t>(reg)] = 1;
  } else if (cell_[idx] != value) {
    cell_[idx] = value;
    dirty_[static_cast<std::size_t>(reg)] = 1;
  }
}

void UsiDatapathState::ClearWrite(int station, int reg) {
  const std::size_t idx = Cell(station, reg);
  if (modified_[idx]) {
    modified_[idx] = 0;
    --writer_count_[static_cast<std::size_t>(reg)];
    dirty_[static_cast<std::size_t>(reg)] = 1;
  }
}

void UsiDatapathState::SetStationWrite(int station, bool writes, int reg,
                                       const RegBinding& value) {
  const std::size_t s = static_cast<std::size_t>(station);
  if (station_writes_[s] &&
      (!writes || static_cast<int>(station_reg_[s]) != reg)) {
    ClearWrite(station, static_cast<int>(station_reg_[s]));
    station_writes_[s] = 0;
  }
  if (writes) {
    SetWrite(station, reg, value);
    station_writes_[s] = 1;
    station_reg_[s] = static_cast<std::uint8_t>(reg);
  }
}

void UsiDatapathState::SetCommitted(int reg, const RegBinding& value) {
  if (committed_[static_cast<std::size_t>(reg)] != value) {
    committed_[static_cast<std::size_t>(reg)] = value;
    dirty_[static_cast<std::size_t>(reg)] = 1;
  }
}

void UsiDatapathState::SetOldest(int station) {
  if (station == oldest_) return;
  oldest_ = station;
  // Moving the forced segment can only change columns that have a writer:
  // a writer-free column broadcasts the committed value to every station
  // regardless of where the oldest sits.
  for (int r = 0; r < L_; ++r) {
    if (writer_count_[static_cast<std::size_t>(r)] > 0) {
      dirty_[static_cast<std::size_t>(r)] = 1;
    }
  }
}

void UsiDatapathState::MarkAllDirty() {
  std::fill(dirty_.begin(), dirty_.end(), 1);
}

// --- UltrascalarIDatapath ----------------------------------------------------

UltrascalarIDatapath::UltrascalarIDatapath(int num_stations, int num_regs,
                                           PrefixImpl impl)
    : n_(num_stations), L_(num_regs), impl_(impl) {
  assert(n_ >= 1);
  assert(L_ >= 1 && L_ <= isa::kMaxLogicalRegisters);
}

std::vector<RegBinding> UltrascalarIDatapath::Propagate(
    std::span<const RegBinding> outgoing,
    std::span<const std::uint8_t> modified, int oldest) const {
  assert(outgoing.size() == static_cast<std::size_t>(n_) * L_);
  assert(modified.size() == outgoing.size());
  assert(oldest >= 0 && oldest < n_);

  std::vector<RegBinding> incoming(outgoing.size());
  std::vector<RegBinding> ring(static_cast<std::size_t>(n_));
  std::vector<std::uint8_t> segs(static_cast<std::size_t>(n_));
  // One cyclic segmented prefix per logical register. The ring and tree
  // circuits compute the same function; the functional model uses the O(n)
  // value walk (CsppValues) for both.
  for (int r = 0; r < L_; ++r) {
    for (int i = 0; i < n_; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i) * L_ + r;
      ring[static_cast<std::size_t>(i)] = outgoing[idx];
      segs[static_cast<std::size_t>(i)] = modified[idx] != 0 || i == oldest;
    }
    const auto out = circuit::CsppValues<RegBinding, circuit::PassFirstOp>(
        ring, segs, circuit::PassFirstOp{});
    for (int i = 0; i < n_; ++i) {
      incoming[static_cast<std::size_t>(i) * L_ + r] =
          out[static_cast<std::size_t>(i)];
    }
  }
  return incoming;
}

void UltrascalarIDatapath::PropagateIncremental(
    UsiDatapathState& state, std::span<std::uint8_t> changed_stations) const {
  assert(state.n_ == n_ && state.L_ == L_);
  assert(changed_stations.empty() ||
         changed_stations.size() == static_cast<std::size_t>(n_));
  const std::size_t n = static_cast<std::size_t>(n_);
  const int oldest = state.oldest_;
  for (int r = 0; r < L_; ++r) {
    if (!state.dirty_[static_cast<std::size_t>(r)]) continue;
    state.dirty_[static_cast<std::size_t>(r)] = 0;
    const std::size_t base = static_cast<std::size_t>(r) * n;
    const RegBinding* cell = state.cell_.data() + base;
    const std::uint8_t* modified = state.modified_.data() + base;
    RegBinding* incoming = state.incoming_.data() + base;
    const RegBinding committed = state.committed_[static_cast<std::size_t>(r)];
    // The CSPP column under PassFirstOp: the carry changes only at segment
    // positions (the value never folds), so the walk starts at the oldest
    // station's forced segment and just tracks the latest writer. The
    // oldest station drives its own result when it writes r, else the
    // committed file — exactly what the station-major reference builds.
    RegBinding carry{};
    std::size_t i = static_cast<std::size_t>(oldest);
    for (int step = 0; step < n_; ++step) {
      if (modified[i]) {
        carry = cell[i];
      } else if (static_cast<int>(i) == oldest) {
        carry = committed;
      }
      std::size_t next = i + 1;
      if (next == n) next = 0;
      if (incoming[next] != carry) {
        incoming[next] = carry;
        if (!changed_stations.empty()) changed_stations[next] = 1;
      }
      i = next;
    }
  }
}

int UltrascalarIDatapath::MeasureGateDepth(
    std::span<const std::uint8_t> modified, int oldest) const {
  assert(modified.size() == static_cast<std::size_t>(n_) * L_);
  int worst = 0;
  std::vector<Signal<RegBinding>> ring(static_cast<std::size_t>(n_));
  std::vector<Signal<bool>> segs(static_cast<std::size_t>(n_));
  for (int r = 0; r < L_; ++r) {
    for (int i = 0; i < n_; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i) * L_ + r;
      ring[static_cast<std::size_t>(i)] = {RegBinding{}, 0};
      segs[static_cast<std::size_t>(i)] = {modified[idx] != 0 || i == oldest,
                                           0};
    }
    const auto out =
        impl_ == PrefixImpl::kRing
            ? circuit::CsppRingEvaluate<RegBinding, circuit::PassFirstOp>(
                  ring, segs)
            : circuit::CsppTreeEvaluate<RegBinding, circuit::PassFirstOp>(
                  ring, segs);
    for (const auto& s : out) worst = std::max(worst, s.depth);
  }
  return worst;
}

int UltrascalarIDatapath::WorstCaseGateDepth() const {
  // A single writer immediately after the oldest station: its value must
  // reach the station just before it, traversing the whole ring. One
  // register suffices; all registers have identical circuits.
  std::vector<std::uint8_t> modified(static_cast<std::size_t>(n_) * L_, 0);
  const int oldest = 0;
  if (n_ > 1) {
    modified[static_cast<std::size_t>(1) * L_ + 0] = 1;
  }
  // Depth of register 0's circuit only (others are all-unmodified and
  // cheaper or equal).
  std::vector<Signal<RegBinding>> ring(static_cast<std::size_t>(n_));
  std::vector<Signal<bool>> segs(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    segs[static_cast<std::size_t>(i)] = {
        modified[static_cast<std::size_t>(i) * L_] != 0 || i == oldest, 0};
  }
  const auto out =
      impl_ == PrefixImpl::kRing
          ? circuit::CsppRingEvaluate<RegBinding, circuit::PassFirstOp>(ring,
                                                                        segs)
          : circuit::CsppTreeEvaluate<RegBinding, circuit::PassFirstOp>(ring,
                                                                        segs);
  int worst = 0;
  for (const auto& s : out) worst = std::max(worst, s.depth);
  return worst;
}

void UsiDatapathState::SaveState(persist::Encoder& e) const {
  e.I32(n_);
  e.I32(L_);
  e.I32(oldest_);
  for (const RegBinding& b : cell_) Save(e, b);
  for (const std::uint8_t m : modified_) e.U8(m);
  for (const RegBinding& b : incoming_) Save(e, b);
  for (const RegBinding& b : committed_) Save(e, b);
  for (const std::uint8_t f : dirty_) e.U8(f);
  for (const int w : writer_count_) e.I32(w);
  for (const std::uint8_t w : station_writes_) e.U8(w);
  for (const std::uint8_t r : station_reg_) e.U8(r);
}

void UsiDatapathState::RestoreState(persist::Decoder& d) {
  if (d.I32() != n_ || d.I32() != L_) {
    throw persist::FormatError("USI datapath geometry mismatch");
  }
  oldest_ = d.I32();
  for (RegBinding& b : cell_) Restore(d, b);
  for (std::uint8_t& m : modified_) m = d.U8();
  for (RegBinding& b : incoming_) Restore(d, b);
  for (RegBinding& b : committed_) Restore(d, b);
  for (std::uint8_t& f : dirty_) f = d.U8();
  for (int& w : writer_count_) w = d.I32();
  for (std::uint8_t& w : station_writes_) w = d.U8();
  for (std::uint8_t& r : station_reg_) r = d.U8();
}

}  // namespace ultra::datapath
