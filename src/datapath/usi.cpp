#include "datapath/usi.hpp"

#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

using circuit::Signal;

UltrascalarIDatapath::UltrascalarIDatapath(int num_stations, int num_regs,
                                           PrefixImpl impl)
    : n_(num_stations), L_(num_regs), impl_(impl) {
  assert(n_ >= 1);
  assert(L_ >= 1 && L_ <= isa::kMaxLogicalRegisters);
}

std::vector<RegBinding> UltrascalarIDatapath::Propagate(
    std::span<const RegBinding> outgoing,
    std::span<const std::uint8_t> modified, int oldest) const {
  assert(outgoing.size() == static_cast<std::size_t>(n_) * L_);
  assert(modified.size() == outgoing.size());
  assert(oldest >= 0 && oldest < n_);

  std::vector<RegBinding> incoming(outgoing.size());
  std::vector<RegBinding> ring(static_cast<std::size_t>(n_));
  std::vector<std::uint8_t> segs(static_cast<std::size_t>(n_));
  // One cyclic segmented prefix per logical register. The ring and tree
  // circuits compute the same function; the functional model uses the O(n)
  // value walk (CsppValues) for both.
  for (int r = 0; r < L_; ++r) {
    for (int i = 0; i < n_; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i) * L_ + r;
      ring[static_cast<std::size_t>(i)] = outgoing[idx];
      segs[static_cast<std::size_t>(i)] = modified[idx] != 0 || i == oldest;
    }
    const auto out = circuit::CsppValues<RegBinding, circuit::PassFirstOp>(
        ring, segs, circuit::PassFirstOp{});
    for (int i = 0; i < n_; ++i) {
      incoming[static_cast<std::size_t>(i) * L_ + r] =
          out[static_cast<std::size_t>(i)];
    }
  }
  return incoming;
}

int UltrascalarIDatapath::MeasureGateDepth(
    std::span<const std::uint8_t> modified, int oldest) const {
  assert(modified.size() == static_cast<std::size_t>(n_) * L_);
  int worst = 0;
  std::vector<Signal<RegBinding>> ring(static_cast<std::size_t>(n_));
  std::vector<Signal<bool>> segs(static_cast<std::size_t>(n_));
  for (int r = 0; r < L_; ++r) {
    for (int i = 0; i < n_; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i) * L_ + r;
      ring[static_cast<std::size_t>(i)] = {RegBinding{}, 0};
      segs[static_cast<std::size_t>(i)] = {modified[idx] != 0 || i == oldest,
                                           0};
    }
    const auto out =
        impl_ == PrefixImpl::kRing
            ? circuit::CsppRingEvaluate<RegBinding, circuit::PassFirstOp>(
                  ring, segs)
            : circuit::CsppTreeEvaluate<RegBinding, circuit::PassFirstOp>(
                  ring, segs);
    for (const auto& s : out) worst = std::max(worst, s.depth);
  }
  return worst;
}

int UltrascalarIDatapath::WorstCaseGateDepth() const {
  // A single writer immediately after the oldest station: its value must
  // reach the station just before it, traversing the whole ring. One
  // register suffices; all registers have identical circuits.
  std::vector<std::uint8_t> modified(static_cast<std::size_t>(n_) * L_, 0);
  const int oldest = 0;
  if (n_ > 1) {
    modified[static_cast<std::size_t>(1) * L_ + 0] = 1;
  }
  // Depth of register 0's circuit only (others are all-unmodified and
  // cheaper or equal).
  std::vector<Signal<RegBinding>> ring(static_cast<std::size_t>(n_));
  std::vector<Signal<bool>> segs(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    segs[static_cast<std::size_t>(i)] = {
        modified[static_cast<std::size_t>(i) * L_] != 0 || i == oldest, 0};
  }
  const auto out =
      impl_ == PrefixImpl::kRing
          ? circuit::CsppRingEvaluate<RegBinding, circuit::PassFirstOp>(ring,
                                                                        segs)
          : circuit::CsppTreeEvaluate<RegBinding, circuit::PassFirstOp>(ring,
                                                                        segs);
  int worst = 0;
  for (const auto& s : out) worst = std::max(worst, s.depth);
  return worst;
}

}  // namespace ultra::datapath
