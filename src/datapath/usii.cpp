#include "datapath/usii.hpp"

#include <cassert>

#include "circuit/circuit.hpp"

namespace ultra::datapath {

using circuit::CeilLog2;
using circuit::ComparatorDepth;
using circuit::FanoutDepth;
using circuit::Signal;

UltrascalarIIDatapath::UltrascalarIIDatapath(int num_stations, int num_regs,
                                             UsiiImpl impl)
    : n_(num_stations), L_(num_regs), impl_(impl) {
  assert(n_ >= 1);
  assert(L_ >= 1 && L_ <= isa::kMaxLogicalRegisters);
}

UsiiPropagation UltrascalarIIDatapath::Propagate(
    std::span<const RegBinding> regfile,
    std::span<const StationRequest> stations) const {
  assert(regfile.size() == static_cast<std::size_t>(L_));
  assert(stations.size() == static_cast<std::size_t>(n_));

  UsiiPropagation out;
  out.args.resize(static_cast<std::size_t>(n_));

  const auto resolve = [&](int station, isa::RegId reg) -> RegBinding {
    for (int j = station - 1; j >= 0; --j) {
      const auto& s = stations[static_cast<std::size_t>(j)];
      if (s.writes && s.dest == reg) return s.result;
    }
    return regfile[reg];
  };

  for (int i = 0; i < n_; ++i) {
    const auto& s = stations[static_cast<std::size_t>(i)];
    if (s.reads1) out.args[static_cast<std::size_t>(i)].arg1 = resolve(i, s.arg1);
    if (s.reads2) out.args[static_cast<std::size_t>(i)].arg2 = resolve(i, s.arg2);
  }

  out.final_regs.resize(static_cast<std::size_t>(L_));
  for (int r = 0; r < L_; ++r) {
    out.final_regs[static_cast<std::size_t>(r)] =
        resolve(n_, static_cast<isa::RegId>(r));
  }
  return out;
}

void UltrascalarIIDatapath::PropagateInto(
    std::span<const RegBinding> regfile,
    std::span<const StationRequest> stations, UsiiPropagation& out) const {
  assert(regfile.size() == static_cast<std::size_t>(L_));
  assert(stations.size() == static_cast<std::size_t>(n_));

  out.args.resize(static_cast<std::size_t>(n_));
  // final_regs doubles as the running last-writer map of the forward sweep:
  // before station i it holds, per register, the nearest preceding writer's
  // binding (or the initial register file). After the sweep it is exactly
  // the outgoing register file.
  out.final_regs.assign(regfile.begin(), regfile.end());

  for (int i = 0; i < n_; ++i) {
    const auto& s = stations[static_cast<std::size_t>(i)];
    auto& args = out.args[static_cast<std::size_t>(i)];
    args.arg1 = s.reads1 ? out.final_regs[s.arg1] : RegBinding{};
    args.arg2 = s.reads2 ? out.final_regs[s.arg2] : RegBinding{};
    if (s.writes) out.final_regs[s.dest] = s.result;
  }
}

namespace {

/// Gate depth of one column that searches @p num_station_rows station rows
/// plus L register-file rows for its argument register.
int ColumnDepth(UsiiImpl impl, int n, int L, int num_station_rows) {
  const int reg_number_bits = std::max(1, CeilLog2(L));
  const int rows = L + num_station_rows;
  // Build the column structurally: one signal per row, segment = comparator
  // match. The exact match pattern does not change the critical path (every
  // row contributes a mux level in the chain; the tree is balanced), so we
  // use an arbitrary single match at the register file.
  std::vector<Signal<RegBinding>> inputs(static_cast<std::size_t>(rows));
  std::vector<Signal<bool>> segs(static_cast<std::size_t>(rows));
  const int row_broadcast_width = 2 * n + L - 2;  // Columns a row can feed.
  const int column_height = rows;
  for (int row = 0; row < rows; ++row) {
    const bool is_regfile_row = row < L;
    int value_depth = 0;
    int seg_depth = ComparatorDepth(reg_number_bits);
    if (impl == UsiiImpl::kMeshOfTrees) {
      // Result bindings fan out across the row; the argument register number
      // fans out down the column before the comparators fire.
      if (!is_regfile_row) value_depth += FanoutDepth(row_broadcast_width);
      seg_depth += FanoutDepth(column_height);
    }
    inputs[static_cast<std::size_t>(row)] = {RegBinding{}, value_depth};
    segs[static_cast<std::size_t>(row)] = {row == 0, seg_depth};
  }
  const Signal<RegBinding> initial{RegBinding{}, 0};
  // We need the fold over the whole column (a segmented reduction); append a
  // sentinel row and read the prefix delivered to it.
  inputs.push_back({RegBinding{}, 0});
  segs.push_back({false, 0});
  const auto out =
      impl == UsiiImpl::kGrid
          ? circuit::SppChainEvaluate<RegBinding, circuit::PassFirstOp>(
                initial, inputs, segs)
          : circuit::SppTreeEvaluate<RegBinding, circuit::PassFirstOp>(
                initial, inputs, segs);
  return out.back().depth;
}

}  // namespace

int UltrascalarIIDatapath::MeasureGateDepth(
    std::span<const StationRequest> stations) const {
  assert(stations.size() == static_cast<std::size_t>(n_));
  int worst = 0;
  for (int i = 0; i < n_; ++i) {
    const auto& s = stations[static_cast<std::size_t>(i)];
    const int cols = (s.reads1 ? 1 : 0) + (s.reads2 ? 1 : 0);
    if (cols > 0) {
      worst = std::max(worst, ColumnDepth(impl_, n_, L_, i));
    }
  }
  // The L outgoing register-file columns search every station row.
  worst = std::max(worst, ColumnDepth(impl_, n_, L_, n_));
  return worst;
}

int UltrascalarIIDatapath::WorstCaseGateDepth() const {
  return ColumnDepth(impl_, n_, L_, n_);
}

}  // namespace ultra::datapath
