// Blocking C++ client for the sweep service: one connection, strict
// request/reply (see protocol.hpp). This is the library under the sweepctl
// CLI and the service tests; anything a client can do goes through here.
//
// Error model: connection and framing failures throw std::runtime_error /
// persist::FormatError. Service-level refusals (overload, shutdown, invalid
// submission, unknown request id) are *values* in the reply structs, not
// exceptions — an overloaded service is a normal condition a caller handles
// (retry with backoff, shed load), not a programming error.
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"

namespace ultra::service {

/// Deadlines for one client connection. 0 = block forever (the historical
/// behavior). A breached deadline surfaces as TimeoutError, distinct from
/// the runtime_error a dead daemon produces, so callers can tell a *hung*
/// daemon (kill it, page someone) from an absent one (start it).
struct ClientOptions {
  /// Applies to connect() and every frame write (SO_SNDTIMEO: on Linux the
  /// send timeout also bounds the connect handshake).
  double connect_timeout_seconds = 0.0;
  /// Applies to every frame read (SO_RCVTIMEO). Note Wait() replies
  /// legitimately take as long as the sweep runs — size this to the
  /// longest request you will wait on, or wait in a retry loop.
  double recv_timeout_seconds = 0.0;
};

class SweepClient {
 public:
  /// Connects to the daemon's unix-domain socket. Throws std::runtime_error
  /// when the socket is absent or refuses (no daemon running), and
  /// TimeoutError when options.connect_timeout_seconds expires first.
  explicit SweepClient(const std::string& socket_path,
                       const ClientOptions& options = {});
  ~SweepClient();
  SweepClient(const SweepClient&) = delete;
  SweepClient& operator=(const SweepClient&) = delete;
  SweepClient(SweepClient&& other) noexcept;
  SweepClient& operator=(SweepClient&& other) noexcept;

  /// Submits a sweep. Inspect reply.status: kAccepted carries the request
  /// id to Wait()/Cancel() on; kOverloaded is the bounded queue saying
  /// "retry later".
  [[nodiscard]] SubmitReply Submit(const SubmitRequest& request);

  /// Blocks until the request reaches a terminal state (the server holds
  /// the connection open) and returns it. With want_csv/want_json the exact
  /// bytes of the server-side exports ride back in the reply.
  [[nodiscard]] WaitReply Wait(const WaitRequest& request);

  /// The /metrics-style status text surface.
  [[nodiscard]] std::string Status();

  [[nodiscard]] CancelReply Cancel(std::uint64_t request_id);

  /// Asks the daemon to stop: drain = finish in-flight points and journal
  /// the rest; hard = cancel everything (unfinished work re-runs on the
  /// next start either way, minus what drain managed to finish).
  void Shutdown(bool drain);

 private:
  Frame Call(MsgType request, const persist::Encoder& payload,
             MsgType expected_reply);

  int fd_ = -1;
};

}  // namespace ultra::service
