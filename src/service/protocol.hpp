// Wire protocol of the sweep service: length-prefixed, CRC-framed messages
// over a unix-domain stream socket.
//
// Framing reuses the persist primitives (Encoder/Decoder/Crc32) and mirrors
// the journal frame shape, so one set of corruption-tolerance rules covers
// both the on-disk and on-wire formats:
//
//   u32 magic "USVC" | u32 message type | u32 payload length |
//   u32 CRC-32 of (type, length, payload) | payload bytes
//
// The conversation is strict request/reply: a client writes one request
// frame and reads exactly one reply frame. kWait is the only slow reply —
// the server holds the connection until the request completes (or the
// client vanishes). A frame that fails validation (bad magic, oversize
// length, CRC mismatch) poisons the connection: the server drops it rather
// than guess at resynchronization, and the client sees EOF.
//
// Payload codecs throw persist::FormatError on malformed input — a hostile
// or truncated payload must never crash the daemon (the deserializer fuzz
// in tests/fuzz_test.cpp covers these codecs too).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "persist/serial.hpp"
#include "runtime/sweep_runner.hpp"

namespace ultra::service {

inline constexpr std::uint32_t kFrameMagic = 0x43565355;  // "USVC" LE.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on one frame's payload. A corrupt or hostile length field
/// must translate into a FormatError, never an unbounded allocation.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB.

enum class MsgType : std::uint32_t {
  kSubmit = 1,
  kSubmitReply = 2,
  kStatus = 3,
  kStatusReply = 4,
  kWait = 5,
  kWaitReply = 6,
  kCancel = 7,
  kCancelReply = 8,
  kShutdown = 9,
  kShutdownReply = 10,
};

struct Frame {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// A socket read or write exceeded the peer's configured deadline
/// (SO_RCVTIMEO / SO_SNDTIMEO). Distinct from generic I/O failure so a
/// client can tell "the daemon is hung" from "the daemon is gone" and react
/// differently (retry vs rebuild the connection).
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes one framed message to @p fd (send with MSG_NOSIGNAL: a vanished
/// peer yields EPIPE, not a process-killing SIGPIPE). Throws
/// std::runtime_error on I/O failure or oversize payload.
void WriteFrame(int fd, std::uint32_t type,
                std::span<const std::uint8_t> payload);

/// Reads one framed message. Returns std::nullopt on clean EOF before the
/// first header byte (peer closed between messages). Throws
/// persist::FormatError on bad magic, oversize length, CRC mismatch, or
/// EOF mid-frame, and std::runtime_error on I/O errors.
[[nodiscard]] std::optional<Frame> ReadFrame(int fd);

// ---------------------------------------------------------------------------
// Messages.

/// A sweep submission. Export names are bare file names resolved inside the
/// server's state directory (never client paths — a client must not be able
/// to make the daemon write outside its state dir); empty = no export.
struct SubmitRequest {
  std::vector<runtime::SweepPoint> points;
  /// Wall-clock budget for the whole request, counted from admission;
  /// <= 0 = none. On expiry the request is cancelled cooperatively.
  double deadline_seconds = 0.0;
  /// Detached requests survive their client's disconnect (and, being
  /// journaled, a daemon crash). Attached requests are cancelled the
  /// moment their connection dies, so orphaned work never hogs the pool.
  bool detach = false;
  std::string tag;        // Free-form client label, shown in status.
  std::string csv_name;   // Server-side CSV export file name.
  std::string json_name;  // Server-side JSON export file name.
};
void EncodeSubmitRequest(persist::Encoder& e, const SubmitRequest& req);
[[nodiscard]] SubmitRequest DecodeSubmitRequest(persist::Decoder& d);

enum class AdmitStatus : std::uint8_t {
  kAccepted = 0,
  /// The bounded admission queue is full. Explicit backpressure: the
  /// client retries (with backoff) or sheds the work; the server never
  /// buffers unboundedly.
  kOverloaded = 1,
  kShuttingDown = 2,
  kInvalid = 3,  // Malformed submission (empty, oversize, bad export name).
};
[[nodiscard]] std::string_view AdmitStatusName(AdmitStatus status);

struct SubmitReply {
  AdmitStatus status = AdmitStatus::kInvalid;
  std::uint64_t request_id = 0;   // Valid when accepted.
  std::uint64_t queue_depth = 0;  // Depth after this admission decision.
  std::string message;            // Human-readable detail on rejection.
};
void EncodeSubmitReply(persist::Encoder& e, const SubmitReply& reply);
[[nodiscard]] SubmitReply DecodeSubmitReply(persist::Decoder& d);

/// kStatus has an empty payload; the reply is the /metrics-style text
/// surface (see SweepService::MetricsText).
struct StatusReply {
  std::string text;
};
void EncodeStatusReply(persist::Encoder& e, const StatusReply& reply);
[[nodiscard]] StatusReply DecodeStatusReply(persist::Decoder& d);

struct WaitRequest {
  std::uint64_t request_id = 0;
  /// Ship the rendered CSV / JSON artifact back in the reply (exact bytes
  /// of the server-side export) so a client can keep a local copy without
  /// access to the server's state directory.
  bool want_csv = false;
  bool want_json = false;
};
void EncodeWaitRequest(persist::Encoder& e, const WaitRequest& req);
[[nodiscard]] WaitRequest DecodeWaitRequest(persist::Decoder& d);

enum class RequestState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kCancelled = 3,
  kDeadlineExceeded = 4,
  kFailed = 5,   // Infrastructure failure (e.g. journal I/O), not a bad point.
  kUnknown = 6,  // No such request id (or pruned long ago).
};
[[nodiscard]] std::string_view RequestStateName(RequestState state);

struct WaitReply {
  RequestState state = RequestState::kUnknown;
  std::uint64_t ok_points = 0;
  std::uint64_t failed_points = 0;
  std::string csv_text;   // Filled when want_csv and results are retained.
  std::string json_text;  // Filled when want_json and results are retained.
  std::string message;
};
void EncodeWaitReply(persist::Encoder& e, const WaitReply& reply);
[[nodiscard]] WaitReply DecodeWaitReply(persist::Decoder& d);

struct CancelRequest {
  std::uint64_t request_id = 0;
};
void EncodeCancelRequest(persist::Encoder& e, const CancelRequest& req);
[[nodiscard]] CancelRequest DecodeCancelRequest(persist::Decoder& d);

struct CancelReply {
  bool cancelled = false;  // False: already finished or unknown id.
  std::string message;
};
void EncodeCancelReply(persist::Encoder& e, const CancelReply& reply);
[[nodiscard]] CancelReply DecodeCancelReply(persist::Decoder& d);

struct ShutdownRequest {
  /// Drain first (finish in-flight points, journal the rest) or stop hard.
  bool drain = true;
};
void EncodeShutdownRequest(persist::Encoder& e, const ShutdownRequest& req);
[[nodiscard]] ShutdownRequest DecodeShutdownRequest(persist::Decoder& d);

}  // namespace ultra::service
