#include "service/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/config_codec.hpp"
#include "failpoint/io.hpp"
#include "isa/program_codec.hpp"

namespace ultra::service {

namespace {

void SendAll(int fd, const std::uint8_t* data, std::size_t size) {
  auto& io = failpoint::ActiveIo();
  std::size_t off = 0;
  while (off < size) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
    // not as a SIGPIPE that kills the daemon.
    const ssize_t n =
        io.Send("protocol.send", fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TimeoutError("socket write timed out");
      }
      throw std::runtime_error(std::string("socket write failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Reads exactly @p size bytes. Returns false on EOF at offset 0 (clean
/// close between frames); throws on EOF mid-buffer or I/O error, and
/// TimeoutError when the fd has SO_RCVTIMEO set and the deadline passes.
bool RecvExact(int fd, std::uint8_t* data, std::size_t size) {
  auto& io = failpoint::ActiveIo();
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = io.Recv("protocol.recv", fd, data + off, size - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TimeoutError("socket read timed out");
      }
      throw std::runtime_error(std::string("socket read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0) return false;
      throw persist::FormatError("connection closed mid-frame");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint32_t U32At(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void WriteFrame(int fd, std::uint32_t type,
                std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error("frame payload exceeds kMaxFramePayload");
  }
  persist::Encoder crc_input;
  crc_input.U32(type);
  crc_input.U32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> crc_bytes = crc_input.Take();
  crc_bytes.insert(crc_bytes.end(), payload.begin(), payload.end());

  persist::Encoder header;
  header.U32(kFrameMagic);
  header.U32(type);
  header.U32(static_cast<std::uint32_t>(payload.size()));
  header.U32(persist::Crc32(crc_bytes));
  std::vector<std::uint8_t> bytes = header.Take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  SendAll(fd, bytes.data(), bytes.size());
}

std::optional<Frame> ReadFrame(int fd) {
  std::uint8_t header[16];
  if (!RecvExact(fd, header, sizeof header)) return std::nullopt;
  if (U32At(header) != kFrameMagic) {
    throw persist::FormatError("bad frame magic");
  }
  Frame frame;
  frame.type = U32At(header + 4);
  const std::uint32_t length = U32At(header + 8);
  const std::uint32_t stored_crc = U32At(header + 12);
  if (length > kMaxFramePayload) {
    throw persist::FormatError("frame payload length exceeds limit");
  }
  frame.payload.resize(length);
  if (length != 0 && !RecvExact(fd, frame.payload.data(), length)) {
    throw persist::FormatError("connection closed mid-frame");
  }
  persist::Encoder crc_input;
  crc_input.U32(frame.type);
  crc_input.U32(length);
  std::vector<std::uint8_t> crc_bytes = crc_input.Take();
  crc_bytes.insert(crc_bytes.end(), frame.payload.begin(),
                   frame.payload.end());
  if (persist::Crc32(crc_bytes) != stored_crc) {
    throw persist::FormatError("frame CRC mismatch");
  }
  return frame;
}

// ---------------------------------------------------------------------------
// Message codecs.

void EncodeSubmitRequest(persist::Encoder& e, const SubmitRequest& req) {
  e.U32(kProtocolVersion);
  e.F64(req.deadline_seconds);
  e.Bool(req.detach);
  e.Str(req.tag);
  e.Str(req.csv_name);
  e.Str(req.json_name);
  e.U32(static_cast<std::uint32_t>(req.points.size()));
  for (const runtime::SweepPoint& p : req.points) {
    e.U8(static_cast<std::uint8_t>(p.kind));
    e.Str(p.workload);
    core::EncodeCoreConfig(e, p.config);
    if (p.program == nullptr) {
      throw std::invalid_argument("SubmitRequest point has a null program");
    }
    isa::EncodeProgram(e, *p.program);
  }
}

SubmitRequest DecodeSubmitRequest(persist::Decoder& d) {
  const std::uint32_t version = d.U32();
  if (version != kProtocolVersion) {
    throw persist::FormatError("unsupported protocol version");
  }
  SubmitRequest req;
  req.deadline_seconds = d.F64();
  req.detach = d.Bool();
  req.tag = d.Str();
  req.csv_name = d.Str();
  req.json_name = d.Str();
  const std::uint32_t n = d.U32();
  // Every point needs at least a kind byte and three length prefixes, so a
  // hostile count cannot force a huge up-front reservation.
  req.points.reserve(std::min<std::size_t>(n, d.remaining()));
  for (std::uint32_t i = 0; i < n; ++i) {
    runtime::SweepPoint p;
    p.kind = static_cast<core::ProcessorKind>(d.U8());
    p.workload = d.Str();
    p.config = core::DecodeCoreConfig(d);
    p.program =
        std::make_shared<const isa::Program>(isa::DecodeProgram(d));
    req.points.push_back(std::move(p));
  }
  return req;
}

std::string_view AdmitStatusName(AdmitStatus status) {
  switch (status) {
    case AdmitStatus::kAccepted:
      return "accepted";
    case AdmitStatus::kOverloaded:
      return "overloaded";
    case AdmitStatus::kShuttingDown:
      return "shutting_down";
    case AdmitStatus::kInvalid:
      return "invalid";
  }
  return "?";
}

void EncodeSubmitReply(persist::Encoder& e, const SubmitReply& reply) {
  e.U8(static_cast<std::uint8_t>(reply.status));
  e.U64(reply.request_id);
  e.U64(reply.queue_depth);
  e.Str(reply.message);
}

SubmitReply DecodeSubmitReply(persist::Decoder& d) {
  SubmitReply reply;
  const std::uint8_t status = d.U8();
  if (status > static_cast<std::uint8_t>(AdmitStatus::kInvalid)) {
    throw persist::FormatError("corrupt admit status");
  }
  reply.status = static_cast<AdmitStatus>(status);
  reply.request_id = d.U64();
  reply.queue_depth = d.U64();
  reply.message = d.Str();
  return reply;
}

void EncodeStatusReply(persist::Encoder& e, const StatusReply& reply) {
  e.Str(reply.text);
}

StatusReply DecodeStatusReply(persist::Decoder& d) {
  StatusReply reply;
  reply.text = d.Str();
  return reply;
}

void EncodeWaitRequest(persist::Encoder& e, const WaitRequest& req) {
  e.U64(req.request_id);
  e.Bool(req.want_csv);
  e.Bool(req.want_json);
}

WaitRequest DecodeWaitRequest(persist::Decoder& d) {
  WaitRequest req;
  req.request_id = d.U64();
  req.want_csv = d.Bool();
  req.want_json = d.Bool();
  return req;
}

std::string_view RequestStateName(RequestState state) {
  switch (state) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kRunning:
      return "running";
    case RequestState::kDone:
      return "done";
    case RequestState::kCancelled:
      return "cancelled";
    case RequestState::kDeadlineExceeded:
      return "deadline_exceeded";
    case RequestState::kFailed:
      return "failed";
    case RequestState::kUnknown:
      return "unknown";
  }
  return "?";
}

void EncodeWaitReply(persist::Encoder& e, const WaitReply& reply) {
  e.U8(static_cast<std::uint8_t>(reply.state));
  e.U64(reply.ok_points);
  e.U64(reply.failed_points);
  e.Str(reply.csv_text);
  e.Str(reply.json_text);
  e.Str(reply.message);
}

WaitReply DecodeWaitReply(persist::Decoder& d) {
  WaitReply reply;
  const std::uint8_t state = d.U8();
  if (state > static_cast<std::uint8_t>(RequestState::kUnknown)) {
    throw persist::FormatError("corrupt request state");
  }
  reply.state = static_cast<RequestState>(state);
  reply.ok_points = d.U64();
  reply.failed_points = d.U64();
  reply.csv_text = d.Str();
  reply.json_text = d.Str();
  reply.message = d.Str();
  return reply;
}

void EncodeCancelRequest(persist::Encoder& e, const CancelRequest& req) {
  e.U64(req.request_id);
}

CancelRequest DecodeCancelRequest(persist::Decoder& d) {
  CancelRequest req;
  req.request_id = d.U64();
  return req;
}

void EncodeCancelReply(persist::Encoder& e, const CancelReply& reply) {
  e.Bool(reply.cancelled);
  e.Str(reply.message);
}

CancelReply DecodeCancelReply(persist::Decoder& d) {
  CancelReply reply;
  reply.cancelled = d.Bool();
  reply.message = d.Str();
  return reply;
}

void EncodeShutdownRequest(persist::Encoder& e, const ShutdownRequest& req) {
  e.Bool(req.drain);
}

ShutdownRequest DecodeShutdownRequest(persist::Decoder& d) {
  ShutdownRequest req;
  req.drain = d.Bool();
  return req;
}

}  // namespace ultra::service
