// SweepService: a crash-restartable daemon that serves sweep requests from
// many concurrent clients over a unix-domain socket.
//
// Robustness envelope, by construction:
//
//  * Bounded admission — at most ServiceOptions::max_queue requests wait
//    behind the one being executed; further submissions are rejected with
//    AdmitStatus::kOverloaded (explicit backpressure, never unbounded
//    buffering). Load drains, the service recovers, new work is accepted.
//  * Per-request deadlines — a request over its wall-clock budget is
//    cancelled cooperatively (SweepOptions::cancel fanned into
//    CoreConfig::cancel by the runner's watchdog) and reported
//    kDeadlineExceeded.
//  * Orphan detection — a non-detached request whose client connection
//    dies is cancelled, so abandoned work never hogs the pool.
//  * Graceful shutdown — SIGTERM (via Stop(drain=true)) stops admissions,
//    lets in-flight points finish (they are journaled), skips unstarted
//    ones, and leaves queued requests journaled for the next start.
//  * Crash restart — every accepted request is journaled (points,
//    options, export names) before its admission is acknowledged, and
//    every completed point is journaled by SweepRunner::RunJournaled
//    machinery. A SIGKILL'd daemon restarts, self-heals both journal
//    levels (persist::RepairJournal), re-queues unfinished requests in
//    admission order, resumes them point-by-point, and writes exports
//    byte-identical to an uninterrupted run's.
//
// State directory layout:
//   <state_dir>/lock              flock'd while a daemon is alive
//   <state_dir>/requests.journal  admission log + completion records
//   <state_dir>/req-<id>.journal  per-point result journal (SweepRunner)
//   <state_dir>/<export name>     CSV/JSON artifacts, written atomically
//
// Threading: one accept loop, one connection thread per client, one
// executor that runs requests serially through the shared SweepRunner
// thread pool (points are the unit of parallelism), and one watchdog for
// request deadlines. See docs/service.md for the protocol and runbook.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/sweep_runner.hpp"
#include "service/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace ultra::persist {
class JournalWriter;
}  // namespace ultra::persist

namespace ultra::service {

struct ServiceOptions {
  std::string socket_path;  // Unix-domain socket (sun_path limits apply).
  std::string state_dir;    // Journals, lock file, exports.
  /// Bound on *waiting* requests (beyond the one running). 0 means no
  /// waiting room: a submission is rejected unless the executor is idle.
  std::size_t max_queue = 8;
  /// Submissions with more points than this are rejected as invalid.
  std::size_t max_points_per_request = 65536;
  /// Budget for Stop(drain=true): how long in-flight points may keep
  /// running after the drain began before cancellation escalates to hard.
  double drain_timeout_seconds = 30.0;
  /// Completed requests whose outcomes stay queryable via kWait. Older
  /// ones are pruned to a summary (their exports remain on disk).
  std::size_t max_retained_results = 256;
  /// Base sweep options for every request (thread count, oracle checks,
  /// retries...). The cancel/drain hooks are owned by the service and
  /// overwritten per request. Note check_architectural_state,
  /// max_attempts, and collect_metrics enter the per-request journal
  /// fingerprint: changing them across a restart makes old point journals
  /// unusable (they are then discarded and those requests re-run fresh).
  runtime::SweepOptions sweep;
};

class SweepService {
 public:
  explicit SweepService(ServiceOptions options);
  /// Equivalent to Stop(/*drain=*/false) if still running.
  ~SweepService();
  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Acquires the state-dir lock, self-heals and replays the request
  /// journal (re-queuing unfinished requests), binds the socket, and
  /// starts serving. Throws std::runtime_error when the state dir is
  /// locked by another daemon or the socket cannot be bound.
  void Start();

  /// Stops the service. drain = true: stop admitting, let in-flight
  /// points finish (up to drain_timeout_seconds, then escalate to hard
  /// cancel), leave unfinished requests journaled for the next Start().
  /// drain = false: hard cooperative cancel of everything in flight —
  /// the closest simulation of a crash that still joins the threads.
  /// Idempotent; safe to call from any thread (not from signal context —
  /// signal handlers should set a flag/pipe and let the main loop call
  /// this, as examples/sweepctl.cpp does).
  void Stop(bool drain);

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// True once a Stop() (or a client kShutdown) has begun — the daemon's
  /// serve loop polls this to know when to exit.
  [[nodiscard]] bool stop_requested() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// Whether a client-requested shutdown asked for a drain (true) or a hard
  /// stop. The serve loop passes this to Stop() once stop_requested() —
  /// a connection thread cannot call Stop() itself, since Stop() joins the
  /// connection threads.
  [[nodiscard]] bool shutdown_drain() const {
    return shutdown_drain_.load(std::memory_order_acquire);
  }

  /// The /metrics-style text surface served for kStatus: service counters
  /// (queue depth, rejections, cancellations, recoveries, journal-repair
  /// bytes) followed by the cumulative SweepRunner runner metrics
  /// (sweep.attempts, sweep.retries, fnsim_cache.* ...).
  [[nodiscard]] std::string MetricsText() const;

  /// Service-level counters, for tests and operators.
  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t failed = 0;
    std::uint64_t recovered = 0;           // Re-queued at Start().
    std::uint64_t disconnect_cancels = 0;  // Orphaned attached requests.
    std::uint64_t journal_repaired_bytes = 0;
    std::uint64_t tmp_files_removed = 0;   // Orphaned .tmp.* swept at Start().
  };
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  struct Request;

  void AcceptLoop();
  void ConnectionLoop(int fd, std::uint64_t connection_id);
  void ExecutorLoop();
  void WatchdogLoop();

  /// One request end to end: resume-or-run its point journal, write its
  /// exports, record completion. Never throws.
  void Execute(const std::shared_ptr<Request>& request);

  SubmitReply HandleSubmit(persist::Decoder& d, std::uint64_t connection_id);
  WaitReply HandleWait(const WaitRequest& wait, int fd);
  CancelReply HandleCancel(const CancelRequest& cancel);
  void CancelOwnedBy(std::uint64_t connection_id);
  /// Joins connection threads whose ConnectionLoop has exited. Called from
  /// the accept loop so a long-lived daemon does not accumulate one dead
  /// (joinable) std::thread per connection ever accepted.
  void ReapFinishedConnections();

  void RecoverFromJournal();
  /// Moves @p request to a terminal @p state: appends the done record (so a
  /// restart will not re-run it), bumps the matching counter, unlinks the
  /// per-point journal where it is no longer needed, and wakes waiters.
  /// Callers hold mu_.
  void FinalizeLocked(const std::shared_ptr<Request>& request,
                      RequestState state, const std::string& error);
  void AppendDoneRecordLocked(const Request& request, RequestState state,
                              const std::string& error);
  [[nodiscard]] std::string RequestJournalPath(std::uint64_t id) const;
  void PruneRetainedLocked();

  ServiceOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};  // SweepOptions::drain hook.
  std::atomic<bool> shutdown_drain_{true};
  bool stopped_ = false;  // Stop() already ran to completion (guarded by mu_).

  int listen_fd_ = -1;
  int lock_fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // Executor wakeup.
  std::condition_variable done_cv_;   // Waiters + Stop() drain.
  std::deque<std::shared_ptr<Request>> queue_;
  std::map<std::uint64_t, std::shared_ptr<Request>> requests_;  // By id.
  std::shared_ptr<Request> active_;  // The request the executor is running.
  std::uint64_t next_request_id_ = 1;
  std::uint64_t next_connection_id_ = 1;
  std::map<std::uint64_t, int> connections_;  // id -> fd, for shutdown.
  std::unique_ptr<persist::JournalWriter> request_journal_;
  Counters counters_;
  telemetry::MetricsSnapshot runner_metrics_;  // Cumulative across requests.

  std::thread accept_thread_;
  std::thread executor_thread_;
  std::thread watchdog_thread_;
  std::map<std::uint64_t, std::thread> connection_threads_;  // By id.
  /// Connection ids whose loop has exited; their threads are joined by the
  /// accept loop (ReapFinishedConnections) or, for stragglers, by Stop().
  std::vector<std::uint64_t> finished_connections_;
};

}  // namespace ultra::service
