#include "service/sweep_service.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>

#include "core/config_codec.hpp"
#include "failpoint/io.hpp"
#include "isa/program_codec.hpp"
#include "persist/journal.hpp"
#include "runtime/sweep_io.hpp"

namespace ultra::service {

namespace {

// Record types of <state_dir>/requests.journal. A request's lifetime on disk
// is exactly: one kSubmitRecord (appended before its admission is
// acknowledged), then at most one kDoneRecord (appended when it reaches a
// terminal state). A request with no done record is unfinished — a restarted
// daemon re-queues it. Drained and crashed requests deliberately never get a
// done record, which is what makes them resume.
constexpr std::uint32_t kSubmitRecord = 1;
constexpr std::uint32_t kDoneRecord = 2;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Upper bound on SubmitRequest::deadline_seconds (~31 years). Far beyond
/// any real sweep, and small enough that the nanosecond conversion (1e18)
/// stays well inside uint64 — an unchecked huge double would make the
/// cast undefined behavior and could wrap the deadline into the past.
constexpr double kMaxDeadlineSeconds = 1e9;

/// Export names are resolved inside the state directory; anything that could
/// escape it (path separators, "..", empty-after-trim tricks) or collide
/// with the daemon's own state files (the flock'd "lock", the request
/// journal, any "*.journal") is rejected at admission. Without the reserved
/// list, a client naming its export "requests.journal" would have
/// AtomicWriteFile rename a CSV over the admission log — the open
/// JournalWriter keeps appending to the dead inode and the next restart
/// truncates every acknowledged-but-unfinished request away.
bool ValidExportName(const std::string& name) {
  if (name.empty()) return true;  // Empty = no export requested.
  if (name == "." || name == "..") return false;
  if (name.find('/') != std::string::npos) return false;
  if (name == "lock") return false;
  constexpr std::string_view kJournalSuffix = ".journal";
  if (name.size() >= kJournalSuffix.size() &&
      name.compare(name.size() - kJournalSuffix.size(), kJournalSuffix.size(),
                   kJournalSuffix) == 0) {
    return false;
  }
  return true;
}

}  // namespace

struct SweepService::Request {
  enum class CancelReason { kNone, kClient, kDeadline, kDrain };

  std::uint64_t id = 0;
  SubmitRequest submit;
  /// Connection that submitted it; 0 = none (detached, or re-queued by
  /// recovery — the original client is gone either way).
  std::uint64_t owner_connection = 0;
  /// The cooperative cancel flag SweepOptions::cancel points at. The only
  /// field touched outside mu_ (by the runner's watchdog readers).
  std::atomic<bool> cancel{false};
  // Everything below is guarded by SweepService::mu_.
  CancelReason reason = CancelReason::kNone;
  RequestState state = RequestState::kQueued;
  std::string error;
  std::uint64_t deadline_ns = 0;  // steady_clock deadline; 0 = none.
  std::uint64_t ok_points = 0;
  std::uint64_t failed_points = 0;
  std::string csv_text;
  std::string json_text;
  bool results_retained = false;

  [[nodiscard]] bool terminal() const {
    return state != RequestState::kQueued && state != RequestState::kRunning;
  }
};

SweepService::SweepService(ServiceOptions options)
    : options_(std::move(options)) {}

SweepService::~SweepService() { Stop(/*drain=*/false); }

// ---------------------------------------------------------------------------
// Start / recovery.

void SweepService::Start() {
  if (running_.load(std::memory_order_acquire)) {
    throw std::runtime_error("SweepService already started");
  }
  if (::mkdir(options_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create state dir " + options_.state_dir +
                             ": " + std::strerror(errno));
  }

  // One daemon per state directory: two writers interleaving appends into
  // the same request journal would corrupt each other's recovery, so the
  // lock is taken before anything else touches the dir.
  const std::string lock_path = options_.state_dir + "/lock";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw std::runtime_error("cannot open " + lock_path + ": " +
                             std::strerror(errno));
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw std::runtime_error("state dir " + options_.state_dir +
                             " is locked by another daemon");
  }

  // Everything below can throw (journal repair, bind, injected I/O
  // failures). The lock and any half-initialized fds must be released on
  // the way out, or Stop() — which early-returns while !running_ — would
  // never free them and every later Start() on this state dir would see
  // "locked by another daemon" from our own leaked flock.
  try {
    // Sweep AtomicWriteFile droppings from a crashed predecessor: a tmp
    // file that never reached its rename is garbage (the rename is the
    // commit point), and leaving it would accumulate per crash forever.
    counters_.tmp_files_removed +=
        persist::RemoveStaleTmpFiles(options_.state_dir);

    RecoverFromJournal();

    // Reopen the (now self-healed) request journal for appending.
    request_journal_ = std::make_unique<persist::JournalWriter>(
        options_.state_dir + "/requests.journal", /*truncate=*/false);

    // A socket file left behind by a crashed daemon would make bind()
    // fail; the state-dir lock above already guarantees no live daemon
    // owns it.
    ::unlink(options_.socket_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error(std::string("cannot create socket: ") +
                               std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " +
                               options_.socket_path);
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      throw std::runtime_error("cannot bind/listen on " +
                               options_.socket_path + ": " +
                               std::strerror(errno));
    }
  } catch (...) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    request_journal_.reset();
    requests_.clear();
    queue_.clear();
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw;
  }

  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  stopped_ = false;
  running_.store(true, std::memory_order_release);
  executor_thread_ = std::thread([this] { ExecutorLoop(); });
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void SweepService::RecoverFromJournal() {
  const std::string path = options_.state_dir + "/requests.journal";
  // Self-heal before anything reads or appends: a torn tail left by a crash
  // mid-append must be reclaimed, or the next append would land after
  // garbage and be invisible to every future reader.
  counters_.journal_repaired_bytes += persist::RepairJournal(path);

  for (const persist::JournalRecord& record : persist::ReadJournal(path)) {
    persist::Decoder d(record.payload);
    try {
      if (record.type == kSubmitRecord) {
        const std::uint64_t id = d.U64();
        auto req = std::make_shared<Request>();
        req->id = id;
        req->submit = DecodeSubmitRequest(d);
        requests_[id] = std::move(req);
        if (id >= next_request_id_) next_request_id_ = id + 1;
      } else if (record.type == kDoneRecord) {
        const std::uint64_t id = d.U64();
        const std::uint8_t state = d.U8();
        const std::string error = d.Str();
        auto it = requests_.find(id);
        if (it != requests_.end() &&
            state <= static_cast<std::uint8_t>(RequestState::kUnknown)) {
          it->second->state = static_cast<RequestState>(state);
          it->second->error = error;
          it->second->ok_points = d.U64();
          it->second->failed_points = d.U64();
        }
      }
      // Unknown record types: skip (forward compatibility).
    } catch (const persist::FormatError& e) {
      // The frame CRC was intact but the payload did not decode — a version
      // drift, not disk corruption. Skipping the record degrades gracefully
      // (that request is forgotten) instead of refusing to start.
      std::fprintf(stderr,
                   "sweep-service: skipping undecodable journal record: %s\n",
                   e.what());
    }
  }

  // Re-queue every request with no done record, in admission order. These
  // were already admitted once — they bypass max_queue rather than being
  // re-rejected, and their deadline clock restarts now (the original
  // admission instant did not survive the crash, by design: wall-clock
  // times are never journaled).
  const std::uint64_t now = NowNs();
  for (auto& [id, req] : requests_) {
    if (req->terminal()) continue;
    req->state = RequestState::kQueued;
    req->owner_connection = 0;  // The submitting client is gone.
    // Admission clamps deadline_seconds, but this value comes off disk —
    // a journal written by an older daemon (or hand-edited) must not feed
    // an unchecked double into the ns cast.
    const double deadline_s =
        std::min(req->submit.deadline_seconds, kMaxDeadlineSeconds);
    if (deadline_s > 0) {
      req->deadline_ns = now + static_cast<std::uint64_t>(deadline_s * 1e9);
    }
    queue_.push_back(req);
    ++counters_.recovered;
  }
}

// ---------------------------------------------------------------------------
// Stop.

void SweepService::Stop(bool drain) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopped_ || !running_.load(std::memory_order_acquire)) return;

    stopping_.store(true, std::memory_order_release);
    if (drain) {
      // Soft: the runner's drain hook lets in-flight points finish (and be
      // journaled) while unstarted ones come back cancelled/un-journaled.
      draining_.store(true, std::memory_order_release);
    } else {
      // Hard: cooperatively cancel everything, reason kDrain so no done
      // record is written — the closest simulation of a crash that still
      // joins threads, and exactly what the crash-restart tests exercise.
      for (auto& [id, req] : requests_) {
        if (req->terminal()) continue;
        if (req->reason == Request::CancelReason::kNone) {
          req->reason = Request::CancelReason::kDrain;
        }
        req->cancel.store(true, std::memory_order_release);
      }
    }
    queue_cv_.notify_all();

    if (drain) {
      // Give the active request its drain budget, then escalate to hard
      // cancellation so a stuck point cannot wedge the shutdown forever.
      const auto budget = std::chrono::duration<double>(
          options_.drain_timeout_seconds > 0 ? options_.drain_timeout_seconds
                                             : 0.0);
      if (!done_cv_.wait_for(lk, budget, [this] { return active_ == nullptr; })) {
        for (auto& [id, req] : requests_) {
          if (req->terminal()) continue;
          if (req->reason == Request::CancelReason::kNone) {
            req->reason = Request::CancelReason::kDrain;
          }
          req->cancel.store(true, std::memory_order_release);
        }
      }
    }
  }

  // Unblock and join the accept loop (it polls stopping_ every 100 ms).
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock every connection thread: shutdown() makes a blocked recv()
  // return EOF without a race on the fd number (the thread still owns the
  // close()).
  std::map<std::uint64_t, std::thread> connections;
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (auto& [cid, fd] : connections_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connection_threads_);
    finished_connections_.clear();
  }
  for (auto& [cid, t] : connections) {
    if (t.joinable()) t.join();
  }

  if (executor_thread_.joinable()) executor_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  {
    std::unique_lock<std::mutex> lk(mu_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    ::unlink(options_.socket_path.c_str());
    request_journal_.reset();
    if (lock_fd_ >= 0) {
      ::flock(lock_fd_, LOCK_UN);
      ::close(lock_fd_);
      lock_fd_ = -1;
    }
    stopped_ = true;
    running_.store(false, std::memory_order_release);
  }
  done_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Accept / connection threads.

void SweepService::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ReapFinishedConnections();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;  // Timeout, EINTR: re-check stopping_.
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const std::uint64_t cid = next_connection_id_++;
    connections_[cid] = fd;
    connection_threads_.emplace(cid,
                                std::thread([this, fd, cid] { ConnectionLoop(fd, cid); }));
  }
}

void SweepService::ReapFinishedConnections() {
  std::vector<std::thread> done;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (finished_connections_.empty()) return;
    for (const std::uint64_t cid : finished_connections_) {
      auto it = connection_threads_.find(cid);
      if (it == connection_threads_.end()) continue;
      done.push_back(std::move(it->second));
      connection_threads_.erase(it);
    }
    finished_connections_.clear();
  }
  // Join outside mu_: by the time a cid appears in finished_connections_
  // its thread has already released the lock for good, but there is no
  // reason to block other lock users on the (brief) join.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void SweepService::ConnectionLoop(int fd, std::uint64_t connection_id) {
  try {
    for (;;) {
      std::optional<Frame> frame = ReadFrame(fd);
      if (!frame.has_value()) break;  // Clean EOF between messages.
      persist::Encoder reply;
      switch (static_cast<MsgType>(frame->type)) {
        case MsgType::kSubmit: {
          persist::Decoder d(frame->payload);
          EncodeSubmitReply(reply, HandleSubmit(d, connection_id));
          WriteFrame(fd, static_cast<std::uint32_t>(MsgType::kSubmitReply),
                     reply.bytes());
          break;
        }
        case MsgType::kStatus: {
          EncodeStatusReply(reply, StatusReply{MetricsText()});
          WriteFrame(fd, static_cast<std::uint32_t>(MsgType::kStatusReply),
                     reply.bytes());
          break;
        }
        case MsgType::kWait: {
          persist::Decoder d(frame->payload);
          EncodeWaitReply(reply, HandleWait(DecodeWaitRequest(d), fd));
          WriteFrame(fd, static_cast<std::uint32_t>(MsgType::kWaitReply),
                     reply.bytes());
          break;
        }
        case MsgType::kCancel: {
          persist::Decoder d(frame->payload);
          EncodeCancelReply(reply, HandleCancel(DecodeCancelRequest(d)));
          WriteFrame(fd, static_cast<std::uint32_t>(MsgType::kCancelReply),
                     reply.bytes());
          break;
        }
        case MsgType::kShutdown: {
          persist::Decoder d(frame->payload);
          const ShutdownRequest req = DecodeShutdownRequest(d);
          // Acknowledge before flipping the flags — the serve loop will
          // call Stop(), and Stop() joins this very thread, so the actual
          // teardown cannot happen here.
          WriteFrame(fd, static_cast<std::uint32_t>(MsgType::kShutdownReply),
                     {});
          shutdown_drain_.store(req.drain, std::memory_order_release);
          if (req.drain) draining_.store(true, std::memory_order_release);
          stopping_.store(true, std::memory_order_release);
          queue_cv_.notify_all();
          done_cv_.notify_all();
          break;
        }
        default:
          // Unknown message type: poison the connection rather than guess.
          throw persist::FormatError("unknown message type");
      }
    }
  } catch (const std::exception&) {
    // Malformed frame, hostile payload, or the peer vanished mid-reply
    // (EPIPE). Either way the connection is unusable; drop it. The daemon
    // itself must never die from a bad client.
  }
  CancelOwnedBy(connection_id);
  {
    std::unique_lock<std::mutex> lk(mu_);
    connections_.erase(connection_id);
    // Hand this thread to the accept loop's reaper. Safe ordering: nothing
    // after this statement touches mu_, so a reaper that sees the cid can
    // join without deadlock.
    finished_connections_.push_back(connection_id);
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Request handlers.

SubmitReply SweepService::HandleSubmit(persist::Decoder& d,
                                       std::uint64_t connection_id) {
  SubmitReply reply;
  SubmitRequest submit;
  try {
    submit = DecodeSubmitRequest(d);
  } catch (const persist::FormatError& e) {
    reply.status = AdmitStatus::kInvalid;
    reply.message = std::string("malformed submission: ") + e.what();
    std::unique_lock<std::mutex> lk(mu_);
    ++counters_.rejected_invalid;
    return reply;
  }

  if (submit.points.empty()) {
    reply.status = AdmitStatus::kInvalid;
    reply.message = "submission has no points";
  } else if (submit.points.size() > options_.max_points_per_request) {
    reply.status = AdmitStatus::kInvalid;
    reply.message = "submission exceeds max_points_per_request";
  } else if (!ValidExportName(submit.csv_name) ||
             !ValidExportName(submit.json_name)) {
    reply.status = AdmitStatus::kInvalid;
    reply.message =
        "export names must be bare file names and may not shadow service "
        "state (lock, *.journal)";
  } else if (!(submit.deadline_seconds <= kMaxDeadlineSeconds)) {
    // Negated comparison deliberately catches NaN as well as +inf and
    // too-large values.
    reply.status = AdmitStatus::kInvalid;
    reply.message = "deadline_seconds must be a number <= 1e9";
  }
  if (reply.status == AdmitStatus::kInvalid && !reply.message.empty()) {
    std::unique_lock<std::mutex> lk(mu_);
    ++counters_.rejected_invalid;
    return reply;
  }

  std::unique_lock<std::mutex> lk(mu_);
  if (stopping_.load(std::memory_order_acquire) ||
      draining_.load(std::memory_order_acquire)) {
    reply.status = AdmitStatus::kShuttingDown;
    reply.message = "service is shutting down";
    ++counters_.rejected_shutdown;
    return reply;
  }
  if (queue_.size() >= options_.max_queue) {
    // Explicit backpressure: the queue is the *only* buffer, and it is
    // bounded. Clients retry with backoff or shed load; the daemon's memory
    // never grows with offered load.
    reply.status = AdmitStatus::kOverloaded;
    reply.queue_depth = queue_.size();
    reply.message = "admission queue full; retry later";
    ++counters_.rejected_overload;
    return reply;
  }

  auto req = std::make_shared<Request>();
  req->id = next_request_id_++;
  req->submit = std::move(submit);
  req->owner_connection = req->submit.detach ? 0 : connection_id;
  if (req->submit.deadline_seconds > 0) {
    req->deadline_ns =
        NowNs() +
        static_cast<std::uint64_t>(req->submit.deadline_seconds * 1e9);
  }

  // Journal the admission *before* acknowledging it: once the client hears
  // "accepted", a crash must not lose the request. The append fsyncs, so an
  // acknowledged submission is durable.
  try {
    persist::Encoder e;
    e.U64(req->id);
    EncodeSubmitRequest(e, req->submit);
    request_journal_->Append(kSubmitRecord, e.bytes());
  } catch (const std::exception& e) {
    // Torn-frame safety in JournalWriter::Append guarantees the failed
    // append left no partial frame, so rejecting here is clean.
    reply.status = AdmitStatus::kInvalid;
    reply.message = std::string("cannot journal request: ") + e.what();
    ++counters_.rejected_invalid;
    return reply;
  }

  requests_[req->id] = req;
  queue_.push_back(req);
  ++counters_.accepted;
  reply.status = AdmitStatus::kAccepted;
  reply.request_id = req->id;
  reply.queue_depth = queue_.size();
  queue_cv_.notify_all();
  return reply;
}

WaitReply SweepService::HandleWait(const WaitRequest& wait, int fd) {
  WaitReply reply;
  std::unique_lock<std::mutex> lk(mu_);
  auto it = requests_.find(wait.request_id);
  if (it == requests_.end()) {
    reply.state = RequestState::kUnknown;
    reply.message = "no such request";
    return reply;
  }
  std::shared_ptr<Request> req = it->second;

  while (!req->terminal() && !stopping_.load(std::memory_order_acquire)) {
    done_cv_.wait_for(lk, std::chrono::milliseconds(100));
    // Probe the waiting client: if it vanished, stop holding this thread —
    // the reply write would fail anyway, and ConnectionLoop's unwind will
    // cancel whatever the connection owned.
    std::uint8_t probe = 0;
    const ssize_t r = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (r == 0) break;  // Peer closed.
  }

  reply.state = req->state;
  reply.ok_points = req->ok_points;
  reply.failed_points = req->failed_points;
  reply.message = req->error;
  if (req->results_retained) {
    if (wait.want_csv) reply.csv_text = req->csv_text;
    if (wait.want_json) reply.json_text = req->json_text;
  } else if ((wait.want_csv || wait.want_json) && req->terminal()) {
    if (!reply.message.empty()) reply.message += "; ";
    reply.message += "results not retained in memory (exports remain on disk)";
  }
  return reply;
}

CancelReply SweepService::HandleCancel(const CancelRequest& cancel) {
  CancelReply reply;
  std::unique_lock<std::mutex> lk(mu_);
  auto it = requests_.find(cancel.request_id);
  if (it == requests_.end()) {
    reply.message = "no such request";
    return reply;
  }
  std::shared_ptr<Request> req = it->second;
  if (req->terminal()) {
    reply.message = "request already finished";
    return reply;
  }
  if (req->reason == Request::CancelReason::kNone) {
    req->reason = Request::CancelReason::kClient;
  }
  req->cancel.store(true, std::memory_order_release);
  if (req->state == RequestState::kQueued) {
    // Still waiting its turn: finalize right here instead of making it
    // travel through the executor just to be reaped.
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if ((*qit)->id == req->id) {
        queue_.erase(qit);
        break;
      }
    }
    FinalizeLocked(req, RequestState::kCancelled, "cancelled by client");
  }
  reply.cancelled = true;
  reply.message = "cancellation requested";
  return reply;
}

void SweepService::CancelOwnedBy(std::uint64_t connection_id) {
  std::unique_lock<std::mutex> lk(mu_);
  // Two passes: FinalizeLocked prunes retained results, which erases
  // requests_ entries — possibly the very element a range-for iterator is
  // standing on. Flag everything first, then finalize outside the map walk.
  std::vector<std::shared_ptr<Request>> to_finalize;
  for (auto& [id, req] : requests_) {
    if (req->owner_connection != connection_id || req->terminal()) continue;
    if (req->reason == Request::CancelReason::kNone) {
      req->reason = Request::CancelReason::kClient;
    }
    req->cancel.store(true, std::memory_order_release);
    ++counters_.disconnect_cancels;
    if (req->state == RequestState::kQueued) to_finalize.push_back(req);
  }
  for (const std::shared_ptr<Request>& req : to_finalize) {
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if ((*qit)->id == req->id) {
        queue_.erase(qit);
        break;
      }
    }
    FinalizeLocked(req, RequestState::kCancelled, "client disconnected");
  }
}

// ---------------------------------------------------------------------------
// Executor.

void SweepService::ExecutorLoop() {
  for (;;) {
    std::shared_ptr<Request> req;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) break;
      req = queue_.front();
      queue_.pop_front();
      req->state = RequestState::kRunning;
      active_ = req;
    }
    Execute(req);
    {
      std::unique_lock<std::mutex> lk(mu_);
      active_ = nullptr;
    }
    done_cv_.notify_all();
  }
}

void SweepService::Execute(const std::shared_ptr<Request>& request) {
  // A cancel that landed while the request was queued: honor it without
  // spinning up the runner at all.
  if (request->cancel.load(std::memory_order_acquire)) {
    std::unique_lock<std::mutex> lk(mu_);
    switch (request->reason) {
      case Request::CancelReason::kClient:
        FinalizeLocked(request, RequestState::kCancelled,
                       "cancelled by client");
        break;
      case Request::CancelReason::kDeadline:
        FinalizeLocked(request, RequestState::kDeadlineExceeded,
                       "deadline exceeded before execution");
        break;
      default:
        // Drain / shutdown: no done record — the request stays journaled
        // and re-runs on the next start.
        request->state = RequestState::kQueued;
        break;
    }
    return;
  }

  runtime::SweepOptions sweep = options_.sweep;
  sweep.cancel = &request->cancel;
  sweep.drain = &draining_;
  runtime::SweepRunner runner(sweep);
  const std::string journal_path = RequestJournalPath(request->id);

  runtime::SweepReport report;
  try {
    try {
      // Resume degrades to a fresh journaled run when the journal is
      // missing or headerless, so first run and crash-recovery share one
      // call site.
      report = runner.Resume(request->submit.points, journal_path);
    } catch (const std::runtime_error&) {
      // Fingerprint mismatch: the journal belongs to a different sweep or
      // was written under different outcome-affecting options. Discard it
      // and run fresh — stale partial results must never leak into this
      // request's artifact.
      failpoint::ActiveIo().Unlink("service.journal.unlink",
                                   journal_path.c_str());
      report = runner.Resume(request->submit.points, journal_path);
    }
  } catch (const std::exception& e) {
    std::unique_lock<std::mutex> lk(mu_);
    FinalizeLocked(request, RequestState::kFailed,
                   std::string("sweep infrastructure failure: ") + e.what());
    return;
  }

  bool any_cancelled = false;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  for (const runtime::SweepOutcome& out : report.outcomes) {
    if (out.cancelled) any_cancelled = true;
    if (out.ok) {
      ++ok;
    } else {
      ++failed;
    }
  }

  std::unique_lock<std::mutex> lk(mu_);
  runner_metrics_.MergeFrom(report.runner_metrics);

  if (any_cancelled) {
    switch (request->reason) {
      case Request::CancelReason::kClient:
        FinalizeLocked(request, RequestState::kCancelled,
                       "cancelled by client");
        return;
      case Request::CancelReason::kDeadline:
        FinalizeLocked(request, RequestState::kDeadlineExceeded,
                       "request deadline exceeded");
        return;
      default:
        // Drain (explicit reason or the service-wide draining_ flag with no
        // per-request reason). No done record, no export: the finished
        // points are journaled, the cancelled ones are not, and the next
        // start resumes exactly where this one stopped — converging on the
        // same bytes an uninterrupted run would have produced.
        request->state = RequestState::kQueued;
        return;
    }
  }

  // Normal completion: render both artifacts deterministically and write
  // the requested ones atomically, *before* the done record — once the
  // journal says done, the export must already be durable.
  request->ok_points = ok;
  request->failed_points = failed;
  {
    std::ostringstream csv;
    runtime::WriteCsv(csv, report.outcomes);
    request->csv_text = csv.str();
    std::ostringstream json;
    runtime::WriteJson(json, report.outcomes);
    request->json_text = json.str();
    request->results_retained = true;
  }
  try {
    if (!request->submit.csv_name.empty()) {
      persist::AtomicWriteFile(
          options_.state_dir + "/" + request->submit.csv_name,
          std::string_view(request->csv_text));
    }
    if (!request->submit.json_name.empty()) {
      persist::AtomicWriteFile(
          options_.state_dir + "/" + request->submit.json_name,
          std::string_view(request->json_text));
    }
  } catch (const std::exception& e) {
    FinalizeLocked(request, RequestState::kFailed,
                   std::string("cannot write export: ") + e.what());
    return;
  }
  FinalizeLocked(request, RequestState::kDone, "");
}

// ---------------------------------------------------------------------------
// Watchdog: request-level deadlines.

void SweepService::WatchdogLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      const std::uint64_t now = NowNs();
      // Queued requests past their deadline are reaped right here — they
      // must not wait behind a long-running request just to be declared
      // dead. The running request is cancelled cooperatively and reaped by
      // the executor when the runner returns.
      for (auto qit = queue_.begin(); qit != queue_.end();) {
        const std::shared_ptr<Request>& req = *qit;
        if (req->deadline_ns != 0 && now >= req->deadline_ns) {
          req->reason = Request::CancelReason::kDeadline;
          req->cancel.store(true, std::memory_order_release);
          std::shared_ptr<Request> dead = req;
          qit = queue_.erase(qit);
          FinalizeLocked(dead, RequestState::kDeadlineExceeded,
                         "deadline exceeded before execution");
        } else {
          ++qit;
        }
      }
      if (active_ != nullptr && active_->deadline_ns != 0 &&
          now >= active_->deadline_ns && !active_->terminal()) {
        if (active_->reason == Request::CancelReason::kNone) {
          active_->reason = Request::CancelReason::kDeadline;
        }
        active_->cancel.store(true, std::memory_order_release);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// ---------------------------------------------------------------------------
// Bookkeeping.

void SweepService::FinalizeLocked(const std::shared_ptr<Request>& request,
                                  RequestState state,
                                  const std::string& error) {
  request->state = state;
  request->error = error;
  AppendDoneRecordLocked(*request, state, error);
  switch (state) {
    case RequestState::kDone:
      ++counters_.completed;
      break;
    case RequestState::kCancelled:
      ++counters_.cancelled;
      break;
    case RequestState::kDeadlineExceeded:
      ++counters_.deadline_exceeded;
      break;
    case RequestState::kFailed:
      ++counters_.failed;
      break;
    default:
      break;
  }
  if (state != RequestState::kFailed) {
    // The per-point journal has served its purpose. A failed request keeps
    // its journal for postmortem (the done record already prevents resume).
    // Seamed: a simulated crash must freeze this unlink too, or the harness
    // would observe recovery state a real crash leaves behind being deleted.
    failpoint::ActiveIo().Unlink("service.journal.unlink",
                                 RequestJournalPath(request->id).c_str());
  }
  PruneRetainedLocked();
  done_cv_.notify_all();
}

void SweepService::AppendDoneRecordLocked(const Request& request,
                                          RequestState state,
                                          const std::string& error) {
  if (request_journal_ == nullptr) return;
  try {
    persist::Encoder e;
    e.U64(request.id);
    e.U8(static_cast<std::uint8_t>(state));
    e.Str(error);
    e.U64(request.ok_points);
    e.U64(request.failed_points);
    request_journal_->Append(kDoneRecord, e.bytes());
  } catch (const std::exception& e) {
    // A done record that cannot be written means the request will re-run
    // after a restart — wasteful but correct (results are deterministic
    // and exports are atomic). Never take the daemon down over it.
    std::fprintf(stderr, "sweep-service: cannot journal completion: %s\n",
                 e.what());
  }
}

std::string SweepService::RequestJournalPath(std::uint64_t id) const {
  return options_.state_dir + "/req-" + std::to_string(id) + ".journal";
}

void SweepService::PruneRetainedLocked() {
  // Bound the daemon's memory: only the most recent terminal requests stay
  // queryable. Exports already written to the state dir are unaffected.
  std::size_t terminal = 0;
  for (const auto& [id, req] : requests_) {
    if (req->terminal()) ++terminal;
  }
  for (auto it = requests_.begin();
       it != requests_.end() && terminal > options_.max_retained_results;) {
    if (it->second->terminal()) {
      it = requests_.erase(it);
      --terminal;
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Introspection.

std::string SweepService::MetricsText() const {
  telemetry::MetricsSnapshot snapshot;
  const auto counter = [&snapshot](std::string name, std::uint64_t value) {
    telemetry::MetricValue v;
    v.name = std::move(name);
    v.kind = telemetry::MetricKind::kCounter;
    v.value = value;
    snapshot.metrics.push_back(std::move(v));
  };
  const auto gauge = [&snapshot](std::string name, std::uint64_t value) {
    telemetry::MetricValue v;
    v.name = std::move(name);
    v.kind = telemetry::MetricKind::kGauge;
    v.value = value;
    snapshot.metrics.push_back(std::move(v));
  };

  std::unique_lock<std::mutex> lk(mu_);
  counter("service.accepted", counters_.accepted);
  counter("service.rejected_overload", counters_.rejected_overload);
  counter("service.rejected_invalid", counters_.rejected_invalid);
  counter("service.rejected_shutdown", counters_.rejected_shutdown);
  counter("service.completed", counters_.completed);
  counter("service.cancelled", counters_.cancelled);
  counter("service.deadline_exceeded", counters_.deadline_exceeded);
  counter("service.failed", counters_.failed);
  counter("service.recovered", counters_.recovered);
  counter("service.disconnect_cancels", counters_.disconnect_cancels);
  counter("service.journal_repaired_bytes", counters_.journal_repaired_bytes);
  counter("service.tmp_files_removed", counters_.tmp_files_removed);
  gauge("service.queue_depth", queue_.size());
  gauge("service.active", active_ != nullptr ? 1 : 0);
  snapshot.MergeFrom(runner_metrics_);

  std::ostringstream os;
  telemetry::WriteMetricsText(os, snapshot);
  return os.str();
}

SweepService::Counters SweepService::counters() const {
  std::unique_lock<std::mutex> lk(mu_);
  return counters_;
}

std::size_t SweepService::queue_depth() const {
  std::unique_lock<std::mutex> lk(mu_);
  return queue_.size();
}

}  // namespace ultra::service
