#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

namespace ultra::service {

namespace {

/// Converts a seconds deadline to the timeval SO_SNDTIMEO/SO_RCVTIMEO want.
/// Sub-microsecond positives round up to 1us instead of truncating to
/// "block forever".
timeval ToTimeval(double seconds) {
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  return tv;
}

}  // namespace

SweepClient::SweepClient(const std::string& socket_path,
                         const ClientOptions& options) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("cannot create socket: ") +
                             std::strerror(errno));
  }
  // Deadlines are kernel-level socket options, deliberately *below* the
  // failpoint seam: a chaos run that freezes the daemon's sends must still
  // see this client time out rather than hang the harness.
  if (options.connect_timeout_seconds > 0.0) {
    const timeval tv = ToTimeval(options.connect_timeout_seconds);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (options.recv_timeout_seconds > 0.0) {
    const timeval tv = ToTimeval(options.recv_timeout_seconds);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved_errno = errno;
    ::close(fd_);
    fd_ = -1;
    if (saved_errno == EAGAIN || saved_errno == EWOULDBLOCK ||
        saved_errno == EINPROGRESS || saved_errno == ETIMEDOUT) {
      throw TimeoutError("connect to " + socket_path + " timed out");
    }
    throw std::runtime_error("cannot connect to " + socket_path + ": " +
                             std::strerror(saved_errno));
  }
}

SweepClient::~SweepClient() {
  if (fd_ >= 0) ::close(fd_);
}

SweepClient::SweepClient(SweepClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

SweepClient& SweepClient::operator=(SweepClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Frame SweepClient::Call(MsgType request, const persist::Encoder& payload,
                        MsgType expected_reply) {
  WriteFrame(fd_, static_cast<std::uint32_t>(request), payload.bytes());
  std::optional<Frame> reply = ReadFrame(fd_);
  if (!reply.has_value()) {
    throw std::runtime_error(
        "server closed the connection without replying (poisoned frame or "
        "daemon shutdown)");
  }
  if (reply->type != static_cast<std::uint32_t>(expected_reply)) {
    throw persist::FormatError("unexpected reply message type");
  }
  return *std::move(reply);
}

SubmitReply SweepClient::Submit(const SubmitRequest& request) {
  persist::Encoder e;
  EncodeSubmitRequest(e, request);
  const Frame reply = Call(MsgType::kSubmit, e, MsgType::kSubmitReply);
  persist::Decoder d(reply.payload);
  return DecodeSubmitReply(d);
}

WaitReply SweepClient::Wait(const WaitRequest& request) {
  persist::Encoder e;
  EncodeWaitRequest(e, request);
  const Frame reply = Call(MsgType::kWait, e, MsgType::kWaitReply);
  persist::Decoder d(reply.payload);
  return DecodeWaitReply(d);
}

std::string SweepClient::Status() {
  persist::Encoder e;
  const Frame reply = Call(MsgType::kStatus, e, MsgType::kStatusReply);
  persist::Decoder d(reply.payload);
  return DecodeStatusReply(d).text;
}

CancelReply SweepClient::Cancel(std::uint64_t request_id) {
  persist::Encoder e;
  EncodeCancelRequest(e, CancelRequest{request_id});
  const Frame reply = Call(MsgType::kCancel, e, MsgType::kCancelReply);
  persist::Decoder d(reply.payload);
  return DecodeCancelReply(d);
}

void SweepClient::Shutdown(bool drain) {
  persist::Encoder e;
  EncodeShutdownRequest(e, ShutdownRequest{drain});
  (void)Call(MsgType::kShutdown, e, MsgType::kShutdownReply);
}

}  // namespace ultra::service
