// Shared checkpoint plumbing for the four cycle-level cores.
//
// Each core keeps its microarchitectural state in locals inside Run(); the
// checkpoint hook is therefore a pair of lambdas defined next to those
// locals (one serializing, one restoring) plus a CheckpointSession that
// decides *when* to capture and stamps/validates the header. The capture
// point is the top of the cycle loop, before phase 1: a checkpoint at
// cycle k holds the machine exactly as the uninterrupted run saw it when
// it began cycle k, so a restored run re-executes cycle k onward
// cycle-for-cycle identically — including live fault corruptions, which
// ride along inside the serialized datapath state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/processor.hpp"
#include "core/station.hpp"
#include "core/config_codec.hpp"
#include "core/exec.hpp"
#include "isa/program_codec.hpp"
#include "persist/checkpoint.hpp"
#include "telemetry/telemetry.hpp"

namespace ultra::core {

inline void SaveFetchedInstr(persist::Encoder& e, const FetchedInstr& f) {
  e.U64(f.pc);
  e.U64(isa::Encode(f.inst));
  e.Bool(f.is_control);
  e.Bool(f.predicted_taken);
  e.U64(f.predicted_next_pc);
}

inline void RestoreFetchedInstr(persist::Decoder& d, FetchedInstr& f) {
  f.pc = static_cast<std::size_t>(d.U64());
  const auto inst = isa::Decode(d.U64());
  if (!inst) throw persist::FormatError("undecodable instruction");
  f.inst = *inst;
  f.is_control = d.Bool();
  f.predicted_taken = d.Bool();
  f.predicted_next_pc = static_cast<std::size_t>(d.U64());
}

inline void SaveInstrTiming(persist::Encoder& e, const InstrTiming& t) {
  e.U64(t.seq);
  e.I32(t.station);
  e.U64(t.pc);
  e.U64(isa::Encode(t.inst));
  e.U64(t.fetch_cycle);
  e.U64(t.issue_cycle);
  e.U64(t.complete_cycle);
  e.U64(t.commit_cycle);
}

inline void RestoreInstrTiming(persist::Decoder& d, InstrTiming& t) {
  t.seq = d.U64();
  t.station = d.I32();
  t.pc = static_cast<std::size_t>(d.U64());
  const auto inst = isa::Decode(d.U64());
  if (!inst) throw persist::FormatError("undecodable instruction");
  t.inst = *inst;
  t.fetch_cycle = d.U64();
  t.issue_cycle = d.U64();
  t.complete_cycle = d.U64();
  t.commit_cycle = d.U64();
}

inline void SaveStation(persist::Encoder& e, const Station& st) {
  e.Bool(st.valid);
  e.U64(st.seq);
  SaveFetchedInstr(e, st.fetched);
  e.Bool(st.issued);
  e.Bool(st.finished);
  e.I32(st.busy_remaining);
  e.U32(st.arg_a);
  e.U32(st.arg_b);
  datapath::Save(e, st.result);
  e.Bool(st.resolved);
  e.Bool(st.actual_taken);
  e.U64(st.actual_next_pc);
  e.Bool(st.mem_submitted);
  e.Bool(st.mem_done);
  e.U64(st.mem_id);
  e.U64(st.generation);
  SaveInstrTiming(e, st.timing);
}

inline void RestoreStation(persist::Decoder& d, Station& st) {
  st.valid = d.Bool();
  st.seq = d.U64();
  RestoreFetchedInstr(d, st.fetched);
  st.issued = d.Bool();
  st.finished = d.Bool();
  st.busy_remaining = d.I32();
  st.arg_a = d.U32();
  st.arg_b = d.U32();
  datapath::Restore(d, st.result);
  st.resolved = d.Bool();
  st.actual_taken = d.Bool();
  st.actual_next_pc = static_cast<std::size_t>(d.U64());
  st.mem_submitted = d.Bool();
  st.mem_done = d.Bool();
  st.mem_id = d.U64();
  st.generation = d.U64();
  RestoreInstrTiming(d, st.timing);
}

/// In-flight memory tags, emitted sorted by request id so the bytes are
/// deterministic regardless of hash-map iteration order.
inline void SaveInflight(persist::Encoder& e, const InflightMap& inflight) {
  std::vector<std::uint64_t> ids;
  ids.reserve(inflight.size());
  for (const auto& [id, tag] : inflight) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  e.U32(static_cast<std::uint32_t>(ids.size()));
  for (const std::uint64_t id : ids) {
    const MemTag& tag = inflight.at(id);
    e.U64(id);
    e.U64(tag.tag);
    e.U64(tag.generation);
  }
}

inline void RestoreInflight(persist::Decoder& d, InflightMap& inflight) {
  inflight.clear();
  const std::uint32_t n = d.U32();
  inflight.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t id = d.U64();
    MemTag tag;
    tag.tag = d.U64();
    tag.generation = d.U64();
    inflight.emplace(id, tag);
  }
}

/// The in-progress RunResult, minus regs/memory (both derived from
/// committed state when Run() returns) and Ipc() (computed).
inline void SavePartialResult(persist::Encoder& e, const RunResult& r) {
  e.Bool(r.halted);
  e.U64(r.cycles);
  e.U64(r.committed);
  e.U64(r.stats.mispredictions);
  e.U64(r.stats.forwarded_loads);
  e.U64(r.stats.squashed_instructions);
  e.U64(r.stats.load_count);
  e.U64(r.stats.store_count);
  e.U64(r.stats.fetch_stall_cycles);
  e.U64(r.stats.window_full_cycles);
  e.U64(r.stats.fallback_count);
  e.U64(r.stats.fault.injected);
  e.U64(r.stats.fault.checks);
  e.U64(r.stats.fault.divergences);
  e.U64(r.stats.fault.resyncs);
  e.U64(r.stats.fault.squashes);
  e.U32(static_cast<std::uint32_t>(r.timeline.size()));
  for (const InstrTiming& t : r.timeline) SaveInstrTiming(e, t);
}

inline void RestorePartialResult(persist::Decoder& d, RunResult& r) {
  r.halted = d.Bool();
  r.cycles = d.U64();
  r.committed = d.U64();
  r.stats.mispredictions = d.U64();
  r.stats.forwarded_loads = d.U64();
  r.stats.squashed_instructions = d.U64();
  r.stats.load_count = d.U64();
  r.stats.store_count = d.U64();
  r.stats.fetch_stall_cycles = d.U64();
  r.stats.window_full_cycles = d.U64();
  r.stats.fallback_count = d.U64();
  r.stats.fault.injected = d.U64();
  r.stats.fault.checks = d.U64();
  r.stats.fault.divergences = d.U64();
  r.stats.fault.resyncs = d.U64();
  r.stats.fault.squashes = d.U64();
  r.timeline.clear();
  const std::uint32_t n = d.U32();
  r.timeline.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    InstrTiming t;
    RestoreInstrTiming(d, t);
    r.timeline.push_back(t);
  }
}

/// Telemetry counter slots (when a bound sink is attached), so metrics
/// resume mid-run exactly where the checkpoint left them. The pipeline
/// tracer's event ring is deliberately NOT checkpointed: trace events are
/// observability output, not machine state, and do not affect timing.
inline void SaveTelemetrySlots(persist::Encoder& e, const CoreConfig& config) {
  const bool on =
      config.telemetry != nullptr && config.telemetry->sheet.enabled();
  e.Bool(on);
  if (!on) return;
  const auto slots = config.telemetry->sheet.slots();
  e.U32(static_cast<std::uint32_t>(slots.size()));
  for (const std::uint64_t v : slots) e.U64(v);
}

inline void RestoreTelemetrySlots(persist::Decoder& d,
                                  const CoreConfig& config) {
  if (!d.Bool()) return;
  const std::uint32_t n = d.U32();
  std::vector<std::uint64_t> values;
  values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) values.push_back(d.U64());
  if (config.telemetry != nullptr) {
    config.telemetry->sheet.RestoreSlots(values);
  }
}

/// Decides when to capture, stamps headers, and validates a resume
/// checkpoint against this core's kind / config / program before the run
/// starts (a mismatch throws persist::FormatError rather than diverging
/// silently).
class CheckpointSession {
 public:
  CheckpointSession(const CoreConfig& config, ProcessorKind kind,
                    const isa::Program& program)
      : ctl_(config.checkpoint), kind_(kind) {
    if (ctl_ == nullptr) return;
    config_fingerprint_ = FingerprintConfig(config);
    program_fingerprint_ = isa::FingerprintProgram(program);
    if (ctl_->resume != nullptr) {
      const persist::CheckpointHeader& h = ctl_->resume->header;
      if (h.core_kind != static_cast<std::uint8_t>(kind_)) {
        throw persist::FormatError("checkpoint is for a different core");
      }
      if (h.config_fingerprint != config_fingerprint_) {
        throw persist::FormatError(
            "checkpoint config fingerprint mismatch");
      }
      if (h.program_fingerprint != program_fingerprint_) {
        throw persist::FormatError(
            "checkpoint program fingerprint mismatch");
      }
    }
  }

  /// Null when no checkpointing is attached or this run is not a resume.
  [[nodiscard]] const persist::Checkpoint* resume() const {
    return ctl_ != nullptr ? ctl_->resume : nullptr;
  }

  /// Captures a checkpoint when the control says cycle @p cycle is due.
  /// Returns true when the run should stop right after the capture
  /// (CheckpointControl::stop_after_save).
  template <typename SaveFn>
  [[nodiscard]] bool MaybeSave(std::uint64_t cycle, SaveFn&& save) {
    if (ctl_ == nullptr || !ctl_->ShouldSave(cycle)) return false;
    persist::Encoder e;
    save(e);
    persist::Checkpoint checkpoint;
    checkpoint.header.core_kind = static_cast<std::uint8_t>(kind_);
    checkpoint.header.cycle = cycle;
    checkpoint.header.config_fingerprint = config_fingerprint_;
    checkpoint.header.program_fingerprint = program_fingerprint_;
    checkpoint.state = e.Take();
    if (ctl_->sink) ctl_->sink(std::move(checkpoint));
    return ctl_->stop_after_save;
  }

 private:
  persist::CheckpointControl* ctl_;
  ProcessorKind kind_;
  std::uint64_t config_fingerprint_ = 0;
  std::uint64_t program_fingerprint_ = 0;
};

}  // namespace ultra::core
