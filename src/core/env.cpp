#include "core/env.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

namespace ultra::core {

namespace {

std::mutex warned_mu;
std::set<std::string>& WarnedVars() {
  static std::set<std::string> vars;
  return vars;
}

void WarnOnce(const char* name, const char* value, const char* why) {
  const std::lock_guard<std::mutex> lock(warned_mu);
  if (!WarnedVars().insert(name).second) return;
  std::fprintf(stderr, "warning: ignoring %s=\"%s\" (%s)\n", name, value,
               why);
}

}  // namespace

std::optional<long long> ParseEnvInt(const char* name, long long min_value,
                                     long long max_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  const char* end = value + std::strlen(value);
  long long parsed = 0;
  const auto [ptr, ec] = std::from_chars(value, end, parsed, 10);
  if (ec != std::errc{} || ptr != end) {
    WarnOnce(name, value, "not an integer");
    return std::nullopt;
  }
  if (parsed < min_value || parsed > max_value) {
    WarnOnce(name, value, "out of range");
    return std::nullopt;
  }
  return parsed;
}

void ResetEnvWarningsForTest() {
  const std::lock_guard<std::mutex> lock(warned_mu);
  WarnedVars().clear();
}

}  // namespace ultra::core
