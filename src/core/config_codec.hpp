// Binary codec + fingerprint for CoreConfig.
//
// The encoding covers every field that affects simulated behavior —
// including the attached fault plan — and skips the runtime attachments
// (cancel flag, telemetry sink, checkpoint control), which are
// per-invocation plumbing rather than machine configuration. Checkpoint
// headers carry FingerprintConfig so a restore into a differently
// configured core is rejected instead of silently diverging; repro bundles
// carry the full encoding so replay_bundle can rebuild the exact machine.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "persist/serial.hpp"

namespace ultra::core {

void EncodeCoreConfig(persist::Encoder& e, const CoreConfig& config);
[[nodiscard]] CoreConfig DecodeCoreConfig(persist::Decoder& d);
[[nodiscard]] std::uint64_t FingerprintConfig(const CoreConfig& config);

}  // namespace ultra::core
