// In-order functional reference simulator.
//
// Executes a program architecturally, one instruction at a time. It defines
// the correct final state every cycle-level processor must reproduce, and
// produces the dynamic trace used by the oracle branch predictor.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.hpp"
#include "memory/backing_store.hpp"

namespace ultra::core {

struct FunctionalResult {
  bool halted = false;                // False = step limit reached.
  std::uint64_t instructions = 0;     // Executed, including halt.
  std::vector<isa::Word> regs;
  memory::BackingStore memory;
  std::vector<std::size_t> trace;     // Dynamic PC sequence.
  /// outcomes_by_pc[pc] = taken/not-taken per dynamic execution of the
  /// control transfer at pc (for memory::OraclePredictor).
  std::vector<std::vector<std::uint8_t>> outcomes_by_pc;
};

class FunctionalSimulator {
 public:
  explicit FunctionalSimulator(int num_regs = isa::kDefaultLogicalRegisters)
      : num_regs_(num_regs) {}

  /// Runs @p program from pc 0 until halt, falling off the end of the code,
  /// or @p max_steps instructions.
  [[nodiscard]] FunctionalResult Run(
      const isa::Program& program,
      std::uint64_t max_steps = 10'000'000) const;

 private:
  int num_regs_;
};

}  // namespace ultra::core
