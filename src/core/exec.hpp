// Per-station execution step, shared by all cycle-level processor models.
//
// The models differ in how argument values reach a station (that is the
// whole point of the paper); once the arguments and the Figure 5 ordering
// flags are in hand, what a station does in a cycle is identical everywhere.
//
// Two optional features from the paper's Section 7 are wired through here:
//  * shared ALUs ("ALUs can be effectively shared ... efficient scheduling
//    logic" [6]) -- a station may begin an ALU operation only when the
//    AluScheduler granted it one of the k shared ALUs;
//  * memory renaming / store-to-load forwarding ("The memory bandwidth
//    pressure can also be reduced by using memory-renaming hardware, which
//    can be implemented by CSPP circuits") -- a load whose preceding stores
//    all have known addresses can either forward the matching store's data
//    without touching memory, or proceed to memory past disambiguated
//    stores.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "core/station.hpp"
#include "memory/memory_system.hpp"

namespace ultra::core {

/// Identifies the station an in-flight memory request belongs to;
/// generation filters out responses to squashed instructions.
struct MemTag {
  std::uint64_t tag = 0;  // Core-specific: station slot or sequence number.
  std::uint64_t generation = 0;
};

using InflightMap = std::unordered_map<std::uint64_t, MemTag>;

/// Everything a station needs from the rest of the machine this cycle.
struct StepContext {
  bool prev_stores_done = false;  // Figure 5 circuits.
  bool prev_loads_done = false;
  bool committed_ok = false;
  bool alu_granted = true;        // From the AluScheduler (or unlimited).
  // Store-to-load forwarding (loads only, when the feature is on).
  bool forwarding_enabled = false;
  bool load_can_proceed = false;  // All preceding store addresses known.
  bool load_forward = false;      // Nearest same-address store supplies data.
  isa::Word forward_value = 0;
};

/// True when @p op occupies one of the (possibly shared) ALUs while
/// executing. Loads/stores use the memory datapath's address adders and
/// nop/halt use none.
bool NeedsAlu(isa::Opcode op);

/// True when the station is ready to begin an ALU operation this cycle
/// (used to build the AluScheduler's request vector).
bool WantsAlu(const Station& st, const datapath::ResolvedArgs& args);

/// Advances one station by one cycle. Returns true when a control transfer
/// resolved this cycle and its actual next pc differs from the predicted
/// one (the caller squashes younger stations and redirects fetch).
bool StepStation(Station& st, const datapath::ResolvedArgs& args,
                 const StepContext& ctx, const isa::LatencyModel& latencies,
                 memory::MemorySystem& mem, std::uint64_t cycle, int leaf,
                 std::uint64_t tag, InflightMap& inflight, RunStats& stats);

/// Applies a completed memory response to its station.
void ApplyMemResponse(Station& st, const memory::MemResponse& resp,
                      std::uint64_t cycle);

// --- Store-to-load forwarding --------------------------------------------

/// One window slot's view for memory disambiguation, in program order.
struct MemWindowEntry {
  bool is_store = false;
  bool is_load = false;
  bool addr_known = false;
  isa::Word addr = 0;
  bool data_ready = false;  // Stores: the value to be stored is known.
  isa::Word data = 0;
};

struct LoadForwardDecision {
  bool can_proceed = false;  // All preceding store addresses are known.
  bool forward = false;      // A same-address store supplies the value.
  isa::Word value = 0;
};

/// Decides, for the load at @p pos (whose address must be known), whether
/// it can issue and whether it forwards. Walks back to the nearest
/// same-address store; an unknown store address blocks (conservative
/// disambiguation, as CSPP-based memory renaming would).
LoadForwardDecision ResolveLoadForwarding(
    std::span<const MemWindowEntry> window, std::size_t pos);

/// Fills a MemWindowEntry from a station and its current arguments.
MemWindowEntry MakeMemWindowEntry(const Station& st,
                                  const datapath::ResolvedArgs& args);

/// Mapped twin of ResolveLoadForwarding for cores whose window entries are
/// not contiguous in age order (the packed fast paths keep them indexed by
/// ring position or station slot): @p entry_at(k) returns the entry for age
/// index k. The walk and the decision rules are identical to the span
/// variant, which remains the reference the differential tests compare
/// against.
template <typename EntryAt>
LoadForwardDecision ResolveLoadForwardingMapped(EntryAt&& entry_at,
                                                std::size_t pos) {
  const MemWindowEntry& self = entry_at(pos);
  assert(self.is_load && self.addr_known);
  const isa::Word addr = self.addr;
  for (std::size_t j = pos; j-- > 0;) {
    const MemWindowEntry& e = entry_at(j);
    if (!e.is_store) continue;
    if (!e.addr_known) return {};  // Ambiguous: wait.
    if (e.addr != addr) continue;
    if (!e.data_ready) return {};  // Right store, data not yet known.
    return {true, true, e.data};
  }
  return {true, false, 0};  // Disambiguated against every preceding store.
}

}  // namespace ultra::core
