#include "core/usi_core.hpp"

#include <cassert>

#include <bit>

#include "core/checkpoint_util.hpp"
#include "core/exec.hpp"
#include "core/fetch.hpp"
#include "core/telemetry_hooks.hpp"
#include "datapath/bitset.hpp"
#include "datapath/datapath.hpp"
#include "datapath/packed_resolve.hpp"
#include "datapath/scheduler.hpp"
#include "fault/fault.hpp"

namespace ultra::core {

namespace {

/// H-tree levels from station @p a to the root of the smallest 4-ary
/// subtree also containing @p b.
int HTreeLevels(int a, int b) {
  int h = 0;
  while (a != b) {
    a /= 4;
    b /= 4;
    ++h;
  }
  return h;
}

/// Cycles for a value to travel from station @p from to station @p to in a
/// datapath latched every @p levels_per_stage levels (0 = single-cycle).
int PipeCycles(int from, int to, int levels_per_stage) {
  if (levels_per_stage <= 0) return 1;
  const int crossing = 2 * HTreeLevels(from, to);  // Up, then down.
  return std::max(1, (crossing + levels_per_stage - 1) / levels_per_stage);
}

}  // namespace

RunResult UltrascalarICore::Run(const isa::Program& program) {
  const int n = config_.window_size;
  const int L = config_.num_regs;
  datapath::UltrascalarIDatapath dp(n, L);
  datapath::SequencingCspp seq(n);
  datapath::AluScheduler alu_scheduler(n);
  memory::MemorySystem mem(config_.mem, n);
  mem.Reset(program.initial_memory());
  FetchEngine fetch(&program, config_, MakePredictor(config_, program));

  std::vector<Station> stations(static_cast<std::size_t>(n));
  std::vector<datapath::RegBinding> committed(static_cast<std::size_t>(L));
  for (auto& b : committed) b.ready = true;
  // Cycle at which each committed register last changed (pipelined-datapath
  // visibility; see the read lambda below).
  std::vector<std::uint64_t> committed_at(static_cast<std::size_t>(L), 0);

  int head = 0;   // Ring index of the oldest station.
  int count = 0;  // Allocated stations: [head, head + count) mod n.
  std::uint64_t next_seq = 0;
  InflightMap inflight;
  RunResult result;
  bool done = false;

  // Checked mode runs the incremental machinery plus the cross-validation
  // below, so everything keyed on `incremental` applies to it too.
  const bool incremental =
      config_.datapath_eval != DatapathEval::kFullRecompute;
  const bool checked = config_.datapath_eval == DatapathEval::kChecked;
  const bool pipelined = config_.pipeline_levels_per_stage > 0;
  // Word-parallel packed mode, fallback-free: the Figure 5 flags, their
  // CSPP prefixes, the ALU grants, and the execute phase's visit set all
  // evaluate 64 stations per word op under every CoreConfig. Two tiers
  // share that machinery:
  //  * fast tier -- argument delivery is event-driven through a
  //    PackedWriterMap (per-register writer/reader rows over the ring), so
  //    the per-cycle O(n) datapath propagation and argument sweep disappear
  //    entirely; a stale mask re-resolves only stations whose source
  //    changed. Store forwarding and telemetry run here.
  //  * observation tier -- fault plans corrupt the incremental delivery
  //    state and pipelined delivery is a function of wall-clock distance,
  //    so those configs keep the incremental argument machinery (dp_state
  //    propagation + the per-cycle resolve sweep) underneath the packed
  //    prefixes and walk. Byte-identical by construction, and the only
  //    packed configs that still pay O(n) per cycle.
  const bool packed = config_.datapath_eval == DatapathEval::kPacked;
  const bool fast =
      packed && config_.fault_plan == nullptr && !pipelined;
  const bool maintain_dp = incremental && !fast;

  CoreTelemetry tel(config_);
  // The program-order last-writer sweep serves both the pipelined datapath
  // and the propagation-distance histogram.
  const bool track_writers = pipelined || tel.metrics_on();

  fault::FaultInjector injector(config_.fault_plan.get());
  fault::DatapathChecker checker(config_.checker_stride);
  // Checked-mode scratch: the delivery buffer as the stations would read
  // it, register-major like the state's own storage.
  std::vector<datapath::RegBinding> check_snapshot;
  if (checked) check_snapshot.resize(static_cast<std::size_t>(n) * L);
  // Remaining injected-stall cycles per station.
  std::vector<int> fault_stall(static_cast<std::size_t>(n), 0);

  // Persistent datapath state for the incremental path: mutated through
  // self-diffing setters each cycle, so only changed register columns are
  // re-propagated and nothing is allocated.
  datapath::UsiDatapathState dp_state(n, L);
  for (int r = 0; r < L; ++r) {
    dp_state.SetCommitted(r, committed[static_cast<std::size_t>(r)]);
  }
  // Full-recompute buffers (reference path only).
  std::vector<datapath::RegBinding> outgoing;
  std::vector<std::uint8_t> modified;
  std::vector<datapath::RegBinding> incoming;
  if (!incremental) {
    outgoing.resize(static_cast<std::size_t>(n) * L);
    modified.resize(static_cast<std::size_t>(n) * L);
  }

  std::vector<std::uint8_t> no_store(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> no_load(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> branch_ok(static_cast<std::size_t>(n));
  // Per-cycle scratch, hoisted out of the loop so the hot path does not
  // touch the allocator (capacity is reused across cycles).
  std::vector<std::uint8_t> prev_stores_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_loads_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_confirmed(static_cast<std::size_t>(n));
  std::vector<datapath::ResolvedArgs> args_at(static_cast<std::size_t>(n));
  std::vector<core::MemWindowEntry> mem_window;
  std::vector<std::uint8_t> alu_requests(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> alu_grant(static_cast<std::size_t>(n));
  // Program-order last writer per register during phase 3a (pipelined
  // datapath only); replaces the per-operand backward window scan.
  std::vector<int> last_writer(static_cast<std::size_t>(L));
  std::vector<FetchedInstr> fetch_batch;

  // Packed shadow state (kPacked only). The observation tier recomposes the
  // flag masks from the stations every cycle; the fast tier mutates them at
  // event sites and never rebuilds them. Either way they are derived state
  // and never checkpointed (RebuildPackedShadow below reconstructs them on
  // resume).
  const int pw = datapath::PackedWordCount(n);
  datapath::PackedBits valid_b, fin_b, iss_b, res_b, msub_b, ld_b, stb_b,
      cf_b, alu_like_b, needs_alu_b, argr_b, cond_b, psd_b, pld_b, pcf_b,
      req_b, grant_b, stall_b, stale_b, mw_stale_b;
  if (packed) {
    for (auto* p : {&valid_b, &fin_b, &iss_b, &res_b, &msub_b, &ld_b, &stb_b,
                    &cf_b, &alu_like_b, &needs_alu_b, &argr_b, &cond_b,
                    &psd_b, &pld_b, &pcf_b, &req_b, &grant_b, &stall_b,
                    &stale_b, &mw_stale_b}) {
      p->Assign(n);
    }
  }
  // Fast-tier structures: per-register writer/reader rows over the ring,
  // cached resolved arguments, and a position-indexed memory window (the
  // observation/incremental paths keep the age-indexed mem_window above).
  datapath::PackedWriterMap wmap;
  std::vector<core::MemWindowEntry> mem_window_pos;
  if (fast) {
    wmap.Assign(n, L);
    mem_window_pos.resize(static_cast<std::size_t>(n));
  }
  const bool fwd = config_.store_forwarding;

  // Fast-tier event helpers. Clearing a slot must run while the station
  // still holds its instruction (the writer/reader rows are keyed by its
  // register fields).
  const auto fast_clear_slot = [&](int i, const Station& st) {
    const isa::Instruction& inst = st.inst();
    if (isa::WritesRd(inst.op)) wmap.ClearWriter(i, inst.rd);
    if (isa::ReadsRs1(inst.op)) wmap.ClearReader(i, inst.rs1);
    if (isa::ReadsRs2(inst.op)) wmap.ClearReader(i, inst.rs2);
    for (auto* p : {&valid_b, &fin_b, &iss_b, &res_b, &msub_b, &ld_b, &stb_b,
                    &cf_b, &alu_like_b, &needs_alu_b, &argr_b, &stale_b,
                    &mw_stale_b}) {
      p->Clear(i);
    }
    args_at[static_cast<std::size_t>(i)] = datapath::ResolvedArgs{};
    if (fwd) mem_window_pos[static_cast<std::size_t>(i)] = MemWindowEntry{};
  };
  const auto fast_fill_slot = [&](int i, const Station& st) {
    const isa::Instruction& inst = st.inst();
    valid_b.Set(i);
    const isa::Opcode op = inst.op;
    if (op == isa::Opcode::kLoad) {
      ld_b.Set(i);
    } else if (op == isa::Opcode::kStore) {
      stb_b.Set(i);
    } else {
      alu_like_b.Set(i);
    }
    if (isa::IsControlFlow(op)) cf_b.Set(i);
    if (NeedsAlu(op)) needs_alu_b.Set(i);
    if (isa::WritesRd(op)) wmap.SetWriter(i, inst.rd);
    if (isa::ReadsRs1(op)) wmap.AddReader(i, inst.rs1);
    if (isa::ReadsRs2(op)) wmap.AddReader(i, inst.rs2);
    stale_b.Set(i);
    if (fwd) mw_stale_b.Set(i);
  };
  // Station @p j's result binding for register @p r changed (it issued,
  // finished, or its load data arrived): only the readers between j and the
  // next in-flight writer of r resolve against j, so only that span goes
  // stale. Readers beyond the next writer already bind to it; readers at or
  // before j bind elsewhere.
  const auto mark_result_change = [&](int j, isa::RegId r) {
    const int nw = wmap.NearestWriterAfter(j, static_cast<int>(r), head);
    wmap.OrReadersInCyclicRange(static_cast<int>(r), (j + 1) % n,
                                nw >= 0 ? (nw + 1) % n : head, stale_b);
  };

  CheckpointSession ckpt(config_, ProcessorKind::kUltrascalarI, program);
  const auto save_state = [&](persist::Encoder& e) {
    for (const Station& st : stations) SaveStation(e, st);
    for (const auto& b : committed) datapath::Save(e, b);
    for (const std::uint64_t c : committed_at) e.U64(c);
    e.I32(head);
    e.I32(count);
    e.U64(next_seq);
    SaveInflight(e, inflight);
    SavePartialResult(e, result);
    for (const int s : fault_stall) e.I32(s);
    dp_state.SaveState(e);
    injector.SaveState(e);
    checker.SaveState(e);
    fetch.SaveState(e);
    mem.SaveState(e);
    SaveTelemetrySlots(e, config_);
  };
  std::uint64_t start_cycle = 0;
  if (ckpt.resume() != nullptr) {
    persist::Decoder d(ckpt.resume()->state);
    for (Station& st : stations) RestoreStation(d, st);
    for (auto& b : committed) datapath::Restore(d, b);
    for (std::uint64_t& c : committed_at) c = d.U64();
    head = d.I32();
    count = d.I32();
    next_seq = d.U64();
    RestoreInflight(d, inflight);
    RestorePartialResult(d, result);
    for (int& s : fault_stall) s = d.I32();
    dp_state.RestoreState(d);
    injector.RestoreState(d);
    checker.RestoreState(d);
    fetch.RestoreState(d);
    mem.RestoreState(d);
    RestoreTelemetrySlots(d, config_);
    if (!d.AtEnd()) {
      throw persist::FormatError("trailing checkpoint bytes");
    }
    start_cycle = ckpt.resume()->header.cycle;
    if (packed) {
      // Rebuild the derived packed shadow from the restored stations. The
      // fast tier's cached arguments are a pure function of station state
      // and the committed file, so marking every live station stale makes
      // the first resumed cycle recompute exactly the values the
      // uninterrupted run had cached.
      for (int i = 0; i < n; ++i) {
        const Station& st = stations[static_cast<std::size_t>(i)];
        if (fast && st.valid) {
          fast_fill_slot(i, st);
          fin_b.SetTo(i, st.finished);
          iss_b.SetTo(i, st.issued);
          res_b.SetTo(i, st.resolved);
          msub_b.SetTo(i, st.mem_submitted);
        }
        if (fault_stall[static_cast<std::size_t>(i)] > 0) stall_b.Set(i);
      }
    }
  }

  for (std::uint64_t cycle = start_cycle; cycle < config_.max_cycles && !done;
       ++cycle) {
    if (ckpt.MaybeSave(cycle, save_state)) break;
    if (config_.cancel && (cycle & 1023u) == 0 &&
        config_.cancel->load(std::memory_order_relaxed)) {
      break;  // Abandoned run: halted stays false.
    }
    result.cycles = cycle + 1;
    tel.OnCycle(cycle, count);

    // --- Phase 1: combinational propagation (end-of-last-cycle state). ---
    if (fast) {
      // Event-driven delivery: re-resolve only stations whose argument
      // source changed since the last cycle (writer result movement, a
      // commit touching their register, a squash, their own fill, or the
      // head advancing onto them). Stations are untouched since the end of
      // the previous cycle, so this drain sees exactly the snapshot the
      // incremental path's phase-1 propagation would have delivered.
      ForEachSetBit(stale_b, [&](int i) {
        const Station& st = stations[static_cast<std::size_t>(i)];
        if (!st.valid) return;
        const isa::Instruction& inst = st.inst();
        datapath::ResolvedArgs args;
        const auto resolve = [&](isa::RegId r) -> datapath::RegBinding {
          if (i == head) return committed[r];  // Oldest reads the file.
          const int j = wmap.NearestWriterBefore(i, r, head);
          return j >= 0 ? stations[static_cast<std::size_t>(j)].result
                        : committed[r];
        };
        if (isa::ReadsRs1(inst.op)) args.arg1 = resolve(inst.rs1);
        if (isa::ReadsRs2(inst.op)) args.arg2 = resolve(inst.rs2);
        args_at[static_cast<std::size_t>(i)] = args;
        argr_b.SetTo(i, (!isa::ReadsRs1(inst.op) || args.arg1.ready) &&
                            (!isa::ReadsRs2(inst.op) || args.arg2.ready));
        if (fwd) mw_stale_b.Set(i);
      });
      stale_b.ClearAll();
    } else if (packed) {
      // Word-accumulator composition: invalid lanes are all-zero (their
      // class bits being clear makes every derived condition vacuous).
      std::uint64_t av = 0, af = 0, ai = 0, ar = 0, am = 0, al = 0, as = 0,
                    ac = 0, aa = 0, an = 0;
      for (int i = 0; i < n; ++i) {
        const Station& st = stations[static_cast<std::size_t>(i)];
        if (st.valid) {
          const std::uint64_t bit = 1ULL << (i & 63);
          av |= bit;
          if (st.finished) af |= bit;
          if (st.issued) ai |= bit;
          if (st.resolved) ar |= bit;
          if (st.mem_submitted) am |= bit;
          const isa::Opcode op = st.inst().op;
          if (op == isa::Opcode::kLoad) {
            al |= bit;
          } else if (op == isa::Opcode::kStore) {
            as |= bit;
          } else {
            aa |= bit;
          }
          if (isa::IsControlFlow(op)) ac |= bit;
          if (NeedsAlu(op)) an |= bit;
        }
        if ((i & 63) == 63 || i == n - 1) {
          const int w = i >> 6;
          valid_b.word(w) = av;
          fin_b.word(w) = af;
          iss_b.word(w) = ai;
          res_b.word(w) = ar;
          msub_b.word(w) = am;
          ld_b.word(w) = al;
          stb_b.word(w) = as;
          cf_b.word(w) = ac;
          alu_like_b.word(w) = aa;
          needs_alu_b.word(w) = an;
          av = af = ai = ar = am = al = as = ac = aa = an = 0;
        }
      }
    } else {
      for (int i = 0; i < n; ++i) {
        const Station& st = stations[static_cast<std::size_t>(i)];
        const bool is_store = st.valid && st.inst().op == isa::Opcode::kStore;
        const bool is_load = st.valid && st.inst().op == isa::Opcode::kLoad;
        no_store[static_cast<std::size_t>(i)] = !is_store || st.finished;
        no_load[static_cast<std::size_t>(i)] = !is_load || st.finished;
        branch_ok[static_cast<std::size_t>(i)] =
            !st.valid || !isa::IsControlFlow(st.inst().op) || st.resolved;
      }
    }
    if (maintain_dp) {
      // Diff the window into the persistent state; commits already pushed
      // their register updates in phase 4 of the previous cycle.
      dp_state.SetOldest(head);
      for (int i = 0; i < n; ++i) {
        const Station& st = stations[static_cast<std::size_t>(i)];
        const bool writes = st.valid && isa::WritesRd(st.inst().op);
        dp_state.SetStationWrite(i, writes, writes ? st.inst().rd : 0,
                                 st.result);
      }
      dp.PropagateIncremental(dp_state);
    } else if (!incremental) {
      std::fill(modified.begin(), modified.end(), 0);
      for (auto& b : outgoing) b = datapath::RegBinding{};
      for (int r = 0; r < L; ++r) {
        outgoing[static_cast<std::size_t>(head) * L + r] =
            committed[static_cast<std::size_t>(r)];
      }
      for (int i = 0; i < n; ++i) {
        const Station& st = stations[static_cast<std::size_t>(i)];
        if (st.valid && isa::WritesRd(st.inst().op)) {
          const std::size_t idx =
              static_cast<std::size_t>(i) * L + st.inst().rd;
          outgoing[idx] = st.result;
          modified[idx] = 1;
        }
      }
      incoming = dp.Propagate(outgoing, modified, head);
    }

    // --- Phase 1b: fault injection + self-checking (before any station
    // reads the delivered values this cycle). ---
    if (injector.active()) {
      injector.BeginCycle(cycle);
      injector.ApplyDatapathFaults(dp_state);
      tel.OnFaults(cycle, injector.pending());
      for (const fault::FaultEvent& e : injector.pending()) {
        if (e.kind == fault::FaultKind::kStallStation) {
          fault_stall[static_cast<std::size_t>(e.station % n)] +=
              static_cast<int>(e.payload % 8) + 1;
          if (packed) stall_b.Set(e.station % n);
          injector.NoteStall();
        }
      }
    }
    if (checked && checker.Due(cycle, injector.HasHazardousPending())) {
      checker.RecordCheck();
      tel.OnCheckerCheck(cycle);
      // Snapshot the (possibly corrupted) delivery buffer, rebuild it from
      // the inputs, and diff. The rebuild is itself the resync, so a
      // detected divergence costs nothing extra to repair.
      for (int r = 0; r < L; ++r) {
        for (int i = 0; i < n; ++i) {
          check_snapshot[static_cast<std::size_t>(r) * n + i] =
              dp_state.incoming(i, r);
        }
      }
      dp_state.MarkAllDirty();
      dp.PropagateIncremental(dp_state);
      std::uint64_t mismatched = 0;
      for (int r = 0; r < L; ++r) {
        for (int i = 0; i < n; ++i) {
          if (check_snapshot[static_cast<std::size_t>(r) * n + i] !=
              dp_state.incoming(i, r)) {
            ++mismatched;
          }
        }
      }
      if (mismatched > 0) {
        checker.RecordDivergence(cycle, mismatched);
        tel.OnCheckerResync(cycle, mismatched);
      }
    }

    if (packed) {
      // Dead stations contribute vacuously true conditions (their class
      // bits are clear), so the cyclic prefixes match the byte-lane CSPP;
      // the head lane is forced true like the reference's k == 0 override.
      for (int w = 0; w < pw; ++w) {
        cond_b.word(w) = ~(stb_b.word(w) & ~fin_b.word(w));
      }
      cond_b.word(pw - 1) &= datapath::PackedTailMask(n);
      datapath::PackedAllPrecedingSatisfyInto(cond_b, head, psd_b);
      psd_b.Set(head);
      for (int w = 0; w < pw; ++w) {
        cond_b.word(w) = ~(ld_b.word(w) & ~fin_b.word(w));
      }
      cond_b.word(pw - 1) &= datapath::PackedTailMask(n);
      datapath::PackedAllPrecedingSatisfyInto(cond_b, head, pld_b);
      pld_b.Set(head);
      for (int w = 0; w < pw; ++w) {
        cond_b.word(w) = ~(cf_b.word(w) & ~res_b.word(w));
      }
      cond_b.word(pw - 1) &= datapath::PackedTailMask(n);
      datapath::PackedAllPrecedingSatisfyInto(cond_b, head, pcf_b);
      pcf_b.Set(head);
    } else {
      seq.AllPrecedingSatisfyInto(no_store, head, prev_stores_done);
      seq.AllPrecedingSatisfyInto(no_load, head, prev_loads_done);
      seq.AllPrecedingSatisfyInto(branch_ok, head, prev_confirmed);
    }

    // --- Phase 2: memory responses arriving this cycle. ---
    mem.Tick();
    for (const auto& resp : mem.DrainCompleted()) {
      const auto it = inflight.find(resp.id);
      if (it == inflight.end()) continue;
      const MemTag tag = it->second;
      inflight.erase(it);
      Station& st = stations[static_cast<std::size_t>(tag.tag)];
      if (st.valid && st.generation == tag.generation) {
        const bool was_finished = st.finished;
        ApplyMemResponse(st, resp, cycle);
        if (packed) fin_b.Set(static_cast<int>(tag.tag));
        if (fast) {
          // The load's result binding just became ready: its readers
          // re-resolve at the next phase-1 drain, exactly when the
          // incremental propagation would deliver the new value.
          if (isa::WritesRd(st.inst().op)) {
            mark_result_change(static_cast<int>(tag.tag), st.inst().rd);
          }
          if (fwd) mw_stale_b.Set(static_cast<int>(tag.tag));
        }
        tel.OnMemComplete(cycle, static_cast<int>(tag.tag), st, was_finished);
      }
    }

    // --- Phase 3a: resolve arguments and schedule shared resources. ---
    const int live = count;
    if (fast) {
      // Arguments were refreshed by the phase-1 stale drain. Refresh the
      // memory-window entries whose station or arguments moved -- after
      // phase 2, which is when the incremental path builds its window, so
      // this cycle's memory completions are visible to disambiguation.
      if (fwd) {
        ForEachSetBit(mw_stale_b, [&](int i) {
          mem_window_pos[static_cast<std::size_t>(i)] = MakeMemWindowEntry(
              stations[static_cast<std::size_t>(i)],
              args_at[static_cast<std::size_t>(i)]);
        });
        mw_stale_b.ClearAll();
      }
      if (tel.metrics_on()) {
        // Propagation-distance sweep: position bookkeeping only (no
        // argument resolution), replicating the OnDistance calls the
        // incremental resolve sweep makes, in the same order.
        std::fill(last_writer.begin(), last_writer.end(), -1);
        for (int k = 0; k < live; ++k) {
          const int i = (head + k) % n;
          const Station& st = stations[static_cast<std::size_t>(i)];
          if (!st.valid) continue;
          const isa::Instruction& inst = st.inst();
          const auto dist = [&](isa::RegId r) {
            const int j =
                k == 0 ? head : last_writer[static_cast<std::size_t>(r)];
            tel.OnDistance(j >= 0 ? (i - j + n) % n : (i - head + n) % n);
          };
          if (isa::ReadsRs1(inst.op)) dist(inst.rs1);
          if (isa::ReadsRs2(inst.op)) dist(inst.rs2);
          if (isa::WritesRd(inst.op)) {
            last_writer[static_cast<std::size_t>(inst.rd)] = i;
          }
        }
      }
    } else {
    std::fill(args_at.begin(), args_at.end(), datapath::ResolvedArgs{});
    mem_window.assign(static_cast<std::size_t>(live), core::MemWindowEntry{});
    if (track_writers) std::fill(last_writer.begin(), last_writer.end(), -1);
    for (int k = 0; k < live; ++k) {
      const int i = (head + k) % n;
      const Station& st = stations[static_cast<std::size_t>(i)];
      if (!st.valid) continue;
      const isa::Instruction& inst = st.inst();
      datapath::ResolvedArgs args;
      // The oldest station ignores the ring and reads the committed file.
      const auto read = [&](isa::RegId r) -> datapath::RegBinding {
        if (tel.metrics_on()) {
          // Ring distance from the value's source: the nearest preceding
          // writer, or the committed file at the oldest station.
          const int j =
              k == 0 ? head : last_writer[static_cast<std::size_t>(r)];
          tel.OnDistance(j >= 0 ? (i - j + n) % n : (i - head + n) % n);
        }
        if (k == 0) return committed[r];
        if (!pipelined) {
          return incremental
                     ? dp_state.incoming(i, r)
                     : incoming[static_cast<std::size_t>(i) * L + r];
        }
        // Pipelined datapath: the nearest preceding writer (tracked per
        // register by the program-order sweep) plus the distance-dependent
        // latch latency.
        const int j = last_writer[static_cast<std::size_t>(r)];
        if (j >= 0) {
          const Station& w = stations[static_cast<std::size_t>(j)];
          if (!w.finished) return {w.result.value, false};
          const int lat =
              PipeCycles(j, i, config_.pipeline_levels_per_stage);
          if (cycle >= w.timing.complete_cycle +
                           static_cast<std::uint64_t>(lat)) {
            return w.result;
          }
          return {w.result.value, false};  // Still in flight on the tree.
        }
        // Committed-file read: the file lives in the oldest station, so the
        // value still crosses the tree from there.
        const int lat =
            PipeCycles(head, i, config_.pipeline_levels_per_stage);
        if (cycle >= committed_at[r] + static_cast<std::uint64_t>(lat)) {
          return committed[r];
        }
        return {committed[r].value, false};
      };
      if (isa::ReadsRs1(inst.op)) args.arg1 = read(inst.rs1);
      if (isa::ReadsRs2(inst.op)) args.arg2 = read(inst.rs2);
      args_at[static_cast<std::size_t>(i)] = args;
      if (packed) {
        argr_b.SetTo(i, (!isa::ReadsRs1(inst.op) || args.arg1.ready) &&
                            (!isa::ReadsRs2(inst.op) || args.arg2.ready));
      }
      if (track_writers && isa::WritesRd(inst.op)) {
        last_writer[static_cast<std::size_t>(inst.rd)] = i;
      }
      if (config_.store_forwarding) {
        mem_window[static_cast<std::size_t>(k)] =
            MakeMemWindowEntry(st, args);
      }
    }
    }
    if (config_.num_alus > 0) {
      if (packed) {
        int occupied = 0;
        for (int w = 0; w < pw; ++w) {
          occupied += std::popcount(needs_alu_b.word(w) & iss_b.word(w) &
                                    ~fin_b.word(w));
          req_b.word(w) = needs_alu_b.word(w) & ~iss_b.word(w) &
                          ~fin_b.word(w) & argr_b.word(w);
        }
        alu_scheduler.PackedGrantInto(
            req_b, std::max(0, config_.num_alus - occupied), head, grant_b);
      } else {
        int occupied = 0;
        for (int i = 0; i < n; ++i) {
          const Station& st = stations[static_cast<std::size_t>(i)];
          alu_requests[static_cast<std::size_t>(i)] =
              WantsAlu(st, args_at[static_cast<std::size_t>(i)]);
          if (st.valid && st.issued && !st.finished &&
              NeedsAlu(st.inst().op)) {
            ++occupied;
          }
        }
        alu_scheduler.GrantInto(alu_requests,
                                std::max(0, config_.num_alus - occupied),
                                head, alu_grant);
      }
    }

    // --- Phase 3b: execute, in program order from the oldest station. ---
    if (packed) {
      // Visit only stations whose StepStation call would act (the mask
      // mirrors its no-op predicate exactly, so skipping is identical),
      // plus stations serving an injected stall, which must decrement
      // their counters in walk order like the scalar loop's skip does.
      // With store forwarding on, a load's gate is its disambiguation
      // decision rather than the prev-stores-done prefix, so the load term
      // drops psd (an undecidable load is visited and no-ops).
      int pos = head;
      int processed = 0;
      bool squashed = false;
      while (processed < live && !squashed) {
        const int w = pos >> 6;
        const int lo = pos & 63;
        int hi = std::min(64, n - (w << 6));
        hi = std::min(hi, lo + (live - processed));
        const std::uint64_t grant_ok =
            config_.num_alus > 0 ? (grant_b.word(w) | ~needs_alu_b.word(w))
                                 : ~0ULL;
        const std::uint64_t load_gate = fwd ? ~0ULL : psd_b.word(w);
        std::uint64_t cand =
            (valid_b.word(w) & ~fin_b.word(w) &
             ((alu_like_b.word(w) &
               (iss_b.word(w) | (argr_b.word(w) & grant_ok))) |
              (ld_b.word(w) & ~msub_b.word(w) & argr_b.word(w) & load_gate) |
              (stb_b.word(w) & ~msub_b.word(w) & argr_b.word(w) &
               pld_b.word(w) & psd_b.word(w) & pcf_b.word(w)))) |
            (stall_b.word(w) & valid_b.word(w));
        const int cw = hi - lo;
        cand &= (cw == 64 ? ~0ULL : ((1ULL << cw) - 1)) << lo;
        while (cand != 0) {
          const int b = std::countr_zero(cand);
          cand &= cand - 1;
          const int i = (w << 6) + b;
          if (stall_b.Test(i)) {
            // Injected stall: the station sits this cycle out.
            if (--fault_stall[static_cast<std::size_t>(i)] == 0) {
              stall_b.Clear(i);
            }
            continue;
          }
          int k = i - head;
          if (k < 0) k += n;
          Station& st = stations[static_cast<std::size_t>(i)];
          StepContext ctx;
          ctx.prev_stores_done = psd_b.Test(i);
          ctx.prev_loads_done = pld_b.Test(i);
          ctx.committed_ok = pcf_b.Test(i);
          ctx.alu_granted = config_.num_alus == 0 || grant_b.Test(i);
          ctx.forwarding_enabled = fwd;
          if (fwd && st.inst().op == isa::Opcode::kLoad) {
            const MemWindowEntry& self =
                fast ? mem_window_pos[static_cast<std::size_t>(i)]
                     : mem_window[static_cast<std::size_t>(k)];
            if (self.addr_known) {
              const auto decision =
                  fast ? ResolveLoadForwardingMapped(
                             [&](std::size_t a) -> const MemWindowEntry& {
                               return mem_window_pos[static_cast<std::size_t>(
                                   (head + static_cast<int>(a)) % n)];
                             },
                             static_cast<std::size_t>(k))
                       : ResolveLoadForwarding(
                             std::span<const MemWindowEntry>(
                                 mem_window.data(),
                                 static_cast<std::size_t>(live)),
                             static_cast<std::size_t>(k));
              ctx.load_can_proceed = decision.can_proceed;
              ctx.load_forward = decision.forward;
              ctx.forward_value = decision.value;
            }
          }
          const bool was_issued = st.issued;
          const bool was_finished = st.finished;
          const datapath::RegBinding pre_result = st.result;
          const bool mispredicted =
              StepStation(st, args_at[static_cast<std::size_t>(i)], ctx,
                          config_.latencies, mem, cycle, i,
                          static_cast<std::uint64_t>(i), inflight,
                          result.stats);
          tel.OnStep(cycle, i, st, was_issued, was_finished);
          if (fast) {
            iss_b.SetTo(i, st.issued);
            fin_b.SetTo(i, st.finished);
            res_b.SetTo(i, st.resolved);
            msub_b.SetTo(i, st.mem_submitted);
            if (st.result != pre_result && isa::WritesRd(st.inst().op)) {
              mark_result_change(i, st.inst().rd);
            }
            if (fwd) mw_stale_b.Set(i);
          }
          if (mispredicted) {
            ++result.stats.mispredictions;
            for (int m = k + 1; m < count; ++m) {
              const int vi = (head + m) % n;
              Station& victim = stations[static_cast<std::size_t>(vi)];
              if (victim.valid) {
                ++result.stats.squashed_instructions;
                tel.OnSquash(cycle, vi, victim);
                if (fast) fast_clear_slot(vi, victim);
                victim.Clear();
                ++victim.generation;
              }
            }
            count = k + 1;
            fetch.Redirect(st.actual_next_pc);
            squashed = true;
            break;
          }
        }
        processed += hi - lo;
        pos = (w << 6) + hi;
        if (pos >= n) pos = 0;
      }
    } else {
      for (int k = 0; k < live; ++k) {
      const int i = (head + k) % n;
      Station& st = stations[static_cast<std::size_t>(i)];
      if (!st.valid) continue;  // Squashed earlier this cycle.
      if (fault_stall[static_cast<std::size_t>(i)] > 0) {
        --fault_stall[static_cast<std::size_t>(i)];
        continue;  // Injected stall: the station sits out this cycle.
      }
      const datapath::ResolvedArgs& args =
          args_at[static_cast<std::size_t>(i)];
      StepContext ctx;
      ctx.prev_stores_done =
          k == 0 || prev_stores_done[static_cast<std::size_t>(i)] != 0;
      ctx.prev_loads_done =
          k == 0 || prev_loads_done[static_cast<std::size_t>(i)] != 0;
      ctx.committed_ok =
          k == 0 || prev_confirmed[static_cast<std::size_t>(i)] != 0;
      ctx.alu_granted = config_.num_alus == 0 ||
                        alu_grant[static_cast<std::size_t>(i)] != 0;
      ctx.forwarding_enabled = config_.store_forwarding;
      if (ctx.forwarding_enabled && st.inst().op == isa::Opcode::kLoad &&
          mem_window[static_cast<std::size_t>(k)].addr_known) {
        const auto decision = ResolveLoadForwarding(
            mem_window, static_cast<std::size_t>(k));
        ctx.load_can_proceed = decision.can_proceed;
        ctx.load_forward = decision.forward;
        ctx.forward_value = decision.value;
      }
      const bool was_issued = st.issued;
      const bool was_finished = st.finished;
      const bool mispredicted =
          StepStation(st, args, ctx, config_.latencies, mem, cycle, i,
                      static_cast<std::uint64_t>(i), inflight, result.stats);
      tel.OnStep(cycle, i, st, was_issued, was_finished);
      if (mispredicted) {
        ++result.stats.mispredictions;
        for (int m = k + 1; m < count; ++m) {
          const int vi = (head + m) % n;
          Station& victim = stations[static_cast<std::size_t>(vi)];
          if (victim.valid) {
            ++result.stats.squashed_instructions;
            tel.OnSquash(cycle, vi, victim);
            victim.Clear();
            ++victim.generation;
          }
        }
        count = k + 1;
        fetch.Redirect(st.actual_next_pc);
      }
      }
    }

    // --- Phase 3c: forced mispredictions (fault injection). The recovery
    // machinery exercised is the normal one: squash everything younger
    // than the chosen station and redirect fetch. ---
    if (injector.active()) {
      for (const fault::FaultEvent& e : injector.pending()) {
        if (e.kind != fault::FaultKind::kForceMispredict) continue;
        if (count == 0) {
          injector.NoteMasked();
          continue;
        }
        const int k = e.station % count;
        const int i = (head + k) % n;
        Station& st = stations[static_cast<std::size_t>(i)];
        if (!st.valid || st.inst().op == isa::Opcode::kHalt) {
          injector.NoteMasked();
          continue;
        }
        // A resolved control transfer replays its known successor; an
        // unresolved one replays the predicted path (if the prediction is
        // wrong the ordinary recovery fires when it resolves); anything
        // else falls through sequentially.
        std::size_t redirect_pc;
        if (isa::IsControlFlow(st.inst().op)) {
          redirect_pc = st.resolved ? st.actual_next_pc
                                    : st.fetched.predicted_next_pc;
        } else {
          redirect_pc = st.fetched.pc + 1;
        }
        injector.NoteForcedMispredict();
        for (int m = k + 1; m < count; ++m) {
          const int vi = (head + m) % n;
          Station& victim = stations[static_cast<std::size_t>(vi)];
          if (victim.valid) {
            ++result.stats.squashed_instructions;
            ++result.stats.fault.squashes;
            tel.OnSquash(cycle, vi, victim);
            victim.Clear();
            ++victim.generation;
          }
        }
        count = k + 1;
        fetch.Redirect(redirect_pc);
      }
    }

    // --- Phase 4: commit finished instructions in program order. ---
    bool head_moved = false;
    while (count > 0) {
      Station& st = stations[static_cast<std::size_t>(head)];
      assert(st.valid && "the oldest slot is never a squash victim");
      if (!st.finished) break;
      st.timing.commit_cycle = cycle;
      const isa::Instruction& inst = st.inst();
      if (isa::WritesRd(inst.op)) {
        assert(st.result.ready);
        committed[inst.rd] = st.result;
        committed_at[inst.rd] = cycle;
        if (maintain_dp) dp_state.SetCommitted(inst.rd, st.result);
        // The committed file changed: only the stations between the head
        // and the first in-flight writer of rd resolve against it (younger
        // readers bind to that writer), so only that span re-resolves.
        if (fast) {
          const int nw =
              wmap.NearestWriterAfter(head, static_cast<int>(inst.rd), head);
          wmap.OrReadersInCyclicRange(static_cast<int>(inst.rd),
                                      (head + 1) % n,
                                      nw >= 0 ? (nw + 1) % n : head, stale_b);
        }
      }
      if (isa::IsControlFlow(inst.op)) {
        fetch.NotifyOutcome(st.fetched.pc, st.actual_taken);
      }
      result.timeline.push_back(st.timing);
      ++result.committed;
      tel.OnCommit(cycle, head, st);
      const bool was_halt = inst.op == isa::Opcode::kHalt;
      if (fast) fast_clear_slot(head, st);
      st.Clear();
      head = (head + 1) % n;
      head_moved = true;
      --count;
      if (was_halt) {
        done = true;
        result.halted = true;
        break;
      }
    }
    // The station now at the head reads the committed file directly, a
    // different source than the ring resolution its cached args used.
    if (fast && head_moved && count > 0) stale_b.Set(head);

    // --- Phase 5: fetch into freed slots. ---
    if (!done) {
      const int free = n - count;
      if (free == 0) ++result.stats.window_full_cycles;
      const int width = std::min(config_.EffectiveFetchWidth(), free);
      fetch.FetchCycle(width, fetch_batch);
      if (fetch_batch.empty() && free > 0 && count > 0 && !fetch.stalled()) {
        ++result.stats.fetch_stall_cycles;
      }
      for (const auto& f : fetch_batch) {
        const int slot = (head + count) % n;
        FillStation(stations[static_cast<std::size_t>(slot)], f, next_seq++,
                    cycle);
        stations[static_cast<std::size_t>(slot)].timing.station = slot;
        tel.OnFetch(cycle, slot, stations[static_cast<std::size_t>(slot)]);
        if (fast) {
          fast_fill_slot(slot, stations[static_cast<std::size_t>(slot)]);
        }
        ++count;
      }
      if (fetch.stalled() && count == 0) {
        // Ran off the end of the program without a halt.
        done = true;
        result.halted = true;
      }
    }
  }

  result.regs.resize(static_cast<std::size_t>(L));
  for (int r = 0; r < L; ++r) {
    result.regs[static_cast<std::size_t>(r)] =
        committed[static_cast<std::size_t>(r)].value;
  }
  result.memory = mem.store().Snapshot();
  tel.FinalizeFaults(result.stats, injector, checker);
  tel.FinalizeMemory(result.stats, mem, fetch);
  return result;
}

}  // namespace ultra::core
