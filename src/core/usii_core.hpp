// The Ultrascalar II processor (Sections 4-5).
//
// A batch machine: n stations fill with consecutive instructions, arguments
// route through the grid / mesh-of-trees datapath against the edge register
// file, and "stations idle waiting for everyone to finish before refilling"
// (the paper's stated inefficiency of the design; the wrap-around variant
// is the hybrid's job). When every station has finished, the final register
// values latch into the register file and the next batch begins.
#pragma once

#include "core/processor.hpp"

namespace ultra::core {

class UltrascalarIICore final : public Processor {
 public:
  explicit UltrascalarIICore(const CoreConfig& config) : config_(config) {}

  [[nodiscard]] RunResult Run(const isa::Program& program) override;
  [[nodiscard]] std::string_view Name() const override {
    return "UltrascalarII";
  }
  [[nodiscard]] const CoreConfig& config() const override { return config_; }
  [[nodiscard]] ProcessorKind kind() const override {
    return ProcessorKind::kUltrascalarII;
  }

 private:
  CoreConfig config_;
};

}  // namespace ultra::core
