// Shared configuration and result types for all processor models.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "memory/memory_system.hpp"

namespace ultra::fault {
class FaultPlan;
}  // namespace ultra::fault

namespace ultra::persist {
struct CheckpointControl;
}  // namespace ultra::persist

namespace ultra::telemetry {
struct RunTelemetry;
}  // namespace ultra::telemetry

namespace ultra::core {

/// Which branch predictor the fetch engine uses. For cycle-identical
/// cross-processor comparisons use a static predictor or the oracle (see
/// memory/branch_predictor.hpp).
enum class PredictorKind : std::uint8_t {
  kNotTaken,
  kBtfn,
  kTwoBit,
  kOracle,  // Requires a prior functional run; see Processor::Run.
};

/// How many instructions fetch can supply per cycle and across how many
/// predicted-taken control transfers.
enum class FetchMode : std::uint8_t {
  kIdeal,       // Full width, any number of taken branches per cycle.
  kBasicBlock,  // Stops at the first predicted-taken control transfer.
  kTraceCache,  // Crosses up to trace_branches taken transfers on a hit.
};

/// How the cycle loop evaluates the register datapaths. All modes compute
/// the same function and produce identical RunResults on clean inputs (the
/// fuzz tests assert this); the incremental path re-evaluates only what
/// changed since the previous cycle and never allocates in steady state.
enum class DatapathEval : std::uint8_t {
  kIncremental,    // Dirty-set propagation into persistent state (default).
  kFullRecompute,  // Rebuild-everything reference path.
  /// Incremental, plus a DatapathChecker that cross-validates the
  /// delivered state against a full recompute every checker_stride cycles
  /// (eagerly on cycles with hazardous injected faults) and
  /// resynchronizes from the full path on divergence. See
  /// docs/robustness.md.
  kChecked,
  /// Bit-packed word-parallel evaluation: the per-station booleans (valid,
  /// finished, issued, readiness, the Figure 5 ordering conditions) live
  /// 64 to a uint64_t, the sequencing prefixes and ALU grants evaluate 64
  /// lanes per word op, and the cycle loops visit only stations that can
  /// act. Packed mode is fallback-free: every CoreConfig -- store
  /// forwarding, attached telemetry, fault plans, pipelined datapaths --
  /// runs through the packed cycle loop (RunStats::fallback_count stays 0)
  /// and produces results byte-identical to kIncremental (the differential
  /// tests assert this). Most configurations take the event-driven fast
  /// tier, which replaces the per-cycle datapath propagation with
  /// PackedWriterMap word scans; fault plans and pipelined delivery keep
  /// the incremental argument machinery under the packed walk (the
  /// observation tier). See docs/runtime.md.
  kPacked,
};

struct CoreConfig {
  int window_size = 32;  // n: execution stations (= issue width; Section 1).
  int num_regs = isa::kDefaultLogicalRegisters;  // L.
  int cluster_size = 8;  // C, hybrid only (paper: C = Theta(L) is optimal).
  int fetch_width = 0;   // 0 = same as window_size (the paper couples them).
  FetchMode fetch_mode = FetchMode::kIdeal;
  int trace_cache_capacity = 256;
  int trace_branches = 3;
  PredictorKind predictor = PredictorKind::kBtfn;
  isa::LatencyModel latencies;
  memory::MemoryConfig mem;
  std::uint64_t max_cycles = 10'000'000;

  /// Shared ALUs (Section 7 / Ultrascalar Memo 2). 0 = one ALU per station
  /// (the paper's base design); k > 0 = k shared ALUs allocated oldest-first
  /// by the AluScheduler prefix circuit each cycle.
  int num_alus = 0;

  /// Memory renaming / store-to-load forwarding (Section 7: "The memory
  /// bandwidth pressure can also be reduced by using memory-renaming
  /// hardware, which can be implemented by CSPP circuits").
  bool store_forwarding = false;

  /// Pipelined register datapath (Section 7: "it is possible to pipeline
  /// the system ... so that the long communications paths would include
  /// latches"). 0 = the paper's base single-cycle datapath; k > 0 inserts
  /// a latch every k H-tree levels, so a value crossing 2h levels reaches
  /// its reader after ceil(2h / k) cycles, while the clock shrinks to one
  /// pipeline stage. Ultrascalar I core only.
  int pipeline_levels_per_stage = 0;

  /// Simulator-internal knob (not a hardware parameter, not exported by
  /// sweep_io): which evaluation strategy the cycle loops use. Results are
  /// identical on clean inputs; kFullRecompute exists as the reference for
  /// the differential tests and the throughput benchmark's baseline, and
  /// kChecked adds the self-checking layer used by the fault experiments.
  DatapathEval datapath_eval = DatapathEval::kIncremental;

  /// Cross-validation cadence for datapath_eval = kChecked: the checker
  /// compares the incremental delivery buffers against a full recompute
  /// every checker_stride cycles (and immediately on cycles where a
  /// hazardous fault was injected). Must be >= 1 in checked mode.
  int checker_stride = 64;

  /// Deterministic fault-injection schedule (see src/fault/). Null = no
  /// faults. Requires datapath_eval kIncremental or kPacked (faults flow
  /// unchecked — useful to demonstrate silent corruption; packed mode runs
  /// its observation tier so corruptions propagate byte-identically to the
  /// incremental path) or kChecked (faults are detected and repaired). The
  /// IdealOoO core has no scalable datapath and ignores the plan.
  std::shared_ptr<const fault::FaultPlan> fault_plan;

  /// Cooperative cancellation: when non-null, the cycle loops poll the
  /// flag every 1024 cycles and abandon the run (RunResult.halted = false)
  /// once it is set. The SweepRunner's watchdog uses this to enforce
  /// per-point wall-clock deadlines. The pointee must outlive Run().
  const std::atomic<bool>* cancel = nullptr;

  /// Optional telemetry sink (see src/telemetry/ and docs/observability.md):
  /// occupancy / latency / propagation-distance histograms, fault counters,
  /// and per-cycle pipeline trace events. Null = no instrumentation; an
  /// attached sink with metrics_enabled = false and no tracer costs one
  /// null test per hook site (gated <= 2% by bench_telemetry_overhead).
  /// Single-threaded like the cores themselves; must outlive Run().
  telemetry::RunTelemetry* telemetry = nullptr;

  /// Checkpoint/restore control (see src/persist/checkpoint.hpp and
  /// docs/robustness.md). Null = no checkpointing. When attached, the core
  /// captures full-state checkpoints at the top of the cycle loop on the
  /// cycles the control selects, and — when control->resume is set —
  /// restores that checkpoint before the first cycle and continues
  /// cycle-for-cycle identically to the uninterrupted run. Like cancel and
  /// telemetry, this is a per-invocation attachment: it does not affect
  /// FingerprintConfig and the pointee must outlive Run().
  persist::CheckpointControl* checkpoint = nullptr;

  [[nodiscard]] int EffectiveFetchWidth() const {
    return fetch_width > 0 ? fetch_width : window_size;
  }

  /// Rejects configurations that would hang or index out of bounds
  /// (window_size <= 0, num_regs <= 0, max_cycles == 0, negative num_alus,
  /// negative fetch_width, and -- when @p for_hybrid is set -- cluster_size
  /// outside [1, window_size]). Throws std::invalid_argument naming the bad
  /// field. MakeProcessor calls this for every core it builds.
  void Validate(bool for_hybrid = false) const;
};

/// Per-dynamic-instruction timing record (the raw material of Figure 3).
struct InstrTiming {
  std::uint64_t seq = 0;        // Dynamic sequence number (commit order).
  int station = 0;              // Execution-station slot that ran it.
  std::size_t pc = 0;
  isa::Instruction inst;
  std::uint64_t fetch_cycle = 0;
  std::uint64_t issue_cycle = 0;     // First execution cycle.
  std::uint64_t complete_cycle = 0;  // Cycle at whose end the result is ready.
  std::uint64_t commit_cycle = 0;
};

/// Fault-injection / self-checking counters (zero on clean runs; see
/// docs/robustness.md for definitions). One snapshot block instead of loose
/// parallel fields: the cores fill it through CoreTelemetry::FinalizeFaults,
/// and the same block feeds the telemetry registry's "fault.*" counters.
struct FaultCounters {
  std::uint64_t injected = 0;     // FaultPlan events staged.
  std::uint64_t checks = 0;       // Cross-validations run.
  std::uint64_t divergences = 0;  // Mismatched cells, summed.
  std::uint64_t resyncs = 0;      // Checks finding >= 1 mismatch.
  std::uint64_t squashes = 0;     // Squashes from forced faults.
};

/// Memory-hierarchy counters (all zero when mem.hierarchy is disabled).
/// Snapshot semantics mirror FaultCounters: the cores fill the block once at
/// the end of Run via CoreTelemetry::FinalizeMemory, from the MemorySystem's
/// L1D/L2 models and the FetchEngine's icache, and the same block feeds the
/// telemetry registry's "mem.*" counters.
struct MemHierarchyCounters {
  std::uint64_t l1d_hits = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l1d_writebacks = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l2_writebacks = 0;
  std::uint64_t icache_hits = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t icache_stall_cycles = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_fills = 0;   // Prefetched lines installed in L1.
  std::uint64_t prefetch_useful = 0;  // Demand hits on prefetched lines.
};

struct RunStats {
  std::uint64_t mispredictions = 0;
  std::uint64_t forwarded_loads = 0;  // Loads satisfied without memory.
  std::uint64_t squashed_instructions = 0;
  std::uint64_t load_count = 0;
  std::uint64_t store_count = 0;
  /// Cycles in which the window had in-flight work and free slots but fetch
  /// supplied nothing, *excluding* cycles where fetch had simply run past
  /// the end of the program (those are drain cycles, not stalls). All four
  /// cores share this definition.
  std::uint64_t fetch_stall_cycles = 0;
  std::uint64_t window_full_cycles = 0;
  /// Cycles (or whole runs) where a requested evaluation strategy was
  /// abandoned for a different one. Always 0 since packed mode became
  /// fallback-free; the field exists so the bench differential and CI can
  /// gate on it never regressing to silent scalar execution.
  std::uint64_t fallback_count = 0;
  FaultCounters fault;
  MemHierarchyCounters mem_hierarchy;

  // Compatibility accessors for the former loose fault-counter fields.
  [[nodiscard]] std::uint64_t faults_injected() const {
    return fault.injected;
  }
  [[nodiscard]] std::uint64_t checker_checks() const { return fault.checks; }
  [[nodiscard]] std::uint64_t divergences_detected() const {
    return fault.divergences;
  }
  [[nodiscard]] std::uint64_t checker_resyncs() const { return fault.resyncs; }
  [[nodiscard]] std::uint64_t squashes_under_fault() const {
    return fault.squashes;
  }
};

struct RunResult {
  bool halted = false;           // False = hit max_cycles.
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;   // Dynamic instructions committed (w/ halt).
  std::vector<isa::Word> regs;   // Final architectural register file.
  /// Final architectural data memory (byte address -> word), for
  /// cross-processor equivalence checks against the functional simulator.
  std::map<isa::Word, isa::Word> memory;
  std::vector<InstrTiming> timeline;  // In commit order.
  RunStats stats;

  [[nodiscard]] double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committed) /
                             static_cast<double>(cycles);
  }
};

}  // namespace ultra::core
