#include "core/config.hpp"

#include <stdexcept>
#include <string>

namespace ultra::core {

void CoreConfig::Validate(bool for_hybrid) const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("CoreConfig: " + what);
  };
  if (window_size <= 0) {
    fail("window_size must be positive, got " + std::to_string(window_size));
  }
  if (num_regs <= 0) {
    fail("num_regs must be positive, got " + std::to_string(num_regs));
  }
  if (max_cycles == 0) {
    fail("max_cycles must be nonzero (a zero budget can never commit)");
  }
  if (num_alus < 0) {
    fail("num_alus must be >= 0 (0 = one ALU per station), got " +
         std::to_string(num_alus));
  }
  if (fetch_width < 0) {
    fail("fetch_width must be >= 0 (0 = window-wide), got " +
         std::to_string(fetch_width));
  }
  if (pipeline_levels_per_stage < 0) {
    fail("pipeline_levels_per_stage must be >= 0, got " +
         std::to_string(pipeline_levels_per_stage));
  }
  if (fetch_mode == FetchMode::kTraceCache) {
    if (trace_cache_capacity <= 0) {
      fail("trace_cache_capacity must be positive, got " +
           std::to_string(trace_cache_capacity));
    }
    if (trace_branches < 0) {
      fail("trace_branches must be >= 0, got " +
           std::to_string(trace_branches));
    }
  }
  if (datapath_eval == DatapathEval::kChecked && checker_stride < 1) {
    fail("checker_stride must be >= 1 in checked mode, got " +
         std::to_string(checker_stride));
  }
  if (fault_plan && datapath_eval == DatapathEval::kFullRecompute) {
    fail("fault_plan requires datapath_eval incremental, packed, or checked "
         "(the full-recompute path rebuilds every delivery each cycle, so "
         "injected corruptions could never persist)");
  }
  const auto check_level = [&fail](const memory::CacheLevelConfig& level,
                                   const char* name) {
    if (!level.enabled) return;
    const auto field = [&name](const char* f) {
      return std::string("mem.hierarchy.") + name + "." + f;
    };
    if (level.sets < 1 || (level.sets & (level.sets - 1)) != 0) {
      fail(field("sets") + " must be a positive power of two, got " +
           std::to_string(level.sets));
    }
    if (level.ways < 1) {
      fail(field("ways") + " must be >= 1, got " + std::to_string(level.ways));
    }
    if (level.block_bytes < 4 ||
        (level.block_bytes & (level.block_bytes - 1)) != 0) {
      fail(field("block_bytes") + " must be a power of two >= 4, got " +
           std::to_string(level.block_bytes));
    }
    if (level.hit_latency < 1) {
      fail(field("hit_latency") + " must be >= 1, got " +
           std::to_string(level.hit_latency));
    }
    if (level.miss_latency < 1) {
      fail(field("miss_latency") + " must be >= 1, got " +
           std::to_string(level.miss_latency));
    }
  };
  check_level(mem.hierarchy.l1i, "l1i");
  check_level(mem.hierarchy.l1d, "l1d");
  check_level(mem.hierarchy.l2, "l2");
  if (mem.hierarchy.prefetch.depth < 0) {
    fail("mem.hierarchy.prefetch.depth must be >= 0, got " +
         std::to_string(mem.hierarchy.prefetch.depth));
  }
  if (mem.hierarchy.prefetch.depth > 0) {
    if (!mem.hierarchy.DataPathEnabled()) {
      fail("mem.hierarchy.prefetch.depth > 0 requires an enabled L1D or L2 "
           "level to prefetch into");
    }
    if (mem.hierarchy.prefetch.table_entries < 1) {
      fail("mem.hierarchy.prefetch.table_entries must be >= 1, got " +
           std::to_string(mem.hierarchy.prefetch.table_entries));
    }
    if (mem.hierarchy.prefetch.fill_latency < 1) {
      fail("mem.hierarchy.prefetch.fill_latency must be >= 1, got " +
           std::to_string(mem.hierarchy.prefetch.fill_latency));
    }
  }
  if (mem.hierarchy.DataPathEnabled() && mem.cluster_cache_leaves > 0) {
    fail("mem.hierarchy L1D/L2 and cluster caches are mutually exclusive "
         "locality models; enable one or the other");
  }
  if (for_hybrid && (cluster_size < 1 || cluster_size > window_size)) {
    fail("hybrid cluster_size must lie in [1, window_size]: C = " +
         std::to_string(cluster_size) + ", n = " +
         std::to_string(window_size));
  }
}

}  // namespace ultra::core
