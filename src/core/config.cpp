#include "core/config.hpp"

#include <stdexcept>
#include <string>

namespace ultra::core {

void CoreConfig::Validate(bool for_hybrid) const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("CoreConfig: " + what);
  };
  if (window_size <= 0) {
    fail("window_size must be positive, got " + std::to_string(window_size));
  }
  if (num_regs <= 0) {
    fail("num_regs must be positive, got " + std::to_string(num_regs));
  }
  if (max_cycles == 0) {
    fail("max_cycles must be nonzero (a zero budget can never commit)");
  }
  if (num_alus < 0) {
    fail("num_alus must be >= 0 (0 = one ALU per station), got " +
         std::to_string(num_alus));
  }
  if (fetch_width < 0) {
    fail("fetch_width must be >= 0 (0 = window-wide), got " +
         std::to_string(fetch_width));
  }
  if (pipeline_levels_per_stage < 0) {
    fail("pipeline_levels_per_stage must be >= 0, got " +
         std::to_string(pipeline_levels_per_stage));
  }
  if (fetch_mode == FetchMode::kTraceCache) {
    if (trace_cache_capacity <= 0) {
      fail("trace_cache_capacity must be positive, got " +
           std::to_string(trace_cache_capacity));
    }
    if (trace_branches < 0) {
      fail("trace_branches must be >= 0, got " +
           std::to_string(trace_branches));
    }
  }
  if (datapath_eval == DatapathEval::kChecked && checker_stride < 1) {
    fail("checker_stride must be >= 1 in checked mode, got " +
         std::to_string(checker_stride));
  }
  if (fault_plan && datapath_eval == DatapathEval::kFullRecompute) {
    fail("fault_plan requires datapath_eval incremental, packed, or checked "
         "(the full-recompute path rebuilds every delivery each cycle, so "
         "injected corruptions could never persist)");
  }
  if (for_hybrid && (cluster_size < 1 || cluster_size > window_size)) {
    fail("hybrid cluster_size must lie in [1, window_size]: C = " +
         std::to_string(cluster_size) + ", n = " +
         std::to_string(window_size));
  }
}

}  // namespace ultra::core
