#include "core/fetch.hpp"

#include <cassert>

#include "core/checkpoint_util.hpp"

namespace ultra::core {

FetchEngine::FetchEngine(const isa::Program* program,
                         const CoreConfig& config,
                         std::unique_ptr<memory::BranchPredictor> predictor)
    : program_(program),
      config_(config),
      predictor_(std::move(predictor)) {
  assert(program_ != nullptr);
  assert(predictor_ != nullptr);
  if (config_.fetch_mode == FetchMode::kTraceCache) {
    trace_cache_ = std::make_unique<memory::TraceCache>(
        config_.trace_cache_capacity, config_.trace_branches,
        config_.EffectiveFetchWidth());
  }
  if (config_.mem.hierarchy.l1i.enabled) {
    icache_ =
        std::make_unique<memory::CacheLevelModel>(config_.mem.hierarchy.l1i);
  }
}

void FetchEngine::Redirect(std::size_t pc) {
  pending_.clear();
  head_ = 0;
  next_pc_ = pc;
  stalled_ = pc >= program_->size();
  icache_stall_ = 0;  // The squash abandons the miss; the line is filled.
  ++stats_.redirects;
}

bool FetchEngine::GenerateOne() {
  if (stalled_ || next_pc_ >= program_->size()) {
    stalled_ = true;
    return false;
  }
  if (icache_ != nullptr) {
    // One icache probe per instruction; sequential pcs in one block hit.
    const auto iaddr = static_cast<isa::Word>(next_pc_) * 4;
    if (!icache_->Lookup(iaddr, /*is_store=*/false).hit) {
      // Fill now (so the post-stall probe hits) and freeze fetch for the
      // miss latency. stalled_ stays false: this is a transient stall, not
      // the end of the predicted path.
      icache_->Fill(iaddr, /*dirty=*/false, /*prefetched=*/false);
      icache_stall_ = config_.mem.hierarchy.l1i.miss_latency;
      return false;
    }
  }
  FetchedInstr f;
  f.pc = next_pc_;
  f.inst = program_->at(next_pc_);
  f.is_control = isa::IsControlFlow(f.inst.op);
  if (f.is_control) {
    f.predicted_taken = predictor_->PredictTaken(f.pc, f.inst);
    f.predicted_next_pc = f.predicted_taken
                              ? static_cast<std::size_t>(f.inst.imm)
                              : f.pc + 1;
  } else {
    f.predicted_next_pc = f.pc + 1;
  }
  pending_.push_back(f);
  if (f.inst.op == isa::Opcode::kHalt) {
    stalled_ = true;  // Nothing meaningful follows a fetched halt.
  } else {
    next_pc_ = f.predicted_next_pc;
    stalled_ = next_pc_ >= program_->size();
  }
  return true;
}

void FetchEngine::FillPending(std::size_t count) {
  // Compact the delivered prefix so capacity is reused; moves at most one
  // fetch-width of trivially-copyable entries and never allocates.
  if (head_ > 0) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  while (pending_.size() < count) {
    if (!GenerateOne()) break;
  }
}

std::vector<FetchedInstr> FetchEngine::FetchCycle(int max_count) {
  std::vector<FetchedInstr> out;
  FetchCycle(max_count, out);
  return out;
}

void FetchEngine::FetchCycle(int max_count, std::vector<FetchedInstr>& out) {
  out.clear();
  // An in-progress icache miss freezes fetch entirely; the fill resolves in
  // the background regardless of window occupancy, so the stall counts down
  // even on cycles the core offered no fetch slots.
  if (icache_stall_ > 0) {
    --icache_stall_;
    ++stats_.icache_stall_cycles;
    return;
  }
  if (max_count <= 0) return;
  const auto width = static_cast<std::size_t>(max_count);
  FillPending(width);
  if (pending_.empty()) return;

  // How many predicted-taken control transfers may this cycle cross?
  int taken_budget = 0;
  switch (config_.fetch_mode) {
    case FetchMode::kIdeal:
      taken_budget = max_count;  // Effectively unlimited.
      break;
    case FetchMode::kBasicBlock:
      taken_budget = 0;  // Deliver up to and including the first taken.
      break;
    case FetchMode::kTraceCache: {
      // Key: start pc + predicted outcomes of the leading conditional
      // branches in the pending prefix.
      std::uint32_t bits = 0;
      int nbranches = 0;
      std::vector<std::size_t> pcs;
      for (const auto& f : pending_) {
        if (pcs.size() >= width) break;
        if (isa::IsConditionalBranch(f.inst.op)) {
          if (nbranches >= trace_cache_->max_branches()) break;
          if (f.predicted_taken) bits |= 1u << nbranches;
          ++nbranches;
        }
        pcs.push_back(f.pc);
        if (f.is_control && f.predicted_taken &&
            !isa::IsConditionalBranch(f.inst.op) &&
            nbranches >= trace_cache_->max_branches()) {
          break;
        }
      }
      if (trace_cache_->Lookup(pending_.front().pc, bits) != nullptr) {
        taken_budget = trace_cache_->max_branches();
      } else {
        trace_cache_->Install(pending_.front().pc, bits, std::move(pcs));
        taken_budget = 0;  // Miss: fall back to basic-block fetch.
      }
      break;
    }
  }

  while (out.size() < width && head_ < pending_.size()) {
    out.push_back(pending_[head_]);
    ++head_;
    ++stats_.fetched;
    if (out.back().is_control && out.back().predicted_taken) {
      if (taken_budget == 0) break;
      --taken_budget;
    }
    if (out.back().inst.op == isa::Opcode::kHalt) break;
  }
}

void FetchEngine::NotifyOutcome(std::size_t pc, bool taken) {
  predictor_->Update(pc, taken);
}

void FetchEngine::SaveState(persist::Encoder& e) const {
  e.U64(next_pc_);
  e.Bool(stalled_);
  // Only the undelivered suffix of the ring is live state; restore with
  // head_ = 0 (the compaction FillPending would do anyway).
  e.U32(static_cast<std::uint32_t>(pending_.size() - head_));
  for (std::size_t i = head_; i < pending_.size(); ++i) {
    SaveFetchedInstr(e, pending_[i]);
  }
  e.U64(stats_.fetched);
  e.U64(stats_.redirects);
  e.U64(stats_.icache_stall_cycles);
  e.I32(icache_stall_);
  predictor_->SaveState(e);
  e.Bool(trace_cache_ != nullptr);
  if (trace_cache_ != nullptr) trace_cache_->SaveState(e);
  e.Bool(icache_ != nullptr);
  if (icache_ != nullptr) icache_->SaveState(e);
}

void FetchEngine::RestoreState(persist::Decoder& d) {
  next_pc_ = static_cast<std::size_t>(d.U64());
  stalled_ = d.Bool();
  pending_.clear();
  head_ = 0;
  const std::uint32_t n = d.U32();
  pending_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FetchedInstr f;
    RestoreFetchedInstr(d, f);
    pending_.push_back(f);
  }
  stats_.fetched = d.U64();
  stats_.redirects = d.U64();
  stats_.icache_stall_cycles = d.U64();
  icache_stall_ = d.I32();
  predictor_->RestoreState(d);
  if (d.Bool() != (trace_cache_ != nullptr)) {
    throw persist::FormatError("fetch mode mismatch (trace cache)");
  }
  if (trace_cache_ != nullptr) trace_cache_->RestoreState(d);
  if (d.Bool() != (icache_ != nullptr)) {
    throw persist::FormatError("fetch mode mismatch (icache)");
  }
  if (icache_ != nullptr) icache_->RestoreState(d);
}

}  // namespace ultra::core
