#include "core/usii_core.hpp"

#include <cassert>

#include <bit>
#include <span>

#include "core/checkpoint_util.hpp"
#include "core/exec.hpp"
#include "core/fetch.hpp"
#include "core/telemetry_hooks.hpp"
#include "datapath/bitset.hpp"
#include "datapath/packed_resolve.hpp"
#include "datapath/datapath.hpp"
#include "datapath/scheduler.hpp"
#include "datapath/sequencing.hpp"
#include "fault/fault.hpp"

namespace ultra::core {

namespace {

datapath::StationRequest MakeRequest(const Station& st) {
  datapath::StationRequest req;
  if (!st.valid) return req;
  const isa::Instruction& inst = st.inst();
  req.reads1 = isa::ReadsRs1(inst.op);
  req.arg1 = inst.rs1;
  req.reads2 = isa::ReadsRs2(inst.op);
  req.arg2 = inst.rs2;
  req.writes = isa::WritesRd(inst.op);
  req.dest = inst.rd;
  req.result = st.result;
  return req;
}

}  // namespace

RunResult UltrascalarIICore::Run(const isa::Program& program) {
  const int n = config_.window_size;
  const int L = config_.num_regs;
  datapath::UltrascalarIIDatapath dp(n, L);
  memory::MemorySystem mem(config_.mem, n);
  mem.Reset(program.initial_memory());
  FetchEngine fetch(&program, config_, MakePredictor(config_, program));

  std::vector<Station> stations(static_cast<std::size_t>(n));
  std::vector<datapath::RegBinding> regfile(static_cast<std::size_t>(L));
  for (auto& b : regfile) b.ready = true;

  int fill = 0;  // Slots [0, fill) of the current batch hold instructions.
  std::uint64_t next_seq = 0;
  InflightMap inflight;
  RunResult result;
  bool done = false;

  // Checked mode runs the incremental machinery plus the cross-validation
  // below, so everything keyed on `incremental` applies to it too.
  const bool incremental =
      config_.datapath_eval != DatapathEval::kFullRecompute;
  const bool checked = config_.datapath_eval == DatapathEval::kChecked;
  // Word-parallel packed mode: sequencing flags, acyclic prefixes, ALU
  // grants, and the execute phase's visit set evaluate 64 stations per
  // word op. kPacked always runs the packed cycle loop; the `fast` tier
  // additionally replaces the per-cycle request/propagation rebuild with
  // event-driven argument resolution over per-register writer/reader rows.
  // Fault plans keep the propagation machinery underneath the packed walk
  // (corruptions live inside `prop`), but never change the executed loop.
  const bool packed = config_.datapath_eval == DatapathEval::kPacked;
  const bool fast = packed && config_.fault_plan == nullptr;
  const bool maintain_prop = incremental && !fast;

  fault::FaultInjector injector(config_.fault_plan.get());
  fault::DatapathChecker checker(config_.checker_stride);
  datapath::UsiiPropagation check_prop;  // Checked-mode recompute target.
  std::vector<int> fault_stall(static_cast<std::size_t>(n), 0);

  CoreTelemetry tel(config_);
  // Batch-position last writer per register (propagation-distance metric).
  std::vector<int> last_writer(static_cast<std::size_t>(L));

  std::vector<datapath::StationRequest> requests(
      static_cast<std::size_t>(n));
  std::vector<std::uint8_t> no_store(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> no_load(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> branch_ok(static_cast<std::size_t>(n));
  // Per-cycle scratch, hoisted out of the loop so the hot path does not
  // touch the allocator (capacity is reused across cycles).
  datapath::UsiiPropagation prop;  // Reused output buffer.
  bool prop_valid = false;   // prop matches the current (regfile, requests).
  bool regfile_changed = true;
  std::vector<std::uint8_t> prev_stores_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_loads_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_confirmed(static_cast<std::size_t>(n));
  std::vector<MemWindowEntry> mem_window;
  std::vector<std::uint8_t> alu_requests;
  std::vector<std::uint8_t> alu_grant;
  std::vector<FetchedInstr> fetch_batch;

  // Packed per-cycle scratch (kPacked only): recomposed from the stations
  // every cycle, so it is derived state and never checkpointed.
  const int pw = datapath::PackedWordCount(n);
  datapath::PackedBits valid_b, fin_b, iss_b, res_b, msub_b, ld_b, stb_b,
      cf_b, alu_like_b, needs_alu_b, argr_b, cond_b, psd_b, pld_b, pcf_b,
      req_b, grant_b, stall_b, stale_b, mw_stale_b;
  if (packed) {
    for (auto* p : {&valid_b, &fin_b, &iss_b, &res_b, &msub_b, &ld_b, &stb_b,
                    &cf_b, &alu_like_b, &needs_alu_b, &argr_b, &cond_b,
                    &psd_b, &pld_b, &pcf_b, &req_b, &grant_b, &stall_b,
                    &stale_b, &mw_stale_b}) {
      p->Assign(n);
    }
  }
  // Fast-tier state: cached resolved arguments per batch slot, the
  // writer/reader rows that answer "whose value does slot i read?", and a
  // slot-indexed memory window (batch position IS age order here, so the
  // span-based forwarding walk reads it directly).
  datapath::PackedWriterMap wmap;
  std::vector<datapath::ResolvedArgs> args_at;
  std::vector<MemWindowEntry> mem_window_pos;
  if (fast) {
    wmap.Assign(n, L);
    args_at.resize(static_cast<std::size_t>(n));
    mem_window_pos.resize(static_cast<std::size_t>(n));
  }
  const bool fwd = config_.store_forwarding;

  // Fast-tier event helpers; clearing must run while the station still
  // holds its instruction (rows are keyed by its register fields).
  const auto fast_clear_slot = [&](int i, const Station& st) {
    const isa::Instruction& inst = st.inst();
    if (isa::WritesRd(inst.op)) wmap.ClearWriter(i, inst.rd);
    if (isa::ReadsRs1(inst.op)) wmap.ClearReader(i, inst.rs1);
    if (isa::ReadsRs2(inst.op)) wmap.ClearReader(i, inst.rs2);
    for (auto* p : {&valid_b, &fin_b, &iss_b, &res_b, &msub_b, &ld_b, &stb_b,
                    &cf_b, &alu_like_b, &needs_alu_b, &argr_b, &stale_b,
                    &mw_stale_b}) {
      p->Clear(i);
    }
    args_at[static_cast<std::size_t>(i)] = datapath::ResolvedArgs{};
    if (fwd) mem_window_pos[static_cast<std::size_t>(i)] = MemWindowEntry{};
  };
  const auto fast_fill_slot = [&](int i, const Station& st) {
    const isa::Instruction& inst = st.inst();
    valid_b.Set(i);
    const isa::Opcode op = inst.op;
    if (op == isa::Opcode::kLoad) {
      ld_b.Set(i);
    } else if (op == isa::Opcode::kStore) {
      stb_b.Set(i);
    } else {
      alu_like_b.Set(i);
    }
    if (isa::IsControlFlow(op)) cf_b.Set(i);
    if (NeedsAlu(op)) needs_alu_b.Set(i);
    if (isa::WritesRd(op)) wmap.SetWriter(i, inst.rd);
    if (isa::ReadsRs1(op)) wmap.AddReader(i, inst.rs1);
    if (isa::ReadsRs2(op)) wmap.AddReader(i, inst.rs2);
    stale_b.Set(i);
    if (fwd) mw_stale_b.Set(i);
  };
  // Slot @p j's result binding for register @p r changed: only the readers
  // between j and the next writer of r (inclusive -- a slot both reading
  // and writing r resolves its read against the previous writer) see a
  // different source. Acyclic program order, so no wraparound.
  const auto mark_result_change = [&](int j, isa::RegId r) {
    const int nw = datapath::LowestSetInRange(
        wmap.writers(static_cast<int>(r)), j + 1, n);
    wmap.OrReadersInCyclicRange(static_cast<int>(r), j + 1,
                                nw >= 0 ? nw + 1 : 0, stale_b);
  };

  CheckpointSession ckpt(config_, ProcessorKind::kUltrascalarII, program);
  const auto save_state = [&](persist::Encoder& e) {
    for (const Station& st : stations) SaveStation(e, st);
    for (const auto& b : regfile) datapath::Save(e, b);
    e.I32(fill);
    e.U64(next_seq);
    SaveInflight(e, inflight);
    SavePartialResult(e, result);
    for (const int s : fault_stall) e.I32(s);
    for (const auto& req : requests) datapath::Save(e, req);
    // The memoized propagation (prop/prop_valid/regfile_changed) is reused
    // across cycles when valid, so it is machine state, not scratch: a live
    // fault corruption can sit in `prop` until the inputs next change.
    e.Bool(prop_valid);
    e.Bool(regfile_changed);
    e.U32(static_cast<std::uint32_t>(prop.args.size()));
    for (const auto& a : prop.args) datapath::Save(e, a);
    e.U32(static_cast<std::uint32_t>(prop.final_regs.size()));
    for (const auto& b : prop.final_regs) datapath::Save(e, b);
    injector.SaveState(e);
    checker.SaveState(e);
    fetch.SaveState(e);
    mem.SaveState(e);
    SaveTelemetrySlots(e, config_);
  };
  std::uint64_t start_cycle = 0;
  if (ckpt.resume() != nullptr) {
    persist::Decoder d(ckpt.resume()->state);
    for (Station& st : stations) RestoreStation(d, st);
    for (auto& b : regfile) datapath::Restore(d, b);
    fill = d.I32();
    next_seq = d.U64();
    RestoreInflight(d, inflight);
    RestorePartialResult(d, result);
    for (int& s : fault_stall) s = d.I32();
    for (auto& req : requests) datapath::Restore(d, req);
    prop_valid = d.Bool();
    regfile_changed = d.Bool();
    prop.args.resize(d.U32());
    for (auto& a : prop.args) datapath::Restore(d, a);
    prop.final_regs.resize(d.U32());
    for (auto& b : prop.final_regs) datapath::Restore(d, b);
    injector.RestoreState(d);
    checker.RestoreState(d);
    fetch.RestoreState(d);
    mem.RestoreState(d);
    RestoreTelemetrySlots(d, config_);
    if (!d.AtEnd()) {
      throw persist::FormatError("trailing checkpoint bytes");
    }
    start_cycle = ckpt.resume()->header.cycle;
    if (packed) {
      // Rebuild the derived packed shadow from the restored stations. The
      // fast tier's cached arguments are a pure function of (stations,
      // regfile), so marking every live slot stale makes the first phase-1
      // drain recompute exactly the values the uninterrupted run carried.
      for (int i = 0; i < n; ++i) {
        if (fault_stall[static_cast<std::size_t>(i)] > 0) stall_b.Set(i);
        const Station& st = stations[static_cast<std::size_t>(i)];
        if (fast && st.valid) {
          fast_fill_slot(i, st);
          fin_b.SetTo(i, st.finished);
          iss_b.SetTo(i, st.issued);
          res_b.SetTo(i, st.resolved);
          msub_b.SetTo(i, st.mem_submitted);
        }
      }
    }
  }

  for (std::uint64_t cycle = start_cycle; cycle < config_.max_cycles && !done;
       ++cycle) {
    if (ckpt.MaybeSave(cycle, save_state)) break;
    if (config_.cancel && (cycle & 1023u) == 0 &&
        config_.cancel->load(std::memory_order_relaxed)) {
      break;  // Abandoned run: halted stays false.
    }
    result.cycles = cycle + 1;
    tel.OnCycle(cycle, fill);

    // --- Phase 1: combinational propagation and batch-completion check,
    // both against end-of-last-cycle state. ---
    bool all_finished = true;
    bool any_valid = false;
    bool requests_changed = false;
    if (tel.metrics_on()) {
      std::fill(last_writer.begin(), last_writer.end(), -1);
    }
    if (fast) {
      // Event-driven delivery: the masks carry end-of-last-cycle state, so
      // batch completion is a word scan and only slots whose argument
      // source changed since the last cycle re-resolve.
      for (int w = 0; w < pw; ++w) {
        const std::uint64_t v = valid_b.word(w);
        if (v != 0) any_valid = true;
        if ((v & ~fin_b.word(w)) != 0) all_finished = false;
      }
      if (tel.metrics_on()) {
        // Grid-distance sweep, replicating the incremental loop's
        // OnDistance calls in the same order (batch positions ascending).
        for (int i = 0; i < fill; ++i) {
          const Station& st = stations[static_cast<std::size_t>(i)];
          if (!st.valid) continue;
          const isa::Instruction& inst = st.inst();
          if (isa::ReadsRs1(inst.op)) {
            const int j = last_writer[static_cast<std::size_t>(inst.rs1)];
            tel.OnDistance(j >= 0 ? i - j : i + 1);
          }
          if (isa::ReadsRs2(inst.op)) {
            const int j = last_writer[static_cast<std::size_t>(inst.rs2)];
            tel.OnDistance(j >= 0 ? i - j : i + 1);
          }
          if (isa::WritesRd(inst.op)) {
            last_writer[static_cast<std::size_t>(inst.rd)] = i;
          }
        }
      }
      ForEachSetBit(stale_b, [&](int i) {
        const Station& st = stations[static_cast<std::size_t>(i)];
        if (!st.valid) return;
        const isa::Instruction& inst = st.inst();
        datapath::ResolvedArgs args;
        // The nearest preceding writer's binding, verbatim (ready or not);
        // slot 0 and readers with no in-batch writer take the register
        // file, exactly what the mesh-of-trees propagation delivers.
        const auto resolve = [&](isa::RegId r) -> datapath::RegBinding {
          const int j =
              wmap.NearestWriterBeforeAcyclic(i, static_cast<int>(r));
          return j >= 0 ? stations[static_cast<std::size_t>(j)].result
                        : regfile[r];
        };
        if (isa::ReadsRs1(inst.op)) args.arg1 = resolve(inst.rs1);
        if (isa::ReadsRs2(inst.op)) args.arg2 = resolve(inst.rs2);
        args_at[static_cast<std::size_t>(i)] = args;
        argr_b.SetTo(i, (!isa::ReadsRs1(inst.op) || args.arg1.ready) &&
                            (!isa::ReadsRs2(inst.op) || args.arg2.ready));
        if (fwd) mw_stale_b.Set(i);
      });
      stale_b.ClearAll();
    } else {
    // Word accumulators for the packed composition: one bit per station,
    // flushed every 64 lanes. Invalid lanes stay all-zero, which keeps every
    // derived condition vacuous.
    std::uint64_t av = 0, af = 0, ai = 0, ar = 0, am = 0, al = 0, as = 0,
                  ac = 0, aa = 0, an = 0;
    for (int i = 0; i < n; ++i) {
      const Station& st = stations[static_cast<std::size_t>(i)];
      datapath::StationRequest req = MakeRequest(st);
      if (req != requests[static_cast<std::size_t>(i)]) {
        requests[static_cast<std::size_t>(i)] = req;
        requests_changed = true;
      }
      if (tel.metrics_on() && st.valid) {
        // Grid distance to each operand's source: rows crossed from the
        // nearest preceding writer, or from the register file (one row
        // above the batch) when no station in the batch writes it.
        const isa::Instruction& inst = st.inst();
        if (isa::ReadsRs1(inst.op)) {
          const int j = last_writer[static_cast<std::size_t>(inst.rs1)];
          tel.OnDistance(j >= 0 ? i - j : i + 1);
        }
        if (isa::ReadsRs2(inst.op)) {
          const int j = last_writer[static_cast<std::size_t>(inst.rs2)];
          tel.OnDistance(j >= 0 ? i - j : i + 1);
        }
        if (isa::WritesRd(inst.op)) {
          last_writer[static_cast<std::size_t>(inst.rd)] = i;
        }
      }
      if (st.valid) {
        any_valid = true;
        if (!st.finished) all_finished = false;
      }
      if (packed) {
        if (st.valid) {
          const std::uint64_t bit = 1ULL << (i & 63);
          av |= bit;
          if (st.finished) af |= bit;
          if (st.issued) ai |= bit;
          if (st.resolved) ar |= bit;
          if (st.mem_submitted) am |= bit;
          const isa::Opcode op = st.inst().op;
          if (op == isa::Opcode::kLoad) {
            al |= bit;
          } else if (op == isa::Opcode::kStore) {
            as |= bit;
          } else {
            aa |= bit;
          }
          if (isa::IsControlFlow(op)) ac |= bit;
          if (NeedsAlu(op)) an |= bit;
        }
        if ((i & 63) == 63 || i == n - 1) {
          const int w = i >> 6;
          valid_b.word(w) = av;
          fin_b.word(w) = af;
          iss_b.word(w) = ai;
          res_b.word(w) = ar;
          msub_b.word(w) = am;
          ld_b.word(w) = al;
          stb_b.word(w) = as;
          cf_b.word(w) = ac;
          alu_like_b.word(w) = aa;
          needs_alu_b.word(w) = an;
          av = af = ai = ar = am = al = as = ac = aa = an = 0;
        }
      } else {
        const bool is_store = st.valid && st.inst().op == isa::Opcode::kStore;
        const bool is_load = st.valid && st.inst().op == isa::Opcode::kLoad;
        no_store[static_cast<std::size_t>(i)] = !is_store || st.finished;
        no_load[static_cast<std::size_t>(i)] = !is_load || st.finished;
        branch_ok[static_cast<std::size_t>(i)] =
            !st.valid || !isa::IsControlFlow(st.inst().op) || st.resolved;
      }
    }
    }
    if (maintain_prop) {
      // The whole propagation is a pure function of (regfile, requests):
      // skip it when neither moved since the last evaluation (common while
      // stations wait on long-latency operations).
      if (!prop_valid || requests_changed || regfile_changed) {
        dp.PropagateInto(regfile, requests, prop);
        prop_valid = true;
        regfile_changed = false;
      }
    } else if (!incremental) {
      prop = dp.Propagate(regfile, requests);
    }

    // --- Phase 1b: fault injection + self-checking, before the batch
    // latch and before any station reads prop this cycle. ---
    if (injector.active()) {
      injector.BeginCycle(cycle);
      injector.ApplyDatapathFaults(prop);
      tel.OnFaults(cycle, injector.pending());
      for (const fault::FaultEvent& e : injector.pending()) {
        if (e.kind == fault::FaultKind::kStallStation) {
          fault_stall[static_cast<std::size_t>(e.station % n)] +=
              static_cast<int>(e.payload % 8) + 1;
          if (packed) stall_b.Set(e.station % n);
          injector.NoteStall();
        }
      }
    }
    if (checked && checker.Due(cycle, injector.HasHazardousPending())) {
      checker.RecordCheck();
      tel.OnCheckerCheck(cycle);
      // Recompute the propagation from the (uncorruptible) inputs into the
      // scratch buffer and diff against the live one; on divergence adopt
      // the recomputed truth wholesale.
      dp.PropagateInto(regfile, requests, check_prop);
      std::uint64_t mismatched = 0;
      for (std::size_t i = 0; i < prop.args.size(); ++i) {
        if (prop.args[i].arg1 != check_prop.args[i].arg1) ++mismatched;
        if (prop.args[i].arg2 != check_prop.args[i].arg2) ++mismatched;
      }
      for (std::size_t r = 0; r < prop.final_regs.size(); ++r) {
        if (prop.final_regs[r] != check_prop.final_regs[r]) ++mismatched;
      }
      if (mismatched > 0) {
        std::swap(prop.args, check_prop.args);
        std::swap(prop.final_regs, check_prop.final_regs);
        prop_valid = true;
        checker.RecordDivergence(cycle, mismatched);
        tel.OnCheckerResync(cycle, mismatched);
      }
    }

    if (packed) {
      // Dead stations contribute vacuously true conditions (their class
      // bits are clear), so the acyclic prefixes match the byte lanes.
      for (int w = 0; w < pw; ++w) {
        cond_b.word(w) = ~(stb_b.word(w) & ~fin_b.word(w));
      }
      cond_b.word(pw - 1) &= datapath::PackedTailMask(n);
      datapath::PackedAllPrecedingSatisfyAcyclicInto(cond_b, psd_b);
      for (int w = 0; w < pw; ++w) {
        cond_b.word(w) = ~(ld_b.word(w) & ~fin_b.word(w));
      }
      cond_b.word(pw - 1) &= datapath::PackedTailMask(n);
      datapath::PackedAllPrecedingSatisfyAcyclicInto(cond_b, pld_b);
      for (int w = 0; w < pw; ++w) {
        cond_b.word(w) = ~(cf_b.word(w) & ~res_b.word(w));
      }
      cond_b.word(pw - 1) &= datapath::PackedTailMask(n);
      datapath::PackedAllPrecedingSatisfyAcyclicInto(cond_b, pcf_b);
    } else {
      datapath::AllPrecedingSatisfyAcyclicInto(no_store, prev_stores_done);
      datapath::AllPrecedingSatisfyAcyclicInto(no_load, prev_loads_done);
      datapath::AllPrecedingSatisfyAcyclicInto(branch_ok, prev_confirmed);
    }

    // The batch completes once every station is finished and no more
    // instructions are on the way into it ("At that time, the final values
    // are latched into the register file. The stations refill ... and
    // computation resumes.").
    const bool batch_complete =
        any_valid && all_finished && (fill == n || fetch.stalled());
    if (batch_complete) {
      if (fast) {
        // Each register's final value comes from its last in-batch writer;
        // unwritten registers keep their incoming file value, matching the
        // propagation's final row.
        for (int r = 0; r < L; ++r) {
          const int j = wmap.HighestWriter(r);
          if (j >= 0) {
            assert(stations[static_cast<std::size_t>(j)].result.ready);
            regfile[static_cast<std::size_t>(r)] =
                stations[static_cast<std::size_t>(j)].result;
          }
        }
      } else {
        for (int r = 0; r < L; ++r) {
          assert(prop.final_regs[static_cast<std::size_t>(r)].ready);
          regfile[static_cast<std::size_t>(r)] =
              prop.final_regs[static_cast<std::size_t>(r)];
        }
      }
      regfile_changed = true;
      const std::uint64_t committed_before = result.committed;
      for (int i = 0; i < fill && !done; ++i) {
        Station& st = stations[static_cast<std::size_t>(i)];
        if (!st.valid) continue;
        st.timing.commit_cycle = cycle;
        if (isa::IsControlFlow(st.inst().op)) {
          fetch.NotifyOutcome(st.fetched.pc, st.actual_taken);
        }
        result.timeline.push_back(st.timing);
        ++result.committed;
        tel.OnCommit(cycle, i, st);
        if (st.inst().op == isa::Opcode::kHalt) {
          done = true;
          result.halted = true;
        }
        st.Clear();
        ++st.generation;
      }
      tel.OnBatchRetire(cycle, result.committed - committed_before);
      for (auto& st : stations) {
        if (st.valid) {
          st.Clear();
          ++st.generation;
        }
      }
      if (fast) {
        // The whole batch left at once: reset the shadow wholesale instead
        // of slot-by-slot (stall_b survives -- pending injected stalls
        // stick to the slot and hit its next occupant, and fast excludes
        // fault plans anyway).
        wmap.ClearAllRows();
        for (auto* p : {&valid_b, &fin_b, &iss_b, &res_b, &msub_b, &ld_b,
                        &stb_b, &cf_b, &alu_like_b, &needs_alu_b, &argr_b,
                        &stale_b, &mw_stale_b}) {
          p->ClearAll();
        }
      }
      fill = 0;
    }

    // --- Phase 2: memory responses. ---
    mem.Tick();
    for (const auto& resp : mem.DrainCompleted()) {
      const auto it = inflight.find(resp.id);
      if (it == inflight.end()) continue;
      const MemTag tag = it->second;
      inflight.erase(it);
      Station& st = stations[static_cast<std::size_t>(tag.tag)];
      if (st.valid && st.generation == tag.generation) {
        const bool was_finished = st.finished;
        ApplyMemResponse(st, resp, cycle);
        if (packed) fin_b.Set(static_cast<int>(tag.tag));
        if (fast) {
          // The load's result binding just became ready: its readers
          // re-resolve at the next phase-1 drain, exactly when the
          // propagation would deliver the new value.
          if (isa::WritesRd(st.inst().op)) {
            mark_result_change(static_cast<int>(tag.tag), st.inst().rd);
          }
          if (fwd) mw_stale_b.Set(static_cast<int>(tag.tag));
        }
        tel.OnMemComplete(cycle, static_cast<int>(tag.tag), st, was_finished);
      }
    }

    // --- Phase 3: execute, in program order within the batch. ---
    if (!batch_complete && !done) {
      if (packed && !fast) {
        std::uint64_t ag = 0;
        for (int i = 0; i < fill; ++i) {
          const Station& st = stations[static_cast<std::size_t>(i)];
          if (st.valid) {
            const isa::Instruction& inst = st.inst();
            const datapath::ResolvedArgs& args =
                prop.args[static_cast<std::size_t>(i)];
            if ((!isa::ReadsRs1(inst.op) || args.arg1.ready) &&
                (!isa::ReadsRs2(inst.op) || args.arg2.ready)) {
              ag |= 1ULL << (i & 63);
            }
          }
          if ((i & 63) == 63 || i == fill - 1) {
            argr_b.word(i >> 6) = ag;
            ag = 0;
          }
        }
      }
      if (fwd) {
        if (fast) {
          // Refresh only the window entries whose station or arguments
          // moved -- after phase 2, so this cycle's memory completions are
          // visible to disambiguation, as in the rebuilt window below.
          ForEachSetBit(mw_stale_b, [&](int i) {
            mem_window_pos[static_cast<std::size_t>(i)] = MakeMemWindowEntry(
                stations[static_cast<std::size_t>(i)],
                args_at[static_cast<std::size_t>(i)]);
          });
          mw_stale_b.ClearAll();
        } else {
          mem_window.assign(static_cast<std::size_t>(fill), MemWindowEntry{});
          for (int i = 0; i < fill; ++i) {
            mem_window[static_cast<std::size_t>(i)] = MakeMemWindowEntry(
                stations[static_cast<std::size_t>(i)],
                prop.args[static_cast<std::size_t>(i)]);
          }
        }
      }
      if (config_.num_alus > 0) {
        if (packed) {
          int occupied = 0;
          for (int w = 0; w < pw; ++w) {
            occupied += std::popcount(needs_alu_b.word(w) & iss_b.word(w) &
                                      ~fin_b.word(w));
            req_b.word(w) = needs_alu_b.word(w) & ~iss_b.word(w) &
                            ~fin_b.word(w) & argr_b.word(w);
          }
          datapath::AluScheduler::PackedGrantAcyclicInto(
              req_b, std::max(0, config_.num_alus - occupied), grant_b);
        } else {
          alu_requests.assign(static_cast<std::size_t>(fill), 0);
          int occupied = 0;
          for (int i = 0; i < fill; ++i) {
            const Station& st = stations[static_cast<std::size_t>(i)];
            alu_requests[static_cast<std::size_t>(i)] =
                WantsAlu(st, prop.args[static_cast<std::size_t>(i)]);
            if (st.valid && st.issued && !st.finished &&
                NeedsAlu(st.inst().op)) {
              ++occupied;
            }
          }
          alu_grant.resize(static_cast<std::size_t>(fill));
          datapath::AluScheduler::GrantAcyclicInto(
              alu_requests, std::max(0, config_.num_alus - occupied),
              alu_grant);
        }
      }
      if (packed) {
        // Visit only stations whose StepStation call would act (the mask
        // mirrors its no-op predicate exactly, so skipping is identical),
        // plus stations serving an injected stall, which must decrement
        // their counters in walk order like the scalar loop's skip does.
        // With store forwarding on, a load's gate is its disambiguation
        // decision rather than the prev-stores-done prefix, so the load
        // term drops psd (an undecidable load is visited and no-ops).
        bool squashed = false;
        for (int w = 0; w < pw && !squashed; ++w) {
          const int base = w << 6;
          if (base >= fill) break;
          const int hi = std::min(64, fill - base);
          const std::uint64_t grant_ok =
              config_.num_alus > 0 ? (grant_b.word(w) | ~needs_alu_b.word(w))
                                   : ~0ULL;
          const std::uint64_t load_gate = fwd ? ~0ULL : psd_b.word(w);
          std::uint64_t mv =
              (valid_b.word(w) & ~fin_b.word(w) &
               ((alu_like_b.word(w) &
                 (iss_b.word(w) | (argr_b.word(w) & grant_ok))) |
                (ld_b.word(w) & ~msub_b.word(w) & argr_b.word(w) &
                 load_gate) |
                (stb_b.word(w) & ~msub_b.word(w) & argr_b.word(w) &
                 pld_b.word(w) & psd_b.word(w) & pcf_b.word(w)))) |
              (stall_b.word(w) & valid_b.word(w));
          mv &= hi == 64 ? ~0ULL : ((1ULL << hi) - 1);
          while (mv != 0) {
            const int b = std::countr_zero(mv);
            mv &= mv - 1;
            const int i = base + b;
            if (stall_b.Test(i)) {
              // Injected stall: the station sits this cycle out.
              if (--fault_stall[static_cast<std::size_t>(i)] == 0) {
                stall_b.Clear(i);
              }
              continue;
            }
            Station& st = stations[static_cast<std::size_t>(i)];
            const datapath::ResolvedArgs& args =
                fast ? args_at[static_cast<std::size_t>(i)]
                     : prop.args[static_cast<std::size_t>(i)];
            StepContext ctx;
            ctx.prev_stores_done = psd_b.Test(i);
            ctx.prev_loads_done = pld_b.Test(i);
            ctx.committed_ok = pcf_b.Test(i);
            ctx.alu_granted = config_.num_alus == 0 || grant_b.Test(i);
            ctx.forwarding_enabled = fwd;
            if (fwd && st.inst().op == isa::Opcode::kLoad) {
              const MemWindowEntry* win =
                  fast ? mem_window_pos.data() : mem_window.data();
              if (win[i].addr_known) {
                const auto decision = ResolveLoadForwarding(
                    std::span<const MemWindowEntry>(
                        win, static_cast<std::size_t>(fill)),
                    static_cast<std::size_t>(i));
                ctx.load_can_proceed = decision.can_proceed;
                ctx.load_forward = decision.forward;
                ctx.forward_value = decision.value;
              }
            }
            const bool was_issued = st.issued;
            const bool was_finished = st.finished;
            const datapath::RegBinding pre_result = st.result;
            const bool mispredicted = StepStation(
                st, args, ctx, config_.latencies, mem, cycle, i,
                static_cast<std::uint64_t>(i), inflight, result.stats);
            tel.OnStep(cycle, i, st, was_issued, was_finished);
            if (fast) {
              iss_b.SetTo(i, st.issued);
              fin_b.SetTo(i, st.finished);
              res_b.SetTo(i, st.resolved);
              msub_b.SetTo(i, st.mem_submitted);
              if (st.result != pre_result && isa::WritesRd(st.inst().op)) {
                mark_result_change(i, st.inst().rd);
              }
              if (fwd) mw_stale_b.Set(i);
            }
            if (mispredicted) {
              ++result.stats.mispredictions;
              for (int m = i + 1; m < fill; ++m) {
                Station& victim = stations[static_cast<std::size_t>(m)];
                if (victim.valid) {
                  ++result.stats.squashed_instructions;
                  tel.OnSquash(cycle, m, victim);
                  if (fast) fast_clear_slot(m, victim);
                  victim.Clear();
                  ++victim.generation;
                }
              }
              fill = i + 1;
              fetch.Redirect(st.actual_next_pc);
              squashed = true;
              break;
            }
          }
        }
      } else {
      for (int i = 0; i < fill; ++i) {
        Station& st = stations[static_cast<std::size_t>(i)];
        if (!st.valid) continue;
        if (fault_stall[static_cast<std::size_t>(i)] > 0) {
          --fault_stall[static_cast<std::size_t>(i)];
          continue;  // Injected stall: the station sits out this cycle.
        }
        StepContext ctx;
        ctx.prev_stores_done =
            prev_stores_done[static_cast<std::size_t>(i)] != 0;
        ctx.prev_loads_done =
            prev_loads_done[static_cast<std::size_t>(i)] != 0;
        ctx.committed_ok = prev_confirmed[static_cast<std::size_t>(i)] != 0;
        ctx.alu_granted = config_.num_alus == 0 ||
                          alu_grant[static_cast<std::size_t>(i)] != 0;
        ctx.forwarding_enabled = config_.store_forwarding;
        if (ctx.forwarding_enabled && st.inst().op == isa::Opcode::kLoad &&
            mem_window[static_cast<std::size_t>(i)].addr_known) {
          const auto decision = ResolveLoadForwarding(
              mem_window, static_cast<std::size_t>(i));
          ctx.load_can_proceed = decision.can_proceed;
          ctx.load_forward = decision.forward;
          ctx.forward_value = decision.value;
        }
        const bool was_issued = st.issued;
        const bool was_finished = st.finished;
        const bool mispredicted = StepStation(
            st, prop.args[static_cast<std::size_t>(i)], ctx,
            config_.latencies, mem, cycle, i, static_cast<std::uint64_t>(i),
            inflight, result.stats);
        tel.OnStep(cycle, i, st, was_issued, was_finished);
        if (mispredicted) {
          ++result.stats.mispredictions;
          for (int m = i + 1; m < fill; ++m) {
            Station& victim = stations[static_cast<std::size_t>(m)];
            if (victim.valid) {
              ++result.stats.squashed_instructions;
              tel.OnSquash(cycle, m, victim);
              victim.Clear();
              ++victim.generation;
            }
          }
          fill = i + 1;
          fetch.Redirect(st.actual_next_pc);
        }
      }
      }

      // Forced mispredictions (fault injection): squash + redirect through
      // the normal recovery machinery.
      if (injector.active()) {
        for (const fault::FaultEvent& e : injector.pending()) {
          if (e.kind != fault::FaultKind::kForceMispredict) continue;
          if (fill == 0) {
            injector.NoteMasked();
            continue;
          }
          const int i = e.station % fill;
          Station& st = stations[static_cast<std::size_t>(i)];
          if (!st.valid || st.inst().op == isa::Opcode::kHalt) {
            injector.NoteMasked();
            continue;
          }
          std::size_t redirect_pc;
          if (isa::IsControlFlow(st.inst().op)) {
            redirect_pc = st.resolved ? st.actual_next_pc
                                      : st.fetched.predicted_next_pc;
          } else {
            redirect_pc = st.fetched.pc + 1;
          }
          injector.NoteForcedMispredict();
          for (int m = i + 1; m < fill; ++m) {
            Station& victim = stations[static_cast<std::size_t>(m)];
            if (victim.valid) {
              ++result.stats.squashed_instructions;
              ++result.stats.fault.squashes;
              tel.OnSquash(cycle, m, victim);
              victim.Clear();
              ++victim.generation;
            }
          }
          fill = i + 1;
          fetch.Redirect(redirect_pc);
        }
      }
    }

    // --- Phase 4: fill the batch. ---
    if (!done) {
      const int free = n - fill;
      if (free == 0) ++result.stats.window_full_cycles;
      const int width = std::min(config_.EffectiveFetchWidth(), free);
      fetch.FetchCycle(width, fetch_batch);
      if (fetch_batch.empty() && free > 0 && fill > 0 && !fetch.stalled()) {
        ++result.stats.fetch_stall_cycles;
      }
      for (const auto& f : fetch_batch) {
        FillStation(stations[static_cast<std::size_t>(fill)], f, next_seq++,
                    cycle);
        stations[static_cast<std::size_t>(fill)].timing.station = fill;
        tel.OnFetch(cycle, fill, stations[static_cast<std::size_t>(fill)]);
        if (fast) {
          fast_fill_slot(fill, stations[static_cast<std::size_t>(fill)]);
        }
        ++fill;
      }
      if (fetch.stalled() && fill == 0) {
        done = true;
        result.halted = true;
      }
    }
  }

  result.regs.resize(static_cast<std::size_t>(L));
  for (int r = 0; r < L; ++r) {
    result.regs[static_cast<std::size_t>(r)] =
        regfile[static_cast<std::size_t>(r)].value;
  }
  result.memory = mem.store().Snapshot();
  tel.FinalizeFaults(result.stats, injector, checker);
  tel.FinalizeMemory(result.stats, mem, fetch);
  return result;
}

}  // namespace ultra::core
