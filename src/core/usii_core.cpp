#include "core/usii_core.hpp"

#include <cassert>

#include "core/exec.hpp"
#include "core/fetch.hpp"
#include "datapath/datapath.hpp"
#include "datapath/scheduler.hpp"

namespace ultra::core {

namespace {

datapath::StationRequest MakeRequest(const Station& st) {
  datapath::StationRequest req;
  if (!st.valid) return req;
  const isa::Instruction& inst = st.inst();
  req.reads1 = isa::ReadsRs1(inst.op);
  req.arg1 = inst.rs1;
  req.reads2 = isa::ReadsRs2(inst.op);
  req.arg2 = inst.rs2;
  req.writes = isa::WritesRd(inst.op);
  req.dest = inst.rd;
  req.result = st.result;
  return req;
}

}  // namespace

RunResult UltrascalarIICore::Run(const isa::Program& program) {
  const int n = config_.window_size;
  const int L = config_.num_regs;
  datapath::UltrascalarIIDatapath dp(n, L);
  memory::MemorySystem mem(config_.mem, n);
  mem.Reset(program.initial_memory());
  FetchEngine fetch(&program, config_, MakePredictor(config_, program));

  std::vector<Station> stations(static_cast<std::size_t>(n));
  std::vector<datapath::RegBinding> regfile(static_cast<std::size_t>(L));
  for (auto& b : regfile) b.ready = true;

  int fill = 0;  // Slots [0, fill) of the current batch hold instructions.
  std::uint64_t next_seq = 0;
  InflightMap inflight;
  RunResult result;
  bool done = false;

  const bool incremental =
      config_.datapath_eval == DatapathEval::kIncremental;

  std::vector<datapath::StationRequest> requests(
      static_cast<std::size_t>(n));
  std::vector<std::uint8_t> no_store(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> no_load(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> branch_ok(static_cast<std::size_t>(n));
  // Per-cycle scratch, hoisted out of the loop so the hot path does not
  // touch the allocator (capacity is reused across cycles).
  datapath::UsiiPropagation prop;  // Reused output buffer.
  bool prop_valid = false;   // prop matches the current (regfile, requests).
  bool regfile_changed = true;
  std::vector<std::uint8_t> prev_stores_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_loads_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_confirmed(static_cast<std::size_t>(n));
  std::vector<MemWindowEntry> mem_window;
  std::vector<std::uint8_t> alu_requests;
  std::vector<std::uint8_t> alu_grant;
  std::vector<FetchedInstr> fetch_batch;

  for (std::uint64_t cycle = 0; cycle < config_.max_cycles && !done;
       ++cycle) {
    result.cycles = cycle + 1;

    // --- Phase 1: combinational propagation and batch-completion check,
    // both against end-of-last-cycle state. ---
    bool all_finished = true;
    bool any_valid = false;
    bool requests_changed = false;
    for (int i = 0; i < n; ++i) {
      const Station& st = stations[static_cast<std::size_t>(i)];
      datapath::StationRequest req = MakeRequest(st);
      if (req != requests[static_cast<std::size_t>(i)]) {
        requests[static_cast<std::size_t>(i)] = req;
        requests_changed = true;
      }
      if (st.valid) {
        any_valid = true;
        if (!st.finished) all_finished = false;
      }
      const bool is_store = st.valid && st.inst().op == isa::Opcode::kStore;
      const bool is_load = st.valid && st.inst().op == isa::Opcode::kLoad;
      no_store[static_cast<std::size_t>(i)] = !is_store || st.finished;
      no_load[static_cast<std::size_t>(i)] = !is_load || st.finished;
      branch_ok[static_cast<std::size_t>(i)] =
          !st.valid || !isa::IsControlFlow(st.inst().op) || st.resolved;
    }
    if (incremental) {
      // The whole propagation is a pure function of (regfile, requests):
      // skip it when neither moved since the last evaluation (common while
      // stations wait on long-latency operations).
      if (!prop_valid || requests_changed || regfile_changed) {
        dp.PropagateInto(regfile, requests, prop);
        prop_valid = true;
        regfile_changed = false;
      }
    } else {
      prop = dp.Propagate(regfile, requests);
    }
    datapath::AllPrecedingSatisfyAcyclicInto(no_store, prev_stores_done);
    datapath::AllPrecedingSatisfyAcyclicInto(no_load, prev_loads_done);
    datapath::AllPrecedingSatisfyAcyclicInto(branch_ok, prev_confirmed);

    // The batch completes once every station is finished and no more
    // instructions are on the way into it ("At that time, the final values
    // are latched into the register file. The stations refill ... and
    // computation resumes.").
    const bool batch_complete =
        any_valid && all_finished && (fill == n || fetch.stalled());
    if (batch_complete) {
      for (int r = 0; r < L; ++r) {
        assert(prop.final_regs[static_cast<std::size_t>(r)].ready);
        regfile[static_cast<std::size_t>(r)] =
            prop.final_regs[static_cast<std::size_t>(r)];
      }
      regfile_changed = true;
      for (int i = 0; i < fill && !done; ++i) {
        Station& st = stations[static_cast<std::size_t>(i)];
        if (!st.valid) continue;
        st.timing.commit_cycle = cycle;
        if (isa::IsControlFlow(st.inst().op)) {
          fetch.NotifyOutcome(st.fetched.pc, st.actual_taken);
        }
        result.timeline.push_back(st.timing);
        ++result.committed;
        if (st.inst().op == isa::Opcode::kHalt) {
          done = true;
          result.halted = true;
        }
        st.Clear();
        ++st.generation;
      }
      for (auto& st : stations) {
        if (st.valid) {
          st.Clear();
          ++st.generation;
        }
      }
      fill = 0;
    }

    // --- Phase 2: memory responses. ---
    mem.Tick();
    for (const auto& resp : mem.DrainCompleted()) {
      const auto it = inflight.find(resp.id);
      if (it == inflight.end()) continue;
      const MemTag tag = it->second;
      inflight.erase(it);
      Station& st = stations[static_cast<std::size_t>(tag.tag)];
      if (st.valid && st.generation == tag.generation) {
        ApplyMemResponse(st, resp, cycle);
      }
    }

    // --- Phase 3: execute, in program order within the batch. ---
    if (!batch_complete && !done) {
      if (config_.store_forwarding) {
        mem_window.assign(static_cast<std::size_t>(fill), MemWindowEntry{});
        for (int i = 0; i < fill; ++i) {
          mem_window[static_cast<std::size_t>(i)] = MakeMemWindowEntry(
              stations[static_cast<std::size_t>(i)],
              prop.args[static_cast<std::size_t>(i)]);
        }
      }
      if (config_.num_alus > 0) {
        alu_requests.assign(static_cast<std::size_t>(fill), 0);
        int occupied = 0;
        for (int i = 0; i < fill; ++i) {
          const Station& st = stations[static_cast<std::size_t>(i)];
          alu_requests[static_cast<std::size_t>(i)] =
              WantsAlu(st, prop.args[static_cast<std::size_t>(i)]);
          if (st.valid && st.issued && !st.finished &&
              NeedsAlu(st.inst().op)) {
            ++occupied;
          }
        }
        alu_grant.resize(static_cast<std::size_t>(fill));
        datapath::AluScheduler::GrantAcyclicInto(
            alu_requests, std::max(0, config_.num_alus - occupied),
            alu_grant);
      }
      for (int i = 0; i < fill; ++i) {
        Station& st = stations[static_cast<std::size_t>(i)];
        if (!st.valid) continue;
        StepContext ctx;
        ctx.prev_stores_done =
            prev_stores_done[static_cast<std::size_t>(i)] != 0;
        ctx.prev_loads_done =
            prev_loads_done[static_cast<std::size_t>(i)] != 0;
        ctx.committed_ok = prev_confirmed[static_cast<std::size_t>(i)] != 0;
        ctx.alu_granted = config_.num_alus == 0 ||
                          alu_grant[static_cast<std::size_t>(i)] != 0;
        ctx.forwarding_enabled = config_.store_forwarding;
        if (ctx.forwarding_enabled && st.inst().op == isa::Opcode::kLoad &&
            mem_window[static_cast<std::size_t>(i)].addr_known) {
          const auto decision = ResolveLoadForwarding(
              mem_window, static_cast<std::size_t>(i));
          ctx.load_can_proceed = decision.can_proceed;
          ctx.load_forward = decision.forward;
          ctx.forward_value = decision.value;
        }
        const bool mispredicted = StepStation(
            st, prop.args[static_cast<std::size_t>(i)], ctx,
            config_.latencies, mem, cycle, i, static_cast<std::uint64_t>(i),
            inflight, result.stats);
        if (mispredicted) {
          ++result.stats.mispredictions;
          for (int m = i + 1; m < fill; ++m) {
            Station& victim = stations[static_cast<std::size_t>(m)];
            if (victim.valid) {
              ++result.stats.squashed_instructions;
              victim.Clear();
              ++victim.generation;
            }
          }
          fill = i + 1;
          fetch.Redirect(st.actual_next_pc);
        }
      }
    }

    // --- Phase 4: fill the batch. ---
    if (!done) {
      const int free = n - fill;
      if (free == 0) ++result.stats.window_full_cycles;
      const int width = std::min(config_.EffectiveFetchWidth(), free);
      fetch.FetchCycle(width, fetch_batch);
      if (fetch_batch.empty() && free > 0 && fill > 0 && !fetch.stalled()) {
        ++result.stats.fetch_stall_cycles;
      }
      for (const auto& f : fetch_batch) {
        FillStation(stations[static_cast<std::size_t>(fill)], f, next_seq++,
                    cycle);
        stations[static_cast<std::size_t>(fill)].timing.station = fill;
        ++fill;
      }
      if (fetch.stalled() && fill == 0) {
        done = true;
        result.halted = true;
      }
    }
  }

  result.regs.resize(static_cast<std::size_t>(L));
  for (int r = 0; r < L; ++r) {
    result.regs[static_cast<std::size_t>(r)] =
        regfile[static_cast<std::size_t>(r)].value;
  }
  result.memory = mem.store().Snapshot();
  return result;
}

}  // namespace ultra::core
