// Abstract processor interface and factory.
//
// All four processors (Ultrascalar I, Ultrascalar II, hybrid, and the
// idealized conventional out-of-order baseline) implement identical
// instruction sets with identical scheduling policies (Section 1); they
// differ only in microarchitecture. Run() executes a program to completion
// and reports architectural state, cycle counts, and a per-instruction
// timeline.
#pragma once

#include <memory>
#include <string_view>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "memory/branch_predictor.hpp"

namespace ultra::core {

class Processor {
 public:
  virtual ~Processor() = default;

  /// Runs @p program from pc 0 until the halt commits (or max_cycles).
  [[nodiscard]] virtual RunResult Run(const isa::Program& program) = 0;

  [[nodiscard]] virtual std::string_view Name() const = 0;
  [[nodiscard]] virtual const CoreConfig& config() const = 0;
};

enum class ProcessorKind : std::uint8_t {
  kIdeal,
  kUltrascalarI,
  kUltrascalarII,
  kHybrid,
};

std::string_view ProcessorKindName(ProcessorKind kind);

/// Builds a processor of @p kind with @p config.
std::unique_ptr<Processor> MakeProcessor(ProcessorKind kind,
                                         const CoreConfig& config);

/// Builds the predictor selected by @p config. The oracle predictor is
/// derived from a functional pre-run of @p program.
std::unique_ptr<memory::BranchPredictor> MakePredictor(
    const CoreConfig& config, const isa::Program& program);

}  // namespace ultra::core
