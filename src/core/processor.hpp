// Abstract processor interface and factory.
//
// All four processors (Ultrascalar I, Ultrascalar II, hybrid, and the
// idealized conventional out-of-order baseline) implement identical
// instruction sets with identical scheduling policies (Section 1); they
// differ only in microarchitecture. Run() executes a program to completion
// and reports architectural state, cycle counts, and a per-instruction
// timeline.
#pragma once

#include <memory>
#include <string_view>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "memory/branch_predictor.hpp"
#include "persist/checkpoint.hpp"

namespace ultra::core {

enum class ProcessorKind : std::uint8_t {
  kIdeal,
  kUltrascalarI,
  kUltrascalarII,
  kHybrid,
};

class Processor {
 public:
  virtual ~Processor() = default;

  /// Runs @p program from pc 0 until the halt commits (or max_cycles).
  [[nodiscard]] virtual RunResult Run(const isa::Program& program) = 0;

  [[nodiscard]] virtual std::string_view Name() const = 0;
  [[nodiscard]] virtual const CoreConfig& config() const = 0;
  [[nodiscard]] virtual ProcessorKind kind() const = 0;

  /// Runs @p program just long enough to capture a checkpoint at the top
  /// of cycle @p cycle (full microarchitectural + architectural state; see
  /// docs/robustness.md), then stops. Throws std::runtime_error when the
  /// run ends before reaching that cycle. Leaves this processor untouched
  /// — the capture happens in a scratch instance with the same config.
  [[nodiscard]] persist::Checkpoint SaveCheckpoint(
      const isa::Program& program, std::uint64_t cycle) const;

  /// Resumes @p program from @p checkpoint and runs to completion. The
  /// result is identical — cycles, stats, timeline, registers, memory — to
  /// an uninterrupted Run() of the same program. Throws
  /// persist::FormatError when the checkpoint was taken by a different
  /// core kind, config, or program.
  [[nodiscard]] RunResult RestoreCheckpoint(
      const isa::Program& program,
      const persist::Checkpoint& checkpoint) const;
};

std::string_view ProcessorKindName(ProcessorKind kind);

/// Builds a processor of @p kind with @p config.
std::unique_ptr<Processor> MakeProcessor(ProcessorKind kind,
                                         const CoreConfig& config);

/// Builds the predictor selected by @p config. The oracle predictor is
/// derived from a functional pre-run of @p program.
std::unique_ptr<memory::BranchPredictor> MakePredictor(
    const CoreConfig& config, const isa::Program& program);

}  // namespace ultra::core
