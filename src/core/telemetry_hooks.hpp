// CoreTelemetry: the one adapter between the cycle-level cores and the
// telemetry subsystem (src/telemetry/). Each core constructs one per Run()
// from CoreConfig::telemetry and calls the inline hooks from its phases;
// with no sink attached every hook is a null test, which is what keeps the
// disabled-mode overhead inside bench_telemetry_overhead's 2% gate.
#pragma once

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "core/station.hpp"
#include "fault/fault.hpp"
#include "telemetry/telemetry.hpp"

namespace ultra::core {

/// Shared bucket edges for the core histograms. Station distances and cycle
/// counts both live on power-of-two scales, so one geometric ladder serves
/// window occupancy, issue-to-commit latency, and propagation distance.
inline constexpr std::uint64_t kCoreHistogramBounds[] = {
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};

class CoreTelemetry {
 public:
  CoreTelemetry() = default;

  explicit CoreTelemetry(const CoreConfig& config) {
    telemetry::RunTelemetry* rt = config.telemetry;
    if (rt == nullptr) return;
    tracer_ = rt->tracer;
    if (!rt->metrics_enabled) return;
    telemetry::MetricsRegistry& reg = rt->registry;
    occupancy_ = reg.Histogram("core.window_occupancy", kCoreHistogramBounds);
    latency_ = reg.Histogram("core.issue_to_commit_cycles",
                             kCoreHistogramBounds);
    distance_ = reg.Histogram("core.propagation_distance",
                              kCoreHistogramBounds);
    squashes_ = reg.Counter("core.squashed_instructions");
    fault_injected_ = reg.Counter("fault.injected");
    fault_checks_ = reg.Counter("fault.checker_checks");
    fault_divergences_ = reg.Counter("fault.divergences_detected");
    fault_resyncs_ = reg.Counter("fault.checker_resyncs");
    fault_squashes_ = reg.Counter("fault.squashes_under_fault");
    mem_l1d_hits_ = reg.Counter("mem.l1d_hits");
    mem_l1d_misses_ = reg.Counter("mem.l1d_misses");
    mem_l2_hits_ = reg.Counter("mem.l2_hits");
    mem_l2_misses_ = reg.Counter("mem.l2_misses");
    mem_icache_misses_ = reg.Counter("mem.icache_misses");
    mem_prefetch_issued_ = reg.Counter("mem.prefetch_issued");
    mem_prefetch_useful_ = reg.Counter("mem.prefetch_useful");
    rt->sheet.Bind(&reg);
    sheet_ = &rt->sheet;
  }

  [[nodiscard]] bool metrics_on() const { return sheet_ != nullptr; }
  [[nodiscard]] bool trace_on() const { return tracer_ != nullptr; }

  /// Once per simulated cycle; @p occupancy = allocated stations.
  void OnCycle(std::uint64_t cycle, int occupancy) {
    (void)cycle;
    if (sheet_ != nullptr) {
      sheet_->Observe(occupancy_, static_cast<std::uint64_t>(occupancy));
    }
  }

  /// One operand delivery: @p stations = ring/grid hops from the value's
  /// producer (0 = own station / committed file at the oldest).
  void OnDistance(int stations) {
    if (sheet_ != nullptr) {
      sheet_->Observe(distance_, static_cast<std::uint64_t>(stations));
    }
  }

  void OnFetch(std::uint64_t cycle, int station, const Station& st) {
    if (tracer_ != nullptr) {
      Emit(telemetry::TraceEventKind::kFetch, cycle, station, st, 0);
    }
  }

  /// Ideal-core renaming: @p producer_seq = the in-flight producer adopted.
  void OnRename(std::uint64_t cycle, int station, const Station& st,
                std::uint64_t producer_seq) {
    if (tracer_ != nullptr) {
      Emit(telemetry::TraceEventKind::kRename, cycle, station, st,
           producer_seq);
    }
  }

  /// After StepStation: emits issue/complete transitions.
  void OnStep(std::uint64_t cycle, int station, const Station& st,
              bool was_issued, bool was_finished) {
    if (tracer_ == nullptr) return;
    if (!was_issued && st.issued) {
      Emit(telemetry::TraceEventKind::kIssue, cycle, station, st, 0);
    }
    if (!was_finished && st.finished) {
      Emit(telemetry::TraceEventKind::kComplete, cycle, station, st, 0);
    }
  }

  /// After ApplyMemResponse (memory completions bypass StepStation).
  void OnMemComplete(std::uint64_t cycle, int station, const Station& st,
                     bool was_finished) {
    if (tracer_ != nullptr && !was_finished && st.finished) {
      Emit(telemetry::TraceEventKind::kComplete, cycle, station, st, 0);
    }
  }

  void OnCommit(std::uint64_t cycle, int station, const Station& st) {
    if (sheet_ != nullptr) {
      sheet_->Observe(latency_, cycle - st.timing.issue_cycle);
    }
    if (tracer_ != nullptr) {
      Emit(telemetry::TraceEventKind::kCommit, cycle, station, st, 0);
    }
  }

  void OnSquash(std::uint64_t cycle, int station, const Station& st) {
    if (sheet_ != nullptr) sheet_->Add(squashes_);
    if (tracer_ != nullptr) {
      Emit(telemetry::TraceEventKind::kSquash, cycle, station, st, 0);
    }
  }

  /// USII whole-batch retirement; @p retired = instructions in the batch.
  void OnBatchRetire(std::uint64_t cycle, std::uint64_t retired) {
    if (tracer_ != nullptr) {
      telemetry::TraceEvent e;
      e.kind = telemetry::TraceEventKind::kBatchRetire;
      e.cycle = cycle;
      e.payload = retired;
      tracer_->Record(e);
    }
  }

  void OnCheckerCheck(std::uint64_t cycle) {
    if (tracer_ != nullptr) {
      telemetry::TraceEvent e;
      e.kind = telemetry::TraceEventKind::kCheckerCheck;
      e.cycle = cycle;
      tracer_->Record(e);
    }
  }

  void OnCheckerResync(std::uint64_t cycle, std::uint64_t mismatched) {
    if (tracer_ != nullptr) {
      telemetry::TraceEvent e;
      e.kind = telemetry::TraceEventKind::kCheckerResync;
      e.cycle = cycle;
      e.payload = mismatched;
      tracer_->Record(e);
    }
  }

  /// The fault events staged for this cycle (injector.pending()).
  void OnFaults(std::uint64_t cycle,
                std::span<const fault::FaultEvent> pending) {
    if (tracer_ == nullptr) return;
    for (const fault::FaultEvent& f : pending) {
      telemetry::TraceEvent e;
      e.kind = telemetry::TraceEventKind::kFaultInject;
      e.cycle = cycle;
      e.station = f.station;
      e.payload = static_cast<std::uint64_t>(f.kind);
      tracer_->Record(e);
    }
  }

  /// The single snapshot path for the fault counters: copies the injector
  /// and checker totals into RunStats::fault (whose `squashes` the core
  /// incremented in-loop) and mirrors the block into the "fault.*" registry
  /// counters when metrics are on.
  void FinalizeFaults(RunStats& stats, const fault::FaultInjector& injector,
                      const fault::DatapathChecker& checker) {
    stats.fault.injected = injector.stats().injected;
    stats.fault.checks = checker.stats().checks;
    stats.fault.divergences = checker.stats().divergences;
    stats.fault.resyncs = checker.stats().resyncs;
    if (sheet_ != nullptr) {
      sheet_->Add(fault_injected_, stats.fault.injected);
      sheet_->Add(fault_checks_, stats.fault.checks);
      sheet_->Add(fault_divergences_, stats.fault.divergences);
      sheet_->Add(fault_resyncs_, stats.fault.resyncs);
      sheet_->Add(fault_squashes_, stats.fault.squashes);
    }
  }

  /// The single snapshot path for the memory-hierarchy counters, mirroring
  /// FinalizeFaults: copies the L1D/L2/prefetcher totals out of the
  /// MemorySystem and the icache totals out of the FetchEngine into
  /// RunStats::mem_hierarchy, then mirrors the block into the "mem.*"
  /// registry counters when metrics are on. Every core calls this once at
  /// the end of Run; all counters stay zero when the hierarchy is disabled.
  void FinalizeMemory(RunStats& stats, const memory::MemorySystem& mem,
                      const FetchEngine& fetch) {
    MemHierarchyCounters& h = stats.mem_hierarchy;
    if (const memory::CacheLevelStats* l1d = mem.l1d_stats()) {
      h.l1d_hits = l1d->hits;
      h.l1d_misses = l1d->misses;
      h.l1d_writebacks = l1d->writebacks;
      h.prefetch_fills = l1d->prefetch_fills;
      h.prefetch_useful = l1d->prefetch_hits;
    }
    if (const memory::CacheLevelStats* l2 = mem.l2_stats()) {
      h.l2_hits = l2->hits;
      h.l2_misses = l2->misses;
      h.l2_writebacks = l2->writebacks;
      if (mem.l1d_stats() == nullptr) {
        h.prefetch_fills = l2->prefetch_fills;
        h.prefetch_useful = l2->prefetch_hits;
      }
    }
    h.prefetch_issued = mem.prefetch_issued();
    if (const memory::CacheLevelStats* l1i = fetch.icache_stats()) {
      h.icache_hits = l1i->hits;
      h.icache_misses = l1i->misses;
      h.icache_stall_cycles = fetch.stats().icache_stall_cycles;
    }
    if (sheet_ != nullptr) {
      sheet_->Add(mem_l1d_hits_, h.l1d_hits);
      sheet_->Add(mem_l1d_misses_, h.l1d_misses);
      sheet_->Add(mem_l2_hits_, h.l2_hits);
      sheet_->Add(mem_l2_misses_, h.l2_misses);
      sheet_->Add(mem_icache_misses_, h.icache_misses);
      sheet_->Add(mem_prefetch_issued_, h.prefetch_issued);
      sheet_->Add(mem_prefetch_useful_, h.prefetch_useful);
    }
  }

 private:
  void Emit(telemetry::TraceEventKind kind, std::uint64_t cycle, int station,
            const Station& st, std::uint64_t payload) {
    telemetry::TraceEvent e;
    e.kind = kind;
    e.cycle = cycle;
    e.seq = st.seq;
    e.payload = payload;
    e.pc = static_cast<std::uint32_t>(st.fetched.pc);
    e.station = station;
    e.op = static_cast<std::uint8_t>(st.inst().op);
    tracer_->Record(e);
  }

  telemetry::MetricSheet* sheet_ = nullptr;
  telemetry::PipelineTracer* tracer_ = nullptr;
  telemetry::HistogramId occupancy_;
  telemetry::HistogramId latency_;
  telemetry::HistogramId distance_;
  telemetry::CounterId squashes_;
  telemetry::CounterId fault_injected_;
  telemetry::CounterId fault_checks_;
  telemetry::CounterId fault_divergences_;
  telemetry::CounterId fault_resyncs_;
  telemetry::CounterId fault_squashes_;
  telemetry::CounterId mem_l1d_hits_;
  telemetry::CounterId mem_l1d_misses_;
  telemetry::CounterId mem_l2_hits_;
  telemetry::CounterId mem_l2_misses_;
  telemetry::CounterId mem_icache_misses_;
  telemetry::CounterId mem_prefetch_issued_;
  telemetry::CounterId mem_prefetch_useful_;
};

}  // namespace ultra::core
