// The Ultrascalar I processor (Sections 2-3).
//
// A ring of n execution stations connected by one CSPP circuit per logical
// register plus the Figure 5 sequencing circuits. Stations refill
// continually: the window wraps around, the oldest station holds the
// committed register file, and misprediction recovery costs nothing beyond
// refetching the correct path.
#pragma once

#include "core/processor.hpp"

namespace ultra::core {

class UltrascalarICore final : public Processor {
 public:
  explicit UltrascalarICore(const CoreConfig& config) : config_(config) {}

  [[nodiscard]] RunResult Run(const isa::Program& program) override;
  [[nodiscard]] std::string_view Name() const override {
    return "UltrascalarI";
  }
  [[nodiscard]] const CoreConfig& config() const override { return config_; }
  [[nodiscard]] ProcessorKind kind() const override {
    return ProcessorKind::kUltrascalarI;
  }

 private:
  CoreConfig config_;
};

}  // namespace ultra::core
