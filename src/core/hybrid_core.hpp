// The hybrid Ultrascalar processor (Section 6).
//
// n/C clusters of C stations each. Within a cluster, arguments route
// through the Ultrascalar II grid; between clusters, register values travel
// the Ultrascalar I CSPP ring, with the oldest cluster holding the
// committed register file. Clusters act as "super execution stations":
// they are allocated and deallocated as units in ring order, while
// instructions inside them issue out of order and commit in program order.
#pragma once

#include "core/processor.hpp"

namespace ultra::core {

class HybridCore final : public Processor {
 public:
  explicit HybridCore(const CoreConfig& config) : config_(config) {}

  [[nodiscard]] RunResult Run(const isa::Program& program) override;
  [[nodiscard]] std::string_view Name() const override { return "Hybrid"; }
  [[nodiscard]] const CoreConfig& config() const override { return config_; }
  [[nodiscard]] ProcessorKind kind() const override {
    return ProcessorKind::kHybrid;
  }

 private:
  CoreConfig config_;
};

}  // namespace ultra::core
