#include "core/config_codec.hpp"

#include <string>

#include "fault/plan_codec.hpp"

namespace ultra::core {

namespace {

constexpr int kNumOpClasses = 9;  // See isa::OpClass.

void EncodeCacheLevel(persist::Encoder& e,
                      const memory::CacheLevelConfig& level) {
  e.Bool(level.enabled);
  e.I32(level.sets);
  e.I32(level.ways);
  e.I32(level.block_bytes);
  e.I32(level.hit_latency);
  e.I32(level.miss_latency);
}

memory::CacheLevelConfig DecodeCacheLevel(persist::Decoder& d,
                                          const char* name) {
  memory::CacheLevelConfig level;
  level.enabled = d.Bool();
  level.sets = d.I32();
  level.ways = d.I32();
  level.block_bytes = d.I32();
  level.hit_latency = d.I32();
  level.miss_latency = d.I32();
  if (!level.enabled) return level;
  // Mirror CoreConfig::Validate: corrupt input must be a FormatError, never
  // an abort in the CacheLevelModel constructor's geometry asserts.
  const auto bad = [&name](const char* what) {
    return persist::FormatError(std::string("bad cache level ") + name + " " +
                                what);
  };
  if (level.sets < 1 || (level.sets & (level.sets - 1)) != 0) {
    throw bad("sets");
  }
  if (level.ways < 1) throw bad("ways");
  if (level.block_bytes < 4 ||
      (level.block_bytes & (level.block_bytes - 1)) != 0) {
    throw bad("block bytes");
  }
  if (level.hit_latency < 1) throw bad("hit latency");
  if (level.miss_latency < 1) throw bad("miss latency");
  return level;
}

void EncodeMemConfig(persist::Encoder& e, const memory::MemoryConfig& mem) {
  e.U8(static_cast<std::uint8_t>(mem.mode));
  e.I32(mem.magic_load_latency);
  e.I32(mem.magic_store_latency);
  e.I32(mem.cache.num_banks);
  e.I32(mem.cache.sets_per_bank);
  e.I32(mem.cache.ways);
  e.I32(mem.cache.line_bytes);
  e.I32(mem.cache.hit_latency);
  e.I32(mem.cache.miss_penalty);
  e.I32(mem.cache.ports_per_bank);
  e.U8(static_cast<std::uint8_t>(mem.regime));
  e.F64(mem.bandwidth_scale);
  e.I32(mem.cluster_cache_leaves);
  e.I32(mem.cluster_cache_words);
  e.I32(mem.cluster_cache_hit_latency);
  EncodeCacheLevel(e, mem.hierarchy.l1i);
  EncodeCacheLevel(e, mem.hierarchy.l1d);
  EncodeCacheLevel(e, mem.hierarchy.l2);
  e.I32(mem.hierarchy.prefetch.depth);
  e.I32(mem.hierarchy.prefetch.table_entries);
  e.I32(mem.hierarchy.prefetch.fill_latency);
}

memory::MemoryConfig DecodeMemConfig(persist::Decoder& d) {
  memory::MemoryConfig mem;
  const std::uint8_t mode = d.U8();
  if (mode > static_cast<std::uint8_t>(memory::MemTimingMode::kButterfly)) {
    throw persist::FormatError("bad memory timing mode");
  }
  mem.mode = static_cast<memory::MemTimingMode>(mode);
  mem.magic_load_latency = d.I32();
  mem.magic_store_latency = d.I32();
  mem.cache.num_banks = d.I32();
  mem.cache.sets_per_bank = d.I32();
  mem.cache.ways = d.I32();
  mem.cache.line_bytes = d.I32();
  mem.cache.hit_latency = d.I32();
  mem.cache.miss_penalty = d.I32();
  mem.cache.ports_per_bank = d.I32();
  const std::uint8_t regime = d.U8();
  if (regime > static_cast<std::uint8_t>(memory::BandwidthRegime::kLinear)) {
    throw persist::FormatError("bad bandwidth regime");
  }
  mem.regime = static_cast<memory::BandwidthRegime>(regime);
  mem.bandwidth_scale = d.F64();
  mem.cluster_cache_leaves = d.I32();
  mem.cluster_cache_words = d.I32();
  mem.cluster_cache_hit_latency = d.I32();
  mem.hierarchy.l1i = DecodeCacheLevel(d, "l1i");
  mem.hierarchy.l1d = DecodeCacheLevel(d, "l1d");
  mem.hierarchy.l2 = DecodeCacheLevel(d, "l2");
  mem.hierarchy.prefetch.depth = d.I32();
  mem.hierarchy.prefetch.table_entries = d.I32();
  mem.hierarchy.prefetch.fill_latency = d.I32();
  if (mem.hierarchy.prefetch.depth < 0) {
    throw persist::FormatError("bad prefetch depth");
  }
  if (mem.hierarchy.prefetch.depth > 0) {
    // The StridePrefetcher constructor asserts these; corrupt input must be
    // a FormatError, never an abort.
    if (mem.hierarchy.prefetch.table_entries < 1) {
      throw persist::FormatError("bad prefetch table size");
    }
    if (mem.hierarchy.prefetch.fill_latency < 1) {
      throw persist::FormatError("bad prefetch fill latency");
    }
  }
  return mem;
}

}  // namespace

void EncodeCoreConfig(persist::Encoder& e, const CoreConfig& config) {
  e.I32(config.window_size);
  e.I32(config.num_regs);
  e.I32(config.cluster_size);
  e.I32(config.fetch_width);
  e.U8(static_cast<std::uint8_t>(config.fetch_mode));
  e.I32(config.trace_cache_capacity);
  e.I32(config.trace_branches);
  e.U8(static_cast<std::uint8_t>(config.predictor));
  for (int c = 0; c < kNumOpClasses; ++c) {
    e.I32(config.latencies.Cycles(static_cast<isa::OpClass>(c)));
  }
  EncodeMemConfig(e, config.mem);
  e.U64(config.max_cycles);
  e.I32(config.num_alus);
  e.Bool(config.store_forwarding);
  e.I32(config.pipeline_levels_per_stage);
  e.U8(static_cast<std::uint8_t>(config.datapath_eval));
  e.I32(config.checker_stride);
  e.Bool(config.fault_plan != nullptr);
  if (config.fault_plan != nullptr) {
    fault::EncodeFaultPlan(e, *config.fault_plan);
  }
}

CoreConfig DecodeCoreConfig(persist::Decoder& d) {
  CoreConfig config;
  config.window_size = d.I32();
  config.num_regs = d.I32();
  config.cluster_size = d.I32();
  config.fetch_width = d.I32();
  const std::uint8_t fetch_mode = d.U8();
  if (fetch_mode > static_cast<std::uint8_t>(FetchMode::kTraceCache)) {
    throw persist::FormatError("bad fetch mode");
  }
  config.fetch_mode = static_cast<FetchMode>(fetch_mode);
  config.trace_cache_capacity = d.I32();
  config.trace_branches = d.I32();
  const std::uint8_t predictor = d.U8();
  if (predictor > static_cast<std::uint8_t>(PredictorKind::kOracle)) {
    throw persist::FormatError("bad predictor kind");
  }
  config.predictor = static_cast<PredictorKind>(predictor);
  for (int c = 0; c < kNumOpClasses; ++c) {
    const std::int32_t cycles = d.I32();
    // Validate before LatencyModel::Set, whose >= 1 contract is an assert:
    // corrupt input must be a FormatError, never an abort.
    if (cycles < 1) {
      throw persist::FormatError("bad op-class latency");
    }
    config.latencies.Set(static_cast<isa::OpClass>(c), cycles);
  }
  config.mem = DecodeMemConfig(d);
  config.max_cycles = d.U64();
  config.num_alus = d.I32();
  config.store_forwarding = d.Bool();
  config.pipeline_levels_per_stage = d.I32();
  const std::uint8_t eval = d.U8();
  if (eval > static_cast<std::uint8_t>(DatapathEval::kPacked)) {
    throw persist::FormatError("bad datapath eval mode");
  }
  config.datapath_eval = static_cast<DatapathEval>(eval);
  config.checker_stride = d.I32();
  if (d.Bool()) {
    config.fault_plan = std::make_shared<const fault::FaultPlan>(
        fault::DecodeFaultPlan(d));
  }
  return config;
}

std::uint64_t FingerprintConfig(const CoreConfig& config) {
  persist::Encoder e;
  EncodeCoreConfig(e, config);
  return persist::Fnv1a64(e.bytes());
}

}  // namespace ultra::core
