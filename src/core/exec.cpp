#include "core/exec.hpp"

#include <cassert>

#include "isa/alu.hpp"

namespace ultra::core {

namespace {

void Finish(Station& st, std::uint64_t cycle) {
  st.finished = true;
  st.timing.complete_cycle = cycle;
}

}  // namespace

bool NeedsAlu(isa::Opcode op) {
  switch (isa::ClassOf(op)) {
    case isa::OpClass::kIntSimple:
    case isa::OpClass::kIntMul:
    case isa::OpClass::kIntDiv:
    case isa::OpClass::kBranch:
    case isa::OpClass::kJump:
      return true;
    default:
      return false;
  }
}

bool WantsAlu(const Station& st, const datapath::ResolvedArgs& args) {
  if (!st.valid || st.issued || st.finished) return false;
  const isa::Instruction& inst = st.inst();
  if (!NeedsAlu(inst.op)) return false;
  const bool a_ready = !isa::ReadsRs1(inst.op) || args.arg1.ready;
  const bool b_ready = !isa::ReadsRs2(inst.op) || args.arg2.ready;
  return a_ready && b_ready;
}

bool StepStation(Station& st, const datapath::ResolvedArgs& args,
                 const StepContext& ctx, const isa::LatencyModel& latencies,
                 memory::MemorySystem& mem, std::uint64_t cycle, int leaf,
                 std::uint64_t tag, InflightMap& inflight, RunStats& stats) {
  if (!st.valid || st.finished) return false;
  const isa::Instruction& inst = st.inst();
  const isa::OpClass cls = isa::ClassOf(inst.op);

  switch (cls) {
    case isa::OpClass::kNop:
    case isa::OpClass::kHalt:
    case isa::OpClass::kIntSimple:
    case isa::OpClass::kIntMul:
    case isa::OpClass::kIntDiv:
    case isa::OpClass::kBranch:
    case isa::OpClass::kJump: {
      if (!st.issued) {
        const bool a_ready = !isa::ReadsRs1(inst.op) || args.arg1.ready;
        const bool b_ready = !isa::ReadsRs2(inst.op) || args.arg2.ready;
        if (!a_ready || !b_ready) return false;
        if (NeedsAlu(inst.op) && !ctx.alu_granted) return false;
        st.issued = true;
        st.arg_a = args.arg1.value;
        st.arg_b = args.arg2.value;
        st.busy_remaining = latencies.Cycles(inst.op);
        st.timing.issue_cycle = cycle;
      }
      assert(st.busy_remaining > 0);
      if (--st.busy_remaining > 0) return false;
      // The ALU delivers at the end of this cycle.
      if (cls == isa::OpClass::kBranch || cls == isa::OpClass::kJump) {
        st.resolved = true;
        st.actual_taken = isa::BranchTaken(inst, st.arg_a, st.arg_b);
        st.actual_next_pc = st.actual_taken
                                ? static_cast<std::size_t>(inst.imm)
                                : st.fetched.pc + 1;
        if (inst.op == isa::Opcode::kJal) {
          st.result.value = static_cast<isa::Word>(st.fetched.pc + 1);
          st.result.ready = true;
        }
        Finish(st, cycle);
        return st.actual_next_pc != st.fetched.predicted_next_pc;
      }
      if (isa::WritesRd(inst.op)) {
        st.result.value = isa::AluResult(inst, st.arg_a, st.arg_b);
        st.result.ready = true;
      }
      Finish(st, cycle);
      return false;
    }

    case isa::OpClass::kLoad: {
      if (st.mem_submitted || !args.arg1.ready) return false;
      if (ctx.forwarding_enabled) {
        // Memory renaming: issue once every preceding store address is
        // known; forward when the nearest same-address store has its data.
        if (!ctx.load_can_proceed) return false;
        if (ctx.load_forward) {
          st.arg_a = args.arg1.value;
          st.result.value = ctx.forward_value;
          st.result.ready = true;
          st.mem_submitted = true;  // No memory traffic.
          st.mem_done = true;
          st.timing.issue_cycle = cycle;
          ++stats.forwarded_loads;
          Finish(st, cycle);
          return false;
        }
      } else if (!ctx.prev_stores_done) {
        // "A station cannot load from memory until all preceding stores
        // have finished."
        return false;
      }
      st.arg_a = args.arg1.value;
      const isa::Word addr = isa::EffectiveAddress(inst, st.arg_a);
      st.mem_id = mem.SubmitLoad(leaf, addr);
      st.mem_submitted = true;
      st.timing.issue_cycle = cycle;
      inflight[st.mem_id] = MemTag{tag, st.generation};
      ++stats.load_count;
      return false;  // Completion arrives via ApplyMemResponse.
    }

    case isa::OpClass::kStore: {
      // "A station cannot store to memory until all preceding loads and
      // stores have finished", and it "cannot modify memory ... until all
      // preceding stations have committed."
      if (!st.mem_submitted && args.arg1.ready && args.arg2.ready &&
          ctx.prev_loads_done && ctx.prev_stores_done && ctx.committed_ok) {
        st.arg_a = args.arg1.value;
        st.arg_b = args.arg2.value;
        const isa::Word addr = isa::EffectiveAddress(inst, st.arg_a);
        st.mem_id = mem.SubmitStore(leaf, addr, st.arg_b);
        st.mem_submitted = true;
        st.timing.issue_cycle = cycle;
        inflight[st.mem_id] = MemTag{tag, st.generation};
        ++stats.store_count;
      }
      return false;
    }
  }
  return false;
}

void ApplyMemResponse(Station& st, const memory::MemResponse& resp,
                      std::uint64_t cycle) {
  assert(st.valid && st.mem_submitted && !st.mem_done);
  assert(st.mem_id == resp.id);
  st.mem_done = true;
  if (!resp.is_store && isa::WritesRd(st.inst().op)) {
    st.result.value = resp.value;
    st.result.ready = true;
  }
  st.finished = true;
  st.timing.complete_cycle = cycle;
}

LoadForwardDecision ResolveLoadForwarding(
    std::span<const MemWindowEntry> window, std::size_t pos) {
  assert(pos < window.size());
  assert(window[pos].is_load && window[pos].addr_known);
  const isa::Word addr = window[pos].addr;
  for (std::size_t j = pos; j-- > 0;) {
    const MemWindowEntry& e = window[j];
    if (!e.is_store) continue;
    if (!e.addr_known) return {};  // Ambiguous: wait.
    if (e.addr != addr) continue;
    if (!e.data_ready) return {};  // Right store, data not yet known.
    return {true, true, e.data};
  }
  return {true, false, 0};  // Disambiguated against every preceding store.
}

MemWindowEntry MakeMemWindowEntry(const Station& st,
                                  const datapath::ResolvedArgs& args) {
  MemWindowEntry e;
  if (!st.valid) return e;
  const isa::Instruction& inst = st.inst();
  e.is_store = inst.op == isa::Opcode::kStore;
  e.is_load = inst.op == isa::Opcode::kLoad;
  if (!e.is_store && !e.is_load) return e;
  // Once the operation has been submitted its latched address is exact;
  // before that, the address is known as soon as the base register is.
  if (st.mem_submitted) {
    e.addr_known = true;
    e.addr = isa::EffectiveAddress(inst, st.arg_a);
  } else if (args.arg1.ready) {
    e.addr_known = true;
    e.addr = isa::EffectiveAddress(inst, args.arg1.value);
  }
  if (e.is_store) {
    if (st.mem_submitted) {
      e.data_ready = true;
      e.data = st.arg_b;
    } else if (args.arg2.ready) {
      e.data_ready = true;
      e.data = args.arg2.value;
    }
  }
  return e;
}

}  // namespace ultra::core
