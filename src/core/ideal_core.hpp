// Idealized conventional out-of-order superscalar baseline.
//
// A classic rename-map machine: a reorder window of config.window_size
// entries, register renaming at fetch, wake-up when producers finish,
// in-order commit, and the same memory-ordering and speculation rules as
// the Ultrascalars. It has "enough functional units to exploit the
// parallelism of the code sequence" (Section 2, discussion of Figure 3),
// so its schedule is the dataflow limit given the window and fetch
// constraints. The Ultrascalar processors are expected to reproduce its
// timing cycle for cycle -- that equivalence is the paper's functional
// claim, and our tests assert it.
//
// Deliberately implemented with a completely different mechanism (rename
// map + producer sequence numbers instead of register-file propagation) so
// that agreement with the Ultrascalar cores is evidence of correctness, not
// of shared code.
#pragma once

#include "core/processor.hpp"

namespace ultra::core {

class IdealCore final : public Processor {
 public:
  explicit IdealCore(const CoreConfig& config) : config_(config) {}

  [[nodiscard]] RunResult Run(const isa::Program& program) override;
  [[nodiscard]] std::string_view Name() const override { return "Ideal"; }
  [[nodiscard]] const CoreConfig& config() const override { return config_; }
  [[nodiscard]] ProcessorKind kind() const override {
    return ProcessorKind::kIdeal;
  }

  /// The byte-lane reference cycle loop (every DatapathEval except the
  /// packed fast path). Exposed for the differential tests.
  [[nodiscard]] RunResult RunReference(const isa::Program& program);

 private:
  CoreConfig config_;
};

}  // namespace ultra::core
