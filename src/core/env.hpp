// Strict environment-variable parsing shared by the tuning knobs
// (ULTRA_SWEEP_THREADS, ULTRA_FNSIM_CACHE_ENTRIES, ...).
//
// The former atoi/atol call sites silently accepted garbage ("8abc" -> 8)
// and silently ignored zero/negative values. ParseEnvInt parses with
// std::from_chars, requires the whole value to be consumed, enforces the
// caller's range, and warns on stderr exactly once per variable when the
// value is present but unusable -- then falls back to the caller's default
// (nullopt return).
#pragma once

#include <cstdint>
#include <optional>

namespace ultra::core {

/// Parses environment variable @p name as a base-10 integer in
/// [@p min_value, @p max_value]. Returns nullopt when the variable is
/// unset, empty, not an integer, followed by trailing junk, or out of
/// range; every unusable-but-set case prints a one-time warning naming the
/// variable and the offending value. Thread-safe; the warn-once latch is
/// per variable name.
std::optional<long long> ParseEnvInt(const char* name, long long min_value,
                                     long long max_value);

/// Test hook: forgets which variables have already warned so a test can
/// assert the warning fires. Not for production use.
void ResetEnvWarningsForTest();

}  // namespace ultra::core
