#include "core/processor.hpp"

#include <stdexcept>

#include "core/functional_sim_cache.hpp"
#include "core/hybrid_core.hpp"
#include "core/ideal_core.hpp"
#include "core/usi_core.hpp"
#include "core/usii_core.hpp"

namespace ultra::core {

std::string_view ProcessorKindName(ProcessorKind kind) {
  switch (kind) {
    case ProcessorKind::kIdeal:
      return "Ideal";
    case ProcessorKind::kUltrascalarI:
      return "UltrascalarI";
    case ProcessorKind::kUltrascalarII:
      return "UltrascalarII";
    case ProcessorKind::kHybrid:
      return "Hybrid";
  }
  return "?";
}

std::unique_ptr<Processor> MakeProcessor(ProcessorKind kind,
                                         const CoreConfig& config) {
  config.Validate(kind == ProcessorKind::kHybrid);
  switch (kind) {
    case ProcessorKind::kIdeal:
      return std::make_unique<IdealCore>(config);
    case ProcessorKind::kUltrascalarI:
      return std::make_unique<UltrascalarICore>(config);
    case ProcessorKind::kUltrascalarII:
      return std::make_unique<UltrascalarIICore>(config);
    case ProcessorKind::kHybrid:
      return std::make_unique<HybridCore>(config);
  }
  throw std::invalid_argument("unknown processor kind");
}

std::unique_ptr<memory::BranchPredictor> MakePredictor(
    const CoreConfig& config, const isa::Program& program) {
  switch (config.predictor) {
    case PredictorKind::kNotTaken:
      return std::make_unique<memory::NotTakenPredictor>();
    case PredictorKind::kBtfn:
      return std::make_unique<memory::BtfnPredictor>();
    case PredictorKind::kTwoBit:
      return std::make_unique<memory::TwoBitPredictor>();
    case PredictorKind::kOracle: {
      // The functional pre-run is shared across every processor built for
      // this program (and with the sweep runner's architectural checks)
      // instead of being recomputed per construction.
      const auto fn =
          FunctionalSimCache::Global().Get(program, config.num_regs);
      return std::make_unique<memory::OraclePredictor>(fn->outcomes_by_pc);
    }
  }
  throw std::invalid_argument("unknown predictor kind");
}

}  // namespace ultra::core
