#include "core/processor.hpp"

#include <stdexcept>

#include "core/functional_sim.hpp"
#include "core/hybrid_core.hpp"
#include "core/ideal_core.hpp"
#include "core/usi_core.hpp"
#include "core/usii_core.hpp"

namespace ultra::core {

std::string_view ProcessorKindName(ProcessorKind kind) {
  switch (kind) {
    case ProcessorKind::kIdeal:
      return "Ideal";
    case ProcessorKind::kUltrascalarI:
      return "UltrascalarI";
    case ProcessorKind::kUltrascalarII:
      return "UltrascalarII";
    case ProcessorKind::kHybrid:
      return "Hybrid";
  }
  return "?";
}

std::unique_ptr<Processor> MakeProcessor(ProcessorKind kind,
                                         const CoreConfig& config) {
  switch (kind) {
    case ProcessorKind::kIdeal:
      return std::make_unique<IdealCore>(config);
    case ProcessorKind::kUltrascalarI:
      return std::make_unique<UltrascalarICore>(config);
    case ProcessorKind::kUltrascalarII:
      return std::make_unique<UltrascalarIICore>(config);
    case ProcessorKind::kHybrid:
      return std::make_unique<HybridCore>(config);
  }
  throw std::invalid_argument("unknown processor kind");
}

std::unique_ptr<memory::BranchPredictor> MakePredictor(
    const CoreConfig& config, const isa::Program& program) {
  switch (config.predictor) {
    case PredictorKind::kNotTaken:
      return std::make_unique<memory::NotTakenPredictor>();
    case PredictorKind::kBtfn:
      return std::make_unique<memory::BtfnPredictor>();
    case PredictorKind::kTwoBit:
      return std::make_unique<memory::TwoBitPredictor>();
    case PredictorKind::kOracle: {
      FunctionalSimulator sim(config.num_regs);
      auto fn = sim.Run(program);
      return std::make_unique<memory::OraclePredictor>(
          std::move(fn.outcomes_by_pc));
    }
  }
  throw std::invalid_argument("unknown predictor kind");
}

}  // namespace ultra::core
