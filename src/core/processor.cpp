#include "core/processor.hpp"

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/functional_sim_cache.hpp"
#include "core/hybrid_core.hpp"
#include "core/ideal_core.hpp"
#include "core/usi_core.hpp"
#include "core/usii_core.hpp"

namespace ultra::core {

std::string_view ProcessorKindName(ProcessorKind kind) {
  switch (kind) {
    case ProcessorKind::kIdeal:
      return "Ideal";
    case ProcessorKind::kUltrascalarI:
      return "UltrascalarI";
    case ProcessorKind::kUltrascalarII:
      return "UltrascalarII";
    case ProcessorKind::kHybrid:
      return "Hybrid";
  }
  return "?";
}

std::unique_ptr<Processor> MakeProcessor(ProcessorKind kind,
                                         const CoreConfig& config) {
  config.Validate(kind == ProcessorKind::kHybrid);
  switch (kind) {
    case ProcessorKind::kIdeal:
      return std::make_unique<IdealCore>(config);
    case ProcessorKind::kUltrascalarI:
      return std::make_unique<UltrascalarICore>(config);
    case ProcessorKind::kUltrascalarII:
      return std::make_unique<UltrascalarIICore>(config);
    case ProcessorKind::kHybrid:
      return std::make_unique<HybridCore>(config);
  }
  throw std::invalid_argument("unknown processor kind");
}

persist::Checkpoint Processor::SaveCheckpoint(const isa::Program& program,
                                              std::uint64_t cycle) const {
  persist::CheckpointControl control;
  control.save_at = cycle;
  control.stop_after_save = true;
  std::optional<persist::Checkpoint> captured;
  control.sink = [&captured](persist::Checkpoint&& c) {
    captured = std::move(c);
  };
  CoreConfig cfg = config();
  cfg.checkpoint = &control;
  const auto scratch = MakeProcessor(kind(), cfg);
  (void)scratch->Run(program);
  if (!captured) {
    throw std::runtime_error(
        "SaveCheckpoint: run ended before cycle " + std::to_string(cycle));
  }
  return std::move(*captured);
}

RunResult Processor::RestoreCheckpoint(
    const isa::Program& program,
    const persist::Checkpoint& checkpoint) const {
  persist::CheckpointControl control;
  control.resume = &checkpoint;
  CoreConfig cfg = config();
  cfg.checkpoint = &control;
  const auto scratch = MakeProcessor(kind(), cfg);
  return scratch->Run(program);
}

std::unique_ptr<memory::BranchPredictor> MakePredictor(
    const CoreConfig& config, const isa::Program& program) {
  switch (config.predictor) {
    case PredictorKind::kNotTaken:
      return std::make_unique<memory::NotTakenPredictor>();
    case PredictorKind::kBtfn:
      return std::make_unique<memory::BtfnPredictor>();
    case PredictorKind::kTwoBit:
      return std::make_unique<memory::TwoBitPredictor>();
    case PredictorKind::kOracle: {
      // The functional pre-run is shared across every processor built for
      // this program (and with the sweep runner's architectural checks)
      // instead of being recomputed per construction.
      const auto fn =
          FunctionalSimCache::Global().Get(program, config.num_regs);
      return std::make_unique<memory::OraclePredictor>(fn->outcomes_by_pc);
    }
  }
  throw std::invalid_argument("unknown predictor kind");
}

}  // namespace ultra::core
