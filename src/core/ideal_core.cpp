#include "core/ideal_core.hpp"

#include <bit>
#include <cassert>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>

#include "core/checkpoint_util.hpp"
#include "core/exec.hpp"
#include "core/fetch.hpp"
#include "core/telemetry_hooks.hpp"
#include "datapath/bitset.hpp"
#include "datapath/scheduler.hpp"
#include "datapath/sequencing.hpp"

namespace ultra::core {

namespace {

/// A window entry: a Station plus renamed dependencies. A source is either
/// an immediately available value (captured from the committed register
/// file at rename time) or a pointer (sequence number) to the in-flight
/// producer.
struct Entry {
  Station st;
  bool dep1_inflight = false;
  std::uint64_t dep1_seq = 0;
  isa::Word val1 = 0;
  bool dep2_inflight = false;
  std::uint64_t dep2_seq = 0;
  isa::Word val2 = 0;
};

RunResult RunPackedIdeal(const CoreConfig& config_,
                         const isa::Program& program);

}  // namespace

RunResult IdealCore::Run(const isa::Program& program) {
  // kPacked always takes the word-parallel loop: telemetry, store
  // forwarding, and checkpointing are modeled inside it, so there is no
  // configuration that falls back to the reference loop (results are
  // byte-identical either way -- see docs/runtime.md).
  if (config_.datapath_eval == DatapathEval::kPacked) {
    return RunPackedIdeal(config_, program);
  }
  return RunReference(program);
}

RunResult IdealCore::RunReference(const isa::Program& program) {
  const int n = config_.window_size;
  const int L = config_.num_regs;
  memory::MemorySystem mem(config_.mem, n);
  mem.Reset(program.initial_memory());
  FetchEngine fetch(&program, config_, MakePredictor(config_, program));

  // The instruction window as a fixed ring of n entries: program positions
  // [0, count) live at ring slots (head + k) % n, so commits and refills
  // reuse storage instead of churning deque blocks.
  std::vector<Entry> window(static_cast<std::size_t>(n));
  int head = 0;
  int count = 0;
  std::vector<isa::Word> regs(static_cast<std::size_t>(L), 0);
  // rename[r]: sequence number of the youngest in-flight writer of r.
  std::vector<std::optional<std::uint64_t>> rename(
      static_cast<std::size_t>(L));
  std::uint64_t next_seq = 0;
  InflightMap inflight;
  RunResult result;
  bool done = false;

  CoreTelemetry tel(config_);

  const auto ent = [&](int k) -> Entry& {
    return window[static_cast<std::size_t>((head + k) % n)];
  };

  const auto find_entry = [&](std::uint64_t seq) -> Entry* {
    for (int k = 0; k < count; ++k) {
      if (ent(k).st.seq == seq) return &ent(k);
    }
    return nullptr;
  };

  const auto rebuild_rename = [&] {
    for (auto& r : rename) r.reset();
    for (int k = 0; k < count; ++k) {
      const Entry& e = ent(k);
      if (isa::WritesRd(e.st.inst().op)) {
        rename[e.st.inst().rd] = e.st.seq;
      }
    }
  };

  // Per-cycle scratch, hoisted so the steady-state loop never allocates.
  std::vector<std::uint64_t> finished_seqs;
  finished_seqs.reserve(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> no_store(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> no_load(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> branch_ok(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_stores_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_loads_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_confirmed(static_cast<std::size_t>(n));
  std::vector<datapath::ResolvedArgs> args_at(static_cast<std::size_t>(n));
  std::vector<MemWindowEntry> mem_window;
  std::vector<std::uint8_t> alu_requests;
  std::vector<std::uint8_t> alu_grant;
  std::vector<FetchedInstr> fetch_batch;

  CheckpointSession ckpt(config_, ProcessorKind::kIdeal, program);
  const auto save_state = [&](persist::Encoder& e) {
    // Ring position matters downstream (timing.station records the slot a
    // future allocation lands in), so head is preserved, not normalized.
    e.I32(head);
    e.I32(count);
    for (int k = 0; k < count; ++k) {
      const Entry& en = ent(k);
      SaveStation(e, en.st);
      e.Bool(en.dep1_inflight);
      e.U64(en.dep1_seq);
      e.U32(en.val1);
      e.Bool(en.dep2_inflight);
      e.U64(en.dep2_seq);
      e.U32(en.val2);
    }
    for (const isa::Word r : regs) e.U32(r);
    for (const auto& r : rename) {
      e.Bool(r.has_value());
      e.U64(r.has_value() ? *r : 0);
    }
    e.U64(next_seq);
    SaveInflight(e, inflight);
    SavePartialResult(e, result);
    fetch.SaveState(e);
    mem.SaveState(e);
    SaveTelemetrySlots(e, config_);
  };
  std::uint64_t start_cycle = 0;
  if (ckpt.resume() != nullptr) {
    persist::Decoder d(ckpt.resume()->state);
    head = d.I32();
    count = d.I32();
    if (head < 0 || head >= n || count < 0 || count > n) {
      throw persist::FormatError("ideal window geometry out of range");
    }
    for (int k = 0; k < count; ++k) {
      Entry& en = ent(k);
      RestoreStation(d, en.st);
      en.dep1_inflight = d.Bool();
      en.dep1_seq = d.U64();
      en.val1 = d.U32();
      en.dep2_inflight = d.Bool();
      en.dep2_seq = d.U64();
      en.val2 = d.U32();
    }
    for (isa::Word& r : regs) r = d.U32();
    for (auto& r : rename) {
      const bool has = d.Bool();
      const std::uint64_t seq = d.U64();
      if (has) {
        r = seq;
      } else {
        r.reset();
      }
    }
    next_seq = d.U64();
    RestoreInflight(d, inflight);
    RestorePartialResult(d, result);
    fetch.RestoreState(d);
    mem.RestoreState(d);
    RestoreTelemetrySlots(d, config_);
    if (!d.AtEnd()) {
      throw persist::FormatError("trailing checkpoint bytes");
    }
    start_cycle = ckpt.resume()->header.cycle;
  }

  for (std::uint64_t cycle = start_cycle; cycle < config_.max_cycles && !done;
       ++cycle) {
    if (ckpt.MaybeSave(cycle, save_state)) break;
    if (config_.cancel && (cycle & 1023u) == 0 &&
        config_.cancel->load(std::memory_order_relaxed)) {
      break;  // Abandoned run: halted stays false.
    }
    result.cycles = cycle + 1;
    tel.OnCycle(cycle, count);

    // --- Phase 1: snapshot end-of-last-cycle readiness (results become
    // visible to consumers one cycle after they are produced, matching the
    // Ultrascalar datapath propagation). ---
    finished_seqs.clear();
    for (int k = 0; k < count; ++k) {
      const Station& st = ent(k).st;
      if (st.finished) finished_seqs.push_back(st.seq);
      const bool is_store = st.inst().op == isa::Opcode::kStore;
      const bool is_load = st.inst().op == isa::Opcode::kLoad;
      const std::size_t ks = static_cast<std::size_t>(k);
      no_store[ks] = !is_store || st.finished;
      no_load[ks] = !is_load || st.finished;
      branch_ok[ks] = !isa::IsControlFlow(st.inst().op) || st.resolved;
    }
    const std::size_t live_size = static_cast<std::size_t>(count);
    datapath::AllPrecedingSatisfyAcyclicInto(
        std::span<const std::uint8_t>(no_store.data(), live_size),
        std::span<std::uint8_t>(prev_stores_done.data(), live_size));
    datapath::AllPrecedingSatisfyAcyclicInto(
        std::span<const std::uint8_t>(no_load.data(), live_size),
        std::span<std::uint8_t>(prev_loads_done.data(), live_size));
    datapath::AllPrecedingSatisfyAcyclicInto(
        std::span<const std::uint8_t>(branch_ok.data(), live_size),
        std::span<std::uint8_t>(prev_confirmed.data(), live_size));
    const auto was_finished = [&](std::uint64_t seq) {
      for (const std::uint64_t s : finished_seqs) {
        if (s == seq) return true;
      }
      return false;
    };

    // --- Phase 2: memory responses. ---
    mem.Tick();
    for (const auto& resp : mem.DrainCompleted()) {
      const auto it = inflight.find(resp.id);
      if (it == inflight.end()) continue;
      const MemTag tag = it->second;
      inflight.erase(it);
      if (Entry* e = find_entry(tag.tag); e != nullptr) {
        const bool entry_was_finished = e->st.finished;
        ApplyMemResponse(e->st, resp, cycle);
        tel.OnMemComplete(cycle, e->st.timing.station, e->st,
                          entry_was_finished);
      }
    }

    // --- Phase 3a: wake-up (argument resolution) in program order. ---
    const int live = count;
    std::fill(args_at.begin(), args_at.begin() + live,
              datapath::ResolvedArgs{});
    mem_window.assign(
        config_.store_forwarding ? static_cast<std::size_t>(live) : 0,
        MemWindowEntry{});
    for (int k = 0; k < live; ++k) {
      Entry& e = ent(k);
      datapath::ResolvedArgs args;
      const isa::Instruction& inst = e.st.inst();
      if (isa::ReadsRs1(inst.op)) {
        if (!e.dep1_inflight) {
          args.arg1 = {e.val1, true};
        } else if (was_finished(e.dep1_seq)) {
          const Entry* prod = find_entry(e.dep1_seq);
          assert(prod != nullptr && prod->st.result.ready);
          args.arg1 = prod->st.result;
        }
      }
      if (isa::ReadsRs2(inst.op)) {
        if (!e.dep2_inflight) {
          args.arg2 = {e.val2, true};
        } else if (was_finished(e.dep2_seq)) {
          const Entry* prod = find_entry(e.dep2_seq);
          assert(prod != nullptr && prod->st.result.ready);
          args.arg2 = prod->st.result;
        }
      }
      args_at[static_cast<std::size_t>(k)] = args;
      if (config_.store_forwarding) {
        mem_window[static_cast<std::size_t>(k)] = MakeMemWindowEntry(e.st, args);
      }
    }
    if (config_.num_alus > 0) {
      alu_requests.assign(static_cast<std::size_t>(live), 0);
      int occupied = 0;
      for (int k = 0; k < live; ++k) {
        const Station& st = ent(k).st;
        alu_requests[static_cast<std::size_t>(k)] =
            WantsAlu(st, args_at[static_cast<std::size_t>(k)]);
        if (st.issued && !st.finished && NeedsAlu(st.inst().op)) {
          ++occupied;
        }
      }
      alu_grant.resize(static_cast<std::size_t>(live));
      datapath::AluScheduler::GrantAcyclicInto(
          alu_requests, std::max(0, config_.num_alus - occupied), alu_grant);
    }

    // --- Phase 3b: execute. ---
    for (int k = 0; k < live && k < count; ++k) {
      Entry& e = ent(k);
      const std::size_t ks = static_cast<std::size_t>(k);
      StepContext ctx;
      ctx.prev_stores_done = prev_stores_done[ks] != 0;
      ctx.prev_loads_done = prev_loads_done[ks] != 0;
      ctx.committed_ok = prev_confirmed[ks] != 0;
      ctx.alu_granted = config_.num_alus == 0 || alu_grant[ks] != 0;
      ctx.forwarding_enabled = config_.store_forwarding;
      if (ctx.forwarding_enabled && e.st.inst().op == isa::Opcode::kLoad &&
          mem_window[ks].addr_known) {
        const auto decision = ResolveLoadForwarding(mem_window, ks);
        ctx.load_can_proceed = decision.can_proceed;
        ctx.load_forward = decision.forward;
        ctx.forward_value = decision.value;
      }
      const bool step_was_issued = e.st.issued;
      const bool step_was_finished = e.st.finished;
      const bool mispredicted = StepStation(
          e.st, args_at[ks], ctx, config_.latencies, mem, cycle, k, e.st.seq,
          inflight, result.stats);
      tel.OnStep(cycle, e.st.timing.station, e.st, step_was_issued,
                 step_was_finished);
      if (mispredicted) {
        ++result.stats.mispredictions;
        if (tel.trace_on() || tel.metrics_on()) {
          for (int m = k + 1; m < count; ++m) {
            tel.OnSquash(cycle, ent(m).st.timing.station, ent(m).st);
          }
        }
        result.stats.squashed_instructions +=
            static_cast<std::uint64_t>(count - (k + 1));
        count = k + 1;
        rebuild_rename();
        fetch.Redirect(e.st.actual_next_pc);
      }
    }

    // --- Phase 4: in-order commit. ---
    while (count > 0 && ent(0).st.finished) {
      Entry& e = ent(0);
      Station& st = e.st;
      st.timing.commit_cycle = cycle;
      const isa::Instruction& inst = st.inst();
      if (isa::WritesRd(inst.op)) {
        assert(st.result.ready);
        regs[inst.rd] = st.result.value;
        if (rename[inst.rd] == st.seq) rename[inst.rd].reset();
        // The producer leaves the window: convert consumers' renamed
        // dependencies into immediate values so they can still wake up.
        for (int k = 1; k < count; ++k) {
          Entry& c = ent(k);
          if (c.dep1_inflight && c.dep1_seq == st.seq) {
            c.dep1_inflight = false;
            c.val1 = st.result.value;
          }
          if (c.dep2_inflight && c.dep2_seq == st.seq) {
            c.dep2_inflight = false;
            c.val2 = st.result.value;
          }
        }
      }
      if (isa::IsControlFlow(inst.op)) {
        fetch.NotifyOutcome(st.fetched.pc, st.actual_taken);
      }
      result.timeline.push_back(st.timing);
      ++result.committed;
      tel.OnCommit(cycle, st.timing.station, st);
      const bool was_halt = inst.op == isa::Opcode::kHalt;
      head = (head + 1) % n;
      --count;
      if (was_halt) {
        done = true;
        result.halted = true;
        break;
      }
    }

    // --- Phase 5: fetch and rename. ---
    if (!done) {
      const int free = n - count;
      if (free == 0) ++result.stats.window_full_cycles;
      const int width = std::min(config_.EffectiveFetchWidth(), free);
      fetch.FetchCycle(width, fetch_batch);
      if (fetch_batch.empty() && free > 0 && count > 0 && !fetch.stalled()) {
        ++result.stats.fetch_stall_cycles;
      }
      for (const auto& f : fetch_batch) {
        Entry& e = ent(count);
        FillStation(e.st, f, next_seq++, cycle);
        e.st.timing.station = (head + count) % n;
        e.dep1_inflight = false;
        e.dep1_seq = 0;
        e.val1 = 0;
        e.dep2_inflight = false;
        e.dep2_seq = 0;
        e.val2 = 0;
        const isa::Instruction& inst = f.inst;
        if (isa::ReadsRs1(inst.op)) {
          if (rename[inst.rs1].has_value()) {
            e.dep1_inflight = true;
            e.dep1_seq = *rename[inst.rs1];
          } else {
            e.val1 = regs[inst.rs1];
          }
        }
        if (isa::ReadsRs2(inst.op)) {
          if (rename[inst.rs2].has_value()) {
            e.dep2_inflight = true;
            e.dep2_seq = *rename[inst.rs2];
          } else {
            e.val2 = regs[inst.rs2];
          }
        }
        if (isa::WritesRd(inst.op)) rename[inst.rd] = e.st.seq;
        tel.OnFetch(cycle, e.st.timing.station, e.st);
        if (e.dep1_inflight) {
          tel.OnRename(cycle, e.st.timing.station, e.st, e.dep1_seq);
        }
        if (e.dep2_inflight) {
          tel.OnRename(cycle, e.st.timing.station, e.st, e.dep2_seq);
        }
        ++count;
      }
      if (fetch.stalled() && count == 0) {
        done = true;
        result.halted = true;
      }
    }
  }

  result.regs = regs;
  result.memory = mem.store().Snapshot();
  tel.FinalizeMemory(result.stats, mem, fetch);
  return result;
}

namespace {

/// Bit-packed word-parallel twin of RunReference. Cycle-for-cycle and
/// byte-for-byte identical output (the differential tests assert this), but
/// the per-cycle cost is O(n/64) words plus work proportional to what
/// actually happens:
///  * the Figure 5 ordering conditions and their prefixes are PackedBits
///    words (64 stations per op) instead of byte loops;
///  * wake-up is event-driven through per-producer consumer lists instead
///    of an O(n) scan consulting an O(n) finished-sequence list;
///  * only stations that can act this cycle are stepped -- the must-visit
///    set is composed from the packed flags exactly mirroring
///    StepStation's no-op predicate, so skipping is provably identical;
///  * commit converts consumers through the producer's list, and memory
///    responses find their station through a seq->slot map.
/// Canonical state (window entries, rename map, fetch, memory, inflight)
/// is maintained exactly as the reference loop does, so checkpoints saved
/// from either path are interchangeable.
RunResult RunPackedIdeal(const CoreConfig& config_,
                         const isa::Program& program) {
  const int n = config_.window_size;
  const int L = config_.num_regs;
  const int num_words = datapath::PackedWordCount(n);
  memory::MemorySystem mem(config_.mem, n);
  mem.Reset(program.initial_memory());
  FetchEngine fetch(&program, config_, MakePredictor(config_, program));

  std::vector<Entry> window(static_cast<std::size_t>(n));
  int head = 0;
  int count = 0;
  std::vector<isa::Word> regs(static_cast<std::size_t>(L), 0);
  std::vector<std::optional<std::uint64_t>> rename(
      static_cast<std::size_t>(L));
  std::uint64_t next_seq = 0;
  InflightMap inflight;
  RunResult result;
  bool done = false;

  CoreTelemetry tel(config_);
  const bool fwd = config_.store_forwarding;

  // Slot of the youngest in-flight writer per register, maintained next to
  // `rename` (meaningful only while rename[r] holds a value). Lets the fill
  // path register consumers against their producer's slot without a
  // seq->slot map lookup.
  std::vector<int> rename_slot(static_cast<std::size_t>(L), -1);

  const auto ent = [&](int k) -> Entry& {
    return window[static_cast<std::size_t>((head + k) % n)];
  };
  const auto rebuild_rename = [&] {
    for (auto& r : rename) r.reset();
    for (int k = 0; k < count; ++k) {
      const Entry& e = ent(k);
      if (isa::WritesRd(e.st.inst().op)) {
        rename[e.st.inst().rd] = e.st.seq;
        rename_slot[e.st.inst().rd] = (head + k) % n;
      }
    }
  };

  // --- Packed acceleration structures (derived from the canonical state,
  // never checkpointed). All are slot-indexed; program position k lives at
  // slot (head + k) % n. ---
  datapath::PackedBits valid_b(n), finished_b(n), issued_b(n), resolved_b(n),
      store_b(n), load_b(n), cf_b(n), alu_like_b(n), needs_alu_b(n),
      mem_sub_b(n), args_ready_b(n);
  datapath::PackedBits cond(n), psd(n), pld(n), pcf(n), requests(n),
      grants(n);
  std::vector<datapath::ResolvedArgs> args_cache(static_cast<std::size_t>(n));
  // consumers[p]: (consumer slot, which arg) pairs registered at rename
  // time; entries are verified against the consumer's dep seq at use, so
  // stale registrations from squashed-and-refilled slots are harmless.
  std::vector<std::vector<std::pair<int, std::uint8_t>>> consumers(
      static_cast<std::size_t>(n));
  std::unordered_map<std::uint64_t, int> seq_slot;
  seq_slot.reserve(static_cast<std::size_t>(2 * n));
  // Stations that finished this cycle; their consumers' cached args are
  // refreshed at end of cycle (visible next cycle, like the reference
  // loop's start-of-cycle snapshot).
  std::vector<std::pair<int, std::uint64_t>> finish_events;
  finish_events.reserve(static_cast<std::size_t>(n));
  datapath::AluScheduler sched(n);
  std::vector<FetchedInstr> fetch_batch;
  // Store forwarding: slot-indexed disambiguation window, refreshed
  // event-driven (a slot's entry changes only when its station steps, its
  // memory op completes, its cached args move, or the slot turns over).
  datapath::PackedBits mw_stale(n);
  std::vector<MemWindowEntry> mem_window_slot;
  if (fwd) mem_window_slot.resize(static_cast<std::size_t>(n));

  const auto recompute_args_ready = [&](int slot, const Entry& e) {
    const isa::Instruction& inst = e.st.inst();
    const auto& args = args_cache[static_cast<std::size_t>(slot)];
    const bool r1 = !isa::ReadsRs1(inst.op) || args.arg1.ready;
    const bool r2 = !isa::ReadsRs2(inst.op) || args.arg2.ready;
    args_ready_b.SetTo(slot, r1 && r2);
  };
  const auto clear_slot_bits = [&](int slot) {
    valid_b.Clear(slot);
    finished_b.Clear(slot);
    issued_b.Clear(slot);
    resolved_b.Clear(slot);
    store_b.Clear(slot);
    load_b.Clear(slot);
    cf_b.Clear(slot);
    alu_like_b.Clear(slot);
    needs_alu_b.Clear(slot);
    mem_sub_b.Clear(slot);
    args_ready_b.Clear(slot);
    args_cache[static_cast<std::size_t>(slot)] = {};
    consumers[static_cast<std::size_t>(slot)].clear();
    mw_stale.Clear(slot);
    if (fwd) mem_window_slot[static_cast<std::size_t>(slot)] = MemWindowEntry{};
  };
  const auto sync_station_bits = [&](int slot, const Station& st) {
    issued_b.SetTo(slot, st.issued);
    finished_b.SetTo(slot, st.finished);
    resolved_b.SetTo(slot, st.resolved);
    mem_sub_b.SetTo(slot, st.mem_submitted);
    if (fwd) mw_stale.Set(slot);
  };
  // Registers a freshly filled/restored slot's classification bits and
  // seeds its cached args (immediates now; in-flight producers that have
  // already finished deliver immediately, matching the snapshot the
  // reference wake-up loop would see next cycle). @p prod1 / @p prod2 are
  // the producers' slots when the corresponding dep is in flight: the fill
  // path passes rename_slot (a fresh dep is always the youngest writer),
  // the restore path resolves arbitrary dep seqs through its own scan.
  const auto register_slot = [&](int slot, int prod1, int prod2) {
    Entry& e = window[static_cast<std::size_t>(slot)];
    const isa::Instruction& inst = e.st.inst();
    valid_b.Set(slot);
    sync_station_bits(slot, e.st);
    const bool is_load = inst.op == isa::Opcode::kLoad;
    const bool is_store = inst.op == isa::Opcode::kStore;
    load_b.SetTo(slot, is_load);
    store_b.SetTo(slot, is_store);
    cf_b.SetTo(slot, isa::IsControlFlow(inst.op));
    alu_like_b.SetTo(slot, !is_load && !is_store);
    needs_alu_b.SetTo(slot, NeedsAlu(inst.op));
    auto& args = args_cache[static_cast<std::size_t>(slot)];
    args = {};
    if (isa::ReadsRs1(inst.op)) {
      if (!e.dep1_inflight) {
        args.arg1 = {e.val1, true};
      } else {
        assert(prod1 >= 0 &&
               window[static_cast<std::size_t>(prod1)].st.seq == e.dep1_seq);
        consumers[static_cast<std::size_t>(prod1)].emplace_back(slot, 1);
        const Station& prod = window[static_cast<std::size_t>(prod1)].st;
        if (prod.finished) args.arg1 = prod.result;
      }
    }
    if (isa::ReadsRs2(inst.op)) {
      if (!e.dep2_inflight) {
        args.arg2 = {e.val2, true};
      } else {
        assert(prod2 >= 0 &&
               window[static_cast<std::size_t>(prod2)].st.seq == e.dep2_seq);
        consumers[static_cast<std::size_t>(prod2)].emplace_back(slot, 2);
        const Station& prod = window[static_cast<std::size_t>(prod2)].st;
        if (prod.finished) args.arg2 = prod.result;
      }
    }
    recompute_args_ready(slot, e);
  };

  CheckpointSession ckpt(config_, ProcessorKind::kIdeal, program);
  const auto save_state = [&](persist::Encoder& e) {
    e.I32(head);
    e.I32(count);
    for (int k = 0; k < count; ++k) {
      const Entry& en = ent(k);
      SaveStation(e, en.st);
      e.Bool(en.dep1_inflight);
      e.U64(en.dep1_seq);
      e.U32(en.val1);
      e.Bool(en.dep2_inflight);
      e.U64(en.dep2_seq);
      e.U32(en.val2);
    }
    for (const isa::Word r : regs) e.U32(r);
    for (const auto& r : rename) {
      e.Bool(r.has_value());
      e.U64(r.has_value() ? *r : 0);
    }
    e.U64(next_seq);
    SaveInflight(e, inflight);
    SavePartialResult(e, result);
    fetch.SaveState(e);
    mem.SaveState(e);
    SaveTelemetrySlots(e, config_);
  };
  std::uint64_t start_cycle = 0;
  if (ckpt.resume() != nullptr) {
    persist::Decoder d(ckpt.resume()->state);
    head = d.I32();
    count = d.I32();
    if (head < 0 || head >= n || count < 0 || count > n) {
      throw persist::FormatError("ideal window geometry out of range");
    }
    for (int k = 0; k < count; ++k) {
      Entry& en = ent(k);
      RestoreStation(d, en.st);
      en.dep1_inflight = d.Bool();
      en.dep1_seq = d.U64();
      en.val1 = d.U32();
      en.dep2_inflight = d.Bool();
      en.dep2_seq = d.U64();
      en.val2 = d.U32();
    }
    for (isa::Word& r : regs) r = d.U32();
    for (auto& r : rename) {
      const bool has = d.Bool();
      const std::uint64_t seq = d.U64();
      if (has) {
        r = seq;
      } else {
        r.reset();
      }
    }
    next_seq = d.U64();
    RestoreInflight(d, inflight);
    RestorePartialResult(d, result);
    fetch.RestoreState(d);
    mem.RestoreState(d);
    RestoreTelemetrySlots(d, config_);
    if (!d.AtEnd()) {
      throw persist::FormatError("trailing checkpoint bytes");
    }
    start_cycle = ckpt.resume()->header.cycle;
    // Rebuild the packed shadow from the canonical window. A restored dep
    // may point at any older writer (not just the youngest), so producer
    // slots are resolved by scanning the window -- restore-only cost.
    const auto slot_of_seq = [&](std::uint64_t seq) {
      for (int k = 0; k < count; ++k) {
        if (ent(k).st.seq == seq) return (head + k) % n;
      }
      return -1;
    };
    for (int k = 0; k < count; ++k) {
      const Entry& en = ent(k);
      const isa::Opcode op = en.st.inst().op;
      if (op == isa::Opcode::kLoad || op == isa::Opcode::kStore) {
        seq_slot.emplace(en.st.seq, (head + k) % n);
      }
    }
    for (int k = 0; k < count; ++k) {
      const int slot = (head + k) % n;
      Entry& en = window[static_cast<std::size_t>(slot)];
      register_slot(slot,
                    en.dep1_inflight ? slot_of_seq(en.dep1_seq) : -1,
                    en.dep2_inflight ? slot_of_seq(en.dep2_seq) : -1);
    }
    for (int r = 0; r < L; ++r) {
      if (rename[static_cast<std::size_t>(r)].has_value()) {
        rename_slot[static_cast<std::size_t>(r)] =
            slot_of_seq(*rename[static_cast<std::size_t>(r)]);
      }
    }
  }

  const std::uint64_t tail_mask = datapath::PackedTailMask(n);
  const int last_word = num_words - 1;

  for (std::uint64_t cycle = start_cycle; cycle < config_.max_cycles && !done;
       ++cycle) {
    if (ckpt.MaybeSave(cycle, save_state)) break;
    if (config_.cancel && (cycle & 1023u) == 0 &&
        config_.cancel->load(std::memory_order_relaxed)) {
      break;  // Abandoned run: halted stays false.
    }
    result.cycles = cycle + 1;
    tel.OnCycle(cycle, count);

    // --- Phase 1: the Figure 5 ordering prefixes from end-of-last-cycle
    // state. Dead slots contribute vacuously true conditions, so the
    // cyclic prefix from the head equals the reference loop's acyclic
    // prefix over live positions; the head's own lane is forced true just
    // as the acyclic prefix's position 0 is. ---
    const bool any_mem = store_b.AnySet() || load_b.AnySet();
    if (count > 0 && any_mem) {
      for (int w = 0; w < num_words; ++w) {
        cond.word(w) = ~(store_b.word(w) & ~finished_b.word(w));
      }
      cond.word(last_word) &= tail_mask;
      datapath::PackedAllPrecedingSatisfyInto(cond, head, psd);
      psd.Set(head);
      for (int w = 0; w < num_words; ++w) {
        cond.word(w) = ~(load_b.word(w) & ~finished_b.word(w));
      }
      cond.word(last_word) &= tail_mask;
      datapath::PackedAllPrecedingSatisfyInto(cond, head, pld);
      pld.Set(head);
    } else {
      psd.SetAll();
      pld.SetAll();
    }
    if (count > 0 && store_b.AnySet()) {
      // Branch confirmation only gates stores; skip the prefix otherwise.
      for (int w = 0; w < num_words; ++w) {
        cond.word(w) = ~(cf_b.word(w) & ~resolved_b.word(w));
      }
      cond.word(last_word) &= tail_mask;
      datapath::PackedAllPrecedingSatisfyInto(cond, head, pcf);
      pcf.Set(head);
    }

    // --- Phase 2: memory responses (seq->slot map instead of a window
    // scan). ---
    mem.Tick();
    for (const auto& resp : mem.DrainCompleted()) {
      const auto it = inflight.find(resp.id);
      if (it == inflight.end()) continue;
      const MemTag tag = it->second;
      inflight.erase(it);
      const auto sit = seq_slot.find(tag.tag);
      if (sit == seq_slot.end()) continue;  // Committed or squashed.
      const int slot = sit->second;
      Entry& e = window[static_cast<std::size_t>(slot)];
      assert(e.st.seq == tag.tag);
      const bool entry_was_finished = e.st.finished;
      ApplyMemResponse(e.st, resp, cycle);
      finished_b.Set(slot);
      if (fwd) mw_stale.Set(slot);
      finish_events.emplace_back(slot, e.st.seq);
      tel.OnMemComplete(cycle, e.st.timing.station, e.st, entry_was_finished);
    }

    // --- Phase 3a: refresh moved disambiguation-window entries (after
    // phase 2, so this cycle's memory completions are visible, matching
    // the reference loop's per-cycle rebuild), then ALU scheduling. ---
    if (fwd) {
      ForEachSetBit(mw_stale, [&](int slot) {
        mem_window_slot[static_cast<std::size_t>(slot)] = MakeMemWindowEntry(
            window[static_cast<std::size_t>(slot)].st,
            args_cache[static_cast<std::size_t>(slot)]);
      });
      mw_stale.ClearAll();
    }
    const bool have_grants = config_.num_alus > 0;
    if (have_grants) {
      int occupied = 0;
      for (int w = 0; w < num_words; ++w) {
        occupied += std::popcount(needs_alu_b.word(w) & issued_b.word(w) &
                                  ~finished_b.word(w));
        requests.word(w) = valid_b.word(w) & ~issued_b.word(w) &
                           ~finished_b.word(w) & needs_alu_b.word(w) &
                           args_ready_b.word(w);
      }
      sched.PackedGrantInto(requests, std::max(0, config_.num_alus - occupied),
                            head, grants);
    }

    // --- Phase 3b: execute only stations that can act, in program order.
    // The must-visit mask mirrors StepStation's no-op predicate exactly:
    // a skipped station would have returned without touching anything. ---
    if (count > 0) {
      int pos = head;
      int processed = 0;
      bool squashed = false;
      while (processed < count && !squashed) {
        const int w = pos >> 6;
        const int lo = pos & 63;
        int hi = std::min(64, n - (w << 6));
        hi = std::min(hi, lo + (count - processed));
        const std::uint64_t grant_ok =
            have_grants ? (grants.word(w) | ~needs_alu_b.word(w)) : ~0ULL;
        // With store forwarding on, a load's gate is its disambiguation
        // decision rather than the prev-stores-done prefix, so the load
        // term drops psd (an undecidable load is visited and no-ops).
        const std::uint64_t load_gate = fwd ? ~0ULL : psd.word(w);
        std::uint64_t mv =
            valid_b.word(w) & ~finished_b.word(w) &
            ((alu_like_b.word(w) &
              (issued_b.word(w) | (args_ready_b.word(w) & grant_ok))) |
             (load_b.word(w) & ~mem_sub_b.word(w) & args_ready_b.word(w) &
              load_gate) |
             (store_b.word(w) & ~mem_sub_b.word(w) & args_ready_b.word(w) &
              pld.word(w) & psd.word(w) & pcf.word(w)));
        const int width = hi - lo;
        mv &= (width == 64 ? ~0ULL : ((1ULL << width) - 1)) << lo;
        while (mv != 0) {
          const int b = std::countr_zero(mv);
          mv &= mv - 1;
          const int slot = (w << 6) + b;
          int k = slot - head;
          if (k < 0) k += n;
          Entry& e = window[static_cast<std::size_t>(slot)];
          StepContext ctx;
          ctx.prev_stores_done = psd.Test(slot);
          ctx.prev_loads_done = pld.Test(slot);
          ctx.committed_ok = !store_b.Test(slot) || pcf.Test(slot);
          ctx.alu_granted = !have_grants || grants.Test(slot);
          ctx.forwarding_enabled = fwd;
          if (fwd && load_b.Test(slot) &&
              mem_window_slot[static_cast<std::size_t>(slot)].addr_known) {
            const auto decision = ResolveLoadForwardingMapped(
                [&](std::size_t kk) -> const MemWindowEntry& {
                  return mem_window_slot[static_cast<std::size_t>(
                      (head + static_cast<int>(kk)) % n)];
                },
                static_cast<std::size_t>(k));
            ctx.load_can_proceed = decision.can_proceed;
            ctx.load_forward = decision.forward;
            ctx.forward_value = decision.value;
          }
          const bool step_was_issued = e.st.issued;
          const bool step_was_finished = e.st.finished;
          const bool mispredicted =
              StepStation(e.st, args_cache[static_cast<std::size_t>(slot)],
                          ctx, config_.latencies, mem, cycle, k, e.st.seq,
                          inflight, result.stats);
          tel.OnStep(cycle, e.st.timing.station, e.st, step_was_issued,
                     step_was_finished);
          sync_station_bits(slot, e.st);
          if (e.st.finished) finish_events.emplace_back(slot, e.st.seq);
          if (mispredicted) {
            ++result.stats.mispredictions;
            result.stats.squashed_instructions +=
                static_cast<std::uint64_t>(count - (k + 1));
            for (int m = k + 1; m < count; ++m) {
              const int s2 = (head + m) % n;
              Station& victim = window[static_cast<std::size_t>(s2)].st;
              tel.OnSquash(cycle, victim.timing.station, victim);
              seq_slot.erase(victim.seq);
              clear_slot_bits(s2);
            }
            count = k + 1;
            rebuild_rename();
            fetch.Redirect(e.st.actual_next_pc);
            squashed = true;
            break;
          }
        }
        processed += hi - lo;
        pos = (w << 6) + hi;
        if (pos >= n) pos = 0;
      }
    }

    // --- Phase 4: in-order commit; consumers convert via the producer's
    // list instead of a window scan. ---
    while (count > 0 && window[static_cast<std::size_t>(head)].st.finished) {
      Entry& e = window[static_cast<std::size_t>(head)];
      Station& st = e.st;
      st.timing.commit_cycle = cycle;
      const isa::Instruction& inst = st.inst();
      if (isa::WritesRd(inst.op)) {
        assert(st.result.ready);
        regs[inst.rd] = st.result.value;
        if (rename[inst.rd] == st.seq) rename[inst.rd].reset();
        for (const auto& [cslot, which] :
             consumers[static_cast<std::size_t>(head)]) {
          if (!valid_b.Test(cslot)) continue;
          Entry& c = window[static_cast<std::size_t>(cslot)];
          auto& cargs = args_cache[static_cast<std::size_t>(cslot)];
          if (which == 1 && c.dep1_inflight && c.dep1_seq == st.seq) {
            c.dep1_inflight = false;
            c.val1 = st.result.value;
            cargs.arg1 = {st.result.value, true};
            recompute_args_ready(cslot, c);
            if (fwd) mw_stale.Set(cslot);
          } else if (which == 2 && c.dep2_inflight && c.dep2_seq == st.seq) {
            c.dep2_inflight = false;
            c.val2 = st.result.value;
            cargs.arg2 = {st.result.value, true};
            recompute_args_ready(cslot, c);
            if (fwd) mw_stale.Set(cslot);
          }
        }
      }
      if (isa::IsControlFlow(inst.op)) {
        fetch.NotifyOutcome(st.fetched.pc, st.actual_taken);
      }
      result.timeline.push_back(st.timing);
      ++result.committed;
      tel.OnCommit(cycle, st.timing.station, st);
      const bool was_halt = inst.op == isa::Opcode::kHalt;
      seq_slot.erase(st.seq);
      clear_slot_bits(head);
      head = (head + 1) % n;
      --count;
      if (was_halt) {
        done = true;
        result.halted = true;
        break;
      }
    }

    // --- Phase 5: fetch and rename. ---
    if (!done) {
      const int free = n - count;
      if (free == 0) ++result.stats.window_full_cycles;
      const int width = std::min(config_.EffectiveFetchWidth(), free);
      fetch.FetchCycle(width, fetch_batch);
      if (fetch_batch.empty() && free > 0 && count > 0 && !fetch.stalled()) {
        ++result.stats.fetch_stall_cycles;
      }
      for (const auto& f : fetch_batch) {
        const int slot = (head + count) % n;
        Entry& e = window[static_cast<std::size_t>(slot)];
        FillStation(e.st, f, next_seq++, cycle);
        e.st.timing.station = slot;
        e.dep1_inflight = false;
        e.dep1_seq = 0;
        e.val1 = 0;
        e.dep2_inflight = false;
        e.dep2_seq = 0;
        e.val2 = 0;
        const isa::Instruction& inst = f.inst;
        // Producer slots are captured with the dep seqs (before a
        // same-register write below retargets rename): a fresh dep is
        // always the current youngest writer.
        int prod1 = -1;
        int prod2 = -1;
        if (isa::ReadsRs1(inst.op)) {
          if (rename[inst.rs1].has_value()) {
            e.dep1_inflight = true;
            e.dep1_seq = *rename[inst.rs1];
            prod1 = rename_slot[inst.rs1];
          } else {
            e.val1 = regs[inst.rs1];
          }
        }
        if (isa::ReadsRs2(inst.op)) {
          if (rename[inst.rs2].has_value()) {
            e.dep2_inflight = true;
            e.dep2_seq = *rename[inst.rs2];
            prod2 = rename_slot[inst.rs2];
          } else {
            e.val2 = regs[inst.rs2];
          }
        }
        if (isa::WritesRd(inst.op)) {
          rename[inst.rd] = e.st.seq;
          rename_slot[inst.rd] = slot;
        }
        clear_slot_bits(slot);
        // Only memory ops enter the seq->slot map (its sole steady-state
        // consumer is the memory-response path), keeping the allocator out
        // of the ALU fill path.
        if (inst.op == isa::Opcode::kLoad || inst.op == isa::Opcode::kStore) {
          seq_slot.emplace(e.st.seq, slot);
        }
        register_slot(slot, prod1, prod2);
        tel.OnFetch(cycle, e.st.timing.station, e.st);
        if (e.dep1_inflight) {
          tel.OnRename(cycle, e.st.timing.station, e.st, e.dep1_seq);
        }
        if (e.dep2_inflight) {
          tel.OnRename(cycle, e.st.timing.station, e.st, e.dep2_seq);
        }
        ++count;
      }
      if (fetch.stalled() && count == 0) {
        done = true;
        result.halted = true;
      }
    }

    // --- End of cycle: deliver this cycle's finish events to registered
    // consumers. Running after commit/fetch makes the refreshed args
    // visible exactly from the next cycle on, matching the reference
    // loop's start-of-cycle readiness snapshot, and leaves no pending
    // event state for checkpoints to carry. ---
    for (const auto& [slot, seq] : finish_events) {
      if (!valid_b.Test(slot)) continue;  // Committed/squashed this cycle.
      const Station& prod = window[static_cast<std::size_t>(slot)].st;
      if (prod.seq != seq || !prod.finished) continue;
      for (const auto& [cslot, which] :
           consumers[static_cast<std::size_t>(slot)]) {
        if (!valid_b.Test(cslot)) continue;
        Entry& c = window[static_cast<std::size_t>(cslot)];
        auto& cargs = args_cache[static_cast<std::size_t>(cslot)];
        if (which == 1 && c.dep1_inflight && c.dep1_seq == seq) {
          cargs.arg1 = prod.result;
          recompute_args_ready(cslot, c);
          if (fwd) mw_stale.Set(cslot);
        } else if (which == 2 && c.dep2_inflight && c.dep2_seq == seq) {
          cargs.arg2 = prod.result;
          recompute_args_ready(cslot, c);
          if (fwd) mw_stale.Set(cslot);
        }
      }
    }
    finish_events.clear();
  }

  result.regs = regs;
  result.memory = mem.store().Snapshot();
  tel.FinalizeMemory(result.stats, mem, fetch);
  return result;
}

}  // namespace

}  // namespace ultra::core
