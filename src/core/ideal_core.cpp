#include "core/ideal_core.hpp"

#include <cassert>
#include <deque>
#include <optional>

#include "core/exec.hpp"
#include "core/fetch.hpp"
#include "datapath/scheduler.hpp"
#include "datapath/sequencing.hpp"

namespace ultra::core {

namespace {

/// A window entry: a Station plus renamed dependencies. A source is either
/// an immediately available value (captured from the committed register
/// file at rename time) or a pointer (sequence number) to the in-flight
/// producer.
struct Entry {
  Station st;
  bool dep1_inflight = false;
  std::uint64_t dep1_seq = 0;
  isa::Word val1 = 0;
  bool dep2_inflight = false;
  std::uint64_t dep2_seq = 0;
  isa::Word val2 = 0;
};

}  // namespace

RunResult IdealCore::Run(const isa::Program& program) {
  const int n = config_.window_size;
  const int L = config_.num_regs;
  memory::MemorySystem mem(config_.mem, n);
  mem.Reset(program.initial_memory());
  FetchEngine fetch(&program, config_, MakePredictor(config_, program));

  std::deque<Entry> window;
  std::vector<isa::Word> regs(static_cast<std::size_t>(L), 0);
  // rename[r]: sequence number of the youngest in-flight writer of r.
  std::vector<std::optional<std::uint64_t>> rename(
      static_cast<std::size_t>(L));
  std::uint64_t next_seq = 0;
  InflightMap inflight;
  RunResult result;
  bool done = false;

  const auto find_entry = [&](std::uint64_t seq) -> Entry* {
    for (auto& e : window) {
      if (e.st.seq == seq) return &e;
    }
    return nullptr;
  };

  const auto rebuild_rename = [&] {
    for (auto& r : rename) r.reset();
    for (const auto& e : window) {
      if (isa::WritesRd(e.st.inst().op)) {
        rename[e.st.inst().rd] = e.st.seq;
      }
    }
  };

  for (std::uint64_t cycle = 0; cycle < config_.max_cycles && !done;
       ++cycle) {
    result.cycles = cycle + 1;

    // --- Phase 1: snapshot end-of-last-cycle readiness (results become
    // visible to consumers one cycle after they are produced, matching the
    // Ultrascalar datapath propagation). ---
    std::vector<std::uint64_t> finished_seqs;
    std::vector<std::uint8_t> no_store(window.size());
    std::vector<std::uint8_t> no_load(window.size());
    std::vector<std::uint8_t> branch_ok(window.size());
    for (std::size_t k = 0; k < window.size(); ++k) {
      const Station& st = window[k].st;
      if (st.finished) finished_seqs.push_back(st.seq);
      const bool is_store = st.inst().op == isa::Opcode::kStore;
      const bool is_load = st.inst().op == isa::Opcode::kLoad;
      no_store[k] = !is_store || st.finished;
      no_load[k] = !is_load || st.finished;
      branch_ok[k] = !isa::IsControlFlow(st.inst().op) || st.resolved;
    }
    const auto prev_stores_done = datapath::AllPrecedingSatisfyAcyclic(no_store);
    const auto prev_loads_done = datapath::AllPrecedingSatisfyAcyclic(no_load);
    const auto prev_confirmed = datapath::AllPrecedingSatisfyAcyclic(branch_ok);
    const auto was_finished = [&](std::uint64_t seq) {
      for (const std::uint64_t s : finished_seqs) {
        if (s == seq) return true;
      }
      return false;
    };

    // --- Phase 2: memory responses. ---
    mem.Tick();
    for (const auto& resp : mem.DrainCompleted()) {
      const auto it = inflight.find(resp.id);
      if (it == inflight.end()) continue;
      const MemTag tag = it->second;
      inflight.erase(it);
      if (Entry* e = find_entry(tag.tag); e != nullptr) {
        ApplyMemResponse(e->st, resp, cycle);
      }
    }

    // --- Phase 3a: wake-up (argument resolution) in program order. ---
    const std::size_t live = window.size();
    std::vector<datapath::ResolvedArgs> args_at(live);
    std::vector<MemWindowEntry> mem_window(
        config_.store_forwarding ? live : 0);
    for (std::size_t k = 0; k < live; ++k) {
      Entry& e = window[k];
      datapath::ResolvedArgs args;
      const isa::Instruction& inst = e.st.inst();
      if (isa::ReadsRs1(inst.op)) {
        if (!e.dep1_inflight) {
          args.arg1 = {e.val1, true};
        } else if (was_finished(e.dep1_seq)) {
          const Entry* prod = find_entry(e.dep1_seq);
          assert(prod != nullptr && prod->st.result.ready);
          args.arg1 = prod->st.result;
        }
      }
      if (isa::ReadsRs2(inst.op)) {
        if (!e.dep2_inflight) {
          args.arg2 = {e.val2, true};
        } else if (was_finished(e.dep2_seq)) {
          const Entry* prod = find_entry(e.dep2_seq);
          assert(prod != nullptr && prod->st.result.ready);
          args.arg2 = prod->st.result;
        }
      }
      args_at[k] = args;
      if (config_.store_forwarding) {
        mem_window[k] = MakeMemWindowEntry(e.st, args);
      }
    }
    std::vector<std::uint8_t> alu_grant;
    if (config_.num_alus > 0) {
      std::vector<std::uint8_t> requests(live, 0);
      int occupied = 0;
      for (std::size_t k = 0; k < live; ++k) {
        const Station& st = window[k].st;
        requests[k] = WantsAlu(st, args_at[k]);
        if (st.issued && !st.finished && NeedsAlu(st.inst().op)) {
          ++occupied;
        }
      }
      alu_grant = datapath::AluScheduler::GrantAcyclic(
          requests, std::max(0, config_.num_alus - occupied));
    }

    // --- Phase 3b: execute. ---
    for (std::size_t k = 0; k < live && k < window.size(); ++k) {
      Entry& e = window[k];
      StepContext ctx;
      ctx.prev_stores_done = prev_stores_done[k] != 0;
      ctx.prev_loads_done = prev_loads_done[k] != 0;
      ctx.committed_ok = prev_confirmed[k] != 0;
      ctx.alu_granted = config_.num_alus == 0 || alu_grant[k] != 0;
      ctx.forwarding_enabled = config_.store_forwarding;
      if (ctx.forwarding_enabled && e.st.inst().op == isa::Opcode::kLoad &&
          mem_window[k].addr_known) {
        const auto decision = ResolveLoadForwarding(mem_window, k);
        ctx.load_can_proceed = decision.can_proceed;
        ctx.load_forward = decision.forward;
        ctx.forward_value = decision.value;
      }
      const bool mispredicted = StepStation(
          e.st, args_at[k], ctx, config_.latencies, mem, cycle,
          static_cast<int>(k), e.st.seq, inflight, result.stats);
      if (mispredicted) {
        ++result.stats.mispredictions;
        while (window.size() > k + 1) {
          ++result.stats.squashed_instructions;
          window.pop_back();
        }
        rebuild_rename();
        fetch.Redirect(e.st.actual_next_pc);
      }
    }

    // --- Phase 4: in-order commit. ---
    while (!window.empty() && window.front().st.finished) {
      Entry& e = window.front();
      Station& st = e.st;
      st.timing.commit_cycle = cycle;
      const isa::Instruction& inst = st.inst();
      if (isa::WritesRd(inst.op)) {
        assert(st.result.ready);
        regs[inst.rd] = st.result.value;
        if (rename[inst.rd] == st.seq) rename[inst.rd].reset();
        // The producer leaves the window: convert consumers' renamed
        // dependencies into immediate values so they can still wake up.
        for (std::size_t k = 1; k < window.size(); ++k) {
          Entry& c = window[k];
          if (c.dep1_inflight && c.dep1_seq == st.seq) {
            c.dep1_inflight = false;
            c.val1 = st.result.value;
          }
          if (c.dep2_inflight && c.dep2_seq == st.seq) {
            c.dep2_inflight = false;
            c.val2 = st.result.value;
          }
        }
      }
      if (isa::IsControlFlow(inst.op)) {
        fetch.NotifyOutcome(st.fetched.pc, st.actual_taken);
      }
      result.timeline.push_back(st.timing);
      ++result.committed;
      const bool was_halt = inst.op == isa::Opcode::kHalt;
      window.pop_front();
      if (was_halt) {
        done = true;
        result.halted = true;
        break;
      }
    }

    // --- Phase 5: fetch and rename. ---
    if (!done) {
      const int free = n - static_cast<int>(window.size());
      if (free == 0) ++result.stats.window_full_cycles;
      const int width = std::min(config_.EffectiveFetchWidth(), free);
      const auto batch = fetch.FetchCycle(width);
      if (batch.empty() && free > 0 && !window.empty() && !fetch.stalled()) {
        ++result.stats.fetch_stall_cycles;
      }
      for (const auto& f : batch) {
        Entry e;
        FillStation(e.st, f, next_seq++, cycle);
        const isa::Instruction& inst = f.inst;
        if (isa::ReadsRs1(inst.op)) {
          if (rename[inst.rs1].has_value()) {
            e.dep1_inflight = true;
            e.dep1_seq = *rename[inst.rs1];
          } else {
            e.val1 = regs[inst.rs1];
          }
        }
        if (isa::ReadsRs2(inst.op)) {
          if (rename[inst.rs2].has_value()) {
            e.dep2_inflight = true;
            e.dep2_seq = *rename[inst.rs2];
          } else {
            e.val2 = regs[inst.rs2];
          }
        }
        if (isa::WritesRd(inst.op)) rename[inst.rd] = e.st.seq;
        window.push_back(std::move(e));
      }
      if (fetch.stalled() && window.empty()) {
        done = true;
        result.halted = true;
      }
    }
  }

  result.regs = regs;
  result.memory = mem.store().Snapshot();
  return result;
}

}  // namespace ultra::core
