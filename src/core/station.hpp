// Execution-station state shared by the cycle-level processor models.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/fetch.hpp"
#include "datapath/reg_binding.hpp"

namespace ultra::core {

/// One execution station (Figure 2): an instruction slot with its own ALU,
/// argument latches, and progress flags. The register-file/arg values are
/// supplied each cycle by the register datapath.
struct Station {
  bool valid = false;
  std::uint64_t seq = 0;  // Dynamic program-order sequence number.
  FetchedInstr fetched;

  // Execution progress.
  bool issued = false;
  bool finished = false;
  int busy_remaining = 0;
  isa::Word arg_a = 0;  // Latched at issue.
  isa::Word arg_b = 0;
  datapath::RegBinding result;  // Ready once the ALU/memory has produced it.

  // Control transfers.
  bool resolved = false;
  bool actual_taken = false;
  std::size_t actual_next_pc = 0;

  // Memory operations.
  bool mem_submitted = false;
  bool mem_done = false;
  std::uint64_t mem_id = 0;

  // Squash filtering for in-flight memory responses.
  std::uint64_t generation = 0;

  InstrTiming timing;

  [[nodiscard]] const isa::Instruction& inst() const { return fetched.inst; }

  /// Clears the slot for reuse, keeping the generation counter (which must
  /// survive so stale memory responses are dropped).
  void Clear() {
    const std::uint64_t gen = generation;
    *this = Station{};
    generation = gen;
  }
};

/// Resets a station for a newly fetched instruction.
inline void FillStation(Station& st, const FetchedInstr& f, std::uint64_t seq,
                        std::uint64_t fetch_cycle) {
  st.Clear();
  st.valid = true;
  st.seq = seq;
  st.fetched = f;
  st.timing.seq = seq;
  st.timing.pc = f.pc;
  st.timing.inst = f.inst;
  st.timing.fetch_cycle = fetch_cycle;
}

}  // namespace ultra::core
