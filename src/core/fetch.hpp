// Speculative instruction fetch along the predicted path.
//
// Shared by every processor model. Supplies up to fetch-width instructions
// per cycle; how many predicted-taken control transfers a single cycle can
// cross depends on the FetchMode (ideal / basic-block / trace cache, the
// latter following the paper's pointer to trace caches [20, 15]).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "memory/branch_predictor.hpp"
#include "memory/hierarchy.hpp"
#include "memory/trace_cache.hpp"

namespace ultra::core {

struct FetchedInstr {
  std::size_t pc = 0;
  isa::Instruction inst;
  bool is_control = false;
  bool predicted_taken = false;
  std::size_t predicted_next_pc = 0;
};

struct FetchStats {
  std::uint64_t fetched = 0;
  std::uint64_t redirects = 0;
  std::uint64_t icache_stall_cycles = 0;  // Cycles fetch sat out on a miss.
};

class FetchEngine {
 public:
  FetchEngine(const isa::Program* program, const CoreConfig& config,
              std::unique_ptr<memory::BranchPredictor> predictor);

  /// Restarts fetch at @p pc, discarding any buffered wrong-path work.
  void Redirect(std::size_t pc);

  /// Delivers the instructions fetched this cycle (at most @p max_count).
  std::vector<FetchedInstr> FetchCycle(int max_count);

  /// Same, into a caller-owned buffer (cleared first). Allocation-free in
  /// steady state once @p out has warmed up to the fetch width.
  void FetchCycle(int max_count, std::vector<FetchedInstr>& out);

  /// Reports a resolved control-flow outcome in commit order (predictor
  /// training).
  void NotifyOutcome(std::size_t pc, bool taken);

  /// True when fetch has run past a halt or off the end of the program and
  /// is waiting for a redirect.
  [[nodiscard]] bool stalled() const {
    return stalled_ && head_ == pending_.size();
  }

  [[nodiscard]] const FetchStats& stats() const { return stats_; }
  [[nodiscard]] const memory::TraceCacheStats* trace_cache_stats() const {
    return trace_cache_ ? &trace_cache_->stats() : nullptr;
  }
  /// L1I hit/miss telemetry (null when the icache is disabled).
  [[nodiscard]] const memory::CacheLevelStats* icache_stats() const {
    return icache_ ? &icache_->stats() : nullptr;
  }

  /// Checkpoint support: fetch cursor, undelivered pending instructions,
  /// stats, mutable predictor state, and the trace cache. Restore requires
  /// an engine built for the same program/config.
  void SaveState(persist::Encoder& e) const;
  void RestoreState(persist::Decoder& d);

 private:
  const isa::Program* program_;
  CoreConfig config_;
  std::unique_ptr<memory::BranchPredictor> predictor_;
  std::unique_ptr<memory::TraceCache> trace_cache_;
  // Imperfect L1 instruction cache (mem.hierarchy.l1i). A miss freezes
  // fetch for the miss latency; icache_stall_ counts the remaining frozen
  // cycles and is cleared by Redirect (the squash refetches anyway).
  std::unique_ptr<memory::CacheLevelModel> icache_;
  int icache_stall_ = 0;

  std::size_t next_pc_ = 0;
  bool stalled_ = false;
  // Fetched but not yet delivered: a vector ring ([head_, size) live) so
  // steady-state fetch reuses capacity instead of churning deque blocks.
  std::vector<FetchedInstr> pending_;
  std::size_t head_ = 0;
  FetchStats stats_;

  /// Extends pending_ by one instruction along the predicted path.
  bool GenerateOne();
  /// Ensures pending_ holds at least @p count undelivered instructions (or
  /// fetch is stalled). Compacts the consumed prefix first.
  void FillPending(std::size_t count);
};

}  // namespace ultra::core
