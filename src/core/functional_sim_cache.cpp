#include "core/functional_sim_cache.hpp"

#include <algorithm>
#include <cstdlib>

#include "isa/instruction.hpp"

namespace ultra::core {

namespace {

/// FNV-1a over the key material; collisions are resolved by exact
/// comparison in the entry list, so the hash only needs to spread.
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ull;
}

std::uint64_t HashKey(const std::vector<std::uint64_t>& code,
                      const std::vector<std::pair<isa::Word, isa::Word>>& mem,
                      int num_regs, std::uint64_t max_steps) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint64_t w : code) h = Mix(h, w);
  for (const auto& [addr, value] : mem) {
    h = Mix(h, addr);
    h = Mix(h, value);
  }
  h = Mix(h, static_cast<std::uint64_t>(num_regs));
  h = Mix(h, max_steps);
  return h;
}

std::size_t MaxEntriesFromEnv() {
  if (const char* env = std::getenv("ULTRA_FNSIM_CACHE_ENTRIES")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return FunctionalSimCache::kDefaultMaxEntries;
}

}  // namespace

FunctionalSimCache::FunctionalSimCache() : max_entries_(MaxEntriesFromEnv()) {}

FunctionalSimCache& FunctionalSimCache::Global() {
  static FunctionalSimCache cache;
  return cache;
}

std::shared_ptr<const FunctionalResult> FunctionalSimCache::Get(
    const isa::Program& program, int num_regs, std::uint64_t max_steps) {
  std::vector<std::uint64_t> code;
  code.reserve(program.size());
  for (const auto& inst : program.code()) code.push_back(isa::Encode(inst));
  std::vector<std::pair<isa::Word, isa::Word>> mem(
      program.initial_memory().begin(), program.initial_memory().end());
  const std::uint64_t hash = HashKey(code, mem, num_regs, max_steps);

  const auto matches = [&](const Entry& e) {
    return e.num_regs == num_regs && e.max_steps == max_steps &&
           e.encoded_code == code && e.initial_memory == mem;
  };

  // Looks up the entry under mu_; a hit moves it to the MRU position.
  const auto find_locked = [&]() -> std::shared_ptr<const FunctionalResult> {
    const auto it = index_.find(hash);
    if (it == index_.end()) return nullptr;
    for (const LruList::iterator entry_it : it->second) {
      if (matches(*entry_it)) {
        lru_.splice(lru_.begin(), lru_, entry_it);
        ++stats_.hits;
        return entry_it->result;
      }
    }
    return nullptr;
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto found = find_locked()) return found;
  }

  // Miss: simulate outside the lock (runs can be long; workers must not
  // serialize on each other's unrelated programs).
  FunctionalSimulator sim(num_regs);
  auto result =
      std::make_shared<const FunctionalResult>(sim.Run(program, max_steps));

  std::lock_guard<std::mutex> lock(mu_);
  if (auto found = find_locked()) return found;  // Lost a race; adopt.
  ++stats_.misses;
  lru_.push_front(Entry{std::move(code), std::move(mem), num_regs, max_steps,
                        hash, result});
  index_[hash].push_back(lru_.begin());
  EvictLocked();
  return result;
}

void FunctionalSimCache::EvictLocked() {
  while (lru_.size() > max_entries_) {
    const LruList::iterator victim = std::prev(lru_.end());
    const auto bucket = index_.find(victim->hash);
    auto& slots = bucket->second;
    slots.erase(std::find(slots.begin(), slots.end(), victim));
    if (slots.empty()) index_.erase(bucket);
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

void FunctionalSimCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

void FunctionalSimCache::SetMaxEntries(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = std::max<std::size_t>(1, max_entries);
  EvictLocked();
}

std::size_t FunctionalSimCache::max_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_entries_;
}

std::size_t FunctionalSimCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

FunctionalSimCache::Stats FunctionalSimCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ultra::core
