#include "core/functional_sim_cache.hpp"

#include "isa/instruction.hpp"

namespace ultra::core {

namespace {

/// FNV-1a over the key material; collisions are resolved by exact
/// comparison in the entry list, so the hash only needs to spread.
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ull;
}

std::uint64_t HashKey(const std::vector<std::uint64_t>& code,
                      const std::vector<std::pair<isa::Word, isa::Word>>& mem,
                      int num_regs, std::uint64_t max_steps) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint64_t w : code) h = Mix(h, w);
  for (const auto& [addr, value] : mem) {
    h = Mix(h, addr);
    h = Mix(h, value);
  }
  h = Mix(h, static_cast<std::uint64_t>(num_regs));
  h = Mix(h, max_steps);
  return h;
}

}  // namespace

FunctionalSimCache& FunctionalSimCache::Global() {
  static FunctionalSimCache cache;
  return cache;
}

std::shared_ptr<const FunctionalResult> FunctionalSimCache::Get(
    const isa::Program& program, int num_regs, std::uint64_t max_steps) {
  std::vector<std::uint64_t> code;
  code.reserve(program.size());
  for (const auto& inst : program.code()) code.push_back(isa::Encode(inst));
  std::vector<std::pair<isa::Word, isa::Word>> mem(
      program.initial_memory().begin(), program.initial_memory().end());
  const std::uint64_t hash = HashKey(code, mem, num_regs, max_steps);

  const auto matches = [&](const Entry& e) {
    return e.num_regs == num_regs && e.max_steps == max_steps &&
           e.encoded_code == code && e.initial_memory == mem;
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = entries_.find(hash); it != entries_.end()) {
      for (const Entry& e : it->second) {
        if (matches(e)) {
          ++stats_.hits;
          return e.result;
        }
      }
    }
  }

  // Miss: simulate outside the lock (runs can be long; workers must not
  // serialize on each other's unrelated programs).
  FunctionalSimulator sim(num_regs);
  auto result =
      std::make_shared<const FunctionalResult>(sim.Run(program, max_steps));

  std::lock_guard<std::mutex> lock(mu_);
  auto& bucket = entries_[hash];
  for (const Entry& e : bucket) {
    if (matches(e)) {  // Lost a race; adopt the canonical entry.
      ++stats_.hits;
      return e.result;
    }
  }
  ++stats_.misses;
  bucket.push_back(Entry{std::move(code), std::move(mem), num_regs,
                         max_steps, result});
  return result;
}

void FunctionalSimCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

FunctionalSimCache::Stats FunctionalSimCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ultra::core
