#include "core/functional_sim_cache.hpp"

#include <algorithm>

#include "core/env.hpp"
#include "isa/instruction.hpp"

namespace ultra::core {

namespace {

/// FNV-1a over the key material; collisions are resolved by exact
/// comparison in the entry list, so the hash only needs to spread.
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ull;
}

std::uint64_t HashKey(const std::vector<std::uint64_t>& code,
                      const std::vector<std::pair<isa::Word, isa::Word>>& mem,
                      int num_regs, std::uint64_t max_steps) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint64_t w : code) h = Mix(h, w);
  for (const auto& [addr, value] : mem) {
    h = Mix(h, addr);
    h = Mix(h, value);
  }
  h = Mix(h, static_cast<std::uint64_t>(num_regs));
  h = Mix(h, max_steps);
  return h;
}

std::size_t MaxEntriesFromEnv() {
  if (const auto n = ParseEnvInt("ULTRA_FNSIM_CACHE_ENTRIES", 1,
                                 1'000'000'000)) {
    return static_cast<std::size_t>(*n);
  }
  return FunctionalSimCache::kDefaultMaxEntries;
}

}  // namespace

FunctionalSimCache::FunctionalSimCache() : max_entries_(MaxEntriesFromEnv()) {}

FunctionalSimCache& FunctionalSimCache::Global() {
  static FunctionalSimCache cache;
  return cache;
}

std::shared_ptr<const FunctionalResult> FunctionalSimCache::Get(
    const isa::Program& program, int num_regs, std::uint64_t max_steps) {
  std::vector<std::uint64_t> code;
  code.reserve(program.size());
  for (const auto& inst : program.code()) code.push_back(isa::Encode(inst));
  std::vector<std::pair<isa::Word, isa::Word>> mem(
      program.initial_memory().begin(), program.initial_memory().end());
  const std::uint64_t hash = HashKey(code, mem, num_regs, max_steps);

  const auto matches = [&](const Entry& e) {
    return e.num_regs == num_regs && e.max_steps == max_steps &&
           e.encoded_code == code && e.initial_memory == mem;
  };

  // Looks up the entry under mu_; a hit moves it to the MRU position.
  const auto find_locked = [&]() -> std::shared_ptr<const FunctionalResult> {
    const auto it = index_.find(hash);
    if (it == index_.end()) return nullptr;
    for (const LruList::iterator entry_it : it->second) {
      if (matches(*entry_it)) {
        lru_.splice(lru_.begin(), lru_, entry_it);
        ++stats_.hits;
        return entry_it->result;
      }
    }
    return nullptr;
  };

  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (auto found = find_locked()) return found;
    // Coalesce concurrent misses: if another thread is already simulating
    // this exact key, wait for it instead of duplicating the run.
    const auto pending = inflight_.find(hash);
    if (pending != inflight_.end()) {
      for (const std::shared_ptr<InFlight>& f : pending->second) {
        if (f->num_regs == num_regs && f->max_steps == max_steps &&
            f->encoded_code == code && f->initial_memory == mem) {
          ++stats_.coalesced;
          std::shared_ptr<InFlight> waiting = f;
          waiting->done.wait(lock, [&] { return waiting->ready; });
          if (waiting->result) return waiting->result;
          // The winner's simulation threw; retry from scratch.
          lock.unlock();
          return Get(program, num_regs, max_steps);
        }
      }
    }
    flight = std::make_shared<InFlight>();
    flight->encoded_code = code;
    flight->initial_memory = mem;
    flight->num_regs = num_regs;
    flight->max_steps = max_steps;
    inflight_[hash].push_back(flight);
  }

  // Miss: simulate outside the lock (runs can be long; workers must not
  // serialize on each other's unrelated programs).
  std::shared_ptr<const FunctionalResult> result;
  try {
    result = std::make_shared<const FunctionalResult>(
        FunctionalSimulator(num_regs).Run(program, max_steps));
  } catch (...) {
    // Wake the waiters with no result (they retry) and unindex the slot,
    // or they would block forever on a run that never finishes.
    std::lock_guard<std::mutex> lock(mu_);
    flight->ready = true;
    flight->done.notify_all();
    auto& slots = inflight_[hash];
    slots.erase(std::find(slots.begin(), slots.end(), flight));
    if (slots.empty()) inflight_.erase(hash);
    throw;
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  lru_.push_front(Entry{std::move(code), std::move(mem), num_regs, max_steps,
                        hash, result});
  index_[hash].push_back(lru_.begin());
  EvictLocked();
  // Release the waiters, then unindex the in-flight slot (they hold their
  // own shared_ptr, so erasing the map entry is safe).
  flight->ready = true;
  flight->result = result;
  flight->done.notify_all();
  auto& slots = inflight_[hash];
  slots.erase(std::find(slots.begin(), slots.end(), flight));
  if (slots.empty()) inflight_.erase(hash);
  return result;
}

void FunctionalSimCache::EvictLocked() {
  while (lru_.size() > max_entries_) {
    const LruList::iterator victim = std::prev(lru_.end());
    const auto bucket = index_.find(victim->hash);
    auto& slots = bucket->second;
    slots.erase(std::find(slots.begin(), slots.end(), victim));
    if (slots.empty()) index_.erase(bucket);
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

void FunctionalSimCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

void FunctionalSimCache::SetMaxEntries(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = std::max<std::size_t>(1, max_entries);
  EvictLocked();
}

std::size_t FunctionalSimCache::max_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_entries_;
}

std::size_t FunctionalSimCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

FunctionalSimCache::Stats FunctionalSimCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ultra::core
