// Umbrella header for the processor-core library.
#pragma once

#include "core/config.hpp"          // IWYU pragma: export
#include "core/exec.hpp"            // IWYU pragma: export
#include "core/fetch.hpp"           // IWYU pragma: export
#include "core/functional_sim.hpp"        // IWYU pragma: export
#include "core/functional_sim_cache.hpp"  // IWYU pragma: export
#include "core/hybrid_core.hpp"     // IWYU pragma: export
#include "core/ideal_core.hpp"      // IWYU pragma: export
#include "core/processor.hpp"       // IWYU pragma: export
#include "core/station.hpp"         // IWYU pragma: export
#include "core/usi_core.hpp"        // IWYU pragma: export
#include "core/usii_core.hpp"       // IWYU pragma: export
