#include "core/functional_sim.hpp"

namespace ultra::core {

FunctionalResult FunctionalSimulator::Run(const isa::Program& program,
                                          std::uint64_t max_steps) const {
  FunctionalResult out;
  out.regs.assign(static_cast<std::size_t>(num_regs_), 0);
  out.memory.Load(program.initial_memory());
  out.outcomes_by_pc.assign(program.size(), {});

  std::size_t pc = 0;
  while (out.instructions < max_steps) {
    if (pc >= program.size()) break;  // Fell off the end: treat as halt.
    const isa::Instruction& inst = program.at(pc);
    out.trace.push_back(pc);
    ++out.instructions;

    const isa::Word a = isa::ReadsRs1(inst.op) ? out.regs[inst.rs1] : 0;
    const isa::Word b = isa::ReadsRs2(inst.op) ? out.regs[inst.rs2] : 0;

    std::size_t next_pc = pc + 1;
    switch (isa::ClassOf(inst.op)) {
      case isa::OpClass::kNop:
        break;
      case isa::OpClass::kHalt:
        out.halted = true;
        return out;
      case isa::OpClass::kIntSimple:
      case isa::OpClass::kIntMul:
      case isa::OpClass::kIntDiv:
        out.regs[inst.rd] = isa::AluResult(inst, a, b);
        break;
      case isa::OpClass::kLoad:
        out.regs[inst.rd] =
            out.memory.ReadWord(isa::EffectiveAddress(inst, a));
        break;
      case isa::OpClass::kStore:
        out.memory.WriteWord(isa::EffectiveAddress(inst, a), b);
        break;
      case isa::OpClass::kBranch: {
        const bool taken = isa::BranchTaken(inst, a, b);
        out.outcomes_by_pc[pc].push_back(taken ? 1 : 0);
        if (taken) next_pc = static_cast<std::size_t>(inst.imm);
        break;
      }
      case isa::OpClass::kJump: {
        out.outcomes_by_pc[pc].push_back(1);
        if (inst.op == isa::Opcode::kJal) {
          out.regs[inst.rd] = static_cast<isa::Word>(pc + 1);
        }
        next_pc = static_cast<std::size_t>(inst.imm);
        break;
      }
    }
    pc = next_pc;
  }
  return out;
}

}  // namespace ultra::core
