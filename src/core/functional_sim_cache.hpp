// Process-wide, thread-safe, bounded LRU cache of functional-simulation
// results.
//
// Several consumers need the functional pre-run of a program: the oracle
// branch predictor (MakePredictor used to re-run the simulation for every
// processor it built), the runtime::SweepRunner's expected-architectural-
// state checks, and the cross-core equivalence tests. A sweep that runs the
// same program on four cores under an oracle predictor would otherwise pay
// for the identical functional run four times per design point. The cache
// keys on program *content* (encoded instructions plus the initial memory
// image) and the register count, so structurally identical programs share
// one entry regardless of object identity.
//
// The cache is bounded: at most max_entries() results are retained, evicting
// the least-recently-used entry first, so a long-lived process sweeping many
// generated workloads cannot grow the cache without limit. The bound comes
// from the ULTRA_FNSIM_CACHE_ENTRIES environment variable when set to a
// positive integer, else kDefaultMaxEntries. Evicted results stay alive for
// as long as callers hold the returned shared_ptr.
//
// Thread safety: Get() may be called concurrently from sweep worker
// threads. Misses are computed outside the lock, and concurrent misses on
// the same key are coalesced: the first caller simulates, later callers
// block on the in-flight run and adopt its result instead of duplicating
// the work. Callers always observe one canonical result object.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/functional_sim.hpp"
#include "isa/program.hpp"

namespace ultra::core {

class FunctionalSimCache {
 public:
  /// Bound used when ULTRA_FNSIM_CACHE_ENTRIES is unset or invalid.
  static constexpr std::size_t kDefaultMaxEntries = 256;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Get() calls that found the same key already being simulated by
    /// another thread and adopted its result instead of re-running.
    std::uint64_t coalesced = 0;
  };

  FunctionalSimCache();

  /// The shared process-wide instance (used by MakePredictor and the sweep
  /// runner). Separate instances are only useful for isolation in tests.
  static FunctionalSimCache& Global();

  /// Returns the functional result for @p program under @p num_regs
  /// logical registers, running the simulation only on the first request.
  /// @p max_steps participates in the key: a truncated run is not
  /// interchangeable with a complete one. The returned entry becomes the
  /// most recently used.
  std::shared_ptr<const FunctionalResult> Get(
      const isa::Program& program, int num_regs,
      std::uint64_t max_steps = 10'000'000);

  /// Drops every entry (tests; long-lived processes changing workloads).
  void Clear();

  /// Changes the retention bound (clamped to >= 1), evicting LRU entries
  /// immediately if the cache is over the new bound. Tests only; the
  /// process-wide instance reads ULTRA_FNSIM_CACHE_ENTRIES at construction.
  void SetMaxEntries(std::size_t max_entries);

  [[nodiscard]] std::size_t max_entries() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    // Full key material, compared on hash hits to rule out collisions.
    std::vector<std::uint64_t> encoded_code;
    std::vector<std::pair<isa::Word, isa::Word>> initial_memory;
    int num_regs = 0;
    std::uint64_t max_steps = 0;
    std::uint64_t hash = 0;  // Bucket key, so eviction can unindex itself.
    std::shared_ptr<const FunctionalResult> result;
  };
  using LruList = std::list<Entry>;

  /// A simulation in progress: later requesters of the same key wait on
  /// done instead of re-running it. Heap-allocated and shared so waiters
  /// survive the winner erasing the inflight_ slot.
  struct InFlight {
    std::vector<std::uint64_t> encoded_code;
    std::vector<std::pair<isa::Word, isa::Word>> initial_memory;
    int num_regs = 0;
    std::uint64_t max_steps = 0;
    std::condition_variable done;
    bool ready = false;  // Guarded by mu_.
    std::shared_ptr<const FunctionalResult> result;
  };

  /// Drops LRU entries until size() <= max_entries_. Caller holds mu_.
  void EvictLocked();

  mutable std::mutex mu_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<std::uint64_t, std::vector<LruList::iterator>> index_;
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<InFlight>>>
      inflight_;
  std::size_t max_entries_ = kDefaultMaxEntries;
  Stats stats_;
};

}  // namespace ultra::core
