// Process-wide, thread-safe cache of functional-simulation results.
//
// Several consumers need the functional pre-run of a program: the oracle
// branch predictor (MakePredictor used to re-run the simulation for every
// processor it built), the runtime::SweepRunner's expected-architectural-
// state checks, and the cross-core equivalence tests. A sweep that runs the
// same program on four cores under an oracle predictor would otherwise pay
// for the identical functional run four times per design point. The cache
// keys on program *content* (encoded instructions plus the initial memory
// image) and the register count, so structurally identical programs share
// one entry regardless of object identity.
//
// Thread safety: Get() may be called concurrently from sweep worker
// threads. Misses are computed outside the lock; a losing racer adopts the
// winner's entry, so callers always observe one canonical result object.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/functional_sim.hpp"
#include "isa/program.hpp"

namespace ultra::core {

class FunctionalSimCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// The shared process-wide instance (used by MakePredictor and the sweep
  /// runner). Separate instances are only useful for isolation in tests.
  static FunctionalSimCache& Global();

  /// Returns the functional result for @p program under @p num_regs
  /// logical registers, running the simulation only on the first request.
  /// @p max_steps participates in the key: a truncated run is not
  /// interchangeable with a complete one.
  std::shared_ptr<const FunctionalResult> Get(
      const isa::Program& program, int num_regs,
      std::uint64_t max_steps = 10'000'000);

  /// Drops every entry (tests; long-lived processes changing workloads).
  void Clear();

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    // Full key material, compared on hash hits to rule out collisions.
    std::vector<std::uint64_t> encoded_code;
    std::vector<std::pair<isa::Word, isa::Word>> initial_memory;
    int num_regs = 0;
    std::uint64_t max_steps = 0;
    std::shared_ptr<const FunctionalResult> result;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  Stats stats_;
};

}  // namespace ultra::core
