#include "core/hybrid_core.hpp"

#include <cassert>

#include <bit>

#include "core/checkpoint_util.hpp"
#include "core/exec.hpp"
#include "core/fetch.hpp"
#include "core/telemetry_hooks.hpp"
#include "datapath/bitset.hpp"
#include "datapath/datapath.hpp"
#include "datapath/packed_resolve.hpp"
#include "datapath/scheduler.hpp"
#include "datapath/sequencing.hpp"
#include "fault/fault.hpp"

namespace ultra::core {

RunResult HybridCore::Run(const isa::Program& program) {
  const int C = config_.cluster_size;
  const int K = std::max(1, config_.window_size / C);
  const int n = K * C;  // Effective window (round down to whole clusters).
  const int L = config_.num_regs;
  datapath::HybridDatapath dp(n, L, C);
  memory::MemorySystem mem(config_.mem, n);
  mem.Reset(program.initial_memory());
  FetchEngine fetch(&program, config_, MakePredictor(config_, program));

  // Stations are stored cluster-major in absolute ring positions; program
  // position p (counted from the head cluster's slot 0) maps to station
  // StationIndex(p).
  std::vector<Station> stations(static_cast<std::size_t>(n));
  std::vector<datapath::RegBinding> committed(static_cast<std::size_t>(L));
  for (auto& b : committed) b.ready = true;

  int head_cluster = 0;
  int tail = 0;        // Program positions [0, tail) hold instructions.
  int commit_ptr = 0;  // Positions [0, commit_ptr) are committed.
  std::uint64_t next_seq = 0;
  InflightMap inflight;
  RunResult result;
  bool done = false;

  const auto station_index = [&](int pos) {
    const int cluster = (head_cluster + pos / C) % K;
    return cluster * C + pos % C;
  };

  // Checked mode runs the incremental machinery plus the cross-validation
  // below, so everything keyed on `incremental` applies to it too.
  const bool incremental =
      config_.datapath_eval != DatapathEval::kFullRecompute;
  const bool checked = config_.datapath_eval == DatapathEval::kChecked;
  // Word-parallel packed mode: sequencing flags, acyclic prefixes, ALU
  // grants, and the execute phase's visit set evaluate 64 program
  // positions per word op (the packed lanes are position-indexed, not
  // station-indexed). kPacked always runs the packed cycle loop; the
  // `fast` tier additionally replaces the per-cycle request rebuild and
  // mesh propagation with event-driven argument resolution over
  // per-register writer/reader rows. Fault plans keep the propagation
  // machinery underneath the packed walk (corruptions live inside
  // dp_state), but never change the executed loop.
  const bool packed = config_.datapath_eval == DatapathEval::kPacked;
  const bool fast = packed && config_.fault_plan == nullptr;
  const bool maintain_dp = incremental && !fast;

  fault::FaultInjector injector(config_.fault_plan.get());
  fault::DatapathChecker checker(config_.checker_stride);
  // Checked-mode scratch: the per-station resolved arguments the execute
  // phase would consume.
  std::vector<datapath::ResolvedArgs> check_args;
  if (checked) check_args.resize(static_cast<std::size_t>(n));
  std::vector<int> fault_stall(static_cast<std::size_t>(n), 0);

  CoreTelemetry tel(config_);
  // Program-position last writer per register (propagation-distance metric).
  std::vector<int> last_writer(static_cast<std::size_t>(L));

  // Persistent datapath state for the incremental path.
  datapath::HybridDatapathState dp_state(n, L, C);
  for (int r = 0; r < L; ++r) {
    dp_state.SetCommitted(r, committed[static_cast<std::size_t>(r)]);
  }
  datapath::HybridPropagation prop;  // Full-recompute path only.

  std::vector<datapath::StationRequest> requests(
      static_cast<std::size_t>(n));
  std::vector<std::uint8_t> no_store(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> no_load(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> branch_ok(static_cast<std::size_t>(n));
  // Per-cycle scratch, hoisted out of the loop so the hot path does not
  // touch the allocator (capacity is reused across cycles).
  std::vector<std::uint8_t> prev_stores_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_loads_done(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> prev_confirmed(static_cast<std::size_t>(n));
  std::vector<MemWindowEntry> mem_window;
  std::vector<std::uint8_t> alu_requests;
  std::vector<std::uint8_t> alu_grant;  // Indexed by program position.
  std::vector<FetchedInstr> fetch_batch;

  // Packed per-cycle scratch (kPacked only), lanes indexed by program
  // position: recomposed over [0, tail) every cycle, so it is derived
  // state and never checkpointed. Lanes at or beyond tail may hold stale
  // values from a cycle with a larger tail; every whole-word reduction
  // below masks to the live range.
  const int pw = datapath::PackedWordCount(n);
  datapath::PackedBits valid_b, fin_b, iss_b, res_b, msub_b, ld_b, stb_b,
      cf_b, alu_like_b, needs_alu_b, argr_b, cond_b, psd_b, pld_b, pcf_b,
      req_b, grant_b, stall_b, stale_b;
  if (packed) {
    for (auto* p : {&valid_b, &fin_b, &iss_b, &res_b, &msub_b, &ld_b, &stb_b,
                    &cf_b, &alu_like_b, &needs_alu_b, &argr_b, &cond_b,
                    &psd_b, &pld_b, &pcf_b, &req_b, &grant_b, &stall_b,
                    &stale_b}) {
      p->Assign(n);
    }
  }
  // Live-lane mask for word @p w given @p limit live positions.
  const auto live_word_mask = [](int w, int limit) -> std::uint64_t {
    const int base = w << 6;
    if (base >= limit) return 0;
    const int lanes = limit - base;
    return lanes >= 64 ? ~0ULL : ((1ULL << lanes) - 1);
  };

  const auto args_of = [&](int i) -> const datapath::ResolvedArgs& {
    return incremental ? dp_state.args(i)
                       : prop.args[static_cast<std::size_t>(i)];
  };

  // Fast-tier state. The writer/reader rows and the stale mask live in
  // position space (they shift down by C with the masks when a cluster
  // deallocates); the cached arguments and the memory-window entries live
  // in station space, which survives renumbering untouched -- a station's
  // cached binding is a value copy, and a deallocated writer's readers
  // re-resolve to the committed file, which that writer's commit made
  // byte-identical to its result.
  datapath::PackedWriterMap wmap;
  std::vector<datapath::ResolvedArgs> args_at;
  std::vector<MemWindowEntry> mem_window_sta;
  datapath::PackedBits mw_stale_b;  // Station-indexed, unlike stale_b.
  if (fast) {
    wmap.Assign(n, L);
    args_at.resize(static_cast<std::size_t>(n));
    mem_window_sta.resize(static_cast<std::size_t>(n));
    mw_stale_b.Assign(n);
  }
  const bool fwd = config_.store_forwarding;

  // Fast-tier event helpers, keyed by (position, station). Clearing must
  // run while the station still holds its instruction.
  const auto fast_clear_slot = [&](int p, int i, const Station& st) {
    const isa::Instruction& inst = st.inst();
    if (isa::WritesRd(inst.op)) wmap.ClearWriter(p, inst.rd);
    if (isa::ReadsRs1(inst.op)) wmap.ClearReader(p, inst.rs1);
    if (isa::ReadsRs2(inst.op)) wmap.ClearReader(p, inst.rs2);
    for (auto* m : {&valid_b, &fin_b, &iss_b, &res_b, &msub_b, &ld_b, &stb_b,
                    &cf_b, &alu_like_b, &needs_alu_b, &argr_b, &stale_b}) {
      m->Clear(p);
    }
    mw_stale_b.Clear(i);
    args_at[static_cast<std::size_t>(i)] = datapath::ResolvedArgs{};
    if (fwd) mem_window_sta[static_cast<std::size_t>(i)] = MemWindowEntry{};
  };
  const auto fast_fill_slot = [&](int p, int i, const Station& st) {
    const isa::Instruction& inst = st.inst();
    valid_b.Set(p);
    const isa::Opcode op = inst.op;
    if (op == isa::Opcode::kLoad) {
      ld_b.Set(p);
    } else if (op == isa::Opcode::kStore) {
      stb_b.Set(p);
    } else {
      alu_like_b.Set(p);
    }
    if (isa::IsControlFlow(op)) cf_b.Set(p);
    if (NeedsAlu(op)) needs_alu_b.Set(p);
    if (isa::WritesRd(op)) wmap.SetWriter(p, inst.rd);
    if (isa::ReadsRs1(op)) wmap.AddReader(p, inst.rs1);
    if (isa::ReadsRs2(op)) wmap.AddReader(p, inst.rs2);
    stale_b.Set(p);
    if (fwd) mw_stale_b.Set(i);
  };
  // Position @p p's result binding for register @p r changed: only the
  // readers between p and the next writer of r (inclusive -- a position
  // both reading and writing r resolves its read against the previous
  // writer) see a different source. Acyclic position order.
  const auto mark_result_change = [&](int p, isa::RegId r) {
    const int nw = datapath::LowestSetInRange(
        wmap.writers(static_cast<int>(r)), p + 1, n);
    wmap.OrReadersInCyclicRange(static_cast<int>(r), p + 1,
                                nw >= 0 ? nw + 1 : 0, stale_b);
  };
  // Invert station_index: absolute station slot -> program position.
  const auto position_of = [&](int i) {
    return ((i / C - head_cluster + K) % K) * C + i % C;
  };

  CheckpointSession ckpt(config_, ProcessorKind::kHybrid, program);
  const auto save_state = [&](persist::Encoder& e) {
    for (const Station& st : stations) SaveStation(e, st);
    for (const auto& b : committed) datapath::Save(e, b);
    e.I32(head_cluster);
    e.I32(tail);
    e.I32(commit_ptr);
    e.U64(next_seq);
    SaveInflight(e, inflight);
    SavePartialResult(e, result);
    for (const int s : fault_stall) e.I32(s);
    dp_state.SaveState(e);
    injector.SaveState(e);
    checker.SaveState(e);
    fetch.SaveState(e);
    mem.SaveState(e);
    SaveTelemetrySlots(e, config_);
  };
  std::uint64_t start_cycle = 0;
  if (ckpt.resume() != nullptr) {
    persist::Decoder d(ckpt.resume()->state);
    for (Station& st : stations) RestoreStation(d, st);
    for (auto& b : committed) datapath::Restore(d, b);
    head_cluster = d.I32();
    tail = d.I32();
    commit_ptr = d.I32();
    next_seq = d.U64();
    RestoreInflight(d, inflight);
    RestorePartialResult(d, result);
    for (int& s : fault_stall) s = d.I32();
    dp_state.RestoreState(d);
    injector.RestoreState(d);
    checker.RestoreState(d);
    fetch.RestoreState(d);
    mem.RestoreState(d);
    RestoreTelemetrySlots(d, config_);
    if (!d.AtEnd()) {
      throw persist::FormatError("trailing checkpoint bytes");
    }
    start_cycle = ckpt.resume()->header.cycle;
    if (fast) {
      // Rebuild the derived packed shadow from the restored stations. The
      // cached arguments are a pure function of (stations, committed), so
      // marking every live position stale makes the first phase-1 drain
      // recompute exactly the values the uninterrupted run carried.
      for (int p = 0; p < tail; ++p) {
        const int i = station_index(p);
        const Station& st = stations[static_cast<std::size_t>(i)];
        if (!st.valid) continue;
        fast_fill_slot(p, i, st);
        fin_b.SetTo(p, st.finished);
        iss_b.SetTo(p, st.issued);
        res_b.SetTo(p, st.resolved);
        msub_b.SetTo(p, st.mem_submitted);
      }
    }
  }

  for (std::uint64_t cycle = start_cycle; cycle < config_.max_cycles && !done;
       ++cycle) {
    if (ckpt.MaybeSave(cycle, save_state)) break;
    if (config_.cancel && (cycle & 1023u) == 0 &&
        config_.cancel->load(std::memory_order_relaxed)) {
      break;  // Abandoned run: halted stays false.
    }
    result.cycles = cycle + 1;
    tel.OnCycle(cycle, tail - commit_ptr);

    // --- Phase 1: combinational propagation (end-of-last-cycle state). ---
    if (fast) {
      // Event-driven delivery: re-resolve only the positions whose
      // argument source changed since the last cycle (writer result
      // movement, their own fill, or a squash). Stations are untouched
      // since the end of the previous cycle, so this drain sees exactly
      // the snapshot the mesh propagation would have delivered.
      ForEachSetBit(stale_b, [&](int p) {
        const int i = station_index(p);
        const Station& st = stations[static_cast<std::size_t>(i)];
        if (!st.valid) return;
        const isa::Instruction& inst = st.inst();
        datapath::ResolvedArgs args;
        // The nearest preceding writer's binding, verbatim (ready or
        // not); committed stations keep driving the ring until their
        // cluster deallocates, and a reader with no preceding writer
        // takes the committed file.
        const auto resolve = [&](isa::RegId r) -> datapath::RegBinding {
          const int j =
              wmap.NearestWriterBeforeAcyclic(p, static_cast<int>(r));
          return j >= 0
                     ? stations[static_cast<std::size_t>(station_index(j))]
                           .result
                     : committed[r];
        };
        if (isa::ReadsRs1(inst.op)) args.arg1 = resolve(inst.rs1);
        if (isa::ReadsRs2(inst.op)) args.arg2 = resolve(inst.rs2);
        args_at[static_cast<std::size_t>(i)] = args;
        argr_b.SetTo(p, (!isa::ReadsRs1(inst.op) || args.arg1.ready) &&
                            (!isa::ReadsRs2(inst.op) || args.arg2.ready));
        if (fwd) mw_stale_b.Set(i);
      });
      stale_b.ClearAll();
    } else {
    for (int i = 0; i < n; ++i) {
      datapath::StationRequest& req = requests[static_cast<std::size_t>(i)];
      req = datapath::StationRequest{};
      const Station& st = stations[static_cast<std::size_t>(i)];
      if (st.valid) {
        const isa::Instruction& inst = st.inst();
        req.reads1 = isa::ReadsRs1(inst.op);
        req.arg1 = inst.rs1;
        req.reads2 = isa::ReadsRs2(inst.op);
        req.arg2 = inst.rs2;
        req.writes = isa::WritesRd(inst.op);
        req.dest = inst.rd;
        req.result = st.result;
      }
    }
    if (incremental) {
      dp_state.SetOldestCluster(head_cluster);
      for (int i = 0; i < n; ++i) {
        dp_state.SetStation(i, requests[static_cast<std::size_t>(i)]);
      }
      dp.PropagateIncremental(dp_state);
    } else {
      prop = dp.Propagate(committed, requests, head_cluster);
    }
    }

    // --- Phase 1b: fault injection + self-checking (before any station
    // reads its resolved arguments this cycle). ---
    if (injector.active()) {
      injector.BeginCycle(cycle);
      injector.ApplyDatapathFaults(dp_state);
      tel.OnFaults(cycle, injector.pending());
      for (const fault::FaultEvent& e : injector.pending()) {
        if (e.kind == fault::FaultKind::kStallStation) {
          fault_stall[static_cast<std::size_t>(e.station % n)] +=
              static_cast<int>(e.payload % 8) + 1;
          injector.NoteStall();
        }
      }
    }
    if (checked && checker.Due(cycle, injector.HasHazardousPending())) {
      checker.RecordCheck();
      tel.OnCheckerCheck(cycle);
      // Snapshot the (possibly corrupted) argument buffer, rebuild it from
      // the inputs, and diff; the rebuild is itself the resync.
      for (int i = 0; i < n; ++i) {
        check_args[static_cast<std::size_t>(i)] = dp_state.args(i);
      }
      dp_state.MarkAllDirty();
      dp.PropagateIncremental(dp_state);
      std::uint64_t mismatched = 0;
      for (int i = 0; i < n; ++i) {
        const datapath::ResolvedArgs& truth = dp_state.args(i);
        const datapath::ResolvedArgs& seen =
            check_args[static_cast<std::size_t>(i)];
        if (seen.arg1 != truth.arg1) ++mismatched;
        if (seen.arg2 != truth.arg2) ++mismatched;
      }
      if (mismatched > 0) {
        checker.RecordDivergence(cycle, mismatched);
        tel.OnCheckerResync(cycle, mismatched);
      }
    }

    // Propagation distances in program order: positions crossed from each
    // operand's nearest preceding writer (committed stations still drive
    // the ring until their cluster is freed), or from the committed file at
    // the head cluster when no station in the window writes the register.
    if (tel.metrics_on()) {
      std::fill(last_writer.begin(), last_writer.end(), -1);
      for (int p = 0; p < tail; ++p) {
        const Station& st =
            stations[static_cast<std::size_t>(station_index(p))];
        if (!st.valid) continue;
        const isa::Instruction& inst = st.inst();
        if (p >= commit_ptr) {
          if (isa::ReadsRs1(inst.op)) {
            const int j = last_writer[static_cast<std::size_t>(inst.rs1)];
            tel.OnDistance(j >= 0 ? p - j : p + 1);
          }
          if (isa::ReadsRs2(inst.op)) {
            const int j = last_writer[static_cast<std::size_t>(inst.rs2)];
            tel.OnDistance(j >= 0 ? p - j : p + 1);
          }
        }
        if (isa::WritesRd(inst.op)) {
          last_writer[static_cast<std::size_t>(inst.rd)] = p;
        }
      }
    }

    // Sequencing flags in program order over the allocated positions.
    if (packed) {
      if (!fast) {
      // Word-accumulator composition over positions; invalid lanes stay
      // all-zero, which makes every derived condition for them vacuous.
      // Tier B (fault plans): the injected-stall lanes are recomposed from
      // the station-indexed counters every cycle, because positions
      // renumber at cluster deallocation while the counters stay put.
      std::uint64_t av = 0, af = 0, ai = 0, ar = 0, am = 0, al = 0, as = 0,
                    ac = 0, aa = 0, an = 0, ag = 0, ast = 0;
      for (int p = 0; p < tail; ++p) {
        const int i = station_index(p);
        const Station& st = stations[static_cast<std::size_t>(i)];
        if (st.valid) {
          const std::uint64_t bit = 1ULL << (p & 63);
          av |= bit;
          if (st.finished) af |= bit;
          if (st.issued) ai |= bit;
          if (st.resolved) ar |= bit;
          if (st.mem_submitted) am |= bit;
          if (fault_stall[static_cast<std::size_t>(i)] > 0) ast |= bit;
          const isa::Instruction& inst = st.inst();
          if (inst.op == isa::Opcode::kLoad) {
            al |= bit;
          } else if (inst.op == isa::Opcode::kStore) {
            as |= bit;
          } else {
            aa |= bit;
          }
          if (isa::IsControlFlow(inst.op)) ac |= bit;
          if (NeedsAlu(inst.op)) an |= bit;
          const datapath::ResolvedArgs& args = args_of(i);
          if ((!isa::ReadsRs1(inst.op) || args.arg1.ready) &&
              (!isa::ReadsRs2(inst.op) || args.arg2.ready)) {
            ag |= bit;
          }
        }
        if ((p & 63) == 63 || p == tail - 1) {
          const int w = p >> 6;
          valid_b.word(w) = av;
          fin_b.word(w) = af;
          iss_b.word(w) = ai;
          res_b.word(w) = ar;
          msub_b.word(w) = am;
          ld_b.word(w) = al;
          stb_b.word(w) = as;
          cf_b.word(w) = ac;
          alu_like_b.word(w) = aa;
          needs_alu_b.word(w) = an;
          argr_b.word(w) = ag;
          stall_b.word(w) = ast;
          av = af = ai = ar = am = al = as = ac = aa = an = ag = ast = 0;
        }
      }
      }
      // Stale lanes >= tail cannot influence the acyclic prefixes (they
      // only look backward), and every other reduction masks them out.
      for (int w = 0; w < pw; ++w) {
        cond_b.word(w) = ~(stb_b.word(w) & ~fin_b.word(w));
      }
      cond_b.word(pw - 1) &= datapath::PackedTailMask(n);
      datapath::PackedAllPrecedingSatisfyAcyclicInto(cond_b, psd_b);
      for (int w = 0; w < pw; ++w) {
        cond_b.word(w) = ~(ld_b.word(w) & ~fin_b.word(w));
      }
      cond_b.word(pw - 1) &= datapath::PackedTailMask(n);
      datapath::PackedAllPrecedingSatisfyAcyclicInto(cond_b, pld_b);
      for (int w = 0; w < pw; ++w) {
        cond_b.word(w) = ~(cf_b.word(w) & ~res_b.word(w));
      }
      cond_b.word(pw - 1) &= datapath::PackedTailMask(n);
      datapath::PackedAllPrecedingSatisfyAcyclicInto(cond_b, pcf_b);
    } else {
      for (int p = 0; p < tail; ++p) {
        const Station& st =
            stations[static_cast<std::size_t>(station_index(p))];
        const bool is_store = st.valid && st.inst().op == isa::Opcode::kStore;
        const bool is_load = st.valid && st.inst().op == isa::Opcode::kLoad;
        no_store[static_cast<std::size_t>(p)] = !is_store || st.finished;
        no_load[static_cast<std::size_t>(p)] = !is_load || st.finished;
        branch_ok[static_cast<std::size_t>(p)] =
            !st.valid || !isa::IsControlFlow(st.inst().op) || st.resolved;
      }
      const std::span<const std::uint8_t> live_store(
          no_store.data(), static_cast<std::size_t>(tail));
      const std::span<const std::uint8_t> live_load(
          no_load.data(), static_cast<std::size_t>(tail));
      const std::span<const std::uint8_t> live_branch(
          branch_ok.data(), static_cast<std::size_t>(tail));
      datapath::AllPrecedingSatisfyAcyclicInto(
          live_store,
          std::span<std::uint8_t>(prev_stores_done.data(),
                                  static_cast<std::size_t>(tail)));
      datapath::AllPrecedingSatisfyAcyclicInto(
          live_load, std::span<std::uint8_t>(prev_loads_done.data(),
                                             static_cast<std::size_t>(tail)));
      datapath::AllPrecedingSatisfyAcyclicInto(
          live_branch,
          std::span<std::uint8_t>(prev_confirmed.data(),
                                  static_cast<std::size_t>(tail)));
    }

    // --- Phase 2: memory responses. ---
    mem.Tick();
    for (const auto& resp : mem.DrainCompleted()) {
      const auto it = inflight.find(resp.id);
      if (it == inflight.end()) continue;
      const MemTag tag = it->second;
      inflight.erase(it);
      Station& st = stations[static_cast<std::size_t>(tag.tag)];
      if (st.valid && st.generation == tag.generation) {
        const bool was_finished = st.finished;
        ApplyMemResponse(st, resp, cycle);
        if (packed) {
          const int i = static_cast<int>(tag.tag);
          const int p = position_of(i);
          if (p < tail) {
            fin_b.Set(p);
            if (fast) {
              // The load's result binding just became ready: its readers
              // re-resolve at the next phase-1 drain, exactly when the
              // propagation would have delivered the new value.
              if (isa::WritesRd(st.inst().op)) {
                mark_result_change(p, st.inst().rd);
              }
              if (fwd) mw_stale_b.Set(i);
            }
          }
        }
        tel.OnMemComplete(cycle, static_cast<int>(tag.tag), st, was_finished);
      }
    }

    // --- Phase 3: execute in program order. ---
    const int live = tail;
    if (fwd) {
      if (fast) {
        // Refresh only the station-indexed window entries whose station or
        // arguments moved -- after phase 2, so this cycle's memory
        // completions are visible to disambiguation, as in the rebuilt
        // window below.
        ForEachSetBit(mw_stale_b, [&](int i) {
          mem_window_sta[static_cast<std::size_t>(i)] = MakeMemWindowEntry(
              stations[static_cast<std::size_t>(i)],
              args_at[static_cast<std::size_t>(i)]);
        });
        mw_stale_b.ClearAll();
      } else {
        mem_window.assign(static_cast<std::size_t>(live), MemWindowEntry{});
        for (int p = 0; p < live; ++p) {
          const int i = station_index(p);
          mem_window[static_cast<std::size_t>(p)] = MakeMemWindowEntry(
              stations[static_cast<std::size_t>(i)], args_of(i));
        }
      }
    }
    if (config_.num_alus > 0) {
      if (packed) {
        int occupied = 0;
        for (int w = 0; w < pw; ++w) {
          const std::uint64_t lm = live_word_mask(w, live);
          occupied += std::popcount(needs_alu_b.word(w) & iss_b.word(w) &
                                    ~fin_b.word(w) & lm);
          req_b.word(w) = needs_alu_b.word(w) & ~iss_b.word(w) &
                          ~fin_b.word(w) & argr_b.word(w) & lm;
        }
        datapath::AluScheduler::PackedGrantAcyclicInto(
            req_b, std::max(0, config_.num_alus - occupied), grant_b);
      } else {
        alu_requests.assign(static_cast<std::size_t>(live), 0);
        int occupied = 0;
        for (int p = 0; p < live; ++p) {
          const Station& st =
              stations[static_cast<std::size_t>(station_index(p))];
          alu_requests[static_cast<std::size_t>(p)] =
              WantsAlu(st, args_of(station_index(p)));
          if (st.valid && st.issued && !st.finished &&
              NeedsAlu(st.inst().op)) {
            ++occupied;
          }
        }
        alu_grant.resize(static_cast<std::size_t>(live));
        datapath::AluScheduler::GrantAcyclicInto(
            alu_requests, std::max(0, config_.num_alus - occupied),
            alu_grant);
      }
    }
    if (packed) {
      // Visit only stations whose StepStation call would act (the mask
      // mirrors its no-op predicate exactly, so skipping is identical),
      // plus stations serving an injected stall, which must decrement
      // their counters in walk order like the scalar loop's skip does
      // (after the valid/finished screen, hence the & ~fin term). With
      // store forwarding on, a load's gate is its disambiguation decision
      // rather than the prev-stores-done prefix, so the load term drops
      // psd (an undecidable load is visited and no-ops).
      int p0 = commit_ptr;
      bool squashed = false;
      while (p0 < tail && !squashed) {
        const int w = p0 >> 6;
        const int lo = p0 & 63;
        const int hi = std::min(64, tail - (w << 6));
        const std::uint64_t grant_ok =
            config_.num_alus > 0 ? (grant_b.word(w) | ~needs_alu_b.word(w))
                                 : ~0ULL;
        const std::uint64_t load_gate = fwd ? ~0ULL : psd_b.word(w);
        std::uint64_t mv =
            (valid_b.word(w) & ~fin_b.word(w) &
             ((alu_like_b.word(w) &
               (iss_b.word(w) | (argr_b.word(w) & grant_ok))) |
              (ld_b.word(w) & ~msub_b.word(w) & argr_b.word(w) &
               load_gate) |
              (stb_b.word(w) & ~msub_b.word(w) & argr_b.word(w) &
               pld_b.word(w) & psd_b.word(w) & pcf_b.word(w)))) |
            (stall_b.word(w) & valid_b.word(w) & ~fin_b.word(w));
        const int cw = hi - lo;
        mv &= (cw == 64 ? ~0ULL : ((1ULL << cw) - 1)) << lo;
        while (mv != 0) {
          const int b = std::countr_zero(mv);
          mv &= mv - 1;
          const int p = (w << 6) + b;
          const int i = station_index(p);
          if (stall_b.Test(p)) {
            // Injected stall: the station sits this cycle out.
            if (--fault_stall[static_cast<std::size_t>(i)] == 0) {
              stall_b.Clear(p);
            }
            continue;
          }
          Station& st = stations[static_cast<std::size_t>(i)];
          const datapath::ResolvedArgs& args =
              fast ? args_at[static_cast<std::size_t>(i)] : args_of(i);
          StepContext ctx;
          ctx.prev_stores_done = psd_b.Test(p);
          ctx.prev_loads_done = pld_b.Test(p);
          ctx.committed_ok = pcf_b.Test(p);
          ctx.alu_granted = config_.num_alus == 0 || grant_b.Test(p);
          ctx.forwarding_enabled = fwd;
          if (fwd && st.inst().op == isa::Opcode::kLoad) {
            if (fast) {
              if (mem_window_sta[static_cast<std::size_t>(i)].addr_known) {
                const auto decision = ResolveLoadForwardingMapped(
                    [&](std::size_t k) -> const MemWindowEntry& {
                      return mem_window_sta[static_cast<std::size_t>(
                          station_index(static_cast<int>(k)))];
                    },
                    static_cast<std::size_t>(p));
                ctx.load_can_proceed = decision.can_proceed;
                ctx.load_forward = decision.forward;
                ctx.forward_value = decision.value;
              }
            } else if (mem_window[static_cast<std::size_t>(p)].addr_known) {
              const auto decision = ResolveLoadForwarding(
                  mem_window, static_cast<std::size_t>(p));
              ctx.load_can_proceed = decision.can_proceed;
              ctx.load_forward = decision.forward;
              ctx.forward_value = decision.value;
            }
          }
          const bool was_issued = st.issued;
          const bool was_finished = st.finished;
          const datapath::RegBinding pre_result = st.result;
          const bool mispredicted = StepStation(
              st, args, ctx, config_.latencies, mem, cycle, i,
              static_cast<std::uint64_t>(i), inflight, result.stats);
          tel.OnStep(cycle, i, st, was_issued, was_finished);
          if (fast) {
            iss_b.SetTo(p, st.issued);
            fin_b.SetTo(p, st.finished);
            res_b.SetTo(p, st.resolved);
            msub_b.SetTo(p, st.mem_submitted);
            if (st.result != pre_result && isa::WritesRd(st.inst().op)) {
              mark_result_change(p, st.inst().rd);
            }
            if (fwd) mw_stale_b.Set(i);
          }
          if (mispredicted) {
            ++result.stats.mispredictions;
            for (int m = p + 1; m < tail; ++m) {
              const int vi = station_index(m);
              Station& victim = stations[static_cast<std::size_t>(vi)];
              if (victim.valid) {
                ++result.stats.squashed_instructions;
                tel.OnSquash(cycle, vi, victim);
                if (fast) fast_clear_slot(m, vi, victim);
                victim.Clear();
                ++victim.generation;
              }
            }
            tail = p + 1;
            fetch.Redirect(st.actual_next_pc);
            squashed = true;
            break;
          }
        }
        p0 = (w << 6) + hi;
      }
    } else {
    for (int p = commit_ptr; p < live; ++p) {
      const int i = station_index(p);
      Station& st = stations[static_cast<std::size_t>(i)];
      if (!st.valid || st.finished) continue;
      if (fault_stall[static_cast<std::size_t>(i)] > 0) {
        --fault_stall[static_cast<std::size_t>(i)];
        continue;  // Injected stall: the station sits out this cycle.
      }
      StepContext ctx;
      ctx.prev_stores_done =
          prev_stores_done[static_cast<std::size_t>(p)] != 0;
      ctx.prev_loads_done = prev_loads_done[static_cast<std::size_t>(p)] != 0;
      ctx.committed_ok = prev_confirmed[static_cast<std::size_t>(p)] != 0;
      ctx.alu_granted = config_.num_alus == 0 ||
                        alu_grant[static_cast<std::size_t>(p)] != 0;
      ctx.forwarding_enabled = config_.store_forwarding;
      if (ctx.forwarding_enabled && st.inst().op == isa::Opcode::kLoad &&
          mem_window[static_cast<std::size_t>(p)].addr_known) {
        const auto decision =
            ResolveLoadForwarding(mem_window, static_cast<std::size_t>(p));
        ctx.load_can_proceed = decision.can_proceed;
        ctx.load_forward = decision.forward;
        ctx.forward_value = decision.value;
      }
      const bool was_issued = st.issued;
      const bool was_finished = st.finished;
      const bool mispredicted = StepStation(
          st, args_of(i), ctx, config_.latencies, mem, cycle, i,
          static_cast<std::uint64_t>(i), inflight, result.stats);
      tel.OnStep(cycle, i, st, was_issued, was_finished);
      if (mispredicted) {
        ++result.stats.mispredictions;
        for (int m = p + 1; m < tail; ++m) {
          const int vi = station_index(m);
          Station& victim = stations[static_cast<std::size_t>(vi)];
          if (victim.valid) {
            ++result.stats.squashed_instructions;
            tel.OnSquash(cycle, vi, victim);
            victim.Clear();
            ++victim.generation;
          }
        }
        tail = p + 1;
        fetch.Redirect(st.actual_next_pc);
      }
    }
    }

    // Forced mispredictions (fault injection): squash + redirect through
    // the normal recovery machinery.
    if (injector.active()) {
      for (const fault::FaultEvent& e : injector.pending()) {
        if (e.kind != fault::FaultKind::kForceMispredict) continue;
        if (tail <= commit_ptr) {
          injector.NoteMasked();
          continue;
        }
        const int p = commit_ptr + e.station % (tail - commit_ptr);
        Station& st =
            stations[static_cast<std::size_t>(station_index(p))];
        if (!st.valid || st.inst().op == isa::Opcode::kHalt) {
          injector.NoteMasked();
          continue;
        }
        std::size_t redirect_pc;
        if (isa::IsControlFlow(st.inst().op)) {
          redirect_pc = st.resolved ? st.actual_next_pc
                                    : st.fetched.predicted_next_pc;
        } else {
          redirect_pc = st.fetched.pc + 1;
        }
        injector.NoteForcedMispredict();
        for (int m = p + 1; m < tail; ++m) {
          const int vi = station_index(m);
          Station& victim = stations[static_cast<std::size_t>(vi)];
          if (victim.valid) {
            ++result.stats.squashed_instructions;
            ++result.stats.fault.squashes;
            tel.OnSquash(cycle, vi, victim);
            victim.Clear();
            ++victim.generation;
          }
        }
        tail = p + 1;
        fetch.Redirect(redirect_pc);
      }
    }

    // --- Phase 4: commit in program order; free whole clusters. ---
    while (commit_ptr < tail) {
      Station& st =
          stations[static_cast<std::size_t>(station_index(commit_ptr))];
      assert(st.valid);
      if (!st.finished) break;
      st.timing.commit_cycle = cycle;
      const isa::Instruction& inst = st.inst();
      if (isa::WritesRd(inst.op)) {
        assert(st.result.ready);
        committed[inst.rd] = st.result;
        if (maintain_dp) dp_state.SetCommitted(inst.rd, st.result);
        // Fast tier: no reader re-resolution is needed at commit. The
        // committing writer's station keeps driving the ring until its
        // cluster deallocates, so every in-window reader's nearest
        // preceding writer -- and the binding it delivers -- is unchanged.
      }
      if (isa::IsControlFlow(inst.op)) {
        fetch.NotifyOutcome(st.fetched.pc, st.actual_taken);
      }
      result.timeline.push_back(st.timing);
      ++result.committed;
      tel.OnCommit(cycle, station_index(commit_ptr), st);
      const bool was_halt = inst.op == isa::Opcode::kHalt;
      ++commit_ptr;
      if (was_halt) {
        done = true;
        result.halted = true;
        break;
      }
    }
    // A fully committed head cluster is deallocated as a unit and becomes
    // available for refilling (the "super execution station" reuse rule).
    while (commit_ptr >= C) {
      for (int s = 0; s < C; ++s) {
        const int i = head_cluster * C + s;
        Station& st = stations[static_cast<std::size_t>(i)];
        if (fast) {
          // Station-indexed caches are cleared point-wise; the slot is
          // about to be refilled with a new instruction.
          mw_stale_b.Clear(i);
          args_at[static_cast<std::size_t>(i)] = datapath::ResolvedArgs{};
          if (fwd) mem_window_sta[static_cast<std::size_t>(i)] =
              MemWindowEntry{};
        }
        st.Clear();
        ++st.generation;
      }
      if (fast) {
        // Every live position renumbers down by C. No reader goes stale:
        // a reader whose nearest preceding writer just deallocated must
        // have been reading r's last committed writer, whose commit made
        // committed[r] byte-identical to the binding it was delivering --
        // so re-resolving to the committed file yields the same value.
        // Cached arguments are value copies and survive untouched.
        for (auto* m : {&valid_b, &fin_b, &iss_b, &res_b, &msub_b, &ld_b,
                        &stb_b, &cf_b, &alu_like_b, &needs_alu_b, &argr_b,
                        &stale_b}) {
          datapath::PackedShiftDown(*m, C);
        }
        wmap.ShiftDown(C);
      }
      head_cluster = (head_cluster + 1) % K;
      commit_ptr -= C;
      tail -= C;
    }

    // --- Phase 5: fetch. ---
    if (!done) {
      const int free = n - tail;
      if (free == 0) ++result.stats.window_full_cycles;
      const int width = std::min(config_.EffectiveFetchWidth(), free);
      fetch.FetchCycle(width, fetch_batch);
      if (fetch_batch.empty() && free > 0 && tail > commit_ptr &&
          !fetch.stalled()) {
        ++result.stats.fetch_stall_cycles;
      }
      for (const auto& f : fetch_batch) {
        const int slot = station_index(tail);
        FillStation(stations[static_cast<std::size_t>(slot)], f, next_seq++,
                    cycle);
        stations[static_cast<std::size_t>(slot)].timing.station = slot;
        tel.OnFetch(cycle, slot, stations[static_cast<std::size_t>(slot)]);
        if (fast) {
          fast_fill_slot(tail, slot, stations[static_cast<std::size_t>(slot)]);
        }
        ++tail;
      }
      if (fetch.stalled() && commit_ptr == tail) {
        done = true;
        result.halted = true;
      }
    }
  }

  result.regs.resize(static_cast<std::size_t>(L));
  for (int r = 0; r < L; ++r) {
    result.regs[static_cast<std::size_t>(r)] =
        committed[static_cast<std::size_t>(r)].value;
  }
  result.memory = mem.store().Snapshot();
  tel.FinalizeFaults(result.stats, injector, checker);
  tel.FinalizeMemory(result.stats, mem, fetch);
  return result;
}

}  // namespace ultra::core
