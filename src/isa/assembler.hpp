// Two-pass assembler for the reference ISA.
//
// Syntax (one statement per line, '#' starts a comment):
//   label:                    -- define a label at the next instruction
//   add  r1, r2, r3           -- register-register ALU
//   addi r1, r2, -5           -- register-immediate ALU
//   li   r1, 42               -- load immediate
//   ld   r1, 8(r2)            -- load word
//   st   r1, 8(r2)            -- store word (r1 is the value)
//   beq  r1, r2, label        -- branch to label (or absolute index)
//   jmp  label
//   jal  r31, label
//   halt / nop
//   .word ADDR VALUE          -- initial data memory (byte address)
#pragma once

#include <string>
#include <string_view>
#include <variant>

#include "isa/program.hpp"

namespace ultra::isa {

struct AssemblyError {
  int line = 0;             // 1-based source line
  std::string token;        // The offending token ("" if none applies).
  std::string message;

  /// "line N: message (token 'tok')".
  [[nodiscard]] std::string ToString() const;
};

using AssemblyResult = std::variant<Program, AssemblyError>;

/// Assembles @p source. On success returns the Program; on the first error
/// returns an AssemblyError naming the offending line and token. Register
/// operands are validated against @p num_regs (clamped to the encodable
/// kMaxLogicalRegisters), so a program assembled for a 32-register machine
/// cannot silently reference r40.
AssemblyResult Assemble(std::string_view source,
                        int num_regs = kMaxLogicalRegisters);

/// Convenience wrapper that throws std::runtime_error on assembly errors;
/// used by examples and tests where failure is a bug.
Program AssembleOrDie(std::string_view source,
                      int num_regs = kMaxLogicalRegisters);

}  // namespace ultra::isa
