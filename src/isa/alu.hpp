// Architectural semantics of ALU and branch operations.
//
// Single source of truth for instruction semantics: every processor model
// (Ultrascalar I / II / hybrid / the ideal-superscalar baseline) calls these
// functions, so a semantics bug cannot masquerade as a timing difference.
#pragma once

#include "isa/instruction.hpp"
#include "isa/opcode.hpp"

namespace ultra::isa {

/// Computes the result of a non-memory, non-control instruction given its
/// two register operands (unused operands are ignored). Division by zero
/// yields all-ones (the common RISC convention), remainder by zero yields
/// the dividend.
Word AluResult(const Instruction& inst, Word a, Word b);

/// Evaluates a conditional-branch predicate.
bool BranchTaken(const Instruction& inst, Word a, Word b);

/// Effective address of a load/store: rs1 + imm (byte address).
Word EffectiveAddress(const Instruction& inst, Word base);

}  // namespace ultra::isa
