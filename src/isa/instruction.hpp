// Instruction representation and binary encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "isa/opcode.hpp"

namespace ultra::isa {

/// One decoded instruction. Branch/jump targets are absolute instruction
/// indices held in @c imm (the reference machine is word-addressed for
/// instructions, byte-addressed for data).
struct Instruction {
  Opcode op = Opcode::kNop;
  RegId rd = 0;
  RegId rs1 = 0;
  RegId rs2 = 0;
  std::int32_t imm = 0;

  /// Number of register sources actually read (0..2).
  [[nodiscard]] int NumSources() const {
    return (ReadsRs1(op) ? 1 : 0) + (ReadsRs2(op) ? 1 : 0);
  }
  [[nodiscard]] bool HasDest() const { return WritesRd(op); }

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Convenience constructors used throughout tests and workloads.
Instruction MakeRRR(Opcode op, RegId rd, RegId rs1, RegId rs2);
Instruction MakeRRI(Opcode op, RegId rd, RegId rs1, std::int32_t imm);
Instruction MakeLi(RegId rd, std::int32_t imm);
Instruction MakeLoad(RegId rd, RegId base, std::int32_t offset);
Instruction MakeStore(RegId value, RegId base, std::int32_t offset);
Instruction MakeBranch(Opcode op, RegId rs1, RegId rs2, std::int32_t target);
Instruction MakeJmp(std::int32_t target);
Instruction MakeHalt();
Instruction MakeNop();

/// Fixed 64-bit binary encoding:
///   bits [0,8)   opcode
///   bits [8,16)  rd
///   bits [16,24) rs1
///   bits [24,32) rs2
///   bits [32,64) imm (two's complement)
std::uint64_t Encode(const Instruction& inst);

/// Decodes @p word; returns std::nullopt when the opcode or a register field
/// is out of range.
std::optional<Instruction> Decode(std::uint64_t word);

/// Human-readable disassembly (inverse of the assembler syntax).
std::string ToString(const Instruction& inst);

}  // namespace ultra::isa
