#include "isa/latency.hpp"

#include <cassert>

namespace ultra::isa {

LatencyModel::LatencyModel() {
  table_.fill(1);
  Set(OpClass::kIntMul, 3);
  Set(OpClass::kIntDiv, 10);
}

void LatencyModel::Set(OpClass cls, int cycles) {
  assert(cycles >= 1);
  table_[static_cast<std::size_t>(cls)] = cycles;
}

}  // namespace ultra::isa
