#include "isa/assembler.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ultra::isa {
namespace {

/// Splits a statement into tokens, treating ',', '(' and ')' as separators.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == '(' ||
        c == ')') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::optional<RegId> ParseReg(std::string_view tok) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) return std::nullopt;
  int value = 0;
  const auto* begin = tok.data() + 1;
  const auto* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  if (value < 0 || value >= kMaxLogicalRegisters) return std::nullopt;
  return static_cast<RegId>(value);
}

std::optional<std::int64_t> ParseInt(std::string_view tok) {
  std::int64_t value = 0;
  int base = 10;
  std::string_view body = tok;
  bool negative = false;
  if (!body.empty() && (body[0] == '-' || body[0] == '+')) {
    negative = body[0] == '-';
    body.remove_prefix(1);
  }
  if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    base = 16;
    body.remove_prefix(2);
  }
  if (body.empty()) return std::nullopt;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value, base);
  if (ec != std::errc{} || ptr != body.data() + body.size()) {
    return std::nullopt;
  }
  return negative ? -value : value;
}

/// A pending reference to a label (or numeric target) for pass two.
struct Fixup {
  std::size_t inst_index;
  std::string target;
  int line;
};

}  // namespace

std::string AssemblyError::ToString() const {
  std::ostringstream os;
  os << "line " << line << ": " << message;
  return os.str();
}

AssemblyResult Assemble(std::string_view source) {
  Program program;
  std::vector<Fixup> fixups;

  const auto fail = [](int line, std::string msg) {
    return AssemblyResult{AssemblyError{line, std::move(msg)}};
  };

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? source.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;

    auto tokens = Tokenize(line);
    if (tokens.empty()) continue;

    // Labels: "name:" possibly followed by an instruction on the same line.
    while (!tokens.empty() && tokens.front().back() == ':') {
      std::string name = tokens.front().substr(0, tokens.front().size() - 1);
      if (name.empty()) return fail(line_no, "empty label");
      program.AddLabel(std::move(name), program.size());
      tokens.erase(tokens.begin());
    }
    if (tokens.empty()) continue;

    const std::string& mnemonic = tokens[0];

    if (mnemonic == ".word") {
      if (tokens.size() != 3) return fail(line_no, ".word needs ADDR VALUE");
      const auto addr = ParseInt(tokens[1]);
      const auto value = ParseInt(tokens[2]);
      if (!addr || !value) return fail(line_no, "bad .word operand");
      program.SetInitialWord(static_cast<Word>(*addr),
                             static_cast<Word>(*value));
      continue;
    }

    const Opcode op = OpcodeFromName(mnemonic);
    if (op == Opcode::kCount_) {
      return fail(line_no, "unknown mnemonic '" + mnemonic + "'");
    }

    Instruction inst;
    inst.op = op;
    const auto operands = std::vector<std::string>(tokens.begin() + 1,
                                                   tokens.end());
    const auto need = [&](std::size_t n) { return operands.size() == n; };

    switch (ClassOf(op)) {
      case OpClass::kNop:
      case OpClass::kHalt:
        if (!need(0)) return fail(line_no, "operands not allowed");
        break;
      case OpClass::kIntSimple:
      case OpClass::kIntMul:
      case OpClass::kIntDiv: {
        if (ReadsRs2(op)) {  // rd, rs1, rs2
          if (!need(3)) return fail(line_no, "expected rd, rs1, rs2");
          const auto rd = ParseReg(operands[0]);
          const auto rs1 = ParseReg(operands[1]);
          const auto rs2 = ParseReg(operands[2]);
          if (!rd || !rs1 || !rs2) return fail(line_no, "bad register");
          inst.rd = *rd;
          inst.rs1 = *rs1;
          inst.rs2 = *rs2;
        } else if (ReadsRs1(op)) {  // rd, rs1, imm
          if (!need(3)) return fail(line_no, "expected rd, rs1, imm");
          const auto rd = ParseReg(operands[0]);
          const auto rs1 = ParseReg(operands[1]);
          const auto imm = ParseInt(operands[2]);
          if (!rd || !rs1 || !imm) return fail(line_no, "bad operand");
          inst.rd = *rd;
          inst.rs1 = *rs1;
          inst.imm = static_cast<std::int32_t>(*imm);
        } else {  // li/lui: rd, imm
          if (!need(2)) return fail(line_no, "expected rd, imm");
          const auto rd = ParseReg(operands[0]);
          const auto imm = ParseInt(operands[1]);
          if (!rd || !imm) return fail(line_no, "bad operand");
          inst.rd = *rd;
          inst.imm = static_cast<std::int32_t>(*imm);
        }
        break;
      }
      case OpClass::kLoad: {
        if (!need(3)) return fail(line_no, "expected rd, offset(rbase)");
        const auto rd = ParseReg(operands[0]);
        const auto off = ParseInt(operands[1]);
        const auto base = ParseReg(operands[2]);
        if (!rd || !off || !base) return fail(line_no, "bad operand");
        inst.rd = *rd;
        inst.rs1 = *base;
        inst.imm = static_cast<std::int32_t>(*off);
        break;
      }
      case OpClass::kStore: {
        if (!need(3)) return fail(line_no, "expected rvalue, offset(rbase)");
        const auto rv = ParseReg(operands[0]);
        const auto off = ParseInt(operands[1]);
        const auto base = ParseReg(operands[2]);
        if (!rv || !off || !base) return fail(line_no, "bad operand");
        inst.rs2 = *rv;
        inst.rs1 = *base;
        inst.imm = static_cast<std::int32_t>(*off);
        break;
      }
      case OpClass::kBranch: {
        if (!need(3)) return fail(line_no, "expected rs1, rs2, target");
        const auto rs1 = ParseReg(operands[0]);
        const auto rs2 = ParseReg(operands[1]);
        if (!rs1 || !rs2) return fail(line_no, "bad register");
        inst.rs1 = *rs1;
        inst.rs2 = *rs2;
        fixups.push_back({program.size(), operands[2], line_no});
        break;
      }
      case OpClass::kJump: {
        if (op == Opcode::kJal) {
          if (!need(2)) return fail(line_no, "expected rd, target");
          const auto rd = ParseReg(operands[0]);
          if (!rd) return fail(line_no, "bad register");
          inst.rd = *rd;
          fixups.push_back({program.size(), operands[1], line_no});
        } else {
          if (!need(1)) return fail(line_no, "expected target");
          fixups.push_back({program.size(), operands[0], line_no});
        }
        break;
      }
    }
    program.Append(inst);
  }

  // Pass two: resolve branch/jump targets.
  std::vector<Instruction> code = program.code();
  for (const Fixup& fx : fixups) {
    std::int32_t target = 0;
    if (const auto it = program.labels().find(fx.target);
        it != program.labels().end()) {
      target = static_cast<std::int32_t>(it->second);
    } else if (const auto num = ParseInt(fx.target)) {
      target = static_cast<std::int32_t>(*num);
    } else {
      return AssemblyResult{
          AssemblyError{fx.line, "undefined label '" + fx.target + "'"}};
    }
    code[fx.inst_index].imm = target;
  }

  Program resolved(std::move(code));
  for (const auto& [name, index] : program.labels()) {
    resolved.AddLabel(name, index);
  }
  for (const auto& [addr, value] : program.initial_memory()) {
    resolved.SetInitialWord(addr, value);
  }
  return AssemblyResult{std::move(resolved)};
}

Program AssembleOrDie(std::string_view source) {
  auto result = Assemble(source);
  if (auto* err = std::get_if<AssemblyError>(&result)) {
    throw std::runtime_error("assembly failed: " + err->ToString());
  }
  return std::get<Program>(std::move(result));
}

}  // namespace ultra::isa
