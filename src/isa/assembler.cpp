#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ultra::isa {
namespace {

/// Splits a statement into tokens, treating ',', '(' and ')' as separators.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == '(' ||
        c == ')') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

/// Syntax-only register parse ("rN"); range checking against the target
/// machine's register count happens at the use site, where it can produce a
/// distinct diagnostic.
std::optional<int> ParseRegIndex(std::string_view tok) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) return std::nullopt;
  int value = 0;
  const auto* begin = tok.data() + 1;
  const auto* end = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  if (value < 0) return std::nullopt;
  return value;
}

std::optional<std::int64_t> ParseInt(std::string_view tok) {
  std::int64_t value = 0;
  int base = 10;
  std::string_view body = tok;
  bool negative = false;
  if (!body.empty() && (body[0] == '-' || body[0] == '+')) {
    negative = body[0] == '-';
    body.remove_prefix(1);
  }
  if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    base = 16;
    body.remove_prefix(2);
  }
  if (body.empty()) return std::nullopt;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value, base);
  if (ec != std::errc{} || ptr != body.data() + body.size()) {
    return std::nullopt;
  }
  return negative ? -value : value;
}

/// A pending reference to a label (or numeric target) for pass two.
struct Fixup {
  std::size_t inst_index;
  std::string target;
  int line;
};

}  // namespace

std::string AssemblyError::ToString() const {
  std::ostringstream os;
  os << "line " << line << ": " << message;
  if (!token.empty()) os << " (token '" << token << "')";
  return os.str();
}

AssemblyResult Assemble(std::string_view source, int num_regs) {
  Program program;
  std::vector<Fixup> fixups;
  // The encoding caps the register file; a larger request can only ever
  // reference the encodable subset.
  const int reg_limit = std::min(num_regs, kMaxLogicalRegisters);

  const auto fail = [](int line, std::string token, std::string msg) {
    return AssemblyResult{
        AssemblyError{line, std::move(token), std::move(msg)}};
  };

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? source.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;

    auto tokens = Tokenize(line);
    if (tokens.empty()) continue;

    // Labels: "name:" possibly followed by an instruction on the same line.
    while (!tokens.empty() && tokens.front().back() == ':') {
      std::string name = tokens.front().substr(0, tokens.front().size() - 1);
      if (name.empty()) return fail(line_no, tokens.front(), "empty label");
      program.AddLabel(std::move(name), program.size());
      tokens.erase(tokens.begin());
    }
    if (tokens.empty()) continue;

    const std::string& mnemonic = tokens[0];

    if (mnemonic == ".word") {
      if (tokens.size() != 3) {
        return fail(line_no, mnemonic, ".word needs ADDR VALUE");
      }
      const auto addr = ParseInt(tokens[1]);
      if (!addr) return fail(line_no, tokens[1], "bad .word address");
      const auto value = ParseInt(tokens[2]);
      if (!value) return fail(line_no, tokens[2], "bad .word value");
      program.SetInitialWord(static_cast<Word>(*addr),
                             static_cast<Word>(*value));
      continue;
    }

    const Opcode op = OpcodeFromName(mnemonic);
    if (op == Opcode::kCount_) {
      return fail(line_no, mnemonic, "unknown mnemonic");
    }

    Instruction inst;
    inst.op = op;
    const auto operands = std::vector<std::string>(tokens.begin() + 1,
                                                   tokens.end());
    const auto need = [&](std::size_t n) { return operands.size() == n; };

    // Operand parsers that record the offending token on failure so every
    // diagnostic names what was actually written, not just the line.
    AssemblyError err;
    const auto reg = [&](const std::string& tok, RegId& out) {
      const auto idx = ParseRegIndex(tok);
      if (!idx) {
        err = {line_no, tok, "expected a register (rN)"};
        return false;
      }
      if (*idx >= reg_limit) {
        err = {line_no, tok,
               "register out of range: machine has " +
                   std::to_string(reg_limit) + " logical registers (r0..r" +
                   std::to_string(reg_limit - 1) + ")"};
        return false;
      }
      out = static_cast<RegId>(*idx);
      return true;
    };
    const auto imm32 = [&](const std::string& tok, std::int32_t& out) {
      const auto value = ParseInt(tok);
      if (!value) {
        err = {line_no, tok, "expected an integer immediate"};
        return false;
      }
      out = static_cast<std::int32_t>(*value);
      return true;
    };

    switch (ClassOf(op)) {
      case OpClass::kNop:
      case OpClass::kHalt:
        if (!need(0)) {
          return fail(line_no, operands[0], "operands not allowed");
        }
        break;
      case OpClass::kIntSimple:
      case OpClass::kIntMul:
      case OpClass::kIntDiv: {
        if (ReadsRs2(op)) {  // rd, rs1, rs2
          if (!need(3)) return fail(line_no, mnemonic, "expected rd, rs1, rs2");
          if (!reg(operands[0], inst.rd) || !reg(operands[1], inst.rs1) ||
              !reg(operands[2], inst.rs2)) {
            return AssemblyResult{err};
          }
        } else if (ReadsRs1(op)) {  // rd, rs1, imm
          if (!need(3)) return fail(line_no, mnemonic, "expected rd, rs1, imm");
          if (!reg(operands[0], inst.rd) || !reg(operands[1], inst.rs1) ||
              !imm32(operands[2], inst.imm)) {
            return AssemblyResult{err};
          }
        } else {  // li/lui: rd, imm
          if (!need(2)) return fail(line_no, mnemonic, "expected rd, imm");
          if (!reg(operands[0], inst.rd) || !imm32(operands[1], inst.imm)) {
            return AssemblyResult{err};
          }
        }
        break;
      }
      case OpClass::kLoad: {
        if (!need(3)) {
          return fail(line_no, mnemonic, "expected rd, offset(rbase)");
        }
        if (!reg(operands[0], inst.rd) || !imm32(operands[1], inst.imm) ||
            !reg(operands[2], inst.rs1)) {
          return AssemblyResult{err};
        }
        break;
      }
      case OpClass::kStore: {
        if (!need(3)) {
          return fail(line_no, mnemonic, "expected rvalue, offset(rbase)");
        }
        if (!reg(operands[0], inst.rs2) || !imm32(operands[1], inst.imm) ||
            !reg(operands[2], inst.rs1)) {
          return AssemblyResult{err};
        }
        break;
      }
      case OpClass::kBranch: {
        if (!need(3)) {
          return fail(line_no, mnemonic, "expected rs1, rs2, target");
        }
        if (!reg(operands[0], inst.rs1) || !reg(operands[1], inst.rs2)) {
          return AssemblyResult{err};
        }
        fixups.push_back({program.size(), operands[2], line_no});
        break;
      }
      case OpClass::kJump: {
        if (op == Opcode::kJal) {
          if (!need(2)) return fail(line_no, mnemonic, "expected rd, target");
          if (!reg(operands[0], inst.rd)) return AssemblyResult{err};
          fixups.push_back({program.size(), operands[1], line_no});
        } else {
          if (!need(1)) return fail(line_no, mnemonic, "expected target");
          fixups.push_back({program.size(), operands[0], line_no});
        }
        break;
      }
    }
    program.Append(inst);
  }

  // Pass two: resolve branch/jump targets.
  std::vector<Instruction> code = program.code();
  for (const Fixup& fx : fixups) {
    std::int32_t target = 0;
    if (const auto it = program.labels().find(fx.target);
        it != program.labels().end()) {
      target = static_cast<std::int32_t>(it->second);
    } else if (const auto num = ParseInt(fx.target)) {
      target = static_cast<std::int32_t>(*num);
    } else {
      return AssemblyResult{
          AssemblyError{fx.line, fx.target, "undefined label"}};
    }
    code[fx.inst_index].imm = target;
  }

  Program resolved(std::move(code));
  for (const auto& [name, index] : program.labels()) {
    resolved.AddLabel(name, index);
  }
  for (const auto& [addr, value] : program.initial_memory()) {
    resolved.SetInitialWord(addr, value);
  }
  return AssemblyResult{std::move(resolved)};
}

Program AssembleOrDie(std::string_view source, int num_regs) {
  auto result = Assemble(source, num_regs);
  if (auto* err = std::get_if<AssemblyError>(&result)) {
    throw std::runtime_error("assembly failed: " + err->ToString());
  }
  return std::get<Program>(std::move(result));
}

}  // namespace ultra::isa
