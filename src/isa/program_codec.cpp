#include "isa/program_codec.hpp"

#include <algorithm>

namespace ultra::isa {

void EncodeProgram(persist::Encoder& e, const Program& program) {
  e.U32(static_cast<std::uint32_t>(program.size()));
  for (const Instruction& inst : program.code()) {
    e.U64(Encode(inst));
  }
  e.U32(static_cast<std::uint32_t>(program.initial_memory().size()));
  for (const auto& [addr, value] : program.initial_memory()) {
    e.U32(addr);
    e.U32(value);
  }
  e.U32(static_cast<std::uint32_t>(program.labels().size()));
  for (const auto& [name, index] : program.labels()) {
    e.Str(name);
    e.U64(index);
  }
}

Program DecodeProgram(persist::Decoder& d) {
  const std::uint32_t code_size = d.U32();
  std::vector<Instruction> code;
  // Clamp by the bytes present (8 per instruction): a corrupt count must
  // underflow into FormatError, never drive a huge allocation.
  code.reserve(std::min<std::size_t>(code_size, d.remaining() / 8));
  for (std::uint32_t i = 0; i < code_size; ++i) {
    const auto inst = Decode(d.U64());
    if (!inst) throw persist::FormatError("undecodable instruction");
    code.push_back(*inst);
  }
  Program program(std::move(code));
  const std::uint32_t mem_size = d.U32();
  for (std::uint32_t i = 0; i < mem_size; ++i) {
    const Word addr = d.U32();
    const Word value = d.U32();
    program.SetInitialWord(addr, value);
  }
  const std::uint32_t num_labels = d.U32();
  for (std::uint32_t i = 0; i < num_labels; ++i) {
    std::string name = d.Str();
    const std::uint64_t index = d.U64();
    program.AddLabel(std::move(name), static_cast<std::size_t>(index));
  }
  return program;
}

std::uint64_t FingerprintProgram(const Program& program) {
  persist::Encoder e;
  EncodeProgram(e, program);
  return persist::Fnv1a64(e.bytes());
}

}  // namespace ultra::isa
