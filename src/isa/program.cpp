#include "isa/program.hpp"

#include <sstream>

namespace ultra::isa {

std::string Program::Disassemble() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    for (const auto& [name, index] : labels_) {
      if (index == i) os << name << ":\n";
    }
    os << "  " << i << ": " << ToString(code_[i]) << "\n";
  }
  return os.str();
}

}  // namespace ultra::isa
