// Umbrella header for the reference ISA library.
#pragma once

#include "isa/alu.hpp"          // IWYU pragma: export
#include "isa/assembler.hpp"    // IWYU pragma: export
#include "isa/instruction.hpp"  // IWYU pragma: export
#include "isa/latency.hpp"      // IWYU pragma: export
#include "isa/opcode.hpp"       // IWYU pragma: export
#include "isa/program.hpp"      // IWYU pragma: export
