// Operation latency model.
//
// Figure 3 of the paper fixes the reference latencies: "We assume that
// division takes 10 clock cycles, multiplication 3, and addition 1."
// Loads/stores additionally pay whatever the memory subsystem charges; the
// values here are the execution-station occupancy for the ALU portion.
#pragma once

#include <array>

#include "isa/opcode.hpp"

namespace ultra::isa {

class LatencyModel {
 public:
  /// Builds the Figure 3 model: simple int 1, mul 3, div/rem 10, memory
  /// address-generation 1, branches/jumps 1, nop/halt 1.
  LatencyModel();

  /// Overrides the latency of one opcode class (must be >= 1).
  void Set(OpClass cls, int cycles);

  [[nodiscard]] int Cycles(OpClass cls) const {
    return table_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] int Cycles(Opcode op) const { return Cycles(ClassOf(op)); }

 private:
  std::array<int, 9> table_;
};

}  // namespace ultra::isa
