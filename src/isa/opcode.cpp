#include "isa/opcode.hpp"

#include <array>

namespace ultra::isa {
namespace {

struct OpInfo {
  std::string_view name;
  OpClass cls;
  bool reads_rs1;
  bool reads_rs2;
  bool writes_rd;
  bool uses_imm;
};

constexpr std::array<OpInfo, kNumOpcodes> kOpInfo = {{
    /* kNop   */ {"nop", OpClass::kNop, false, false, false, false},
    /* kHalt  */ {"halt", OpClass::kHalt, false, false, false, false},
    /* kAdd   */ {"add", OpClass::kIntSimple, true, true, true, false},
    /* kSub   */ {"sub", OpClass::kIntSimple, true, true, true, false},
    /* kMul   */ {"mul", OpClass::kIntMul, true, true, true, false},
    /* kDiv   */ {"div", OpClass::kIntDiv, true, true, true, false},
    /* kRem   */ {"rem", OpClass::kIntDiv, true, true, true, false},
    /* kAnd   */ {"and", OpClass::kIntSimple, true, true, true, false},
    /* kOr    */ {"or", OpClass::kIntSimple, true, true, true, false},
    /* kXor   */ {"xor", OpClass::kIntSimple, true, true, true, false},
    /* kSll   */ {"sll", OpClass::kIntSimple, true, true, true, false},
    /* kSrl   */ {"srl", OpClass::kIntSimple, true, true, true, false},
    /* kSra   */ {"sra", OpClass::kIntSimple, true, true, true, false},
    /* kSlt   */ {"slt", OpClass::kIntSimple, true, true, true, false},
    /* kSltu  */ {"sltu", OpClass::kIntSimple, true, true, true, false},
    /* kAddi  */ {"addi", OpClass::kIntSimple, true, false, true, true},
    /* kAndi  */ {"andi", OpClass::kIntSimple, true, false, true, true},
    /* kOri   */ {"ori", OpClass::kIntSimple, true, false, true, true},
    /* kXori  */ {"xori", OpClass::kIntSimple, true, false, true, true},
    /* kSlli  */ {"slli", OpClass::kIntSimple, true, false, true, true},
    /* kSrli  */ {"srli", OpClass::kIntSimple, true, false, true, true},
    /* kSrai  */ {"srai", OpClass::kIntSimple, true, false, true, true},
    /* kSlti  */ {"slti", OpClass::kIntSimple, true, false, true, true},
    /* kLui   */ {"lui", OpClass::kIntSimple, false, false, true, true},
    /* kLi    */ {"li", OpClass::kIntSimple, false, false, true, true},
    /* kLoad  */ {"ld", OpClass::kLoad, true, false, true, true},
    /* kStore */ {"st", OpClass::kStore, true, true, false, true},
    /* kBeq   */ {"beq", OpClass::kBranch, true, true, false, true},
    /* kBne   */ {"bne", OpClass::kBranch, true, true, false, true},
    /* kBlt   */ {"blt", OpClass::kBranch, true, true, false, true},
    /* kBge   */ {"bge", OpClass::kBranch, true, true, false, true},
    /* kJmp   */ {"jmp", OpClass::kJump, false, false, false, true},
    /* kJal   */ {"jal", OpClass::kJump, false, false, true, true},
}};

const OpInfo& Info(Opcode op) { return kOpInfo[static_cast<std::size_t>(op)]; }

}  // namespace

std::string_view OpcodeName(Opcode op) { return Info(op).name; }

Opcode OpcodeFromName(std::string_view name) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    if (kOpInfo[static_cast<std::size_t>(i)].name == name) {
      return static_cast<Opcode>(i);
    }
  }
  return Opcode::kCount_;
}

OpClass ClassOf(Opcode op) { return Info(op).cls; }
bool ReadsRs1(Opcode op) { return Info(op).reads_rs1; }
bool ReadsRs2(Opcode op) { return Info(op).reads_rs2; }
bool WritesRd(Opcode op) { return Info(op).writes_rd; }
bool UsesImm(Opcode op) { return Info(op).uses_imm; }

bool IsConditionalBranch(Opcode op) {
  return ClassOf(op) == OpClass::kBranch;
}

bool IsControlFlow(Opcode op) {
  const OpClass c = ClassOf(op);
  return c == OpClass::kBranch || c == OpClass::kJump;
}

bool IsMemory(Opcode op) {
  const OpClass c = ClassOf(op);
  return c == OpClass::kLoad || c == OpClass::kStore;
}

}  // namespace ultra::isa
