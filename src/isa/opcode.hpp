// Opcode definitions for the Ultrascalar reference ISA.
//
// The paper (Section 7) evaluates "a very simple RISC instruction set
// architecture" with 32 32-bit logical registers, no floating point, where
// every instruction reads at most two registers and writes at most one.
// This ISA follows those constraints exactly.
#pragma once

#include <cstdint>
#include <string_view>

namespace ultra::isa {

/// Machine word. The reference architecture is 32-bit; arithmetic wraps
/// modulo 2^32 and signed operations use two's complement.
using Word = std::uint32_t;
using SWord = std::int32_t;

/// Logical register identifier. The ISA supports up to 64 logical registers
/// (the paper treats L as a scaling parameter; the empirical study uses 32).
using RegId = std::uint8_t;

inline constexpr int kMaxLogicalRegisters = 64;
inline constexpr int kDefaultLogicalRegisters = 32;

/// Every opcode of the reference ISA. Each reads <= 2 registers and
/// writes <= 1 register (the Ultrascalar II datapath of Figure 7 depends on
/// this bound: two argument columns and one result row per station).
enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt,
  // Register-register ALU.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSra,
  kSlt,   // set-if-less-than, signed
  kSltu,  // set-if-less-than, unsigned
  // Register-immediate ALU.
  kAddi,
  kAndi,
  kOri,
  kXori,
  kSlli,
  kSrli,
  kSrai,
  kSlti,
  kLui,  // load upper immediate (reads no registers)
  kLi,   // load immediate (reads no registers)
  // Memory.
  kLoad,   // rd = mem[rs1 + imm]
  kStore,  // mem[rs1 + imm] = rs2
  // Control flow. Branch targets are instruction indices (imm is absolute).
  kBeq,
  kBne,
  kBlt,
  kBge,
  kJmp,  // unconditional, reads nothing, writes nothing
  kJal,  // jump and link: rd = pc + 1, then jump
  kCount_,
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount_);

/// Broad class of an opcode, used by the latency model and the schedulers.
enum class OpClass : std::uint8_t {
  kNop,
  kHalt,
  kIntSimple,  // add/sub/logic/shift/compare: 1 cycle in Figure 3
  kIntMul,     // 3 cycles in Figure 3
  kIntDiv,     // 10 cycles in Figure 3
  kLoad,
  kStore,
  kBranch,
  kJump,
};

/// Returns the mnemonic for @p op (e.g. "add").
std::string_view OpcodeName(Opcode op);

/// Parses a mnemonic; returns Opcode::kCount_ when unknown.
Opcode OpcodeFromName(std::string_view name);

/// Returns the broad class of @p op.
OpClass ClassOf(Opcode op);

/// True when @p op reads rs1 as a source register.
bool ReadsRs1(Opcode op);
/// True when @p op reads rs2 as a source register.
bool ReadsRs2(Opcode op);
/// True when @p op writes a destination register rd.
bool WritesRd(Opcode op);
/// True when @p op uses the immediate field.
bool UsesImm(Opcode op);

/// True for conditional branches (kBeq..kBge).
bool IsConditionalBranch(Opcode op);
/// True for any control transfer (conditional branch, kJmp, kJal).
bool IsControlFlow(Opcode op);
/// True for kLoad / kStore.
bool IsMemory(Opcode op);

}  // namespace ultra::isa
