// Program container: a sequence of instructions plus initial data memory.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace ultra::isa {

/// A program for the reference machine. Instructions are addressed by index
/// (the fetch unit is word-addressed); data memory is byte-addressed.
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Instruction> code) : code_(std::move(code)) {}

  [[nodiscard]] const std::vector<Instruction>& code() const { return code_; }
  [[nodiscard]] std::size_t size() const { return code_.size(); }
  [[nodiscard]] bool empty() const { return code_.empty(); }
  [[nodiscard]] const Instruction& at(std::size_t pc) const {
    return code_.at(pc);
  }

  void Append(const Instruction& inst) { code_.push_back(inst); }

  /// Initial data-memory image (sparse, byte address -> 32-bit word stored
  /// at that address).
  [[nodiscard]] const std::map<Word, Word>& initial_memory() const {
    return initial_memory_;
  }
  void SetInitialWord(Word byte_address, Word value) {
    initial_memory_[byte_address] = value;
  }

  /// Named label -> instruction index, populated by the assembler.
  [[nodiscard]] const std::map<std::string, std::size_t>& labels() const {
    return labels_;
  }
  void AddLabel(std::string name, std::size_t index) {
    labels_.emplace(std::move(name), index);
  }

  /// Full disassembly listing, one instruction per line.
  [[nodiscard]] std::string Disassemble() const;

 private:
  std::vector<Instruction> code_;
  std::map<Word, Word> initial_memory_;
  std::map<std::string, std::size_t> labels_;
};

}  // namespace ultra::isa
