#include "isa/alu.hpp"

#include <cassert>
#include <limits>

namespace ultra::isa {
namespace {

Word SignedDiv(Word a, Word b) {
  if (b == 0) return ~Word{0};
  const auto sa = static_cast<SWord>(a);
  const auto sb = static_cast<SWord>(b);
  // INT_MIN / -1 overflows in C++; the reference machine wraps.
  if (sa == std::numeric_limits<SWord>::min() && sb == -1) return a;
  return static_cast<Word>(sa / sb);
}

Word SignedRem(Word a, Word b) {
  if (b == 0) return a;
  const auto sa = static_cast<SWord>(a);
  const auto sb = static_cast<SWord>(b);
  if (sa == std::numeric_limits<SWord>::min() && sb == -1) return 0;
  return static_cast<Word>(sa % sb);
}

}  // namespace

Word AluResult(const Instruction& inst, Word a, Word b) {
  const auto imm = static_cast<Word>(inst.imm);
  switch (inst.op) {
    case Opcode::kAdd:
      return a + b;
    case Opcode::kSub:
      return a - b;
    case Opcode::kMul:
      return a * b;
    case Opcode::kDiv:
      return SignedDiv(a, b);
    case Opcode::kRem:
      return SignedRem(a, b);
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kSll:
      return a << (b & 31u);
    case Opcode::kSrl:
      return a >> (b & 31u);
    case Opcode::kSra:
      return static_cast<Word>(static_cast<SWord>(a) >>
                               static_cast<int>(b & 31u));
    case Opcode::kSlt:
      return static_cast<SWord>(a) < static_cast<SWord>(b) ? 1u : 0u;
    case Opcode::kSltu:
      return a < b ? 1u : 0u;
    case Opcode::kAddi:
      return a + imm;
    case Opcode::kAndi:
      return a & imm;
    case Opcode::kOri:
      return a | imm;
    case Opcode::kXori:
      return a ^ imm;
    case Opcode::kSlli:
      return a << (imm & 31u);
    case Opcode::kSrli:
      return a >> (imm & 31u);
    case Opcode::kSrai:
      return static_cast<Word>(static_cast<SWord>(a) >>
                               static_cast<int>(imm & 31u));
    case Opcode::kSlti:
      return static_cast<SWord>(a) < inst.imm ? 1u : 0u;
    case Opcode::kLui:
      return imm << 16;
    case Opcode::kLi:
      return imm;
    default:
      assert(false && "AluResult called on a non-ALU opcode");
      return 0;
  }
}

bool BranchTaken(const Instruction& inst, Word a, Word b) {
  switch (inst.op) {
    case Opcode::kBeq:
      return a == b;
    case Opcode::kBne:
      return a != b;
    case Opcode::kBlt:
      return static_cast<SWord>(a) < static_cast<SWord>(b);
    case Opcode::kBge:
      return static_cast<SWord>(a) >= static_cast<SWord>(b);
    case Opcode::kJmp:
    case Opcode::kJal:
      return true;
    default:
      return false;
  }
}

Word EffectiveAddress(const Instruction& inst, Word base) {
  return base + static_cast<Word>(inst.imm);
}

}  // namespace ultra::isa
