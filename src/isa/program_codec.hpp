// Binary serialization of programs for checkpoints and repro bundles.
//
// Instructions use the fixed 64-bit isa::Encode layout; the initial memory
// image and labels follow in sorted (std::map) order, so the encoding is
// deterministic and FingerprintProgram can key caches and validate restores.
#pragma once

#include <cstdint>

#include "isa/program.hpp"
#include "persist/serial.hpp"

namespace ultra::isa {

void EncodeProgram(persist::Encoder& e, const Program& program);
/// Throws persist::FormatError on truncated or undecodable input.
[[nodiscard]] Program DecodeProgram(persist::Decoder& d);

/// FNV-1a over the serialized program.
[[nodiscard]] std::uint64_t FingerprintProgram(const Program& program);

}  // namespace ultra::isa
