#include "isa/instruction.hpp"

#include <sstream>

namespace ultra::isa {

Instruction MakeRRR(Opcode op, RegId rd, RegId rs1, RegId rs2) {
  return Instruction{.op = op, .rd = rd, .rs1 = rs1, .rs2 = rs2, .imm = 0};
}

Instruction MakeRRI(Opcode op, RegId rd, RegId rs1, std::int32_t imm) {
  return Instruction{.op = op, .rd = rd, .rs1 = rs1, .rs2 = 0, .imm = imm};
}

Instruction MakeLi(RegId rd, std::int32_t imm) {
  return Instruction{.op = Opcode::kLi, .rd = rd, .rs1 = 0, .rs2 = 0,
                     .imm = imm};
}

Instruction MakeLoad(RegId rd, RegId base, std::int32_t offset) {
  return Instruction{.op = Opcode::kLoad, .rd = rd, .rs1 = base, .rs2 = 0,
                     .imm = offset};
}

Instruction MakeStore(RegId value, RegId base, std::int32_t offset) {
  // STORE reads rs1 = base address and rs2 = value to store.
  return Instruction{.op = Opcode::kStore, .rd = 0, .rs1 = base, .rs2 = value,
                     .imm = offset};
}

Instruction MakeBranch(Opcode op, RegId rs1, RegId rs2, std::int32_t target) {
  return Instruction{.op = op, .rd = 0, .rs1 = rs1, .rs2 = rs2, .imm = target};
}

Instruction MakeJmp(std::int32_t target) {
  return Instruction{.op = Opcode::kJmp, .rd = 0, .rs1 = 0, .rs2 = 0,
                     .imm = target};
}

Instruction MakeHalt() { return Instruction{.op = Opcode::kHalt}; }
Instruction MakeNop() { return Instruction{.op = Opcode::kNop}; }

std::uint64_t Encode(const Instruction& inst) {
  const auto imm_bits =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(inst.imm));
  return static_cast<std::uint64_t>(inst.op) |
         (static_cast<std::uint64_t>(inst.rd) << 8) |
         (static_cast<std::uint64_t>(inst.rs1) << 16) |
         (static_cast<std::uint64_t>(inst.rs2) << 24) | (imm_bits << 32);
}

std::optional<Instruction> Decode(std::uint64_t word) {
  const auto op_raw = static_cast<std::uint8_t>(word & 0xff);
  if (op_raw >= static_cast<std::uint8_t>(Opcode::kCount_)) {
    return std::nullopt;
  }
  Instruction inst;
  inst.op = static_cast<Opcode>(op_raw);
  inst.rd = static_cast<RegId>((word >> 8) & 0xff);
  inst.rs1 = static_cast<RegId>((word >> 16) & 0xff);
  inst.rs2 = static_cast<RegId>((word >> 24) & 0xff);
  inst.imm = static_cast<std::int32_t>(
      static_cast<std::uint32_t>((word >> 32) & 0xffffffffu));
  if (inst.rd >= kMaxLogicalRegisters || inst.rs1 >= kMaxLogicalRegisters ||
      inst.rs2 >= kMaxLogicalRegisters) {
    return std::nullopt;
  }
  return inst;
}

std::string ToString(const Instruction& inst) {
  std::ostringstream os;
  os << OpcodeName(inst.op);
  switch (ClassOf(inst.op)) {
    case OpClass::kNop:
    case OpClass::kHalt:
      break;
    case OpClass::kIntSimple:
    case OpClass::kIntMul:
    case OpClass::kIntDiv:
      if (ReadsRs2(inst.op)) {
        os << " r" << int(inst.rd) << ", r" << int(inst.rs1) << ", r"
           << int(inst.rs2);
      } else if (ReadsRs1(inst.op)) {
        os << " r" << int(inst.rd) << ", r" << int(inst.rs1) << ", "
           << inst.imm;
      } else {
        os << " r" << int(inst.rd) << ", " << inst.imm;
      }
      break;
    case OpClass::kLoad:
      os << " r" << int(inst.rd) << ", " << inst.imm << "(r" << int(inst.rs1)
         << ")";
      break;
    case OpClass::kStore:
      os << " r" << int(inst.rs2) << ", " << inst.imm << "(r" << int(inst.rs1)
         << ")";
      break;
    case OpClass::kBranch:
      os << " r" << int(inst.rs1) << ", r" << int(inst.rs2) << ", "
         << inst.imm;
      break;
    case OpClass::kJump:
      if (inst.op == Opcode::kJal) {
        os << " r" << int(inst.rd) << ", " << inst.imm;
      } else {
        os << " " << inst.imm;
      }
      break;
  }
  return os.str();
}

}  // namespace ultra::isa
