// Binary codec for MetricsSnapshot, used by the sweep journal (each
// completed point's metrics ride in its journal record so a resumed sweep
// exports byte-identical CSV/JSON metric trailers) and by repro bundles.
#pragma once

#include "persist/serial.hpp"
#include "telemetry/metrics.hpp"

namespace ultra::telemetry {

void EncodeSnapshot(persist::Encoder& e, const MetricsSnapshot& snapshot);
[[nodiscard]] MetricsSnapshot DecodeSnapshot(persist::Decoder& d);

}  // namespace ultra::telemetry
