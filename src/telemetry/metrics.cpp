#include "telemetry/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <string>

namespace ultra::telemetry {

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricsRegistry::Metric* MetricsRegistry::Find(
    std::string_view name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

CounterId MetricsRegistry::Counter(std::string_view name) {
  if (const Metric* m = Find(name)) {
    if (m->kind != MetricKind::kCounter) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered as " +
                                  std::string(MetricKindName(m->kind)));
    }
    return CounterId{m->slot};
  }
  const auto slot = static_cast<std::uint32_t>(slot_count_);
  metrics_.push_back(Metric{std::string(name), MetricKind::kCounter, slot,
                            /*bounds_begin=*/0, /*num_bounds=*/0});
  slot_count_ += 1;
  return CounterId{slot};
}

GaugeId MetricsRegistry::Gauge(std::string_view name) {
  if (const Metric* m = Find(name)) {
    if (m->kind != MetricKind::kGauge) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered as " +
                                  std::string(MetricKindName(m->kind)));
    }
    return GaugeId{m->slot};
  }
  const auto slot = static_cast<std::uint32_t>(slot_count_);
  metrics_.push_back(Metric{std::string(name), MetricKind::kGauge, slot,
                            /*bounds_begin=*/0, /*num_bounds=*/0});
  slot_count_ += 1;
  return GaugeId{slot};
}

HistogramId MetricsRegistry::Histogram(std::string_view name,
                                       std::span<const std::uint64_t> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("histogram '" + std::string(name) +
                                "' needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw std::invalid_argument("histogram '" + std::string(name) +
                                  "' bounds must be strictly increasing");
    }
  }
  if (const Metric* m = Find(name)) {
    if (m->kind != MetricKind::kHistogram) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered as " +
                                  std::string(MetricKindName(m->kind)));
    }
    const std::span<const std::uint64_t> existing(
        bounds_.data() + m->bounds_begin, m->num_bounds);
    if (!std::ranges::equal(existing, bounds)) {
      throw std::invalid_argument("histogram '" + std::string(name) +
                                  "' re-registered with different bounds");
    }
    return HistogramId{m->slot, m->bounds_begin, m->num_bounds};
  }
  const auto slot = static_cast<std::uint32_t>(slot_count_);
  const auto bounds_begin = static_cast<std::uint32_t>(bounds_.size());
  const auto num_bounds = static_cast<std::uint32_t>(bounds.size());
  bounds_.insert(bounds_.end(), bounds.begin(), bounds.end());
  metrics_.push_back(
      Metric{std::string(name), MetricKind::kHistogram, slot, bounds_begin,
             num_bounds});
  slot_count_ += bounds.size() + 3;  // Buckets + overflow + count + sum.
  return HistogramId{slot, bounds_begin, num_bounds};
}

MetricsSnapshot MetricsRegistry::Snapshot(
    std::span<const std::uint64_t> slots) const {
  MetricsSnapshot snap;
  snap.metrics.reserve(metrics_.size());
  for (const Metric& m : metrics_) {
    MetricValue v;
    v.name = m.name;
    v.kind = m.kind;
    if (m.kind == MetricKind::kHistogram) {
      v.bounds.assign(bounds_.begin() + m.bounds_begin,
                      bounds_.begin() + m.bounds_begin + m.num_bounds);
      v.buckets.assign(slots.begin() + m.slot,
                       slots.begin() + m.slot + m.num_bounds + 1);
      v.count = slots[m.slot + m.num_bounds + 1];
      v.sum = slots[m.slot + m.num_bounds + 2];
    } else {
      v.value = slots[m.slot];
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const MetricValue& o : other.metrics) {
    MetricValue* mine = nullptr;
    for (MetricValue& m : metrics) {
      if (m.name == o.name) {
        mine = &m;
        break;
      }
    }
    if (mine == nullptr) {
      metrics.push_back(o);
      continue;
    }
    if (mine->kind != o.kind) {
      throw std::invalid_argument("snapshot merge: metric '" + o.name +
                                  "' has mismatched kinds");
    }
    switch (o.kind) {
      case MetricKind::kCounter:
        mine->value += o.value;
        break;
      case MetricKind::kGauge:
        mine->value = std::max(mine->value, o.value);
        break;
      case MetricKind::kHistogram: {
        if (mine->bounds != o.bounds) {
          throw std::invalid_argument("snapshot merge: histogram '" + o.name +
                                      "' has mismatched bounds");
        }
        for (std::size_t i = 0; i < mine->buckets.size(); ++i) {
          mine->buckets[i] += o.buckets[i];
        }
        mine->count += o.count;
        mine->sum += o.sum;
        break;
      }
    }
  }
}

void MetricSheet::Bind(const MetricsRegistry* registry) {
  if (registry == nullptr) {
    registry_ = nullptr;
    slots_.clear();
    data_ = nullptr;
    bounds_data_ = nullptr;
    return;
  }
  if (registry_ != registry) {
    slots_.assign(registry->slot_count(), 0);
  } else {
    slots_.resize(registry->slot_count(), 0);
  }
  registry_ = registry;
  data_ = slots_.data();
  bounds_data_ = registry->bounds_pool().data();
}

void MetricSheet::Reset() { std::ranges::fill(slots_, 0); }

void MetricSheet::RestoreSlots(std::span<const std::uint64_t> values) {
  if (registry_ == nullptr) return;
  const std::size_t n = std::min(slots_.size(), values.size());
  for (std::size_t i = 0; i < n; ++i) slots_[i] = values[i];
}

void MetricSheet::MergeFrom(const MetricSheet& other) {
  if (registry_ == nullptr || other.registry_ != registry_) return;
  const std::size_t n = std::min(slots_.size(), other.slots_.size());
  for (const MetricsRegistry::Metric& m : registry_->metrics()) {
    if (m.slot >= n) continue;
    if (m.kind == MetricKind::kGauge) {
      slots_[m.slot] = std::max(slots_[m.slot], other.slots_[m.slot]);
    } else if (m.kind == MetricKind::kCounter) {
      slots_[m.slot] += other.slots_[m.slot];
    } else {
      const std::size_t end = m.slot + m.num_bounds + 3;
      for (std::size_t s = m.slot; s < end && s < n; ++s) {
        slots_[s] += other.slots_[s];
      }
    }
  }
}

MetricsSnapshot MetricSheet::Snapshot() const {
  if (registry_ == nullptr) return {};
  return registry_->Snapshot(slots_);
}

void WriteMetricsText(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const MetricValue& m : snapshot.metrics) {
    if (m.kind == MetricKind::kHistogram) {
      os << m.name << "_count " << m.count << '\n'
         << m.name << "_sum " << m.sum << '\n';
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < m.buckets.size(); ++b) {
        cumulative += m.buckets[b];
        os << m.name << "_le_";
        if (b < m.bounds.size()) {
          os << m.bounds[b];
        } else {
          os << "inf";
        }
        os << ' ' << cumulative << '\n';
      }
    } else {
      os << m.name << ' ' << m.value << '\n';
    }
  }
}

}  // namespace ultra::telemetry
