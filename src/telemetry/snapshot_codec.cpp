#include "telemetry/snapshot_codec.hpp"

#include <algorithm>

namespace ultra::telemetry {

void EncodeSnapshot(persist::Encoder& e, const MetricsSnapshot& snapshot) {
  e.U32(static_cast<std::uint32_t>(snapshot.metrics.size()));
  for (const MetricValue& m : snapshot.metrics) {
    e.Str(m.name);
    e.U8(static_cast<std::uint8_t>(m.kind));
    e.U64(m.value);
    e.U32(static_cast<std::uint32_t>(m.bounds.size()));
    for (const std::uint64_t b : m.bounds) e.U64(b);
    e.U32(static_cast<std::uint32_t>(m.buckets.size()));
    for (const std::uint64_t b : m.buckets) e.U64(b);
    e.U64(m.count);
    e.U64(m.sum);
  }
}

MetricsSnapshot DecodeSnapshot(persist::Decoder& d) {
  MetricsSnapshot snapshot;
  const std::uint32_t n = d.U32();
  // Clamped by the bytes present so corrupt counts cannot force huge
  // allocations; the element loops underflow into FormatError instead.
  snapshot.metrics.reserve(std::min<std::size_t>(n, d.remaining()));
  for (std::uint32_t i = 0; i < n; ++i) {
    MetricValue m;
    m.name = d.Str();
    const std::uint8_t kind = d.U8();
    if (kind > static_cast<std::uint8_t>(MetricKind::kHistogram)) {
      throw persist::FormatError("bad metric kind");
    }
    m.kind = static_cast<MetricKind>(kind);
    m.value = d.U64();
    const std::uint32_t num_bounds = d.U32();
    m.bounds.reserve(std::min<std::size_t>(num_bounds, d.remaining()));
    for (std::uint32_t k = 0; k < num_bounds; ++k) m.bounds.push_back(d.U64());
    const std::uint32_t num_buckets = d.U32();
    m.buckets.reserve(std::min<std::size_t>(num_buckets, d.remaining()));
    for (std::uint32_t k = 0; k < num_buckets; ++k) {
      m.buckets.push_back(d.U64());
    }
    m.count = d.U64();
    m.sum = d.U64();
    snapshot.metrics.push_back(std::move(m));
  }
  return snapshot;
}

}  // namespace ultra::telemetry
