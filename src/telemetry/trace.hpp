// Per-cycle pipeline tracing: a fixed-capacity ring buffer of POD events
// (fetch / rename / issue / complete / commit / squash, checker activity,
// fault injection) with optional cycle-range and station-range filters.
//
// The ring is sized once by the caller; Record() never allocates, so a
// tracer can stay attached across an allocation-audited steady state
// (tests/alloc_test.cpp). When the ring fills, the oldest events are
// overwritten and counted in dropped(); events rejected by a filter are
// counted in filtered(). Iteration is oldest -> newest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace ultra::telemetry {

enum class TraceEventKind : std::uint8_t {
  kFetch = 0,     // Instruction entered a station.
  kRename,        // Operand renamed to an in-flight producer (ideal core).
  kIssue,         // Operands resolved; execution started.
  kComplete,      // Result available (ALU latency or memory response).
  kCommit,        // Instruction retired in order.
  kSquash,        // Instruction discarded (misprediction or forced fault).
  kBatchRetire,   // USII batch commit; payload = instructions retired.
  kCheckerCheck,  // Datapath checker cross-validated this cycle.
  kCheckerResync, // Checker found a divergence; payload = mismatched cells.
  kFaultInject,   // Fault event staged; payload = fault::FaultKind.
};

[[nodiscard]] std::string_view TraceEventKindName(TraceEventKind kind);

/// One pipeline event. POD, 32 bytes; equality makes golden tests easy.
struct TraceEvent {
  std::uint64_t cycle = 0;
  std::uint64_t seq = 0;      // Instruction sequence number (0 if none).
  std::uint64_t payload = 0;  // Kind-specific (see TraceEventKind).
  std::uint32_t pc = 0;       // Program counter (0 if none).
  std::int32_t station = -1;  // Station slot; -1 = core-level event.
  TraceEventKind kind = TraceEventKind::kFetch;
  std::uint8_t op = 0;        // isa::Opcode of the instruction (0 if none).
  std::uint16_t pad = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// One instruction's lifetime reconstructed from its events (see
/// CollectInstrSpans). Used by the Perfetto exporter and the examples that
/// used to keep bespoke per-cycle capture structs.
struct InstrSpan {
  std::uint64_t seq = 0;
  std::uint32_t pc = 0;
  std::int32_t station = -1;
  std::uint8_t op = 0;
  std::uint64_t fetch_cycle = 0;
  std::uint64_t issue_cycle = 0;     // Valid when issued.
  std::uint64_t complete_cycle = 0;  // Valid when completed.
  std::uint64_t end_cycle = 0;       // Commit/squash cycle, else last seen.
  bool issued = false;
  bool completed = false;
  bool retired = false;   // Ended in kCommit.
  bool squashed = false;  // Ended in kSquash.
};

class PipelineTracer {
 public:
  struct Options {
    /// Events retained; the ring is allocated once at this size.
    std::size_t capacity = std::size_t{1} << 16;
    /// Half-open cycle filter [cycle_begin, cycle_end).
    std::uint64_t cycle_begin = 0;
    std::uint64_t cycle_end = std::numeric_limits<std::uint64_t>::max();
    /// Half-open station filter [station_begin, station_end). Core-level
    /// events (station < 0) always pass.
    std::int32_t station_begin = 0;
    std::int32_t station_end = std::numeric_limits<std::int32_t>::max();
  };

  PipelineTracer() : PipelineTracer(Options{}) {}
  explicit PipelineTracer(const Options& options);

  void Record(const TraceEvent& e) {
    if (e.cycle < opt_.cycle_begin || e.cycle >= opt_.cycle_end ||
        (e.station >= 0 && (e.station < opt_.station_begin ||
                            e.station >= opt_.station_end))) {
      ++filtered_;
      return;
    }
    ring_[write_] = e;
    if (++write_ == ring_.size()) write_ = 0;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity()).
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Accepted events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Events rejected by the cycle/station filters.
  [[nodiscard]] std::uint64_t filtered() const { return filtered_; }

  /// Drops buffered events and zeroes the drop/filter counters.
  void Clear();

  /// Visits the retained events oldest -> newest.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const std::size_t cap = ring_.size();
    std::size_t idx = (write_ + cap - size_) % cap;
    for (std::size_t i = 0; i < size_; ++i) {
      fn(ring_[idx]);
      if (++idx == cap) idx = 0;
    }
  }

  /// Copies the retained events oldest -> newest.
  [[nodiscard]] std::vector<TraceEvent> Events() const;

 private:
  Options opt_;
  std::vector<TraceEvent> ring_;
  std::size_t write_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t filtered_ = 0;
};

/// Pairs instruction events back into per-instruction lifetimes. Spans are
/// ordered by terminating event (commit order for retired instructions);
/// instructions still in flight at the last event are appended afterwards
/// in station order. Non-instruction events (checker, fault, batch) are
/// ignored. An instruction whose kFetch fell off the ring still yields a
/// span starting at its earliest surviving event.
[[nodiscard]] std::vector<InstrSpan> CollectInstrSpans(
    std::span<const TraceEvent> events);

}  // namespace ultra::telemetry
