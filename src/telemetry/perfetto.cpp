#include "telemetry/perfetto.hpp"

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace ultra::telemetry {
namespace {

/// Pseudo-tid hosting core-level instant events (station == -1).
constexpr std::int64_t kCoreTid = 1'000'000;
constexpr int kPid = 1;

void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  }

  void Emit(const std::string& line) {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << line;
  }

  void Finish() { os_ << "\n]}\n"; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string Metadata(std::string_view what, std::int64_t tid,
                     std::string_view name, bool with_tid) {
  std::string line = "{\"ph\":\"M\",\"pid\":" + std::to_string(kPid);
  if (with_tid) line += ",\"tid\":" + std::to_string(tid);
  line += ",\"name\":\"";
  line += what;
  line += "\",\"args\":{\"name\":\"";
  AppendEscaped(line, name);
  line += "\"}}";
  return line;
}

std::string DefaultLabel(const InstrSpan& s) {
  return "op" + std::to_string(s.op) + " seq=" + std::to_string(s.seq);
}

}  // namespace

void WritePerfettoTrace(std::ostream& os, std::span<const TraceEvent> events,
                        const PerfettoOptions& options) {
  EventWriter w(os);
  w.Emit(Metadata("process_name", 0, options.process_name,
                  /*with_tid=*/false));

  // Thread-name metadata for every station that appears, ascending, then
  // the pseudo-thread for core-level events if any exist.
  std::set<std::int32_t> stations;
  bool any_core_events = false;
  for (const TraceEvent& e : events) {
    if (e.station >= 0) {
      stations.insert(e.station);
    } else {
      any_core_events = true;
    }
  }
  for (const std::int32_t st : stations) {
    w.Emit(Metadata("thread_name", st, "station " + std::to_string(st),
                    /*with_tid=*/true));
  }
  if (any_core_events) {
    w.Emit(Metadata("thread_name", kCoreTid, "core", /*with_tid=*/true));
  }

  // Instruction slices, one outer fetch->end slice plus a nested exec
  // slice per span, in span order (commit order for retired instructions).
  for (const InstrSpan& s : CollectInstrSpans(events)) {
    const std::string label = options.slice_label
                                  ? options.slice_label(s)
                                  : DefaultLabel(s);
    const std::uint64_t dur =
        (s.end_cycle >= s.fetch_cycle ? s.end_cycle - s.fetch_cycle : 0) + 1;
    std::string line = "{\"ph\":\"X\",\"pid\":" + std::to_string(kPid) +
                       ",\"tid\":" + std::to_string(s.station) +
                       ",\"ts\":" + std::to_string(s.fetch_cycle) +
                       ",\"dur\":" + std::to_string(dur) + ",\"name\":\"";
    AppendEscaped(line, label);
    line += "\",\"cat\":\"";
    line += s.retired ? "instruction" : (s.squashed ? "squashed" : "inflight");
    line += "\",\"args\":{\"seq\":" + std::to_string(s.seq) +
            ",\"pc\":" + std::to_string(s.pc);
    if (s.issued) line += ",\"issue\":" + std::to_string(s.issue_cycle);
    if (s.completed) line += ",\"complete\":" + std::to_string(s.complete_cycle);
    line += ",\"end\":" + std::to_string(s.end_cycle) + "}}";
    w.Emit(line);

    if (s.issued) {
      const std::uint64_t exec_end =
          s.completed ? s.complete_cycle : s.end_cycle;
      const std::uint64_t exec_dur =
          (exec_end >= s.issue_cycle ? exec_end - s.issue_cycle : 0) + 1;
      std::string exec = "{\"ph\":\"X\",\"pid\":" + std::to_string(kPid) +
                         ",\"tid\":" + std::to_string(s.station) +
                         ",\"ts\":" + std::to_string(s.issue_cycle) +
                         ",\"dur\":" + std::to_string(exec_dur) +
                         ",\"name\":\"exec\",\"cat\":\"exec\",\"args\":{" +
                         "\"seq\":" + std::to_string(s.seq) + "}}";
      w.Emit(exec);
    }
  }

  // Non-instruction events as instants, in stream order.
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kBatchRetire:
      case TraceEventKind::kCheckerCheck:
      case TraceEventKind::kCheckerResync:
      case TraceEventKind::kFaultInject: {
        const std::int64_t tid = e.station >= 0 ? e.station : kCoreTid;
        std::string line = "{\"ph\":\"i\",\"pid\":" + std::to_string(kPid) +
                           ",\"tid\":" + std::to_string(tid) +
                           ",\"ts\":" + std::to_string(e.cycle) +
                           ",\"s\":\"t\",\"name\":\"";
        line += TraceEventKindName(e.kind);
        line += "\",\"args\":{\"payload\":" + std::to_string(e.payload) + "}}";
        w.Emit(line);
        break;
      }
      default:
        break;
    }
  }

  w.Finish();
}

void WritePerfettoTrace(std::ostream& os, const PipelineTracer& tracer,
                        const PerfettoOptions& options) {
  const std::vector<TraceEvent> events = tracer.Events();
  WritePerfettoTrace(os, events, options);
}

}  // namespace ultra::telemetry
