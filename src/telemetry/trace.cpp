#include "telemetry/trace.hpp"

#include <algorithm>
#include <map>

namespace ultra::telemetry {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kFetch:
      return "fetch";
    case TraceEventKind::kRename:
      return "rename";
    case TraceEventKind::kIssue:
      return "issue";
    case TraceEventKind::kComplete:
      return "complete";
    case TraceEventKind::kCommit:
      return "commit";
    case TraceEventKind::kSquash:
      return "squash";
    case TraceEventKind::kBatchRetire:
      return "batch_retire";
    case TraceEventKind::kCheckerCheck:
      return "checker_check";
    case TraceEventKind::kCheckerResync:
      return "checker_resync";
    case TraceEventKind::kFaultInject:
      return "fault_inject";
  }
  return "unknown";
}

PipelineTracer::PipelineTracer(const Options& options) : opt_(options) {
  ring_.resize(std::max<std::size_t>(opt_.capacity, 1));
}

void PipelineTracer::Clear() {
  write_ = 0;
  size_ = 0;
  dropped_ = 0;
  filtered_ = 0;
}

std::vector<TraceEvent> PipelineTracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  ForEach([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

std::vector<InstrSpan> CollectInstrSpans(std::span<const TraceEvent> events) {
  std::vector<InstrSpan> spans;
  // Open instructions keyed by (station, seq): a station holds one
  // instruction at a time, but a seq can revisit a station after a squash.
  std::map<std::pair<std::int32_t, std::uint64_t>, InstrSpan> open;

  const auto start = [&open](const TraceEvent& e) -> InstrSpan& {
    auto [it, inserted] = open.try_emplace({e.station, e.seq});
    InstrSpan& s = it->second;
    if (inserted) {
      s.seq = e.seq;
      s.pc = e.pc;
      s.station = e.station;
      s.op = e.op;
      s.fetch_cycle = e.cycle;
    }
    s.end_cycle = std::max(s.end_cycle, e.cycle);
    return s;
  };

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kFetch: {
        InstrSpan& s = start(e);
        s.fetch_cycle = e.cycle;
        break;
      }
      case TraceEventKind::kRename:
        start(e);
        break;
      case TraceEventKind::kIssue: {
        InstrSpan& s = start(e);
        s.issued = true;
        s.issue_cycle = e.cycle;
        break;
      }
      case TraceEventKind::kComplete: {
        InstrSpan& s = start(e);
        s.completed = true;
        s.complete_cycle = e.cycle;
        break;
      }
      case TraceEventKind::kCommit:
      case TraceEventKind::kSquash: {
        InstrSpan s = start(e);
        s.retired = e.kind == TraceEventKind::kCommit;
        s.squashed = e.kind == TraceEventKind::kSquash;
        s.end_cycle = e.cycle;
        spans.push_back(s);
        open.erase({e.station, e.seq});
        break;
      }
      case TraceEventKind::kBatchRetire:
      case TraceEventKind::kCheckerCheck:
      case TraceEventKind::kCheckerResync:
      case TraceEventKind::kFaultInject:
        break;
    }
  }
  // Still-in-flight instructions, in (station, seq) order.
  for (const auto& [key, s] : open) spans.push_back(s);
  return spans;
}

}  // namespace ultra::telemetry
