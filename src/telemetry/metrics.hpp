// Allocation-free metrics: a MetricsRegistry of named counters, gauges, and
// fixed-bucket histograms, and MetricSheet shards of plain uint64_t slots
// that hot paths increment through pre-registered handles.
//
// Life cycle: register every metric up front (cold path; allocates), bind a
// MetricSheet to the registry, then increment through the handles. A sheet
// that is not bound -- or a handle that was never registered -- turns every
// increment into a single well-predicted branch, so instrumentation compiled
// into a cycle loop costs near nothing when telemetry is off
// (bench_telemetry_overhead gates this at <= 2% cycles/s).
//
// Thread model: a MetricsRegistry is mutated during registration and
// read-only afterwards. A MetricSheet is a single-threaded shard; concurrent
// writers each own one shard and the owner merges them in a fixed order
// (MergeFrom) once the workers are done, which keeps aggregate results
// deterministic at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ultra::telemetry {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view MetricKindName(MetricKind kind);

/// Slot value for a handle that was never registered; every hot-path
/// operation on such a handle is a silent no-op.
inline constexpr std::uint32_t kInvalidSlot = 0xFFFF'FFFFu;

struct CounterId {
  std::uint32_t slot = kInvalidSlot;
};

struct GaugeId {
  std::uint32_t slot = kInvalidSlot;
};

/// A histogram occupies num_bounds + 3 consecutive slots:
/// [bucket 0 .. bucket B-1, overflow, count, sum]. Bucket i counts
/// observations v <= bounds[i] (first matching bound); the overflow bucket
/// counts v > bounds[B-1].
struct HistogramId {
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t bounds_begin = 0;  // Offset into the registry's bounds pool.
  std::uint32_t num_bounds = 0;
};

/// One metric's value lifted out of the raw slots (see MetricsSnapshot).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;               // Counter / gauge reading.
  std::vector<std::uint64_t> bounds;     // Histogram upper bucket edges.
  std::vector<std::uint64_t> buckets;    // bounds.size() + 1; last = overflow.
  std::uint64_t count = 0;               // Histogram observation count.
  std::uint64_t sum = 0;                 // Histogram observation sum.

  friend bool operator==(const MetricValue&, const MetricValue&) = default;
};

/// A deterministic, registration-ordered copy of a sheet's values --
/// detached from the registry, safe to move across threads and export.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  [[nodiscard]] bool empty() const { return metrics.empty(); }
  [[nodiscard]] const MetricValue* Find(std::string_view name) const;

  /// Element-wise aggregation by name: counters and histogram buckets sum,
  /// gauges take the maximum (high-water semantics). Metrics present only
  /// in @p other are appended in their order. Deterministic given a fixed
  /// merge order.
  void MergeFrom(const MetricsSnapshot& other);

  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) =
      default;
};

/// Renders @p snapshot as a "/metrics"-style plain-text surface: one
/// `name value` line per counter and gauge, and for each histogram a
/// `name_count`, a `name_sum`, and one cumulative `name_le_<bound>` line
/// per bucket (plus `name_le_inf` for the overflow bucket). Line order
/// follows the snapshot's (registration) order, so the surface is
/// deterministic and diffable.
void WriteMetricsText(std::ostream& os, const MetricsSnapshot& snapshot);

/// The metric name -> slot map. Registration is idempotent by name (the
/// existing handle is returned); re-registering a name under a different
/// kind or with different histogram bounds throws std::invalid_argument.
class MetricsRegistry {
 public:
  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t slot = 0;
    std::uint32_t bounds_begin = 0;
    std::uint32_t num_bounds = 0;
  };

  CounterId Counter(std::string_view name);
  GaugeId Gauge(std::string_view name);
  /// @p bounds must be non-empty and strictly increasing.
  HistogramId Histogram(std::string_view name,
                        std::span<const std::uint64_t> bounds);

  [[nodiscard]] std::size_t slot_count() const { return slot_count_; }
  [[nodiscard]] const std::vector<Metric>& metrics() const { return metrics_; }
  [[nodiscard]] std::span<const std::uint64_t> bounds_pool() const {
    return bounds_;
  }

  /// Lifts @p slots (a sheet's raw array, sized slot_count()) into a
  /// registration-ordered snapshot.
  [[nodiscard]] MetricsSnapshot Snapshot(
      std::span<const std::uint64_t> slots) const;

 private:
  const Metric* Find(std::string_view name) const;

  std::vector<Metric> metrics_;
  std::vector<std::uint64_t> bounds_;  // Pooled histogram bucket edges.
  std::size_t slot_count_ = 0;
};

/// One shard of raw slot values. Unbound sheets (default state) make every
/// mutation a no-op behind one branch.
class MetricSheet {
 public:
  MetricSheet() = default;
  explicit MetricSheet(const MetricsRegistry* registry) { Bind(registry); }

  /// Attaches the sheet to @p registry (null detaches), sizing the slot
  /// array to registry->slot_count(). Rebinding to the same registry after
  /// further registrations preserves existing slot values; binding to a
  /// different registry zeroes them. Cached pointers into the registry are
  /// refreshed here, so call Bind() (or Sync()) again after late
  /// registrations and before the next hot-path write.
  void Bind(const MetricsRegistry* registry);

  /// Re-sizes against the currently bound registry (see Bind).
  void Sync() { Bind(registry_); }

  [[nodiscard]] bool enabled() const { return data_ != nullptr; }
  [[nodiscard]] const MetricsRegistry* registry() const { return registry_; }

  void Add(CounterId id, std::uint64_t delta = 1) {
    if (data_ == nullptr || id.slot == kInvalidSlot) return;
    data_[id.slot] += delta;
  }

  void Set(GaugeId id, std::uint64_t value) {
    if (data_ == nullptr || id.slot == kInvalidSlot) return;
    data_[id.slot] = value;
  }

  void SetMax(GaugeId id, std::uint64_t value) {
    if (data_ == nullptr || id.slot == kInvalidSlot) return;
    if (value > data_[id.slot]) data_[id.slot] = value;
  }

  void Observe(HistogramId id, std::uint64_t value) {
    if (data_ == nullptr || id.slot == kInvalidSlot) return;
    const std::uint64_t* bounds = bounds_data_ + id.bounds_begin;
    std::uint32_t b = 0;
    while (b < id.num_bounds && value > bounds[b]) ++b;
    std::uint64_t* h = data_ + id.slot;
    ++h[b];                        // Bucket (or overflow when b==num_bounds).
    ++h[id.num_bounds + 1];        // Count.
    h[id.num_bounds + 2] += value; // Sum.
  }

  [[nodiscard]] std::uint64_t Value(CounterId id) const {
    return (data_ != nullptr && id.slot != kInvalidSlot) ? data_[id.slot] : 0;
  }
  [[nodiscard]] std::uint64_t Value(GaugeId id) const {
    return (data_ != nullptr && id.slot != kInvalidSlot) ? data_[id.slot] : 0;
  }

  /// Zeroes every slot; binding and handles stay valid.
  void Reset();

  /// Slot-wise aggregation of another shard bound to the same registry:
  /// counter and histogram slots sum, gauge slots take the maximum. The
  /// merge order is the caller's to fix (submission order in SweepRunner),
  /// which makes the aggregate deterministic.
  void MergeFrom(const MetricSheet& other);

  [[nodiscard]] std::span<const std::uint64_t> slots() const {
    return slots_;
  }

  /// Checkpoint support: overwrites the slot array with @p values so
  /// telemetry counters resume mid-run exactly where a checkpoint left
  /// them. @p values must be sized slot_count() of the bound registry;
  /// silently ignored when the sheet is unbound (telemetry off).
  void RestoreSlots(std::span<const std::uint64_t> values);

  /// Registration-ordered copy of the current values ({} when unbound).
  [[nodiscard]] MetricsSnapshot Snapshot() const;

 private:
  const MetricsRegistry* registry_ = nullptr;
  std::vector<std::uint64_t> slots_;
  std::uint64_t* data_ = nullptr;
  const std::uint64_t* bounds_data_ = nullptr;
};

}  // namespace ultra::telemetry
