// Chrome trace_event JSON export for PipelineTracer, loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing.
//
// Mapping: one process per trace; one thread per station (tid = station,
// named "station N"); one "X" complete slice per instruction spanning
// fetch -> commit/squash, with a nested "exec" slice spanning
// issue -> complete; core-level events (checker resync, fault injection,
// batch retire) become "i" instant events on a pseudo-thread. Timestamps
// are simulated cycles expressed as microseconds, so one cycle reads as
// 1 us on the Perfetto timeline. Output is deterministic for a given event
// sequence (golden-tested in tests/telemetry_test.cpp).
#pragma once

#include <functional>
#include <ostream>
#include <span>
#include <string>

#include "telemetry/trace.hpp"

namespace ultra::telemetry {

struct PerfettoOptions {
  /// Shown as the process name in the Perfetto track hierarchy.
  std::string process_name = "ultrascalar";
  /// Optional slice-label callback for instruction slices (receives the
  /// instruction's span rebuilt from its events). Defaults to
  /// "<opcode-tag> seq=<seq>"; pipetrace passes a disassembler here.
  std::function<std::string(const InstrSpan&)> slice_label;
};

void WritePerfettoTrace(std::ostream& os, std::span<const TraceEvent> events,
                        const PerfettoOptions& options = {});

void WritePerfettoTrace(std::ostream& os, const PipelineTracer& tracer,
                        const PerfettoOptions& options = {});

}  // namespace ultra::telemetry
