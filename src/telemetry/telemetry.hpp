// Umbrella header for the telemetry subsystem: allocation-free metrics
// (metrics.hpp), per-cycle pipeline tracing (trace.hpp), and Perfetto
// export (perfetto.hpp). See docs/observability.md.
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/trace.hpp"

namespace ultra::telemetry {

/// The per-run telemetry sink a caller hands to a core through
/// CoreConfig::telemetry. One RunTelemetry serves one Run() at a time (the
/// sheet is a single-threaded shard); SweepRunner gives every point its own
/// instance so workers never contend and merges/snapshots deterministically.
struct RunTelemetry {
  /// Metric name -> handle map. Cores register their handles at the top of
  /// Run() (idempotent, so reuse across runs re-finds the same slots).
  MetricsRegistry registry;
  /// The raw slots the hot paths increment. Bound by the core after
  /// registration; unbound (metrics_enabled == false) it is a no-op sink.
  MetricSheet sheet;
  /// Optional event ring; null disables tracing entirely.
  PipelineTracer* tracer = nullptr;
  /// False skips metric registration and leaves the sheet unbound, so an
  /// attached-but-disabled sink costs one null test per hook site.
  bool metrics_enabled = true;

  [[nodiscard]] MetricsSnapshot Snapshot() const { return sheet.Snapshot(); }
};

}  // namespace ultra::telemetry
