// Umbrella header for the sweep-runtime library.
//
// The runtime layer turns the point-by-point experiment drivers into
// deterministic parallel sweeps: SweepRunner fans simulation points across
// a thread pool with submission-order aggregation, sweep_io exports the
// results as CSV/JSON, sweep_journal + repro_bundle make long sweeps
// crash-safe (resume from an append-only journal, self-contained bundles
// for failed points), and the core-layer FunctionalSimCache (re-exported
// here because MakePredictor lives below this layer) deduplicates the
// functional pre-runs that oracle predictors and architectural-state
// checks share.
#pragma once

#include "core/functional_sim_cache.hpp"  // IWYU pragma: export
#include "runtime/repro_bundle.hpp"       // IWYU pragma: export
#include "runtime/sweep_io.hpp"           // IWYU pragma: export
#include "runtime/sweep_journal.hpp"      // IWYU pragma: export
#include "runtime/sweep_runner.hpp"       // IWYU pragma: export
