#include "runtime/sweep_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <sstream>
#include <string>

#include "fault/fault_plan.hpp"
#include "persist/serial.hpp"
#include "telemetry/metrics.hpp"

namespace ultra::runtime {

namespace {

const char* PredictorName(core::PredictorKind kind) {
  switch (kind) {
    case core::PredictorKind::kNotTaken:
      return "not_taken";
    case core::PredictorKind::kBtfn:
      return "btfn";
    case core::PredictorKind::kTwoBit:
      return "two_bit";
    case core::PredictorKind::kOracle:
      return "oracle";
  }
  return "?";
}

const char* FetchModeName(core::FetchMode mode) {
  switch (mode) {
    case core::FetchMode::kIdeal:
      return "ideal";
    case core::FetchMode::kBasicBlock:
      return "basic_block";
    case core::FetchMode::kTraceCache:
      return "trace_cache";
  }
  return "?";
}

const char* MemModeName(memory::MemTimingMode mode) {
  switch (mode) {
    case memory::MemTimingMode::kMagic:
      return "magic";
    case memory::MemTimingMode::kBandwidthLimited:
      return "bandwidth_limited";
    case memory::MemTimingMode::kFatTree:
      return "fat_tree";
    case memory::MemTimingMode::kButterfly:
      return "butterfly";
  }
  return "?";
}

/// Compact single-token hierarchy descriptor for the CSV: per-level
/// sets x ways x block_bytes plus the prefetch depth, or "off" when the
/// whole hierarchy is disabled. Semicolon-separated so the cell never needs
/// CSV quoting.
std::string HierarchyDesc(const memory::HierarchyConfig& h) {
  if (!h.l1i.enabled && !h.l1d.enabled && !h.l2.enabled &&
      h.prefetch.depth == 0) {
    return "off";
  }
  std::string out;
  const auto level = [&out](const char* name,
                            const memory::CacheLevelConfig& l) {
    if (!l.enabled) return;
    if (!out.empty()) out += ';';
    out += name;
    out += ':';
    out += std::to_string(l.sets) + 'x' + std::to_string(l.ways) + 'x' +
           std::to_string(l.block_bytes);
  };
  level("l1i", h.l1i);
  level("l1d", h.l1d);
  level("l2", h.l2);
  if (h.prefetch.depth > 0) {
    if (!out.empty()) out += ';';
    out += "pf:" + std::to_string(h.prefetch.depth);
  }
  return out;
}

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatIpc(const core::RunResult& result) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", result.Ipc());
  return buf;
}

bool AnyMetrics(const std::vector<SweepOutcome>& outcomes) {
  for (const SweepOutcome& o : outcomes) {
    if (!o.metrics.empty()) return true;
  }
  return false;
}

/// Compact single-token metric rendering for the CSV comment trailer:
/// counters/gauges as name=value, histograms as
/// name=count:C,sum:S,buckets:b0|b1|...|overflow.
void WriteCsvMetric(std::ostream& os, const telemetry::MetricValue& m) {
  os << m.name << '=';
  if (m.kind == telemetry::MetricKind::kHistogram) {
    os << "count:" << m.count << ",sum:" << m.sum << ",buckets:";
    for (std::size_t b = 0; b < m.buckets.size(); ++b) {
      os << (b == 0 ? "" : "|") << m.buckets[b];
    }
  } else {
    os << m.value;
  }
}

void WriteJsonMetric(std::ostream& os, const telemetry::MetricValue& m) {
  os << "{\"name\": \"" << JsonEscape(m.name) << "\", \"kind\": \""
     << telemetry::MetricKindName(m.kind) << "\", ";
  if (m.kind == telemetry::MetricKind::kHistogram) {
    os << "\"count\": " << m.count << ", \"sum\": " << m.sum
       << ", \"bounds\": [";
    for (std::size_t b = 0; b < m.bounds.size(); ++b) {
      os << (b == 0 ? "" : ", ") << m.bounds[b];
    }
    os << "], \"buckets\": [";
    for (std::size_t b = 0; b < m.buckets.size(); ++b) {
      os << (b == 0 ? "" : ", ") << m.buckets[b];
    }
    os << "]}";
  } else {
    os << "\"value\": " << m.value << '}';
  }
}

}  // namespace

void WriteCsv(std::ostream& os, const std::vector<SweepOutcome>& outcomes) {
  os << "index,workload,processor,window_size,num_regs,cluster_size,"
        "fetch_width,fetch_mode,predictor,mem_mode,hierarchy,num_alus,"
        "store_forwarding,pipeline_levels_per_stage,ok,error,halted,cycles,"
        "committed,ipc,mispredictions,squashed_instructions,forwarded_loads,"
        "load_count,store_count,fetch_stall_cycles,window_full_cycles,"
        "faults_injected,divergences_detected,checker_resyncs,"
        "squashes_under_fault,l1d_hits,l1d_misses,l2_hits,l2_misses,"
        "icache_misses,icache_stall_cycles,prefetch_issued,prefetch_useful,"
        "attempts,deadline_exceeded\n";
  for (const SweepOutcome& o : outcomes) {
    const core::CoreConfig& c = o.config;
    const core::RunStats& s = o.result.stats;
    os << o.index << ',' << CsvEscape(o.workload) << ','
       << core::ProcessorKindName(o.kind) << ',' << c.window_size << ','
       << c.num_regs << ',' << c.cluster_size << ',' << c.fetch_width << ','
       << FetchModeName(c.fetch_mode) << ',' << PredictorName(c.predictor)
       << ',' << MemModeName(c.mem.mode) << ','
       << HierarchyDesc(c.mem.hierarchy) << ',' << c.num_alus << ','
       << (c.store_forwarding ? 1 : 0) << ',' << c.pipeline_levels_per_stage
       << ',' << (o.ok ? 1 : 0) << ',' << CsvEscape(o.error) << ','
       << (o.result.halted ? 1 : 0) << ',' << o.result.cycles << ','
       << o.result.committed << ',' << FormatIpc(o.result) << ','
       << s.mispredictions << ',' << s.squashed_instructions << ','
       << s.forwarded_loads << ',' << s.load_count << ',' << s.store_count
       << ',' << s.fetch_stall_cycles << ',' << s.window_full_cycles << ','
       << s.faults_injected() << ',' << s.divergences_detected() << ','
       << s.checker_resyncs() << ',' << s.squashes_under_fault() << ','
       << s.mem_hierarchy.l1d_hits << ',' << s.mem_hierarchy.l1d_misses << ','
       << s.mem_hierarchy.l2_hits << ',' << s.mem_hierarchy.l2_misses << ','
       << s.mem_hierarchy.icache_misses << ','
       << s.mem_hierarchy.icache_stall_cycles << ','
       << s.mem_hierarchy.prefetch_issued << ','
       << s.mem_hierarchy.prefetch_useful << ','
       << o.attempts << ',' << (o.deadline_exceeded ? 1 : 0) << '\n';
  }
  // Quarantine section: failed points again, as comment lines a CSV reader
  // skips, so a partial sweep's artifact names its casualties in one place.
  const auto bad = Quarantine(outcomes);
  os << "# quarantine: " << bad.size() << " failed point"
     << (bad.size() == 1 ? "" : "s") << '\n';
  for (const SweepOutcome* o : bad) {
    os << "# index=" << o->index << " processor="
       << core::ProcessorKindName(o->kind) << " workload="
       << CsvEscape(o->workload);
    // The seed that produced the failing fault plan, when there was one:
    // enough to rebuild the identical plan via FaultPlan::Random. Omitted
    // entirely for fault-free sweeps so their artifacts keep the
    // historical byte shape.
    if (o->config.fault_plan != nullptr &&
        o->config.fault_plan->provenance().randomized) {
      os << " fault_seed=" << o->config.fault_plan->provenance().seed;
    }
    os << " attempts=" << o->attempts
       << " deadline_exceeded=" << (o->deadline_exceeded ? 1 : 0)
       << " error=" << CsvEscape(o->error) << '\n';
  }
  // Metrics trailer: one comment line per instrumented point. Emitted only
  // when SweepOptions::collect_metrics populated snapshots, so legacy
  // sweeps produce byte-identical files with or without this build.
  if (AnyMetrics(outcomes)) {
    std::size_t instrumented = 0;
    for (const SweepOutcome& o : outcomes) {
      if (!o.metrics.empty()) ++instrumented;
    }
    os << "# metrics: " << instrumented << " instrumented point"
       << (instrumented == 1 ? "" : "s") << '\n';
    for (const SweepOutcome& o : outcomes) {
      if (o.metrics.empty()) continue;
      os << "# metrics index=" << o.index;
      for (const telemetry::MetricValue& m : o.metrics.metrics) {
        os << ' ';
        WriteCsvMetric(os, m);
      }
      os << '\n';
    }
  }
}

void WriteJson(std::ostream& os, const std::vector<SweepOutcome>& outcomes) {
  os << "{\"points\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const SweepOutcome& o = outcomes[i];
    const core::CoreConfig& c = o.config;
    const core::RunStats& s = o.result.stats;
    os << "  {\"index\": " << o.index << ", \"workload\": \""
       << JsonEscape(o.workload) << "\", \"processor\": \""
       << core::ProcessorKindName(o.kind) << "\",\n"
       << "   \"config\": {\"window_size\": " << c.window_size
       << ", \"num_regs\": " << c.num_regs
       << ", \"cluster_size\": " << c.cluster_size
       << ", \"fetch_width\": " << c.fetch_width << ", \"fetch_mode\": \""
       << FetchModeName(c.fetch_mode) << "\", \"predictor\": \""
       << PredictorName(c.predictor) << "\", \"mem_mode\": \""
       << MemModeName(c.mem.mode) << "\", \"num_alus\": " << c.num_alus
       << ", \"store_forwarding\": " << (c.store_forwarding ? "true" : "false")
       << ", \"pipeline_levels_per_stage\": " << c.pipeline_levels_per_stage
       << ", \"hierarchy\": \"" << HierarchyDesc(c.mem.hierarchy)
       << "\", \"max_cycles\": " << c.max_cycles << "},\n"
       << "   \"ok\": " << (o.ok ? "true" : "false") << ", \"error\": \""
       << JsonEscape(o.error) << "\", \"attempts\": " << o.attempts
       << ", \"deadline_exceeded\": "
       << (o.deadline_exceeded ? "true" : "false") << ",\n"
       << "   \"result\": {\"halted\": " << (o.result.halted ? "true" : "false")
       << ", \"cycles\": " << o.result.cycles
       << ", \"committed\": " << o.result.committed << ", \"ipc\": "
       << FormatIpc(o.result)
       << ",\n    \"stats\": {\"mispredictions\": " << s.mispredictions
       << ", \"squashed_instructions\": " << s.squashed_instructions
       << ", \"forwarded_loads\": " << s.forwarded_loads
       << ", \"load_count\": " << s.load_count
       << ", \"store_count\": " << s.store_count
       << ", \"fetch_stall_cycles\": " << s.fetch_stall_cycles
       << ", \"window_full_cycles\": " << s.window_full_cycles
       << ", \"faults_injected\": " << s.faults_injected()
       << ", \"divergences_detected\": " << s.divergences_detected()
       << ", \"checker_resyncs\": " << s.checker_resyncs()
       << ", \"squashes_under_fault\": " << s.squashes_under_fault()
       << ",\n     \"l1d_hits\": " << s.mem_hierarchy.l1d_hits
       << ", \"l1d_misses\": " << s.mem_hierarchy.l1d_misses
       << ", \"l1d_writebacks\": " << s.mem_hierarchy.l1d_writebacks
       << ", \"l2_hits\": " << s.mem_hierarchy.l2_hits
       << ", \"l2_misses\": " << s.mem_hierarchy.l2_misses
       << ", \"l2_writebacks\": " << s.mem_hierarchy.l2_writebacks
       << ",\n     \"icache_hits\": " << s.mem_hierarchy.icache_hits
       << ", \"icache_misses\": " << s.mem_hierarchy.icache_misses
       << ", \"icache_stall_cycles\": " << s.mem_hierarchy.icache_stall_cycles
       << ", \"prefetch_issued\": " << s.mem_hierarchy.prefetch_issued
       << ", \"prefetch_fills\": " << s.mem_hierarchy.prefetch_fills
       << ", \"prefetch_useful\": " << s.mem_hierarchy.prefetch_useful
       << "}}";
    // Per-point metrics, present only when collect_metrics filled them, so
    // uninstrumented sweeps keep the historical byte-exact shape.
    if (!o.metrics.empty()) {
      os << ",\n   \"metrics\": [";
      const auto& ms = o.metrics.metrics;
      for (std::size_t m = 0; m < ms.size(); ++m) {
        os << (m == 0 ? "\n    " : ",\n    ");
        WriteJsonMetric(os, ms[m]);
      }
      os << "\n   ]";
    }
    os << '}' << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  os << "],\n \"quarantine\": [";
  const auto bad = Quarantine(outcomes);
  for (std::size_t i = 0; i < bad.size(); ++i) {
    const SweepOutcome& o = *bad[i];
    os << (i == 0 ? "\n" : ",\n")
       << "  {\"index\": " << o.index << ", \"processor\": \""
       << core::ProcessorKindName(o.kind) << "\", \"workload\": \""
       << JsonEscape(o.workload) << "\", \"attempts\": " << o.attempts
       << ", \"deadline_exceeded\": "
       << (o.deadline_exceeded ? "true" : "false");
    if (o.config.fault_plan != nullptr &&
        o.config.fault_plan->provenance().randomized) {
      os << ", \"fault_seed\": " << o.config.fault_plan->provenance().seed;
    }
    // Full retry history, not just the terminal error — but only when
    // there *was* a retry, so single-attempt sweeps keep the historical
    // byte-exact shape.
    if (o.attempt_errors.size() > 1) {
      os << ", \"attempt_errors\": [";
      for (std::size_t a = 0; a < o.attempt_errors.size(); ++a) {
        os << (a == 0 ? "" : ", ") << '"' << JsonEscape(o.attempt_errors[a])
           << '"';
      }
      os << ']';
    }
    os << ", \"error\": \"" << JsonEscape(o.error) << "\"}";
  }
  os << (bad.empty() ? "" : "\n ") << "]}\n";
}

SweepCli ParseSweepCli(int& argc, char** argv) {
  SweepCli cli;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      cli.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      cli.csv_path = arg + 6;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      cli.json_path = arg + 7;
    } else if (std::strncmp(arg, "--journal=", 10) == 0) {
      cli.journal_path = arg + 10;
    } else if (std::strcmp(arg, "--resume") == 0) {
      cli.resume = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return cli;
}

SweepReport RunSweepCli(const SweepRunner& runner, const SweepCli& cli,
                        const std::vector<SweepPoint>& points) {
  if (cli.journal_path.empty()) return runner.RunWithReport(points);
  if (cli.resume) return runner.Resume(points, cli.journal_path);
  return runner.RunJournaled(points, cli.journal_path);
}

bool ExportOutcomes(const SweepCli& cli,
                    const std::vector<SweepOutcome>& outcomes) {
  bool ok = true;
  const auto write = [&](const std::string& path, auto writer) {
    if (path.empty()) return;
    // Render fully in memory, then commit atomically: a crash mid-export
    // leaves either the previous artifact or the new one, never a torn
    // file.
    std::ostringstream os;
    writer(os, outcomes);
    try {
      persist::AtomicWriteFile(path, std::string_view(os.view()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(), e.what());
      ok = false;
    }
  };
  write(cli.csv_path, WriteCsv);
  write(cli.json_path, WriteJson);
  return ok;
}

}  // namespace ultra::runtime
