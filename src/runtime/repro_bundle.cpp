#include "runtime/repro_bundle.hpp"

#include <filesystem>
#include <sstream>

#include "core/config_codec.hpp"
#include "fault/fault_plan.hpp"
#include "isa/program_codec.hpp"
#include "runtime/sweep_journal.hpp"

namespace ultra::runtime {

namespace {

// Shared light framing for config/program/outcome files: a magic, a
// version, the payload, and a trailing CRC so a truncated or bit-flipped
// bundle file is rejected instead of silently misread.
constexpr std::uint32_t kBundleFileMagic = 0x444E4255;  // "UBND" LE.
constexpr std::uint32_t kBundleFileVersion = 1;

void WriteFramed(const std::string& path,
                 std::vector<std::uint8_t> payload) {
  persist::Encoder e;
  e.U32(kBundleFileMagic);
  e.U32(kBundleFileVersion);
  e.Bytes(payload);
  const std::uint32_t crc = persist::Crc32(e.bytes());
  e.U32(crc);
  persist::AtomicWriteFile(path, e.bytes());
}

std::vector<std::uint8_t> ReadFramed(const std::string& path) {
  const std::vector<std::uint8_t> raw = persist::ReadFileBytes(path);
  if (raw.size() < 16) {
    throw persist::FormatError("bundle file truncated: " + path);
  }
  const std::span<const std::uint8_t> body(raw.data(), raw.size() - 4);
  persist::Decoder tail(
      std::span<const std::uint8_t>(raw.data() + raw.size() - 4, 4));
  if (tail.U32() != persist::Crc32(body)) {
    throw persist::FormatError("bundle file CRC mismatch: " + path);
  }
  persist::Decoder d(body);
  if (d.U32() != kBundleFileMagic) {
    throw persist::FormatError("bad bundle file magic: " + path);
  }
  if (d.U32() != kBundleFileVersion) {
    throw persist::FormatError("unsupported bundle file version: " + path);
  }
  const std::vector<std::uint8_t> payload = d.Bytes();
  if (!d.AtEnd()) {
    throw persist::FormatError("trailing bundle file bytes: " + path);
  }
  return payload;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string WriteReproBundle(const std::string& dir, const SweepPoint& point,
                             const SweepOutcome& outcome,
                             const persist::Checkpoint* checkpoint) {
  const std::filesystem::path bundle =
      std::filesystem::path(dir) / ("point-" + std::to_string(outcome.index));
  std::filesystem::create_directories(bundle);

  {
    persist::Encoder e;
    core::EncodeCoreConfig(e, point.config);
    WriteFramed((bundle / "config.bin").string(), e.Take());
  }
  {
    persist::Encoder e;
    isa::EncodeProgram(e, *point.program);
    WriteFramed((bundle / "program.bin").string(), e.Take());
  }
  {
    persist::Encoder e;
    EncodeOutcome(e, outcome);
    WriteFramed((bundle / "outcome.bin").string(), e.Take());
  }
  if (checkpoint != nullptr) {
    persist::WriteCheckpointFile((bundle / "checkpoint.bin").string(),
                                 *checkpoint);
  }

  std::ostringstream manifest;
  manifest << "{\n"
           << "  \"index\": " << outcome.index << ",\n"
           << "  \"processor\": \"" << core::ProcessorKindName(outcome.kind)
           << "\",\n"
           << "  \"workload\": \"" << JsonEscape(outcome.workload) << "\",\n"
           << "  \"attempts\": " << outcome.attempts << ",\n"
           << "  \"deadline_exceeded\": "
           << (outcome.deadline_exceeded ? "true" : "false") << ",\n"
           << "  \"error\": \"" << JsonEscape(outcome.error) << "\",\n";
  if (point.config.fault_plan != nullptr &&
      point.config.fault_plan->provenance().randomized) {
    manifest << "  \"fault_seed\": "
             << point.config.fault_plan->provenance().seed << ",\n";
  }
  if (checkpoint != nullptr) {
    manifest << "  \"checkpoint_cycle\": " << checkpoint->header.cycle
             << ",\n";
  }
  manifest << "  \"files\": [\"config.bin\", \"program.bin\", \"outcome.bin\""
           << (checkpoint != nullptr ? ", \"checkpoint.bin\"" : "")
           << "]\n}\n";
  persist::AtomicWriteFile((bundle / "manifest.json").string(),
                           manifest.str());
  return bundle.string();
}

ReproBundle ReadReproBundle(const std::string& bundle_path) {
  const std::filesystem::path bundle(bundle_path);
  ReproBundle out;
  {
    const auto payload = ReadFramed((bundle / "config.bin").string());
    persist::Decoder d(payload);
    out.point.config = core::DecodeCoreConfig(d);
  }
  {
    const auto payload = ReadFramed((bundle / "program.bin").string());
    persist::Decoder d(payload);
    out.point.program =
        std::make_shared<const isa::Program>(isa::DecodeProgram(d));
  }
  {
    const auto payload = ReadFramed((bundle / "outcome.bin").string());
    persist::Decoder d(payload);
    out.outcome = DecodeOutcome(d);
  }
  out.point.kind = out.outcome.kind;
  out.point.workload = out.outcome.workload;
  const std::filesystem::path ckpt = bundle / "checkpoint.bin";
  if (std::filesystem::exists(ckpt)) {
    out.checkpoint = persist::ReadCheckpointFile(ckpt.string());
  }
  return out;
}

}  // namespace ultra::runtime
