#include "runtime/sweep_journal.hpp"

#include <algorithm>

#include "core/config_codec.hpp"
#include "isa/program_codec.hpp"
#include "persist/journal.hpp"
#include "telemetry/snapshot_codec.hpp"

namespace ultra::runtime {

std::uint64_t FingerprintSweep(const std::vector<SweepPoint>& points,
                               const SweepOptions& options) {
  persist::Encoder e;
  e.U32(kSweepJournalVersion);
  e.U64(static_cast<std::uint64_t>(points.size()));
  for (const SweepPoint& p : points) {
    e.U8(static_cast<std::uint8_t>(p.kind));
    e.Str(p.workload);
    e.U64(core::FingerprintConfig(p.config));
    e.U64(p.program ? isa::FingerprintProgram(*p.program) : 0);
  }
  e.Bool(options.check_architectural_state);
  e.I32(options.max_attempts);
  e.Bool(options.collect_metrics);
  return persist::Fnv1a64(e.bytes());
}

void EncodeOutcome(persist::Encoder& e, const SweepOutcome& o) {
  e.U64(static_cast<std::uint64_t>(o.index));
  e.U8(static_cast<std::uint8_t>(o.kind));
  e.Str(o.workload);
  e.Bool(o.ok);
  e.Str(o.error);
  e.I32(o.attempts);
  e.Bool(o.deadline_exceeded);
  e.U32(static_cast<std::uint32_t>(o.attempt_errors.size()));
  for (const std::string& err : o.attempt_errors) e.Str(err);
  e.Bool(o.result.halted);
  e.U64(o.result.cycles);
  e.U64(o.result.committed);
  e.U32(static_cast<std::uint32_t>(o.result.regs.size()));
  for (const isa::Word r : o.result.regs) e.U32(r);
  const core::RunStats& s = o.result.stats;
  e.U64(s.mispredictions);
  e.U64(s.forwarded_loads);
  e.U64(s.squashed_instructions);
  e.U64(s.load_count);
  e.U64(s.store_count);
  e.U64(s.fetch_stall_cycles);
  e.U64(s.window_full_cycles);
  e.U64(s.fault.injected);
  e.U64(s.fault.checks);
  e.U64(s.fault.divergences);
  e.U64(s.fault.resyncs);
  e.U64(s.fault.squashes);
  e.U64(s.mem_hierarchy.l1d_hits);
  e.U64(s.mem_hierarchy.l1d_misses);
  e.U64(s.mem_hierarchy.l1d_writebacks);
  e.U64(s.mem_hierarchy.l2_hits);
  e.U64(s.mem_hierarchy.l2_misses);
  e.U64(s.mem_hierarchy.l2_writebacks);
  e.U64(s.mem_hierarchy.icache_hits);
  e.U64(s.mem_hierarchy.icache_misses);
  e.U64(s.mem_hierarchy.icache_stall_cycles);
  e.U64(s.mem_hierarchy.prefetch_issued);
  e.U64(s.mem_hierarchy.prefetch_fills);
  e.U64(s.mem_hierarchy.prefetch_useful);
  telemetry::EncodeSnapshot(e, o.metrics);
}

SweepOutcome DecodeOutcome(persist::Decoder& d) {
  SweepOutcome o;
  o.index = static_cast<std::size_t>(d.U64());
  o.kind = static_cast<core::ProcessorKind>(d.U8());
  o.workload = d.Str();
  o.ok = d.Bool();
  o.error = d.Str();
  o.attempts = d.I32();
  o.deadline_exceeded = d.Bool();
  const std::uint32_t n_errors = d.U32();
  // Clamp by the bytes actually present: a corrupt count must underflow
  // into FormatError, never drive a huge up-front allocation.
  o.attempt_errors.reserve(std::min<std::size_t>(n_errors, d.remaining()));
  for (std::uint32_t i = 0; i < n_errors; ++i) {
    o.attempt_errors.push_back(d.Str());
  }
  o.result.halted = d.Bool();
  o.result.cycles = d.U64();
  o.result.committed = d.U64();
  const std::uint32_t n_regs = d.U32();
  o.result.regs.reserve(std::min<std::size_t>(n_regs, d.remaining()));
  for (std::uint32_t i = 0; i < n_regs; ++i) o.result.regs.push_back(d.U32());
  core::RunStats& s = o.result.stats;
  s.mispredictions = d.U64();
  s.forwarded_loads = d.U64();
  s.squashed_instructions = d.U64();
  s.load_count = d.U64();
  s.store_count = d.U64();
  s.fetch_stall_cycles = d.U64();
  s.window_full_cycles = d.U64();
  s.fault.injected = d.U64();
  s.fault.checks = d.U64();
  s.fault.divergences = d.U64();
  s.fault.resyncs = d.U64();
  s.fault.squashes = d.U64();
  s.mem_hierarchy.l1d_hits = d.U64();
  s.mem_hierarchy.l1d_misses = d.U64();
  s.mem_hierarchy.l1d_writebacks = d.U64();
  s.mem_hierarchy.l2_hits = d.U64();
  s.mem_hierarchy.l2_misses = d.U64();
  s.mem_hierarchy.l2_writebacks = d.U64();
  s.mem_hierarchy.icache_hits = d.U64();
  s.mem_hierarchy.icache_misses = d.U64();
  s.mem_hierarchy.icache_stall_cycles = d.U64();
  s.mem_hierarchy.prefetch_issued = d.U64();
  s.mem_hierarchy.prefetch_fills = d.U64();
  s.mem_hierarchy.prefetch_useful = d.U64();
  o.metrics = telemetry::DecodeSnapshot(d);
  return o;
}

std::vector<std::uint8_t> EncodeJournalHeader(std::uint64_t sweep_fingerprint,
                                              std::uint64_t point_count) {
  persist::Encoder e;
  e.U32(kSweepJournalVersion);
  e.U64(sweep_fingerprint);
  e.U64(point_count);
  return e.Take();
}

SweepJournalContents ReadSweepJournal(const std::string& path) {
  SweepJournalContents contents;
  for (const persist::JournalRecord& rec : persist::ReadJournal(path)) {
    persist::Decoder d(rec.payload);
    if (rec.type == kJournalRecHeader) {
      contents.version = d.U32();
      if (contents.version != kSweepJournalVersion) {
        throw persist::FormatError("unsupported sweep journal version");
      }
      contents.sweep_fingerprint = d.U64();
      contents.point_count = d.U64();
      contents.has_header = true;
    } else if (rec.type == kJournalRecOutcome) {
      contents.outcomes.push_back(DecodeOutcome(d));
    }
    // Unknown record types: skip (forward compatibility).
  }
  return contents;
}

}  // namespace ultra::runtime
