// Deterministic parallel sweep engine.
//
// Every empirical figure in this reproduction is a sweep: (processor kind x
// core configuration x workload) simulation points whose results feed a
// table. SweepRunner fans those points out across a fixed-size thread pool
// and aggregates results in submission order, so the output of a sweep is
// byte-identical whether it ran on one thread or sixteen: each point's
// simulation is single-threaded and deterministic, results land in a slot
// chosen by submission index, and nothing is reported until every point has
// finished.
//
// The only cross-thread shared state a simulation touches is the
// FunctionalSimCache (mutex-protected), which oracle predictors and the
// optional architectural-state checks consult so the functional pre-run
// happens once per distinct program rather than once per processor.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/processor.hpp"
#include "isa/program.hpp"
#include "telemetry/metrics.hpp"

namespace ultra::persist {
class JournalWriter;
}  // namespace ultra::persist

namespace ultra::runtime {

/// Worker count used when SweepOptions.num_threads <= 0: the
/// ULTRA_SWEEP_THREADS environment variable if set to a positive integer,
/// else std::thread::hardware_concurrency() (at least 1).
int DefaultThreadCount();

/// Thrown by ParallelFor after all iterations have run: carries *every*
/// failed iteration (index + message), not just the first, so a caller can
/// report or retry precisely. what() summarizes the failure count and the
/// first few messages.
class ParallelForError : public std::runtime_error {
 public:
  struct Failure {
    std::size_t index;
    std::string message;
    /// Human label of the failed iteration ("fib (UltrascalarI)") when the
    /// caller supplied a describe callback; empty otherwise.
    std::string context;
  };

  explicit ParallelForError(std::vector<Failure> failures);

  /// All failed iterations, sorted by index (deterministic at any thread
  /// count).
  [[nodiscard]] const std::vector<Failure>& failures() const {
    return failures_;
  }

 private:
  std::vector<Failure> failures_;
};

/// Runs body(0) .. body(count - 1) across at most @p num_threads workers
/// (<= 0 resolves via DefaultThreadCount). Indices are claimed dynamically,
/// so callers must not rely on which worker runs which index -- only on all
/// of them having run when the call returns. A throwing body never aborts
/// the loop: every iteration runs, and afterwards a single
/// ParallelForError carrying every failure (sorted by index) is thrown on
/// the calling thread.
void ParallelFor(int num_threads, std::size_t count,
                 const std::function<void(std::size_t)>& body);

/// Same, with a @p describe callback mapping an index to a human label
/// (e.g. "fib (UltrascalarI)"). Labels are captured into
/// ParallelForError::Failure::context and shown in what(), so a failure in
/// a 10,000-point sweep names its point, not just its submission index.
void ParallelFor(int num_threads, std::size_t count,
                 const std::function<void(std::size_t)>& body,
                 const std::function<std::string(std::size_t)>& describe);

/// One simulation point of a sweep.
struct SweepPoint {
  core::ProcessorKind kind = core::ProcessorKind::kUltrascalarI;
  core::CoreConfig config;
  std::shared_ptr<const isa::Program> program;  // Shared across points.
  std::string workload;                         // Label for reports/export.
};

/// The result of one point, tagged with its submission index.
struct SweepOutcome {
  std::size_t index = 0;
  core::ProcessorKind kind = core::ProcessorKind::kUltrascalarI;
  std::string workload;
  core::CoreConfig config;
  bool ok = false;        // False: error holds what went wrong.
  std::string error;      // Error of the last attempt.
  core::RunResult result;
  /// Number of attempts consumed (1 = succeeded or failed without retry).
  int attempts = 0;
  /// True when the last attempt was cancelled by the deadline watchdog.
  bool deadline_exceeded = false;
  /// True when the point was abandoned because SweepOptions::cancel was
  /// raised (a cancelled request or a draining service). Cancelled points
  /// are never journaled: a resumed sweep re-runs them for real, which is
  /// what makes a drain-then-restart cycle converge on the uninterrupted
  /// sweep's exact artifact.
  bool cancelled = false;
  /// The error of every failed attempt, in attempt order.
  std::vector<std::string> attempt_errors;
  /// Wall time of this point alone (all attempts, including backoff).
  /// Informational only -- deliberately excluded from the CSV/JSON exports
  /// so they stay deterministic.
  double wall_seconds = 0.0;
  /// Per-point core metrics (window occupancy, issue-to-commit latency,
  /// propagation distance, fault counters). Empty unless
  /// SweepOptions::collect_metrics is set; the values come from the
  /// deterministic single-threaded simulation, so they are identical at any
  /// thread count and safe for the exporters to emit.
  telemetry::MetricsSnapshot metrics;
};

struct SweepOptions {
  int num_threads = 0;  // <= 0: DefaultThreadCount().
  /// Verify each point's final registers, memory, and committed count
  /// against the shared functional-simulation oracle; mismatches mark the
  /// outcome !ok with a description (points that hit max_cycles are
  /// reported as not halted but are not failed against the oracle).
  bool check_architectural_state = false;
  /// Wall-clock budget per point attempt; <= 0 disables the watchdog. An
  /// attempt over budget is cancelled cooperatively (CoreConfig::cancel),
  /// marked deadline_exceeded, and counts as a transient failure.
  double point_deadline_seconds = 0.0;
  /// Total attempts per point (>= 1). Only transient failures are retried
  /// -- deadline hits and unexpected exceptions; invalid configurations
  /// and oracle mismatches are deterministic and fail immediately.
  int max_attempts = 1;
  /// Base delay between attempts; attempt a sleeps roughly
  /// base * 2^(a-1), scaled by a deterministic per-(point, attempt)
  /// jitter in [0.5, 1.5) so retry storms decorrelate without making the
  /// sweep's *output* depend on timing.
  double retry_backoff_seconds = 0.05;
  /// Attach a fresh telemetry::RunTelemetry to every point attempt and
  /// snapshot its metrics into SweepOutcome::metrics. Off by default: the
  /// hooks cost a few percent of simulation throughput when live, and the
  /// exporters only grow metric sections when snapshots are present.
  bool collect_metrics = false;
  /// When non-empty, every failed point emits a self-contained repro
  /// bundle under "<bundle_dir>/point-<index>/" (see repro_bundle.hpp).
  /// Bundle writes are best-effort: an unwritable bundle directory is
  /// reported on stderr but never alters the sweep's outcomes.
  std::string bundle_dir{};
  /// With bundle_dir set and checkpoint_every > 0, each attempt keeps its
  /// most recent periodic checkpoint (taken every this-many cycles) in
  /// memory; on failure it lands in the bundle as checkpoint.bin — the
  /// recorded state nearest the failure. 0 disables periodic capture.
  std::uint64_t checkpoint_every = 0;
  /// Sweep-level cooperative cancellation: when non-null and set, points
  /// that have not started are skipped and in-flight points are cancelled
  /// through the same CoreConfig::cancel machinery the deadline watchdog
  /// uses. Affected outcomes come back !ok with SweepOutcome::cancelled
  /// set and are NOT journaled (see that field). The pointee must outlive
  /// the Run*() call. Deliberately excluded from the sweep fingerprint —
  /// like thread count, it shapes timing, not results.
  const std::atomic<bool>* cancel = nullptr;
  /// Soft counterpart of `cancel` for graceful drain: once raised, points
  /// that have not started come back cancelled (and un-journaled, so a
  /// resume runs them), but points already simulating run to completion
  /// and are journaled normally. This is how a SIGTERM'd service finishes
  /// the work it already paid for without starting more. Excluded from the
  /// sweep fingerprint for the same reason as `cancel`.
  const std::atomic<bool>* drain = nullptr;
  /// Batch same-program points into ensembles (see runtime/ensemble.hpp):
  /// the functional oracle is warmed once per distinct program before the
  /// workers start, same-program points are scheduled adjacently, and
  /// interchangeable points (same kind + semantically identical config)
  /// run once with followers adopting the leader's result in lockstep.
  /// Outcomes and exports are byte-identical with this on or off (it is
  /// deliberately excluded from the sweep fingerprint, so journaled sweeps
  /// can resume across the toggle); only wall-clock and runner metrics
  /// change. On by default.
  bool ensemble_batching = true;
};

/// The failed outcomes of a sweep, in submission order -- the quarantine
/// list the exporters append to CSV/JSON.
std::vector<const SweepOutcome*> Quarantine(
    const std::vector<SweepOutcome>& outcomes);

/// A sweep's outcomes plus the runner's own operational metrics.
struct SweepReport {
  std::vector<SweepOutcome> outcomes;  // Submission order.
  /// Runner-level counters aggregated across points in submission order:
  /// sweep.attempts / sweep.retries / sweep.deadline_exceeded /
  /// sweep.cancelled_points / sweep.failed_points / sweep.backoff_wait_us /
  /// sweep.oracle_prewarms / sweep.ensemble_followers, the
  /// sweep.point_wall_time_us histogram, and the FunctionalSimCache
  /// hit/miss/eviction delta (fnsim_cache.*). Wall-clock derived, so NOT
  /// deterministic and deliberately never exported -- programmatic
  /// consumption only (operators, tests asserting attempt counts).
  telemetry::MetricsSnapshot runner_metrics;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs every point and returns outcomes in submission order. A point
  /// that throws (e.g. an invalid configuration), exceeds its deadline, or
  /// fails the oracle check yields ok == false rather than aborting the
  /// sweep, so a long sweep always produces a usable artifact.
  [[nodiscard]] std::vector<SweepOutcome> Run(
      const std::vector<SweepPoint>& points) const;

  /// Like Run(), additionally returning the runner's operational metrics
  /// (see SweepReport). Run() simply discards that report section.
  [[nodiscard]] SweepReport RunWithReport(
      const std::vector<SweepPoint>& points) const;

  /// Like RunWithReport(), additionally journaling each completed point to
  /// @p journal_path (truncating any previous journal): an append-only,
  /// fsync'd, CRC-framed record per point, so a SIGKILL at any moment
  /// loses at most the record being written. See docs/robustness.md.
  [[nodiscard]] SweepReport RunJournaled(const std::vector<SweepPoint>& points,
                                         const std::string& journal_path) const;

  /// Resumes an interrupted journaled sweep: points already recorded in
  /// @p journal_path are restored from it (and not re-run); the rest run
  /// normally and are appended. The merged outcomes — and therefore the
  /// CSV/JSON exports — are byte-identical to an uninterrupted
  /// RunJournaled() at any thread count. A missing or headerless journal
  /// degrades to RunJournaled(); a journal written for different points or
  /// outcome-affecting options throws std::runtime_error (fingerprint
  /// mismatch) rather than silently mixing sweeps.
  [[nodiscard]] SweepReport Resume(const std::vector<SweepPoint>& points,
                                   const std::string& journal_path) const;

  /// Deterministic parallel map for analytic sweeps (VLSI models, delay
  /// fits) that are not Processor::Run points: results are returned in
  /// index order regardless of scheduling. R must be default-constructible.
  template <typename R>
  [[nodiscard]] std::vector<R> Map(
      std::size_t count, const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(count);
    ParallelFor(num_threads_, count,
                [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  [[nodiscard]] int num_threads() const { return num_threads_; }
  [[nodiscard]] const SweepOptions& options() const { return options_; }

 private:
  [[nodiscard]] SweepReport RunImpl(
      const std::vector<SweepPoint>& points, persist::JournalWriter* journal,
      const std::unordered_map<std::size_t, SweepOutcome>* completed) const;

  SweepOptions options_;
  int num_threads_;
};

}  // namespace ultra::runtime
