// Self-contained repro bundles for failed sweep points.
//
// When a point fails (oracle mismatch, deadline, exception) and
// SweepOptions::bundle_dir is set, the runner writes a directory holding
// everything needed to re-execute the point standalone — no access to the
// original sweep, workload generators, or journal required:
//
//   <dir>/point-<index>/
//     manifest.json    human-readable summary (index, kind, workload,
//                      error, attempts, fault seed, checkpoint cycle)
//     config.bin       full CoreConfig, including the fault plan
//     program.bin      instruction stream + initial memory + labels
//     outcome.bin      the recorded SweepOutcome (journal record codec)
//     checkpoint.bin   (optional) the periodic checkpoint nearest the
//                      failure, when SweepOptions::checkpoint_every armed one
//
// examples/replay_bundle re-runs a bundle and diffs against outcome.bin.
// All binary files are CRC-framed and written atomically (temp + rename).
#pragma once

#include <optional>
#include <string>

#include "persist/checkpoint.hpp"
#include "runtime/sweep_runner.hpp"

namespace ultra::runtime {

struct ReproBundle {
  SweepPoint point;       // config + program + workload label.
  SweepOutcome outcome;   // As recorded at failure time.
  std::optional<persist::Checkpoint> checkpoint;
};

/// Writes the bundle under "<dir>/point-<outcome.index>" (created as
/// needed) and returns that path. @p checkpoint may be null.
std::string WriteReproBundle(const std::string& dir, const SweepPoint& point,
                             const SweepOutcome& outcome,
                             const persist::Checkpoint* checkpoint);

/// Loads a bundle directory written by WriteReproBundle. Throws
/// persist::FormatError on missing or corrupt files.
[[nodiscard]] ReproBundle ReadReproBundle(const std::string& bundle_path);

}  // namespace ultra::runtime
