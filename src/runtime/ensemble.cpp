#include "runtime/ensemble.hpp"

#include <map>
#include <utility>

#include "core/config_codec.hpp"
#include "isa/program_codec.hpp"

namespace ultra::runtime {

std::vector<EnsembleGroup> GroupByProgram(
    const std::vector<SweepPoint>& points) {
  std::vector<EnsembleGroup> groups;
  // (fingerprint, num_regs) -> position in groups. An ordered map keyed by
  // value, but groups are *emitted* in first-member order, so the result
  // does not depend on map iteration.
  std::map<std::pair<std::uint64_t, int>, std::size_t> by_key;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    if (!p.program) {
      // Null programs fail individually in the runner; never batch them.
      groups.push_back(EnsembleGroup{0, p.config.num_regs, {i}});
      continue;
    }
    const std::pair<std::uint64_t, int> key{isa::FingerprintProgram(*p.program),
                                            p.config.num_regs};
    const auto it = by_key.find(key);
    if (it == by_key.end()) {
      by_key.emplace(key, groups.size());
      groups.push_back(EnsembleGroup{key.first, key.second, {i}});
    } else {
      groups[it->second].members.push_back(i);
    }
  }
  return groups;
}

bool PointsInterchangeable(const SweepPoint& a, const SweepPoint& b) {
  return a.kind == b.kind &&
         a.config.fault_plan == b.config.fault_plan &&
         a.config.telemetry == nullptr && b.config.telemetry == nullptr &&
         a.config.checkpoint == nullptr && b.config.checkpoint == nullptr &&
         a.config.cancel == nullptr && b.config.cancel == nullptr &&
         core::FingerprintConfig(a.config) == core::FingerprintConfig(b.config);
}

EnsembleSchedule BuildEnsembleSchedule(const std::vector<SweepPoint>& points,
                                       bool check_architectural_state) {
  EnsembleSchedule schedule;
  schedule.groups = GroupByProgram(points);
  schedule.leader.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) schedule.leader[i] = i;

  for (std::size_t g = 0; g < schedule.groups.size(); ++g) {
    const EnsembleGroup& group = schedule.groups[g];
    bool wants_oracle = false;
    // Leaders elected so far within this group, in submission order. The
    // scan is quadratic in distinct configurations per group, which sweeps
    // keep small; the fingerprint comparison makes each probe cheap.
    std::vector<std::size_t> leaders;
    for (const std::size_t i : group.members) {
      const SweepPoint& p = points[i];
      if (check_architectural_state ||
          p.config.predictor == core::PredictorKind::kOracle) {
        wants_oracle = true;
      }
      bool matched = false;
      for (const std::size_t j : leaders) {
        if (PointsInterchangeable(points[j], p)) {
          schedule.leader[i] = j;
          matched = true;
          break;
        }
      }
      if (!matched) {
        leaders.push_back(i);
        schedule.run_order.push_back(i);
      }
    }
    if (wants_oracle && points[group.members.front()].program) {
      schedule.warm_groups.push_back(g);
    }
  }
  return schedule;
}

}  // namespace ultra::runtime
