// Ensemble batching for sweeps: grouping same-program points so shared
// work is paid once per program instead of once per point.
//
// A sweep is typically (few programs) x (many configurations). Points that
// share a program also share every program-derived artifact: the functional
// pre-run (oracle predictor outcome tables, architectural-state expecta-
// tions) and the decoded instruction stream itself. Ensemble batching
// exploits that structure in three deterministic steps:
//
//   1. Group points by program content (and register-file size, which is
//      part of the functional-oracle key).
//   2. Schedule each group's members adjacently, so workers claiming
//      consecutive slots keep the same program's working set hot, and warm
//      the functional oracle once per group before the members run.
//   3. Within a group, members that are *identical points* (same processor
//      kind and semantically identical configuration) form a lockstep
//      sub-ensemble: the simulation is deterministic, so every lane of the
//      sub-ensemble produces byte-identical results and only the leader
//      actually runs. Followers adopt the leader's result.
//
// None of this changes any outcome: exports are byte-identical with
// batching on or off (see SweepOptions::ensemble_batching). Only wall-clock
// and the runner's operational metrics differ.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/sweep_runner.hpp"

namespace ultra::runtime {

/// One same-program group of sweep points, in submission order.
struct EnsembleGroup {
  std::uint64_t program_fingerprint = 0;
  int num_regs = 0;
  /// Submission indices of the member points, ascending.
  std::vector<std::size_t> members;
};

/// Partitions @p points into same-program groups, keyed by program content
/// (isa::FingerprintProgram) plus the register-file size. Groups are ordered
/// by their first member's submission index; members stay ascending. Points
/// with a null program each form their own group (they fail in the runner
/// with a per-point error, and must not batch with anything).
[[nodiscard]] std::vector<EnsembleGroup> GroupByProgram(
    const std::vector<SweepPoint>& points);

/// True when @p a and @p b are interchangeable simulation points: same
/// processor kind, semantically identical configuration (FingerprintConfig),
/// the same fault plan (pointer identity -- plans are injected state), and
/// no caller-attached telemetry/checkpoint/cancel hooks, which would
/// observe the runs individually. Both points must already share a program
/// (callers only ask within a group). Workload labels may differ: they are
/// per-outcome metadata, not simulation inputs.
[[nodiscard]] bool PointsInterchangeable(const SweepPoint& a,
                                         const SweepPoint& b);

/// The batched execution plan for one sweep.
struct EnsembleSchedule {
  /// The same-program groups, in first-member order (see GroupByProgram).
  std::vector<EnsembleGroup> groups;
  /// Submission indices to actually simulate, same-program groups adjacent.
  /// Contains every group leader and every non-duplicate member.
  std::vector<std::size_t> run_order;
  /// leader[i] == i for points that run; leader[i] == j (j < i) marks point
  /// i as a lockstep follower of leader j, adopting j's result.
  std::vector<std::size_t> leader;
  /// Indices into groups of the groups whose members consult the
  /// functional oracle and should be pre-warmed.
  std::vector<std::size_t> warm_groups;
};

/// Builds the execution plan: groups by program, elects the first of each
/// set of interchangeable points as its lockstep leader, and lists the
/// groups whose members consult the functional oracle (an oracle branch
/// predictor, or @p check_architectural_state) for pre-warming. Entirely
/// deterministic: depends only on the points and the flag, never on
/// scheduling.
[[nodiscard]] EnsembleSchedule BuildEnsembleSchedule(
    const std::vector<SweepPoint>& points, bool check_architectural_state);

}  // namespace ultra::runtime
