#include "runtime/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "core/env.hpp"
#include "core/functional_sim_cache.hpp"
#include "persist/journal.hpp"
#include "runtime/ensemble.hpp"
#include "runtime/repro_bundle.hpp"
#include "runtime/sweep_journal.hpp"
#include "telemetry/telemetry.hpp"

namespace ultra::runtime {

int DefaultThreadCount() {
  if (const auto n = core::ParseEnvInt("ULTRA_SWEEP_THREADS", 1, 4096)) {
    return static_cast<int>(*n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::string SummarizeFailures(
    const std::vector<ParallelForError::Failure>& failures) {
  std::ostringstream os;
  os << failures.size() << " iteration" << (failures.size() == 1 ? "" : "s")
     << " failed:";
  const std::size_t shown = std::min<std::size_t>(failures.size(), 3);
  for (std::size_t i = 0; i < shown; ++i) {
    os << " [" << failures[i].index;
    if (!failures[i].context.empty()) os << ' ' << failures[i].context;
    os << "] " << failures[i].message << ';';
  }
  if (failures.size() > shown) {
    os << " ... (" << failures.size() - shown << " more)";
  }
  return os.str();
}

}  // namespace

ParallelForError::ParallelForError(std::vector<Failure> failures)
    : std::runtime_error(SummarizeFailures(failures)),
      failures_(std::move(failures)) {}

void ParallelFor(int num_threads, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  ParallelFor(num_threads, count, body, nullptr);
}

void ParallelFor(int num_threads, std::size_t count,
                 const std::function<void(std::size_t)>& body,
                 const std::function<std::string(std::size_t)>& describe) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  if (count == 0) return;

  // The label is computed only on the failure path: describe may allocate,
  // and the happy path should not pay for it.
  const auto context_of = [&describe](std::size_t i) -> std::string {
    if (!describe) return {};
    try {
      return describe(i);
    } catch (...) {
      return {};  // A broken describe must not mask the real failure.
    }
  };
  std::vector<ParallelForError::Failure> failures;
  const auto run_one = [&body, &context_of](std::size_t i)
      -> std::optional<ParallelForError::Failure> {
    try {
      body(i);
      return std::nullopt;
    } catch (const std::exception& e) {
      return ParallelForError::Failure{i, e.what(), context_of(i)};
    } catch (...) {
      return ParallelForError::Failure{i, "unknown error", context_of(i)};
    }
  };

  if (num_threads == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (auto f = run_one(i)) failures.push_back(std::move(*f));
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::mutex failures_mu;
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        if (auto f = run_one(i)) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back(std::move(*f));
        }
      }
    };
    const std::size_t spawn =
        std::min<std::size_t>(static_cast<std::size_t>(num_threads), count);
    std::vector<std::thread> threads;
    threads.reserve(spawn);
    for (std::size_t t = 0; t < spawn; ++t) threads.emplace_back(worker);
    for (auto& th : threads) th.join();
  }

  if (!failures.empty()) {
    // Completion order is nondeterministic; index order is not.
    std::sort(failures.begin(), failures.end(),
              [](const auto& a, const auto& b) { return a.index < b.index; });
    throw ParallelForError(std::move(failures));
  }
}

namespace {

/// Compares a cycle-level run against the shared functional oracle.
/// Returns an empty string on agreement.
std::string CheckArchitecturalState(const SweepPoint& point,
                                    const core::RunResult& result) {
  const auto fn = core::FunctionalSimCache::Global().Get(
      *point.program, point.config.num_regs);
  if (!fn->halted) return {};  // No terminating reference to compare to.
  if (!result.halted) {
    return "processor hit max_cycles but the functional reference halts";
  }
  std::ostringstream err;
  if (result.committed != fn->instructions) {
    err << "committed " << result.committed << " instructions, expected "
        << fn->instructions;
    return err.str();
  }
  for (std::size_t r = 0; r < fn->regs.size(); ++r) {
    if (result.regs.at(r) != fn->regs[r]) {
      err << "r" << r << " = " << result.regs.at(r) << ", expected "
          << fn->regs[r];
      return err.str();
    }
  }
  if (result.memory != fn->memory.Snapshot()) {
    return "final data memory differs from the functional reference";
  }
  return {};
}

/// Deterministic per-(point, attempt) jitter in [0.5, 1.5): a SplitMix-style
/// hash, not a global RNG, so the sweep's behavior is reproducible and
/// independent of scheduling.
double BackoffJitter(std::size_t index, int attempt) {
  std::uint64_t h = (static_cast<std::uint64_t>(index) + 1) *
                    0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(attempt) * 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return 0.5 + static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-point watchdog slot: the worker arms deadline_ns before a run and
/// disarms it after; the watchdog thread raises cancel once the armed
/// deadline passes.
struct PointWatch {
  std::atomic<bool> cancel{false};
  std::atomic<std::int64_t> deadline_ns{0};  // 0 = disarmed.
};

/// Bucket edges for sweep.point_wall_time_us: decades from 100us to 1min.
constexpr std::uint64_t kWallTimeBoundsUs[] = {
    100, 1'000, 10'000, 100'000, 1'000'000, 10'000'000, 60'000'000};

/// Pre-registered handles for the runner's own metrics. Registration
/// happens on the calling thread before the workers start; each worker
/// then writes its own per-point shard, so no slot is ever contended.
struct RunnerMetrics {
  telemetry::MetricsRegistry registry;
  telemetry::CounterId attempts = registry.Counter("sweep.attempts");
  telemetry::CounterId retries = registry.Counter("sweep.retries");
  telemetry::CounterId deadline_exceeded =
      registry.Counter("sweep.deadline_exceeded");
  telemetry::CounterId cancelled_points =
      registry.Counter("sweep.cancelled_points");
  telemetry::CounterId failed_points = registry.Counter("sweep.failed_points");
  telemetry::CounterId backoff_wait_us =
      registry.Counter("sweep.backoff_wait_us");
  telemetry::CounterId oracle_prewarms =
      registry.Counter("sweep.oracle_prewarms");
  telemetry::CounterId ensemble_followers =
      registry.Counter("sweep.ensemble_followers");
  telemetry::HistogramId point_wall_time_us =
      registry.Histogram("sweep.point_wall_time_us", kWallTimeBoundsUs);
  telemetry::CounterId cache_hits = registry.Counter("fnsim_cache.hits");
  telemetry::CounterId cache_misses = registry.Counter("fnsim_cache.misses");
  telemetry::CounterId cache_evictions =
      registry.Counter("fnsim_cache.evictions");
};

}  // namespace

std::vector<const SweepOutcome*> Quarantine(
    const std::vector<SweepOutcome>& outcomes) {
  std::vector<const SweepOutcome*> bad;
  for (const SweepOutcome& o : outcomes) {
    if (!o.ok) bad.push_back(&o);
  }
  return bad;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options),
      num_threads_(options.num_threads > 0 ? options.num_threads
                                           : DefaultThreadCount()) {}

std::vector<SweepOutcome> SweepRunner::Run(
    const std::vector<SweepPoint>& points) const {
  return RunWithReport(points).outcomes;
}

SweepReport SweepRunner::RunWithReport(
    const std::vector<SweepPoint>& points) const {
  return RunImpl(points, nullptr, nullptr);
}

SweepReport SweepRunner::RunJournaled(const std::vector<SweepPoint>& points,
                                      const std::string& journal_path) const {
  persist::JournalWriter journal(journal_path, /*truncate=*/true);
  journal.Append(kJournalRecHeader,
                 EncodeJournalHeader(FingerprintSweep(points, options_),
                                     points.size()));
  return RunImpl(points, &journal, nullptr);
}

SweepReport SweepRunner::Resume(const std::vector<SweepPoint>& points,
                                const std::string& journal_path) const {
  const SweepJournalContents contents = ReadSweepJournal(journal_path);
  if (!contents.has_header) {
    // Missing, empty, or torn-before-the-header journal: nothing to trust,
    // start a fresh journaled sweep.
    return RunJournaled(points, journal_path);
  }
  if (contents.sweep_fingerprint != FingerprintSweep(points, options_) ||
      contents.point_count != points.size()) {
    throw std::runtime_error(
        "sweep journal '" + journal_path +
        "' was written for a different sweep (fingerprint mismatch); "
        "refusing to mix results");
  }
  std::unordered_map<std::size_t, SweepOutcome> completed;
  for (const SweepOutcome& o : contents.outcomes) {
    if (o.index < points.size()) completed.insert_or_assign(o.index, o);
  }
  // Reclaim a torn or corrupt tail before reopening for append: O_APPEND
  // would land new records after the garbage, and readers (which stop at
  // the first bad frame) would never see them — silently orphaned work.
  persist::RepairJournal(journal_path);
  persist::JournalWriter journal(journal_path, /*truncate=*/false);
  return RunImpl(points, &journal, &completed);
}

SweepReport SweepRunner::RunImpl(
    const std::vector<SweepPoint>& points, persist::JournalWriter* journal,
    const std::unordered_map<std::size_t, SweepOutcome>* completed) const {
  SweepReport report;
  std::vector<SweepOutcome>& outcomes = report.outcomes;
  outcomes.resize(points.size());
  const double deadline_s = options_.point_deadline_seconds;
  const int max_attempts = std::max(1, options_.max_attempts);

  // Runner metrics: handles are registered here (cold path, calling
  // thread); every point gets its own shard so workers never share a slot,
  // and the shards merge in submission order after the join.
  RunnerMetrics rm;
  std::vector<telemetry::MetricSheet> shards(points.size());
  const core::FunctionalSimCache::Stats cache_before =
      core::FunctionalSimCache::Global().stats();

  // Deadline watchdog: one background thread scans the armed slots. The
  // cores poll CoreConfig::cancel every 1024 cycles, so enforcement is
  // cooperative (a few microseconds of slack, never a torn simulation).
  // The same thread fans a sweep-level cancel (SweepOptions::cancel, raised
  // by a cancelled service request or a draining daemon) into every
  // per-point slot, so one flag cooperatively stops the whole sweep.
  const std::atomic<bool>* sweep_cancel = options_.cancel;
  const bool watched = deadline_s > 0 || sweep_cancel != nullptr;
  std::vector<PointWatch> watch(watched ? points.size() : 0);
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (watched && !points.empty()) {
    watchdog = std::thread([&] {
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        const bool cancel_all =
            sweep_cancel != nullptr &&
            sweep_cancel->load(std::memory_order_acquire);
        const std::int64_t now = SteadyNowNs();
        for (PointWatch& w : watch) {
          const std::int64_t d = w.deadline_ns.load(std::memory_order_acquire);
          if (cancel_all || (d != 0 && now >= d)) {
            w.cancel.store(true, std::memory_order_release);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::mutex journal_mu;
  const auto body = [&](std::size_t i) {
    const SweepPoint& point = points[i];
    SweepOutcome& out = outcomes[i];
    if (completed != nullptr) {
      const auto it = completed->find(i);
      if (it != completed->end()) {
        // Restored from the journal: identical exported fields, no re-run,
        // no re-journal. The config is re-attached from the point (the
        // journal omits it; the sweep fingerprint proved it matches).
        out = it->second;
        out.config = point.config;
        return;
      }
    }
    out.index = i;
    out.kind = point.kind;
    out.workload = point.workload;
    out.config = point.config;
    telemetry::MetricSheet& shard = shards[i];
    shard.Bind(&rm.registry);
    PointWatch* w = watched ? &watch[i] : nullptr;
    const auto sweep_cancelled = [&] {
      return sweep_cancel != nullptr &&
             sweep_cancel->load(std::memory_order_acquire);
    };
    const auto sweep_draining = [&] {
      return options_.drain != nullptr &&
             options_.drain->load(std::memory_order_acquire);
    };
    const bool want_bundle = !options_.bundle_dir.empty();
    const bool want_ckpt = want_bundle && options_.checkpoint_every > 0;
    std::optional<persist::Checkpoint> last_ckpt;
    const auto start = std::chrono::steady_clock::now();
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (sweep_cancelled() || sweep_draining()) {
        // Cancelled, or draining before the point's first attempt began:
        // don't spend simulation time on work nobody will read. (A retry
        // under drain is also skipped — the point already failed once and
        // a draining sweep owes it nothing.)
        out.ok = false;
        out.cancelled = true;
        out.error = "cancelled";
        break;
      }
      out.attempts = attempt;
      out.deadline_exceeded = false;
      out.cancelled = false;
      std::string err;
      bool retryable = true;
      try {
        if (!point.program) throw std::invalid_argument("null program");
        core::CoreConfig cfg = point.config;
        // A fresh sink per attempt: a retried attempt must not inherit the
        // failed attempt's counts, and the simulation is single-threaded,
        // so the sink never crosses a thread.
        telemetry::RunTelemetry rt;
        if (options_.collect_metrics) cfg.telemetry = &rt;
        // Periodic in-memory checkpoints so a failing attempt's bundle can
        // carry the state nearest the failure. Reset per attempt: the
        // bundle documents the *last* (failing) attempt.
        persist::CheckpointControl ckpt_ctl;
        if (want_ckpt) {
          last_ckpt.reset();
          ckpt_ctl.save_every = options_.checkpoint_every;
          ckpt_ctl.sink = [&last_ckpt](persist::Checkpoint&& c) {
            last_ckpt = std::move(c);
          };
          cfg.checkpoint = &ckpt_ctl;
        }
        if (w) {
          w->cancel.store(false, std::memory_order_release);
          cfg.cancel = &w->cancel;
          if (deadline_s > 0) {
            w->deadline_ns.store(
                SteadyNowNs() + static_cast<std::int64_t>(deadline_s * 1e9),
                std::memory_order_release);
          }
        }
        auto proc = core::MakeProcessor(point.kind, cfg);
        out.result = proc->Run(*point.program);
        if (options_.collect_metrics) out.metrics = rt.Snapshot();
        if (w) w->deadline_ns.store(0, std::memory_order_release);
        if (w && !out.result.halted &&
            w->cancel.load(std::memory_order_acquire)) {
          if (sweep_cancelled()) {
            // Sweep-level cancel, not this point's deadline: the partial
            // run is abandoned and will be redone if the sweep resumes.
            out.cancelled = true;
            err = "cancelled";
            retryable = false;
          } else {
            out.deadline_exceeded = true;
            std::ostringstream os;
            os << "deadline exceeded (" << deadline_s << "s) after "
               << out.result.cycles << " cycles";
            err = os.str();
          }
        } else if (options_.check_architectural_state) {
          err = CheckArchitecturalState(point, out.result);
          retryable = err.empty();  // An oracle mismatch is deterministic.
        }
      } catch (const std::invalid_argument& e) {
        err = e.what();
        retryable = false;  // Rejected configs fail identically every time.
      } catch (const std::exception& e) {
        err = e.what();
        if (err.empty()) err = "unknown error";
      } catch (...) {
        err = "unknown error";
      }
      if (w) w->deadline_ns.store(0, std::memory_order_release);
      if (out.deadline_exceeded) shard.Add(rm.deadline_exceeded);
      if (err.empty()) {
        out.ok = true;
        out.error.clear();
        break;
      }
      out.ok = false;
      out.error = err;
      out.attempt_errors.push_back(std::move(err));
      if (!retryable || attempt == max_attempts) break;
      const double delay = options_.retry_backoff_seconds *
                           static_cast<double>(1 << (attempt - 1)) *
                           BackoffJitter(i, attempt);
      if (delay > 0) {
        shard.Add(rm.backoff_wait_us,
                  static_cast<std::uint64_t>(delay * 1e6));
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
    }
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (out.cancelled) shard.Add(rm.cancelled_points);
    shard.Add(rm.attempts, static_cast<std::uint64_t>(out.attempts));
    if (out.attempts > 1) {
      shard.Add(rm.retries, static_cast<std::uint64_t>(out.attempts - 1));
    }
    if (!out.ok) shard.Add(rm.failed_points);
    shard.Observe(rm.point_wall_time_us,
                  static_cast<std::uint64_t>(out.wall_seconds * 1e6));
    if (!out.ok && want_bundle && point.program) {
      // Best-effort: a full disk or unwritable bundle_dir must not turn a
      // recorded failure into a sweep abort.
      try {
        WriteReproBundle(options_.bundle_dir, point, out,
                         last_ckpt ? &*last_ckpt : nullptr);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "repro bundle for point %zu failed: %s\n", i,
                     e.what());
      }
    }
    if (journal != nullptr && !out.cancelled) {
      // Journal failures DO propagate (via ParallelForError after the
      // loop): a resume contract against a silently un-written journal
      // would be worse than a loud error. Cancelled points are never
      // journaled: recording them would make a resumed sweep keep the
      // cancellation instead of running the point for real.
      persist::Encoder e;
      EncodeOutcome(e, out);
      const std::lock_guard<std::mutex> lock(journal_mu);
      journal->Append(kJournalRecOutcome, e.bytes());
    }
  };
  const auto describe = [&points](std::size_t i) {
    return points[i].workload + " (" +
           std::string(core::ProcessorKindName(points[i].kind)) + ")";
  };

  // Ensemble batching (runtime/ensemble.hpp): group same-program points,
  // warm the functional oracle once per group, schedule groups adjacently,
  // and elect lockstep leaders among interchangeable points. Outcomes are
  // byte-identical with batching on or off; with it off every point leads
  // itself and the run order is plain submission order.
  EnsembleSchedule schedule;
  if (options_.ensemble_batching && points.size() > 1) {
    schedule =
        BuildEnsembleSchedule(points, options_.check_architectural_state);
  } else {
    schedule.leader.resize(points.size());
    schedule.run_order.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      schedule.leader[i] = i;
      schedule.run_order.push_back(i);
    }
  }
  const auto restored = [&completed](std::size_t i) {
    return completed != nullptr && completed->count(i) != 0;
  };
  std::size_t prewarms = 0;
  if (!schedule.warm_groups.empty()) {
    std::vector<std::size_t> warm;  // Submission index of each warm target.
    for (const std::size_t g : schedule.warm_groups) {
      const EnsembleGroup& group = schedule.groups[g];
      const bool any_to_run =
          std::any_of(group.members.begin(), group.members.end(),
                      [&](std::size_t i) { return !restored(i); });
      if (any_to_run) warm.push_back(group.members.front());
    }
    prewarms = warm.size();
    ParallelFor(num_threads_, warm.size(), [&](std::size_t k) {
      const SweepPoint& p = points[warm[k]];
      try {
        core::FunctionalSimCache::Global().Get(*p.program, p.config.num_regs);
      } catch (...) {
        // Best-effort: the owning point reports the real error when it runs.
      }
    });
  }

  // Followers restored from the journal must restore through body (it
  // copies the journaled outcome); followers that are not restored are
  // filled in from their leader after the join.
  std::vector<std::size_t> run_list = schedule.run_order;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (schedule.leader[i] != i && restored(i)) run_list.push_back(i);
  }

  const auto run_indices = [&](const std::vector<std::size_t>& indices) {
    ParallelFor(
        num_threads_, indices.size(),
        [&](std::size_t j) { body(indices[j]); },
        [&](std::size_t j) { return describe(indices[j]); });
  };
  try {
    run_indices(run_list);

    // Lockstep followers: the simulation is deterministic, so a follower of
    // a successful leader adopts its result outright. A failed leader may
    // have failed transiently (deadline, exception), so its followers run
    // for real rather than inheriting a failure they might not reproduce.
    std::vector<std::size_t> rerun;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t lead = schedule.leader[i];
      if (lead == i || restored(i)) continue;
      const SweepOutcome& leader_out = outcomes[lead];
      if (!leader_out.ok) {
        rerun.push_back(i);
        continue;
      }
      SweepOutcome& out = outcomes[i];
      out = leader_out;
      out.index = i;
      out.workload = points[i].workload;
      out.config = points[i].config;
      out.wall_seconds = 0.0;  // Informational; the follower did not run.
      telemetry::MetricSheet& shard = shards[i];
      shard.Bind(&rm.registry);
      shard.Add(rm.ensemble_followers);
      if (journal != nullptr) {
        persist::Encoder e;
        EncodeOutcome(e, out);
        const std::lock_guard<std::mutex> lock(journal_mu);
        journal->Append(kJournalRecOutcome, e.bytes());
      }
    }
    run_indices(rerun);
  } catch (...) {
    // Journal I/O failures surface as ParallelForError; the watchdog must
    // still be torn down before the exception leaves this frame.
    watchdog_stop.store(true, std::memory_order_release);
    if (watchdog.joinable()) watchdog.join();
    throw;
  }

  watchdog_stop.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();

  // Aggregate the per-point shards in submission order, then fold in the
  // process-wide functional-sim cache delta observed across this sweep.
  telemetry::MetricSheet total(&rm.registry);
  for (const telemetry::MetricSheet& shard : shards) total.MergeFrom(shard);
  total.Add(rm.oracle_prewarms, prewarms);
  const core::FunctionalSimCache::Stats cache_after =
      core::FunctionalSimCache::Global().stats();
  total.Add(rm.cache_hits, cache_after.hits - cache_before.hits);
  total.Add(rm.cache_misses, cache_after.misses - cache_before.misses);
  total.Add(rm.cache_evictions,
            cache_after.evictions - cache_before.evictions);
  report.runner_metrics = total.Snapshot();
  return report;
}

}  // namespace ultra::runtime
