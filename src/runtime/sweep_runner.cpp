#include "runtime/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/functional_sim_cache.hpp"

namespace ultra::runtime {

int DefaultThreadCount() {
  if (const char* env = std::getenv("ULTRA_SWEEP_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(int num_threads, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  if (count == 0) return;
  if (num_threads == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const std::size_t spawn =
      std::min<std::size_t>(static_cast<std::size_t>(num_threads), count);
  std::vector<std::thread> threads;
  threads.reserve(spawn);
  for (std::size_t t = 0; t < spawn; ++t) threads.emplace_back(worker);
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

/// Compares a cycle-level run against the shared functional oracle.
/// Returns an empty string on agreement.
std::string CheckArchitecturalState(const SweepPoint& point,
                                    const core::RunResult& result) {
  const auto fn = core::FunctionalSimCache::Global().Get(
      *point.program, point.config.num_regs);
  if (!fn->halted) return {};  // No terminating reference to compare to.
  if (!result.halted) {
    return "processor hit max_cycles but the functional reference halts";
  }
  std::ostringstream err;
  if (result.committed != fn->instructions) {
    err << "committed " << result.committed << " instructions, expected "
        << fn->instructions;
    return err.str();
  }
  for (std::size_t r = 0; r < fn->regs.size(); ++r) {
    if (result.regs.at(r) != fn->regs[r]) {
      err << "r" << r << " = " << result.regs.at(r) << ", expected "
          << fn->regs[r];
      return err.str();
    }
  }
  if (result.memory != fn->memory.Snapshot()) {
    return "final data memory differs from the functional reference";
  }
  return {};
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options),
      num_threads_(options.num_threads > 0 ? options.num_threads
                                           : DefaultThreadCount()) {}

std::vector<SweepOutcome> SweepRunner::Run(
    const std::vector<SweepPoint>& points) const {
  std::vector<SweepOutcome> outcomes(points.size());
  ParallelFor(num_threads_, points.size(), [&](std::size_t i) {
    const SweepPoint& point = points[i];
    SweepOutcome& out = outcomes[i];
    out.index = i;
    out.kind = point.kind;
    out.workload = point.workload;
    out.config = point.config;
    const auto start = std::chrono::steady_clock::now();
    try {
      if (!point.program) throw std::invalid_argument("null program");
      auto proc = core::MakeProcessor(point.kind, point.config);
      out.result = proc->Run(*point.program);
      out.ok = true;
      if (options_.check_architectural_state) {
        if (auto err = CheckArchitecturalState(point, out.result);
            !err.empty()) {
          out.ok = false;
          out.error = std::move(err);
        }
      }
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
    } catch (...) {
      out.ok = false;
      out.error = "unknown error";
    }
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  });
  return outcomes;
}

}  // namespace ultra::runtime
