// Sweep-level journaling: the record schema SweepRunner writes through
// persist::JournalWriter so an interrupted sweep resumes without redoing
// finished points.
//
// A journal holds one header record followed by one outcome record per
// completed point, in completion order (nondeterministic across runs; the
// runner re-sorts by submission index). The header pins the sweep identity
// — a fingerprint over every point's (kind, workload, config, program) plus
// the outcome-affecting options — and Resume refuses a journal whose
// fingerprint does not match the points it was handed, so a stale journal
// can never silently corrupt a different sweep's results.
//
// Outcome records deliberately omit wall_seconds (excluded from exports),
// the per-instruction timeline, and the final memory image (bulky and not
// exporter-visible); everything WriteCsv/WriteJson reads is present, which
// is what makes a resumed sweep's artifact byte-identical. See
// docs/runtime.md for the field-by-field schema.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "persist/serial.hpp"
#include "runtime/sweep_runner.hpp"

namespace ultra::runtime {

// Version 2: outcome records carry RunStats::mem_hierarchy (L1D/L2/icache
// hit/miss/write-back and prefetch counters).
inline constexpr std::uint32_t kSweepJournalVersion = 2;

/// Record types within the persist::JournalWriter framing.
inline constexpr std::uint32_t kJournalRecHeader = 1;
inline constexpr std::uint32_t kJournalRecOutcome = 2;

/// Identity of a sweep: FNV-1a over the point list (kind, workload, config
/// fingerprint, program fingerprint) and the options that shape outcomes
/// (check_architectural_state, max_attempts, collect_metrics). Thread
/// count, deadlines, and backoff are excluded: they affect timing, not the
/// deterministic exported fields.
[[nodiscard]] std::uint64_t FingerprintSweep(
    const std::vector<SweepPoint>& points, const SweepOptions& options);

/// Serializes every exporter-visible field of @p o (config is NOT stored;
/// Resume re-attaches it from the matching SweepPoint, which the sweep
/// fingerprint guarantees is identical).
void EncodeOutcome(persist::Encoder& e, const SweepOutcome& o);
/// Throws persist::FormatError on malformed input.
[[nodiscard]] SweepOutcome DecodeOutcome(persist::Decoder& d);

/// Everything recovered from a journal file.
struct SweepJournalContents {
  bool has_header = false;
  std::uint32_t version = 0;
  std::uint64_t sweep_fingerprint = 0;
  std::uint64_t point_count = 0;
  std::vector<SweepOutcome> outcomes;  // Completion order, as recorded.
};

[[nodiscard]] std::vector<std::uint8_t> EncodeJournalHeader(
    std::uint64_t sweep_fingerprint, std::uint64_t point_count);

/// Reads @p path (missing file: empty contents, has_header == false).
/// Records after the first torn/corrupt frame are discarded by the framing
/// layer; records of unknown type are skipped for forward compatibility.
[[nodiscard]] SweepJournalContents ReadSweepJournal(const std::string& path);

}  // namespace ultra::runtime
