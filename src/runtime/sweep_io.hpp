// CSV / JSON export of sweep results, plus the shared command-line flags
// the migrated benches accept.
//
// Both formats carry the same per-point record (see docs/runtime.md for the
// full schema) and are deterministic: field order is fixed, floating-point
// values use a fixed format, and per-point wall times are excluded, so two
// sweeps of the same points produce byte-identical files regardless of the
// thread count.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/sweep_runner.hpp"

namespace ultra::runtime {

/// One row per outcome; the first line is the header. When outcomes carry
/// metrics snapshots (SweepOptions::collect_metrics), a trailer of
/// "# metrics index=..." comment lines follows the quarantine section.
void WriteCsv(std::ostream& os, const std::vector<SweepOutcome>& outcomes);

/// A JSON array of per-point objects. Points with a non-empty metrics
/// snapshot additionally carry a "metrics" array of
/// {name, kind, value | count/sum/bounds/buckets} objects.
void WriteJson(std::ostream& os, const std::vector<SweepOutcome>& outcomes);

/// Flags shared by the sweep-based benches:
///   --threads=N     worker threads (default: ULTRA_SWEEP_THREADS or cores)
///   --csv=PATH      write results as CSV after the run
///   --json=PATH     write results as JSON after the run
///   --journal=PATH  journal each completed point to PATH (crash-safe)
///   --resume        with --journal: skip points already in the journal
/// Recognized flags are removed from argv; everything else is left for the
/// binary's own positional arguments.
struct SweepCli {
  int threads = 0;  // 0 = DefaultThreadCount().
  std::string csv_path;
  std::string json_path;
  std::string journal_path;  // Empty: no journaling.
  bool resume = false;       // Only meaningful with journal_path set.
};
SweepCli ParseSweepCli(int& argc, char** argv);

/// Runs @p points through @p runner honoring the CLI's journal flags:
/// plain RunWithReport without --journal, RunJournaled with it, and
/// Resume with --journal --resume.
SweepReport RunSweepCli(const SweepRunner& runner, const SweepCli& cli,
                        const std::vector<SweepPoint>& points);

/// Writes the requested export files (no-op for empty paths). Each file is
/// committed atomically (temp + rename), so an export interrupted by a
/// crash never leaves a half-written artifact where a complete one is
/// expected. Returns false and prints to stderr when a file cannot be
/// written.
bool ExportOutcomes(const SweepCli& cli,
                    const std::vector<SweepOutcome>& outcomes);

}  // namespace ultra::runtime
