#include "fault/injector.hpp"

namespace ultra::fault {

void FaultInjector::BeginCycle(std::uint64_t cycle) {
  if (!active()) return;
  begin_ = end_;
  while (begin_ < events_.size() && events_[begin_].cycle < cycle) ++begin_;
  end_ = begin_;
  while (end_ < events_.size() && events_[end_].cycle == cycle) ++end_;
  stats_.injected += end_ - begin_;
}

bool FaultInjector::HasHazardousPending() const {
  for (const FaultEvent& e : pending()) {
    if (IsHazardous(e.kind)) return true;
  }
  return false;
}

void FaultInjector::ApplyToBinding(const FaultEvent& e,
                                   datapath::RegBinding& cell) {
  switch (e.kind) {
    case FaultKind::kCorruptValue:
      cell.value ^= static_cast<isa::Word>(e.payload | 1);  // Never a no-op.
      ++stats_.value_corruptions;
      break;
    case FaultKind::kFlipReady:
      cell.ready = !cell.ready;
      ++stats_.ready_flips;
      break;
    case FaultKind::kDropDelivery:
      if (!cell.ready) {
        ++stats_.masked;
      } else {
        cell.ready = false;
        ++stats_.dropped_deliveries;
      }
      break;
    default:
      break;  // Control kinds are applied by the core.
  }
}

void FaultInjector::ApplyDatapathFaults(datapath::UsiDatapathState& state) {
  const int n = state.num_stations();
  const int L = state.num_regs();
  for (const FaultEvent& e : pending()) {
    if (!TargetsDatapath(e.kind)) continue;
    ApplyToBinding(e, state.FaultCell(e.station % n, e.reg % L));
  }
}

void FaultInjector::ApplyDatapathFaults(datapath::HybridDatapathState& state) {
  const int n = state.num_stations();
  for (const FaultEvent& e : pending()) {
    if (!TargetsDatapath(e.kind)) continue;
    datapath::ResolvedArgs& args = state.FaultArgs(e.station % n);
    ApplyToBinding(e, e.reg % 2 == 0 ? args.arg1 : args.arg2);
  }
}

void FaultInjector::ApplyDatapathFaults(datapath::UsiiPropagation& prop) {
  if (prop.args.empty()) return;
  const std::size_t n = prop.args.size();
  for (const FaultEvent& e : pending()) {
    if (!TargetsDatapath(e.kind)) continue;
    datapath::ResolvedArgs& args =
        prop.args[static_cast<std::size_t>(e.station) % n];
    ApplyToBinding(e, e.reg % 2 == 0 ? args.arg1 : args.arg2);
  }
}

}  // namespace ultra::fault
