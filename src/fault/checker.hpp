// DatapathChecker: the policy and bookkeeping half of datapath_eval =
// kChecked. The cores own the actual cross-validation (snapshotting the
// consumed delivery buffer, recomputing it from the inputs via the full
// path, and comparing) because each core's buffer shape differs; this
// class decides *when* a check runs and keeps the per-run counters.
//
// Check cadence (docs/robustness.md):
//  * every `stride` cycles (cycle % stride == 0), and
//  * eagerly on any cycle with a hazardous fault staged — value/ready
//    corruptions latch into issued arguments the same cycle they land, so
//    a periodic check alone could let a wrong value commit undetected.
#pragma once

#include <algorithm>
#include <cstdint>

#include "persist/serial.hpp"

namespace ultra::fault {

class DatapathChecker {
 public:
  struct Stats {
    std::uint64_t checks = 0;       // Cross-validations run.
    std::uint64_t divergences = 0;  // Mismatched cells, summed over checks.
    std::uint64_t resyncs = 0;      // Checks that found >= 1 mismatch.
    std::uint64_t last_divergence_cycle = 0;
  };

  explicit DatapathChecker(int stride) : stride_(std::max(1, stride)) {}

  [[nodiscard]] int stride() const { return stride_; }

  /// True when a cross-validation should run this cycle.
  [[nodiscard]] bool Due(std::uint64_t cycle, bool hazard_staged) const {
    return hazard_staged || cycle % static_cast<std::uint64_t>(stride_) == 0;
  }

  void RecordCheck() { ++stats_.checks; }

  /// Call after a check that found @p mismatched_cells > 0 differing
  /// cells; the core has already resynchronized from the full path.
  void RecordDivergence(std::uint64_t cycle, std::uint64_t mismatched_cells) {
    stats_.divergences += mismatched_cells;
    ++stats_.resyncs;
    stats_.last_divergence_cycle = cycle;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Checkpoint support (the stride is configuration, not state).
  void SaveState(persist::Encoder& e) const {
    e.U64(stats_.checks);
    e.U64(stats_.divergences);
    e.U64(stats_.resyncs);
    e.U64(stats_.last_divergence_cycle);
  }
  void RestoreState(persist::Decoder& d) {
    stats_.checks = d.U64();
    stats_.divergences = d.U64();
    stats_.resyncs = d.U64();
    stats_.last_divergence_cycle = d.U64();
  }

 private:
  int stride_;
  Stats stats_;
};

}  // namespace ultra::fault
