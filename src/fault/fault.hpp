// Umbrella header for the fault-injection subsystem. See
// docs/robustness.md for the fault model and the checked-evaluation
// contract.
#pragma once

#include "fault/checker.hpp"     // IWYU pragma: export
#include "fault/fault_plan.hpp"  // IWYU pragma: export
#include "fault/injector.hpp"    // IWYU pragma: export
