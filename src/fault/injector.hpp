// FaultInjector: replays a FaultPlan against a running core.
//
// The injector is a cursor over the plan's cycle-sorted events plus the
// application helpers that write the datapath-targeting kinds into each
// flavor of delivery buffer. The control kinds (kStallStation,
// kForceMispredict) are applied by the cores themselves — they need the
// window geometry and the fetch engine — and reported back here so one
// FaultStats covers the whole run.
//
// All three helpers mutate the *delivered* side of a datapath (what the
// stations read), never the inputs, so a fault models a garbled or lost
// message on the wires, not a mis-programmed station. Under the
// incremental evaluation paths the corruption persists until the affected
// column is naturally recomputed or a checker resync rebuilds it from the
// inputs — exactly the window in which a real latched soft error would be
// live.
#pragma once

#include <cstdint>
#include <span>

#include "datapath/hybrid.hpp"
#include "datapath/usi.hpp"
#include "datapath/usii.hpp"
#include "fault/fault_plan.hpp"
#include "persist/serial.hpp"

namespace ultra::fault {

struct FaultStats {
  std::uint64_t injected = 0;  // Events staged into an executed cycle.
  std::uint64_t value_corruptions = 0;
  std::uint64_t ready_flips = 0;
  std::uint64_t dropped_deliveries = 0;
  std::uint64_t stalls = 0;
  std::uint64_t forced_mispredicts = 0;
  /// Events that landed on a site already in the faulted state (e.g. a
  /// dropped delivery on a not-ready cell) or on a site the core cannot
  /// perturb (e.g. a forced mispredict on an empty window / halt slot).
  std::uint64_t masked = 0;
};

class FaultInjector {
 public:
  /// @p plan may be null (inactive injector; every method is a no-op).
  /// The plan must outlive the injector.
  explicit FaultInjector(const FaultPlan* plan = nullptr)
      : plan_(plan), events_(plan ? plan->events() : std::span<const FaultEvent>{}) {}

  [[nodiscard]] bool active() const { return !events_.empty(); }

  /// Stages the events due at @p cycle; earlier never-staged events are
  /// skipped. Cycles must be non-decreasing across calls (one injector per
  /// core Run).
  void BeginCycle(std::uint64_t cycle);

  /// The events staged by the last BeginCycle.
  [[nodiscard]] std::span<const FaultEvent> pending() const {
    return events_.subspan(begin_, end_ - begin_);
  }

  /// True when any staged event is hazardous (can silently corrupt a
  /// value); checked mode cross-validates eagerly on such cycles.
  [[nodiscard]] bool HasHazardousPending() const;

  /// Applies the staged datapath-targeting events to an Ultrascalar I ring
  /// state: the event hits incoming cell (station % n, reg % L).
  void ApplyDatapathFaults(datapath::UsiDatapathState& state);

  /// Hybrid: the event hits station (station % n)'s resolved argument slot
  /// (reg % 2 selects arg1/arg2).
  void ApplyDatapathFaults(datapath::HybridDatapathState& state);

  /// Ultrascalar II: the event hits prop.args[station % n], slot reg % 2 —
  /// a garbled crosspoint delivery in the grid/mesh.
  void ApplyDatapathFaults(datapath::UsiiPropagation& prop);

  /// Bookkeeping for the core-applied control kinds.
  void NoteStall() { ++stats_.stalls; }
  void NoteForcedMispredict() { ++stats_.forced_mispredicts; }
  void NoteMasked() { ++stats_.masked; }

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  /// Checkpoint support: the cursor over the plan plus the accumulated
  /// stats. Restore requires an injector constructed over the same plan.
  void SaveState(persist::Encoder& e) const {
    e.U64(begin_);
    e.U64(end_);
    e.U64(stats_.injected);
    e.U64(stats_.value_corruptions);
    e.U64(stats_.ready_flips);
    e.U64(stats_.dropped_deliveries);
    e.U64(stats_.stalls);
    e.U64(stats_.forced_mispredicts);
    e.U64(stats_.masked);
  }
  void RestoreState(persist::Decoder& d) {
    begin_ = static_cast<std::size_t>(d.U64());
    end_ = static_cast<std::size_t>(d.U64());
    if (end_ > events_.size() || begin_ > end_) {
      throw persist::FormatError("fault cursor out of range");
    }
    stats_.injected = d.U64();
    stats_.value_corruptions = d.U64();
    stats_.ready_flips = d.U64();
    stats_.dropped_deliveries = d.U64();
    stats_.stalls = d.U64();
    stats_.forced_mispredicts = d.U64();
    stats_.masked = d.U64();
  }

 private:
  void ApplyToBinding(const FaultEvent& e, datapath::RegBinding& cell);

  const FaultPlan* plan_ = nullptr;
  std::span<const FaultEvent> events_;
  std::size_t begin_ = 0;  // Staged range [begin_, end_) of events_.
  std::size_t end_ = 0;
  FaultStats stats_;
};

}  // namespace ultra::fault
