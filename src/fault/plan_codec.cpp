#include "fault/plan_codec.hpp"

namespace ultra::fault {

void EncodeFaultPlan(persist::Encoder& e, const FaultPlan& plan) {
  const FaultPlanProvenance& p = plan.provenance();
  e.Bool(p.randomized);
  e.U64(p.seed);
  e.F64(p.rate_per_cycle);
  e.U64(p.horizon_cycles);
  e.U32(static_cast<std::uint32_t>(plan.size()));
  for (const FaultEvent& ev : plan.events()) {
    e.U64(ev.cycle);
    e.U8(static_cast<std::uint8_t>(ev.kind));
    e.I32(ev.station);
    e.I32(ev.reg);
    e.U64(ev.payload);
  }
}

FaultPlan DecodeFaultPlan(persist::Decoder& d) {
  FaultPlanProvenance p;
  p.randomized = d.Bool();
  p.seed = d.U64();
  p.rate_per_cycle = d.F64();
  p.horizon_cycles = d.U64();
  const std::uint32_t n = d.U32();
  std::vector<FaultEvent> events;
  events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FaultEvent ev;
    ev.cycle = d.U64();
    const std::uint8_t kind = d.U8();
    if (kind > static_cast<std::uint8_t>(FaultKind::kForceMispredict)) {
      throw persist::FormatError("unknown fault kind");
    }
    ev.kind = static_cast<FaultKind>(kind);
    ev.station = d.I32();
    ev.reg = d.I32();
    ev.payload = d.U64();
    events.push_back(ev);
  }
  FaultPlan plan(std::move(events));
  plan.SetProvenance(p);
  return plan;
}

}  // namespace ultra::fault
