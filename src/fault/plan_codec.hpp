// Binary serialization of fault plans (events + provenance) for config
// fingerprints, sweep journals, and repro bundles. The literal event list is
// always carried — a decoded plan replays identically even if the Random()
// generator ever changes — with the provenance alongside for reporting.
#pragma once

#include "fault/fault_plan.hpp"
#include "persist/serial.hpp"

namespace ultra::fault {

void EncodeFaultPlan(persist::Encoder& e, const FaultPlan& plan);
[[nodiscard]] FaultPlan DecodeFaultPlan(persist::Decoder& d);

}  // namespace ultra::fault
