// Deterministic fault plans: which corruption hits which datapath site on
// which cycle. A plan is data, not behavior — the cores own the application
// (see src/core/) and the FaultInjector (injector.hpp) owns the staging —
// so any experiment, bench point, or CI failure is replayable from
// (seed, rate, horizon) or from the literal event list.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace ultra::fault {

/// What kind of corruption an event models. The kinds split into two
/// classes with different detection contracts (docs/robustness.md):
///  * Hazardous kinds (kCorruptValue, kFlipReady) can silently poison an
///    architectural value the moment a station latches its arguments, so
///    checked mode cross-validates *eagerly* on the cycle they land.
///  * Fail-stop kinds (kDropDelivery) can only withhold progress, never
///    commit a wrong value; the periodic stride check repairs them.
///  * Control kinds (kStallStation, kForceMispredict) perturb timing and
///    speculation through the cores' ordinary recovery machinery and need
///    no checker at all.
enum class FaultKind : std::uint8_t {
  kCorruptValue,     // XOR a payload mask into a delivered value.
  kFlipReady,        // Invert a delivered cell's ready bit.
  kDropDelivery,     // Force a delivered cell not-ready (lost message).
  kStallStation,     // Inhibit one station's execution for payload cycles.
  kForceMispredict,  // Treat one station as mispredicted: squash + refetch.
};

[[nodiscard]] std::string_view FaultKindName(FaultKind kind);

/// True for kinds that can corrupt a value/ready bit in place (the kinds
/// requiring an eager same-cycle check under datapath_eval = kChecked).
[[nodiscard]] constexpr bool IsHazardous(FaultKind kind) {
  return kind == FaultKind::kCorruptValue || kind == FaultKind::kFlipReady;
}

/// True for kinds that target a datapath delivery cell (as opposed to the
/// control kinds, which target a station's execution/speculation).
[[nodiscard]] constexpr bool TargetsDatapath(FaultKind kind) {
  return kind == FaultKind::kCorruptValue || kind == FaultKind::kFlipReady ||
         kind == FaultKind::kDropDelivery;
}

/// One scheduled fault. `station` and `reg` are abstract site coordinates:
/// the injector resolves them modulo the core's actual station count and
/// register count at apply time, so one plan is meaningful across window
/// sizes.
struct FaultEvent {
  std::uint64_t cycle = 0;
  FaultKind kind = FaultKind::kCorruptValue;
  int station = 0;
  int reg = 0;
  /// kCorruptValue: XOR mask (forced nonzero at apply time).
  /// kStallStation: extra stall cycles (clamped to [1, 8]).
  /// Other kinds ignore it.
  std::uint64_t payload = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// How a plan was produced. Plans built by Random() carry their generator
/// inputs so exports, journals, and repro bundles can name the seed that
/// produced a failure (and rebuild the identical plan from scratch).
struct FaultPlanProvenance {
  bool randomized = false;  // True only for FaultPlan::Random plans.
  std::uint64_t seed = 0;
  double rate_per_cycle = 0.0;
  std::uint64_t horizon_cycles = 0;

  friend bool operator==(const FaultPlanProvenance&,
                         const FaultPlanProvenance&) = default;
};

/// An immutable, cycle-sorted schedule of fault events.
class FaultPlan {
 public:
  FaultPlan() = default;
  /// Takes any event order; stores them sorted by cycle (stable, so two
  /// events on the same cycle keep their authored order).
  explicit FaultPlan(std::vector<FaultEvent> events);

  /// Deterministic pseudo-random plan: expected @p rate_per_cycle events
  /// per cycle over [0, horizon_cycles), sites and kinds drawn from a
  /// portable SplitMix64 stream (identical output on every platform and
  /// standard library — no std::distribution involved). @p kinds selects
  /// the kinds to draw from; empty means all five.
  [[nodiscard]] static FaultPlan Random(
      std::uint64_t seed, double rate_per_cycle,
      std::uint64_t horizon_cycles,
      std::span<const FaultKind> kinds = {});

  [[nodiscard]] std::span<const FaultEvent> events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  [[nodiscard]] const FaultPlanProvenance& provenance() const {
    return provenance_;
  }
  void SetProvenance(const FaultPlanProvenance& provenance) {
    provenance_ = provenance;
  }

 private:
  std::vector<FaultEvent> events_;
  FaultPlanProvenance provenance_;
};

}  // namespace ultra::fault
