#include "fault/fault_plan.hpp"

#include <algorithm>
#include <array>

namespace ultra::fault {

namespace {

/// SplitMix64 (Steele, Lea & Flood): a tiny, portable generator whose
/// output is bit-identical on every platform, unlike the standard
/// library's distributions. Good enough statistical quality for scattering
/// fault sites.
struct SplitMix64 {
  std::uint64_t state;

  std::uint64_t Next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1) with 53 bits of resolution.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }
};

constexpr std::array<FaultKind, 5> kAllKinds = {
    FaultKind::kCorruptValue, FaultKind::kFlipReady,
    FaultKind::kDropDelivery, FaultKind::kStallStation,
    FaultKind::kForceMispredict,
};

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCorruptValue: return "corrupt_value";
    case FaultKind::kFlipReady: return "flip_ready";
    case FaultKind::kDropDelivery: return "drop_delivery";
    case FaultKind::kStallStation: return "stall_station";
    case FaultKind::kForceMispredict: return "force_mispredict";
  }
  return "unknown";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
}

FaultPlan FaultPlan::Random(std::uint64_t seed, double rate_per_cycle,
                            std::uint64_t horizon_cycles,
                            std::span<const FaultKind> kinds) {
  if (kinds.empty()) kinds = kAllKinds;
  SplitMix64 rng{seed ^ 0xA5A5A5A5DEADBEEFULL};
  std::vector<FaultEvent> events;
  for (std::uint64_t cycle = 0; cycle < horizon_cycles; ++cycle) {
    // Bernoulli per cycle: simple, and exact enough for the rates the
    // benches sweep (<= ~0.2 events/cycle).
    if (rng.NextDouble() >= rate_per_cycle) continue;
    FaultEvent e;
    e.cycle = cycle;
    e.kind = kinds[static_cast<std::size_t>(rng.Next() % kinds.size())];
    e.station = static_cast<int>(rng.Next() % 4096);
    e.reg = static_cast<int>(rng.Next() % 4096);
    e.payload = rng.Next();
    events.push_back(e);
  }
  FaultPlan plan(std::move(events));
  plan.SetProvenance({true, seed, rate_per_cycle, horizon_cycles});
  return plan;
}

}  // namespace ultra::fault
