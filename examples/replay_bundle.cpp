// Standalone re-execution of a repro bundle (see src/runtime/repro_bundle.hpp).
//
// A sweep run with SweepOptions::bundle_dir emits one bundle directory per
// failed point. This tool re-runs such a bundle with no access to the
// original sweep — the bundle itself carries the config, the program, the
// fault plan, and the recorded outcome — and diffs the fresh result against
// the recorded one field by field. A deterministic failure (an injected
// fault corrupting architectural state, a wrong-result workload) REPRODUCES:
// the re-run lands on exactly the recorded cycles/committed/stats/registers.
//
// Usage: replay_bundle BUNDLE_DIR [--from-checkpoint]
//
//   --from-checkpoint  resume from the bundled checkpoint.bin (the periodic
//                      capture nearest the failure) instead of running from
//                      cycle 0; the diff must still match, which doubles as
//                      an end-to-end check of the checkpoint/restore path.
//
// Exit codes: 0 = reproduced, 1 = diverged, 2 = usage or unreadable bundle.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/core.hpp"
#include "runtime/repro_bundle.hpp"

namespace {

int Diff(const ultra::core::RunResult& got,
         const ultra::core::RunResult& want) {
  int mismatches = 0;
  const auto check_u64 = [&](const char* name, std::uint64_t g,
                             std::uint64_t w) {
    if (g == w) return;
    ++mismatches;
    std::printf("  MISMATCH %-22s got %llu, recorded %llu\n", name,
                static_cast<unsigned long long>(g),
                static_cast<unsigned long long>(w));
  };
  check_u64("halted", got.halted ? 1 : 0, want.halted ? 1 : 0);
  check_u64("cycles", got.cycles, want.cycles);
  check_u64("committed", got.committed, want.committed);
  check_u64("mispredictions", got.stats.mispredictions,
            want.stats.mispredictions);
  check_u64("forwarded_loads", got.stats.forwarded_loads,
            want.stats.forwarded_loads);
  check_u64("squashed_instructions", got.stats.squashed_instructions,
            want.stats.squashed_instructions);
  check_u64("load_count", got.stats.load_count, want.stats.load_count);
  check_u64("store_count", got.stats.store_count, want.stats.store_count);
  check_u64("fetch_stall_cycles", got.stats.fetch_stall_cycles,
            want.stats.fetch_stall_cycles);
  check_u64("window_full_cycles", got.stats.window_full_cycles,
            want.stats.window_full_cycles);
  check_u64("faults_injected", got.stats.fault.injected,
            want.stats.fault.injected);
  check_u64("divergences_detected", got.stats.fault.divergences,
            want.stats.fault.divergences);
  check_u64("checker_resyncs", got.stats.fault.resyncs,
            want.stats.fault.resyncs);
  check_u64("squashes_under_fault", got.stats.fault.squashes,
            want.stats.fault.squashes);
  if (got.regs.size() != want.regs.size()) {
    ++mismatches;
    std::printf("  MISMATCH register file size: got %zu, recorded %zu\n",
                got.regs.size(), want.regs.size());
  } else {
    for (std::size_t r = 0; r < want.regs.size(); ++r) {
      if (got.regs[r] != want.regs[r]) {
        ++mismatches;
        std::printf("  MISMATCH r%-3zu got %u, recorded %u\n", r,
                    got.regs[r], want.regs[r]);
      }
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ultra;
  std::string dir;
  bool from_checkpoint = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--from-checkpoint") == 0) {
      from_checkpoint = true;
    } else if (dir.empty()) {
      dir = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: replay_bundle BUNDLE_DIR [--from-checkpoint]\n");
    return 2;
  }

  runtime::ReproBundle bundle;
  try {
    bundle = runtime::ReadReproBundle(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot read bundle %s: %s\n", dir.c_str(),
                 e.what());
    return 2;
  }

  const runtime::SweepOutcome& rec = bundle.outcome;
  std::printf("bundle:    %s\n", dir.c_str());
  std::printf("point:     #%zu %s on %s\n", rec.index,
              rec.workload.c_str(),
              std::string(core::ProcessorKindName(rec.kind)).c_str());
  std::printf("recorded:  %s after %d attempt%s\n",
              rec.ok ? "ok" : "FAILED", rec.attempts,
              rec.attempts == 1 ? "" : "s");
  if (!rec.error.empty()) std::printf("error:     %s\n", rec.error.c_str());
  if (bundle.checkpoint) {
    std::printf("checkpoint: cycle %llu\n",
                static_cast<unsigned long long>(
                    bundle.checkpoint->header.cycle));
  }

  core::CoreConfig cfg = bundle.point.config;
  if (!rec.result.halted && rec.result.cycles > 0) {
    // The recorded run stopped early (deadline cancel or max_cycles);
    // capping max_cycles at the recorded cycle count reproduces the same
    // partial state deterministically.
    cfg.max_cycles = rec.result.cycles;
  }

  if (from_checkpoint && !bundle.checkpoint) {
    std::fprintf(stderr,
                 "--from-checkpoint requested but the bundle has no "
                 "checkpoint.bin\n");
    return 2;
  }

  core::RunResult got;
  try {
    const auto proc = core::MakeProcessor(bundle.point.kind, cfg);
    if (from_checkpoint) {
      got = proc->RestoreCheckpoint(*bundle.point.program,
                                    *bundle.checkpoint);
    } else {
      got = proc->Run(*bundle.point.program);
    }
  } catch (const std::exception& e) {
    // A point whose recorded failure *was* an exception (e.g. an invalid
    // config) reproduces by throwing the same message again.
    if (!rec.ok && rec.error == e.what()) {
      std::printf("\nREPRODUCED: re-run threw the recorded error\n");
      return 0;
    }
    std::fprintf(stderr, "re-run threw: %s\n", e.what());
    return 1;
  }

  std::printf("\nre-ran %s: halted=%d cycles=%llu committed=%llu\n",
              from_checkpoint ? "from checkpoint" : "from cycle 0",
              got.halted ? 1 : 0,
              static_cast<unsigned long long>(got.cycles),
              static_cast<unsigned long long>(got.committed));
  const int mismatches = Diff(got, rec.result);
  if (mismatches == 0) {
    std::printf("REPRODUCED: run matches the recorded outcome exactly\n");
    return 0;
  }
  std::printf("DIVERGED: %d field%s differ from the recorded outcome\n",
              mismatches, mismatches == 1 ? "" : "s");
  return 1;
}
