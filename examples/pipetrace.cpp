// Pipetrace: per-cycle station-occupancy map, reconstructed from the
// committed timeline.
//
//   rows    = execution stations
//   columns = cycles
//   '.' empty   'o' holding an instruction (waiting or done)
//   'X' executing
//
// Makes the microarchitectural difference between the models visible: the
// Ultrascalar I ring stays densely packed (stations refill continually),
// while the batch-mode Ultrascalar II drains to empty before every refill.
//
// Usage: pipetrace [processor] [workload] [window]
//   processor: ideal | usi | usii | hybrid   (default usii)
//   workload:  fib | dot | chains | storm    (default fib)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

core::ProcessorKind ParseKind(const std::string& name) {
  if (name == "ideal") return core::ProcessorKind::kIdeal;
  if (name == "usi") return core::ProcessorKind::kUltrascalarI;
  if (name == "usii") return core::ProcessorKind::kUltrascalarII;
  if (name == "hybrid") return core::ProcessorKind::kHybrid;
  std::fprintf(stderr, "unknown processor '%s'\n", name.c_str());
  std::exit(1);
}

isa::Program ParseWorkload(const std::string& name) {
  if (name == "fib") return workloads::Fibonacci(10);
  if (name == "dot") return workloads::DotProduct(8);
  if (name == "chains") {
    return workloads::DependencyChains(
        {.num_instructions = 48, .ilp = 4, .use_long_ops = true});
  }
  if (name == "storm") return workloads::BranchStorm(8);
  std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kind_name = argc > 1 ? argv[1] : "usii";
  const std::string workload = argc > 2 ? argv[2] : "fib";
  const int window = argc > 3 ? std::atoi(argv[3]) : 12;

  core::CoreConfig cfg;
  cfg.window_size = window;
  cfg.cluster_size = std::max(1, window / 4);
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;

  const auto kind = ParseKind(kind_name);
  const auto program = ParseWorkload(workload);
  auto proc = core::MakeProcessor(kind, cfg);
  const auto result = proc->Run(program);

  const int max_cols = 160;
  const auto cycles =
      static_cast<int>(std::min<std::uint64_t>(result.cycles, max_cols));
  std::vector<std::string> grid(
      static_cast<std::size_t>(window),
      std::string(static_cast<std::size_t>(cycles), '.'));
  for (const auto& t : result.timeline) {
    auto& row = grid[static_cast<std::size_t>(t.station)];
    for (std::uint64_t c = t.fetch_cycle;
         c <= t.commit_cycle && c < static_cast<std::uint64_t>(cycles); ++c) {
      char mark = 'o';
      if (c >= t.issue_cycle && c <= t.complete_cycle) mark = 'X';
      row[static_cast<std::size_t>(c)] = mark;
    }
  }

  std::printf("%s, window=%d, workload=%s: %llu cycles, IPC %.2f\n\n",
              std::string(core::ProcessorKindName(kind)).c_str(), window,
              workload.c_str(),
              static_cast<unsigned long long>(result.cycles), result.Ipc());
  std::printf("station  cycle 0..%d\n", cycles - 1);
  for (int s = 0; s < window; ++s) {
    std::printf("  %3d    %s\n", s, grid[static_cast<std::size_t>(s)].c_str());
  }
  if (result.cycles > static_cast<std::uint64_t>(max_cols)) {
    std::printf("  ... truncated at %d cycles\n", max_cols);
  }
  std::printf(
      "\n('.' empty, 'o' occupied, 'X' executing. Compare `pipetrace usii`\n"
      "with `pipetrace usi`: the batch machine moves in lockstep waves --\n"
      "every station waits for the slowest before the next refill -- while\n"
      "the ring's stations turn over independently.)\n");
  return 0;
}
