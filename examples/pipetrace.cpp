// Pipetrace: per-cycle station-occupancy map, rebuilt from the telemetry
// subsystem's pipeline trace (telemetry::PipelineTracer), with an optional
// Perfetto export of the same events.
//
//   rows    = execution stations
//   columns = cycles
//   '.' empty   'o' holding an instruction (waiting or done)
//   'X' executing
//
// Makes the microarchitectural difference between the models visible: the
// Ultrascalar I ring stays densely packed (stations refill continually),
// while the batch-mode Ultrascalar II drains to empty before every refill.
//
// Usage: pipetrace [processor] [workload] [window] [--perfetto=FILE]
//   processor: ideal | usi | usii | hybrid            (default usii)
//   workload:  fib | dot | chains | storm | figure3   (default fib)
//   --perfetto=FILE  write the trace as Chrome trace_event JSON, loadable
//                    in ui.perfetto.dev or chrome://tracing
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

core::ProcessorKind ParseKind(const std::string& name) {
  if (name == "ideal") return core::ProcessorKind::kIdeal;
  if (name == "usi") return core::ProcessorKind::kUltrascalarI;
  if (name == "usii") return core::ProcessorKind::kUltrascalarII;
  if (name == "hybrid") return core::ProcessorKind::kHybrid;
  std::fprintf(stderr, "unknown processor '%s'\n", name.c_str());
  std::exit(1);
}

isa::Program ParseWorkload(const std::string& name) {
  if (name == "fib") return workloads::Fibonacci(10);
  if (name == "dot") return workloads::DotProduct(8);
  if (name == "chains") {
    return workloads::DependencyChains(
        {.num_instructions = 48, .ilp = 4, .use_long_ops = true});
  }
  if (name == "storm") return workloads::BranchStorm(8);
  if (name == "figure3") return workloads::Figure3Example();
  std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --perfetto=FILE before reading positionals.
  std::string perfetto_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perfetto=", 11) == 0) {
      perfetto_path = argv[i] + 11;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  const std::string kind_name = argc > 1 ? argv[1] : "usii";
  const std::string workload = argc > 2 ? argv[2] : "fib";
  const int window = argc > 3 ? std::atoi(argv[3]) : 12;

  telemetry::PipelineTracer tracer(
      {.capacity = std::size_t{1} << 18});
  telemetry::RunTelemetry telem;
  telem.tracer = &tracer;
  telem.metrics_enabled = false;  // This tool only needs the event stream.

  core::CoreConfig cfg;
  cfg.window_size = window;
  cfg.cluster_size = std::max(1, window / 4);
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.telemetry = &telem;

  const auto kind = ParseKind(kind_name);
  const auto program = ParseWorkload(workload);
  auto proc = core::MakeProcessor(kind, cfg);
  const auto result = proc->Run(program);

  const auto events = tracer.Events();
  const auto spans = telemetry::CollectInstrSpans(events);

  const int max_cols = 160;
  const auto cycles =
      static_cast<int>(std::min<std::uint64_t>(result.cycles, max_cols));
  std::vector<std::string> grid(
      static_cast<std::size_t>(window),
      std::string(static_cast<std::size_t>(cycles), '.'));
  for (const auto& sp : spans) {
    if (sp.station < 0 || sp.station >= window) continue;
    auto& row = grid[static_cast<std::size_t>(sp.station)];
    for (std::uint64_t c = sp.fetch_cycle;
         c <= sp.end_cycle && c < static_cast<std::uint64_t>(cycles); ++c) {
      char mark = 'o';
      if (sp.issued && c >= sp.issue_cycle &&
          (!sp.completed || c <= sp.complete_cycle)) {
        mark = 'X';
      }
      row[static_cast<std::size_t>(c)] = mark;
    }
  }

  std::printf("%s, window=%d, workload=%s: %llu cycles, IPC %.2f\n\n",
              std::string(core::ProcessorKindName(kind)).c_str(), window,
              workload.c_str(),
              static_cast<unsigned long long>(result.cycles), result.Ipc());
  std::printf("station  cycle 0..%d\n", cycles - 1);
  for (int s = 0; s < window; ++s) {
    std::printf("  %3d    %s\n", s, grid[static_cast<std::size_t>(s)].c_str());
  }
  if (result.cycles > static_cast<std::uint64_t>(max_cols)) {
    std::printf("  ... truncated at %d cycles\n", max_cols);
  }
  if (tracer.dropped() > 0) {
    std::printf("  (ring dropped %llu oldest events)\n",
                static_cast<unsigned long long>(tracer.dropped()));
  }
  std::printf(
      "\n('.' empty, 'o' occupied, 'X' executing. Compare `pipetrace usii`\n"
      "with `pipetrace usi`: the batch machine moves in lockstep waves --\n"
      "every station waits for the slowest before the next refill -- while\n"
      "the ring's stations turn over independently.)\n");

  if (!perfetto_path.empty()) {
    std::ofstream os(perfetto_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", perfetto_path.c_str());
      return 1;
    }
    telemetry::PerfettoOptions opt;
    opt.process_name = kind_name + " " + workload;
    opt.slice_label = [&program](const telemetry::InstrSpan& sp) {
      return sp.pc < program.size() ? isa::ToString(program.at(sp.pc))
                                    : "seq=" + std::to_string(sp.seq);
    };
    telemetry::WritePerfettoTrace(os, events, opt);
    std::printf("\nwrote Perfetto trace: %s (%zu events)\n",
                perfetto_path.c_str(), events.size());
  }
  return 0;
}
