// Design-space explorer: for a target issue width, register count, and
// memory-bandwidth profile, report each architecture's clock-limiting delay
// and area, and recommend the winner -- the decision Figure 11 encodes.
//
// Usage:
//   design_space_explorer [n] [L] [regime]
//     n:      issue width / window size (default 1024)
//     L:      logical registers         (default 32)
//     regime: const | sqrtminus | sqrt | sqrtplus | linear (default sqrtminus)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/table.hpp"
#include "vlsi/vlsi.hpp"

namespace {

using namespace ultra;

memory::BandwidthRegime ParseRegime(const std::string& name) {
  if (name == "const") return memory::BandwidthRegime::kConstant;
  if (name == "sqrtminus") return memory::BandwidthRegime::kSqrtMinus;
  if (name == "sqrt") return memory::BandwidthRegime::kSqrt;
  if (name == "sqrtplus") return memory::BandwidthRegime::kSqrtPlus;
  if (name == "linear") return memory::BandwidthRegime::kLinear;
  std::fprintf(stderr, "unknown regime '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 1024;
  const int L = argc > 2 ? std::atoi(argv[2]) : 32;
  const auto regime = ParseRegime(argc > 3 ? argv[3] : "sqrtminus");
  const auto profile = memory::BandwidthProfile::ForRegime(regime);

  std::printf("Design point: n = %lld stations, L = %d registers, %s\n\n",
              static_cast<long long>(n), L, profile.name().c_str());

  const auto cmp = vlsi::Compare(n, L, profile);

  analysis::Table table({"architecture", "gate [ps]", "wire [ps]",
                         "total [ps]", "clock [MHz]", "area [cm^2]"});
  const auto add = [&](const char* name, const vlsi::DelaySummary& d,
                       const vlsi::Geometry& g) {
    table.Row()
        .Cell(name)
        .Cell(d.gate_ps, 0)
        .Cell(d.wire_ps, 0)
        .Cell(d.total_ps(), 0)
        .Cell(1e6 / d.total_ps(), 1)
        .Cell(g.area_cm2());
  };
  add("UltrascalarI (tree)", cmp.usi, cmp.usi_geom);
  add("UltrascalarII (grid)", cmp.usii_linear, cmp.usii_linear_geom);
  add("UltrascalarII (mesh)", cmp.usii_log, cmp.usii_log_geom);
  add("Hybrid (C=L)", cmp.hybrid, cmp.hybrid_geom);
  std::printf("%s\n", table.ToString().c_str());

  const double best_total =
      std::min({cmp.usi.total_ps(), cmp.usii_linear.total_ps(),
                cmp.usii_log.total_ps(), cmp.hybrid.total_ps()});
  const char* winner =
      best_total == cmp.hybrid.total_ps()          ? "Hybrid"
      : best_total == cmp.usi.total_ps()           ? "UltrascalarI"
      : best_total == cmp.usii_linear.total_ps()   ? "UltrascalarII (grid)"
                                                   : "UltrascalarII (mesh)";
  std::printf("fastest clock: %s\n", winner);

  const int c_star = vlsi::OptimalClusterSize(L, n, profile);
  std::printf("optimal hybrid cluster size C* = %d (C*/L = %.2f)\n", c_star,
              static_cast<double>(c_star) / L);

  std::printf(
      "\nRule of thumb from the paper: Ultrascalar II below n ~ L^2 = %lld,\n"
      "hybrid at or above it; memory bandwidth beyond Theta(sqrt n) "
      "dominates\neverything.\n",
      static_cast<long long>(L) * L);
  return 0;
}
