// Design-space explorer: for a target issue width, register count, and
// memory-bandwidth profile, report each architecture's clock-limiting delay
// and area, and recommend the winner -- the decision Figure 11 encodes.
//
// Multiple design points may be given as a comma-separated n list; they are
// evaluated in parallel through runtime::SweepRunner::Map and printed in
// order, so the output does not depend on the thread count.
//
// Usage:
//   design_space_explorer [--threads=N] [n[,n...]] [L] [regime]
//     n:      issue width / window size, comma-separated list (default 1024)
//     L:      logical registers         (default 32)
//     regime: const | sqrtminus | sqrt | sqrtplus | linear (default sqrtminus)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "runtime/runtime.hpp"
#include "vlsi/vlsi.hpp"

namespace {

using namespace ultra;

memory::BandwidthRegime ParseRegime(const std::string& name) {
  if (name == "const") return memory::BandwidthRegime::kConstant;
  if (name == "sqrtminus") return memory::BandwidthRegime::kSqrtMinus;
  if (name == "sqrt") return memory::BandwidthRegime::kSqrt;
  if (name == "sqrtplus") return memory::BandwidthRegime::kSqrtPlus;
  if (name == "linear") return memory::BandwidthRegime::kLinear;
  std::fprintf(stderr, "unknown regime '%s'\n", name.c_str());
  std::exit(1);
}

std::vector<std::int64_t> ParseNList(const std::string& arg) {
  std::vector<std::int64_t> ns;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = std::min(arg.find(',', pos), arg.size());
    ns.push_back(std::atoll(arg.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  if (ns.empty()) ns.push_back(1024);
  return ns;
}

/// Everything one design point's report needs, computed off-thread.
struct PointReport {
  std::int64_t n = 0;
  vlsi::Comparison cmp;
  int c_star = 0;
};

void PrintPoint(const PointReport& point, int L,
                const memory::BandwidthProfile& profile) {
  std::printf("Design point: n = %lld stations, L = %d registers, %s\n\n",
              static_cast<long long>(point.n), L, profile.name().c_str());

  const auto& cmp = point.cmp;
  analysis::Table table({"architecture", "gate [ps]", "wire [ps]",
                         "total [ps]", "clock [MHz]", "area [cm^2]"});
  const auto add = [&](const char* name, const vlsi::DelaySummary& d,
                       const vlsi::Geometry& g) {
    table.Row()
        .Cell(name)
        .Cell(d.gate_ps, 0)
        .Cell(d.wire_ps, 0)
        .Cell(d.total_ps(), 0)
        .Cell(1e6 / d.total_ps(), 1)
        .Cell(g.area_cm2());
  };
  add("UltrascalarI (tree)", cmp.usi, cmp.usi_geom);
  add("UltrascalarII (grid)", cmp.usii_linear, cmp.usii_linear_geom);
  add("UltrascalarII (mesh)", cmp.usii_log, cmp.usii_log_geom);
  add("Hybrid (C=L)", cmp.hybrid, cmp.hybrid_geom);
  std::printf("%s\n", table.ToString().c_str());

  const double best_total =
      std::min({cmp.usi.total_ps(), cmp.usii_linear.total_ps(),
                cmp.usii_log.total_ps(), cmp.hybrid.total_ps()});
  const char* winner =
      best_total == cmp.hybrid.total_ps()          ? "Hybrid"
      : best_total == cmp.usi.total_ps()           ? "UltrascalarI"
      : best_total == cmp.usii_linear.total_ps()   ? "UltrascalarII (grid)"
                                                   : "UltrascalarII (mesh)";
  std::printf("fastest clock: %s\n", winner);
  std::printf("optimal hybrid cluster size C* = %d (C*/L = %.2f)\n",
              point.c_star, static_cast<double>(point.c_star) / L);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = runtime::ParseSweepCli(argc, argv);
  const auto ns = ParseNList(argc > 1 ? argv[1] : "1024");
  const int L = argc > 2 ? std::atoi(argv[2]) : 32;
  const auto regime = ParseRegime(argc > 3 ? argv[3] : "sqrtminus");
  const auto profile = memory::BandwidthProfile::ForRegime(regime);

  const runtime::SweepRunner runner({.num_threads = cli.threads});
  const auto reports =
      runner.Map<PointReport>(ns.size(), [&](std::size_t i) {
        return PointReport{ns[i], vlsi::Compare(ns[i], L, profile),
                           vlsi::OptimalClusterSize(L, ns[i], profile)};
      });

  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) std::printf("\n");
    PrintPoint(reports[i], L, profile);
  }

  std::printf(
      "\nRule of thumb from the paper: Ultrascalar II below n ~ L^2 = %lld,\n"
      "hybrid at or above it; memory bandwidth beyond Theta(sqrt n) "
      "dominates\neverything.\n",
      static_cast<long long>(L) * L);
  return 0;
}
