// Pipeline visualizer: run a named workload on a chosen processor model and
// render its execution schedule, Figure 3 style. The schedule is rebuilt
// from the telemetry subsystem's pipeline trace (telemetry::PipelineTracer)
// rather than the core's committed timeline, exercising the same event
// stream the Perfetto exporter consumes.
//
// Usage:
//   pipeline_visualizer [processor] [workload] [window] [cluster]
//     processor: ideal | usi | usii | hybrid      (default usi)
//     workload:  figure3 | fib | dot | bubble | chains | storm
//                                                  (default figure3)
//     window:    execution stations               (default 16)
//     cluster:   hybrid cluster size              (default 8)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "core/core.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

core::ProcessorKind ParseKind(const std::string& name) {
  if (name == "ideal") return core::ProcessorKind::kIdeal;
  if (name == "usi") return core::ProcessorKind::kUltrascalarI;
  if (name == "usii") return core::ProcessorKind::kUltrascalarII;
  if (name == "hybrid") return core::ProcessorKind::kHybrid;
  std::fprintf(stderr, "unknown processor '%s'\n", name.c_str());
  std::exit(1);
}

isa::Program ParseWorkload(const std::string& name) {
  if (name == "figure3") return workloads::Figure3Example();
  if (name == "fib") return workloads::Fibonacci(10);
  if (name == "dot") return workloads::DotProduct(8);
  if (name == "bubble") return workloads::BubbleSort(6);
  if (name == "chains") {
    return workloads::DependencyChains(
        {.num_instructions = 24, .ilp = 3, .use_long_ops = true});
  }
  if (name == "storm") return workloads::BranchStorm(6);
  std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kind_name = argc > 1 ? argv[1] : "usi";
  const std::string workload = argc > 2 ? argv[2] : "figure3";
  const int window = argc > 3 ? std::atoi(argv[3]) : 16;
  const int cluster = argc > 4 ? std::atoi(argv[4]) : 8;

  telemetry::PipelineTracer tracer(
      {.capacity = std::size_t{1} << 18});
  telemetry::RunTelemetry telem;
  telem.tracer = &tracer;
  telem.metrics_enabled = false;  // Only the event stream is rendered.

  core::CoreConfig cfg;
  cfg.window_size = window;
  cfg.cluster_size = cluster;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.telemetry = &telem;

  const auto kind = ParseKind(kind_name);
  const auto program = ParseWorkload(workload);

  auto proc = core::MakeProcessor(kind, cfg);
  const auto result = proc->Run(program);

  // Rebuild commit-ordered timing records from the trace: retired spans
  // come back in terminating-event (= commit) order.
  std::vector<core::InstrTiming> timeline;
  for (const auto& sp : telemetry::CollectInstrSpans(tracer.Events())) {
    if (!sp.retired) continue;
    core::InstrTiming t;
    t.seq = sp.seq;
    t.station = sp.station;
    t.pc = sp.pc;
    if (sp.pc < program.size()) t.inst = program.at(sp.pc);
    t.fetch_cycle = sp.fetch_cycle;
    t.issue_cycle = sp.issue_cycle;
    t.complete_cycle = sp.complete_cycle;
    t.commit_cycle = sp.end_cycle;
    timeline.push_back(t);
  }

  std::printf("%s, window=%d%s, workload=%s\n",
              std::string(core::ProcessorKindName(kind)).c_str(), window,
              kind == core::ProcessorKind::kHybrid
                  ? (", cluster=" + std::to_string(cluster)).c_str()
                  : "",
              workload.c_str());
  std::printf("cycles=%llu committed=%llu IPC=%.2f mispredicts=%llu\n\n",
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.committed),
              result.Ipc(),
              static_cast<unsigned long long>(result.stats.mispredictions));
  std::printf("%s", analysis::RenderTimingDiagram(timeline, 48).c_str());
  return 0;
}
