// sweepctl: operator CLI for the sweep service (src/service/).
//
//   sweepctl serve  --socket=S --state-dir=D [--max-queue=N] [--threads=N]
//                   [--drain-timeout=SEC]
//   sweepctl submit --socket=S [point spec] [--deadline=SEC] [--detach]
//                   [--tag=T] [--csv=NAME] [--json=NAME] [--wait]
//                   [--csv-out=PATH]
//   sweepctl status --socket=S
//   sweepctl wait   --socket=S --id=N [--csv-out=PATH] [--json-out=PATH]
//   sweepctl cancel --socket=S --id=N
//   sweepctl shutdown --socket=S [--hard]
//   sweepctl run    [point spec] [--threads=N] --csv-out=PATH
//
// Every client command takes --timeout=SEC: connect + per-read deadline
// (0 = block forever, the default). A hung daemon then fails the command
// with "timed out" and exit code 3 instead of hanging the terminal.
//
// Point spec (shared by submit and run, so the two build *identical*
// points -- the CI smoke test compares the daemon's export against a local
// `sweepctl run` of the same spec byte for byte):
//   --kinds=Ideal,UltrascalarI,UltrascalarII,Hybrid   (default UltrascalarI)
//   --windows=4,8,16                                  (default 16)
//   --workload=fib:K | figure3 | dot:N | memcpy:N | sort:N | spin
//   --max-cycles=N
// "spin" is an intentionally non-halting loop for exercising deadlines.
//
// `serve` runs the daemon in the foreground. SIGTERM and SIGINT drain
// (in-flight points finish and are journaled, queued requests stay
// journaled); SIGKILL is the crash case the journals exist for -- restart
// with the same --state-dir and the service resumes.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "isa/assembler.hpp"
#include "runtime/sweep_io.hpp"
#include "runtime/sweep_runner.hpp"
#include "service/client.hpp"
#include "service/sweep_service.hpp"
#include "workloads/workloads.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

struct Flags {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> named;

  [[nodiscard]] std::string Get(const std::string& name,
                                const std::string& fallback = "") const {
    for (const auto& [k, v] : named) {
      if (k == name) return v;
    }
    return fallback;
  }
  [[nodiscard]] bool Has(const std::string& name) const {
    for (const auto& [k, v] : named) {
      if (k == name) return true;
    }
    return false;
  }
};

Flags Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags.named.emplace_back(arg.substr(2), "");
      } else {
        flags.named.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else {
      flags.positional.push_back(std::move(arg));
    }
  }
  return flags;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

ultra::core::ProcessorKind KindFromName(const std::string& name) {
  using ultra::core::ProcessorKind;
  if (name == "Ideal") return ProcessorKind::kIdeal;
  if (name == "UltrascalarI") return ProcessorKind::kUltrascalarI;
  if (name == "UltrascalarII") return ProcessorKind::kUltrascalarII;
  if (name == "Hybrid") return ProcessorKind::kHybrid;
  throw std::runtime_error("unknown processor kind: " + name);
}

/// Builds a client honoring the shared --socket / --timeout flags.
ultra::service::SweepClient MakeClient(const Flags& flags) {
  ultra::service::ClientOptions options;
  const double timeout = std::atof(flags.Get("timeout", "0").c_str());
  options.connect_timeout_seconds = timeout;
  options.recv_timeout_seconds = timeout;
  return ultra::service::SweepClient(flags.Get("socket", "/tmp/sweepd.sock"),
                                     options);
}

/// Builds the deterministic point list both `submit` and `run` share.
std::vector<ultra::runtime::SweepPoint> BuildPoints(const Flags& flags) {
  using ultra::isa::Program;
  const std::string spec = flags.Get("workload", "fib:10");
  std::shared_ptr<const Program> program;
  std::string label = spec;
  if (spec.rfind("fib:", 0) == 0) {
    program = std::make_shared<const Program>(
        ultra::workloads::Fibonacci(std::atoi(spec.c_str() + 4)));
  } else if (spec == "figure3") {
    program =
        std::make_shared<const Program>(ultra::workloads::Figure3Example());
  } else if (spec.rfind("dot:", 0) == 0) {
    program = std::make_shared<const Program>(
        ultra::workloads::DotProduct(std::atoi(spec.c_str() + 4)));
  } else if (spec.rfind("memcpy:", 0) == 0) {
    program = std::make_shared<const Program>(
        ultra::workloads::MemCopy(std::atoi(spec.c_str() + 7)));
  } else if (spec.rfind("sort:", 0) == 0) {
    program = std::make_shared<const Program>(
        ultra::workloads::BubbleSort(std::atoi(spec.c_str() + 5)));
  } else if (spec == "spin") {
    // Never halts: the workload used to exercise deadlines and drains.
    program = std::make_shared<const Program>(
        ultra::isa::AssembleOrDie("loop: jmp loop\n"));
  } else {
    throw std::runtime_error("unknown workload spec: " + spec);
  }

  std::vector<ultra::core::ProcessorKind> kinds;
  for (const std::string& name :
       SplitCommas(flags.Get("kinds", "UltrascalarI"))) {
    kinds.push_back(KindFromName(name));
  }
  std::vector<int> windows;
  for (const std::string& w : SplitCommas(flags.Get("windows", "16"))) {
    windows.push_back(std::atoi(w.c_str()));
  }

  std::vector<ultra::runtime::SweepPoint> points;
  for (const ultra::core::ProcessorKind kind : kinds) {
    for (const int window : windows) {
      ultra::runtime::SweepPoint p;
      p.kind = kind;
      p.config.window_size = window;
      if (flags.Has("max-cycles")) {
        p.config.max_cycles = std::strtoull(
            flags.Get("max-cycles").c_str(), nullptr, 10);
      } else if (spec == "spin") {
        p.config.max_cycles = ~0ull;  // Only a cancel/deadline can end it.
      }
      p.program = program;
      p.workload = label;
      points.push_back(std::move(p));
    }
  }
  return points;
}

int Serve(const Flags& flags) {
  ultra::service::ServiceOptions options;
  options.socket_path = flags.Get("socket", "/tmp/sweepd.sock");
  options.state_dir = flags.Get("state-dir", "/tmp/sweepd-state");
  if (flags.Has("max-queue")) {
    options.max_queue =
        static_cast<std::size_t>(std::atoll(flags.Get("max-queue").c_str()));
  }
  if (flags.Has("drain-timeout")) {
    options.drain_timeout_seconds = std::atof(flags.Get("drain-timeout").c_str());
  }
  if (flags.Has("threads")) {
    options.sweep.num_threads = std::atoi(flags.Get("threads").c_str());
  }

  ultra::service::SweepService service(std::move(options));
  service.Start();
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  // Scripts wait for this line before connecting.
  std::printf("sweepd: listening on %s (state %s)\n",
              service.options().socket_path.c_str(),
              service.options().state_dir.c_str());
  std::fflush(stdout);

  while (g_signal == 0 && !service.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Signals drain; a client kShutdown carries its own drain/hard choice.
  const bool drain = g_signal != 0 ? true : service.shutdown_drain();
  std::printf("sweepd: stopping (%s)\n", drain ? "drain" : "hard");
  std::fflush(stdout);
  service.Stop(drain);
  return 0;
}

int Submit(const Flags& flags) {
  ultra::service::SweepClient client = MakeClient(flags);
  ultra::service::SubmitRequest request;
  request.points = BuildPoints(flags);
  request.deadline_seconds = std::atof(flags.Get("deadline", "0").c_str());
  request.detach = flags.Has("detach");
  request.tag = flags.Get("tag");
  request.csv_name = flags.Get("csv");
  request.json_name = flags.Get("json");

  const ultra::service::SubmitReply reply = client.Submit(request);
  std::printf("submit: %s id=%llu queue_depth=%llu %s\n",
              std::string(AdmitStatusName(reply.status)).c_str(),
              static_cast<unsigned long long>(reply.request_id),
              static_cast<unsigned long long>(reply.queue_depth),
              reply.message.c_str());
  if (reply.status != ultra::service::AdmitStatus::kAccepted) {
    // Overload maps to a distinct exit code so retry loops in scripts can
    // tell "back off" from "give up".
    return reply.status == ultra::service::AdmitStatus::kOverloaded ? 3 : 2;
  }
  if (!flags.Has("wait")) return 0;

  ultra::service::WaitRequest wait;
  wait.request_id = reply.request_id;
  wait.want_csv = flags.Has("csv-out");
  const ultra::service::WaitReply done = client.Wait(wait);
  std::printf("wait: %s ok=%llu failed=%llu %s\n",
              std::string(RequestStateName(done.state)).c_str(),
              static_cast<unsigned long long>(done.ok_points),
              static_cast<unsigned long long>(done.failed_points),
              done.message.c_str());
  if (wait.want_csv && !done.csv_text.empty()) {
    std::ofstream out(flags.Get("csv-out"), std::ios::binary);
    out << done.csv_text;
  }
  return done.state == ultra::service::RequestState::kDone ? 0 : 2;
}

int Wait(const Flags& flags) {
  ultra::service::SweepClient client = MakeClient(flags);
  ultra::service::WaitRequest wait;
  wait.request_id = std::strtoull(flags.Get("id", "0").c_str(), nullptr, 10);
  wait.want_csv = flags.Has("csv-out");
  wait.want_json = flags.Has("json-out");
  const ultra::service::WaitReply done = client.Wait(wait);
  std::printf("wait: %s ok=%llu failed=%llu %s\n",
              std::string(RequestStateName(done.state)).c_str(),
              static_cast<unsigned long long>(done.ok_points),
              static_cast<unsigned long long>(done.failed_points),
              done.message.c_str());
  if (wait.want_csv && !done.csv_text.empty()) {
    std::ofstream out(flags.Get("csv-out"), std::ios::binary);
    out << done.csv_text;
  }
  if (wait.want_json && !done.json_text.empty()) {
    std::ofstream out(flags.Get("json-out"), std::ios::binary);
    out << done.json_text;
  }
  return done.state == ultra::service::RequestState::kDone ? 0 : 2;
}

int Status(const Flags& flags) {
  ultra::service::SweepClient client = MakeClient(flags);
  std::fputs(client.Status().c_str(), stdout);
  return 0;
}

int Cancel(const Flags& flags) {
  ultra::service::SweepClient client = MakeClient(flags);
  const ultra::service::CancelReply reply = client.Cancel(
      std::strtoull(flags.Get("id", "0").c_str(), nullptr, 10));
  std::printf("cancel: %s %s\n", reply.cancelled ? "ok" : "no",
              reply.message.c_str());
  return reply.cancelled ? 0 : 2;
}

int Shutdown(const Flags& flags) {
  ultra::service::SweepClient client = MakeClient(flags);
  client.Shutdown(/*drain=*/!flags.Has("hard"));
  std::printf("shutdown: requested (%s)\n", flags.Has("hard") ? "hard" : "drain");
  return 0;
}

/// Runs the same point spec locally -- the reference artifact the CI smoke
/// compares the daemon's crash-recovered export against.
int Run(const Flags& flags) {
  ultra::runtime::SweepOptions options;
  if (flags.Has("threads")) {
    options.num_threads = std::atoi(flags.Get("threads").c_str());
  }
  const ultra::runtime::SweepRunner runner(options);
  const std::vector<ultra::runtime::SweepOutcome> outcomes =
      runner.Run(BuildPoints(flags));
  if (flags.Has("csv-out")) {
    std::ofstream out(flags.Get("csv-out"), std::ios::binary);
    ultra::runtime::WriteCsv(out, outcomes);
  }
  if (flags.Has("json-out")) {
    std::ofstream out(flags.Get("json-out"), std::ios::binary);
    ultra::runtime::WriteJson(out, outcomes);
  }
  std::printf("run: %zu points\n", outcomes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Parse(argc, argv);
  if (flags.positional.empty()) {
    std::fprintf(stderr,
                 "usage: sweepctl serve|submit|status|wait|cancel|shutdown|run "
                 "[--flags]\n(see the header comment of examples/sweepctl.cpp)\n");
    return 1;
  }
  const std::string& cmd = flags.positional.front();
  try {
    if (cmd == "serve") return Serve(flags);
    if (cmd == "submit") return Submit(flags);
    if (cmd == "status") return Status(flags);
    if (cmd == "wait") return Wait(flags);
    if (cmd == "cancel") return Cancel(flags);
    if (cmd == "shutdown") return Shutdown(flags);
    if (cmd == "run") return Run(flags);
    std::fprintf(stderr, "sweepctl: unknown command '%s'\n", cmd.c_str());
    return 1;
  } catch (const ultra::service::TimeoutError& e) {
    std::fprintf(stderr, "sweepctl %s: %s\n", cmd.c_str(), e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweepctl %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
