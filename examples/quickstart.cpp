// Quickstart: assemble a program, run it on an Ultrascalar, inspect results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "analysis/analysis.hpp"
#include "core/core.hpp"
#include "isa/isa.hpp"

int main() {
  using namespace ultra;

  // 1. Write a program in the reference ISA and assemble it.
  const char* source = R"(
    # Sum of squares 1^2 + 2^2 + ... + 10^2 into r2.
      li r1, 1        # i
      li r2, 0        # sum
      li r3, 11       # bound
    loop:
      mul r4, r1, r1
      add r2, r2, r4
      addi r1, r1, 1
      blt r1, r3, loop
      halt
  )";
  const isa::Program program = isa::AssembleOrDie(source);
  std::printf("Assembled %zu instructions:\n%s\n", program.size(),
              program.Disassemble().c_str());

  // 2. Configure a hybrid Ultrascalar: 32-station window, 8-station
  //    clusters, BTFN branch prediction, idealized memory.
  core::CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;

  // 3. Run.
  auto processor = core::MakeProcessor(core::ProcessorKind::kHybrid, cfg);
  const core::RunResult result = processor->Run(program);

  std::printf("halted=%s cycles=%llu committed=%llu IPC=%.2f\n",
              result.halted ? "yes" : "no",
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.committed),
              result.Ipc());
  std::printf("r2 (sum of squares) = %u   (expected 385)\n",
              result.regs[2]);
  std::printf("mispredictions=%llu squashed=%llu\n\n",
              static_cast<unsigned long long>(result.stats.mispredictions),
              static_cast<unsigned long long>(
                  result.stats.squashed_instructions));

  // 4. Verify against the architectural reference.
  core::FunctionalSimulator reference;
  const auto ref = reference.Run(program);
  std::printf("functional reference agrees: %s\n",
              ref.regs[2] == result.regs[2] ? "yes" : "NO");

  // 5. Peek at the first loop iterations' schedule.
  const std::size_t rows = std::min<std::size_t>(result.timeline.size(), 16);
  std::printf("\nFirst %zu committed instructions:\n%s", rows,
              analysis::RenderTimingDiagram(
                  {result.timeline.data(), rows})
                  .c_str());
  return 0;
}
