// Feature tour: the Section 7 extensions, all in one run.
//
// Configures a hybrid Ultrascalar with shared ALUs, store-to-load
// forwarding, and distributed per-cluster caches, and compares it against
// the plain base design on a memory- and ALU-intensive workload.
//
//   ./build/examples/feature_tour
#include <cstdio>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace ultra;

  const auto program = workloads::BubbleSort(20);
  std::printf("workload: bubble sort, 20 elements (%zu static instrs)\n\n",
              program.size());

  analysis::Table table({"configuration", "cycles", "IPC", "tree loads",
                         "forwarded"});

  const auto run = [&](const char* name, core::CoreConfig cfg) {
    cfg.window_size = 64;
    cfg.cluster_size = 16;
    cfg.predictor = core::PredictorKind::kOracle;
    cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
    cfg.mem.regime = memory::BandwidthRegime::kConstant;  // Thin memory.
    auto proc = core::MakeProcessor(core::ProcessorKind::kHybrid, cfg);
    const auto result = proc->Run(program);
    table.Row()
        .Cell(name)
        .Cell(result.cycles)
        .Cell(result.Ipc(), 2)
        .Cell(result.stats.load_count)
        .Cell(result.stats.forwarded_loads);
    return result;
  };

  core::CoreConfig base;
  run("base design (ALU per station)", base);

  core::CoreConfig shared = base;
  shared.num_alus = 8;
  run("+ 8 shared ALUs", shared);

  core::CoreConfig fwd = shared;
  fwd.store_forwarding = true;
  run("+ store-to-load forwarding", fwd);

  core::CoreConfig cached = fwd;
  cached.mem.cluster_cache_leaves = 16;
  run("+ distributed cluster caches", cached);

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Eight shared ALUs cost almost nothing; forwarding and the cluster\n"
      "caches then claw back the performance the Theta(1) memory bandwidth\n"
      "took away -- the Section 7 road map, executed.\n");
  return 0;
}
