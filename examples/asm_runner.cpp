// Assembler + cross-processor runner: assemble a program from a file (or
// stdin) and execute it on all four processor models, comparing results and
// timing.
//
// Usage:
//   asm_runner [file.s]        # reads stdin when no file is given
//
// Example program:
//   li r1, 6
//   li r2, 7
//   mul r3, r1, r2
//   st r3, 0(r0)
//   halt
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "isa/isa.hpp"

int main(int argc, char** argv) {
  using namespace ultra;

  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream os;
    os << in.rdbuf();
    source = os.str();
  } else {
    std::ostringstream os;
    os << std::cin.rdbuf();
    source = os.str();
  }

  auto assembled = isa::Assemble(source);
  if (const auto* err = std::get_if<isa::AssemblyError>(&assembled)) {
    std::fprintf(stderr, "assembly error: %s\n", err->ToString().c_str());
    return 1;
  }
  const auto& program = std::get<isa::Program>(assembled);
  std::printf("assembled %zu instructions\n\n", program.size());

  core::CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;

  core::FunctionalSimulator reference;
  const auto ref = reference.Run(program);

  analysis::Table table({"processor", "cycles", "IPC", "mispredicts",
                         "regs == reference"});
  for (const auto kind :
       {core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
        core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid}) {
    auto proc = core::MakeProcessor(kind, cfg);
    const auto result = proc->Run(program);
    bool match = result.halted;
    for (std::size_t r = 0; r < ref.regs.size(); ++r) {
      if (result.regs[r] != ref.regs[r]) match = false;
    }
    table.Row()
        .Cell(std::string(core::ProcessorKindName(kind)))
        .Cell(result.cycles)
        .Cell(result.Ipc(), 2)
        .Cell(result.stats.mispredictions)
        .Cell(match ? "yes" : "NO");
  }
  std::printf("%s", table.ToString().c_str());

  std::printf("\nfinal architectural registers (non-zero):\n");
  for (std::size_t r = 0; r < ref.regs.size(); ++r) {
    if (ref.regs[r] != 0) {
      std::printf("  r%-2zu = %u (0x%x)\n", r, ref.regs[r], ref.regs[r]);
    }
  }
  return 0;
}
