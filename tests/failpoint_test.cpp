// Tests for src/failpoint/: schedule-spec parsing, registry semantics
// (Nth-hit / every-Kth / seeded-probability schedules, crash-at-op, hit and
// fire accounting), the FaultyIo seam's error and crash behaviors against a
// real file, and — the point of the subsystem — the persist error branches
// nothing could reach before: JournalWriter::Append's ENOSPC / torn-write /
// fsync-failure rollback and AtomicWriteFile's error-path cleanup, each
// proven executed via the registry's fire counters and each required to
// leave the file in a recoverable state with the path in the exception text.
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "failpoint/failpoint.hpp"
#include "failpoint/io.hpp"
#include "persist/checkpoint.hpp"
#include "persist/journal.hpp"
#include "persist/serial.hpp"

namespace ultra {
namespace {

namespace fp = failpoint;

/// Every test disarms the process-global registry on the way out, so a
/// failing assertion cannot leak an armed failpoint into later tests.
class FailpointTest : public testing::Test {
 protected:
  FailpointTest() { fp::Registry::Instance().Reset(); }
  ~FailpointTest() override { fp::Registry::Instance().Reset(); }

  /// Scratch directory unique to the running test.
  [[nodiscard]] std::string Dir() {
    if (dir_.empty()) {
      const auto* info = testing::UnitTest::GetInstance()->current_test_info();
      dir_ = (std::filesystem::temp_directory_path() /
              (std::string("ultra_fp_") + info->name()))
                 .string();
      std::filesystem::remove_all(dir_);
      std::filesystem::create_directories(dir_);
    }
    return dir_;
  }
  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }
  [[nodiscard]] std::string File(const std::string& name) {
    return Dir() + "/" + name;
  }

  /// Names of `.tmp.` droppings under Dir() — must be empty after any
  /// AtomicWriteFile error path.
  [[nodiscard]] std::vector<std::string> TmpFiles() {
    std::vector<std::string> out;
    for (const auto& entry : std::filesystem::directory_iterator(Dir())) {
      const std::string name = entry.path().filename().string();
      if (name.find(".tmp.") != std::string::npos) out.push_back(name);
    }
    return out;
  }

 private:
  std::string dir_;
};

// --- Schedule-spec grammar ------------------------------------------------

TEST_F(FailpointTest, ParsesEverySpecForm) {
  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("eio@3", &s));
  EXPECT_EQ(s.kind, fp::ErrorKind::kEio);
  EXPECT_EQ(s.nth, 3u);
  EXPECT_EQ(s.max_fires, 1u);  // @N fires once, by definition.

  ASSERT_TRUE(fp::ParseScheduleSpec("enospc%5", &s));
  EXPECT_EQ(s.kind, fp::ErrorKind::kEnospc);
  EXPECT_EQ(s.every, 5u);

  ASSERT_TRUE(fp::ParseScheduleSpec("short~0.25:42", &s));
  EXPECT_EQ(s.kind, fp::ErrorKind::kShort);
  EXPECT_DOUBLE_EQ(s.probability, 0.25);
  EXPECT_EQ(s.seed, 42u);

  ASSERT_TRUE(fp::ParseScheduleSpec("torn@1", &s));
  EXPECT_EQ(s.kind, fp::ErrorKind::kTornWrite);
  ASSERT_TRUE(fp::ParseScheduleSpec("reset%2", &s));
  EXPECT_EQ(s.kind, fp::ErrorKind::kConnReset);
  ASSERT_TRUE(fp::ParseScheduleSpec("eof@1", &s));
  EXPECT_EQ(s.kind, fp::ErrorKind::kEof);
  ASSERT_TRUE(fp::ParseScheduleSpec("crash@7", &s));
  EXPECT_EQ(s.kind, fp::ErrorKind::kCrash);
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  fp::Schedule s;
  EXPECT_FALSE(fp::ParseScheduleSpec("", &s));
  EXPECT_FALSE(fp::ParseScheduleSpec("eio", &s));        // No trigger.
  EXPECT_FALSE(fp::ParseScheduleSpec("@3", &s));         // No kind.
  EXPECT_FALSE(fp::ParseScheduleSpec("bogus@3", &s));    // Unknown kind.
  EXPECT_FALSE(fp::ParseScheduleSpec("eio@0", &s));      // Nth is 1-based.
  EXPECT_FALSE(fp::ParseScheduleSpec("eio@x", &s));
  EXPECT_FALSE(fp::ParseScheduleSpec("eio@3junk", &s));
  EXPECT_FALSE(fp::ParseScheduleSpec("eio%0", &s));
  EXPECT_FALSE(fp::ParseScheduleSpec("eio~0", &s));      // P must be > 0.
  EXPECT_FALSE(fp::ParseScheduleSpec("eio~1.5", &s));    // P must be <= 1.
  EXPECT_FALSE(fp::ParseScheduleSpec("eio~0.5:", &s));   // Empty seed.
  EXPECT_FALSE(fp::ParseScheduleSpec("eio~0.5:1x", &s));
}

TEST_F(FailpointTest, ArmSpecArmsMultipleSitesAndReportsErrors) {
  fp::Registry& reg = fp::Registry::Instance();
  std::string error;
  ASSERT_TRUE(reg.ArmSpec("a.write=eio@1;b.fsync=enospc%2", &error)) << error;
  EXPECT_TRUE(fp::Enabled());

  EXPECT_NE(reg.OnOp("a.write").kind, fp::ErrorKind::kNone);
  EXPECT_EQ(reg.OnOp("b.fsync").kind, fp::ErrorKind::kNone);      // Hit 1.
  EXPECT_EQ(reg.OnOp("b.fsync").kind, fp::ErrorKind::kEnospc);    // Hit 2.

  EXPECT_FALSE(reg.ArmSpec("missing-equals", &error));
  EXPECT_NE(error.find("missing '='"), std::string::npos);
  EXPECT_FALSE(reg.ArmSpec("c.op=bogus@1", &error));
  EXPECT_NE(error.find("bad schedule"), std::string::npos);
}

// --- Registry semantics ---------------------------------------------------

TEST_F(FailpointTest, DisabledByDefaultAndZeroCostPathIsReal) {
  EXPECT_FALSE(fp::Enabled());
  // The seam routes to the passthrough implementation when disabled.
  EXPECT_EQ(&fp::ActiveIo(), &fp::RealIo());
  fp::Registry::Instance().EnableCounting();
  EXPECT_TRUE(fp::Enabled());
  EXPECT_EQ(&fp::ActiveIo(), &fp::FaultyIo());
}

TEST_F(FailpointTest, NthHitScheduleFiresExactlyOnce) {
  fp::Registry& reg = fp::Registry::Instance();
  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("eio@3", &s));
  reg.Arm("site", s);
  for (int hit = 1; hit <= 6; ++hit) {
    const fp::Decision d = reg.OnOp("site");
    EXPECT_EQ(d.kind == fp::ErrorKind::kEio, hit == 3) << "hit " << hit;
  }
  EXPECT_EQ(reg.hits("site"), 6u);
  EXPECT_EQ(reg.fires("site"), 1u);
  EXPECT_EQ(reg.total_fires(), 1u);
}

TEST_F(FailpointTest, EveryKthScheduleFiresPeriodically) {
  fp::Registry& reg = fp::Registry::Instance();
  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("enospc%3", &s));
  reg.Arm("site", s);
  int fired = 0;
  for (int hit = 1; hit <= 9; ++hit) {
    if (reg.OnOp("site").kind == fp::ErrorKind::kEnospc) {
      ++fired;
      EXPECT_EQ(hit % 3, 0) << "hit " << hit;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FailpointTest, SeededProbabilityIsDeterministic) {
  fp::Registry& reg = fp::Registry::Instance();
  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("eio~0.5:7", &s));

  const auto draw_pattern = [&] {
    reg.Reset();
    reg.Arm("site", s);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += reg.OnOp("site").kind == fp::ErrorKind::kEio ? '1' : '0';
    }
    return pattern;
  };
  const std::string first = draw_pattern();
  EXPECT_EQ(first, draw_pattern()) << "same seed must give the same schedule";
  EXPECT_NE(first.find('1'), std::string::npos);
  EXPECT_NE(first.find('0'), std::string::npos);

  ASSERT_TRUE(fp::ParseScheduleSpec("eio~0.5:8", &s));
  reg.Reset();
  reg.Arm("site", s);
  std::string other;
  for (int i = 0; i < 64; ++i) {
    other += reg.OnOp("site").kind == fp::ErrorKind::kEio ? '1' : '0';
  }
  EXPECT_NE(first, other) << "different seed should give a different stream";
}

TEST_F(FailpointTest, CrashAtOpCountsAcrossSites) {
  fp::Registry& reg = fp::Registry::Instance();
  reg.ArmCrashAtOp(3, fp::CrashMode::kSilent);
  EXPECT_FALSE(reg.OnOp("a").crash);
  EXPECT_FALSE(reg.OnOp("b").crash);
  const fp::Decision d = reg.OnOp("c");
  EXPECT_TRUE(d.crash);
  EXPECT_EQ(d.op, 3u);
  EXPECT_EQ(reg.ops(), 3u);
}

TEST_F(FailpointTest, WriteReportListsOpsAndSites) {
  fp::Registry& reg = fp::Registry::Instance();
  reg.EnableCounting();
  (void)reg.OnOp("b.site");
  (void)reg.OnOp("a.site");
  (void)reg.OnOp("a.site");
  std::ostringstream os;
  reg.WriteReport(os);
  EXPECT_EQ(os.str(),
            "ops 3\n"
            "site a.site hits 2 fires 0\n"
            "site b.site hits 1 fires 0\n");
}

// --- FaultyIo semantics against a real file -------------------------------

TEST_F(FailpointTest, SeamInjectsErrorsShortAndTornWrites) {
  fp::Registry& reg = fp::Registry::Instance();
  reg.EnableCounting();
  fp::Io& io = fp::ActiveIo();
  const std::string path = File("data");
  const int fd = io.Open("t.open", path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const char buf[10] = "123456789";

  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("enospc@1", &s));
  reg.Arm("t.write", s);
  errno = 0;
  EXPECT_EQ(io.Write("t.write", fd, buf, 10), -1);
  EXPECT_EQ(errno, ENOSPC);

  // Hits are cumulative per site and survive re-arming, so each re-arm
  // targets the *next* hit number, not "1" again.
  ASSERT_TRUE(fp::ParseScheduleSpec("short@2", &s));
  reg.Arm("t.write", s);
  EXPECT_EQ(io.Write("t.write", fd, buf, 10), 5) << "short write: half";

  ASSERT_TRUE(fp::ParseScheduleSpec("torn@3", &s));
  reg.Arm("t.write", s);
  errno = 0;
  EXPECT_EQ(io.Write("t.write", fd, buf, 10), -1)
      << "torn write reports failure after transferring a prefix";
  EXPECT_EQ(errno, EIO);
  ::close(fd);
  // 5 bytes from the short write + 5 torn-prefix bytes actually landed.
  EXPECT_EQ(std::filesystem::file_size(path), 10u);

  ASSERT_TRUE(fp::ParseScheduleSpec("eio@1", &s));
  reg.Arm("t.fsync", s);
  const int fd2 = io.Open("t.open", path.c_str(), O_WRONLY, 0);
  ASSERT_GE(fd2, 0);
  errno = 0;
  EXPECT_EQ(io.Fsync("t.fsync", fd2), -1) << "fsync failure = eio on .fsync";
  EXPECT_EQ(errno, EIO);
  ::close(fd2);
}

TEST_F(FailpointTest, ThrowCrashFreezesAllLaterIo) {
  fp::Registry& reg = fp::Registry::Instance();
  reg.ArmCrashAtOp(2, fp::CrashMode::kThrow);
  fp::Io& io = fp::ActiveIo();
  const std::string path = File("data");
  const int fd = io.Open("t.open", path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);

  const char buf[8] = "abcdefg";
  bool crashed = false;
  try {
    (void)io.Write("t.write", fd, buf, 8);
  } catch (const fp::CrashInjected& crash) {
    crashed = true;
    EXPECT_EQ(crash.site, "t.write");
    EXPECT_EQ(crash.op, 2u);
  }
  ASSERT_TRUE(crashed);
  EXPECT_TRUE(reg.crashed());

  // The torn prefix (4 of 8 bytes) landed before the "power cut"...
  EXPECT_EQ(std::filesystem::file_size(path), 4u);
  // ...and from here on the disk is frozen: writes claim success without
  // touching the file, rollback-style truncates are swallowed, opens and
  // reads fail as if the machine were gone.
  EXPECT_EQ(io.Write("t.write", fd, buf, 8), 8);
  EXPECT_EQ(io.Ftruncate("t.truncate", fd, 0), 0);
  EXPECT_EQ(io.Fsync("t.fsync", fd), 0);
  ::close(fd);
  EXPECT_EQ(std::filesystem::file_size(path), 4u) << "frozen at crash point";
  errno = 0;
  EXPECT_LT(io.Open("t.open", path.c_str(), O_RDONLY, 0), 0);
  EXPECT_EQ(errno, EIO);

  // Reset thaws the world: real I/O resumes for the recovery phase.
  reg.Reset();
  const int fd2 = ::open(path.c_str(), O_RDONLY);
  EXPECT_GE(fd2, 0);
  ::close(fd2);
}

TEST_F(FailpointTest, SilentCrashKeepsRunningWithFrozenDisk) {
  fp::Registry& reg = fp::Registry::Instance();
  reg.ArmCrashAtOp(1, fp::CrashMode::kSilent);
  fp::Io& io = fp::ActiveIo();
  const std::string path = File("data");
  // Op 1 is the crash: in silent mode nothing throws — the open just fails
  // (the "machine" died mid-call) and the process carries on.
  errno = 0;
  EXPECT_LT(io.Open("t.open", path.c_str(), O_WRONLY | O_CREAT, 0644), 0);
  EXPECT_EQ(errno, EIO);
  EXPECT_TRUE(reg.crashed());
  EXPECT_FALSE(std::filesystem::exists(path)) << "create never reached disk";
  // Ops stop counting once crashed: the op counter stays at the crash op.
  EXPECT_EQ(reg.ops(), 1u);
  EXPECT_EQ(io.Unlink("t.unlink", path.c_str()), 0);  // No-op "success".
}

// --- Persist error branches (previously unreachable) ----------------------

TEST_F(FailpointTest, JournalAppendEnospcRollsBackTornFrame) {
  fp::Registry& reg = fp::Registry::Instance();
  reg.EnableCounting();  // Count from the start so "@2" = second append.
  const std::string path = File("j.journal");
  persist::JournalWriter writer(path, /*truncate=*/true);
  const std::vector<std::uint8_t> payload(100, 0xAB);
  writer.Append(1, payload);

  // The *second* append's write hits ENOSPC. Torn-write semantics apply
  // (kEnospc transfers nothing, but the rollback must run either way).
  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("enospc@2", &s));
  reg.Arm("journal.append.write", s);
  try {
    writer.Append(2, payload);
    FAIL() << "append must fail when its write hits ENOSPC";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "exception must carry the journal path: " << e.what();
    EXPECT_NE(std::string(e.what()).find("No space left"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(reg.fires("journal.append.write"), 1u)
      << "the ENOSPC branch demonstrably executed";
  reg.Reset();

  // Recoverable: the failed frame was rolled back, record 1 is intact, and
  // the journal accepts appends again.
  const persist::JournalScan scan = persist::ScanJournal(path);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.discarded_bytes, 0u) << "rollback truncated the torn frame";
  writer.Append(3, payload);
  EXPECT_EQ(persist::ScanJournal(path).records.size(), 2u);
}

TEST_F(FailpointTest, JournalAppendTornWriteRollsBack) {
  fp::Registry& reg = fp::Registry::Instance();
  reg.EnableCounting();  // Count from the start so "@2" = second append.
  const std::string path = File("j.journal");
  persist::JournalWriter writer(path, /*truncate=*/true);
  const std::vector<std::uint8_t> payload(64, 0x5A);
  writer.Append(1, payload);

  // Half the frame really lands on disk before the EIO — exactly the torn
  // state the rollback exists for.
  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("torn@2", &s));
  reg.Arm("journal.append.write", s);
  EXPECT_THROW(writer.Append(2, payload), std::runtime_error);
  EXPECT_EQ(reg.fires("journal.append.write"), 1u);
  reg.Reset();

  const persist::JournalScan scan = persist::ScanJournal(path);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.discarded_bytes, 0u);
}

TEST_F(FailpointTest, JournalAppendFsyncFailureRollsBack) {
  fp::Registry& reg = fp::Registry::Instance();
  reg.EnableCounting();  // Count from the start so "@2" = second append.
  const std::string path = File("j.journal");
  persist::JournalWriter writer(path, /*truncate=*/true);
  const std::vector<std::uint8_t> payload(64, 0x77);
  writer.Append(1, payload);

  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("eio@2", &s));
  reg.Arm("journal.append.fsync", s);
  try {
    writer.Append(2, payload);
    FAIL() << "append must fail when its fsync fails";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fsync"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  EXPECT_EQ(reg.fires("journal.append.fsync"), 1u);
  reg.Reset();

  // An unsynced frame must not be trusted: rollback removed it whole.
  const persist::JournalScan scan = persist::ScanJournal(path);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.discarded_bytes, 0u);
}

TEST_F(FailpointTest, CheckpointSaveFsyncFailureLeavesNoTmpAndNoFile) {
  fp::Registry& reg = fp::Registry::Instance();
  persist::Checkpoint checkpoint;
  checkpoint.header.core_kind = 1;
  checkpoint.header.cycle = 42;
  checkpoint.state.assign(256, 0xCD);
  const std::string path = File("core.ckpt");

  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("eio@1", &s));
  reg.Arm("atomic.fsync", s);
  try {
    persist::WriteCheckpointFile(path, checkpoint);
    FAIL() << "checkpoint save must fail when the tmp fsync fails";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fsync"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "exception must carry the destination path: " << e.what();
  }
  EXPECT_EQ(reg.fires("atomic.fsync"), 1u);
  reg.Reset();

  EXPECT_TRUE(TmpFiles().empty()) << "error path must unlink its tmp file";
  EXPECT_FALSE(std::filesystem::exists(path))
      << "the destination must not exist half-written";

  // And with the failpoint cleared the identical save succeeds.
  persist::WriteCheckpointFile(path, checkpoint);
  EXPECT_EQ(persist::ReadCheckpointFile(path).header, checkpoint.header);
  EXPECT_TRUE(TmpFiles().empty());
}

TEST_F(FailpointTest, AtomicWriteRenameFailureCleansUpTmp) {
  fp::Registry& reg = fp::Registry::Instance();
  const std::string path = File("out.csv");
  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("eio@1", &s));
  reg.Arm("atomic.rename", s);
  EXPECT_THROW(persist::AtomicWriteFile(path, std::string_view("hello")),
               std::runtime_error);
  EXPECT_EQ(reg.fires("atomic.rename"), 1u);
  reg.Reset();
  EXPECT_TRUE(TmpFiles().empty());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(FailpointTest, AtomicWriteShortWritesAreRetriedToCompletion) {
  fp::Registry& reg = fp::Registry::Instance();
  const std::string path = File("out.bin");
  // Every write transfers only half: the caller's loop must still land the
  // whole artifact, bit-exact.
  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("short%1", &s));
  reg.Arm("atomic.write", s);
  const std::vector<std::uint8_t> data(1024, 0x3C);
  persist::AtomicWriteFile(path, data);
  EXPECT_GT(reg.fires("atomic.write"), 1u);
  reg.Reset();
  EXPECT_EQ(persist::ReadFileBytes(path), data);
  EXPECT_TRUE(TmpFiles().empty());
}

TEST_F(FailpointTest, RemoveStaleTmpFilesSweepsOnlyTmpDroppings) {
  persist::AtomicWriteFile(File("keep.csv"), std::string_view("data"));
  {
    std::ofstream(File("export.csv.tmp.1234.0")) << "torn";
    std::ofstream(File("other.json.tmp.99.7")) << "torn";
  }
  EXPECT_EQ(persist::RemoveStaleTmpFiles(Dir()), 2u);
  EXPECT_TRUE(TmpFiles().empty());
  EXPECT_TRUE(std::filesystem::exists(File("keep.csv")));
  EXPECT_EQ(persist::RemoveStaleTmpFiles(Dir()), 0u);
}

TEST_F(FailpointTest, ConcurrentAtomicWritersUseDistinctTmpNames) {
  // Two writers to the same destination used to race on one `path + .tmp`
  // name; with O_EXCL + pid/seq suffixes both must land intact and the
  // survivor must be one writer's bytes, never an interleaving.
  const std::string path = File("contended.bin");
  const std::vector<std::uint8_t> a(8192, 0xAA);
  const std::vector<std::uint8_t> b(8192, 0xBB);
  std::thread ta([&] {
    for (int i = 0; i < 50; ++i) persist::AtomicWriteFile(path, a);
  });
  std::thread tb([&] {
    for (int i = 0; i < 50; ++i) persist::AtomicWriteFile(path, b);
  });
  ta.join();
  tb.join();
  const std::vector<std::uint8_t> got = persist::ReadFileBytes(path);
  EXPECT_TRUE(got == a || got == b) << "survivor must be exactly one "
                                       "writer's artifact";
  EXPECT_TRUE(TmpFiles().empty());
}

}  // namespace
}  // namespace ultra
